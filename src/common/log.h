// Minimal leveled logging. Logging is off by default so simulations stay fast and
// deterministic in output; tests and examples can raise the level.
#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <sstream>
#include <string_view>

namespace asvm {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

// Global verbosity threshold; messages above it are dropped before formatting.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace log_detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_detail

// Fatal assertion for invariant violations; aborts with a message. Used for
// conditions that indicate a bug in the simulator or protocol implementation,
// never for recoverable errors.
[[noreturn]] void AsvmCheckFail(const char* cond, const char* file, int line,
                                std::string_view extra);

}  // namespace asvm

#define ASVM_LOG_ENABLED(level) ((level) <= ::asvm::GetLogLevel())

#define ASVM_LOG(level)                        \
  if (!ASVM_LOG_ENABLED(::asvm::LogLevel::level)) { \
  } else                                       \
    ::asvm::log_detail::LogMessage(::asvm::LogLevel::level, __FILE__, __LINE__).stream()

#define ASVM_LOG_ERROR ASVM_LOG(kError)
#define ASVM_LOG_WARN ASVM_LOG(kWarn)
#define ASVM_LOG_INFO ASVM_LOG(kInfo)
#define ASVM_LOG_DEBUG ASVM_LOG(kDebug)
#define ASVM_LOG_TRACE ASVM_LOG(kTrace)

#define ASVM_CHECK(cond)                                   \
  do {                                                     \
    if (!(cond)) {                                         \
      ::asvm::AsvmCheckFail(#cond, __FILE__, __LINE__, ""); \
    }                                                      \
  } while (0)

#define ASVM_CHECK_MSG(cond, msg)                             \
  do {                                                        \
    if (!(cond)) {                                            \
      ::asvm::AsvmCheckFail(#cond, __FILE__, __LINE__, (msg)); \
    }                                                         \
  } while (0)

#endif  // SRC_COMMON_LOG_H_
