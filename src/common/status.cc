#include "src/common/status.h"

namespace asvm {

const char* ToString(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kInvalidArgument:
      return "invalid_argument";
    case Status::kNotFound:
      return "not_found";
    case Status::kAlreadyExists:
      return "already_exists";
    case Status::kResourceExhausted:
      return "resource_exhausted";
    case Status::kUnavailable:
      return "unavailable";
    case Status::kFailedPrecondition:
      return "failed_precondition";
    case Status::kDeadlock:
      return "deadlock";
    case Status::kTimeout:
      return "timeout";
    case Status::kNodeDown:
      return "node_down";
    case Status::kDataLost:
      return "data_lost";
    case Status::kInternal:
      return "internal";
  }
  return "?";
}

}  // namespace asvm
