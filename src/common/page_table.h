// Per-page protocol metadata table. Object page counts are known when an
// agent attaches an object, so the fault-path lookup is a vector index instead
// of a hash probe; objects above kDenseLimit pages fall back to a sparse map
// so an enormous, sparsely-touched object does not pin O(pages) host memory.
//
// MetadataBytes() implements the paper's accounting (invariant 7): the
// simulated kernel stores one (PageIndex, T) record per *present* entry
// regardless of the host representation, so the reported figure stays
// O(resident) either way.
//
// Reference stability: entries of a dense table stay at fixed addresses as
// long as accessed pages are below the declared page count — the backing
// vector is allocated at full size on first use and never grows for in-range
// pages. Coroutines may therefore hold a T& across suspension points, exactly
// as they could with the node-stable unordered_map this replaces.
#ifndef SRC_COMMON_PAGE_TABLE_H_
#define SRC_COMMON_PAGE_TABLE_H_

#include <algorithm>
#include <cstddef>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/types.h"

namespace asvm {

template <typename T>
class PageTable {
 public:
  // Largest page count served by the dense representation (32 Ki pages = a
  // 256 MB object at 8 KB pages).
  static constexpr VmSize kDenseLimit = VmSize{1} << 15;

  // Declares the object's page count and picks the representation. Idempotent
  // (the first call wins); tables never given a page count stay sparse.
  void SetPageCount(VmSize pages) {
    if (mode_decided_) {
      return;
    }
    mode_decided_ = true;
    dense_mode_ = pages <= kDenseLimit;
    page_count_ = pages;
  }

  bool dense() const { return dense_mode_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Returns the entry for `page`, default-constructing it if absent.
  T& GetOrCreate(PageIndex page) {
    if (dense_mode_) {
      std::optional<T>& slot = DenseSlot(page);
      if (!slot.has_value()) {
        slot.emplace();
        ++size_;
      }
      return *slot;
    }
    auto [it, inserted] = sparse_.try_emplace(page);
    if (inserted) {
      ++size_;
    }
    return it->second;
  }

  T* Find(PageIndex page) {
    if (dense_mode_) {
      const size_t idx = static_cast<size_t>(page);
      if (page < 0 || idx >= dense_.size() || !dense_[idx].has_value()) {
        return nullptr;
      }
      return &*dense_[idx];
    }
    auto it = sparse_.find(page);
    return it == sparse_.end() ? nullptr : &it->second;
  }

  const T* Find(PageIndex page) const {
    return const_cast<PageTable*>(this)->Find(page);
  }

  void Erase(PageIndex page) {
    if (dense_mode_) {
      const size_t idx = static_cast<size_t>(page);
      if (page >= 0 && idx < dense_.size() && dense_[idx].has_value()) {
        dense_[idx].reset();
        --size_;
      }
      return;
    }
    size_ -= sparse_.erase(page);
  }

  void Clear() {
    dense_.clear();
    sparse_.clear();
    size_ = 0;
  }

  // Paper accounting: one (index, payload) record per present entry.
  size_t MetadataBytes() const { return size_ * (sizeof(PageIndex) + sizeof(T)); }

  // Visits present entries in ascending page order (sparse keys are sorted
  // first, so iteration order is deterministic in both representations).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (dense_mode_) {
      for (size_t idx = 0; idx < dense_.size(); ++idx) {
        if (dense_[idx].has_value()) {
          fn(static_cast<PageIndex>(idx), *dense_[idx]);
        }
      }
      return;
    }
    std::vector<PageIndex> keys;
    keys.reserve(sparse_.size());
    for (const auto& [page, value] : sparse_) {
      keys.push_back(page);
    }
    std::sort(keys.begin(), keys.end());
    for (PageIndex page : keys) {
      fn(page, sparse_.at(page));
    }
  }

  template <typename Fn>
  void ForEach(Fn&& fn) {
    if (dense_mode_) {
      for (size_t idx = 0; idx < dense_.size(); ++idx) {
        if (dense_[idx].has_value()) {
          fn(static_cast<PageIndex>(idx), *dense_[idx]);
        }
      }
      return;
    }
    std::vector<PageIndex> keys;
    keys.reserve(sparse_.size());
    for (const auto& [page, value] : sparse_) {
      keys.push_back(page);
    }
    std::sort(keys.begin(), keys.end());
    for (PageIndex page : keys) {
      fn(page, sparse_.at(page));
    }
  }

 private:
  std::optional<T>& DenseSlot(PageIndex page) {
    const size_t idx = static_cast<size_t>(page);
    if (idx >= dense_.size()) {
      // First touch sizes the vector for the whole object; growth beyond the
      // declared count only happens for out-of-range pages (a caller bug) and
      // forfeits reference stability for that table.
      dense_.resize(std::max(idx + 1, static_cast<size_t>(page_count_)));
    }
    return dense_[idx];
  }

  bool mode_decided_ = false;
  bool dense_mode_ = false;
  VmSize page_count_ = 0;
  size_t size_ = 0;
  std::vector<std::optional<T>> dense_;
  std::unordered_map<PageIndex, T> sparse_;
};

}  // namespace asvm

#endif  // SRC_COMMON_PAGE_TABLE_H_
