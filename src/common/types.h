// Fundamental identifier and unit types shared by every module.
#ifndef SRC_COMMON_TYPES_H_
#define SRC_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>

namespace asvm {

// Identifies a processing node of the simulated multicomputer. Nodes are numbered
// densely from 0; the value kInvalidNode marks "no node".
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

// Index of a page within a memory object's virtual address range.
using PageIndex = int64_t;
inline constexpr PageIndex kInvalidPage = -1;

// Byte offset / length within an object or address space.
using VmOffset = uint64_t;
using VmSize = uint64_t;

// Globally unique identifier of a distributed memory object. Composed of the
// creating node and a per-node sequence number so ids can be minted without
// coordination.
struct MemObjectId {
  NodeId origin = kInvalidNode;
  uint32_t seq = 0;

  friend bool operator==(const MemObjectId&, const MemObjectId&) = default;
  friend auto operator<=>(const MemObjectId&, const MemObjectId&) = default;

  bool valid() const { return origin != kInvalidNode; }
  std::string ToString() const;
};

inline constexpr MemObjectId kInvalidObject{};

// Access rights a node's VM system holds on a page, mirroring Mach protections
// as used by the EMMI protocol (VM_PROT_*).
enum class PageAccess : uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,  // Write implies read.
};

const char* ToString(PageAccess access);

inline bool AccessAllows(PageAccess held, PageAccess wanted) {
  return static_cast<uint8_t>(held) >= static_cast<uint8_t>(wanted);
}

}  // namespace asvm

template <>
struct std::hash<asvm::MemObjectId> {
  size_t operator()(const asvm::MemObjectId& id) const noexcept {
    return std::hash<uint64_t>()((static_cast<uint64_t>(static_cast<uint32_t>(id.origin)) << 32) |
                                 id.seq);
  }
};

#endif  // SRC_COMMON_TYPES_H_
