#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace asvm {

void Histogram::Record(double value) {
  samples_.push_back(value);
  sorted_ = false;
}

void Histogram::Clear() {
  samples_.clear();
  sum_ = 0.0;
  sorted_ = true;
}

void Histogram::SortIfNeeded() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    // Summing in sorted order makes the floating-point total (and mean) a
    // function of the sample multiset, not of recording order — sharded runs
    // record from several threads, so insertion order is not deterministic.
    sum_ = 0.0;
    for (double s : samples_) {
      sum_ += s;
    }
    sorted_ = true;
  }
}

double Histogram::min() const {
  if (samples_.empty()) {
    return 0.0;
  }
  SortIfNeeded();
  return samples_.front();
}

double Histogram::max() const {
  if (samples_.empty()) {
    return 0.0;
  }
  SortIfNeeded();
  return samples_.back();
}

double Histogram::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  SortIfNeeded();
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::total() const {
  SortIfNeeded();
  return sum_;
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  SortIfNeeded();
  p = std::clamp(p, 0.0, 100.0);
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  const size_t index = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(index, samples_.size() - 1)];
}

void StatsRegistry::Add(const std::string& name, int64_t delta) {
  Counter(name).fetch_add(delta, std::memory_order_relaxed);
}

int64_t StatsRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.load(std::memory_order_relaxed);
}

std::atomic<int64_t>& StatsRegistry::Counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

void StatsRegistry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].Record(value);
}

Histogram& StatsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_[name];
}

const Histogram* StatsRegistry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void StatsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  histograms_.clear();
}

std::string StatsRegistry::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, value] : counters_) {
    out << name << " = " << value.load(std::memory_order_relaxed) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << name << ": n=" << h.count() << " mean=" << h.mean() << " min=" << h.min()
        << " p50=" << h.Percentile(50) << " p99=" << h.Percentile(99) << " max=" << h.max()
        << "\n";
  }
  return out.str();
}

}  // namespace asvm
