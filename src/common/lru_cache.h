// Bounded LRU map used for ASVM's ownership-hint caches. O(1) lookup, insert
// and eviction; least-recently-touched entries fall out when full.
#ifndef SRC_COMMON_LRU_CACHE_H_
#define SRC_COMMON_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>

#include "src/common/log.h"

namespace asvm {

template <typename K, typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) { ASVM_CHECK(capacity > 0); }

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }

  // Returns the value and refreshes recency, or nullptr if absent.
  V* Get(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      return nullptr;
    }
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  // Lookup without touching recency (for stats/tests).
  const V* Peek(const K& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second->second;
  }

  void Put(const K& key, V value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (map_.size() >= capacity_) {
      auto& lru = order_.back();
      map_.erase(lru.first);
      order_.pop_back();
    }
    order_.emplace_front(key, std::move(value));
    map_[key] = order_.begin();
  }

  bool Erase(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      return false;
    }
    order_.erase(it->second);
    map_.erase(it);
    return true;
  }

  void Clear() {
    map_.clear();
    order_.clear();
  }

 private:
  size_t capacity_;
  std::list<std::pair<K, V>> order_;  // front = most recent
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator> map_;
};

}  // namespace asvm

#endif  // SRC_COMMON_LRU_CACHE_H_
