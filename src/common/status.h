// Lightweight status codes used across module boundaries instead of exceptions.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cstdint>

namespace asvm {

enum class Status : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,  // e.g. no free page frames, thread pool exhausted
  kUnavailable,        // transient: retry indicated (push/pull race)
  kFailedPrecondition,
  kDeadlock,  // detected blocking-thread deadlock (XMM internal pager)
  kTimeout,   // pending protocol op exhausted its retries (fault injection)
  kNodeDown,  // peer confirmed removed by the fault plan (not a transient loss)
  kDataLost,  // committed page provably unrecoverable (home + every replica died)
  kInternal,
};

const char* ToString(Status status);

inline bool IsOk(Status status) { return status == Status::kOk; }

}  // namespace asvm

#endif  // SRC_COMMON_STATUS_H_
