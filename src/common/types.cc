#include "src/common/types.h"

namespace asvm {

std::string MemObjectId::ToString() const {
  if (!valid()) {
    return "obj(invalid)";
  }
  return "obj(" + std::to_string(origin) + ":" + std::to_string(seq) + ")";
}

const char* ToString(PageAccess access) {
  switch (access) {
    case PageAccess::kNone:
      return "none";
    case PageAccess::kRead:
      return "read";
    case PageAccess::kWrite:
      return "write";
  }
  return "?";
}

}  // namespace asvm
