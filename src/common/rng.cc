#include "src/common/rng.h"

namespace asvm {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Lemire's method with rejection for exact uniformity.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextRange(int64_t lo, int64_t hi) {
  if (lo >= hi) {
    return lo;
  }
  return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 high bits → [0,1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace asvm
