// Deterministic pseudo-random number generation for workload construction.
// All simulation randomness must flow through Rng instances seeded explicitly,
// so every experiment is exactly reproducible.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace asvm {

// xoshiro256** seeded via splitmix64. Fast, high-quality, and stable across
// platforms (unlike std::mt19937 distributions, whose mapping to ranges is
// implementation-defined via std::uniform_int_distribution).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();

  // Uniform in [0, bound), bound > 0. Uses Lemire's multiply-shift rejection
  // method to avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t NextRange(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Derives an independent child generator; useful for giving each simulated
  // node its own stream without cross-coupling.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace asvm

#endif  // SRC_COMMON_RNG_H_
