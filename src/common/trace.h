// Cross-DSM observability: structured protocol events from every layer of the
// simulated machine (ASVM, XMM, the transports, the mesh fabric, the
// disk/pager path, and the fault plan) flow into one per-machine trace.
//
// The paper's authors built system- and application-level monitoring
// interfaces for ASVM on the Paragon; this generalizes that facility so both
// memory managers and everything beneath them emit into the same sink. Each
// event carries the simulated timestamp, the node it happened on, the
// emitting protocol layer, a message/event kind, the protocol op id (when the
// event belongs to a multi-message exchange), and the object/page involved.
//
// Sinks:
//  * TraceBuffer — bounded in-memory ring + per-kind counters, renderable as
//    the human timeline asvmsim --trace prints.
//  * ChromeTraceJson — serializes a TraceBuffer as Chrome trace_event JSON
//    (one track per node), viewable in Perfetto / chrome://tracing.
//  * AnalyzeFaultBreakdowns — folds a trace into per-fault causal breakdowns
//    (request / forward / manager-service / data-transfer / retry segments)
//    feeding the <dsm>.fault.breakdown.* histograms.
//
// Everything here is host-side: emission never schedules simulator events, so
// with no monitor attached timelines are bit-identical to an untraced run.
#ifndef SRC_COMMON_TRACE_H_
#define SRC_COMMON_TRACE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/sim/time.h"

namespace asvm {

class StatsRegistry;

// Which layer of the machine emitted the event.
enum class TraceProtocol : uint8_t {
  kAsvm = 0,    // ASVM protocol agents
  kXmm,         // XMM proxies / the centralized manager
  kIvy,         // IVY dynamic distributed manager (probable-owner chains)
  kTransport,   // STS / NORMA software send-receive path
  kMesh,        // fabric-level events (fault-plan jitter, dropped messages)
  kDisk,        // paging/file disks (the pager path's physical tail)
  kProtocolCount,
};

const char* ToString(TraceProtocol protocol);

enum class TraceKind : uint8_t {
  // --- ASVM protocol (the original monitor's vocabulary) --------------------
  kFaultRequest = 0,   // node asked its agent for access (page, access in aux)
  kForwardDynamic,     // request forwarded via a dynamic hint (peer = target)
  kForwardStatic,      // request forwarded to/via the static manager
  kForwardGlobal,      // request on the global ring
  kServeOwner,         // owner answered (peer = requester)
  kServeTerminal,      // pager/peer answered a first touch
  kGrantApplied,       // origin integrated a grant (ASVM and XMM)
  kInvalidate,         // owner -> reader invalidation
  kOwnershipMoved,     // ownership changed hands (peer = new owner)
  kEvictStep,          // internode paging step (aux = 1..4)
  kPush,               // push operation initiated
  kPushScan,           // push scan issued
  kPull,               // pull walk executed at a peer
  kWriteback,          // page returned to the pager
  // --- XMM protocol ----------------------------------------------------------
  kXmmRequest,         // proxy sent a request toward the manager (peer)
  kXmmManagerServe,    // manager began serving a request (peer = origin)
  kXmmFlush,           // manager flushed a writer/reader (aux: 1 write, 2 read)
  kXmmGrant,           // manager sent the grant back (peer = origin)
  kXmmCopyFault,       // internal copy pager served a copy fault (peer = src)
  // --- IVY protocol ----------------------------------------------------------
  kIvyRequest,         // origin sent a request toward its probable owner (peer)
  kIvyForward,         // non-owner forwarded along its hint (peer = next hop,
                       // aux = hops so far) — the chain-hop span --breakdown
                       // charges to the forward segment
  kIvyServe,           // true owner began serving (peer = origin, aux = hops)
  kIvyInvalidate,      // owner invalidated a copyset member (peer = reader)
  kIvyGrant,           // owner sent the grant (peer = origin; aux = access,
                       // -1 for a lost-page reply)
  kIvyChainCut,        // death notice re-aimed a hint off a corpse (peer = dead)
  // --- Transport / mesh ------------------------------------------------------
  kMsgSend,            // software send started (peer = dst, aux = wire bytes)
  kMsgRecv,            // handler dispatched (peer = src, aux = wire bytes)
  kMsgDropped,         // fault plan black-holed the message (peer = dst)
  kJitter,             // fault plan delayed a delivery (aux = jitter ns)
  // --- Disk / pager path -----------------------------------------------------
  kDiskRead,           // aux = bytes, page = block position
  kDiskWrite,
  // --- Protocol hardening ----------------------------------------------------
  kRetry,              // pending-op deadline fired a resend (aux = next delay)
  kTimeout,            // pending op exhausted its retries
  // --- Failover ---------------------------------------------------------------
  kFailover,           // op resolved kNodeDown: peer confirmed removed (peer)
  kPromote,            // backup promoted to manager/home (peer = old manager)
  kLeaseReclaim,       // dead owner's lease expired; ownership reclaimed
  kKindCount,
};

const char* ToString(TraceKind kind);

struct TraceEvent {
  SimTime time = 0;
  NodeId node = kInvalidNode;   // where the event happened
  TraceProtocol protocol = TraceProtocol::kAsvm;
  TraceKind kind = TraceKind::kFaultRequest;
  MemObjectId object;
  PageIndex page = kInvalidPage;
  NodeId peer = kInvalidNode;   // counterpart node, if any
  uint64_t op = 0;              // protocol op / request id (0 = none)
  int64_t aux = 0;              // kind-specific detail
  const char* detail = nullptr;  // static label (message type for transport events)
  // Per-node emission sequence, stamped by TraceSink::Emit. A node's events
  // are emitted in its deterministic causal order regardless of shard count,
  // so (time, node, node_seq) is a canonical total order shared by
  // single-threaded and sharded runs (ChromeTraceJson sorts by it).
  uint64_t node_seq = 0;
};

class ProtocolMonitor {
 public:
  virtual ~ProtocolMonitor() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;
};

// Stable indirection the emitting layers hold: the Cluster owns one TraceSink
// and every subsystem keeps a pointer to it, so a monitor can be attached or
// detached at any time without re-wiring. Emission with no monitor attached
// is one branch.
//
// Thread safety: sharded runs emit from several shard threads; the mutex
// serializes monitor delivery and the per-node sequence stamping. Unarmed
// emission stays lock-free.
struct TraceSink {
  ProtocolMonitor* monitor = nullptr;

  bool armed() const { return monitor != nullptr; }
  void Emit(TraceEvent event) {
    if (monitor != nullptr) {
      std::lock_guard<std::mutex> lock(mu_);
      event.node_seq = ++node_seq_[event.node];
      monitor->OnEvent(event);
    }
  }

 private:
  std::mutex mu_;
  std::map<NodeId, uint64_t> node_seq_;
};

// Bounded ring-buffer trace + per-kind counters.
class TraceBuffer : public ProtocolMonitor {
 public:
  explicit TraceBuffer(size_t capacity = 4096) : capacity_(capacity) {}

  void OnEvent(const TraceEvent& event) override {
    ++counts_[static_cast<size_t>(event.kind)];
    ++total_;
    events_.push_back(event);
    if (events_.size() > capacity_) {
      events_.pop_front();
    }
  }

  const std::deque<TraceEvent>& events() const { return events_; }
  int64_t count(TraceKind kind) const { return counts_[static_cast<size_t>(kind)]; }
  int64_t total() const { return total_; }
  void Clear() {
    events_.clear();
    counts_.fill(0);
    total_ = 0;
  }

  // Renders the trace (optionally only events touching `page`) as a
  // timeline, one line per event.
  std::string Render(PageIndex page = kInvalidPage) const;

 private:
  size_t capacity_;
  std::deque<TraceEvent> events_;
  std::array<int64_t, static_cast<size_t>(TraceKind::kKindCount)> counts_{};
  int64_t total_ = 0;
};

// Serializes the trace as Chrome trace_event JSON: instant events on one
// track per node (pid 0, tid = node id), timestamps in microseconds. Events
// are serialized in canonical (time, node, node_seq) order, so the output is
// a pure function of the event multiset — identical runs serialize
// byte-identically, and sharded runs match their single-threaded twin
// byte-for-byte even though buffer insertion order differs.
std::string ChromeTraceJson(const TraceBuffer& trace);

// --- Per-fault causal breakdown ----------------------------------------------

// One completed page-fault exchange, decomposed into the segments the paper's
// Table 1 discusses. Milestones missing from the trace collapse their segment
// to zero, so the four path segments always sum to total_ns; retry_ns is the
// overlapping share of the path spent waiting on deadline-driven resends.
struct FaultBreakdown {
  TraceProtocol protocol = TraceProtocol::kAsvm;
  NodeId origin = kInvalidNode;
  MemObjectId object;
  PageIndex page = kInvalidPage;
  uint64_t op = 0;
  SimTime started = 0;
  SimDuration total_ns = 0;
  SimDuration request_ns = 0;          // origin fault -> first forward / serve
  SimDuration forward_ns = 0;          // forwarding-chain walk
  SimDuration manager_service_ns = 0;  // route end -> grant sent
  SimDuration data_transfer_ns = 0;    // grant sent -> applied at the origin
  SimDuration retry_ns = 0;            // deadline-driven resend delay charged
  int forwards = 0;
  int retries = 0;
};

// Folds the event stream into completed fault breakdowns. ASVM exchanges are
// matched by op id (AccessRequest::req_id); XMM exchanges (which carry no op
// id on the request path) by (origin, object, page).
std::vector<FaultBreakdown> AnalyzeFaultBreakdowns(const std::deque<TraceEvent>& events);

// Observes every breakdown into `<protocol>.fault.breakdown.{total,request,
// forward,manager_service,data_transfer,retry}_ns` histograms.
void RecordFaultBreakdowns(const std::vector<FaultBreakdown>& faults, StatsRegistry& stats);

// Human-readable per-fault table plus per-protocol segment means.
std::string RenderFaultBreakdowns(const std::vector<FaultBreakdown>& faults);

}  // namespace asvm

#endif  // SRC_COMMON_TRACE_H_
