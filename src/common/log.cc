#include "src/common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

namespace asvm {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kTrace:
      return "T";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

namespace log_detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
}

}  // namespace log_detail

void AsvmCheckFail(const char* cond, const char* file, int line, std::string_view extra) {
  std::cerr << "CHECK failed: " << cond << " at " << file << ":" << line;
  if (!extra.empty()) {
    std::cerr << " — " << extra;
  }
  std::cerr << std::endl;
  std::abort();
}

}  // namespace asvm
