#include "src/common/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "src/common/stats.h"

namespace asvm {

const char* ToString(TraceProtocol protocol) {
  switch (protocol) {
    case TraceProtocol::kAsvm:
      return "asvm";
    case TraceProtocol::kXmm:
      return "xmm";
    case TraceProtocol::kIvy:
      return "ivy";
    case TraceProtocol::kTransport:
      return "transport";
    case TraceProtocol::kMesh:
      return "mesh";
    case TraceProtocol::kDisk:
      return "disk";
    case TraceProtocol::kProtocolCount:
      break;
  }
  return "?";
}

const char* ToString(TraceKind kind) {
  switch (kind) {
    case TraceKind::kFaultRequest:
      return "fault-request";
    case TraceKind::kForwardDynamic:
      return "fwd-dynamic";
    case TraceKind::kForwardStatic:
      return "fwd-static";
    case TraceKind::kForwardGlobal:
      return "fwd-global";
    case TraceKind::kServeOwner:
      return "serve-owner";
    case TraceKind::kServeTerminal:
      return "serve-terminal";
    case TraceKind::kGrantApplied:
      return "grant-applied";
    case TraceKind::kInvalidate:
      return "invalidate";
    case TraceKind::kOwnershipMoved:
      return "ownership-moved";
    case TraceKind::kEvictStep:
      return "evict-step";
    case TraceKind::kPush:
      return "push";
    case TraceKind::kPushScan:
      return "push-scan";
    case TraceKind::kPull:
      return "pull";
    case TraceKind::kWriteback:
      return "writeback";
    case TraceKind::kXmmRequest:
      return "xmm-request";
    case TraceKind::kXmmManagerServe:
      return "xmm-manager-serve";
    case TraceKind::kXmmFlush:
      return "xmm-flush";
    case TraceKind::kXmmGrant:
      return "xmm-grant";
    case TraceKind::kXmmCopyFault:
      return "xmm-copy-fault";
    case TraceKind::kIvyRequest:
      return "ivy-request";
    case TraceKind::kIvyForward:
      return "ivy-forward";
    case TraceKind::kIvyServe:
      return "ivy-serve";
    case TraceKind::kIvyInvalidate:
      return "ivy-invalidate";
    case TraceKind::kIvyGrant:
      return "ivy-grant";
    case TraceKind::kIvyChainCut:
      return "ivy-chain-cut";
    case TraceKind::kMsgSend:
      return "msg-send";
    case TraceKind::kMsgRecv:
      return "msg-recv";
    case TraceKind::kMsgDropped:
      return "msg-dropped";
    case TraceKind::kJitter:
      return "jitter";
    case TraceKind::kDiskRead:
      return "disk-read";
    case TraceKind::kDiskWrite:
      return "disk-write";
    case TraceKind::kRetry:
      return "retry";
    case TraceKind::kTimeout:
      return "timeout";
    case TraceKind::kFailover:
      return "failover";
    case TraceKind::kPromote:
      return "promote";
    case TraceKind::kLeaseReclaim:
      return "lease-reclaim";
    case TraceKind::kKindCount:
      break;
  }
  return "?";
}

std::string TraceBuffer::Render(PageIndex page) const {
  std::ostringstream out;
  for (const TraceEvent& e : events_) {
    if (page != kInvalidPage && e.page != page) {
      continue;
    }
    char line[192];
    if (e.peer != kInvalidNode) {
      std::snprintf(line, sizeof(line),
                    "%10.3f ms  node %-3d [%-9s] %-16s %s page %lld  -> node %d",
                    ToMilliseconds(e.time), e.node, ToString(e.protocol), ToString(e.kind),
                    e.object.ToString().c_str(), static_cast<long long>(e.page), e.peer);
    } else {
      std::snprintf(line, sizeof(line), "%10.3f ms  node %-3d [%-9s] %-16s %s page %lld",
                    ToMilliseconds(e.time), e.node, ToString(e.protocol), ToString(e.kind),
                    e.object.ToString().c_str(), static_cast<long long>(e.page));
    }
    out << line;
    if (e.kind == TraceKind::kEvictStep) {
      out << "  (step " << e.aux << ")";
    }
    if (e.detail != nullptr) {
      out << "  " << e.detail;
    }
    if (e.op != 0) {
      out << "  op " << e.op;
    }
    out << "\n";
  }
  return out.str();
}

namespace {

// Appends a sim-time as microseconds with fixed three fractional digits
// ("1234.567"). Pure integer arithmetic — no locale or float formatting that
// could vary between hosts.
void AppendMicros(std::ostringstream& out, SimTime t) {
  out << t / 1000 << '.';
  const long long frac = t % 1000;
  out << static_cast<char>('0' + frac / 100) << static_cast<char>('0' + (frac / 10) % 10)
      << static_cast<char>('0' + frac % 10);
}

}  // namespace

std::string ChromeTraceJson(const TraceBuffer& trace) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;

  // One named track per node: Perfetto shows tid metadata as row labels.
  std::set<NodeId> nodes;
  for (const TraceEvent& e : trace.events()) {
    if (e.node != kInvalidNode) {
      nodes.insert(e.node);
    }
  }
  for (NodeId node : nodes) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << node
        << ",\"args\":{\"name\":\"node " << node << "\"}}";
  }

  // Canonical event order: (time, node, node_seq). Buffer insertion order is
  // interleaving-dependent in sharded runs; this sort makes the JSON a pure
  // function of the event multiset.
  std::vector<TraceEvent> ordered(trace.events().begin(), trace.events().end());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.time != b.time) {
                       return a.time < b.time;
                     }
                     if (a.node != b.node) {
                       return a.node < b.node;
                     }
                     return a.node_seq < b.node_seq;
                   });
  for (const TraceEvent& e : ordered) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n{\"name\":\"" << ToString(e.kind) << "\",\"cat\":\"" << ToString(e.protocol)
        << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" << e.node << ",\"ts\":";
    AppendMicros(out, e.time);
    out << ",\"args\":{\"object\":\"" << e.object.ToString() << "\",\"page\":" << e.page;
    if (e.peer != kInvalidNode) {
      out << ",\"peer\":" << e.peer;
    }
    if (e.op != 0) {
      out << ",\"op\":" << e.op;
    }
    if (e.aux != 0) {
      out << ",\"aux\":" << e.aux;
    }
    if (e.detail != nullptr) {
      out << ",\"detail\":\"" << e.detail << "\"";
    }
    out << "}}";
  }
  out << "\n]}\n";
  return out.str();
}

// --- Fault breakdown ---------------------------------------------------------

namespace {

struct OpenFault {
  FaultBreakdown b;
  SimTime fwd_first = -1;
  SimTime fwd_last = -1;
  SimTime serve = -1;
  SimTime grant_sent = -1;
};

void Close(const OpenFault& o, SimTime done, std::vector<FaultBreakdown>* out) {
  FaultBreakdown b = o.b;
  const SimTime t0 = b.started;
  // Milestones happen in event order, so each boundary falls back to the
  // previous one when the trace never recorded it.
  const SimTime route_start = o.fwd_first >= 0 ? o.fwd_first : (o.serve >= 0 ? o.serve : done);
  SimTime route_end = o.fwd_last >= 0 ? std::max(o.fwd_last, route_start) : route_start;
  if (b.protocol == TraceProtocol::kIvy && o.fwd_first >= 0 && o.serve >= 0) {
    // IVY emits each chain hop after the relay's processing delay, so the walk
    // spans from the first hop's emission until the true owner starts serving
    // — otherwise a single-hop chain would charge its relay to the service
    // segment.
    route_end = std::max(route_end, o.serve);
  }
  SimTime granted = o.grant_sent >= 0 ? o.grant_sent : (o.serve >= 0 ? o.serve : route_end);
  granted = std::max(granted, route_end);
  b.total_ns = done - t0;
  b.request_ns = route_start - t0;
  b.forward_ns = route_end - route_start;
  b.manager_service_ns = granted - route_end;
  b.data_transfer_ns = done - granted;
  out->push_back(b);
}

}  // namespace

std::vector<FaultBreakdown> AnalyzeFaultBreakdowns(const std::deque<TraceEvent>& events) {
  // ASVM exchanges carry the request id on every hop; XMM requests carry no op
  // id, so they match on (origin, object, page) — valid because a node blocks
  // in the kernel on a faulting page until the manager's grant lands.
  std::map<uint64_t, OpenFault> by_op;
  std::map<std::tuple<NodeId, NodeId, uint32_t, PageIndex>, OpenFault> by_loc;
  std::vector<FaultBreakdown> out;

  auto loc_key = [](NodeId origin, const MemObjectId& object, PageIndex page) {
    return std::make_tuple(origin, object.origin, object.seq, page);
  };

  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceKind::kFaultRequest: {
        if (e.op == 0) {
          break;
        }
        OpenFault& o = by_op[e.op];
        o = OpenFault{};
        o.b.protocol = TraceProtocol::kAsvm;
        o.b.origin = e.node;
        o.b.object = e.object;
        o.b.page = e.page;
        o.b.op = e.op;
        o.b.started = e.time;
        break;
      }
      case TraceKind::kXmmRequest: {
        OpenFault& o = by_loc[loc_key(e.node, e.object, e.page)];
        o = OpenFault{};
        o.b.protocol = TraceProtocol::kXmm;
        o.b.origin = e.node;
        o.b.object = e.object;
        o.b.page = e.page;
        o.b.started = e.time;
        break;
      }
      case TraceKind::kIvyRequest: {
        // A local fault served by the owning node itself never goes on the
        // wire (op == 0) and contributes no exchange.
        if (e.op == 0) {
          break;
        }
        OpenFault& o = by_op[e.op];
        o = OpenFault{};
        o.b.protocol = TraceProtocol::kIvy;
        o.b.origin = e.node;
        o.b.object = e.object;
        o.b.page = e.page;
        o.b.op = e.op;
        o.b.started = e.time;
        break;
      }
      case TraceKind::kForwardDynamic:
      case TraceKind::kForwardStatic:
      case TraceKind::kForwardGlobal:
      case TraceKind::kIvyForward: {
        auto it = by_op.find(e.op);
        if (it != by_op.end()) {
          if (it->second.fwd_first < 0) {
            it->second.fwd_first = e.time;
          }
          it->second.fwd_last = e.time;
          ++it->second.b.forwards;
        }
        break;
      }
      case TraceKind::kServeOwner:
      case TraceKind::kServeTerminal:
      case TraceKind::kPull:
      case TraceKind::kIvyServe: {
        auto it = by_op.find(e.op);
        if (it != by_op.end() && it->second.serve < 0) {
          it->second.serve = e.time;
        }
        break;
      }
      case TraceKind::kXmmManagerServe: {
        auto it = by_loc.find(loc_key(e.peer, e.object, e.page));
        if (it != by_loc.end() && it->second.serve < 0) {
          it->second.serve = e.time;
        }
        break;
      }
      case TraceKind::kXmmGrant: {
        auto it = by_loc.find(loc_key(e.peer, e.object, e.page));
        if (it != by_loc.end()) {
          it->second.grant_sent = e.time;
        }
        break;
      }
      case TraceKind::kIvyGrant: {
        auto it = by_op.find(e.op);
        if (it != by_op.end()) {
          it->second.grant_sent = e.time;
        }
        break;
      }
      case TraceKind::kRetry: {
        auto it = by_op.find(e.op);
        if (it != by_op.end()) {
          ++it->second.b.retries;
          it->second.b.retry_ns += e.aux;
        }
        break;
      }
      case TraceKind::kTimeout:
      case TraceKind::kFailover: {
        // The exchange failed; it contributes no completed breakdown.
        by_op.erase(e.op);
        break;
      }
      case TraceKind::kGrantApplied: {
        if (e.protocol == TraceProtocol::kXmm) {
          auto it = by_loc.find(loc_key(e.node, e.object, e.page));
          if (it != by_loc.end()) {
            Close(it->second, e.time, &out);
            by_loc.erase(it);
          }
        } else {
          auto it = by_op.find(e.op);
          if (it != by_op.end()) {
            Close(it->second, e.time, &out);
            by_op.erase(it);
          }
        }
        break;
      }
      case TraceKind::kInvalidate:
      case TraceKind::kIvyInvalidate:
      case TraceKind::kIvyChainCut:
      case TraceKind::kOwnershipMoved:
      case TraceKind::kEvictStep:
      case TraceKind::kPush:
      case TraceKind::kPushScan:
      case TraceKind::kWriteback:
      case TraceKind::kXmmFlush:
      case TraceKind::kXmmCopyFault:
      case TraceKind::kMsgSend:
      case TraceKind::kMsgRecv:
      case TraceKind::kMsgDropped:
      case TraceKind::kJitter:
      case TraceKind::kDiskRead:
      case TraceKind::kDiskWrite:
      case TraceKind::kPromote:
      case TraceKind::kLeaseReclaim:
      case TraceKind::kKindCount:
        break;
    }
  }
  return out;
}

void RecordFaultBreakdowns(const std::vector<FaultBreakdown>& faults, StatsRegistry& stats) {
  for (const FaultBreakdown& f : faults) {
    const std::string prefix = std::string(ToString(f.protocol)) + ".fault.breakdown.";
    stats.Observe(prefix + "total_ns", static_cast<double>(f.total_ns));
    stats.Observe(prefix + "request_ns", static_cast<double>(f.request_ns));
    stats.Observe(prefix + "forward_ns", static_cast<double>(f.forward_ns));
    stats.Observe(prefix + "manager_service_ns", static_cast<double>(f.manager_service_ns));
    stats.Observe(prefix + "data_transfer_ns", static_cast<double>(f.data_transfer_ns));
    stats.Observe(prefix + "retry_ns", static_cast<double>(f.retry_ns));
  }
}

std::string RenderFaultBreakdowns(const std::vector<FaultBreakdown>& faults) {
  std::ostringstream out;
  out << "fault breakdowns (" << faults.size() << " completed)\n";
  out << "  proto node  object     page    total_us  request  forward  service  transfer  "
         "retry  fwds\n";
  struct Sum {
    SimDuration total = 0, request = 0, forward = 0, service = 0, transfer = 0, retry = 0;
    int64_t count = 0;
  };
  std::map<std::string, Sum> sums;
  for (const FaultBreakdown& f : faults) {
    char line[192];
    std::snprintf(line, sizeof(line),
                  "  %-5s %-4d  %-9s %5lld  %10.1f %8.1f %8.1f %8.1f %9.1f %6.1f  %4d\n",
                  ToString(f.protocol), f.origin, f.object.ToString().c_str(),
                  static_cast<long long>(f.page), f.total_ns / 1e3, f.request_ns / 1e3,
                  f.forward_ns / 1e3, f.manager_service_ns / 1e3, f.data_transfer_ns / 1e3,
                  f.retry_ns / 1e3, f.forwards);
    out << line;
    Sum& s = sums[ToString(f.protocol)];
    s.total += f.total_ns;
    s.request += f.request_ns;
    s.forward += f.forward_ns;
    s.service += f.manager_service_ns;
    s.transfer += f.data_transfer_ns;
    s.retry += f.retry_ns;
    ++s.count;
  }
  for (const auto& [proto, s] : sums) {
    const double n = static_cast<double>(s.count);
    char line[192];
    std::snprintf(line, sizeof(line),
                  "  %-5s mean over %lld faults (us): total %.1f = request %.1f + forward %.1f + "
                  "service %.1f + transfer %.1f (retry wait %.1f)\n",
                  proto.c_str(), static_cast<long long>(s.count), s.total / n / 1e3,
                  s.request / n / 1e3, s.forward / n / 1e3, s.service / n / 1e3,
                  s.transfer / n / 1e3, s.retry / n / 1e3);
    out << line;
  }
  return out.str();
}

}  // namespace asvm
