// Statistics collection: named counters and latency histograms. Every protocol
// module records into a StatsRegistry owned by the Machine so experiments can
// report message counts, bytes moved, disk operations and fault latencies.
//
// Thread safety: sharded runs (src/sim/sharded_engine.h) record from several
// shard threads at once. Counters are atomics behind a mutex-guarded name map
// (map nodes are stable, so hot paths still cache a pointer and increment
// lock-free); histogram recording takes the registry mutex. Because addition
// commutes and summaries are computed over sorted samples, every reported
// value is independent of thread interleaving.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace asvm {

// Accumulates observations of a scalar (e.g. latency in nanoseconds) and
// reports count/min/max/mean/percentiles. Stores raw samples; simulation runs
// are short enough that this is cheap and makes percentiles exact. Summaries
// (including mean and total) are computed over the sorted samples, so they do
// not depend on recording order.
class Histogram {
 public:
  void Record(double value);
  void Clear();

  size_t count() const { return samples_.size(); }
  double min() const;
  double max() const;
  double mean() const;
  double total() const;
  // p in [0,100]; nearest-rank on the sorted samples.
  double Percentile(double p) const;

 private:
  void SortIfNeeded() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  mutable double sum_ = 0.0;  // canonical: summed in sorted order
};

// Registry of named counters and histograms. Names are hierarchical by
// convention ("transport.sts.messages", "asvm.fault.write_ns").
class StatsRegistry {
 public:
  void Add(const std::string& name, int64_t delta = 1);
  int64_t Get(const std::string& name) const;

  // Reference to a named counter, creating it at zero. std::map nodes are
  // stable, so hot paths may cache the reference and increment it directly
  // instead of paying a string lookup per event.
  std::atomic<int64_t>& Counter(const std::string& name);

  void Observe(const std::string& name, double value);
  const Histogram* FindHistogram(const std::string& name) const;
  Histogram& histogram(const std::string& name);

  void Clear();

  // Not safe against concurrent Add/Observe of *new* names; call only while
  // the simulation is quiescent (between runs / after drain).
  const std::map<std::string, std::atomic<int64_t>>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  // Human-readable dump of all counters and histogram summaries.
  std::string Report() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::atomic<int64_t>> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace asvm

#endif  // SRC_COMMON_STATS_H_
