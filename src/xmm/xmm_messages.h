// XMMI protocol messages, carried over NORMA-IPC. XMMI extends EMMI between
// the per-node XMM proxies and the centralized manager (paper §2.3); its
// verbosity — five messages, two carrying page contents, for one write
// transfer — is one of the inefficiencies ASVM removes.
#ifndef SRC_XMM_XMM_MESSAGES_H_
#define SRC_XMM_XMM_MESSAGES_H_

#include <cstdint>
#include <variant>
#include <vector>

#include "src/common/types.h"

namespace asvm {

enum class XmmMsgType : uint32_t {
  kRequest = 1,      // proxy -> manager: data_request / data_unlock
  kReply,            // manager -> proxy: data supply / zero fill / upgrade
  kFlushWrite,       // manager -> current writer: return modified page
  kFlushWriteReply,  // writer -> manager: page contents + dirty flag
  kFlushRead,        // manager -> reader: invalidate read copy
  kFlushReadAck,
  kCopyFault,        // remote child -> internal copy pager on the source node
  kCopyFaultReply,
  kShadowUpdate,     // manager -> backup: replicated directory/page state
  kShadowManifest,   // manager -> witness: "this page was committed" (no data)
};

struct XmmRequest {
  MemObjectId object;
  PageIndex page = kInvalidPage;
  PageAccess access = PageAccess::kRead;
  NodeId origin = kInvalidNode;
  bool has_copy = false;  // origin already holds a read copy (upgrade)
  // Failover: pending-op id armed at the proxy so manager silence is
  // detected (0 = legacy fire-and-forget request, never retried).
  uint64_t op_id = 0;
};

struct XmmReply {
  MemObjectId object;
  PageIndex page = kInvalidPage;
  PageAccess granted = PageAccess::kNone;
  bool zero_fill = false;
  bool upgrade = false;
  uint64_t op_id = 0;  // echo of XmmRequest::op_id
  // Failover: the page was committed (cleaned into the manager's pager level)
  // but the manager and every replica died before promotion could fold it in —
  // the fault must fail Status::kDataLost instead of silently zero-filling.
  bool lost = false;
};

// Manager -> backup: the page contents the manager just accepted into its
// coherent pager-level copy (dirty cleaning or eviction return). The backup
// keeps the newest buffer per page; on promotion it becomes the new
// manager's pager copy, replacing the paging space that died with the node.
// The same body (no page payload) rides kShadowManifest to the backup's own
// successor — a witness record that the page was committed, so a promotion
// that finds neither shadow data nor a surviving copy can tell "never
// written" (zero-fill) apart from "written and lost" (kDataLost).
struct XmmShadowUpdate {
  MemObjectId object;
  PageIndex page = kInvalidPage;
};

struct XmmFlush {
  MemObjectId object;
  PageIndex page = kInvalidPage;
  uint64_t op_id = 0;
};

struct XmmFlushWriteReply {
  MemObjectId object;
  PageIndex page = kInvalidPage;
  bool dirty = false;
  bool was_resident = false;
  uint64_t op_id = 0;
};

struct XmmCopyFault {
  MemObjectId object;            // the internal-pager object
  PageIndex page = kInvalidPage;
  NodeId origin = kInvalidNode;
  // Nodes whose copy-pager threads are blocked on this request chain; used
  // for the deadlock the paper ascribes to XMM's synchronous design (§3.1).
  std::vector<NodeId> path;
};

struct XmmCopyFaultReply {
  MemObjectId object;
  PageIndex page = kInvalidPage;
  bool zero_fill = false;
  bool deadlock = false;
};

// Typed envelope body for the XMMI protocol; one alternative per wire format
// (XmmFlush serves both flush directions, XmmFlushWriteReply doubles as the
// read-flush ack — the type tag disambiguates, as on the real wire).
using XmmBody = std::variant<XmmRequest, XmmReply, XmmFlush, XmmFlushWriteReply, XmmCopyFault,
                             XmmCopyFaultReply, XmmShadowUpdate>;

// Stats/debug label per message type; exhaustive under -Werror=switch.
constexpr const char* MsgTypeName(XmmMsgType type) {
  switch (type) {
    case XmmMsgType::kRequest:
      return "request";
    case XmmMsgType::kReply:
      return "reply";
    case XmmMsgType::kFlushWrite:
      return "flush_write";
    case XmmMsgType::kFlushWriteReply:
      return "flush_write_reply";
    case XmmMsgType::kFlushRead:
      return "flush_read";
    case XmmMsgType::kFlushReadAck:
      return "flush_read_ack";
    case XmmMsgType::kCopyFault:
      return "copy_fault";
    case XmmMsgType::kCopyFaultReply:
      return "copy_fault_reply";
    case XmmMsgType::kShadowUpdate:
      return "shadow_update";
    case XmmMsgType::kShadowManifest:
      return "shadow_manifest";
  }
  return "unknown";
}

}  // namespace asvm

#endif  // SRC_XMM_XMM_MESSAGES_H_
