// Per-node XMM component. On every node it acts as the proxy (the Pager of
// local representations, forwarding requests to the manager over NORMA-IPC);
// on an object's manager node it additionally runs the centralized manager
// with its per-(page × node) state table; on fork-source nodes it hosts the
// internal copy pagers.
#ifndef SRC_XMM_XMM_AGENT_H_
#define SRC_XMM_XMM_AGENT_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/page_table.h"
#include "src/common/types.h"
#include "src/dsm/protocol_agent.h"
#include "src/machvm/node_vm.h"
#include "src/machvm/pager.h"
#include "src/machvm/task_memory.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/xmm/xmm_system.h"

namespace asvm {

class XmmAgent : public Pager, public ProtocolAgent {
 public:
  XmmAgent(XmmSystem& system, NodeId node);
  ~XmmAgent() override;

  std::shared_ptr<VmObject> Attach(const MemObjectId& id);

  // Manager-side state for one object (only on the manager node).
  struct ManagerState {
    // One byte per page per node — the memory consumption the paper calls
    // out as XMM's scalability problem (§3.1).
    std::vector<uint8_t> access;  // [page * nodes + node]
    struct PageCtl {
      bool busy = false;
      std::deque<XmmRequest> queue;
      // After the manager created a "coherent version at the pager", the
      // pager holds the current contents in memory (clean).
      PageBuffer pager_copy;
    };
    PageTable<PageCtl> pages;
    // Failover: pages proven committed-and-lost by a promotion (a survivor
    // witnessed the commit, but the contents died with the manager and every
    // replica). Faults on these answer Status::kDataLost, never zeros.
    std::set<PageIndex> lost;
  };

  // Copy-pager state on a fork-source node: the frozen local copy map one
  // internal pager object serves from, plus the shared thread pool.
  struct CopyPagerEntry {
    VmMap* copy_map = nullptr;
    VmOffset base_page = 0;  // virtual page in copy_map of the object's page 0
  };

  size_t MetadataBytes() const;
  SimSemaphore& copy_threads() { return copy_threads_; }

  // XMM stack processing occupies this node's CPU: one request at a time.
  // This serialization — on top of NORMA's — is what saturates the
  // centralized manager in Table 2.
  Future<Status> StackProcess();

  // --- Pager (EMMI upcalls from the local kernel) ---------------------------

  void DataRequest(VmObject& object, PageIndex page, PageAccess desired) override;
  void DataUnlock(VmObject& object, PageIndex page, PageAccess desired) override;
  EvictAction OnEvict(VmObject& object, PageIndex page, PageBuffer data, bool dirty) override;
  void LockCompleted(VmObject& object, PageIndex page, LockResult result) override;
  void PullCompleted(VmObject& object, PageIndex page, PullResult result) override;

 private:
  friend class XmmSystem;

  // reuse_op keeps a reissued request part of the same transaction as the
  // original: the manager's dedup table already knows the id, so a serve still
  // in flight is not started twice, and its eventual reply resolves the live
  // op instead of being dropped as a straggler (which would discard the only
  // copy of the page mid-ownership-transfer and reissue forever).
  void SendRequest(const MemObjectId& id, PageIndex page, PageAccess access, bool has_copy,
                   uint64_t reuse_op = 0);

  // --- Failover (DESIGN.md §14) ---------------------------------------------

  // True when this node used to manage `info`'s object but a promotion moved
  // the role elsewhere (we were removed). A deposed ManagerServe coroutine
  // abandons its exchange instead of touching state that now lives on the
  // promoted backup (or that a cold restart has erased).
  bool Deposed(const XmmObjectInfo& info) const;

  // Streams page contents to `primary`'s backup (first alive ring successor).
  // The manager mirrors its coherent pager copies (primary = itself); a proxy
  // evicting a dirty page while the manager is dead redirects the data return
  // here (primary = the dead manager) so the contents survive promotion.
  // No-op with failover disabled or no other node alive.
  void MirrorToBackup(NodeId primary, const MemObjectId& id, PageIndex page,
                      const PageBuffer& data);

  // Re-sends everything in this node's own shadow ledger (pages it has
  // mirrored as a primary) to `backup` — run when the ring rule names a new
  // backup, so a backup's death or rejoin never strands the shadow stream.
  void ReplayShadowLedger(NodeId backup);

  // Death-notice hook: if this node's shadow stream was aimed at `dead`,
  // re-target it at the new ring successor and replay the ledger there.
  void RetargetShadowStream(NodeId dead);

  // Control-only commit witness to the backup's own successor (see
  // XmmShadowUpdate). No-op when no third node is alive.
  void SendShadowManifest(const MemObjectId& id, PageIndex page, NodeId backup);

  // kNodeDown recovery: promote the dead manager's backup at the next
  // sequencing point, then replay the request against the new manager under
  // the original op id (see SendRequest's reuse_op).
  void ReissueAfterPromotion(const MemObjectId& id, PageIndex page, PageAccess access,
                             bool has_copy, uint64_t reuse_op);

  // Manager role.
  void ManagerHandle(XmmRequest req);
  Task ManagerServe(XmmRequest req);
  ManagerState& mgr_state(const MemObjectId& id);
  uint8_t& AccessByte(ManagerState& ms, PageIndex page, NodeId node);
  NodeId FindWriter(ManagerState& ms, const MemObjectId& id, PageIndex page);
  std::vector<NodeId> FindReaders(ManagerState& ms, const MemObjectId& id, PageIndex page,
                                  NodeId except);

  // Copy-pager role.
  Task CopyFaultTask(NodeId src, XmmCopyFault m);

  void OnMessage(NodeId src, Message msg) override;
  void Send(NodeId to, XmmMsgType type, XmmBody body, PageBuffer page = nullptr);

  // Stall-watchdog probe: base pending ops plus the manager-side picture
  // (busy pages, parked request queues) for objects managed here.
  bool DescribeStall(std::string& out) const override;

  // Pending flush rounds live in the ProtocolAgent pending-op table (the
  // write-flush data/dirty/was_resident ride in PendingOp).

  XmmSystem& system_;
  NodeVm& vm_;
  FailoverConfig failover_;
  SimSemaphore copy_threads_;
  // Backup role: newest shadowed page contents per object, streamed from
  // primaries whose ring successor this node is. Ordered maps so promotion
  // seeds pager copies in a shard-count-invariant order.
  std::map<MemObjectId, std::map<PageIndex, PageBuffer>> shadow_;
  // Primary role: the ledger of everything this node has mirrored, plus the
  // node the stream currently feeds. When the ring rule names a new backup
  // (the old one died or rejoined cold) the whole ledger is replayed there
  // (see RetargetShadowStream / ReplayShadowLedger).
  std::map<MemObjectId, std::map<PageIndex, PageBuffer>> sent_shadow_;
  NodeId shadow_target_ = kInvalidNode;
  // Witness role: pages some primary committed (control-only manifest).
  std::map<MemObjectId, std::set<PageIndex>> shadow_manifest_;
  std::unordered_map<MemObjectId, std::shared_ptr<VmObject>> reprs_;
  std::unordered_map<MemObjectId, std::unique_ptr<ManagerState>> manager_;
  std::unordered_map<MemObjectId, CopyPagerEntry> copy_pagers_;
  // Path of the copy fault currently being served by a local pager thread, so
  // nested faults extend it for cycle detection. Best-effort under
  // concurrency (detection, not correctness).
  const std::vector<NodeId>* copy_fault_path_ = nullptr;
};

}  // namespace asvm

#endif  // SRC_XMM_XMM_AGENT_H_
