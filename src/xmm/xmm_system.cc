#include "src/xmm/xmm_system.h"

#include "src/common/log.h"
#include "src/xmm/xmm_agent.h"

namespace asvm {

XmmSystem::XmmSystem(Cluster& cluster, XmmConfig config)
    : cluster_(cluster), config_(config) {
  InitOpIds(cluster.node_count());
  agents_.reserve(cluster.node_count());
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    agents_.push_back(std::make_unique<XmmAgent>(*this, n));
  }
}

XmmSystem::~XmmSystem() = default;

XmmObjectInfo& XmmSystem::info(const MemObjectId& id) {
  auto it = directory_.find(id);
  ASVM_CHECK_MSG(it != directory_.end(), "unknown XMM object");
  return *it->second;
}

MemObjectId XmmSystem::CreateSharedRegion(NodeId home, VmSize pages) {
  cluster_.AssertDriverQuiescent("XMM CreateSharedRegion from inside a shard window");
  MemObjectId id = NewObjectId(home);
  auto info = std::make_unique<XmmObjectInfo>();
  info->id = id;
  info->pages = pages;
  info->manager = home;
  info->backing = std::make_unique<AnonBacking>(cluster_.engine_for(home),
                                                cluster_.default_pager(home),
                                                NextXmmBackingKey());
  directory_[id] = std::move(info);
  return id;
}

MemObjectId XmmSystem::CreateFileRegion(int32_t file_id, VmSize pages) {
  cluster_.AssertDriverQuiescent("XMM CreateFileRegion from inside a shard window");
  FilePager& pager = cluster_.file_pager();
  MemObjectId id = NewObjectId(pager.node());
  auto info = std::make_unique<XmmObjectInfo>();
  info->id = id;
  info->pages = pages;
  info->manager = pager.node();
  info->backing = std::make_unique<FileBacking>(pager, file_id);
  info->file_backed = true;
  directory_[id] = std::move(info);
  return id;
}

MemObjectId XmmSystem::CreateStripedRegion(const std::vector<StripedBacking::Stripe>& stripes,
                                           VmSize pages) {
  cluster_.AssertDriverQuiescent("XMM CreateStripedRegion from inside a shard window");
  ASVM_CHECK(!stripes.empty());
  // The stripes scale the disks, but XMM still has exactly one manager.
  MemObjectId id = NewObjectId(stripes[0].pager->node());
  auto info = std::make_unique<XmmObjectInfo>();
  info->id = id;
  info->pages = pages;
  info->manager = stripes[0].pager->node();
  info->backing = std::make_unique<StripedBacking>(stripes);
  info->file_backed = true;
  directory_[id] = std::move(info);
  return id;
}

std::shared_ptr<VmObject> XmmSystem::Attach(NodeId node, const MemObjectId& id) {
  return agent(node).Attach(id);
}

Future<VmMap*> XmmSystem::RemoteFork(NodeId src, VmMap& parent, NodeId dst) {
  // Forks mutate the directory mid-run; arm the mutation API before the first
  // drain so the cluster runs on the windowed, mutation-aware schedule.
  cluster_.mutator().Arm();
  Promise<VmMap*> done(cluster_.engine_for(src));
  (void)RemoteForkTask(src, parent, dst, done);
  return done.GetFuture();
}

Task XmmSystem::RemoteForkTask(NodeId src, VmMap& parent, NodeId dst, Promise<VmMap*> done) {
  Engine& engine = cluster_.engine_for(src);
  // Task creation ships the map description over NORMA.
  co_await Delay(engine, 800 * kMicrosecond);
  // The structural work mutates the directory and both nodes' VM state, so it
  // runs as one mutation at the next deterministic sequencing point (every
  // engine quiescent), one lookahead after this instant.
  Promise<VmMap*> built(engine);
  VmMap* parent_ptr = &parent;
  cluster_.mutator().Enqueue(src, [this, src, parent_ptr, dst, built]() {
    built.Set(ApplyRemoteFork(src, *parent_ptr, dst));
  });
  done.Set(co_await built.GetFuture());
}

VmMap* XmmSystem::ApplyRemoteFork(NodeId src, VmMap& parent, NodeId dst) {
  cluster_.stats().Add("xmm.remote_forks");

  // NMK13 leaves the work to the source node's VM: take a local fork-style
  // copy of the address space, then export each copied range through an
  // internal pager (§2.3.3).
  NodeVm& src_vm = cluster_.vm(src);
  VmMap* copy_map = src_vm.ForkMap(parent);

  NodeVm& dst_vm = cluster_.vm(dst);
  VmMap* child = dst_vm.CreateMap();

  for (auto& [start, copy_entry] : copy_map->entries()) {
    if (copy_entry.inheritance == Inheritance::kNone) {
      continue;
    }
    if (copy_entry.inheritance == Inheritance::kShare) {
      ASVM_CHECK_MSG(copy_entry.object->managed(),
                     "NMK13 XMM cannot share anonymous memory across nodes");
      auto repr = Attach(dst, copy_entry.object->id());
      Status s = child->Map(copy_entry.start_page, copy_entry.page_count, repr,
                            copy_entry.object_offset, copy_entry.inheritance);
      ASVM_CHECK(IsOk(s));
      continue;
    }
    // One internal pager per copied memory object.
    MemObjectId id = NewObjectId(src);
    auto info = std::make_unique<XmmObjectInfo>();
    info->id = id;
    info->pages = copy_entry.object->page_count();
    info->manager = src;
    info->copy_pager_node = src;
    directory_[id] = std::move(info);

    XmmAgent::CopyPagerEntry pager_entry;
    pager_entry.copy_map = copy_map;
    pager_entry.base_page = copy_entry.start_page - copy_entry.object_offset;
    agent(src).copy_pagers_[id] = pager_entry;
    cluster_.stats().Add("xmm.internal_pagers");

    auto repr = Attach(dst, id);
    Status s = child->Map(copy_entry.start_page, copy_entry.page_count, repr,
                          copy_entry.object_offset, Inheritance::kCopy);
    ASVM_CHECK(IsOk(s));
  }
  return child;
}

size_t XmmSystem::MetadataBytes(NodeId node) const {
  return agents_.at(node)->MetadataBytes();
}

}  // namespace asvm
