#include "src/xmm/xmm_system.h"

#include <algorithm>
#include <vector>

#include "src/common/log.h"
#include "src/dsm/failover.h"
#include "src/xmm/xmm_agent.h"

namespace asvm {

XmmSystem::XmmSystem(Cluster& cluster, XmmConfig config)
    : cluster_(cluster), config_(config) {
  InitOpIds(cluster.node_count());
  agents_.reserve(cluster.node_count());
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    agents_.push_back(std::make_unique<XmmAgent>(*this, n));
  }
}

XmmSystem::~XmmSystem() = default;

XmmObjectInfo& XmmSystem::info(const MemObjectId& id) {
  auto it = directory_.find(id);
  ASVM_CHECK_MSG(it != directory_.end(), "unknown XMM object");
  return *it->second;
}

MemObjectId XmmSystem::CreateSharedRegion(NodeId home, VmSize pages) {
  cluster_.AssertDriverQuiescent("XMM CreateSharedRegion from inside a shard window");
  MemObjectId id = NewObjectId(home);
  auto info = std::make_unique<XmmObjectInfo>();
  info->id = id;
  info->pages = pages;
  info->manager = home;
  info->backing = std::make_unique<AnonBacking>(cluster_.engine_for(home),
                                                cluster_.default_pager(home),
                                                NextXmmBackingKey());
  directory_[id] = std::move(info);
  return id;
}

MemObjectId XmmSystem::CreateFileRegion(int32_t file_id, VmSize pages) {
  cluster_.AssertDriverQuiescent("XMM CreateFileRegion from inside a shard window");
  FilePager& pager = cluster_.file_pager();
  MemObjectId id = NewObjectId(pager.node());
  auto info = std::make_unique<XmmObjectInfo>();
  info->id = id;
  info->pages = pages;
  info->manager = pager.node();
  info->backing = std::make_unique<FileBacking>(pager, file_id);
  info->file_backed = true;
  directory_[id] = std::move(info);
  return id;
}

MemObjectId XmmSystem::CreateStripedRegion(const std::vector<StripedBacking::Stripe>& stripes,
                                           VmSize pages) {
  cluster_.AssertDriverQuiescent("XMM CreateStripedRegion from inside a shard window");
  ASVM_CHECK(!stripes.empty());
  // The stripes scale the disks, but XMM still has exactly one manager.
  MemObjectId id = NewObjectId(stripes[0].pager->node());
  auto info = std::make_unique<XmmObjectInfo>();
  info->id = id;
  info->pages = pages;
  info->manager = stripes[0].pager->node();
  info->backing = std::make_unique<StripedBacking>(stripes);
  info->file_backed = true;
  directory_[id] = std::move(info);
  return id;
}

std::shared_ptr<VmObject> XmmSystem::Attach(NodeId node, const MemObjectId& id) {
  return agent(node).Attach(id);
}

Future<VmMap*> XmmSystem::RemoteFork(NodeId src, VmMap& parent, NodeId dst) {
  // Forks mutate the directory mid-run; arm the mutation API before the first
  // drain so the cluster runs on the windowed, mutation-aware schedule.
  cluster_.mutator().Arm();
  Promise<VmMap*> done(cluster_.engine_for(src));
  (void)RemoteForkTask(src, parent, dst, done);
  return done.GetFuture();
}

Task XmmSystem::RemoteForkTask(NodeId src, VmMap& parent, NodeId dst, Promise<VmMap*> done) {
  Engine& engine = cluster_.engine_for(src);
  // Task creation ships the map description over NORMA.
  co_await Delay(engine, 800 * kMicrosecond);
  // The structural work mutates the directory and both nodes' VM state, so it
  // runs as one mutation at the next deterministic sequencing point (every
  // engine quiescent), one lookahead after this instant.
  Promise<VmMap*> built(engine);
  VmMap* parent_ptr = &parent;
  cluster_.mutator().Enqueue(src, [this, src, parent_ptr, dst, built]() {
    built.Set(ApplyRemoteFork(src, *parent_ptr, dst));
  });
  done.Set(co_await built.GetFuture());
}

VmMap* XmmSystem::ApplyRemoteFork(NodeId src, VmMap& parent, NodeId dst) {
  cluster_.stats().Add("xmm.remote_forks");

  // NMK13 leaves the work to the source node's VM: take a local fork-style
  // copy of the address space, then export each copied range through an
  // internal pager (§2.3.3).
  NodeVm& src_vm = cluster_.vm(src);
  VmMap* copy_map = src_vm.ForkMap(parent);

  NodeVm& dst_vm = cluster_.vm(dst);
  VmMap* child = dst_vm.CreateMap();

  for (auto& [start, copy_entry] : copy_map->entries()) {
    if (copy_entry.inheritance == Inheritance::kNone) {
      continue;
    }
    if (copy_entry.inheritance == Inheritance::kShare) {
      ASVM_CHECK_MSG(copy_entry.object->managed(),
                     "NMK13 XMM cannot share anonymous memory across nodes");
      auto repr = Attach(dst, copy_entry.object->id());
      Status s = child->Map(copy_entry.start_page, copy_entry.page_count, repr,
                            copy_entry.object_offset, copy_entry.inheritance);
      ASVM_CHECK(IsOk(s));
      continue;
    }
    // One internal pager per copied memory object.
    MemObjectId id = NewObjectId(src);
    auto info = std::make_unique<XmmObjectInfo>();
    info->id = id;
    info->pages = copy_entry.object->page_count();
    info->manager = src;
    info->copy_pager_node = src;
    directory_[id] = std::move(info);

    XmmAgent::CopyPagerEntry pager_entry;
    pager_entry.copy_map = copy_map;
    pager_entry.base_page = copy_entry.start_page - copy_entry.object_offset;
    agent(src).copy_pagers_[id] = pager_entry;
    cluster_.stats().Add("xmm.internal_pagers");

    auto repr = Attach(dst, id);
    Status s = child->Map(copy_entry.start_page, copy_entry.page_count, repr,
                          copy_entry.object_offset, Inheritance::kCopy);
    ASVM_CHECK(IsOk(s));
  }
  return child;
}

size_t XmmSystem::MetadataBytes(NodeId node) const {
  return agents_.at(node)->MetadataBytes();
}

// --- Failover ----------------------------------------------------------------

void XmmSystem::PromoteIfManagerDead(const MemObjectId& id) {
  cluster_.AssertDriverQuiescent("XMM promotion from inside a shard window");
  XmmObjectInfo& obj = info(id);
  FaultPlan* plan = cluster_.fault_plan();
  const SimTime now = cluster_.Now();
  if (plan == nullptr || plan->NodeAlive(obj.manager, now)) {
    return;  // an earlier mutation this barrier already promoted (idempotent)
  }
  const NodeId old_manager = obj.manager;
  const NodeId new_manager = RingSuccessor(old_manager, cluster_.node_count(), plan, now);
  ASVM_CHECK_MSG(new_manager != kInvalidNode, "no surviving node to promote");
  obj.manager = new_manager;
  // Epoch fencing: the directory's manager assignment now carries a newer
  // epoch; a deposed ex-manager (Deposed()) abandons in-flight exchanges
  // instead of serving with stale authority — across a cascade too.
  ++obj.epoch;
  XmmAgent& backup = agent(new_manager);
  // The old paging space died with the manager. Fresh anonymous backing on the
  // promoted node; the shadow store stands in for every dirty page the old
  // manager had cleaned into it.
  if (!obj.file_backed && !obj.IsCopyObject()) {
    obj.backing = std::make_unique<AnonBacking>(cluster_.engine_for(new_manager),
                                                cluster_.default_pager(new_manager),
                                                NextXmmBackingKey());
  }
  XmmAgent::ManagerState& ms = backup.mgr_state(id);
  // Fold the shadow streams into the new manager's pager copies. Every alive
  // store is consulted — after a cascade or a re-targeted stream the newest
  // entry may sit somewhere other than the promoted node (preferred when it
  // has one) — and the consumed entries are erased everywhere.
  for (PageIndex p = 0; p < static_cast<PageIndex>(obj.pages); ++p) {
    PageBuffer* src = nullptr;
    if (auto sit = backup.shadow_.find(id); sit != backup.shadow_.end()) {
      if (auto pit = sit->second.find(p); pit != sit->second.end()) {
        src = &pit->second;
      }
    }
    for (NodeId n = 0; src == nullptr && n < cluster_.node_count(); ++n) {
      if (!plan->NodeAlive(n, now)) {
        continue;
      }
      auto sit = agent(n).shadow_.find(id);
      if (sit == agent(n).shadow_.end()) {
        continue;
      }
      if (auto pit = sit->second.find(p); pit != sit->second.end()) {
        src = &pit->second;
      }
    }
    if (src != nullptr) {
      ms.pages.GetOrCreate(p).pager_copy = std::move(*src);
      cluster_.stats().Add(kStatReconstructedPages);
    }
    for (NodeId n = 0; n < cluster_.node_count(); ++n) {
      if (!plan->NodeAlive(n, now)) {
        continue;
      }
      if (auto sit = agent(n).shadow_.find(id); sit != agent(n).shadow_.end()) {
        sit->second.erase(p);
        if (sit->second.empty()) {
          agent(n).shadow_.erase(sit);
        }
      }
    }
  }
  // Rebuild the access table by asking every surviving kernel what it holds.
  // Per-slot assignments are independent, so host iteration order of the
  // resident maps cannot leak into the result; nodes scan in ascending order
  // regardless (shard-count invariance).
  for (NodeId n = 0; n < cluster_.node_count(); ++n) {
    if (!plan->NodeAlive(n, now)) {
      continue;
    }
    XmmAgent& peer = agent(n);
    auto rit = peer.reprs_.find(id);
    if (rit == peer.reprs_.end()) {
      continue;
    }
    for (const auto& [page, vp] : rit->second->resident_pages()) {
      backup.AccessByte(ms, page, n) = AccessAllows(vp.lock, PageAccess::kWrite) ? 2 : 1;
    }
  }
  if (!obj.file_backed && !obj.IsCopyObject()) {
    ms.lost.clear();  // re-derived below from the surviving witnesses
    for (PageIndex p = 0; p < static_cast<PageIndex>(obj.pages); ++p) {
      if (backup.FindWriter(ms, id, p) != kInvalidNode) {
        continue;  // a surviving writer holds the newest contents
      }
      XmmAgent::ManagerState::PageCtl& ctl = ms.pages.GetOrCreate(p);
      if (ctl.pager_copy != nullptr) {
        continue;  // the shadow fold already recovered this page
      }
      // Reconstruction from surviving read copies: any reader's copy is
      // coherent with the last committed contents (writes flush readers
      // first), so the lowest alive reader seeds the pager copy.
      bool harvested = false;
      for (NodeId n = 0; n < cluster_.node_count() && !harvested; ++n) {
        if (!plan->NodeAlive(n, now) || backup.AccessByte(ms, p, n) != 1) {
          continue;
        }
        auto rit = agent(n).reprs_.find(id);
        if (rit == agent(n).reprs_.end()) {
          continue;
        }
        if (VmPage* vp = rit->second->FindResident(p); vp != nullptr) {
          ctl.pager_copy = ClonePage(vp->data);
          cluster_.stats().Add(kStatReconstructedPages);
          harvested = true;
        }
      }
      if (harvested) {
        continue;
      }
      // Provable loss: some survivor witnessed this page as committed (a
      // manifest, or a primary's own ledger), but no copy survived anywhere.
      // Faults answer Status::kDataLost instead of inventing zeros; pages
      // with no witness are genuinely never-written and zero-fill.
      bool committed = false;
      for (NodeId n = 0; n < cluster_.node_count() && !committed; ++n) {
        if (!plan->NodeAlive(n, now)) {
          continue;
        }
        XmmAgent& a = agent(n);
        if (auto mit = a.shadow_manifest_.find(id); mit != a.shadow_manifest_.end()) {
          committed = mit->second.count(p) != 0;
        }
        if (!committed) {
          if (auto lit = a.sent_shadow_.find(id); lit != a.sent_shadow_.end()) {
            committed = lit->second.count(p) != 0;
          }
        }
      }
      if (committed && ms.lost.insert(p).second) {
        cluster_.stats().Add(kStatLostPages);
      }
    }
  }
  cluster_.stats().Add(kStatPromotions);
  backup.Trace(TraceKind::kPromote, id, kInvalidPage, old_manager,
               static_cast<int64_t>(obj.epoch));
  // Re-arm durability: the folded pager copies are the only replica until the
  // next cleaning, so mirror them onward to the new manager's own backup.
  // The sends are ordinary engine work — post them.
  XmmAgent* nm = &backup;
  cluster_.engine_for(new_manager).Post([nm, new_manager, id]() {
    auto it = nm->manager_.find(id);
    if (it == nm->manager_.end()) {
      return;
    }
    it->second->pages.ForEach([&](PageIndex p, XmmAgent::ManagerState::PageCtl& ctl) {
      if (ctl.pager_copy != nullptr) {
        nm->MirrorToBackup(new_manager, id, p, ctl.pager_copy);
      }
    });
  });
}

void XmmSystem::ReportDeath(NodeId reporter, NodeId dead) {
  const FailoverConfig& fo = cluster_.params().failover;
  if (!fo.enabled || !fo.death_notices) {
    return;  // A/B baseline: every agent pays its own detection horizon
  }
  // The notice applies at the next barrier, stamped at the reporter's clock —
  // ordered against every other cluster mutation, so all shard counts see the
  // same interleaving. Dedup happens at apply time (two agents may confirm the
  // same death in one window).
  cluster_.mutator().Enqueue(reporter, [this, dead]() { ApplyDeathNotice(dead); });
}

void XmmSystem::ApplyDeathNotice(NodeId dead) {
  cluster_.AssertDriverQuiescent("XMM death notice from inside a shard window");
  FaultPlan* plan = cluster_.fault_plan();
  const SimTime now = cluster_.Now();
  if (plan == nullptr || plan->NodeAlive(dead, now)) {
    return;  // stale notice: the victim already rejoined
  }
  if (!death_noticed_.insert(dead).second) {
    return;  // first notice wins
  }
  cluster_.stats().Add(kStatDeathNotices);
  ASVM_LOG_WARN << "xmm: death notice for node " << dead;
  for (NodeId n = 0; n < cluster_.node_count(); ++n) {
    if (n == dead || !plan->NodeAlive(n, now)) {
      continue;
    }
    XmmAgent& a = agent(n);
    // Order matters: re-target the shadow stream first so the replay target
    // computed below never points at the node being buried, then fail every
    // pending op against the victim (cancels remaining backoff immediately —
    // no second detection horizon).
    a.RetargetShadowStream(dead);
    a.FailOpsOnDeadTargets();
  }
}

void XmmSystem::ColdRestart(NodeId node) {
  cluster_.AssertDriverQuiescent("XMM cold restart from inside a shard window");
  cluster_.stats().Add(kStatRestarts);
  XmmAgent& a = agent(node);
  NodeVm& vm = cluster_.vm(node);
  // Volatile state died with the node: every resident page of every local
  // representation (objects and pages visited in sorted order so the rebuild
  // is shard-count invariant).
  std::vector<MemObjectId> ids;
  ids.reserve(a.reprs_.size());
  for (const auto& [id, repr] : a.reprs_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const MemObjectId& id : ids) {
    VmObject& repr = *a.reprs_.at(id);
    std::vector<PageIndex> pages;
    pages.reserve(repr.resident_pages().size());
    for (const auto& [page, vp] : repr.resident_pages()) {
      pages.push_back(page);
    }
    std::sort(pages.begin(), pages.end());
    for (PageIndex page : pages) {
      vm.RemovePage(repr, page);
    }
  }
  // Any shadow state this node held as a backup — and any ledger/manifest it
  // kept as a primary or witness — is equally volatile.
  a.shadow_.clear();
  a.sent_shadow_.clear();
  a.shadow_manifest_.clear();
  a.shadow_target_ = kInvalidNode;
  // A rejoined node can die again later; its next death must gossip afresh.
  death_noticed_.erase(node);
  // Manager records: drop state for objects promoted away while we were dark.
  // An object still managed here saw no grants during the outage (any request
  // would have promoted it away), so the surviving table is still conservative
  // — only our own column and the in-memory pager copies are volatile.
  for (auto it = a.manager_.begin(); it != a.manager_.end();) {
    const XmmObjectInfo& obj = info(it->first);
    if (obj.manager != node) {
      it = a.manager_.erase(it);
      continue;
    }
    XmmAgent::ManagerState& ms = *it->second;
    for (PageIndex p = 0; p < static_cast<PageIndex>(obj.pages); ++p) {
      a.AccessByte(ms, p, node) = 0;
    }
    ms.pages.ForEach(
        [](PageIndex, XmmAgent::ManagerState::PageCtl& ctl) { ctl.pager_copy = nullptr; });
    ++it;
  }
}

}  // namespace asvm
