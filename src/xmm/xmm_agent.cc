#include "src/xmm/xmm_agent.h"

#include <algorithm>
#include <utility>

#include "src/common/log.h"
#include "src/dsm/failover.h"

namespace asvm {

XmmAgent::XmmAgent(XmmSystem& system, NodeId node)
    : ProtocolAgent(system, node, TraceProtocol::kXmm),
      system_(system),
      vm_(system.cluster().vm(node)),
      failover_(system.cluster().params().failover),
      copy_threads_(system.cluster().engine_for(node), system.config().copy_pager_threads) {
  Listen(system_.cluster().norma(), ProtocolId::kXmm);
}

XmmAgent::~XmmAgent() = default;

std::shared_ptr<VmObject> XmmAgent::Attach(const MemObjectId& id) {
  auto it = reprs_.find(id);
  if (it != reprs_.end()) {
    return it->second;
  }
  XmmObjectInfo& info = system_.info(id);
  auto repr = vm_.CreateObject(info.pages, CopyStrategy::kAsymmetric);
  vm_.RegisterManaged(repr, id, this);
  reprs_[id] = repr;
  return repr;
}

size_t XmmAgent::MetadataBytes() const {
  size_t bytes = 0;
  for (const auto& [id, ms] : manager_) {
    bytes += ms->access.size();  // 1 byte per page per node, non-pageable
    bytes += ms->pages.size() * sizeof(ManagerState::PageCtl);
  }
  bytes += reprs_.size() * 64;  // proxy records
  return bytes;
}

bool XmmAgent::DescribeStall(std::string& out) const {
  bool blocked = ProtocolAgent::DescribeStall(out);
  // Manager-side picture: pages stuck busy and the requests parked behind
  // them. Objects are sorted so the report is deterministic.
  std::vector<MemObjectId> ids;
  ids.reserve(manager_.size());
  for (const auto& [id, ms] : manager_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const MemObjectId& id : ids) {
    const ManagerState& ms = *manager_.at(id);
    ms.pages.ForEach([&](PageIndex page, const ManagerState::PageCtl& ctl) {
      if (!ctl.busy && ctl.queue.empty()) {
        return;
      }
      blocked = true;
      out += "  xmm manager node " + std::to_string(node_) + ": object " + id.ToString() +
             " page " + std::to_string(page) + (ctl.busy ? " busy" : " idle") + ", " +
             std::to_string(ctl.queue.size()) + " requests queued\n";
    });
  }
  return blocked;
}

// --- Pager upcalls ----------------------------------------------------------

void XmmAgent::DataRequest(VmObject& object, PageIndex page, PageAccess desired) {
  if (stats_ != nullptr) {
    stats_->Add("xmm.data_requests");
  }
  SendRequest(object.id(), page, desired, /*has_copy=*/false);
}

void XmmAgent::DataUnlock(VmObject& object, PageIndex page, PageAccess desired) {
  if (stats_ != nullptr) {
    stats_->Add("xmm.data_unlocks");
  }
  SendRequest(object.id(), page, desired, /*has_copy=*/true);
}

void XmmAgent::SendRequest(const MemObjectId& id, PageIndex page, PageAccess access,
                           bool has_copy, uint64_t reuse_op) {
  const XmmObjectInfo& info = system_.info(id);
  XmmRequest req{id, page, access, node_, has_copy};
  if (info.IsCopyObject()) {
    // A child's own modified pages paged out locally take priority over the
    // frozen parent copy at the internal pager.
    auto repr_it = reprs_.find(id);
    if (repr_it != reprs_.end() &&
        vm_.default_pager()->HasPage(repr_it->second->serial(), page)) {
      auto repr = repr_it->second;
      vm_.default_pager()->ReadPage(repr->serial(), page, [this, repr, page](PageBuffer data) {
        vm_.DataSupply(*repr, page, std::move(data), PageAccess::kWrite);
      });
      return;
    }
    // Copy-pager object: the "pager" is the internal pager on the fork
    // source, reached over NORMA like everything else.
    XmmCopyFault fault{id, page, node_, {node_}};
    if (copy_fault_path_ != nullptr) {
      // We are ourselves inside a copy fault: extend the blocking chain.
      fault.path = *copy_fault_path_;
      fault.path.push_back(node_);
    }
    Trace(TraceKind::kXmmRequest, id, page, info.copy_pager_node,
          static_cast<int64_t>(access));
    Send(info.copy_pager_node, XmmMsgType::kCopyFault, fault);
    return;
  }
  Trace(TraceKind::kXmmRequest, id, page, info.manager, static_cast<int64_t>(access));
  if (info.manager == node_) {
    ManagerHandle(std::move(req));
    return;
  }
  if (failover_.enabled && retry_policy().timeout_ns > 0) {
    // Arm a pending op on the request itself so manager silence is detected.
    // The resend re-reads the directory: if another origin already promoted
    // the backup, retries go straight to the new manager. A reissue keeps the
    // original id (ASVM's ArmRequest discipline): the serve it may have
    // started stays one transaction, and its reply resolves the live op.
    req.op_id = reuse_op != 0 ? reuse_op : system_.NextOpId(node_);
    RegisterOp(req.op_id, 1, "xmm-request", id, page);
    if (PendingOp* op = FindOp(req.op_id); op != nullptr) {
      op->targets = {info.manager};
      op->on_fail = [this, id, page, access, has_copy, op_id = req.op_id](Status) {
        ReissueAfterPromotion(id, page, access, has_copy, op_id);
      };
    }
    ArmOp(req.op_id, [this, req]() {
      const XmmObjectInfo& current = system_.info(req.object);
      if (PendingOp* op = FindOp(req.op_id); op != nullptr) {
        op->targets = {current.manager};
      }
      if (current.manager == node_) {
        ManagerHandle(req);  // the promotion landed the manager role here
      } else {
        Send(current.manager, XmmMsgType::kRequest, req);
      }
    });
  }
  Send(info.manager, XmmMsgType::kRequest, req);
}

bool XmmAgent::Deposed(const XmmObjectInfo& info) const {
  return failover_.enabled && info.manager != node_;
}

void XmmAgent::MirrorToBackup(NodeId primary, const MemObjectId& id, PageIndex page,
                              const PageBuffer& data) {
  if (!failover_.enabled) {
    return;
  }
  const NodeId backup = RingSuccessor(primary, system_.cluster().node_count(),
                                      system_.cluster().fault_plan(), engine().Now());
  if (backup == kInvalidNode) {
    return;
  }
  if (primary == node_) {
    // Stranded-shadow repair: if the ring rule now names a different backup
    // than the one this stream has been feeding (the old one died, or rejoined
    // with cold caches), replay the whole ledger there before the new update.
    // In a healthy run the target never changes, so this costs nothing.
    if (backup != shadow_target_ && shadow_target_ != kInvalidNode) {
      ReplayShadowLedger(backup);
    }
    shadow_target_ = backup;
    sent_shadow_[id][page] = ClonePage(data);
  }
  if (stats_ != nullptr) {
    stats_->Add(kStatShadowUpdates);
  }
  if (backup == node_) {
    // We are the primary's backup ourselves (eviction redirect): no wire hop.
    shadow_[id][page] = ClonePage(data);
    SendShadowManifest(id, page, backup);
    return;
  }
  Send(backup, XmmMsgType::kShadowUpdate, XmmShadowUpdate{id, page}, ClonePage(data));
  SendShadowManifest(id, page, backup);
}

void XmmAgent::SendShadowManifest(const MemObjectId& id, PageIndex page, NodeId backup) {
  // The witness is the backup's own successor: a control-only record that the
  // page was committed, surviving the simultaneous loss of primary + backup so
  // promotion can answer kDataLost instead of zero-filling (DESIGN.md §14).
  const NodeId witness = RingSuccessor(backup, system_.cluster().node_count(),
                                       system_.cluster().fault_plan(), engine().Now());
  if (witness == kInvalidNode || witness == node_) {
    return;  // two-node cluster: the primary itself is the only other survivor
  }
  Send(witness, XmmMsgType::kShadowManifest, XmmShadowUpdate{id, page});
}

void XmmAgent::ReplayShadowLedger(NodeId backup) {
  for (auto& [id, pages] : sent_shadow_) {
    for (auto& [page, buf] : pages) {
      if (stats_ != nullptr) {
        stats_->Add(kStatShadowRestreams);
      }
      Send(backup, XmmMsgType::kShadowUpdate, XmmShadowUpdate{id, page}, ClonePage(buf));
      SendShadowManifest(id, page, backup);
    }
  }
}

void XmmAgent::RetargetShadowStream(NodeId dead) {
  if (!failover_.enabled || shadow_target_ != dead || sent_shadow_.empty()) {
    return;
  }
  const NodeId backup = RingSuccessor(node_, system_.cluster().node_count(),
                                      system_.cluster().fault_plan(), engine().Now());
  if (backup == kInvalidNode) {
    shadow_target_ = kInvalidNode;
    return;
  }
  shadow_target_ = backup;
  // Called from a death-notice mutation (all engines quiescent): the replay
  // sends are ordinary engine work, so post them onto this node's timeline.
  engine().Post([this, backup]() { ReplayShadowLedger(backup); });
}

void XmmAgent::ReissueAfterPromotion(const MemObjectId& id, PageIndex page, PageAccess access,
                                     bool has_copy, uint64_t reuse_op) {
  // The manager is confirmed removed. Promote its backup at the next
  // sequencing point — a cluster mutation, so every origin observes the
  // handover in the same global order at every shard count — then replay the
  // request against the new manager from this node's own engine.
  system_.cluster().mutator().Enqueue(node_, [this, id, page, access, has_copy, reuse_op]() {
    system_.PromoteIfManagerDead(id);
    engine().Post([this, id, page, access, has_copy, reuse_op]() {
      if (stats_ != nullptr) {
        stats_->Add(kStatReissues);
      }
      SendRequest(id, page, access, has_copy, reuse_op);
    });
  });
}

EvictAction XmmAgent::OnEvict(VmObject& object, PageIndex page, PageBuffer data, bool dirty) {
  // XMM has no internode paging: a dirty page evicted from the cache is
  // returned to the pager through the manager; clean pages are discarded
  // (the manager keeps thinking we have access — its state is conservative,
  // so a re-touch simply re-requests).
  if (!dirty) {
    if (stats_ != nullptr) {
      stats_->Add("xmm.evict_discards");
    }
    return EvictAction::kDiscard;
  }
  if (stats_ != nullptr) {
    stats_->Add("xmm.evict_returns");
  }
  const XmmObjectInfo& info = system_.info(object.id());
  if (info.IsCopyObject()) {
    // The child's private modifications page out to the local default pager;
    // the internal pager only serves the frozen parent snapshot.
    vm_.default_pager()->WritePage(object.serial(), page, std::move(data));
    return EvictAction::kTaken;
  }
  if (failover_.enabled && !info.file_backed) {
    if (const FaultPlan* plan = system_.cluster().fault_plan();
        plan != nullptr && !plan->NodeAlive(info.manager, engine().Now())) {
      // The manager is dead: a data return would be black-holed, losing the
      // only copy. Ship the contents to the manager's backup instead;
      // promotion turns the shadow entry into the new manager's pager copy.
      MirrorToBackup(info.manager, object.id(), page, data);
      return EvictAction::kTaken;
    }
  }
  XmmFlushWriteReply ret{object.id(), page, /*dirty=*/true, /*was_resident=*/true,
                         /*op_id=*/0};
  Send(info.manager, XmmMsgType::kFlushWriteReply, ret, ClonePage(data));
  return EvictAction::kTaken;
}

void XmmAgent::LockCompleted(VmObject&, PageIndex, LockResult) {}
void XmmAgent::PullCompleted(VmObject&, PageIndex, PullResult) {}

// --- Manager role -------------------------------------------------------------

XmmAgent::ManagerState& XmmAgent::mgr_state(const MemObjectId& id) {
  auto it = manager_.find(id);
  if (it == manager_.end()) {
    auto ms = std::make_unique<ManagerState>();
    const XmmObjectInfo& info = system_.info(id);
    // The centralized manager's state table: 1 byte of non-pageable memory
    // per page per node (§3.1, "Limited Memory Requirements").
    ms->access.assign(info.pages * system_.cluster().node_count(), 0);
    ms->pages.SetPageCount(info.pages);
    it = manager_.emplace(id, std::move(ms)).first;
  }
  return *it->second;
}

uint8_t& XmmAgent::AccessByte(ManagerState& ms, PageIndex page, NodeId node) {
  return ms.access[static_cast<size_t>(page) * system_.cluster().node_count() +
                   static_cast<size_t>(node)];
}

NodeId XmmAgent::FindWriter(ManagerState& ms, const MemObjectId&, PageIndex page) {
  const int nodes = system_.cluster().node_count();
  for (NodeId n = 0; n < nodes; ++n) {
    if (AccessByte(ms, page, n) == 2) {
      return n;
    }
  }
  return kInvalidNode;
}

std::vector<NodeId> XmmAgent::FindReaders(ManagerState& ms, const MemObjectId&, PageIndex page,
                                          NodeId except) {
  std::vector<NodeId> readers;
  const int nodes = system_.cluster().node_count();
  for (NodeId n = 0; n < nodes; ++n) {
    if (n != except && AccessByte(ms, page, n) == 1) {
      readers.push_back(n);
    }
  }
  return readers;
}

void XmmAgent::ManagerHandle(XmmRequest req) {
  ManagerState& ms = mgr_state(req.object);
  ManagerState::PageCtl& ctl = ms.pages.GetOrCreate(req.page);
  if (ctl.busy) {
    ctl.queue.push_back(std::move(req));
    return;
  }
  ctl.busy = true;
  (void)ManagerServe(std::move(req));
}

Future<Status> XmmAgent::StackProcess() {
  return Process(system_.config().stack_process_ns);
}

Task XmmAgent::ManagerServe(XmmRequest req) {
  Engine& engine = vm_.engine();
  XmmObjectInfo& info = system_.info(req.object);
  ManagerState& ms = mgr_state(req.object);

  // XMM stack processing at the manager (proxy + manager layer work),
  // serialized on the manager's CPU.
  co_await StackProcess();
  if (Deposed(info)) {
    co_return;  // promoted away while this request was parked; abandon it
  }
  if (stats_ != nullptr) {
    stats_->Add("xmm.manager_requests");
  }
  Trace(TraceKind::kXmmManagerServe, req.object, req.page, req.origin,
        static_cast<int64_t>(req.access));

  if (ms.lost.count(req.page) != 0) {
    // Promotion proved this page was committed and then lost with the old
    // manager and every replica: the fault must fail, not zero-fill.
    ManagerState::PageCtl& lctl = ms.pages.GetOrCreate(req.page);
    XmmReply reply{req.object, req.page,   req.access, /*zero_fill=*/false,
                   /*upgrade=*/false, req.op_id};
    reply.lost = true;
    if (stats_ != nullptr) {
      stats_->Add("xmm.lost_page_replies");
    }
    Trace(TraceKind::kXmmGrant, req.object, req.page, req.origin, /*aux=*/-1);
    Send(req.origin, XmmMsgType::kReply, reply);
    lctl.busy = false;
    if (!lctl.queue.empty()) {
      XmmRequest next = std::move(lctl.queue.front());
      lctl.queue.pop_front();
      ManagerHandle(std::move(next));
    }
    co_return;
  }

  // Step 1 (§2.3.2): create a coherent version of the page at the pager.
  // `ctl` stays valid across co_await: the dense PageTable never reallocates
  // for in-range pages.
  NodeId writer = FindWriter(ms, req.object, req.page);
  ManagerState::PageCtl& ctl = ms.pages.GetOrCreate(req.page);
  if (failover_.enabled && writer != kInvalidNode && writer != req.origin) {
    // Lease check: a removed writer can never answer a flush. Once its lease
    // has expired the manager reclaims the page without the round — the last
    // contents died with the node, exactly as on the kNodeDown path below.
    if (const FaultPlan* plan = system_.cluster().fault_plan(); plan != nullptr) {
      const SimTime since = plan->RemovedSince(writer, engine.Now());
      if (since >= 0 && engine.Now() >= since + failover_.lease_ns) {
        AccessByte(ms, req.page, writer) = 0;
        if (stats_ != nullptr) {
          stats_->Add(kStatLeaseReclaims);
        }
        Trace(TraceKind::kLeaseReclaim, req.object, req.page, writer);
        writer = kInvalidNode;
      }
    }
  }
  if (writer != kInvalidNode && writer != req.origin) {
    const uint64_t op = OpenOp(1, "flush-write", req.object, req.page);
    if (PendingOp* pending = FindOp(op); pending != nullptr) {
      pending->targets = {writer};
    }
    Future<Status> flushed = OpFuture(op);
    Trace(TraceKind::kXmmFlush, req.object, req.page, writer, /*aux=*/1, op);
    Send(writer, XmmMsgType::kFlushWrite, XmmFlush{req.object, req.page, op});
    ArmOp(op, [this, writer, object = req.object, page = req.page, op]() {
      Send(writer, XmmMsgType::kFlushWrite, XmmFlush{object, page, op});
    });
    co_await flushed;
    // On timeout / kNodeDown (the writer's node was removed) the entry is
    // already gone: treat the writer as holding nothing and clear its access
    // byte — the page's last contents died with the node.
    PageBuffer data;
    bool dirty = false;
    bool resident = false;
    if (PendingOp* pending = FindOp(op); pending != nullptr) {
      data = std::move(pending->data);
      dirty = pending->dirty;
      resident = pending->was_resident;
      EraseOp(op);
    }
    if (Deposed(info)) {
      co_return;  // ms/ctl may now belong to a cold-restarted table
    }
    AccessByte(ms, req.page, writer) = 0;
    if (resident) {
      if (dirty) {
        // NMK13 behaviour the paper measures in Table 1: the dirty page is
        // written to the paging space when first requested by another node.
        Promise<Status> written(engine);
        if (info.backing != nullptr) {
          info.backing->Write(req.page, ClonePage(data),
                              [written]() { written.Set(Status::kOk); });
          co_await written.GetFuture();
          if (stats_ != nullptr) {
            stats_->Add("xmm.dirty_cleanings");
          }
          if (Deposed(info)) {
            co_return;
          }
        }
        if (!info.file_backed) {
          MirrorToBackup(node_, req.object, req.page, data);
        }
      }
      ctl.pager_copy = std::move(data);
    }
  }

  // Step 2: a write request flushes every reader (except the requester).
  if (req.access == PageAccess::kWrite) {
    std::vector<NodeId> readers = FindReaders(ms, req.object, req.page, req.origin);
    if (failover_.enabled && !readers.empty()) {
      // Removed readers' copies died with them: drop them from the round
      // instead of burning the full retry horizon on silence.
      if (const FaultPlan* plan = system_.cluster().fault_plan(); plan != nullptr) {
        const SimTime now = engine.Now();
        std::vector<NodeId> alive;
        alive.reserve(readers.size());
        for (NodeId r : readers) {
          if (plan->NodeAlive(r, now)) {
            alive.push_back(r);
          } else {
            AccessByte(ms, req.page, r) = 0;
            // First confirmation of a bystander's death: gossip it so every
            // survivor cancels its own ops against the victim immediately.
            system_.ReportDeath(node_, r);
          }
        }
        readers = std::move(alive);
      }
    }
    if (!readers.empty()) {
      const uint64_t op =
          OpenOp(static_cast<int>(readers.size()), "flush-read-round", req.object, req.page);
      if (PendingOp* pending = FindOp(op); pending != nullptr) {
        pending->targets = readers;
      }
      Future<Status> acked = OpFuture(op);
      for (NodeId r : readers) {
        Trace(TraceKind::kXmmFlush, req.object, req.page, r, /*aux=*/2, op);
        Send(r, XmmMsgType::kFlushRead, XmmFlush{req.object, req.page, op});
        if (stats_ != nullptr) {
          stats_->Add("xmm.reader_flushes");
        }
      }
      ArmOp(op, [this, object = req.object, page = req.page, op, readers]() {
        const PendingOp* pending = FindOp(op);
        for (NodeId r : readers) {
          if (pending != nullptr &&
              std::find(pending->acked.begin(), pending->acked.end(), r) !=
                  pending->acked.end()) {
            continue;
          }
          Send(r, XmmMsgType::kFlushRead, XmmFlush{object, page, op});
        }
      });
      co_await acked;
      EraseOp(op);
      if (Deposed(info)) {
        co_return;
      }
      for (NodeId r : readers) {
        AccessByte(ms, req.page, r) = 0;
      }
    }
  }

  // Step 3: forward the request to the pager and relay its answer. The
  // upgrade case needs no contents and skips the pager entirely.
  const bool upgrade = req.has_copy && AccessByte(ms, req.page, req.origin) != 0;
  PageBuffer data;
  bool zero_fill = false;
  // Supplying contents through the default pager task costs two typed IPC
  // messages with the page inline; the file pager charges its own CPU.
  const SimDuration supply_cost =
      info.file_backed ? vm_.costs().pager_call_ns : system_.config().pager_supply_ns;
  if (upgrade) {
    // No data path.
  } else if (ctl.pager_copy != nullptr) {
    // The pager already holds a coherent in-memory copy.
    co_await Delay(engine, supply_cost);
    data = ClonePage(ctl.pager_copy);
  } else if (info.backing != nullptr && info.backing->HasData(req.page)) {
    Promise<PageBuffer> read_done(engine);
    info.backing->Read(req.page, vm_.page_size(),
                       [read_done](PageBuffer d) { read_done.Set(std::move(d)); });
    data = co_await read_done.GetFuture();
    co_await Delay(engine, info.file_backed ? 0 : system_.config().pager_supply_ns);
  } else {
    Promise<Status> grant(engine);
    if (info.backing != nullptr) {
      info.backing->GrantFresh(req.page, [grant]() { grant.Set(Status::kOk); });
    } else {
      engine.Post([grant]() { grant.Set(Status::kOk); });
    }
    co_await grant.GetFuture();
    co_await Delay(engine, system_.config().pager_fresh_ns);
    zero_fill = true;
  }
  if (Deposed(info)) {
    co_return;
  }
  AccessByte(ms, req.page, req.origin) = req.access == PageAccess::kWrite ? 2 : 1;
  if (req.access == PageAccess::kWrite) {
    // The new writer's modifications supersede the pager's copy.
    ctl.pager_copy = nullptr;
  }

  XmmReply reply{req.object, req.page, req.access, zero_fill && !upgrade, upgrade, req.op_id};
  if (stats_ != nullptr) {
    stats_->Add(req.access == PageAccess::kWrite ? "xmm.write_grants" : "xmm.read_grants");
  }
  Trace(TraceKind::kXmmGrant, req.object, req.page, req.origin,
        static_cast<int64_t>(req.access));
  Send(req.origin, XmmMsgType::kReply, reply,
       (zero_fill || upgrade) ? nullptr : std::move(data));

  ctl.busy = false;
  if (!ctl.queue.empty()) {
    XmmRequest next = std::move(ctl.queue.front());
    ctl.queue.pop_front();
    ManagerHandle(std::move(next));
  }
}

// --- Copy pager role -------------------------------------------------------------

Task XmmAgent::CopyFaultTask(NodeId src, XmmCopyFault m) {
  auto it = copy_pagers_.find(m.object);
  ASVM_CHECK_MSG(it != copy_pagers_.end(), "copy fault for unknown internal pager");
  CopyPagerEntry entry = it->second;

  // The internal pager thread blocks for the whole fault (§2.3.3) — the
  // design flaw ASVM's asynchronous state transitions remove (§3.1).
  if (copy_threads_.available() == 0 &&
      std::find(m.path.begin(), m.path.end(), node_) != m.path.end()) {
    // The chain crossed this node before and every thread is blocked on it:
    // the deadlock the paper describes.
    if (stats_ != nullptr) {
      stats_->Add("xmm.copy_deadlocks");
    }
    Send(src, XmmMsgType::kCopyFaultReply,
         XmmCopyFaultReply{m.object, m.page, false, /*deadlock=*/true});
    co_return;
  }
  co_await copy_threads_.Acquire();
  co_await StackProcess();
  if (stats_ != nullptr) {
    stats_->Add("xmm.copy_faults");
  }
  Trace(TraceKind::kXmmCopyFault, m.object, m.page, src);

  // Fault the frozen local copy address space. If its objects are themselves
  // copy-pager objects from an earlier inbound fork, this recurses across
  // nodes — one blocking NORMA round trip per chain stage.
  const VmOffset addr = (entry.base_page + static_cast<VmOffset>(m.page)) * vm_.page_size();
  // Thread the path through so nested copy faults can detect cycles.
  copy_fault_path_ = &m.path;
  Status s = co_await vm_.Fault(*entry.copy_map, addr, PageAccess::kRead);
  copy_fault_path_ = nullptr;
  if (!IsOk(s)) {
    copy_threads_.Release();
    Send(src, XmmMsgType::kCopyFaultReply,
         XmmCopyFaultReply{m.object, m.page, false, /*deadlock=*/s == Status::kDeadlock});
    co_return;
  }
  std::byte* p = vm_.TryAccess(*entry.copy_map, addr, PageAccess::kRead);
  PageBuffer data;
  bool zero = true;
  if (p != nullptr) {
    data = AllocPage(vm_.page_size());
    std::memcpy(data->data(), p - (addr % vm_.page_size()), vm_.page_size());
    zero = PageIsZero(data);
  }
  copy_threads_.Release();
  Send(src, XmmMsgType::kCopyFaultReply, XmmCopyFaultReply{m.object, m.page, zero, false},
       zero ? nullptr : std::move(data));
}

// --- Dispatcher -------------------------------------------------------------------

void XmmAgent::OnMessage(NodeId src, Message msg) {
  XmmBody body = std::get<XmmBody>(std::move(msg.body));
  // -Werror=switch keeps this dispatcher exhaustive over XmmMsgType.
  switch (static_cast<XmmMsgType>(msg.type)) {
    case XmmMsgType::kRequest: {
      auto req = std::get<XmmRequest>(std::move(body));
      if (DuplicateDelivery(req.op_id)) {
        return;  // a retry of a request already parked or being served here
      }
      ManagerHandle(std::move(req));
      return;
    }
    case XmmMsgType::kReply: {
      const auto& reply = std::get<XmmReply>(body);
      if (reply.op_id != 0) {
        if (FindOp(reply.op_id) == nullptr) {
          // The op resolved kNodeDown and the request was reissued; applying
          // this straggler grant as well would double-supply the page.
          CountDuplicate();
          return;
        }
        ResolveOp(reply.op_id, reply.lost ? Status::kDataLost : Status::kOk);
      }
      auto repr = reprs_.at(reply.object);
      if (reply.lost) {
        // The manager proved the page was committed and then lost with every
        // replica. Fail the fault — waking the kernel's waiters with an
        // error, never inventing zeros.
        if (stats_ != nullptr) {
          stats_->Add("xmm.lost_page_faults");
        }
        Trace(TraceKind::kGrantApplied, reply.object, reply.page, src, /*aux=*/-1);
        vm_.FaultFailed(*repr, reply.page, Status::kDataLost);
        return;
      }
      Trace(TraceKind::kGrantApplied, reply.object, reply.page, src,
            static_cast<int64_t>(reply.granted));
      if (reply.upgrade) {
        if (repr->FindResident(reply.page) != nullptr) {
          vm_.LockGranted(*repr, reply.page, reply.granted);
        } else {
          // Our copy vanished (evicted) while the upgrade was in flight; the
          // manager thinks we have it. Zero-filling would be wrong — re-ask.
          SendRequest(reply.object, reply.page, reply.granted, false);
        }
      } else if (reply.zero_fill) {
        vm_.DataUnavailable(*repr, reply.page, reply.granted);
      } else {
        vm_.DataSupply(*repr, reply.page, std::move(msg.page), reply.granted);
      }
      return;
    }
    case XmmMsgType::kFlushWrite: {
      const auto& m = std::get<XmmFlush>(body);
      if (DuplicateDelivery(m.op_id)) {
        return;  // already extracted and replied; the manager dedupes replies
      }
      auto repr = reprs_.at(m.object);
      NodeVm::Extracted ex = vm_.ExtractPage(*repr, m.page);
      XmmFlushWriteReply reply{m.object, m.page, ex.dirty, ex.was_resident, m.op_id};
      Send(src, XmmMsgType::kFlushWriteReply, reply,
           ex.was_resident ? ClonePage(ex.data) : nullptr);
      if (stats_ != nullptr) {
        stats_->Add("xmm.write_flushes");
      }
      return;
    }
    case XmmMsgType::kFlushWriteReply: {
      const auto& m = std::get<XmmFlushWriteReply>(body);
      if (m.op_id == 0) {
        // Unsolicited data return from an eviction: refresh the pager copy.
        ManagerState& ms = mgr_state(m.object);
        ManagerState::PageCtl& ctl = ms.pages.GetOrCreate(m.page);
        ctl.pager_copy = std::move(msg.page);
        AccessByte(ms, m.page, src) = 0;
        XmmObjectInfo& info = system_.info(m.object);
        if (info.backing != nullptr && m.dirty) {
          info.backing->Write(m.page, ClonePage(ctl.pager_copy), []() {});
        }
        if (m.dirty && !info.file_backed) {
          MirrorToBackup(node_, m.object, m.page, ctl.pager_copy);
        }
        return;
      }
      PendingOp* op = FindOp(m.op_id);
      if (op == nullptr) {
        CountDuplicate();  // reply landed after the flush timed out
        return;
      }
      if (std::find(op->acked.begin(), op->acked.end(), src) != op->acked.end()) {
        CountDuplicate();  // a retry's second reply; payload already recorded
        return;
      }
      op->data = std::move(msg.page);
      op->dirty = m.dirty;
      op->was_resident = m.was_resident;
      // The manager coroutine harvests the flush payload, then erases the op.
      AckOp(m.op_id, src, /*keep_entry=*/true);
      return;
    }
    case XmmMsgType::kFlushRead: {
      const auto& m = std::get<XmmFlush>(body);
      if (DuplicateDelivery(m.op_id)) {
        return;
      }
      auto repr = reprs_.at(m.object);
      if (repr->FindResident(m.page) != nullptr) {
        vm_.LockRequest(*repr, m.page, PageAccess::kNone, LockMode::kFlush,
                        [](LockResult) {});
      }
      Send(src, XmmMsgType::kFlushReadAck,
           XmmFlushWriteReply{m.object, m.page, false, false, m.op_id});
      return;
    }
    case XmmMsgType::kFlushReadAck: {
      const auto& m = std::get<XmmFlushWriteReply>(body);
      // The manager coroutine erases the op after the round completes.
      AckOp(m.op_id, src, /*keep_entry=*/true);
      return;
    }
    case XmmMsgType::kCopyFault:
      (void)CopyFaultTask(src, std::get<XmmCopyFault>(std::move(body)));
      return;
    case XmmMsgType::kShadowUpdate: {
      const auto& m = std::get<XmmShadowUpdate>(body);
      shadow_[m.object][m.page] = std::move(msg.page);
      return;
    }
    case XmmMsgType::kShadowManifest: {
      const auto& m = std::get<XmmShadowUpdate>(body);
      shadow_manifest_[m.object].insert(m.page);
      return;
    }
    case XmmMsgType::kCopyFaultReply: {
      const auto& m = std::get<XmmCopyFaultReply>(body);
      auto repr = reprs_.at(m.object);
      if (m.deadlock) {
        vm_.FaultFailed(*repr, m.page, Status::kDeadlock);
      } else if (m.zero_fill) {
        vm_.DataUnavailable(*repr, m.page, PageAccess::kWrite);
      } else {
        vm_.DataSupply(*repr, m.page, std::move(msg.page), PageAccess::kWrite);
      }
      return;
    }
  }
  ASVM_CHECK_MSG(false, "unknown XMM message type");
}

void XmmAgent::Send(NodeId to, XmmMsgType type, XmmBody body, PageBuffer page) {
  Message msg;
  msg.protocol = ProtocolId::kXmm;
  msg.type = static_cast<uint32_t>(type);
  msg.control_bytes = 128;  // typed NORMA message with port rights
  msg.body = std::move(body);
  msg.page = std::move(page);
  system_.cluster().norma().Send(node_, to, std::move(msg));
}

}  // namespace asvm
