// NMK13 XMM — the baseline the paper measures against: a centralized manager
// per memory object, speaking XMMI over NORMA-IPC, with per-(page × node)
// state bytes at the manager and delayed copies implemented by blocking
// internal copy pagers on the source node (paper §2.3).
#ifndef SRC_XMM_XMM_SYSTEM_H_
#define SRC_XMM_XMM_SYSTEM_H_

#include <memory>
#include <set>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/dsm/backing.h"
#include "src/dsm/cluster.h"
#include "src/dsm/dsm_system.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/xmm/xmm_messages.h"

namespace asvm {

class XmmAgent;

struct XmmConfig {
  // Kernel threads available per node for internal copy pagers; the pool is
  // what deadlocks when a copy chain crosses a node twice under load.
  int copy_pager_threads = 16;
  // Per-request processing in the XMM stack (proxy + manager layers).
  SimDuration stack_process_ns = 1300 * kMicrosecond;
  // Supplying page contents through the default pager task: two typed NORMA
  // messages with 8 KB inline data plus the pager's own work. Dominates
  // Table 1's read-fault rows. (File regions use the file pager's own CPU
  // model instead.)
  SimDuration pager_supply_ns = 5000 * kMicrosecond;
  // data_unavailable round for fresh (zero-fill) pages: no contents move.
  SimDuration pager_fresh_ns = 1200 * kMicrosecond;
};

// Directory record; page-level state lives at the manager node's agent.
struct XmmObjectInfo {
  MemObjectId id;
  VmSize pages = 0;
  NodeId manager = kInvalidNode;
  std::unique_ptr<ObjectBacking> backing;  // null for copy-pager objects
  bool file_backed = false;                // served by the file pager (own CPU model)
  // Copy-pager objects: where the internal pager (and the frozen local copy
  // of the source address space) lives.
  NodeId copy_pager_node = kInvalidNode;
  // Failover epoch: bumped on every promotion of this object's manager. The
  // directory (manager assignment stamped by this epoch) is the fence against
  // stale ex-managers after a cascade — Deposed() compares against it via the
  // manager field, and traces carry it so recovery timelines are auditable.
  uint64_t epoch = 0;
  bool IsCopyObject() const { return copy_pager_node != kInvalidNode; }
};

class XmmSystem : public DsmSystem {
 public:
  XmmSystem(Cluster& cluster, XmmConfig config = {});
  ~XmmSystem() override;

  std::string_view name() const override { return "xmm"; }

  MemObjectId CreateSharedRegion(NodeId home, VmSize pages) override;
  MemObjectId CreateFileRegion(int32_t file_id, VmSize pages) override;
  MemObjectId CreateStripedRegion(const std::vector<StripedBacking::Stripe>& stripes,
                                  VmSize pages) override;
  std::shared_ptr<VmObject> Attach(NodeId node, const MemObjectId& id) override;
  Future<VmMap*> RemoteFork(NodeId src, VmMap& parent, NodeId dst) override;
  size_t MetadataBytes(NodeId node) const override;

  // --- Failover (DESIGN.md §14) ---------------------------------------------

  // Promotes the backup (first alive ring successor) of `id`'s manager if the
  // manager is confirmed removed by the fault plan: re-homes the directory
  // record, rebuilds the access table from surviving kernels, and turns the
  // backup's shadow store into the new manager's pager copies. Idempotent;
  // must run as a cluster mutation (every engine quiescent).
  void PromoteIfManagerDead(const MemObjectId& id);

  // Gossip death notification (DESIGN.md §14): the first agent to classify a
  // silent peer kNodeDown reports it here; a barrier-ordered mutation then
  // fans the death out to every surviving agent, which fails its own pending
  // ops against the victim immediately (no second retry horizon) and
  // re-targets any shadow stream aimed at it. One notice per death.
  void ReportDeath(NodeId reporter, NodeId dead) override;

  // Rejoin after FaultPlan::NodeRemoval::restore_at: the node comes back with
  // cold caches — resident pages, shadow store, and in-memory pager copies
  // are gone; paging-space (disk) contents survive. Runs as a mutation.
  void ColdRestart(NodeId node) override;

  Cluster& cluster() override { return cluster_; }
  const XmmConfig& config() const { return config_; }
  XmmAgent& agent(NodeId node) { return *agents_.at(node); }

  XmmObjectInfo& info(const MemObjectId& id);
  MemObjectId NewObjectId(NodeId origin) { return MemObjectId{origin, next_seq_++}; }

 private:
  Task RemoteForkTask(NodeId src, VmMap& parent, NodeId dst, Promise<VmMap*> done);
  // The structural half of a fork (source-side map copy, directory inserts,
  // internal copy pagers, child map build), run as ONE cluster mutation at a
  // deterministic sequencing point (src/dsm/cluster_mutator.h).
  VmMap* ApplyRemoteFork(NodeId src, VmMap& parent, NodeId dst);

  // Applies one gossiped death at a barrier: dedup, then survivor fan-out.
  void ApplyDeathNotice(NodeId dead);

  // Keys for anonymous backing in the manager's paging space; a distinct high
  // bit keeps them disjoint from local VM object serials and from ASVM keys.
  uint64_t NextXmmBackingKey() { return (1ULL << 62) | next_backing_key_++; }

  Cluster& cluster_;
  XmmConfig config_;
  std::vector<std::unique_ptr<XmmAgent>> agents_;
  std::unordered_map<MemObjectId, std::unique_ptr<XmmObjectInfo>> directory_;
  uint32_t next_seq_ = 1;
  // Per-system (not process-global) so that identical machines allocate
  // identical paging-space positions — traces must be byte-stable run to run.
  uint64_t next_backing_key_ = 0;
  // Nodes whose death has already been gossiped (first notice wins).
  // ColdRestart removes rejoined nodes so a second death is noticed afresh.
  std::set<NodeId> death_noticed_;
};

}  // namespace asvm

#endif  // SRC_XMM_XMM_SYSTEM_H_
