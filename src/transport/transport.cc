#include "src/transport/transport.h"

#include <algorithm>
#include <cmath>

#include "src/common/log.h"

namespace asvm {

namespace {

// Pulls the protocol op/request id out of whatever typed body the envelope
// carries, so transport-level trace events can be correlated with the
// protocol-level exchange they belong to. Bodies without an id yield 0.
uint64_t MessageOpId(const Message& msg) {
  return std::visit(
      [](const auto& body) -> uint64_t {
        using Body = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<Body, std::monostate>) {
          return 0;
        } else {
          return std::visit(
              [](const auto& m) -> uint64_t {
                using M = std::decay_t<decltype(m)>;
                if constexpr (requires(const M& x) { x.op_id; }) {
                  return m.op_id;
                } else if constexpr (requires(const M& x) { x.req_id; }) {
                  return m.req_id;
                } else {
                  return 0;
                }
              },
              body);
        }
      },
      msg.body);
}

}  // namespace

Transport::Transport(Engine& engine, Network& network, std::string name, TransportCosts costs,
                     StatsRegistry* stats)
    : engine_(engine),
      network_(network),
      name_(std::move(name)),
      costs_(costs),
      stats_(stats),
      handlers_(kMaxProtocols * network.topology().node_count()),
      cpu_busy_until_(network.topology().node_count(), 0) {
  if (stats_ != nullptr) {
    messages_counter_ = &stats_->Counter("transport." + name_ + ".messages");
    bytes_counter_ = &stats_->Counter("transport." + name_ + ".bytes");
    page_messages_counter_ = &stats_->Counter("transport." + name_ + ".page_messages");
  }
}

Transport::Handler& Transport::HandlerSlot(ProtocolId protocol, NodeId node) {
  const size_t p = static_cast<size_t>(protocol);
  ASVM_CHECK_MSG(p < kMaxProtocols, "protocol id out of range");
  ASVM_CHECK_MSG(node >= 0 && static_cast<size_t>(node) < cpu_busy_until_.size(),
                 "node id out of range");
  return handlers_[p * cpu_busy_until_.size() + static_cast<size_t>(node)];
}

std::atomic<int64_t>& Transport::TypeCounter(const Message& msg) {
  const size_t p = static_cast<size_t>(msg.protocol);
  const size_t t = static_cast<size_t>(msg.type);
  if (p < kMaxProtocols && t < kMaxMsgTypes) {
    auto& cell = type_counters_[p][t];
    std::atomic<int64_t>* slot = cell.load(std::memory_order_acquire);
    if (slot == nullptr) {
      slot = &stats_->Counter("transport." + name_ + ".msg." + MsgTypeName(msg));
      cell.store(slot, std::memory_order_release);
    }
    return *slot;
  }
  return stats_->Counter("transport." + name_ + ".msg.unknown");
}

SimDuration Transport::SwCost(SimDuration base, NodeId node) {
  if (fault_ == nullptr) {
    return base;
  }
  const double factor = fault_->NodeCostFactor(node);
  if (factor == 1.0) {
    return base;
  }
  if (stats_ != nullptr) {
    stats_->Add("fault.slowed_messages");
  }
  return static_cast<SimDuration>(std::llround(static_cast<double>(base) * factor));
}

void Transport::RegisterHandler(ProtocolId protocol, NodeId node, Handler handler) {
  Handler& slot = HandlerSlot(protocol, node);
  ASVM_CHECK_MSG(!slot, "duplicate transport handler for protocol '" +
                            std::string(ProtocolName(protocol)) + "' on node " +
                            std::to_string(node) + " (transport '" + name_ +
                            "'); each (protocol, node) pair registers exactly once "
                            "during machine construction");
  slot = std::move(handler);
}

void Transport::Send(NodeId src, NodeId dst, Message msg) {
  if (stats_ != nullptr) {
    messages_counter_->fetch_add(1, std::memory_order_relaxed);
    bytes_counter_->fetch_add(
        static_cast<int64_t>(msg.WireBytes() + costs_.control_overhead_bytes),
        std::memory_order_relaxed);
    if (msg.page) {
      page_messages_counter_->fetch_add(1, std::memory_order_relaxed);
    }
    if (per_type_stats_) {
      TypeCounter(msg).fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (trace_ != nullptr && trace_->armed()) {
    TraceEvent e;
    e.time = node_engine(src).Now();
    e.node = src;
    e.protocol = TraceProtocol::kTransport;
    e.kind = TraceKind::kMsgSend;
    e.peer = dst;
    e.op = MessageOpId(msg);
    e.aux = static_cast<int64_t>(msg.WireBytes() + costs_.control_overhead_bytes);
    e.detail = MsgTypeName(msg);
    trace_->Emit(e);
  }

  if (src == dst) {
    // Node-local delivery: no wire, no port/receive queue — just the modeled
    // local handoff cost.
    node_engine(src).Schedule(costs_.local_delivery_ns,
                              [this, src, dst, msg = std::move(msg)]() mutable {
                                Handler& handler = HandlerSlot(msg.protocol, dst);
                                ASVM_CHECK_MSG(handler, "no transport handler registered");
                                handler(src, std::move(msg));
                              });
    return;
  }

  // Software send path serializes on the sending node's protocol CPU:
  // back-to-back sends (an invalidation fan-out, for example) queue behind
  // one another and behind incoming-message processing. cpu_busy_until_[n] is
  // only ever touched from node n's engine (its shard's thread), so sharded
  // runs race nowhere here.
  Engine& src_engine = node_engine(src);
  const SimTime now = src_engine.Now();
  const SimTime send_done = std::max(now, cpu_busy_until_[src]) + SwCost(costs_.send_sw_ns, src);
  cpu_busy_until_[src] = send_done;

  const size_t wire_bytes = msg.WireBytes() + costs_.control_overhead_bytes;
  if (outboxes_ != nullptr) {
    // Outbox path (all sharded runs, and armed shards=1 drains): defer ALL
    // fabric math (tx/rx busy channels, jitter, mesh stats) to the barrier,
    // which replays records in (send_time, source node, per-source seq)
    // order — including same-shard cross-node traffic, so the endpoint busy
    // channels update in one canonical sequence at every shard count.
    MeshRecord record;
    record.send_time = send_done;
    record.src = src;
    record.dst = dst;
    record.bytes = wire_bytes;
    record.deliver = [this, src, dst, msg = std::move(msg)]() mutable {
      Deliver(src, dst, std::move(msg));
    };
    (*outboxes_)[router_->shard_of(src)].push_back(std::move(record));
    return;
  }
  src_engine.Schedule(send_done - now,
                      [this, src, dst, wire_bytes, msg = std::move(msg)]() mutable {
                        network_.Send(src, dst, wire_bytes,
                                      [this, src, dst, msg = std::move(msg)]() mutable {
                                        Deliver(src, dst, std::move(msg));
                                      });
                      });
}

void Transport::Deliver(NodeId src, NodeId dst, Message msg) {
  Engine& dst_engine = node_engine(dst);
  if (trace_ != nullptr && trace_->armed()) {
    TraceEvent e;
    e.time = dst_engine.Now();
    e.node = dst;
    e.protocol = TraceProtocol::kTransport;
    e.kind = TraceKind::kMsgRecv;
    e.peer = src;
    e.op = MessageOpId(msg);
    e.aux = static_cast<int64_t>(msg.WireBytes() + costs_.control_overhead_bytes);
    e.detail = MsgTypeName(msg);
    trace_->Emit(e);
  }
  // Software receive path serializes on the receiving node's protocol CPU: a
  // node flooded with requests (a centralized manager) processes them one at
  // a time.
  const SimTime now = dst_engine.Now();
  const SimTime handled_at = std::max(now, cpu_busy_until_[dst]) + SwCost(costs_.recv_sw_ns, dst);
  cpu_busy_until_[dst] = handled_at;

  dst_engine.Schedule(handled_at - now, [this, src, dst, msg = std::move(msg)]() mutable {
    Handler& handler = HandlerSlot(msg.protocol, dst);
    ASVM_CHECK_MSG(handler, "no transport handler registered");
    handler(src, std::move(msg));
  });
}

TransportCosts StsCosts() {
  TransportCosts costs;
  // Dedicated low-level protocol stack: fixed 32-byte untyped control block,
  // preallocated page receive buffers, no port translation.
  costs.send_sw_ns = 250 * kMicrosecond;
  costs.recv_sw_ns = 250 * kMicrosecond;
  costs.local_delivery_ns = 20 * kMicrosecond;
  costs.control_overhead_bytes = 0;
  return costs;
}

TransportCosts StsCtlCosts() {
  TransportCosts costs;
  // Minimal preformatted control messages (invalidations and their acks):
  // no buffer management at all, just a 32-byte block into a preposted slot.
  costs.send_sw_ns = 40 * kMicrosecond;
  costs.recv_sw_ns = 40 * kMicrosecond;
  costs.local_delivery_ns = 10 * kMicrosecond;
  costs.control_overhead_bytes = 0;
  return costs;
}

TransportCosts NormaIpcCosts() {
  TransportCosts costs;
  // Port-right bookkeeping, typed message parsing, kernel IPC queueing: the
  // paper measures NORMA-IPC at ~90% of XMM's remote page-fault latency.
  costs.send_sw_ns = 500 * kMicrosecond;
  costs.recv_sw_ns = 450 * kMicrosecond;
  costs.local_delivery_ns = 300 * kMicrosecond;
  costs.control_overhead_bytes = 256;
  return costs;
}

}  // namespace asvm
