#include "src/transport/transport.h"

#include <algorithm>
#include <cmath>

#include "src/common/log.h"

namespace asvm {

namespace {

// Pulls the protocol op/request id out of whatever typed body the envelope
// carries, so transport-level trace events can be correlated with the
// protocol-level exchange they belong to. Bodies without an id yield 0.
uint64_t MessageOpId(const Message& msg) {
  return std::visit(
      [](const auto& body) -> uint64_t {
        using Body = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<Body, std::monostate>) {
          return 0;
        } else {
          return std::visit(
              [](const auto& m) -> uint64_t {
                using M = std::decay_t<decltype(m)>;
                if constexpr (requires(const M& x) { x.op_id; }) {
                  return m.op_id;
                } else if constexpr (requires(const M& x) { x.req_id; }) {
                  return m.req_id;
                } else {
                  return 0;
                }
              },
              body);
        }
      },
      msg.body);
}

}  // namespace

Transport::Transport(Engine& engine, Network& network, std::string name, TransportCosts costs,
                     StatsRegistry* stats)
    : engine_(engine),
      network_(network),
      name_(std::move(name)),
      costs_(costs),
      stats_(stats),
      handlers_(kMaxProtocols * network.topology().node_count()),
      cpu_busy_until_(network.topology().node_count(), 0) {
  if (stats_ != nullptr) {
    messages_counter_ = &stats_->Counter("transport." + name_ + ".messages");
    bytes_counter_ = &stats_->Counter("transport." + name_ + ".bytes");
    page_messages_counter_ = &stats_->Counter("transport." + name_ + ".page_messages");
  }
}

Transport::Handler& Transport::HandlerSlot(ProtocolId protocol, NodeId node) {
  const size_t p = static_cast<size_t>(protocol);
  ASVM_CHECK_MSG(p < kMaxProtocols, "protocol id out of range");
  ASVM_CHECK_MSG(node >= 0 && static_cast<size_t>(node) < cpu_busy_until_.size(),
                 "node id out of range");
  return handlers_[p * cpu_busy_until_.size() + static_cast<size_t>(node)];
}

int64_t& Transport::TypeCounter(const Message& msg) {
  const size_t p = static_cast<size_t>(msg.protocol);
  const size_t t = static_cast<size_t>(msg.type);
  if (p < kMaxProtocols && t < kMaxMsgTypes) {
    int64_t*& slot = type_counters_[p][t];
    if (slot == nullptr) {
      slot = &stats_->Counter("transport." + name_ + ".msg." + MsgTypeName(msg));
    }
    return *slot;
  }
  return stats_->Counter("transport." + name_ + ".msg.unknown");
}

SimDuration Transport::SwCost(SimDuration base, NodeId node) {
  if (fault_ == nullptr) {
    return base;
  }
  const double factor = fault_->NodeCostFactor(node);
  if (factor == 1.0) {
    return base;
  }
  if (stats_ != nullptr) {
    stats_->Add("fault.slowed_messages");
  }
  return static_cast<SimDuration>(std::llround(static_cast<double>(base) * factor));
}

void Transport::RegisterHandler(ProtocolId protocol, NodeId node, Handler handler) {
  Handler& slot = HandlerSlot(protocol, node);
  ASVM_CHECK_MSG(!slot, "duplicate transport handler for protocol '" +
                            std::string(ProtocolName(protocol)) + "' on node " +
                            std::to_string(node) + " (transport '" + name_ +
                            "'); each (protocol, node) pair registers exactly once "
                            "during machine construction");
  slot = std::move(handler);
}

void Transport::Send(NodeId src, NodeId dst, Message msg) {
  if (stats_ != nullptr) {
    ++*messages_counter_;
    *bytes_counter_ += static_cast<int64_t>(msg.WireBytes() + costs_.control_overhead_bytes);
    if (msg.page) {
      ++*page_messages_counter_;
    }
    if (per_type_stats_) {
      ++TypeCounter(msg);
    }
  }
  if (trace_ != nullptr && trace_->armed()) {
    TraceEvent e;
    e.time = engine_.Now();
    e.node = src;
    e.protocol = TraceProtocol::kTransport;
    e.kind = TraceKind::kMsgSend;
    e.peer = dst;
    e.op = MessageOpId(msg);
    e.aux = static_cast<int64_t>(msg.WireBytes() + costs_.control_overhead_bytes);
    e.detail = MsgTypeName(msg);
    trace_->Emit(e);
  }

  if (src == dst) {
    // Node-local delivery: no wire, no port/receive queue — just the modeled
    // local handoff cost.
    engine_.Schedule(costs_.local_delivery_ns, [this, src, dst, msg = std::move(msg)]() mutable {
      Handler& handler = HandlerSlot(msg.protocol, dst);
      ASVM_CHECK_MSG(handler, "no transport handler registered");
      handler(src, std::move(msg));
    });
    return;
  }

  // Software send path serializes on the sending node's protocol CPU:
  // back-to-back sends (an invalidation fan-out, for example) queue behind
  // one another and behind incoming-message processing.
  const SimTime now = engine_.Now();
  const SimTime send_done = std::max(now, cpu_busy_until_[src]) + SwCost(costs_.send_sw_ns, src);
  cpu_busy_until_[src] = send_done;

  const size_t wire_bytes = msg.WireBytes() + costs_.control_overhead_bytes;
  engine_.Schedule(send_done - now,
                   [this, src, dst, wire_bytes, msg = std::move(msg)]() mutable {
                     network_.Send(src, dst, wire_bytes,
                                   [this, src, dst, msg = std::move(msg)]() mutable {
                                     Deliver(src, dst, std::move(msg));
                                   });
                   });
}

void Transport::Deliver(NodeId src, NodeId dst, Message msg) {
  if (trace_ != nullptr && trace_->armed()) {
    TraceEvent e;
    e.time = engine_.Now();
    e.node = dst;
    e.protocol = TraceProtocol::kTransport;
    e.kind = TraceKind::kMsgRecv;
    e.peer = src;
    e.op = MessageOpId(msg);
    e.aux = static_cast<int64_t>(msg.WireBytes() + costs_.control_overhead_bytes);
    e.detail = MsgTypeName(msg);
    trace_->Emit(e);
  }
  // Software receive path serializes on the receiving node's protocol CPU: a
  // node flooded with requests (a centralized manager) processes them one at
  // a time.
  const SimTime now = engine_.Now();
  const SimTime handled_at = std::max(now, cpu_busy_until_[dst]) + SwCost(costs_.recv_sw_ns, dst);
  cpu_busy_until_[dst] = handled_at;

  engine_.Schedule(handled_at - now, [this, src, dst, msg = std::move(msg)]() mutable {
    Handler& handler = HandlerSlot(msg.protocol, dst);
    ASVM_CHECK_MSG(handler, "no transport handler registered");
    handler(src, std::move(msg));
  });
}

TransportCosts StsCosts() {
  TransportCosts costs;
  // Dedicated low-level protocol stack: fixed 32-byte untyped control block,
  // preallocated page receive buffers, no port translation.
  costs.send_sw_ns = 250 * kMicrosecond;
  costs.recv_sw_ns = 250 * kMicrosecond;
  costs.local_delivery_ns = 20 * kMicrosecond;
  costs.control_overhead_bytes = 0;
  return costs;
}

TransportCosts StsCtlCosts() {
  TransportCosts costs;
  // Minimal preformatted control messages (invalidations and their acks):
  // no buffer management at all, just a 32-byte block into a preposted slot.
  costs.send_sw_ns = 40 * kMicrosecond;
  costs.recv_sw_ns = 40 * kMicrosecond;
  costs.local_delivery_ns = 10 * kMicrosecond;
  costs.control_overhead_bytes = 0;
  return costs;
}

TransportCosts NormaIpcCosts() {
  TransportCosts costs;
  // Port-right bookkeeping, typed message parsing, kernel IPC queueing: the
  // paper measures NORMA-IPC at ~90% of XMM's remote page-fault latency.
  costs.send_sw_ns = 500 * kMicrosecond;
  costs.recv_sw_ns = 450 * kMicrosecond;
  costs.local_delivery_ns = 300 * kMicrosecond;
  costs.control_overhead_bytes = 256;
  return costs;
}

}  // namespace asvm
