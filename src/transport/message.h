// Transport-neutral message container. Protocol modules (ASVM, XMM) define
// their own typed bodies, carried here as std::any; `control_bytes` models the
// on-wire size of the control part, and `page` carries optional page contents
// whose size is added to the wire cost.
#ifndef SRC_TRANSPORT_MESSAGE_H_
#define SRC_TRANSPORT_MESSAGE_H_

#include <any>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace asvm {

// Dispatch key: which subsystem's handler receives the message on the
// destination node.
enum class ProtocolId : uint32_t {
  kAsvm = 1,
  kXmm = 2,
  kPagerControl = 3,  // pager-level traffic (file pager requests, etc.)
};

using PageBuffer = std::shared_ptr<std::vector<std::byte>>;

struct Message {
  ProtocolId protocol = ProtocolId::kAsvm;
  // Protocol-specific type tag, used for stats labels and debugging.
  uint32_t type = 0;
  // Modeled size of the control part on the wire (ASVM: fixed 32 bytes).
  size_t control_bytes = 32;
  // Typed protocol body (any_cast'd by the receiving protocol module).
  std::any body;
  // Optional page contents; its size is charged to the wire.
  PageBuffer page;

  size_t WireBytes() const { return control_bytes + (page ? page->size() : 0); }
};

}  // namespace asvm

#endif  // SRC_TRANSPORT_MESSAGE_H_
