// Transport-neutral message container. Protocol modules (ASVM, XMM) define
// their own typed bodies, carried here as a closed std::variant envelope;
// `control_bytes` models the on-wire size of the control part, and `page`
// carries optional page contents whose size is added to the wire cost.
//
// The envelope is deliberately closed: adding a protocol or a body type means
// adding a variant alternative here or in the protocol's messages header, and
// every std::visit dispatch over it is exhaustive — a new alternative without
// a handler is a compile error, not a bad_any_cast at run time. No RTTI, no
// per-message heap allocation for the body.
#ifndef SRC_TRANSPORT_MESSAGE_H_
#define SRC_TRANSPORT_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/asvm/messages.h"
#include "src/ivy/ivy_messages.h"
#include "src/xmm/xmm_messages.h"

namespace asvm {

// Dispatch key: which subsystem's handler receives the message on the
// destination node.
enum class ProtocolId : uint32_t {
  kAsvm = 1,
  kXmm = 2,
  kPagerControl = 3,  // pager-level traffic (file pager requests, etc.)
  kIvy = 4,
};

// Pager-level control traffic. The simulator's pagers talk through direct
// coroutine calls, so this protocol carries no payload beyond its tag; it
// exists so out-of-band pager traffic has a typed envelope alternative too.
enum class PagerMsgType : uint32_t {
  kControl = 1,
};

struct PagerControlMsg {
  uint64_t token = 0;
};

using PagerBody = std::variant<PagerControlMsg>;

constexpr const char* MsgTypeName(PagerMsgType type) {
  switch (type) {
    case PagerMsgType::kControl:
      return "control";
  }
  return "unknown";
}

// The closed set of protocol bodies a Message can carry. monostate covers
// tag-only control messages (and default construction).
using MessageBody = std::variant<std::monostate, AsvmBody, XmmBody, PagerBody, IvyBody>;

// Helper for exhaustive std::visit dispatch over message bodies:
//   std::visit(Overloaded{[](const AccessRequest& r) {...}, ...}, body);
// No generic fallback lambda is provided at call sites, so an unhandled
// alternative fails to compile.
template <typename... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <typename... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

using PageBuffer = std::shared_ptr<std::vector<std::byte>>;

struct Message {
  ProtocolId protocol = ProtocolId::kAsvm;
  // Protocol-specific type tag, used for stats labels and debugging.
  uint32_t type = 0;
  // Modeled size of the control part on the wire (ASVM: fixed 32 bytes).
  size_t control_bytes = 32;
  // Typed protocol body; the receiving protocol module std::get's the
  // alternative named by (protocol, type).
  MessageBody body;
  // Optional page contents; its size is charged to the wire.
  PageBuffer page;

  size_t WireBytes() const { return control_bytes + (page ? page->size() : 0); }
};

// Stats/debug label for a message's (protocol, type) pair, from the
// per-protocol MsgTypeName tables.
constexpr const char* MsgTypeName(const Message& msg) {
  switch (msg.protocol) {
    case ProtocolId::kAsvm:
      return MsgTypeName(static_cast<AsvmMsgType>(msg.type));
    case ProtocolId::kXmm:
      return MsgTypeName(static_cast<XmmMsgType>(msg.type));
    case ProtocolId::kPagerControl:
      return MsgTypeName(static_cast<PagerMsgType>(msg.type));
    case ProtocolId::kIvy:
      return MsgTypeName(static_cast<IvyMsgType>(msg.type));
  }
  return "unknown";
}

constexpr const char* ProtocolName(ProtocolId protocol) {
  switch (protocol) {
    case ProtocolId::kAsvm:
      return "asvm";
    case ProtocolId::kXmm:
      return "xmm";
    case ProtocolId::kPagerControl:
      return "pager";
    case ProtocolId::kIvy:
      return "ivy";
  }
  return "unknown";
}

}  // namespace asvm

#endif  // SRC_TRANSPORT_MESSAGE_H_
