// Transport service interface plus a shared cost-modeled implementation.
//
// Two concrete transports exist, mirroring the paper:
//  * StsTransport — the dedicated SVM Transport Service: tiny fixed-size
//    untyped control messages, preallocated page receive buffers, low
//    per-message software overhead.
//  * NormaIpc — Mach NORMA-IPC: port-right translation and complex typed
//    message structures impose a large per-message software cost (the paper
//    attributes ~90% of XMM's remote-fault latency to it).
//
// Both charge a software send overhead serialized on the sending node and a
// software receive overhead serialized on the receiving node, over the same
// mesh fabric.
#ifndef SRC_TRANSPORT_TRANSPORT_H_
#define SRC_TRANSPORT_TRANSPORT_H_

#include <array>
#include <atomic>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/common/types.h"
#include "src/mesh/network.h"
#include "src/sim/engine.h"
#include "src/sim/shard_router.h"
#include "src/transport/message.h"

namespace asvm {

struct TransportCosts {
  SimDuration send_sw_ns = 0;       // software cost to send, serialized per sender
  SimDuration recv_sw_ns = 0;       // software cost to receive, serialized per receiver
  SimDuration local_delivery_ns = 0;  // cost of a node sending to itself
  size_t control_overhead_bytes = 0;  // extra wire bytes per message (headers, port data)
};

class Transport {
 public:
  using Handler = std::function<void(NodeId src, Message msg)>;

  Transport(Engine& engine, Network& network, std::string name, TransportCosts costs,
            StatsRegistry* stats);
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // Registers the receive handler for (protocol, node). At most one handler
  // per pair; protocol modules register during machine construction.
  void RegisterHandler(ProtocolId protocol, NodeId node, Handler handler);

  // Sends msg from src to dst. Delivery invokes the registered handler after
  // the modeled software + wire latency. src == dst is a local delivery that
  // bypasses the mesh.
  void Send(NodeId src, NodeId dst, Message msg);

  const std::string& name() const { return name_; }
  const TransportCosts& costs() const { return costs_; }

  // When enabled, every send also bumps a per-message-type counter
  // ("transport.<name>.msg.<MsgTypeName>"). Off by default: the extra counter
  // per message is only worth paying for when a tool asks for the breakdown.
  void set_per_type_stats(bool enabled) { per_type_stats_ = enabled; }

  // Attaches a fault plan (not owned): slow-node faults scale this node's
  // software send/recv costs. Never attached in healthy runs.
  void set_fault_plan(FaultPlan* plan) { fault_ = plan; }

  // Attaches the machine-wide trace sink (not owned): every send/delivery
  // emits a kMsgSend/kMsgRecv event carrying the message type and, when the
  // body has one, the protocol op id. Host-side only.
  void set_trace(TraceSink* sink) { trace_ = sink; }

  // Sharded mode (both not owned): sends route per-node engines, and every
  // cross-node message becomes a MeshRecord in the sending shard's outbox
  // instead of entering the fabric immediately — the barrier replays them in
  // global send-time order (DESIGN.md §13). Never set in single-engine runs,
  // which keep the exact legacy path.
  void set_sharding(ShardRouter* router, std::vector<std::vector<MeshRecord>>* outboxes) {
    router_ = router;
    outboxes_ = outboxes;
  }

 private:
  // Protocol ids are small contiguous integers; message-type tags are small
  // per-protocol enums. Both are bounded so dispatch and the per-type counter
  // cache can be flat arrays instead of map lookups on the hot path.
  static constexpr size_t kMaxProtocols = 5;
  static constexpr size_t kMaxMsgTypes = 32;

  void Deliver(NodeId src, NodeId dst, Message msg);
  Handler& HandlerSlot(ProtocolId protocol, NodeId node);
  std::atomic<int64_t>& TypeCounter(const Message& msg);
  SimDuration SwCost(SimDuration base, NodeId node);
  Engine& node_engine(NodeId node) {
    return router_ != nullptr ? router_->engine_for(node) : engine_;
  }

  Engine& engine_;
  Network& network_;
  std::string name_;
  TransportCosts costs_;
  StatsRegistry* stats_;
  FaultPlan* fault_ = nullptr;
  TraceSink* trace_ = nullptr;
  // Indexed [protocol * node_count + node]; empty std::function = unregistered.
  std::vector<Handler> handlers_;
  // One protocol CPU per node: sending and receiving share it, so a node
  // fanning out invalidations also pays for each ack it absorbs (the additive
  // per-reader slope of Table 1 / Figure 10).
  std::vector<SimTime> cpu_busy_until_;
  // Cached counter references so the per-send cost is an increment, not a
  // string build + map lookup. Atomics: shard threads send concurrently.
  std::atomic<int64_t>* messages_counter_ = nullptr;
  std::atomic<int64_t>* bytes_counter_ = nullptr;
  std::atomic<int64_t>* page_messages_counter_ = nullptr;
  bool per_type_stats_ = false;
  // Lazily-filled pointer cache; atomic because shard threads race the fill.
  // Both racers resolve to the same registry node, so either store wins.
  std::array<std::array<std::atomic<std::atomic<int64_t>*>, kMaxMsgTypes>, kMaxProtocols>
      type_counters_{};
  ShardRouter* router_ = nullptr;
  std::vector<std::vector<MeshRecord>>* outboxes_ = nullptr;
};

// Factory helpers with the calibrated cost models (see DESIGN.md §4).
TransportCosts StsCosts();
TransportCosts StsCtlCosts();
TransportCosts NormaIpcCosts();

class StsTransport : public Transport {
 public:
  StsTransport(Engine& engine, Network& network, StatsRegistry* stats)
      : Transport(engine, network, "sts", StsCosts(), stats) {}
};

// STS channel for trivial preformatted control messages (invalidation
// rounds): Table 1's ~0.1 ms-per-reader slope comes from this path.
class StsCtlTransport : public Transport {
 public:
  StsCtlTransport(Engine& engine, Network& network, StatsRegistry* stats)
      : Transport(engine, network, "sts_ctl", StsCtlCosts(), stats) {}
};

class NormaIpc : public Transport {
 public:
  NormaIpc(Engine& engine, Network& network, StatsRegistry* stats)
      : Transport(engine, network, "norma", NormaIpcCosts(), stats) {}
};

}  // namespace asvm

#endif  // SRC_TRANSPORT_TRANSPORT_H_
