#include "src/mappedfs/file_bench.h"

#include <algorithm>

#include "src/common/log.h"
#include "src/dsm/cluster_sync.h"
#include "src/machvm/file_pager.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace asvm {

namespace {

Task SequentialTouch(TaskMemory& mem, VmOffset first_page, VmOffset end_page, size_t ps,
                     PageAccess access, SimTime* finished, ClusterWaitGroup& wg) {
  for (VmOffset p = first_page; p < end_page; ++p) {
    Status s = co_await mem.Touch(p * ps, 8, access);
    ASVM_CHECK_MSG(IsOk(s), "file touch failed");
  }
  // The worker completes on its own node's engine; under --shards that clock
  // is the node-local one, which keeps Table 2's per-node rates byte-stable.
  *finished = mem.vm().engine().Now();
  wg.Done(mem.vm().node());
}

}  // namespace

FileBenchResult RunParallelFileRead(Machine& machine, const MemObjectId& region,
                                    VmSize file_pages, int nodes_used, NodeId first_node) {
  ASVM_CHECK(nodes_used >= 1 && first_node + nodes_used <= machine.nodes());
  const size_t ps = machine.page_size();
  std::vector<TaskMemory*> mems;
  for (NodeId n = 0; n < nodes_used; ++n) {
    mems.push_back(&machine.MapRegion(first_node + n, region));
  }
  std::vector<SimTime> finished(nodes_used, 0);
  ClusterWaitGroup wg(machine.cluster());
  wg.Add(nodes_used);
  const SimTime start = machine.Now();
  for (NodeId n = 0; n < nodes_used; ++n) {
    (void)SequentialTouch(*mems[n], 0, file_pages, ps, PageAccess::kRead, &finished[n], wg);
  }
  machine.Run();
  ASVM_CHECK(wg.count() == 0);

  FileBenchResult result;
  const double file_mb =
      static_cast<double>(file_pages) * static_cast<double>(ps) / (1024.0 * 1024.0);
  double rate_sum = 0;
  SimTime last = start;
  for (NodeId n = 0; n < nodes_used; ++n) {
    const double secs = ToSeconds(finished[n] - start);
    result.node_seconds.push_back(secs);
    rate_sum += file_mb / secs;
    last = std::max(last, finished[n]);
  }
  result.per_node_mb_s = rate_sum / nodes_used;
  result.makespan_seconds = ToSeconds(last - start);
  return result;
}

FileBenchResult RunParallelFileWrite(Machine& machine, const MemObjectId& region,
                                     VmSize file_pages, int nodes_used, NodeId first_node) {
  ASVM_CHECK(nodes_used >= 1 && first_node + nodes_used <= machine.nodes());
  const size_t ps = machine.page_size();
  std::vector<TaskMemory*> mems;
  for (NodeId n = 0; n < nodes_used; ++n) {
    mems.push_back(&machine.MapRegion(first_node + n, region));
  }
  std::vector<SimTime> finished(nodes_used, 0);
  ClusterWaitGroup wg(machine.cluster());
  wg.Add(nodes_used);
  const VmSize section = file_pages / nodes_used;
  ASVM_CHECK_MSG(section > 0, "file smaller than node count");
  const SimTime start = machine.Now();
  for (NodeId n = 0; n < nodes_used; ++n) {
    const VmOffset lo = static_cast<VmOffset>(n) * section;
    const VmOffset hi = n == nodes_used - 1 ? file_pages : lo + section;
    (void)SequentialTouch(*mems[n], lo, hi, ps, PageAccess::kWrite, &finished[n], wg);
  }
  machine.Run();
  ASVM_CHECK(wg.count() == 0);

  FileBenchResult result;
  double rate_sum = 0;
  SimTime last = start;
  for (NodeId n = 0; n < nodes_used; ++n) {
    const VmOffset lo = static_cast<VmOffset>(n) * section;
    const VmOffset hi = n == nodes_used - 1 ? file_pages : lo + section;
    const double mb = static_cast<double>(hi - lo) * static_cast<double>(ps) / (1024.0 * 1024.0);
    const double secs = ToSeconds(finished[n] - start);
    result.node_seconds.push_back(secs);
    rate_sum += mb / secs;
    last = std::max(last, finished[n]);
  }
  result.per_node_mb_s = rate_sum / nodes_used;
  result.makespan_seconds = ToSeconds(last - start);
  return result;
}

FileBenchResult RunParallelFileReadSections(Machine& machine, const MemObjectId& region,
                                            VmSize file_pages, int nodes_used,
                                            NodeId first_node) {
  ASVM_CHECK(nodes_used >= 1 && first_node + nodes_used <= machine.nodes());
  const size_t ps = machine.page_size();
  std::vector<TaskMemory*> mems;
  for (NodeId n = 0; n < nodes_used; ++n) {
    mems.push_back(&machine.MapRegion(first_node + n, region));
  }
  std::vector<SimTime> finished(nodes_used, 0);
  ClusterWaitGroup wg(machine.cluster());
  wg.Add(nodes_used);
  const VmSize section = file_pages / nodes_used;
  ASVM_CHECK_MSG(section > 0, "file smaller than node count");
  const SimTime start = machine.Now();
  for (NodeId n = 0; n < nodes_used; ++n) {
    const VmOffset lo = static_cast<VmOffset>(n) * section;
    const VmOffset hi = n == nodes_used - 1 ? file_pages : lo + section;
    (void)SequentialTouch(*mems[n], lo, hi, ps, PageAccess::kRead, &finished[n], wg);
  }
  machine.Run();
  ASVM_CHECK(wg.count() == 0);

  FileBenchResult result;
  double rate_sum = 0;
  SimTime last = start;
  for (NodeId n = 0; n < nodes_used; ++n) {
    const VmOffset lo = static_cast<VmOffset>(n) * section;
    const VmOffset hi = n == nodes_used - 1 ? file_pages : lo + section;
    const double mb = static_cast<double>(hi - lo) * static_cast<double>(ps) / (1024.0 * 1024.0);
    const double secs = ToSeconds(finished[n] - start);
    result.node_seconds.push_back(secs);
    rate_sum += mb / secs;
    last = std::max(last, finished[n]);
  }
  result.per_node_mb_s = rate_sum / nodes_used;
  result.makespan_seconds = ToSeconds(last - start);
  return result;
}

int VerifyFileContents(Machine& machine, TaskMemory& mem, int32_t file_id, VmSize pages) {
  const size_t ps = machine.page_size();
  int bad = 0;
  std::vector<std::byte> got(ps);
  std::vector<std::byte> want(ps);
  for (VmOffset p = 0; p < pages; ++p) {
    auto f = mem.ReadBytes(p * ps, got);
    machine.Run();
    if (!f.ready() || !IsOk(f.value())) {
      ++bad;
      continue;
    }
    FilePager::FillPattern(file_id, static_cast<PageIndex>(p), want);
    if (got != want) {
      ++bad;
    }
  }
  return bad;
}

}  // namespace asvm
