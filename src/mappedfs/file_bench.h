// Mapped-filesystem workloads of the paper's §4.2: N nodes mmap the same
// file and read it in parallel (whole file each) or write disjoint sections
// with asynchronous write-behind. The reported metric is the effective
// transfer rate seen by each node (Table 2 / Figures 12-13).
#ifndef SRC_MAPPEDFS_FILE_BENCH_H_
#define SRC_MAPPEDFS_FILE_BENCH_H_

#include <string>
#include <vector>

#include "src/core/machine.h"

namespace asvm {

struct FileBenchResult {
  double per_node_mb_s = 0;    // mean over nodes of section_or_file / node time
  double makespan_seconds = 0;
  std::vector<double> node_seconds;
};

// All `nodes_used` nodes starting at `first_node` read the entire file
// (sequential page order), in parallel. Returns per-node MB/s over the whole
// file. Use first_node=1 to keep compute traffic off the I/O node (node 0),
// as on the real machine.
FileBenchResult RunParallelFileRead(Machine& machine, const MemObjectId& region,
                                    VmSize file_pages, int nodes_used, NodeId first_node = 0);

// Each node writes its disjoint 1/nodes_used section of the file (sequential
// page order, asynchronous write-behind). Per-node MB/s over its section.
FileBenchResult RunParallelFileWrite(Machine& machine, const MemObjectId& region,
                                     VmSize file_pages, int nodes_used,
                                     NodeId first_node = 0);

// Each node reads its disjoint 1/nodes_used section (the PFS access pattern:
// cold sections stream from the I/O nodes in parallel — what striping
// accelerates). Per-node MB/s over its section.
FileBenchResult RunParallelFileReadSections(Machine& machine, const MemObjectId& region,
                                            VmSize file_pages, int nodes_used,
                                            NodeId first_node = 0);

// Integrity helper: reads `pages` pages from `mem` and checks them against
// the file pager's deterministic fill pattern. Returns the number of
// mismatching pages (0 = intact).
int VerifyFileContents(Machine& machine, TaskMemory& mem, int32_t file_id, VmSize pages);

}  // namespace asvm

#endif  // SRC_MAPPEDFS_FILE_BENCH_H_
