#include "src/sim/engine.h"

#include "src/common/log.h"

namespace asvm {

void Engine::Schedule(SimDuration delay, std::function<void()> fn) {
  ASVM_CHECK_MSG(delay >= 0, "negative delay scheduled");
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
}

void Engine::RunOne() {
  // Move the event out before popping so the callback may schedule new events.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  ASVM_CHECK_MSG(event.time >= now_, "event queue time went backwards");
  now_ = event.time;
  ++executed_;
  if (event_limit_ != 0 && executed_ > event_limit_) {
    ASVM_CHECK_MSG(false, "engine event limit exceeded (possible livelock)");
  }
  event.fn();
}

uint64_t Engine::Run() {
  const uint64_t start = executed_;
  while (!queue_.empty()) {
    RunOne();
  }
  return executed_ - start;
}

bool Engine::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    RunOne();
  }
  if (queue_.empty()) {
    return true;
  }
  now_ = deadline;
  return false;
}

}  // namespace asvm
