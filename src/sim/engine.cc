#include "src/sim/engine.h"

#include "src/common/log.h"

namespace asvm {

void Engine::Schedule(SimDuration delay, EventFn fn) {
  ASVM_CHECK_MSG(delay >= 0, "negative delay scheduled");
  queue_->Push(now_ + delay, std::move(fn));
}

void Engine::ScheduleAt(SimTime time, EventFn fn) {
  ASVM_CHECK_MSG(time >= now_, "ScheduleAt in the past");
  queue_->Push(time, std::move(fn));
}

void Engine::RunOne() {
  // Move the event out before popping so the callback may schedule new events.
  SimTime time;
  EventFn fn = queue_->PopNext(&time);
  ASVM_CHECK_MSG(time >= now_, "event queue time went backwards");
  now_ = time;
  ++executed_;
  if (event_limit_ != 0 && executed_ > event_limit_) {
    ASVM_CHECK_MSG(false, "engine event limit exceeded (possible livelock)");
  }
  fn();
}

uint64_t Engine::Run() {
  const uint64_t start = executed_;
  while (!queue_->Empty()) {
    RunOne();
  }
  if (!defer_stall_checks_) {
    CheckStall();
  }
  return executed_ - start;
}

bool Engine::RunUntil(SimTime deadline) {
  while (!queue_->Empty() && queue_->NextTime() <= deadline) {
    RunOne();
  }
  if (queue_->Empty()) {
    if (!defer_stall_checks_) {
      CheckStall();
    }
    return true;
  }
  now_ = deadline;
  return false;
}

int Engine::AddStallProbe(StallProbe probe) {
  const int id = next_stall_probe_id_++;
  stall_probes_.emplace_back(id, std::move(probe));
  return id;
}

void Engine::RemoveStallProbe(int id) {
  for (auto it = stall_probes_.begin(); it != stall_probes_.end(); ++it) {
    if (it->first == id) {
      stall_probes_.erase(it);
      return;
    }
  }
}

void Engine::CheckStall() {
  if (!stall_handler_ || stall_probes_.empty()) {
    return;
  }
  std::string report;
  bool blocked = false;
  for (auto& [id, probe] : stall_probes_) {
    if (probe(report)) {
      blocked = true;
    }
  }
  if (!blocked) {
    return;
  }
  ++stalls_detected_;
  std::string header = "simulation stalled at t=" + std::to_string(now_) +
                       " ns: event queue drained while work is still blocked\n";
  stall_handler_(header + report);
}

}  // namespace asvm
