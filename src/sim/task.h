// Coroutine task type for simulated activities (user tasks, pager threads,
// protocol handlers). Tasks start eagerly, run cooperatively on the engine's
// single thread, and can be awaited by other tasks.
//
//   Task Worker(Engine& e, Memory& m) {
//     co_await Delay(e, 10 * kMicrosecond);
//     uint64_t v = co_await m.ReadU64(addr);
//     ...
//   }
//   Task t = Worker(engine, mem);   // runs until its first suspension point
//   co_await t;                     // from another task, waits for completion
#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <coroutine>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace asvm {

namespace sim_detail {

// Completion record shared between the coroutine frame and Task handles, so a
// Task object stays valid after the frame self-destructs.
struct TaskDoneState {
  bool done = false;
  std::vector<std::coroutine_handle<>> waiters;

  void MarkDone() {
    done = true;
    // Resume waiters after the frame is gone; they only touch this state.
    std::vector<std::coroutine_handle<>> to_resume;
    to_resume.swap(waiters);
    for (auto handle : to_resume) {
      handle.resume();
    }
  }
};

}  // namespace sim_detail

class [[nodiscard]] Task {
 public:
  struct promise_type {
    std::shared_ptr<sim_detail::TaskDoneState> state =
        std::make_shared<sim_detail::TaskDoneState>();

    Task get_return_object() { return Task(state); }
    std::suspend_never initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> handle) noexcept {
        // Grab the state, destroy the frame, then wake waiters. Destroying
        // first means a waiter may immediately start another Task without the
        // dead frame lingering.
        std::shared_ptr<sim_detail::TaskDoneState> state = handle.promise().state;
        handle.destroy();
        state->MarkDone();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { std::abort(); }
  };

  Task() = default;

  bool valid() const { return state_ != nullptr; }
  bool done() const { return !state_ || state_->done; }

  struct Awaiter {
    std::shared_ptr<sim_detail::TaskDoneState> state;
    bool await_ready() const noexcept { return !state || state->done; }
    void await_suspend(std::coroutine_handle<> handle) { state->waiters.push_back(handle); }
    void await_resume() const noexcept {}
  };
  Awaiter operator co_await() const { return Awaiter{state_}; }

 private:
  explicit Task(std::shared_ptr<sim_detail::TaskDoneState> state) : state_(std::move(state)) {}

  std::shared_ptr<sim_detail::TaskDoneState> state_;
};

// Awaitable that resumes the coroutine after the given simulated delay.
class Delay {
 public:
  Delay(Engine& engine, SimDuration duration) : engine_(engine), duration_(duration) {}

  bool await_ready() const noexcept { return duration_ <= 0; }
  void await_suspend(std::coroutine_handle<> handle) {
    engine_.Schedule(duration_, [handle]() { handle.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Engine& engine_;
  SimDuration duration_;
};

}  // namespace asvm

#endif  // SRC_SIM_TASK_H_
