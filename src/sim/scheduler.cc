#include "src/sim/scheduler.h"

#include <algorithm>
#include <limits>

#include "src/common/log.h"

namespace asvm {

const char* ToString(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kTimerWheel:
      return "timer-wheel";
    case SchedulerKind::kReference:
      return "reference";
  }
  ASVM_CHECK_MSG(false, "invalid SchedulerKind");
  return nullptr;
}

std::unique_ptr<Scheduler> MakeScheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kTimerWheel:
      return std::make_unique<TimerWheelScheduler>();
    case SchedulerKind::kReference:
      return std::make_unique<ReferenceScheduler>();
  }
  // An out-of-range value (cast from a raw int, memory corruption) must not
  // silently fall back to the wheel: the scheduler choice is part of the
  // deterministic-timeline contract.
  ASVM_CHECK_MSG(false, "invalid SchedulerKind");
  return nullptr;
}

bool SchedulerKindFromName(std::string_view name, SchedulerKind* out) {
  if (name == "wheel" || name == "timer-wheel") {
    *out = SchedulerKind::kTimerWheel;
    return true;
  }
  if (name == "heap" || name == "reference") {
    *out = SchedulerKind::kReference;
    return true;
  }
  return false;
}

TimerWheelScheduler::TimerWheelScheduler() = default;

TimerWheelScheduler::~TimerWheelScheduler() = default;

TimerWheelScheduler::Node* TimerWheelScheduler::AcquireNode(SimTime time, uint64_t seq,
                                                            EventFn fn) {
  if (free_list_ == nullptr) {
    blocks_.push_back(std::make_unique<Node[]>(kBlockNodes));
    Node* block = blocks_.back().get();
    for (size_t i = 0; i < kBlockNodes; ++i) {
      block[i].next = free_list_;
      free_list_ = &block[i];
    }
  }
  Node* node = free_list_;
  free_list_ = node->next;
  node->time = time;
  node->seq = seq;
  node->next = nullptr;
  node->fn = std::move(fn);
  return node;
}

void TimerWheelScheduler::ReleaseNode(Node* node) {
  node->fn.Reset();
  node->next = free_list_;
  free_list_ = node;
}

int TimerWheelScheduler::LevelFor(uint64_t diff_bits) {
  if (diff_bits == 0) {
    return 0;
  }
  return (63 - __builtin_clzll(diff_bits)) / kLevelBits;
}

void TimerWheelScheduler::AppendToSlot(int level, int slot, Node* node) {
  Slot& sl = slots_[level][slot];
  node->next = nullptr;
  if (sl.tail == nullptr) {
    sl.head = sl.tail = node;
    occupied_[level] |= 1ull << slot;
  } else {
    // Appends arrive in increasing seq (direct pushes follow the global
    // counter; cascades land before any same-window direct push and replay
    // their list in order), so every slot list stays sorted by seq with O(1)
    // appends. FindWheelMin and the level-0 pop rely on this.
    sl.tail->next = node;
    sl.tail = node;
  }
}

void TimerWheelScheduler::PlaceInWheel(Node* node) {
  const uint64_t diff = static_cast<uint64_t>(node->time) ^ static_cast<uint64_t>(pos_);
  if ((diff >> kHorizonBits) != 0) {
    overflow_.push_back(node);
    std::push_heap(overflow_.begin(), overflow_.end(), NodeLater());
    return;
  }
  const int level = LevelFor(diff);
  const int slot =
      static_cast<int>((static_cast<uint64_t>(node->time) >> (kLevelBits * level)) & kSlotMask);
  AppendToSlot(level, slot, node);
}

void TimerWheelScheduler::CascadeSlot(int level, int slot) {
  Slot& sl = slots_[level][slot];
  Node* node = sl.head;
  sl.head = sl.tail = nullptr;
  occupied_[level] &= ~(1ull << slot);
  while (node != nullptr) {
    Node* next = node->next;
    PlaceInWheel(node);
    node = next;
  }
}

bool TimerWheelScheduler::FindWheelMin(SimTime* time, uint64_t* seq, int* level,
                                       int* slot) const {
  for (int l = 0; l < kLevels; ++l) {
    if (occupied_[l] == 0) {
      continue;
    }
    const int s = __builtin_ctzll(occupied_[l]);
    const Node* head = slots_[l][s].head;
    if (l == 0) {
      // A level-0 slot holds exactly one tick; the head is the min seq.
      *time = head->time;
      *seq = head->seq;
    } else {
      // A higher-level slot spans many ticks: scan for the earliest time.
      // Seqs increase along the list, so the first node at the min time wins.
      SimTime best_time = head->time;
      uint64_t best_seq = head->seq;
      for (const Node* n = head->next; n != nullptr; n = n->next) {
        if (n->time < best_time) {
          best_time = n->time;
          best_seq = n->seq;
        }
      }
      *time = best_time;
      *seq = best_seq;
    }
    *level = l;
    *slot = s;
    return true;
  }
  return false;
}

void TimerWheelScheduler::RefillFromOverflow() {
  ASVM_CHECK_MSG(!overflow_.empty(), "refill with empty overflow heap");
  // The wheel and ring are empty: no placement invariants constrain pos_, so
  // jump it to the earliest overflow timer and pull everything now in horizon
  // back into the wheel.
  pos_ = overflow_.front()->time;
  while (!overflow_.empty()) {
    Node* top = overflow_.front();
    const uint64_t diff = static_cast<uint64_t>(top->time) ^ static_cast<uint64_t>(pos_);
    if ((diff >> kHorizonBits) != 0) {
      break;
    }
    std::pop_heap(overflow_.begin(), overflow_.end(), NodeLater());
    overflow_.pop_back();
    PlaceInWheel(top);
  }
}

void TimerWheelScheduler::RingPush(uint64_t seq, EventFn fn) {
  if (ring_count_ == ring_.size()) {
    // Sizes stay powers of two so the index wrap below is a mask, not a
    // divide — this is the hottest instruction of a zero-delay Post chain.
    std::vector<RingEntry> grown(std::max<size_t>(16, ring_.size() * 2));
    for (size_t i = 0; i < ring_count_; ++i) {
      grown[i] = std::move(ring_[(ring_head_ + i) & (ring_.size() - 1)]);
    }
    ring_ = std::move(grown);
    ring_head_ = 0;
  }
  // The mask below requires a non-empty power-of-two ring: size() - 1 on an
  // empty vector underflows to SIZE_MAX. The growth branch above guarantees
  // capacity, but keep the invariant explicit so a refactor that reorders it
  // aborts instead of corrupting memory.
  ASVM_CHECK_MSG(!ring_.empty(), "RingPush on a zero-capacity ring");
  ring_[(ring_head_ + ring_count_) & (ring_.size() - 1)] = RingEntry{seq, std::move(fn)};
  ++ring_count_;
}

TimerWheelScheduler::RingEntry TimerWheelScheduler::RingPop() {
  RingEntry entry = std::move(ring_[ring_head_]);
  ring_head_ = (ring_head_ + 1) & (ring_.size() - 1);
  --ring_count_;
  return entry;
}

void TimerWheelScheduler::Push(SimTime time, EventFn fn) {
  ASVM_CHECK_MSG(time >= pos_, "scheduled behind the wheel position");
  const uint64_t seq = next_seq_++;
  if (time == pos_) {
    // Zero-delay fast lane: all ring entries share the current tick and drain
    // (merged with the wheel by seq) before pos_ ever advances.
    RingPush(seq, std::move(fn));
  } else {
    PlaceInWheel(AcquireNode(time, seq, std::move(fn)));
  }
  ++live_;
  if (cache_valid_ && time < cached_next_) {
    cached_next_ = time;
  }
}

SimTime TimerWheelScheduler::NextTime() {
  ASVM_CHECK_MSG(live_ != 0, "NextTime on empty scheduler");
  if (cache_valid_) {
    return cached_next_;
  }
  SimTime next;
  if (ring_count_ != 0) {
    next = pos_;  // nothing pending can be earlier than the current tick
  } else {
    next = std::numeric_limits<SimTime>::max();
    SimTime wheel_time;
    uint64_t wheel_seq;
    int level;
    int slot;
    if (FindWheelMin(&wheel_time, &wheel_seq, &level, &slot)) {
      next = wheel_time;
    }
    if (!overflow_.empty() && overflow_.front()->time < next) {
      next = overflow_.front()->time;
    }
  }
  cached_next_ = next;
  cache_valid_ = true;
  return next;
}

EventFn TimerWheelScheduler::PopNext(SimTime* time) {
  ASVM_CHECK_MSG(live_ != 0, "PopNext on empty scheduler");
  cache_valid_ = false;
  --live_;

  if (ring_count_ != 0) {
    // Every candidate fires at the current tick; the smallest seq wins. The
    // only wheel slot that can hold the current tick is level 0's pos_ slot,
    // and overflow timers can reach pos_ only at their exact expiry.
    uint64_t best_seq = ring_[ring_head_].seq;
    int source = 0;  // 0 = ring, 1 = wheel head, 2 = overflow top
    const int s0 = static_cast<int>(static_cast<uint64_t>(pos_) & kSlotMask);
    if ((occupied_[0] >> s0) & 1) {
      const Node* wheel_head = slots_[0][s0].head;
      if (wheel_head->time == pos_ && wheel_head->seq < best_seq) {
        best_seq = wheel_head->seq;
        source = 1;
      }
    }
    if (!overflow_.empty() && overflow_.front()->time == pos_ &&
        overflow_.front()->seq < best_seq) {
      source = 2;
    }
    *time = pos_;
    if (source == 0) {
      return RingPop().fn;
    }
    Node* node;
    if (source == 1) {
      Slot& sl = slots_[0][s0];
      node = sl.head;
      sl.head = node->next;
      if (sl.head == nullptr) {
        sl.tail = nullptr;
        occupied_[0] &= ~(1ull << s0);
      }
    } else {
      std::pop_heap(overflow_.begin(), overflow_.end(), NodeLater());
      node = overflow_.back();
      overflow_.pop_back();
    }
    EventFn fn = std::move(node->fn);
    ReleaseNode(node);
    return fn;
  }

  for (;;) {
    SimTime wheel_time;
    uint64_t wheel_seq;
    int level;
    int slot;
    if (!FindWheelMin(&wheel_time, &wheel_seq, &level, &slot)) {
      RefillFromOverflow();
      continue;
    }
    if (!overflow_.empty()) {
      const Node* top = overflow_.front();
      if (top->time < wheel_time || (top->time == wheel_time && top->seq < wheel_seq)) {
        // The overflow timer fires first. pos_ stays put: the wheel's
        // placements are relative to it and remain valid.
        std::pop_heap(overflow_.begin(), overflow_.end(), NodeLater());
        Node* node = overflow_.back();
        overflow_.pop_back();
        *time = node->time;
        EventFn fn = std::move(node->fn);
        ReleaseNode(node);
        return fn;
      }
    }
    if (level == 0) {
      pos_ = wheel_time;
      Slot& sl = slots_[0][slot];
      Node* node = sl.head;
      sl.head = node->next;
      if (sl.head == nullptr) {
        sl.tail = nullptr;
        occupied_[0] &= ~(1ull << slot);
      }
      *time = node->time;
      EventFn fn = std::move(node->fn);
      ReleaseNode(node);
      return fn;
    }
    // Advance to the base of the earliest occupied higher-level slot and
    // flush it down; digits above `level` are untouched, so every other
    // placement in the wheel stays valid.
    const int shift = kLevelBits * level;
    const uint64_t upper = static_cast<uint64_t>(pos_) >> (shift + kLevelBits)
                                                           << (shift + kLevelBits);
    pos_ = static_cast<SimTime>(upper | (static_cast<uint64_t>(slot) << shift));
    CascadeSlot(level, slot);
  }
}

}  // namespace asvm
