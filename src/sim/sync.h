// Cooperative synchronization primitives for simulated tasks: wait groups
// (fork/join), counting semaphores (bounded thread pools), and barriers.
#ifndef SRC_SIM_SYNC_H_
#define SRC_SIM_SYNC_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/log.h"
#include "src/sim/engine.h"

namespace asvm {

// Fork/join: Add() before spawning, Done() at each completion, co_await Wait()
// to join. A WaitGroup may be reused after it reaches zero.
class WaitGroup {
 public:
  explicit WaitGroup(Engine& engine) : engine_(engine) {}

  void Add(int64_t n = 1) { count_ += n; }

  void Done() {
    ASVM_CHECK_MSG(count_ > 0, "WaitGroup::Done without Add");
    if (--count_ == 0) {
      WakeAll();
    }
  }

  struct Awaiter {
    WaitGroup* group;
    bool await_ready() const noexcept { return group->count_ == 0; }
    void await_suspend(std::coroutine_handle<> handle) { group->waiters_.push_back(handle); }
    void await_resume() const noexcept {}
  };
  Awaiter Wait() { return Awaiter{this}; }

  int64_t count() const { return count_; }

 private:
  void WakeAll() {
    std::vector<std::coroutine_handle<>> to_resume;
    to_resume.swap(waiters_);
    for (auto handle : to_resume) {
      engine_.Post([handle]() { handle.resume(); });
    }
  }

  Engine& engine_;
  int64_t count_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Counting semaphore; models bounded resources such as the fixed pool of
// kernel threads XMM's internal copy pagers block on.
class SimSemaphore {
 public:
  SimSemaphore(Engine& engine, int64_t permits) : engine_(engine), permits_(permits) {}

  struct Awaiter {
    SimSemaphore* sem;
    bool await_ready() const noexcept {
      if (sem->permits_ > 0) {
        --sem->permits_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> handle) {
      sem->queue_.push_back(handle);
      ++sem->blocked_;
    }
    void await_resume() const noexcept {}
  };
  Awaiter Acquire() { return Awaiter{this}; }

  // True if a permit was immediately available (and consumed).
  bool TryAcquire() {
    if (permits_ > 0) {
      --permits_;
      return true;
    }
    return false;
  }

  void Release() {
    if (!queue_.empty()) {
      auto handle = queue_.front();
      queue_.pop_front();
      --blocked_;
      // The released permit passes directly to the waiter.
      engine_.Post([handle]() { handle.resume(); });
    } else {
      ++permits_;
    }
  }

  int64_t available() const { return permits_; }
  int64_t blocked() const { return blocked_; }

 private:
  Engine& engine_;
  int64_t permits_;
  int64_t blocked_ = 0;
  std::deque<std::coroutine_handle<>> queue_;
};

// All participants block until `parties` of them have arrived, then all
// resume; reusable across rounds (generation counting).
class SimBarrier {
 public:
  SimBarrier(Engine& engine, int64_t parties) : engine_(engine), parties_(parties) {}

  struct Awaiter {
    SimBarrier* barrier;
    bool await_ready() const noexcept { return barrier->parties_ <= 1; }
    bool await_suspend(std::coroutine_handle<> handle) {
      barrier->waiters_.push_back(handle);
      if (static_cast<int64_t>(barrier->waiters_.size()) == barrier->parties_) {
        std::vector<std::coroutine_handle<>> to_resume;
        to_resume.swap(barrier->waiters_);
        for (auto waiter : to_resume) {
          barrier->engine_.Post([waiter]() { waiter.resume(); });
        }
        // This arrival completed the round; it resumes through the queue too
        // (it is in to_resume), so remain suspended here.
      }
      return true;
    }
    void await_resume() const noexcept {}
  };
  Awaiter Arrive() { return Awaiter{this}; }

 private:
  Engine& engine_;
  int64_t parties_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace asvm

#endif  // SRC_SIM_SYNC_H_
