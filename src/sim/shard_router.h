// Maps nodes to engines. In single-engine mode every node shares the root
// engine and the simulator behaves exactly as it always has; in sharded mode
// each node's events run on its shard's engine (src/sim/sharded_engine.h).
// Components that schedule on behalf of a specific node route through this
// instead of holding a raw Engine reference.
#ifndef SRC_SIM_SHARD_ROUTER_H_
#define SRC_SIM_SHARD_ROUTER_H_

#include "src/common/types.h"
#include "src/sim/engine.h"
#include "src/sim/sharded_engine.h"

namespace asvm {

struct ShardRouter {
  Engine* root = nullptr;            // always set; shard 0's engine when sharded
  ShardedEngine* sharded = nullptr;  // null in single-engine mode

  Engine& engine_for(NodeId node) {
    return sharded != nullptr ? sharded->engine_for_node(node) : *root;
  }
  int shard_of(NodeId node) const {
    return sharded != nullptr ? sharded->shard_of(node) : 0;
  }
  int shard_count() const { return sharded != nullptr ? sharded->shard_count() : 1; }
};

}  // namespace asvm

#endif  // SRC_SIM_SHARD_ROUTER_H_
