// Event schedulers behind the Engine. Two implementations share one contract:
// events fire in ascending (time, seq) order, where seq is the global
// insertion sequence — equal-time events fire in scheduling order. That pair
// ordering IS the simulator's determinism guarantee (DESIGN.md §12): the
// golden timeline digests pin it, and scheduler_equivalence_test runs both
// implementations against each other over randomized workloads.
//
//  * ReferenceScheduler — the original binary heap of events. O(log n) per
//    operation and a heap allocation per oversized closure. Kept alive as the
//    oracle for differential testing and selectable for A/B benchmarking.
//  * TimerWheelScheduler — the production core: a hierarchical timer wheel
//    (8 levels x 64 slots, 1 ns base tick, ~78 h horizon) with per-level
//    occupancy bitmaps, pooled free-listed event nodes, a zero-delay fast
//    lane for Post, and an overflow heap for beyond-horizon timers.
//    O(1) amortized per event and allocation-free once the pool is warm.
#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <string_view>
#include <vector>

#include "src/sim/event_fn.h"
#include "src/sim/time.h"

namespace asvm {

enum class SchedulerKind {
  kTimerWheel,  // production default
  kReference,   // original heap implementation; differential-test oracle
};

const char* ToString(SchedulerKind kind);

// Parses a user-facing scheduler name ("wheel"/"timer-wheel",
// "heap"/"reference"). Returns false — without touching *out — for anything
// else; callers (asvmsim --scheduler=) must treat that as a hard error.
bool SchedulerKindFromName(std::string_view name, SchedulerKind* out);

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Enqueues fn at absolute simulated time `time` (>= the time of the last
  // popped event). The scheduler assigns the insertion sequence number.
  virtual void Push(SimTime time, EventFn fn) = 0;

  virtual bool Empty() const = 0;

  // Time of the earliest pending event. Requires !Empty().
  virtual SimTime NextTime() = 0;

  // Removes and returns the earliest pending event's closure, storing its
  // firing time in *time. Requires !Empty().
  virtual EventFn PopNext(SimTime* time) = 0;

  virtual size_t pending() const = 0;
};

std::unique_ptr<Scheduler> MakeScheduler(SchedulerKind kind);

// --- Reference implementation (the oracle) -----------------------------------

class ReferenceScheduler final : public Scheduler {
 public:
  void Push(SimTime time, EventFn fn) override {
    queue_.push(Event{time, next_seq_++, std::move(fn)});
  }
  bool Empty() const override { return queue_.empty(); }
  SimTime NextTime() override { return queue_.top().time; }
  EventFn PopNext(SimTime* time) override {
    // Move the event out before popping so the caller may push new events
    // while the closure runs.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    *time = event.time;
    return std::move(event.fn);
  }
  size_t pending() const override { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    EventFn fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

// --- Timer wheel -------------------------------------------------------------

class TimerWheelScheduler final : public Scheduler {
 public:
  TimerWheelScheduler();
  ~TimerWheelScheduler() override;

  void Push(SimTime time, EventFn fn) override;
  bool Empty() const override { return live_ == 0; }
  SimTime NextTime() override;
  EventFn PopNext(SimTime* time) override;
  size_t pending() const override { return live_; }

 private:
  static constexpr int kLevelBits = 6;
  static constexpr int kSlots = 1 << kLevelBits;          // 64
  static constexpr uint64_t kSlotMask = kSlots - 1;
  static constexpr int kLevels = 8;
  // Events further than kHorizon ticks from the wheel position go to the
  // overflow heap (2^48 ns ≈ 78 simulated hours — unreachable in practice,
  // but the differential tests exercise it deliberately).
  static constexpr int kHorizonBits = kLevelBits * kLevels;  // 48

  struct Node {
    SimTime time;
    uint64_t seq;
    Node* next;
    EventFn fn;
  };
  struct Slot {
    Node* head = nullptr;
    Node* tail = nullptr;
  };

  Node* AcquireNode(SimTime time, uint64_t seq, EventFn fn);
  void ReleaseNode(Node* node);
  void PlaceInWheel(Node* node);          // computes level/slot relative to pos_
  void AppendToSlot(int level, int slot, Node* node);
  void CascadeSlot(int level, int slot);  // flush one slot down a level
  // Locates the earliest wheel event without mutating anything. Returns false
  // when the wheel itself (not ring/overflow) is empty.
  bool FindWheelMin(SimTime* time, uint64_t* seq, int* level, int* slot) const;
  void RefillFromOverflow();

  static int LevelFor(uint64_t delta_bits);

  SimTime pos_ = 0;       // wheel reference time; <= every pending event time
  uint64_t next_seq_ = 0;
  size_t live_ = 0;

  Slot slots_[kLevels][kSlots];
  uint64_t occupied_[kLevels] = {};  // bit s set <=> slots_[l][s] nonempty

  // Zero-delay fast lane: Post()s (time == pos_) append here and pop in FIFO
  // order, merged against the wheel by seq. A flat ring, no node allocation.
  struct RingEntry {
    uint64_t seq;
    EventFn fn;
  };
  std::vector<RingEntry> ring_;  // circular buffer
  size_t ring_head_ = 0;
  size_t ring_count_ = 0;
  void RingPush(uint64_t seq, EventFn fn);
  RingEntry RingPop();

  // Beyond-horizon events: min-heap on (time, seq).
  struct NodeLater {
    bool operator()(const Node* a, const Node* b) const {
      if (a->time != b->time) {
        return a->time > b->time;
      }
      return a->seq > b->seq;
    }
  };
  std::vector<Node*> overflow_;

  // Node pool: block-allocated, free-listed, never returned to the system
  // until destruction — steady-state scheduling touches no allocator.
  static constexpr size_t kBlockNodes = 256;
  std::vector<std::unique_ptr<Node[]>> blocks_;
  Node* free_list_ = nullptr;

  // Cached NextTime so RunUntil's per-event peek is O(1).
  SimTime cached_next_ = 0;
  bool cache_valid_ = false;
};

}  // namespace asvm

#endif  // SRC_SIM_SCHEDULER_H_
