// EventFn — the engine's event closure type: a move-only callable with a
// small-buffer optimization sized for the simulator's hot producers, so the
// common wakes (coroutine Delay resumes, transport hop timers carrying a full
// Message envelope, disk completions, fault-plan jitter deliveries) store
// their captures inline in the pooled event node and allocate nothing per
// event. Oversized callables fall back to the heap transparently.
//
// std::function is unsuitable here twice over: it requires copyable targets
// (event closures move-capture Message envelopes and coroutine handles), and
// its inline buffer is implementation-defined and too small for a captured
// envelope, forcing a heap allocation on every message hop.
#ifndef SRC_SIM_EVENT_FN_H_
#define SRC_SIM_EVENT_FN_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace asvm {

class EventFn {
 public:
  // Sized so the largest hot closure — a transport send capturing
  // {Transport*, src, dst, wire_bytes, Message} (the Message envelope is 120
  // bytes) — still stores inline. Measured, not guessed; see
  // bench_simcore's schedule_run shape for the regression check.
  static constexpr size_t kInlineBytes = 144;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): callable adaptor
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  // Destroys the held callable (if any), returning to the empty state.
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs the callable from src's storage into dst's storage and
    // destroys the source — one erased call per relocation, so moving an
    // EventFn between the free-lane ring, event nodes, and locals stays cheap.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* storage) { (*std::launder(reinterpret_cast<Fn*>(storage)))(); },
      [](void* src, void* dst) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* storage) noexcept { std::launder(reinterpret_cast<Fn*>(storage))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* storage) { (**std::launder(reinterpret_cast<Fn**>(storage)))(); },
      [](void* src, void* dst) noexcept {
        Fn** from = std::launder(reinterpret_cast<Fn**>(src));
        ::new (dst) Fn*(*from);
        *from = nullptr;
      },
      [](void* storage) noexcept { delete *std::launder(reinterpret_cast<Fn**>(storage)); },
  };

  void MoveFrom(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

}  // namespace asvm

#endif  // SRC_SIM_EVENT_FN_H_
