// Simulated time. All latencies in the system are expressed in simulated
// nanoseconds; the discrete-event engine advances this clock, never the host's.
#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace asvm {

using SimTime = int64_t;      // absolute simulated time, ns since start of run
using SimDuration = int64_t;  // simulated interval, ns

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

inline double ToMilliseconds(SimDuration d) { return static_cast<double>(d) / kMillisecond; }
inline double ToSeconds(SimDuration d) { return static_cast<double>(d) / kSecond; }

}  // namespace asvm

#endif  // SRC_SIM_TIME_H_
