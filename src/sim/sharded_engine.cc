#include "src/sim/sharded_engine.h"

#include <algorithm>

#include "src/common/log.h"

namespace asvm {

ShardedEngine::ShardedEngine(int shard_count, int node_count, int nodes_per_block,
                             SchedulerKind scheduler)
    : nodes_per_block_(nodes_per_block) {
  ASVM_CHECK_MSG(shard_count >= 1, "shard count must be positive");
  ASVM_CHECK_MSG(node_count >= 1 && nodes_per_block >= 1, "bad shard partition");
  block_count_ = (node_count + nodes_per_block - 1) / nodes_per_block;
  ASVM_CHECK_MSG(shard_count <= block_count_,
                 "more shards than io-group blocks; lower --shards or the "
                 "io-group size");
  engines_.reserve(shard_count);
  for (int i = 0; i < shard_count; ++i) {
    engines_.push_back(std::make_unique<Engine>(scheduler));
  }
  for (int i = 1; i < shard_count; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

ShardedEngine::~ShardedEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ShardedEngine::WorkerLoop(int shard_index) {
  uint64_t seen_generation = 0;
  for (;;) {
    SimTime deadline;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&]() { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
      deadline = window_deadline_;
    }
    engines_[shard_index]->RunUntil(deadline);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--running_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

void ShardedEngine::RunWindow(SimTime deadline) {
  if (shard_count() == 1) {
    engines_[0]->RunUntil(deadline);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    window_deadline_ = deadline;
    running_ = shard_count() - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  engines_[0]->RunUntil(deadline);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&]() { return running_ == 0; });
}

bool ShardedEngine::AllEmpty() const {
  for (const auto& engine : engines_) {
    if (!engine->empty()) {
      return false;
    }
  }
  return true;
}

SimTime ShardedEngine::MinNextTime() {
  SimTime next = kNoEvent;
  for (auto& engine : engines_) {
    if (!engine->empty()) {
      next = std::min(next, engine->NextEventTime());
    }
  }
  return next;
}

SimTime ShardedEngine::MaxNow() const {
  SimTime now = 0;
  for (const auto& engine : engines_) {
    now = std::max(now, engine->Now());
  }
  return now;
}

uint64_t ShardedEngine::TotalExecuted() const {
  uint64_t total = 0;
  for (const auto& engine : engines_) {
    total += engine->executed_events();
  }
  return total;
}

void ShardedEngine::set_event_limit(uint64_t per_shard_limit) {
  for (auto& engine : engines_) {
    engine->set_event_limit(per_shard_limit);
  }
}

}  // namespace asvm
