// Conservative-lookahead parallel simulation: N independent Engines, one per
// shard of the node space, driven in lockstep windows by a persistent worker
// pool. The ShardedEngine owns only the engines and the thread barrier; the
// window/lookahead policy (how far each window may run, how cross-shard
// messages are exchanged at the barrier) lives with the caller — for the DSM
// cluster that is Cluster::DrainSharded (DESIGN.md §13).
//
// Threading contract: shard engines run concurrently ONLY inside RunWindow().
// Between windows (and before/after a run) all engines are quiescent and the
// coordinating thread may touch any of them — that is when cross-shard
// deliveries are injected with Engine::ScheduleAt. The worker handoff uses a
// mutex + condition variables, which gives the happens-before edges TSan
// needs and that the deterministic replay relies on.
#ifndef SRC_SIM_SHARDED_ENGINE_H_
#define SRC_SIM_SHARDED_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/types.h"
#include "src/sim/engine.h"

namespace asvm {

class ShardedEngine {
 public:
  // Partitions `node_count` nodes into `shard_count` contiguous runs of
  // `nodes_per_block`-aligned blocks (so co-located resources — e.g. the
  // per-io-group paging disks — never straddle a shard). Requires
  // 1 <= shard_count <= ceil(node_count / nodes_per_block).
  ShardedEngine(int shard_count, int node_count, int nodes_per_block,
                SchedulerKind scheduler);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  int shard_count() const { return static_cast<int>(engines_.size()); }
  Engine& shard(int i) { return *engines_[i]; }

  int shard_of(NodeId node) const {
    const int block = static_cast<int>(node) / nodes_per_block_;
    return block * shard_count() / block_count_;
  }
  Engine& engine_for_node(NodeId node) { return *engines_[shard_of(node)]; }

  // Runs every shard engine up to and including `deadline`, in parallel.
  // Shard 0 runs on the calling thread; the rest on the persistent workers.
  // Returns once all shards have drained their window.
  void RunWindow(SimTime deadline);

  // No pending event anywhere. Valid only between windows.
  bool AllEmpty() const;

  // Earliest pending event time across all shards, or kNoEvent when AllEmpty.
  static constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::max();
  SimTime MinNextTime();

  // Latest shard-local clock; the machine-visible Now() of a sharded run.
  SimTime MaxNow() const;

  uint64_t TotalExecuted() const;

  void set_event_limit(uint64_t per_shard_limit);

 private:
  void WorkerLoop(int shard_index);

  const int nodes_per_block_;
  int block_count_;
  std::vector<std::unique_ptr<Engine>> engines_;

  // Window barrier state, guarded by mu_.
  std::mutex mu_;
  std::condition_variable work_cv_;   // coordinator -> workers: new window
  std::condition_variable done_cv_;   // workers -> coordinator: window done
  uint64_t generation_ = 0;           // bumps once per window
  int running_ = 0;                   // workers still inside the window
  SimTime window_deadline_ = 0;
  bool shutdown_ = false;

  std::vector<std::thread> workers_;  // shards 1..N-1
};

}  // namespace asvm

#endif  // SRC_SIM_SHARDED_ENGINE_H_
