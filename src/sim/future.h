// Single-value future/promise pair for cross-component completion signalling
// inside the simulation (page-fault completions, protocol replies).
//
// Completion resumes waiters through the engine's event queue (not inline), so
// deep protocol chains cannot overflow the host stack and event ordering stays
// deterministic.
#ifndef SRC_SIM_FUTURE_H_
#define SRC_SIM_FUTURE_H_

#include <coroutine>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/log.h"
#include "src/sim/engine.h"

namespace asvm {

namespace sim_detail {

template <typename T>
struct FutureState {
  Engine* engine = nullptr;
  std::optional<T> value;
  std::vector<std::coroutine_handle<>> waiters;
};

}  // namespace sim_detail

template <typename T>
class Future;

template <typename T>
class Promise {
 public:
  explicit Promise(Engine& engine)
      : state_(std::make_shared<sim_detail::FutureState<T>>()) {
    state_->engine = &engine;
  }

  Future<T> GetFuture() const;

  // Fulfils the future. Must be called at most once.
  void Set(T value) const {
    ASVM_CHECK_MSG(!state_->value.has_value(), "promise set twice");
    state_->value = std::move(value);
    auto state = state_;
    if (!state->waiters.empty()) {
      state->engine->Post([state]() {
        std::vector<std::coroutine_handle<>> to_resume;
        to_resume.swap(state->waiters);
        for (auto handle : to_resume) {
          handle.resume();
        }
      });
    }
  }

  bool is_set() const { return state_->value.has_value(); }

 private:
  std::shared_ptr<sim_detail::FutureState<T>> state_;
};

template <typename T>
class Future {
 public:
  Future() = default;
  explicit Future(std::shared_ptr<sim_detail::FutureState<T>> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  bool ready() const { return state_ && state_->value.has_value(); }

  // Peek at the value once ready; only valid when ready().
  const T& value() const {
    ASVM_CHECK(ready());
    return *state_->value;
  }

  struct Awaiter {
    std::shared_ptr<sim_detail::FutureState<T>> state;
    bool await_ready() const noexcept { return state->value.has_value(); }
    void await_suspend(std::coroutine_handle<> handle) { state->waiters.push_back(handle); }
    T await_resume() const { return *state->value; }
  };
  Awaiter operator co_await() const {
    ASVM_CHECK_MSG(valid(), "awaiting invalid future");
    return Awaiter{state_};
  }

 private:
  std::shared_ptr<sim_detail::FutureState<T>> state_;
};

template <typename T>
Future<T> Promise<T>::GetFuture() const {
  return Future<T>(state_);
}

}  // namespace asvm

#endif  // SRC_SIM_FUTURE_H_
