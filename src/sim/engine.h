// Deterministic discrete-event simulation engine. Single-threaded: events fire
// in (time, insertion-sequence) order, so runs with equal seeds are bit-stable.
//
// The ordering contract lives in the scheduler behind the engine
// (src/sim/scheduler.h). The default is the pooled timer-wheel core;
// SchedulerKind::kReference selects the original heap implementation, kept as
// the oracle for differential testing (tests/scheduler_equivalence_test.cc).
#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/log.h"
#include "src/sim/event_fn.h"
#include "src/sim/scheduler.h"
#include "src/sim/time.h"

namespace asvm {

class Engine {
 public:
  explicit Engine(SchedulerKind scheduler = SchedulerKind::kTimerWheel)
      : scheduler_kind_(scheduler), queue_(MakeScheduler(scheduler)) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime Now() const { return now_; }
  SchedulerKind scheduler_kind() const { return scheduler_kind_; }

  // Schedules fn to run at Now() + delay (delay >= 0). Events with equal time
  // fire in scheduling order.
  void Schedule(SimDuration delay, EventFn fn);

  // Schedules fn at an absolute time (time >= Now()). Used by the sharded
  // barrier to inject cross-shard deliveries at their precomputed arrival
  // time; equal-time events still fire in scheduling order.
  void ScheduleAt(SimTime time, EventFn fn);

  // Schedules fn at the current time, after all currently-runnable events that
  // were scheduled before it. Takes the scheduler's zero-delay fast lane.
  void Post(EventFn fn) { Schedule(0, std::move(fn)); }

  // Runs until the event queue drains. Returns the number of events executed.
  uint64_t Run();

  // Runs until the queue drains or simulated time would pass deadline.
  // Events at exactly deadline still run. Returns true if the queue drained.
  bool RunUntil(SimTime deadline);

  // Saturating: a duration that would overflow SimTime clamps the deadline to
  // the maximum representable time instead of wrapping negative (mirrors the
  // RetryDelay overflow fix).
  bool RunFor(SimDuration duration) {
    ASVM_CHECK_MSG(duration >= 0, "negative RunFor duration");
    const SimTime limit = std::numeric_limits<SimTime>::max();
    return RunUntil(duration > limit - now_ ? limit : now_ + duration);
  }

  // Moves the clock forward without running anything. A drained engine's
  // clock stops at its own last event, so after a sharded drain the shard
  // clocks diverge; the coordinator re-synchronizes them to the global clock
  // the single-threaded timeline would show (Cluster::DrainSharded). Never
  // jumps over a pending event.
  void AdvanceTo(SimTime time) {
    ASVM_CHECK_MSG(time >= now_, "AdvanceTo moving backwards");
    ASVM_CHECK_MSG(queue_->Empty() || queue_->NextTime() >= time,
                   "AdvanceTo would skip pending events");
    now_ = time;
  }

  uint64_t executed_events() const { return executed_; }
  bool empty() const { return queue_->Empty(); }

  // Time of the earliest pending event. Requires !empty(). Used by the sharded
  // barrier to compute the conservative window bound.
  SimTime NextEventTime() { return queue_->NextTime(); }

  // Safety valve for tests: aborts the run if more events than this execute.
  void set_event_limit(uint64_t limit) { event_limit_ = limit; }

  // --- Stall watchdog --------------------------------------------------------
  // Components that can hold blocked coroutines (pending protocol ops,
  // in-flight page faults) register a probe. When a handler is installed and
  // the event queue drains while some probe still reports blocked work, the
  // simulation has stalled: simulated time can never advance again, yet work
  // remains incomplete. The handler receives a diagnostic report assembled
  // from every blocked probe, so the run ends with a diagnosis instead of a
  // silently missing result. With no handler installed the checks are skipped
  // entirely (zero behavioural and timeline change).
  using StallProbe = std::function<bool(std::string& report)>;

  // Returns an id for RemoveStallProbe. Probes fire in registration order.
  int AddStallProbe(StallProbe probe);
  void RemoveStallProbe(int id);
  void SetStallHandler(std::function<void(const std::string&)> handler) {
    stall_handler_ = std::move(handler);
  }
  uint64_t stalls_detected() const { return stalls_detected_; }

  // Sharded runs drain each shard's queue many times per window while blocked
  // work legitimately waits on cross-shard messages still in the mailbox.
  // Deferring suppresses the automatic drain-time checks; the coordinator
  // calls ForceStallCheck() once at the final global drain instead.
  void set_defer_stall_checks(bool defer) { defer_stall_checks_ = defer; }
  void ForceStallCheck() { CheckStall(); }

 private:
  void RunOne();
  void CheckStall();

  SimTime now_ = 0;
  uint64_t executed_ = 0;
  uint64_t event_limit_ = 0;  // 0 = unlimited
  bool defer_stall_checks_ = false;
  SchedulerKind scheduler_kind_;
  std::unique_ptr<Scheduler> queue_;
  std::vector<std::pair<int, StallProbe>> stall_probes_;
  int next_stall_probe_id_ = 0;
  std::function<void(const std::string&)> stall_handler_;
  uint64_t stalls_detected_ = 0;
};

}  // namespace asvm

#endif  // SRC_SIM_ENGINE_H_
