#include "src/mesh/network.h"

#include <algorithm>
#include <cmath>

namespace asvm {

namespace {

SimDuration SerializationTime(size_t bytes, double bandwidth_bytes_per_ns) {
  return static_cast<SimDuration>(
      std::llround(static_cast<double>(bytes) / bandwidth_bytes_per_ns));
}

}  // namespace

SimTime Network::Admit(SimTime now, NodeId src, NodeId dst, size_t bytes) {
  ASVM_CHECK_MSG(topology_.Contains(src) && topology_.Contains(dst),
                 "Network::Send node out of range: src " + std::to_string(src) + ", dst " +
                     std::to_string(dst) + " (mesh has " +
                     std::to_string(topology_.node_count()) + " nodes)");
  ASVM_CHECK_MSG(src != dst, "Network::Send used for local delivery: src == dst == " +
                                 std::to_string(src) +
                                 "; intra-node messages must bypass the mesh "
                                 "(Transport handles them without a Network::Send)");

  if (fault_ != nullptr && !fault_->Delivers(src, dst, now)) {
    if (trace_ != nullptr && trace_->armed()) {
      TraceEvent e;
      e.time = now;
      e.node = src;
      e.protocol = TraceProtocol::kMesh;
      e.kind = TraceKind::kMsgDropped;
      e.peer = dst;
      e.aux = static_cast<int64_t>(bytes);
      trace_->Emit(e);
    }
    return -1;  // black hole: a removed node's traffic silently vanishes (counted)
  }

  double bandwidth = params_.bandwidth_bytes_per_ns;
  SimDuration jitter = 0;
  if (fault_ != nullptr) {
    bandwidth *= fault_->LinkBandwidthFactor(src, dst);
    jitter = fault_->NextJitter();
  }
  const SimDuration ser = SerializationTime(bytes, bandwidth);

  // Injection channel: the message occupies the source's outbound link for its
  // serialization time starting when the link is free.
  const SimTime tx_start = std::max(now, tx_busy_until_[src]) + params_.route_setup_ns;
  tx_busy_until_[src] = tx_start + ser;

  // Wormhole pipeline: the head races ahead per-hop; the tail trails by the
  // serialization time.
  const SimTime head_arrival = tx_start + params_.per_hop_ns * topology_.Hops(src, dst);

  // Ejection channel: delivery completes when the tail has drained through the
  // destination's inbound link. Fault jitter extends the drain, so jittered
  // delivery stays FIFO per destination (rx_busy_until_ remains monotone).
  const SimTime rx_done = std::max(head_arrival, rx_busy_until_[dst]) + ser + jitter;
  rx_busy_until_[dst] = rx_done;

  if (stats_ != nullptr) {
    stats_->Add("mesh.messages");
    stats_->Add("mesh.bytes", static_cast<int64_t>(bytes));
  }
  if (jitter != 0 && trace_ != nullptr && trace_->armed()) {
    TraceEvent e;
    e.time = now;
    e.node = dst;
    e.protocol = TraceProtocol::kMesh;
    e.kind = TraceKind::kJitter;
    e.peer = src;
    e.aux = jitter;
    trace_->Emit(e);
  }

  return rx_done;
}

void Network::Send(NodeId src, NodeId dst, size_t bytes, EventFn deliver) {
  const SimTime now = engine_.Now();
  const SimTime rx_done = Admit(now, src, dst, bytes);
  if (rx_done < 0) {
    return;
  }
  engine_.Schedule(rx_done - now, std::move(deliver));
}

SimTime Network::ProcessRecord(const MeshRecord& record) {
  return Admit(record.send_time, record.src, record.dst, record.bytes);
}

SimDuration Network::UncontendedLatency(NodeId src, NodeId dst, size_t bytes) const {
  const SimDuration ser = SerializationTime(bytes, params_.bandwidth_bytes_per_ns);
  return params_.route_setup_ns + params_.per_hop_ns * topology_.Hops(src, dst) + ser;
}

}  // namespace asvm
