#include "src/mesh/fault_plan.h"

#include "src/common/log.h"

namespace asvm {

bool FaultProfileFromName(const std::string& name, uint64_t seed, int node_count,
                          FaultPlanParams* out) {
  FaultPlanParams params;
  params.seed = seed;
  if (name == "none") {
    *out = params;
    return true;
  }
  if (name == "jitter") {
    // Bounded per-message delivery jitter, large against software costs
    // (tens of µs) so message orderings actually shift.
    params.max_jitter_ns = 150 * kMicrosecond;
    *out = params;
    return true;
  }
  if (name == "slow-node") {
    // One node's protocol stack runs 8x slower — the "slow participant" the
    // paper's distributed manager must tolerate without collapsing.
    params.slow_nodes.push_back({static_cast<NodeId>(node_count / 2), 8.0});
    *out = params;
    return true;
  }
  if (name == "kill-manager" || name == "rolling-restart") {
    // Remove node 0 — where the fault-sweep workload homes its region, so the
    // removal takes out the ASVM terminal / XMM centralized manager — after
    // the healthy measurement phase. rolling-restart brings the node back
    // with cold caches for the post-restore phase.
    NodeRemoval removal;
    removal.node = 0;
    removal.at = 200 * kMillisecond;
    if (name == "rolling-restart") {
      removal.restore_at = 400 * kMillisecond;
    }
    params.removals.push_back(removal);
    *out = params;
    return true;
  }
  if (name == "kill-owner") {
    // Remove the fault-sweep writer (node 3): a page owner that is neither
    // the home nor the manager. Survivors must reclaim its pages through the
    // lease state machine and reconstruct from surviving read copies — no
    // promotion at all.
    params.removals.push_back({static_cast<NodeId>(node_count > 3 ? 3 : node_count - 1),
                               200 * kMillisecond, 0});
    *out = params;
    return true;
  }
  if (name == "kill-many") {
    // Two nodes die in the same instant: the manager (node 0) and a bystander
    // reader (node 2). One promotion, plus every agent's pending ops against
    // either victim must fail over.
    params.removals.push_back({0, 200 * kMillisecond, 0});
    if (node_count > 2) {
      params.removals.push_back({2, 200 * kMillisecond, 0});
    }
    *out = params;
    return true;
  }
  if (name == "cascade") {
    // Cascade failover: the manager dies, its ring successor (node 1) is
    // promoted, and then that freshly promoted backup dies too — the ring
    // rule must re-run and the second promotion must not trust any state the
    // ex-backup streamed while it was primary.
    params.removals.push_back({0, 200 * kMillisecond, 0});
    if (node_count > 1) {
      params.removals.push_back({1, 260 * kMillisecond, 0});
    }
    *out = params;
    return true;
  }
  if (name == "degraded-links") {
    // Every link touching node 0 runs at quarter bandwidth, plus one
    // seed-chosen additional link at half bandwidth.
    params.degraded_links.push_back({0, kInvalidNode, 0.25});
    if (node_count > 2) {
      Rng rng(seed);
      const NodeId a = static_cast<NodeId>(1 + rng.NextBelow(node_count - 1));
      NodeId b = static_cast<NodeId>(1 + rng.NextBelow(node_count - 1));
      if (b == a) {
        b = (a + 1 < node_count) ? a + 1 : 1;
      }
      params.degraded_links.push_back({a, b, 0.5});
    }
    *out = params;
    return true;
  }
  return false;
}

FaultPlan::FaultPlan(Engine& engine, FaultPlanParams params, int node_count,
                     StatsRegistry* stats)
    : engine_(engine),
      params_(std::move(params)),
      node_count_(node_count),
      stats_(stats),
      rng_(params_.seed) {
  for (const LinkDegradation& d : params_.degraded_links) {
    ASVM_CHECK_MSG(d.bandwidth_factor > 0.0, "link bandwidth factor must be positive");
  }
  for (const NodeSlowdown& s : params_.slow_nodes) {
    ASVM_CHECK_MSG(s.cost_factor > 0.0, "node cost factor must be positive");
  }
}

bool FaultPlan::NodeAlive(NodeId node) const { return NodeAlive(node, engine_.Now()); }

bool FaultPlan::NodeAlive(NodeId node, SimTime now) const {
  return RemovedSince(node, now) < 0;
}

SimTime FaultPlan::RemovedSince(NodeId node, SimTime now) const {
  for (const NodeRemoval& r : params_.removals) {
    if (r.node == node && now >= r.at && (r.restore_at == 0 || now < r.restore_at)) {
      return r.at;
    }
  }
  return -1;
}

bool FaultPlan::HasRestores() const {
  for (const NodeRemoval& r : params_.removals) {
    if (r.restore_at != 0) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::Delivers(NodeId src, NodeId dst) {
  return Delivers(src, dst, engine_.Now());
}

bool FaultPlan::Delivers(NodeId src, NodeId dst, SimTime now) {
  const bool src_alive = NodeAlive(src, now);
  const bool dst_alive = NodeAlive(dst, now);
  if (src_alive && dst_alive) {
    return true;
  }
  if (stats_ != nullptr) {
    // Aggregate plus per-removed-endpoint attribution, so a multi-removal
    // plan shows which black hole ate the traffic.
    stats_->Add("fault.messages_dropped");
    if (!src_alive) {
      stats_->Add("fault.messages_dropped.node" + std::to_string(src));
    }
    if (!dst_alive && dst != src) {
      stats_->Add("fault.messages_dropped.node" + std::to_string(dst));
    }
  }
  return false;
}

SimDuration FaultPlan::NextJitter() {
  if (params_.max_jitter_ns <= 0) {
    return 0;
  }
  const SimDuration jitter =
      static_cast<SimDuration>(rng_.NextBelow(static_cast<uint64_t>(params_.max_jitter_ns) + 1));
  if (stats_ != nullptr) {
    stats_->Add("fault.jitter_messages");
    stats_->Add("fault.jitter_ns", jitter);
  }
  return jitter;
}

double FaultPlan::LinkBandwidthFactor(NodeId src, NodeId dst) {
  double factor = 1.0;
  for (const LinkDegradation& d : params_.degraded_links) {
    const bool touches_wildcard = d.b == kInvalidNode && (src == d.a || dst == d.a);
    const bool matches_pair =
        d.b != kInvalidNode && ((src == d.a && dst == d.b) || (src == d.b && dst == d.a));
    if (touches_wildcard || matches_pair) {
      factor *= d.bandwidth_factor;
    }
  }
  if (factor != 1.0 && stats_ != nullptr) {
    stats_->Add("fault.degraded_messages");
  }
  return factor;
}

double FaultPlan::NodeCostFactor(NodeId node) const {
  double factor = 1.0;
  for (const NodeSlowdown& s : params_.slow_nodes) {
    if (s.node == node) {
      factor *= s.cost_factor;
    }
  }
  return factor;
}

std::string FaultPlan::Describe() const {
  std::string out = "  fault plan (seed " + std::to_string(params_.seed) + "):\n";
  if (params_.max_jitter_ns > 0) {
    out += "    delivery jitter: uniform [0, " + std::to_string(params_.max_jitter_ns) +
           " ns] per message\n";
  }
  for (const LinkDegradation& d : params_.degraded_links) {
    if (d.b == kInvalidNode) {
      out += "    links of node " + std::to_string(d.a) + ": bandwidth x" +
             std::to_string(d.bandwidth_factor) + "\n";
    } else {
      out += "    link " + std::to_string(d.a) + "<->" + std::to_string(d.b) + ": bandwidth x" +
             std::to_string(d.bandwidth_factor) + "\n";
    }
  }
  for (const NodeSlowdown& s : params_.slow_nodes) {
    out += "    node " + std::to_string(s.node) + ": software costs x" +
           std::to_string(s.cost_factor) + "\n";
  }
  for (const NodeRemoval& r : params_.removals) {
    out += "    node " + std::to_string(r.node) + ": removed at t=" + std::to_string(r.at) +
           " ns";
    if (r.restore_at != 0) {
      out += ", restored at t=" + std::to_string(r.restore_at) + " ns";
    }
    out += "\n";
  }
  if (params_.Empty()) {
    out += "    (empty)\n";
  }
  return out;
}

}  // namespace asvm
