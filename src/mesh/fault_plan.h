// Seeded, schedule-driven fault model for the mesh fabric and the transport
// software layer. A FaultPlan is fully deterministic given its seed: the same
// plan over the same workload replays the same degraded timeline bit for bit,
// which is what lets fault scenarios carry golden digests just like the
// healthy runs.
//
// Four fault classes:
//  - per-message delivery jitter, uniform in [0, max_jitter_ns];
//  - link degradation: a bandwidth factor applied to chosen links (or to all
//    links touching one node);
//  - node slowdown: a multiplier on a node's software send/recv costs;
//  - node removal: from a chosen simulated time on, the node's fabric
//    interface is severed — every message to or from it is dropped. Local
//    (intra-node) delivery never touches the fabric and keeps working.
//
// Delay-only plans (jitter / degradation / slowdown) never lose messages, so
// a correct protocol still terminates with Status::kOk — retries may fire and
// produce duplicates, which the hardened ProtocolAgent suppresses. Message
// loss happens only under removal, where pending ops resolve kTimeout after
// bounded retries or, with retries disabled, the stall watchdog reports the
// orphaned work.
#ifndef SRC_MESH_FAULT_PLAN_H_
#define SRC_MESH_FAULT_PLAN_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/sim/engine.h"

namespace asvm {

struct LinkDegradation {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;        // kInvalidNode: every link touching `a`
  double bandwidth_factor = 1.0;  // multiplies the link's effective bandwidth
};

struct NodeSlowdown {
  NodeId node = kInvalidNode;
  double cost_factor = 1.0;  // multiplies software send/recv costs
};

struct NodeRemoval {
  NodeId node = kInvalidNode;
  SimTime at = 0;  // the node's fabric interface dies at this simulated time
  // 0: the removal is permanent. Otherwise the node rejoins (with cold
  // caches — see DsmSystem::ColdRestart) at this time; rolling-restart
  // regimes schedule one removal window per restarted node.
  SimTime restore_at = 0;
};

struct FaultPlanParams {
  uint64_t seed = 1;
  SimDuration max_jitter_ns = 0;  // 0 disables jitter
  std::vector<LinkDegradation> degraded_links;
  std::vector<NodeSlowdown> slow_nodes;
  std::vector<NodeRemoval> removals;

  bool Empty() const {
    return max_jitter_ns <= 0 && degraded_links.empty() && slow_nodes.empty() &&
           removals.empty();
  }
};

// Builds a canned profile: "none" (empty plan), "jitter", "slow-node",
// "degraded-links", "kill-manager" (permanently removes node 0 — the
// fault-sweep region's home/manager — mid-run), "rolling-restart" (same
// removal, but the node rejoins with cold caches later), "kill-owner"
// (removes node 3 — the fault-sweep writer, a page owner that is not the
// manager), "kill-many" (removes the manager and a bystander reader in the
// same instant), and "cascade" (removes the manager, then the freshly
// promoted backup 60 ms later, so the ring rule must re-run). Returns false
// for unknown names.
bool FaultProfileFromName(const std::string& name, uint64_t seed, int node_count,
                          FaultPlanParams* out);

class FaultPlan {
 public:
  FaultPlan(Engine& engine, FaultPlanParams params, int node_count, StatsRegistry* stats);

  const FaultPlanParams& params() const { return params_; }

  // --- Queried by Network::Send per message ---------------------------------
  // False: the message is black-holed (src or dst removed by now). Counted.
  // The explicit-time overload serves the sharded barrier, which evaluates
  // records at their recorded send time rather than at the plan engine's Now.
  bool Delivers(NodeId src, NodeId dst);
  bool Delivers(NodeId src, NodeId dst, SimTime now);
  // Next jitter draw in [0, max_jitter_ns]; 0 when jitter is disabled.
  SimDuration NextJitter();
  // Product of matching degradation factors for this link (1.0 = healthy).
  double LinkBandwidthFactor(NodeId src, NodeId dst);

  // --- Queried by Transport per message -------------------------------------
  // Product of matching slowdown factors for this node's software costs.
  double NodeCostFactor(NodeId node) const;
  bool NodeAlive(NodeId node) const;
  bool NodeAlive(NodeId node, SimTime now) const;
  // Removal time of the window covering `now`, or -1 if the node is alive at
  // `now`. Lease arithmetic measures reclaim eligibility from this instant.
  SimTime RemovedSince(NodeId node, SimTime now) const;
  // True when any removal schedules a rejoin (drives ColdRestart wiring).
  bool HasRestores() const;

  // Human-readable plan summary for --fault-report.
  std::string Describe() const;

 private:
  Engine& engine_;
  FaultPlanParams params_;
  int node_count_;
  StatsRegistry* stats_;
  Rng rng_;
};

}  // namespace asvm

#endif  // SRC_MESH_FAULT_PLAN_H_
