// 2D mesh topology with XY dimension-ordered (wormhole) routing, as on the
// Intel Paragon. Only the geometry lives here; timing is in Network.
#ifndef SRC_MESH_TOPOLOGY_H_
#define SRC_MESH_TOPOLOGY_H_

#include <cstdlib>

#include "src/common/log.h"
#include "src/common/types.h"

namespace asvm {

class Topology {
 public:
  // Builds a width x height grid. Node ids are row-major: id = y * width + x.
  Topology(int width, int height) : width_(width), height_(height) {
    ASVM_CHECK(width > 0 && height > 0);
  }

  // Builds the most-square grid that holds `nodes` nodes (last row may be
  // partial); matches how Paragon partitions were allocated.
  static Topology ForNodeCount(int nodes);

  int width() const { return width_; }
  int height() const { return height_; }
  int node_count() const { return node_count_ >= 0 ? node_count_ : width_ * height_; }

  bool Contains(NodeId node) const { return node >= 0 && node < node_count(); }

  int XOf(NodeId node) const { return static_cast<int>(node) % width_; }
  int YOf(NodeId node) const { return static_cast<int>(node) / width_; }

  // Hop count under XY routing: route fully in X, then in Y.
  int Hops(NodeId a, NodeId b) const {
    return std::abs(XOf(a) - XOf(b)) + std::abs(YOf(a) - YOf(b));
  }

 private:
  Topology(int width, int height, int node_count)
      : width_(width), height_(height), node_count_(node_count) {}

  int width_;
  int height_;
  int node_count_ = -1;  // -1: full grid
};

}  // namespace asvm

#endif  // SRC_MESH_TOPOLOGY_H_
