#include "src/mesh/topology.h"

#include <cmath>

namespace asvm {

Topology Topology::ForNodeCount(int nodes) {
  ASVM_CHECK(nodes > 0);
  int width = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(nodes))));
  int height = (nodes + width - 1) / width;
  return Topology(width, height, nodes);
}

}  // namespace asvm
