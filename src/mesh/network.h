// Timing model of the mesh fabric. Wormhole-pipelined: an uncontended message
// of S bytes over h hops arrives after route_setup + h*per_hop + S/bandwidth.
// Contention is modeled at the endpoints — each node has one injection and one
// ejection channel that serialize traffic at link bandwidth — which captures
// the effects the paper's evaluation depends on (fan-in saturation at a
// centralized manager or file pager, fan-out serialization at a page owner)
// without simulating per-link flit occupancy.
#ifndef SRC_MESH_NETWORK_H_
#define SRC_MESH_NETWORK_H_

#include <functional>
#include <vector>

#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/common/types.h"
#include "src/mesh/fault_plan.h"
#include "src/mesh/topology.h"
#include "src/sim/engine.h"

namespace asvm {

struct MeshParams {
  // Paragon: 200 MB/s raw per direction; wormhole per-hop delay ~40 ns;
  // a small fixed route-setup/packetization cost per message.
  double bandwidth_bytes_per_ns = 0.2;           // 200 MB/s = 0.2 bytes/ns
  SimDuration per_hop_ns = 40;                   // router delay per hop
  SimDuration route_setup_ns = 500;              // packetize + inject
};

// A cross-node message captured during a window instead of being pushed
// through the fabric immediately. The transport stamps the send-side software
// completion time (send_time); all fabric math — endpoint busy channels,
// jitter, stats — is deferred to the inter-window barrier, which replays
// records in global (send_time, source node, per-source emission order) order
// so the tx/rx busy-channel updates happen in one canonical sequence at every
// shard count, the armed single engine included (DESIGN.md §13).
struct MeshRecord {
  SimTime send_time = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  size_t bytes = 0;
  EventFn deliver;
};

class Network {
 public:
  Network(Engine& engine, Topology topology, MeshParams params, StatsRegistry* stats)
      : engine_(engine),
        topology_(topology),
        params_(params),
        stats_(stats),
        tx_busy_until_(topology.node_count(), 0),
        rx_busy_until_(topology.node_count(), 0) {}

  const Topology& topology() const { return topology_; }

  // Simulates transmission of `bytes` from src to dst and runs `deliver` at
  // the simulated delivery time. src == dst is not a network operation and is
  // rejected; callers handle local delivery themselves. `deliver` is an
  // EventFn so a captured Message envelope rides inline through the
  // scheduler's pooled event nodes — no per-hop allocation.
  void Send(NodeId src, NodeId dst, size_t bytes, EventFn deliver);

  // Sharded barrier path: runs the same admission math as Send but at the
  // record's stamped send time. Returns the delivery completion time (the
  // caller injects record.deliver into the destination shard at that time),
  // or -1 when a fault plan drops the message.
  SimTime ProcessRecord(const MeshRecord& record);

  // Modeled one-way latency of an uncontended message (for tests/diagnostics).
  SimDuration UncontendedLatency(NodeId src, NodeId dst, size_t bytes) const;

  // Attaches a fault plan (not owned; must outlive the network). Messages then
  // pay jitter and degraded-link serialization, and traffic touching removed
  // nodes is dropped. Never attached in healthy runs, so the default path is
  // bit-identical to the unfaulted simulator.
  void set_fault_plan(FaultPlan* plan) { fault_ = plan; }

  // Attaches the machine-wide trace sink (not owned): fabric-level fault
  // effects (dropped messages, injected jitter) become visible trace events.
  void set_trace(TraceSink* sink) { trace_ = sink; }

  const MeshParams& params() const { return params_; }

 private:
  // Shared admission core: fabric timing evaluated at `now`. Returns the
  // delivery completion time, or -1 when the fault plan drops the message.
  SimTime Admit(SimTime now, NodeId src, NodeId dst, size_t bytes);

  Engine& engine_;
  Topology topology_;
  MeshParams params_;
  StatsRegistry* stats_;
  FaultPlan* fault_ = nullptr;
  TraceSink* trace_ = nullptr;
  std::vector<SimTime> tx_busy_until_;
  std::vector<SimTime> rx_busy_until_;
};

}  // namespace asvm

#endif  // SRC_MESH_NETWORK_H_
