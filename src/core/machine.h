// Machine — the library's public entry point: a simulated Paragon-like
// multicomputer with a chosen distributed memory manager (ASVM or NMK13 XMM),
// plus convenience APIs for building workloads against it.
//
//   MachineConfig config;
//   config.nodes = 16;
//   config.dsm = DsmKind::kAsvm;
//   Machine machine(config);
//   MemObjectId region = machine.CreateSharedRegion(0, 128);
//   TaskMemory& mem = machine.MapRegion(3, region);
//   auto f = mem.WriteU64(0, 42);
//   machine.Run();
#ifndef SRC_CORE_MACHINE_H_
#define SRC_CORE_MACHINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/asvm/asvm_system.h"
#include "src/common/types.h"
#include "src/dsm/cluster.h"
#include "src/dsm/dsm_system.h"
#include "src/ivy/ivy_system.h"
#include "src/machvm/task_memory.h"
#include "src/xmm/xmm_system.h"

namespace asvm {

enum class DsmKind {
  kAsvm,  // the paper's system (§3)
  kXmm,   // NMK13 XMM baseline (§2.3)
  kIvy,   // Li & Hudak dynamic distributed manager (probable-owner chains)
};

const char* ToString(DsmKind kind);

struct MachineConfig {
  int nodes = 4;
  DsmKind dsm = DsmKind::kAsvm;

  // Event core behind the simulation engine. kTimerWheel is the pooled
  // production scheduler; kReference keeps the original heap implementation
  // for differential testing and A/B benchmarking. Both produce bit-identical
  // timelines (enforced by tests/scheduler_equivalence_test.cc).
  SchedulerKind scheduler = SchedulerKind::kTimerWheel;

  // Parallel simulation: shard the node space across this many engines, one
  // worker thread each, synchronized with conservative-lookahead windows.
  // Timelines (and golden digests) are byte-identical to shards = 1 for every
  // workload, fork/file drivers included (DESIGN.md §13). Shards divide along
  // I/O-group boundaries; a request above ceil(nodes / nodes_per_io_group) is
  // clamped to that block count.
  int shards = 1;

  // Paragon GP node: 8 KB pages, 16 MB memory of which ~9 MB is available to
  // user applications (paper §4.3).
  size_t page_size = 8192;
  size_t user_memory_bytes = 9 * 1024 * 1024;

  // Number of file pagers / I/O disks (on nodes 0..k-1); >1 enables striping.
  int file_pager_count = 1;

  // One paging disk per this many compute nodes (Paragon: 32). Shard
  // boundaries align to these groups, so it also caps the effective shard
  // count at ceil(nodes / nodes_per_io_group) blocks (higher requests clamp).
  int nodes_per_io_group = 32;

  // Record per-message-type transport counters (see
  // Cluster::EnablePerTypeMessageStats).
  bool per_type_message_stats = false;

  AsvmConfig asvm;
  XmmConfig xmm;
  IvyConfig ivy;
  MeshParams mesh;
  DiskParams disk;
  FilePagerParams file_pager;
  VmCosts vm_costs;

  // Deterministic fault injection (empty = faults off, timelines unchanged)
  // and the protocol timeout/retry policy (timeout_ns = 0 = retries off).
  FaultPlanParams fault;
  RetryPolicy retry;
  // Primary-backup manager replication with online failover (DESIGN.md §14).
  // Requires an armed retry policy to detect silence; promotions and cold
  // restarts run as cluster mutations, so enabling this arms the windowed
  // mutation-aware drain.
  FailoverConfig failover;
  // Install the sim-engine stall watchdog (implied whenever `fault` is
  // non-empty): when the event queue drains while work is still blocked, the
  // machine captures a diagnostic report instead of silently returning.
  bool stall_watchdog = false;

  ClusterParams ToClusterParams() const;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& config() const { return config_; }
  Cluster& cluster() { return *cluster_; }
  DsmSystem& dsm() { return *dsm_; }
  Engine& engine() { return cluster_->engine(); }
  StatsRegistry& stats() { return cluster_->stats(); }
  int nodes() const { return config_.nodes; }
  size_t page_size() const { return config_.page_size; }

  // --- Region management -----------------------------------------------------

  MemObjectId CreateSharedRegion(NodeId home, VmSize pages) {
    return dsm_->CreateSharedRegion(home, pages);
  }

  // Creates a file on the machine's file pager and a DSM region over it.
  MemObjectId CreateMappedFile(const std::string& name, VmSize pages, bool prefilled);

  // §6 extension: a striped file over the machine's file pagers (configure
  // ClusterParams::file_pager_count > 1 via MachineConfig::file_pager_count).
  MemObjectId CreateStripedFile(const std::string& name, VmSize pages, int stripes,
                                bool prefilled);

  // Maps the region into a fresh task on `node` at virtual page `at_page` and
  // returns an accessor (owned by the Machine).
  TaskMemory& MapRegion(NodeId node, const MemObjectId& id, VmOffset at_page = 0);

  // Creates a task on `node` with a private anonymous region (for fork-based
  // workloads).
  TaskMemory& CreatePrivateTask(NodeId node, VmSize pages);

  // Remote task creation through the active DSM.
  Future<VmMap*> RemoteFork(NodeId src, TaskMemory& parent, NodeId dst) {
    return dsm_->RemoteFork(src, parent.map(), dst);
  }
  TaskMemory& WrapMap(NodeId node, VmMap* map);

  // --- Execution ---------------------------------------------------------------

  void Run() { cluster_->Run(); }
  bool RunFor(SimDuration d) { return cluster_->RunFor(d); }
  SimTime Now() const { return cluster_->Now(); }

  size_t DsmMetadataBytes(NodeId node) const { return dsm_->MetadataBytes(node); }

  // --- Observability -----------------------------------------------------------

  // Attaches a machine-wide protocol monitor: DSM protocol events, transport
  // sends/receives, mesh drops/jitter, and disk I/O all flow into it
  // (nullptr detaches; zero cost while detached).
  void AttachMonitor(ProtocolMonitor* monitor) { cluster_->AttachMonitor(monitor); }
  ProtocolMonitor* monitor() const { return cluster_->monitor(); }

  // --- Fault injection & stall diagnostics -------------------------------------

  // Active fault plan, or nullptr when faults are disabled.
  FaultPlan* fault_plan() { return cluster_->fault_plan(); }

  // Diagnostic report from the most recent stall the watchdog detected
  // (empty if none). Also counted under the "sim.stalls_detected" stat.
  const std::string& last_stall_report() const { return last_stall_report_; }

 private:
  MachineConfig config_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<DsmSystem> dsm_;
  std::vector<std::unique_ptr<TaskMemory>> tasks_;
  std::string last_stall_report_;
};

}  // namespace asvm

#endif  // SRC_CORE_MACHINE_H_
