#include "src/core/machine.h"

#include "src/common/log.h"

namespace asvm {

const char* ToString(DsmKind kind) {
  switch (kind) {
    case DsmKind::kAsvm:
      return "ASVM";
    case DsmKind::kXmm:
      return "XMM";
    case DsmKind::kIvy:
      return "IVY";
  }
  return "?";
}

ClusterParams MachineConfig::ToClusterParams() const {
  ClusterParams params;
  params.node_count = nodes;
  params.scheduler = scheduler;
  params.vm.page_size = page_size;
  params.vm.frame_capacity = user_memory_bytes / page_size;
  params.vm.costs = vm_costs;
  params.mesh = mesh;
  params.disk = disk;
  params.file_pager = file_pager;
  params.file_pager_count = file_pager_count;
  params.nodes_per_io_group = nodes_per_io_group;
  params.fault = fault;
  params.retry = retry;
  params.failover = failover;
  params.shards = shards;
  return params;
}

Machine::Machine(const MachineConfig& config) : config_(config) {
  cluster_ = std::make_unique<Cluster>(config.ToClusterParams());
  if (config.per_type_message_stats) {
    cluster_->EnablePerTypeMessageStats();
  }
  switch (config.dsm) {
    case DsmKind::kAsvm:
      dsm_ = std::make_unique<AsvmSystem>(*cluster_, config.asvm);
      break;
    case DsmKind::kXmm:
      dsm_ = std::make_unique<XmmSystem>(*cluster_, config.xmm);
      break;
    case DsmKind::kIvy:
      dsm_ = std::make_unique<IvySystem>(*cluster_, config.ivy);
      break;
  }
  if (config.failover.enabled) {
    // Promotions and cold restarts apply as (send_time, origin, seq)-ordered
    // cluster mutations; arming the mutator up front keeps the apply schedule
    // identical at every shard count.
    cluster_->mutator().Arm();
    if (FaultPlan* plan = cluster_->fault_plan(); plan != nullptr) {
      for (const NodeRemoval& r : plan->params().removals) {
        if (r.restore_at == 0) {
          continue;
        }
        // One-shot rejoin wake on the node's own engine (removal only severs
        // the fabric; the engine keeps running), from where the cold restart
        // enqueues as a mutation exactly like any other origin-side request.
        const NodeId node = r.node;
        cluster_->engine_for(node).Schedule(r.restore_at, [this, node]() {
          cluster_->mutator().Enqueue(node, [this, node]() { dsm_->ColdRestart(node); });
        });
      }
    }
  }
  if (config.stall_watchdog || !config.fault.Empty()) {
    cluster_->engine().SetStallHandler([this](const std::string& report) {
      last_stall_report_ = report;
      cluster_->stats().Add("sim.stalls_detected");
      ASVM_LOG_ERROR << report;
    });
  }
}

Machine::~Machine() = default;

MemObjectId Machine::CreateMappedFile(const std::string& name, VmSize pages, bool prefilled) {
  int32_t file_id = cluster_->file_pager().CreateFile(name, pages, prefilled);
  return dsm_->CreateFileRegion(file_id, pages);
}

MemObjectId Machine::CreateStripedFile(const std::string& name, VmSize pages, int stripes,
                                       bool prefilled) {
  ASVM_CHECK_MSG(stripes >= 1 && stripes <= cluster_->file_pager_count(),
                 "not enough file pagers for the requested stripe count");
  std::vector<StripedBacking::Stripe> parts;
  const VmSize per_stripe = (pages + stripes - 1) / stripes;
  for (int i = 0; i < stripes; ++i) {
    FilePager& pager = cluster_->file_pager(i);
    parts.push_back({&pager, pager.CreateFile(name + ".s" + std::to_string(i), per_stripe,
                                              prefilled)});
  }
  return dsm_->CreateStripedRegion(parts, pages);
}

TaskMemory& Machine::MapRegion(NodeId node, const MemObjectId& id, VmOffset at_page) {
  auto repr = dsm_->Attach(node, id);
  NodeVm& vm = cluster_->vm(node);
  VmMap* map = vm.CreateMap();
  Status s = map->Map(at_page, repr->page_count(), repr, 0, Inheritance::kShare);
  ASVM_CHECK(IsOk(s));
  tasks_.push_back(std::make_unique<TaskMemory>(vm, *map));
  return *tasks_.back();
}

TaskMemory& Machine::CreatePrivateTask(NodeId node, VmSize pages) {
  NodeVm& vm = cluster_->vm(node);
  VmMap* map = vm.CreateMap();
  auto obj = vm.CreateObject(pages, CopyStrategy::kSymmetric);
  Status s = map->Map(0, pages, obj, 0, Inheritance::kCopy);
  ASVM_CHECK(IsOk(s));
  tasks_.push_back(std::make_unique<TaskMemory>(vm, *map));
  return *tasks_.back();
}

TaskMemory& Machine::WrapMap(NodeId node, VmMap* map) {
  ASVM_CHECK(map != nullptr);
  tasks_.push_back(std::make_unique<TaskMemory>(cluster_->vm(node), *map));
  return *tasks_.back();
}

}  // namespace asvm
