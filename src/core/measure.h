// Measurement helpers for experiments: run the engine until an operation
// completes and report its simulated latency, as the paper does from user
// task context ("performing read or write operations and timing them").
#ifndef SRC_CORE_MEASURE_H_
#define SRC_CORE_MEASURE_H_

#include "src/common/log.h"
#include "src/core/machine.h"
#include "src/sim/future.h"

namespace asvm {

// Runs the engine until `f` is ready; returns the simulated time that took.
// Background traffic continuing after completion is NOT drained (call
// machine.Run() between measurements for quiescence).
template <typename T>
SimDuration AwaitLatency(Machine& machine, const Future<T>& f) {
  const SimTime start = machine.Now();
  while (!f.ready()) {
    // Cluster-level emptiness: in a sharded run shard 0 alone being drained
    // does not mean the operation is stuck — another shard or the cross-shard
    // mailbox may still carry the completion.
    ASVM_CHECK_MSG(!machine.cluster().Empty(), "operation can never complete");
    machine.RunFor(5 * kMicrosecond);
  }
  return machine.Now() - start;
}

// Convenience: measure one write access (returns milliseconds, like Table 1).
inline double MeasureWriteMs(Machine& machine, TaskMemory& mem, VmOffset addr,
                             uint64_t value) {
  SimDuration d = AwaitLatency(machine, mem.WriteU64(addr, value));
  machine.Run();
  return ToMilliseconds(d);
}

inline double MeasureReadMs(Machine& machine, TaskMemory& mem, VmOffset addr,
                            uint64_t* out = nullptr) {
  auto f = mem.ReadU64(addr);
  SimDuration d = AwaitLatency(machine, f);
  if (out != nullptr) {
    *out = f.value();
  }
  machine.Run();
  return ToMilliseconds(d);
}

}  // namespace asvm

#endif  // SRC_CORE_MEASURE_H_
