#include "src/asvm/monitor.h"

#include <cstdio>
#include <sstream>

namespace asvm {

const char* ToString(TraceKind kind) {
  switch (kind) {
    case TraceKind::kFaultRequest:
      return "fault-request";
    case TraceKind::kForwardDynamic:
      return "fwd-dynamic";
    case TraceKind::kForwardStatic:
      return "fwd-static";
    case TraceKind::kForwardGlobal:
      return "fwd-global";
    case TraceKind::kServeOwner:
      return "serve-owner";
    case TraceKind::kServeTerminal:
      return "serve-terminal";
    case TraceKind::kGrantApplied:
      return "grant-applied";
    case TraceKind::kInvalidate:
      return "invalidate";
    case TraceKind::kOwnershipMoved:
      return "ownership-moved";
    case TraceKind::kEvictStep:
      return "evict-step";
    case TraceKind::kPush:
      return "push";
    case TraceKind::kPushScan:
      return "push-scan";
    case TraceKind::kPull:
      return "pull";
    case TraceKind::kWriteback:
      return "writeback";
    case TraceKind::kKindCount:
      break;
  }
  return "?";
}

std::string TraceBuffer::Render(PageIndex page) const {
  std::ostringstream out;
  for (const TraceEvent& e : events_) {
    if (page != kInvalidPage && e.page != page) {
      continue;
    }
    char line[160];
    if (e.peer != kInvalidNode) {
      std::snprintf(line, sizeof(line), "%10.3f ms  node %-3d %-16s %s page %lld  -> node %d",
                    ToMilliseconds(e.time), e.node, ToString(e.kind),
                    e.object.ToString().c_str(), static_cast<long long>(e.page), e.peer);
    } else {
      std::snprintf(line, sizeof(line), "%10.3f ms  node %-3d %-16s %s page %lld",
                    ToMilliseconds(e.time), e.node, ToString(e.kind),
                    e.object.ToString().c_str(), static_cast<long long>(e.page));
    }
    out << line;
    if (e.kind == TraceKind::kEvictStep) {
      out << "  (step " << e.aux << ")";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace asvm
