// AsvmAgent part 2: the owner-side page state machine (Figure 7), grant
// handling at the origin, and terminal (pager/peer) serving.
#include <algorithm>

#include "src/asvm/agent.h"
#include "src/common/log.h"
#include "src/dsm/failover.h"

namespace asvm {

namespace {

void EraseNode(std::vector<NodeId>& nodes, NodeId node) {
  nodes.erase(std::remove(nodes.begin(), nodes.end(), node), nodes.end());
}

bool Contains(const std::vector<NodeId>& nodes, NodeId node) {
  return std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

}  // namespace

// --- Owner side ----------------------------------------------------------------

void AsvmAgent::ServeAsOwner(AccessRequest req) {
  ObjectState& os = obj_state(req.search);
  PageState& ps = page_state(os, req.page);
  ASVM_CHECK(ps.owner && !ps.busy);
  ASVM_CHECK_MSG(os.repr != nullptr, "owner without local representation");
  VmPage* vp = os.repr->FindResident(req.page);
  ASVM_CHECK_MSG(vp != nullptr, "owner invariant violated: page not resident");

  if (req.origin == node_) {
    // Our own queued request came due after we became owner (a deferred
    // self-upgrade, or a request that looped back after a grant).
    if (req.access == PageAccess::kWrite && ps.access != PageAccess::kWrite) {
      (void)SelfUpgrade(req.search, req.page);
    } else if (ps.access != PageAccess::kNone) {
      // Access already sufficient; wake any kernel waiters.
      vm_.LockGranted(*os.repr, req.page, vp->lock);
    }
    return;
  }

  if (req.target != req.search) {
    // Cross-space pull: a copy object's read-through of our (source) data.
    // Serve the snapshot value; ownership bookkeeping belongs to the target
    // space and was serialized by the copy object's peer (§3.7.3).
    AccessReply reply;
    reply.target = req.target;
    reply.req_id = req.req_id;
    reply.page = req.page;
    reply.granted = req.access;
    reply.ownership = true;
    reply.page_version = 0;
    reply.terminal = req.terminal;
    if (stats_ != nullptr) {
      stats_->Add("asvm.pull_served_by_owner");
    }
    SendReply(req.origin, reply, ClonePage(vp->data));
    return;
  }

  Trace(TraceKind::kServeOwner, req.search, req.page, req.origin, 0, req.req_id);
  if (req.access == PageAccess::kRead) {
    // Transition 5: grant read access, record the reader, keep ownership.
    if (ps.access == PageAccess::kWrite) {
      vp->lock = PageAccess::kRead;
      ps.access = PageAccess::kRead;
    }
    if (!Contains(ps.readers, req.origin)) {
      ps.readers.push_back(req.origin);
    }
    AccessReply reply;
    reply.target = req.target;
    reply.req_id = req.req_id;
    reply.page = req.page;
    reply.granted = PageAccess::kRead;
    reply.ownership = false;
    reply.page_version = ps.version;
    if (stats_ != nullptr) {
      stats_->Add("asvm.read_grants");
    }
    SendReply(req.origin, reply, ClonePage(vp->data));
    return;
  }

  // Transitions 4/6: grant write access (and ownership) to another node.
  (void)OwnerGrantWrite(std::move(req));
}

Task AsvmAgent::OwnerGrantWrite(AccessRequest req) {
  const MemObjectId id = req.search;
  ObjectState& os = obj_state(id);
  PageState& ps = page_state(os, req.page);
  ps.busy = true;
  vm_.WirePage(*os.repr, req.page);

  VmPage* vp = os.repr->FindResident(req.page);
  PageBuffer pre_write = ClonePage(vp->data);

  // Delayed-copy rule: the pre-write contents must reach every copy of the
  // object before the page may be modified (§3.7.2).
  Promise<uint64_t> version_done(vm_.engine());
  (void)PushIfNeeded(id, req.page, pre_write, ps.version, version_done);
  const uint64_t new_version = co_await version_done.GetFuture();
  ps.version = new_version;

  // Transition 6: invalidate every reader except the new writer (who keeps
  // its copy and only needs the lock upgrade — no page contents travel).
  const bool upgrade = Contains(ps.readers, req.origin);
  Promise<Status> inval_done(vm_.engine());
  (void)InvalidateReaders(id, req.page, req.origin, inval_done);
  co_await inval_done.GetFuture();

  // Hand over page + ownership. Our own copy is invalidated (single writer).
  AccessReply reply;
  reply.target = req.target;
  reply.req_id = req.req_id;
  reply.page = req.page;
  reply.granted = PageAccess::kWrite;
  reply.ownership = true;
  reply.upgrade = upgrade;
  reply.page_version = ps.version;
  if (stats_ != nullptr) {
    stats_->Add(upgrade ? "asvm.write_upgrade_grants" : "asvm.write_grants");
  }
  vm_.UnwirePage(*os.repr, req.page);
  SendReply(req.origin, reply, upgrade ? nullptr : ClonePage(pre_write));

  vm_.LockRequest(*os.repr, req.page, PageAccess::kNone, LockMode::kFlush,
                  [](LockResult) {});
  ps.owner = false;
  ps.access = PageAccess::kNone;
  ps.busy = false;
  ps.readers.clear();
  os.dyn_hints->Put(req.page, req.origin);
  // Keep the static manager's hint fresh (cheap, asynchronous).
  const AsvmObjectInfo& info = system_.info(id);
  if (system_.config().static_forwarding) {
    const NodeId mgr = system_.StaticManagerOf(info, req.page);
    StaticHintMsg hint{id, req.page, StaticHintKind::kOwner, req.origin};
    if (mgr == node_) {
      OnStaticHint(hint);
    } else {
      Send(mgr, AsvmMsgType::kStaticHint, hint);
    }
  }
  NotifyHomeOwner(id, req.page, req.origin);
  ForwardQueue(id, req.page, req.origin);
  PruneState(os, req.page);
}

Task AsvmAgent::SelfUpgrade(MemObjectId id, PageIndex page) {
  ObjectState& os = obj_state(id);
  PageState& ps = page_state(os, page);
  ASVM_CHECK(ps.owner && !ps.busy);
  ps.busy = true;
  vm_.WirePage(*os.repr, page);

  VmPage* vp = os.repr->FindResident(page);
  PageBuffer pre_write = ClonePage(vp->data);

  Promise<uint64_t> version_done(vm_.engine());
  (void)PushIfNeeded(id, page, pre_write, ps.version, version_done);
  ps.version = co_await version_done.GetFuture();

  // Transition 7: invalidate all readers, then upgrade in place.
  Promise<Status> inval_done(vm_.engine());
  (void)InvalidateReaders(id, page, node_, inval_done);
  co_await inval_done.GetFuture();

  vm_.UnwirePage(*os.repr, page);
  vm_.LockGranted(*os.repr, page, PageAccess::kWrite);
  ps.access = PageAccess::kWrite;
  ps.busy = false;
  if (stats_ != nullptr) {
    stats_->Add("asvm.self_upgrades");
  }
  // Serve whatever queued while we were busy.
  std::deque<AccessRequest> queued;
  queued.swap(ps.queue);
  for (auto& q : queued) {
    HandleRequest(std::move(q));
  }
}

Task AsvmAgent::InvalidateReaders(MemObjectId id, PageIndex page, NodeId except,
                                  Promise<Status> done) {
  ObjectState& os = obj_state(id);
  PageState& ps = page_state(os, page);
  std::vector<NodeId> targets;
  for (NodeId r : ps.readers) {
    if (r != except && r != node_) {
      targets.push_back(r);
    }
  }
  ps.readers.clear();
  if (except != node_) {
    // The writer-to-be is tracked by the new owner, not here.
  }
  if (targets.empty()) {
    done.Set(Status::kOk);
    co_return;
  }
  const uint64_t op = OpenOp(static_cast<int>(targets.size()), "invalidate-round", id, page);
  if (PendingOp* pending = FindOp(op); pending != nullptr) {
    pending->targets = targets;  // a dead reader resolves kNodeDown, not a wedge
  }
  Future<Status> all_acked = OpFuture(op);
  for (NodeId r : targets) {
    Send(r, AsvmMsgType::kInvalidate, InvalidateMsg{id, page, op});
    Trace(TraceKind::kInvalidate, id, page, r, 0, op);
    if (stats_ != nullptr) {
      stats_->Add("asvm.invalidations");
    }
  }
  ArmOp(op, [this, id, page, op, targets]() {
    const PendingOp* pending = FindOp(op);
    for (NodeId r : targets) {
      if (pending != nullptr && Contains(pending->acked, r)) {
        continue;  // already answered; only re-ask the silent readers
      }
      Send(r, AsvmMsgType::kInvalidate, InvalidateMsg{id, page, op});
    }
  });
  const Status s = co_await all_acked;
  done.Set(s);
}

// --- Origin side: grants -------------------------------------------------------

void AsvmAgent::OnAccessReply(NodeId src, const AccessReply& reply, PageBuffer data) {
  if (reply.is_scan) {
    auto it = scan_waiters_.find(reply.req_id);
    if (it != scan_waiters_.end()) {
      it->second.Set(reply.scan_found);
      scan_waiters_.erase(it);
    }
    return;
  }
  if (ArmsRequests() && FindOp(reply.req_id) == nullptr) {
    // A grant for a request we already resolved (a resend's duplicate, or a
    // straggler that raced a kNodeDown reissue): applying it twice would
    // double-serve the page.
    CountDuplicate();
    return;
  }
  ObjectState& os = obj_state(reply.target);
  PageState& ps = page_state(os, reply.page);

  if (reply.lost) {
    // The terminal proved the page was committed and then lost with its home
    // and every replica. The fault fails Status::kDataLost — waking the
    // kernel's waiters with an error, never inventing zeros.
    if (stats_ != nullptr) {
      stats_->Add("asvm.lost_page_faults");
    }
    if (ArmsRequests()) {
      ResolveOp(reply.req_id, Status::kDataLost);
    }
    ps.pending = false;
    ASVM_CHECK_MSG(os.repr != nullptr, "lost-page reply for unattached object");
    vm_.FaultFailed(*os.repr, reply.page, Status::kDataLost);
    Trace(TraceKind::kGrantApplied, reply.target, reply.page, src, -1, reply.req_id);
    std::deque<AccessRequest> queued;
    queued.swap(ps.queue);
    for (auto& q : queued) {
      RouteRequest(std::move(q));
    }
    PruneState(os, reply.page);
    return;
  }

  if (reply.retry) {
    // Push/pull race (§3.7.3): re-issue the request from scratch.
    if (stats_ != nullptr) {
      stats_->Add("asvm.retries");
    }
    ASVM_CHECK(ps.pending);
    AccessRequest req;
    req.target = reply.target;
    req.search = reply.target;
    req.page = reply.page;
    req.access = reply.granted;  // the retried access rides in `granted`
    req.origin = node_;
    req.req_id = system_.NextOpId(node_);
    if (ArmsRequests()) {
      // The bounce re-keys the exchange: retire the old op entry before its
      // deadline fires against a request that no longer exists, and arm the
      // new id so the re-issue keeps its kNodeDown classification.
      EraseOp(reply.req_id);
      ArmRequest(req);
    }
    vm_.engine().Schedule(system_.config().agent_process_ns,
                          [this, req = std::move(req)]() mutable {
                            HandleRequest(std::move(req));
                          });
    return;
  }

  if (ArmsRequests()) {
    ResolveOp(reply.req_id, Status::kOk);
  }
  ps.pending = false;
  ps.access = reply.granted;
  ASVM_CHECK_MSG(os.repr != nullptr, "grant for unattached object");
  if (reply.zero_fill) {
    vm_.DataUnavailable(*os.repr, reply.page, reply.granted);
  } else if (reply.upgrade) {
    vm_.LockGranted(*os.repr, reply.page, reply.granted);
  } else {
    ASVM_CHECK_MSG(data != nullptr, "grant without data");
    vm_.DataSupply(*os.repr, reply.page, std::move(data), reply.granted);
  }

  Trace(TraceKind::kGrantApplied, reply.target, reply.page, src,
        static_cast<int64_t>(reply.granted), reply.req_id);
  if (reply.ownership) {
    Trace(TraceKind::kOwnershipMoved, reply.target, reply.page, node_);
    ps.owner = true;
    ps.version = reply.page_version;
    ps.readers = reply.readers;
    EraseNode(ps.readers, node_);
    // Detach the parked requests NOW: OnPullDone below can synchronously
    // drain the terminal queue into a full write-grant that hands the page
    // away and prunes this very state entry (completed futures resume
    // without suspending), so `ps` must not be touched afterwards.
    std::deque<AccessRequest> queued;
    queued.swap(ps.queue);
    if (reply.terminal != kInvalidNode) {
      // Tell the serializing terminal the first-touch grant landed.
      PullDone msg{reply.target, reply.page, node_};
      if (reply.terminal == node_) {
        OnPullDone(msg);
      } else {
        Send(reply.terminal, AsvmMsgType::kPullDone, msg);
      }
    }
    // We can now serve requests that piled up while our request was in
    // flight.
    for (auto& q : queued) {
      HandleRequest(std::move(q));
    }
  } else {
    // Read grant: remember who served us — that's the owner.
    os.dyn_hints->Put(reply.page, src);
    std::deque<AccessRequest> queued;
    queued.swap(ps.queue);
    for (auto& q : queued) {
      RouteRequest(std::move(q));
    }
    PruneState(os, reply.page);
  }
}

// --- Terminal side (pager / peer) ------------------------------------------------

void AsvmAgent::HandleAtTerminal(AccessRequest req) {
  AsvmObjectInfo& info = system_.info(req.search);
  if (info.Terminal(req.page) != node_) {
    // Epoch fence: the directory moved this role while the request was in
    // flight (a cascade promoted past us). Re-route through the directory
    // instead of serving with stale authority.
    if (stats_ != nullptr) {
      stats_->Add("asvm.stale_terminal_reroutes");
    }
    req.to_terminal = false;
    SendToTerminal(std::move(req));
    return;
  }
  ObjectState& os = obj_state(req.search);

  if (req.target == req.search) {
    auto& hp = os.home_pages.GetOrCreate(req.page);
    if (hp.owner_exists && req.ring && req.ring_left == 0 && LeaseExpired(hp.last_owner)) {
      // A full ring (which skips removed nodes) found no live owner, the last
      // node we attributed ownership to is confirmed removed, and its lease
      // has expired: reclaim the page. The reclaim harvests the newest
      // surviving read copy into the recovered overlay — it reads and edits
      // other kernels' page tables, so it runs as a cluster mutation; the
      // request is re-handled once the reclaim has applied.
      system_.cluster().mutator().Enqueue(node_, [this, req]() {
        system_.ReclaimDeadOwnerPage(req.search, req.page);
        engine().Post([this, req]() mutable { HandleAtTerminal(std::move(req)); });
      });
      return;
    }
    if (hp.owner_exists) {
      // Someone owns the page; the caches just failed to find it. Fall back
      // to a global scan (never fails while an owner exists, §3.4).
      if (req.ring && req.ring_left == 0 && hp.last_owner == req.origin) {
        // The ring skips the origin by design, but the directory attributes
        // ownership to exactly that node — either a resend's duplicate kept
        // wandering after the live copy was served (the origin is, or is
        // about to become, the owner), or the attribution is merely lagging
        // a transfer notice. Re-arming the ring can never resolve this: hand
        // the request to the attributed owner itself. A true owner drops its
        // own straggler (HandleRequest); a non-owner re-routes it once the
        // in-flight grant or ownership notice has landed.
        if (stats_ != nullptr) {
          stats_->Add("asvm.owner_is_origin_forwards");
        }
        AccessRequest fwd = req;
        fwd.ring = false;
        fwd.ring_pos = 0;
        fwd.ring_left = 0;
        fwd.to_terminal = false;
        vm_.engine().Schedule(system_.config().agent_process_ns * 4,
                              [this, fwd = std::move(fwd)]() mutable {
                                if (fwd.origin == node_) {
                                  HandleRequest(std::move(fwd));
                                } else {
                                  SendRequest(fwd.origin, fwd);
                                }
                              });
        return;
      }
      if (req.ring && req.ring_left == 0) {
        // A full ring missed a live owner: a transfer was in flight. Retry
        // the ring after a short delay.
        if (stats_ != nullptr) {
          stats_->Add("asvm.ring_retries");
        }
        AccessRequest retry = req;
        retry.ring_pos = 0;
        retry.ring_left = static_cast<int>(info.sharing.size());
        vm_.engine().Schedule(system_.config().agent_process_ns * 4,
                              [this, retry = std::move(retry)]() mutable {
                                RingForward(std::move(retry));
                              });
        return;
      }
      req.ring = true;
      req.ring_pos = 0;
      req.ring_left = static_cast<int>(info.sharing.size());
      RingForward(std::move(req));
      return;
    }
    if (os.lost.count(req.page) != 0) {
      // Promotion proved this page was committed and then lost with its home
      // and every replica: the fault must fail, not zero-fill (DESIGN.md §14).
      SendLostReply(req);
      return;
    }
    // No owner anywhere: we serialize the first-touch grant.
    TerminalCtl& tc = os.terminal.GetOrCreate(req.page);
    if (tc.busy) {
      tc.queue.push_back(std::move(req));
      return;
    }
    tc.busy = true;
    req.terminal = node_;
    // Copy objects — and backed objects whose local representation carries a
    // VM shadow chain (an exported local fork) — resolve through the chain;
    // plain backed objects go straight to their pager.
    if (info.IsCopy() || (os.repr != nullptr && os.repr->shadow() != nullptr)) {
      (void)ServeByPull(std::move(req));
    } else {
      (void)ServeFromBacking(std::move(req));
    }
    return;
  }

  // Cross-space read-through (pull into another object's space): idempotent,
  // no serialization or ownership bookkeeping in this space.
  if (!info.IsCopy() && os.lost.count(req.page) != 0) {
    SendLostReply(req);
    return;
  }
  if (info.IsCopy() || (os.repr != nullptr && os.repr->shadow() != nullptr)) {
    (void)ServeByPull(std::move(req));
  } else {
    (void)ServeFromBacking(std::move(req));
  }
}

void AsvmAgent::SendLostReply(const AccessRequest& req) {
  AccessReply reply;
  reply.target = req.target;
  reply.req_id = req.req_id;
  reply.page = req.page;
  reply.granted = req.access;
  reply.lost = true;
  if (stats_ != nullptr) {
    stats_->Add("asvm.lost_page_replies");
  }
  Trace(TraceKind::kServeTerminal, req.search, req.page, req.origin, -1, req.req_id);
  SendReply(req.origin, reply, nullptr);
}

Task AsvmAgent::ServeFromBacking(AccessRequest req) {
  AsvmObjectInfo& info = system_.info(req.search);
  ASVM_CHECK(info.backing != nullptr);
  ObjectState& os = obj_state(req.search);
  auto& hp = os.home_pages.GetOrCreate(req.page);

  PageBuffer data;
  uint64_t version = hp.version;
  if (const ObjectState::RecoveredPage* rp = os.recovered.Find(req.page);
      rp != nullptr && rp->data != nullptr) {
    // Promotion seeded this page from the old home's shadow stream; the
    // fresh paging space has nothing newer.
    data = ClonePage(rp->data);
    version = rp->version;
    if (stats_ != nullptr) {
      stats_->Add("asvm.recovered_serves");
    }
  } else if (info.backing->HasData(req.page)) {
    Promise<PageBuffer> read_done(vm_.engine());
    info.backing->Read(req.page, vm_.page_size(),
                       [read_done](PageBuffer d) { read_done.Set(std::move(d)); });
    data = co_await read_done.GetFuture();
    if (stats_ != nullptr) {
      stats_->Add("asvm.backing_reads");
    }
  } else {
    Promise<Status> grant_done(vm_.engine());
    info.backing->GrantFresh(req.page, [grant_done]() { grant_done.Set(Status::kOk); });
    co_await grant_done.GetFuture();
    if (stats_ != nullptr) {
      stats_->Add("asvm.fresh_grants");
    }
  }

  const bool same_space = req.target == req.search;
  if (same_space && req.access == PageAccess::kWrite && info.newest_copy.valid() &&
      version != info.object_version) {
    // Even a fresh/paged page's snapshot must reach the copies before the
    // first post-copy write (§3.7.2).
    PageBuffer pre_write = data != nullptr ? data : AllocPage(vm_.page_size());
    Promise<uint64_t> push_done(vm_.engine());
    (void)PushIfNeeded(req.search, req.page, pre_write, version, push_done);
    version = co_await push_done.GetFuture();
  }

  AccessReply reply;
  reply.target = req.target;
  reply.req_id = req.req_id;
  reply.page = req.page;
  reply.granted = req.access;
  reply.ownership = true;
  reply.zero_fill = data == nullptr;
  reply.page_version = version;
  reply.terminal = same_space ? node_ : req.terminal;
  if (same_space) {
    hp.owner_exists = true;  // the grant is on its way; PullDone confirms
    hp.last_owner = req.origin;
  }
  Trace(TraceKind::kServeTerminal, req.search, req.page, req.origin, 0, req.req_id);
  SendReply(req.origin, reply, data != nullptr ? ClonePage(data) : nullptr);
}

Task AsvmAgent::ServeByPull(AccessRequest req) {
  AsvmObjectInfo& info = system_.info(req.search);
  ObjectState& os = obj_state(req.search);
  ASVM_CHECK_MSG(os.repr != nullptr, "peer without copy-object representation");

  Promise<PullResult> pull_done(vm_.engine());
  vm_.PullRequest(*os.repr, req.page,
                  [pull_done](PullResult r) { pull_done.Set(std::move(r)); });
  PullResult result = co_await pull_done.GetFuture();
  if (stats_ != nullptr) {
    stats_->Add("asvm.peer_pulls");
  }
  Trace(TraceKind::kPull, req.search, req.page, req.origin, 0, req.req_id);

  const bool same_space = req.target == req.search;
  switch (result.kind) {
    case PullResult::Kind::kData: {
      AccessReply reply;
      reply.target = req.target;
      reply.req_id = req.req_id;
      reply.page = req.page;
      reply.granted = req.access;
      reply.ownership = true;
      reply.page_version = same_space ? os.home_pages.GetOrCreate(req.page).version : 0;
      reply.terminal = req.terminal;
      if (same_space) {
        auto& hp = os.home_pages.GetOrCreate(req.page);
        hp.owner_exists = true;
        hp.last_owner = req.origin;
      }
      SendReply(req.origin, reply, std::move(result.data));
      co_return;
    }
    case PullResult::Kind::kZeroFill: {
      if (info.backing != nullptr) {
        // Exported local object: the chain had nothing, but the object has a
        // pager of its own (paging space) that may hold the page.
        (void)ServeFromBacking(std::move(req));
        co_return;
      }
      AccessReply reply;
      reply.target = req.target;
      reply.req_id = req.req_id;
      reply.page = req.page;
      reply.granted = req.access;
      reply.ownership = true;
      reply.zero_fill = true;
      reply.page_version = 0;
      reply.terminal = req.terminal;
      if (same_space) {
        auto& hp = os.home_pages.GetOrCreate(req.page);
        hp.owner_exists = true;
        hp.last_owner = req.origin;
      }
      SendReply(req.origin, reply, nullptr);
      co_return;
    }
    case PullResult::Kind::kAskShadow: {
      // The chain continues behind another memory manager: forward the
      // request into that object's space, preserving origin and terminal
      // (§3.7.3, the Figure 9 walk).
      AccessRequest forwarded = req;
      forwarded.search = result.shadow_object;
      forwarded.hops = 0;
      forwarded.ring = false;
      if (stats_ != nullptr) {
        stats_->Add("asvm.pull_chain_forwards");
      }
      HandleRequest(std::move(forwarded));
      co_return;
    }
  }
}

void AsvmAgent::FinishTerminal(const MemObjectId& id, PageIndex page) {
  ObjectState& os = obj_state(id);
  TerminalCtl& tc = os.terminal.GetOrCreate(page);
  tc.busy = false;
  if (tc.queue.empty()) {
    return;
  }
  std::deque<AccessRequest> queued;
  queued.swap(tc.queue);
  for (auto& q : queued) {
    HandleRequest(std::move(q));
  }
}

void AsvmAgent::OnPullDone(const PullDone& m) {
  ObjectState& os = obj_state(m.target);
  auto& hp = os.home_pages.GetOrCreate(m.page);
  hp.owner_exists = true;
  hp.last_owner = m.new_owner;
  os.dyn_hints->Put(m.page, m.new_owner);
  if (system_.config().static_forwarding) {
    const AsvmObjectInfo& info = system_.info(m.target);
    const NodeId mgr = system_.StaticManagerOf(info, m.page);
    StaticHintMsg hint{m.target, m.page, StaticHintKind::kOwner, m.new_owner};
    if (mgr == node_) {
      OnStaticHint(hint);
    } else {
      Send(mgr, AsvmMsgType::kStaticHint, hint);
    }
  }
  FinishTerminal(m.target, m.page);
}

void AsvmAgent::OnStaticHint(const StaticHintMsg& m) {
  ObjectState& os = obj_state(m.object);
  os.static_cache->Put(m.page, std::make_pair(m.kind, m.owner));
  if (failover_.enabled && m.kind == StaticHintKind::kOwner &&
      system_.info(m.object).Terminal(m.page) == node_) {
    // The lease state machine tracks the newest attribution it hears about;
    // it never flips owner_exists (writebacks own that transition).
    os.home_pages.GetOrCreate(m.page).last_owner = m.owner;
  }
}

void AsvmAgent::ForwardQueue(const MemObjectId& id, PageIndex page, NodeId next) {
  ObjectState& os = obj_state(id);
  PageState* ps = os.pages.Find(page);
  if (ps == nullptr || ps->queue.empty()) {
    return;
  }
  std::deque<AccessRequest> queued;
  queued.swap(ps->queue);
  for (auto& q : queued) {
    if (q.target != q.search) {
      // Cross-space pull that raced a transition: bounce with a retry
      // indicator so the origin re-enters through the target space (§3.7.3).
      AccessReply reply;
      reply.target = q.target;
      reply.req_id = q.req_id;
      reply.page = q.page;
      reply.granted = q.access;
      reply.retry = true;
      Send(q.origin, AsvmMsgType::kAccessReply, reply);
      continue;
    }
    if (next != kInvalidNode && next != node_) {
      SendRequest(next, q);
    } else {
      RouteRequest(std::move(q));
    }
  }
}

}  // namespace asvm
