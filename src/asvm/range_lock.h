// §6 future-work feature: an ASVM primitive for locking a range of pages in a
// shared address space for the exclusive access of one task on one node —
// the building block the paper proposes for atomic read()/write() in a
// UFS/PFS hybrid filesystem, replacing the NORMA-IPC token server.
//
// The primitive is built directly on page ownership: acquiring a range
// obtains write ownership of each page (in ascending order, so overlapping
// acquisitions cannot deadlock) and holds it — incoming requests queue at the
// owner until release, exactly like any other busy transition.
#ifndef SRC_ASVM_RANGE_LOCK_H_
#define SRC_ASVM_RANGE_LOCK_H_

#include "src/asvm/asvm_system.h"
#include "src/common/status.h"
#include "src/machvm/task_memory.h"
#include "src/sim/future.h"
#include "src/sim/task.h"

namespace asvm {

class RangeLockService {
 public:
  explicit RangeLockService(AsvmSystem& system) : system_(system) {}

  // Acquires exclusive access to the pages covering [addr, addr+len) of the
  // object mapped by `mem` on `node`. Completes when every page is owned with
  // write access and held. Concurrent overlapping acquisitions serialize;
  // ascending page order makes them deadlock-free.
  Future<Status> Acquire(NodeId node, TaskMemory& mem, const MemObjectId& id, VmOffset addr,
                         VmSize len);

  // Releases a previously acquired range; queued requests drain immediately.
  void Release(NodeId node, const MemObjectId& id, VmOffset addr, VmSize len,
               size_t page_size);

 private:
  Task AcquireTask(NodeId node, TaskMemory& mem, MemObjectId id, VmOffset addr, VmSize len,
                   Promise<Status> done);

  AsvmSystem& system_;
};

}  // namespace asvm

#endif  // SRC_ASVM_RANGE_LOCK_H_
