// AsvmAgent part 3: internode paging (§3.6), the push operation and push
// scans (§3.7.2), copy creation support, and the message dispatcher.
#include <algorithm>
#include <utility>

#include "src/asvm/agent.h"
#include "src/common/log.h"
#include "src/dsm/failover.h"

namespace asvm {

// --- Internode paging (§3.6) ----------------------------------------------------

EvictAction AsvmAgent::OnEvict(VmObject& object, PageIndex page, PageBuffer data, bool dirty) {
  const MemObjectId id = object.id();
  ObjectState& os = obj_state(id);
  PageState* found = os.pages.Find(page);
  if (found == nullptr || !found->owner) {
    // Step 1: not the owner — the page can be re-fetched from the owner at
    // any time; simply discard it.
    if (found != nullptr) {
      found->access = PageAccess::kNone;
      PruneState(os, page);
    }
    if (stats_ != nullptr) {
      stats_->Add("asvm.evict_discards");
    }
    Trace(TraceKind::kEvictStep, id, page, kInvalidNode, 1);
    return EvictAction::kDiscard;
  }
  PageState& ps = *found;
  ASVM_CHECK_MSG(!ps.busy, "evicting a page with a transition in flight");
  // The owner is losing its copy: keep a "zombie" owner record (busy) so
  // forwarding still finds us and requests queue here until the ownership or
  // the contents land somewhere else.
  ps.busy = true;
  ps.access = PageAccess::kNone;
  if (stats_ != nullptr) {
    stats_->Add("asvm.evict_owner");
  }
  (void)EvictionTask(id, page, std::move(data), dirty, ps.version, ps.readers);
  return EvictAction::kTaken;
}

Task AsvmAgent::EvictionTask(MemObjectId id, PageIndex page, PageBuffer data, bool dirty,
                             uint64_t version, std::vector<NodeId> readers) {
  AsvmObjectInfo& info = system_.info(id);
  ObjectState& os = obj_state(id);

  // Step 2: offer bare ownership to a node that still has a read copy — no
  // page contents travel.
  if (!system_.config().internode_paging) {
    readers.clear();  // ablation: no ownership transfer, no page transfer
  }
  for (NodeId r : readers) {
    if (r == node_) {
      continue;
    }
    const uint64_t op = OpenOp(1, "ownership-offer", id, page);
    if (PendingOp* pending = FindOp(op); pending != nullptr) {
      pending->targets = {r};  // a dead reader resolves kNodeDown (= declined)
    }
    Future<Status> replied = OpFuture(op);
    std::vector<NodeId> remaining;
    for (NodeId other : readers) {
      if (other != r && other != node_) {
        remaining.push_back(other);
      }
    }
    Send(r, AsvmMsgType::kOwnershipOffer, OwnershipOffer{id, page, version, remaining, op});
    ArmOp(op, [this, r, id, page, version, remaining, op]() {
      Send(r, AsvmMsgType::kOwnershipOffer, OwnershipOffer{id, page, version, remaining, op});
    });
    Status s = co_await replied;
    if (IsOk(s)) {
      // Accepted: ownership moved without the page contents.
      if (stats_ != nullptr) {
        stats_->Add("asvm.evict_ownership_transfers");
      }
      Trace(TraceKind::kEvictStep, id, page, r, 2);
      PageState& ps = page_state(os, page);
      ps.owner = false;
      ps.busy = false;
      ps.readers.clear();
      os.dyn_hints->Put(page, r);
      NotifyHomeOwner(id, page, r);
      ForwardQueue(id, page, r);
      PruneState(os, page);
      co_return;
    }
    // Declined: that node discarded its copy; drop it from the list.
  }

  // Step 3: try to transfer the page to another node sharing the object.
  // A cycling counter picks the candidate; a node that recently accepted is
  // retried first (the algorithm "locks onto" nodes with free memory).
  std::vector<NodeId> candidates;
  {
    const size_t n = info.sharing.size();
    if (n > 1 && system_.config().internode_paging) {
      const NodeId cursor_node = info.sharing[os.pageout_cursor % n];
      ++os.pageout_cursor;
      if (cursor_node != node_) {
        candidates.push_back(cursor_node);
      }
      if (os.last_pageout_accept != kInvalidNode && os.last_pageout_accept != node_ &&
          os.last_pageout_accept != cursor_node) {
        candidates.push_back(os.last_pageout_accept);
      }
    }
  }
  for (NodeId target : candidates) {
    const uint64_t op = OpenOp(1, "pageout-offer", id, page);
    if (PendingOp* pending = FindOp(op); pending != nullptr) {
      pending->targets = {target};
    }
    Future<Status> replied = OpFuture(op);
    Send(target, AsvmMsgType::kPageoutOffer, PageoutOffer{id, page, version, dirty, op},
         ClonePage(data));
    ArmOp(op, [this, target, id, page, version, dirty, data, op]() {
      Send(target, AsvmMsgType::kPageoutOffer, PageoutOffer{id, page, version, dirty, op},
           ClonePage(data));
    });
    Status s = co_await replied;
    if (IsOk(s)) {
      if (stats_ != nullptr) {
        stats_->Add("asvm.evict_page_transfers");
      }
      Trace(TraceKind::kEvictStep, id, page, target, 3);
      os.last_pageout_accept = target;
      PageState& ps = page_state(os, page);
      ps.owner = false;
      ps.busy = false;
      ps.readers.clear();
      os.dyn_hints->Put(page, target);
      NotifyHomeOwner(id, page, target);
      ForwardQueue(id, page, target);
      PruneState(os, page);
      co_return;
    }
  }

  // Step 4: return the page to the memory object's pager (its home; for copy
  // objects the peer stores it in local paging space).
  for (;;) {
    const uint64_t op = OpenOp(1, "writeback", id, page);
    Future<Status> acked = OpFuture(op);
    const NodeId home = info.Terminal(page);
    WritebackMsg m{id, page, version, dirty, op};
    if (home == node_) {
      OnWriteback(node_, m, ClonePage(data));
    } else {
      if (PendingOp* pending = FindOp(op); pending != nullptr) {
        pending->targets = {home};
      }
      Send(home, AsvmMsgType::kWriteback, m, ClonePage(data));
      ArmOp(op, [this, home, m, data]() {
        Send(home, AsvmMsgType::kWriteback, m, ClonePage(data));
      });
    }
    const Status ws = co_await acked;
    if (!IsOk(ws) && failover_.enabled && !info.IsCopy()) {
      // The home died with the only copy of this page in flight: promote its
      // backup at the next sequencing point and return the contents there,
      // so they survive the failover.
      Promise<Status> promoted(vm_.engine());
      system_.cluster().mutator().Enqueue(node_, [this, id, promoted]() {
        system_.PromoteIfHomeDead(id);
        vm_.engine().Post([promoted]() { promoted.Set(Status::kOk); });
      });
      co_await promoted.GetFuture();
      if (stats_ != nullptr) {
        stats_->Add(kStatReissues);
      }
      continue;
    }
    if (stats_ != nullptr) {
      stats_->Add("asvm.evict_writebacks");
    }
    Trace(TraceKind::kEvictStep, id, page, home, 4);
    PageState& ps = page_state(os, page);
    ps.owner = false;
    ps.busy = false;
    ps.readers.clear();
    os.dyn_hints->Erase(page);
    ForwardQueue(id, page, home);
    PruneState(os, page);
    co_return;
  }
}

void AsvmAgent::OnOwnershipOffer(NodeId src, const OwnershipOffer& m) {
  if (DuplicateDelivery(m.op_id)) {
    return;  // a retry's second copy; the first answer already went out
  }
  ObjectState& os = obj_state(m.object);
  PageState* found = os.pages.Find(m.page);
  const bool have_copy = os.repr != nullptr && os.repr->FindResident(m.page) != nullptr &&
                         found != nullptr && found->access != PageAccess::kNone &&
                         !found->busy;
  if (have_copy) {
    PageState& ps = *found;
    ps.owner = true;
    ps.version = m.page_version;
    ps.readers = m.readers;
    if (stats_ != nullptr) {
      stats_->Add("asvm.ownership_offers_accepted");
    }
  }
  Send(src, AsvmMsgType::kOwnershipOfferReply, OfferReply{m.object, m.page, have_copy, m.op_id});
}

void AsvmAgent::OnPageoutOffer(NodeId src, const PageoutOffer& m, PageBuffer data) {
  if (DuplicateDelivery(m.op_id)) {
    return;
  }
  ObjectState& os = obj_state(m.object);
  const PageState* found = os.pages.Find(m.page);
  const bool busy_here = found != nullptr && (found->busy || found->pending);
  const bool room = vm_.free_frames() > system_.config().pageout_min_free_frames;
  const bool accept = room && !busy_here && os.repr != nullptr;
  if (accept) {
    vm_.DataSupply(*os.repr, m.page, std::move(data), PageAccess::kRead,
                   SupplyMode::kNormal, m.dirty);
    PageState& ps = page_state(os, m.page);
    ps.owner = true;
    ps.access = PageAccess::kRead;
    ps.version = m.page_version;
    ps.readers.clear();
    if (stats_ != nullptr) {
      stats_->Add("asvm.pageout_offers_accepted");
    }
  } else if (stats_ != nullptr) {
    stats_->Add("asvm.pageout_offers_declined");
  }
  Send(src, AsvmMsgType::kPageoutOfferReply, OfferReply{m.object, m.page, accept, m.op_id});
}

void AsvmAgent::OnWriteback(NodeId src, const WritebackMsg& m, PageBuffer data) {
  if (DuplicateDelivery(m.op_id)) {
    return;
  }
  AsvmObjectInfo& info = system_.info(m.object);
  ASVM_CHECK(info.Terminal(m.page) == node_);
  ObjectState& os = obj_state(m.object);
  auto& hp = os.home_pages.GetOrCreate(m.page);
  hp.owner_exists = false;
  hp.last_owner = kInvalidNode;
  hp.version = m.page_version;
  Trace(TraceKind::kWriteback, m.object, m.page, src);
  // This writeback supersedes any promotion-recovered contents, and (dirty,
  // home-backed) is the one durable copy — shadow it to the backup so the
  // contents survive if this home dies next (DESIGN.md §14).
  os.recovered.Erase(m.page);
  os.lost.erase(m.page);
  if (failover_.enabled && m.dirty && !info.IsCopy() && !info.file_backed) {
    MirrorToBackup(m.object, m.page, m.page_version, data);
  }

  auto finish = [this, src, m]() {
    if (src == node_) {
      ResolveOp(m.op_id, Status::kOk);
    } else {
      Send(src, AsvmMsgType::kWritebackAck, OfferReply{m.object, m.page, true, m.op_id});
    }
  };

  // Tell the static ownership manager the page is with the pager now.
  if (system_.config().static_forwarding) {
    const NodeId mgr = system_.StaticManagerOf(info, m.page);
    StaticHintMsg hint{m.object, m.page, StaticHintKind::kPaged, kInvalidNode};
    if (mgr == node_) {
      OnStaticHint(hint);
    } else {
      Send(mgr, AsvmMsgType::kStaticHint, hint);
    }
  }

  if (!m.dirty) {
    // Clean: the backing (or zero-fill origin) still covers the contents.
    finish();
    return;
  }
  if (info.IsCopy()) {
    // Copy objects have no pager of their own: the peer keeps the contents in
    // its paging space, where the pull walk will find them.
    ASVM_CHECK(os.repr != nullptr);
    vm_.default_pager()->WritePage(os.repr->serial(), m.page, std::move(data));
    finish();
    return;
  }
  info.backing->Write(m.page, std::move(data), finish);
}

// --- Push operation and scans (§3.7.2) -------------------------------------------

Task AsvmAgent::PushIfNeeded(MemObjectId id, PageIndex page, PageBuffer pre_write,
                             uint64_t current_version, Promise<uint64_t> new_version) {
  AsvmObjectInfo& info = system_.info(id);
  if (!info.newest_copy.valid() || current_version == info.object_version) {
    new_version.Set(info.object_version);
    co_return;
  }
  const uint64_t target_version = info.object_version;
  const AsvmObjectInfo& copy_info = system_.info(info.newest_copy);
  if (stats_ != nullptr) {
    stats_->Add("asvm.push_operations");
  }
  Trace(TraceKind::kPush, id, page);

  // Push scan: if the copy object is shared, the page may already exist in
  // its space (an earlier pull or push) — then this push is cancelled.
  if (copy_info.sharing.size() > 1) {
    AccessRequest scan;
    scan.target = info.newest_copy;
    scan.search = info.newest_copy;
    scan.page = page;
    scan.access = PageAccess::kRead;
    scan.origin = node_;
    scan.is_push_scan = true;
    scan.req_id = system_.NextOpId(node_);
    Promise<bool> found(vm_.engine());
    scan_waiters_.emplace(scan.req_id, found);
    if (stats_ != nullptr) {
      stats_->Add("asvm.push_scans");
    }
    Trace(TraceKind::kPushScan, info.newest_copy, page);
    HandleRequest(std::move(scan));
    const bool present = co_await found.GetFuture();
    if (present) {
      if (stats_ != nullptr) {
        stats_->Add("asvm.push_cancelled_by_scan");
      }
      new_version.Set(target_version);
      co_return;
    }
  }

  // Local side: if this node holds the copy-chain links, push in place.
  ObjectState& os = obj_state(id);
  if (copy_info.peer == node_ && os.repr != nullptr && os.repr->copy() != nullptr) {
    if (os.repr->FindResident(page) != nullptr) {
      Promise<Status> lock_done(vm_.engine());
      vm_.LockRequest(*os.repr, page, PageAccess::kRead, LockMode::kPushAndLock,
                      [lock_done](LockResult) { lock_done.Set(Status::kOk); });
      co_await lock_done.GetFuture();
    } else {
      vm_.DataSupply(*os.repr, page, ClonePage(pre_write), PageAccess::kRead,
                     SupplyMode::kPushToCopy);
    }
    // The pushed page now lives in the copy object on this node; claim its
    // ownership in the copy space so scans and requests find it.
    ObjectState& cs = obj_state(info.newest_copy);
    if (cs.repr == nullptr || vm_.FindManaged(info.newest_copy) == nullptr) {
      // The copy object may still be a plain local object; state only.
    }
    PageState& cps = page_state(cs, page);
    if (!cps.owner) {
      cps.owner = true;
      cps.access = PageAccess::kRead;
      cps.version = 0;
      cs.home_pages.GetOrCreate(page).owner_exists = true;
    }
  }

  // Remote side: every other node sharing the source pushes/flushes; the
  // newest copy's peer additionally feeds its copy chain.
  std::vector<NodeId> targets;
  for (NodeId s : info.sharing) {
    if (s != node_) {
      targets.push_back(s);
    }
  }
  if (!targets.empty()) {
    const uint64_t op = OpenOp(static_cast<int>(targets.size()), "push-round", id, page);
    if (PendingOp* pending = FindOp(op); pending != nullptr) {
      pending->targets = targets;  // dead sharers resolve kNodeDown, not a wedge
    }
    Future<Status> all_replied = OpFuture(op);
    const NodeId copy_peer = copy_info.peer;
    for (NodeId s : targets) {
      Send(s, AsvmMsgType::kPushRequest,
           PushRequest{id, page, /*push_into_copy=*/s == copy_peer, op});
    }
    ArmOp(op, [this, id, page, op, targets, copy_peer]() {
      const PendingOp* pending = FindOp(op);
      for (NodeId s : targets) {
        if (pending != nullptr &&
            std::find(pending->acked.begin(), pending->acked.end(), s) !=
                pending->acked.end()) {
          continue;
        }
        Send(s, AsvmMsgType::kPushRequest, PushRequest{id, page, s == copy_peer, op});
      }
    });
    co_await all_replied;

    // Second round: ship contents to nodes whose copy chain needs the page.
    PendingOp* pending = FindOp(op);
    std::vector<NodeId> need_data;
    if (pending != nullptr) {
      need_data = std::move(pending->need_data);
      EraseOp(op);
    }
    if (!need_data.empty()) {
      const uint64_t op2 =
          OpenOp(static_cast<int>(need_data.size()), "push-data-round", id, page);
      if (PendingOp* pending2 = FindOp(op2); pending2 != nullptr) {
        pending2->targets = need_data;
      }
      Future<Status> all_acked = OpFuture(op2);
      for (NodeId s : need_data) {
        Send(s, AsvmMsgType::kPushData, PushData{id, page, op2}, ClonePage(pre_write));
      }
      ArmOp(op2, [this, id, page, op2, need_data, pre_write]() {
        const PendingOp* pending2 = FindOp(op2);
        for (NodeId s : need_data) {
          if (pending2 != nullptr &&
              std::find(pending2->acked.begin(), pending2->acked.end(), s) !=
                  pending2->acked.end()) {
            continue;
          }
          Send(s, AsvmMsgType::kPushData, PushData{id, page, op2}, ClonePage(pre_write));
        }
      });
      co_await all_acked;
    }
  }
  new_version.Set(target_version);
}

void AsvmAgent::OnPushRequest(NodeId src, const PushRequest& m) {
  if (DuplicateDelivery(m.op_id)) {
    return;
  }
  ObjectState& os = obj_state(m.object);
  PushReply reply{m.object, m.page, false, false, m.op_id};
  if (os.repr == nullptr) {
    Send(src, AsvmMsgType::kPushReply, reply);
    return;
  }
  const bool resident = os.repr->FindResident(m.page) != nullptr;
  reply.was_resident = resident;
  const bool has_chain = m.push_into_copy && os.repr->copy() != nullptr;

  auto claim_copy_ownership = [this, m]() {
    const AsvmObjectInfo& info = system_.info(m.object);
    ObjectState& cs = obj_state(info.newest_copy);
    PageState& cps = page_state(cs, m.page);
    if (!cps.owner) {
      cps.owner = true;
      cps.access = PageAccess::kRead;
      cps.version = 0;
      cs.home_pages.GetOrCreate(m.page).owner_exists = true;
    }
  };

  if (resident) {
    // Push down the local chain (if present), then invalidate in the source.
    const LockMode mode = has_chain ? LockMode::kPushAndFlush : LockMode::kFlush;
    vm_.LockRequest(*os.repr, m.page, PageAccess::kNone, mode,
                    [this, src, reply, has_chain, claim_copy_ownership](LockResult) {
                      if (has_chain) {
                        claim_copy_ownership();
                      }
                      Send(src, AsvmMsgType::kPushReply, reply);
                    });
    // Our source-page state is gone now.
    if (PageState* src_ps = os.pages.Find(m.page); src_ps != nullptr) {
      src_ps->access = PageAccess::kNone;
      PruneState(os, m.page);
    }
    return;
  }
  if (has_chain) {
    // Ask the initiator for the contents unless the chain already has them.
    VmObject* copy = os.repr->copy().get();
    const bool copy_has =
        copy->FindResident(m.page) != nullptr ||
        vm_.default_pager()->HasPage(copy->serial(), m.page);
    reply.needs_data = !copy_has;
  }
  Send(src, AsvmMsgType::kPushReply, reply);
}

void AsvmAgent::OnPushData(NodeId src, const PushData& m, PageBuffer data) {
  if (DuplicateDelivery(m.op_id)) {
    return;
  }
  ObjectState& os = obj_state(m.object);
  ASVM_CHECK(os.repr != nullptr && os.repr->copy() != nullptr);
  vm_.DataSupply(*os.repr, m.page, std::move(data), PageAccess::kRead,
                 SupplyMode::kPushToCopy);
  const AsvmObjectInfo& info = system_.info(m.object);
  ObjectState& cs = obj_state(info.newest_copy);
  PageState& cps = page_state(cs, m.page);
  if (!cps.owner) {
    cps.owner = true;
    cps.access = PageAccess::kRead;
    cps.version = 0;
    cs.home_pages.GetOrCreate(m.page).owner_exists = true;
  }
  Send(src, AsvmMsgType::kPushDataAck, OfferReply{m.object, m.page, true, m.op_id});
}

// --- Copy creation support -------------------------------------------------------

Future<Status> AsvmAgent::MarkObjectReadOnly(const MemObjectId& id) {
  Promise<Status> done(vm_.engine());
  ObjectState& os = obj_state(id);
  if (os.repr != nullptr) {
    for (auto& [page, vp] : os.repr->resident_pages()) {
      VmPage* p = os.repr->FindResident(page);
      if (p->lock == PageAccess::kWrite) {
        p->lock = PageAccess::kRead;
      }
      if (PageState* sp = os.pages.Find(page);
          sp != nullptr && sp->access == PageAccess::kWrite) {
        sp->access = PageAccess::kRead;
      }
    }
  }
  // One lock_request sweep worth of work.
  vm_.engine().Schedule(vm_.costs().pager_call_ns,
                        [done]() { done.Set(Status::kOk); });
  return done.GetFuture();
}

void AsvmAgent::OnMarkReadOnly(NodeId src, const MarkReadOnly& m) {
  if (DuplicateDelivery(m.op_id)) {
    return;
  }
  Future<Status> f = MarkObjectReadOnly(m.object);
  // Completion is quick and local; ack once done.
  (void)[](AsvmAgent* self, NodeId src, MarkReadOnly m, Future<Status> f) -> Task {
    co_await f;
    self->Send(src, AsvmMsgType::kMarkReadOnlyAck, OfferReply{m.object, 0, true, m.op_id});
  }(this, src, m, f);
}

// --- Dispatcher --------------------------------------------------------------------

void AsvmAgent::OnMessage(NodeId src, Message msg) {
  AsvmBody body = std::get<AsvmBody>(std::move(msg.body));
  // -Werror=switch keeps this dispatcher exhaustive over AsvmMsgType.
  switch (static_cast<AsvmMsgType>(msg.type)) {
    case AsvmMsgType::kAccessRequest:
      HandleRequest(std::get<AccessRequest>(std::move(body)));
      return;
    case AsvmMsgType::kAccessReply:
      OnAccessReply(src, std::get<AccessReply>(body), std::move(msg.page));
      return;
    case AsvmMsgType::kPullDone:
      OnPullDone(std::get<PullDone>(body));
      return;
    case AsvmMsgType::kInvalidate:
      OnInvalidate(src, std::get<InvalidateMsg>(body));
      return;
    case AsvmMsgType::kInvalidateAck:
    case AsvmMsgType::kOwnershipOfferReply:
    case AsvmMsgType::kPageoutOfferReply:
    case AsvmMsgType::kWritebackAck:
    case AsvmMsgType::kPushDataAck:
    case AsvmMsgType::kMarkReadOnlyAck: {
      const auto& reply = std::get<OfferReply>(body);
      if (!reply.accepted &&
          static_cast<AsvmMsgType>(msg.type) != AsvmMsgType::kInvalidateAck) {
        // Offers: a decline resolves the single-shot op with failure.
        ResolveOp(reply.op_id, Status::kUnavailable);
        return;
      }
      AckOp(reply.op_id, src);
      return;
    }
    case AsvmMsgType::kOwnershipOffer:
      OnOwnershipOffer(src, std::get<OwnershipOffer>(body));
      return;
    case AsvmMsgType::kPageoutOffer:
      OnPageoutOffer(src, std::get<PageoutOffer>(body), std::move(msg.page));
      return;
    case AsvmMsgType::kWriteback:
      OnWriteback(src, std::get<WritebackMsg>(body), std::move(msg.page));
      return;
    case AsvmMsgType::kPushRequest:
      OnPushRequest(src, std::get<PushRequest>(body));
      return;
    case AsvmMsgType::kPushReply: {
      const auto& reply = std::get<PushReply>(body);
      PendingOp* op = FindOp(reply.op_id);
      if (op == nullptr) {
        CountDuplicate();  // late reply to a push round that already resolved
        return;
      }
      if (std::find(op->acked.begin(), op->acked.end(), src) != op->acked.end()) {
        CountDuplicate();  // a retry's second reply; need_data already recorded
        return;
      }
      if (reply.needs_data) {
        op->need_data.push_back(src);
      }
      // Keep the op alive on completion: the push coroutine harvests
      // need_data, then erases it.
      AckOp(reply.op_id, src, /*keep_entry=*/true);
      return;
    }
    case AsvmMsgType::kPushData:
      OnPushData(src, std::get<PushData>(body), std::move(msg.page));
      return;
    case AsvmMsgType::kMarkReadOnly:
      OnMarkReadOnly(src, std::get<MarkReadOnly>(body));
      return;
    case AsvmMsgType::kStaticHint:
      OnStaticHint(std::get<StaticHintMsg>(body));
      return;
    case AsvmMsgType::kShadowUpdate: {
      const auto& m = std::get<AsvmShadowUpdate>(body);
      auto& sp = shadow_[m.object][m.page];
      sp.version = m.version;
      sp.data = std::move(msg.page);
      return;
    }
    case AsvmMsgType::kShadowManifest: {
      const auto& m = std::get<AsvmShadowUpdate>(body);
      shadow_manifest_[m.object].insert(m.page);
      return;
    }
  }
  ASVM_CHECK_MSG(false, "unknown ASVM message type");
}

void AsvmAgent::OnInvalidate(NodeId src, const InvalidateMsg& m) {
  if (DuplicateDelivery(m.op_id)) {
    return;  // already invalidated and acked; the initiator dedupes acks too
  }
  ObjectState& os = obj_state(m.object);
  if (os.repr != nullptr && os.repr->FindResident(m.page) != nullptr) {
    vm_.LockRequest(*os.repr, m.page, PageAccess::kNone, LockMode::kFlush,
                    [](LockResult) {});
  }
  if (PageState* inv_ps = os.pages.Find(m.page); inv_ps != nullptr) {
    inv_ps->access = PageAccess::kNone;
    PruneState(os, m.page);
  }
  if (stats_ != nullptr) {
    stats_->Add("asvm.invalidations_received");
  }
  Send(src, AsvmMsgType::kInvalidateAck, OfferReply{m.object, m.page, true, m.op_id});
}

}  // namespace asvm
