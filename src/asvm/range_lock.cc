#include "src/asvm/range_lock.h"

#include "src/asvm/agent.h"
#include "src/common/log.h"

namespace asvm {

// Agent-side hold/release primitives.

bool AsvmAgent::TryHoldPage(const MemObjectId& id, PageIndex page) {
  ObjectState& os = obj_state(id);
  PageState* found = os.pages.Find(page);
  if (found == nullptr) {
    return false;
  }
  PageState& ps = *found;
  if (!ps.owner || !AccessAllows(ps.access, PageAccess::kWrite) || ps.busy) {
    return false;
  }
  if (ps.hold_count++ == 0) {
    ASVM_CHECK(os.repr != nullptr);
    vm_.WirePage(*os.repr, page);
    if (stats_ != nullptr) {
      stats_->Add("asvm.range_lock_holds");
    }
  }
  return true;
}

void AsvmAgent::ReleasePage(const MemObjectId& id, PageIndex page) {
  ObjectState& os = obj_state(id);
  PageState* found = os.pages.Find(page);
  if (found == nullptr || !found->held()) {
    return;
  }
  PageState& ps = *found;
  if (--ps.hold_count > 0) {
    return;  // another local holder remains
  }
  ASVM_CHECK(os.repr != nullptr);
  vm_.UnwirePage(*os.repr, page);
  // Serve whatever queued behind the lock.
  std::deque<AccessRequest> queued;
  queued.swap(ps.queue);
  for (auto& q : queued) {
    HandleRequest(std::move(q));
  }
}

// Service API.

Future<Status> RangeLockService::Acquire(NodeId node, TaskMemory& mem, const MemObjectId& id,
                                         VmOffset addr, VmSize len) {
  Promise<Status> done(system_.cluster().engine_for(node));
  (void)AcquireTask(node, mem, id, addr, len, done);
  return done.GetFuture();
}

Task RangeLockService::AcquireTask(NodeId node, TaskMemory& mem, MemObjectId id, VmOffset addr,
                                   VmSize len, Promise<Status> done) {
  Engine& engine = system_.cluster().engine_for(node);
  AsvmAgent& agent = system_.agent(node);
  const size_t ps = mem.map().page_size();
  const VmOffset first = addr / ps;
  const VmOffset last = len == 0 ? first : (addr + len - 1) / ps;
  // Ascending page order: overlapping acquisitions on different nodes cannot
  // deadlock (both block on the lowest contested page).
  for (VmOffset page = first; page <= last; ++page) {
    for (int attempt = 0;; ++attempt) {
      ASVM_CHECK_MSG(attempt < 10000, "range lock acquisition livelocked");
      Status s = co_await mem.Touch(page * ps, 1, PageAccess::kWrite);
      if (!IsOk(s)) {
        done.Set(s);
        co_return;
      }
      if (agent.TryHoldPage(id, static_cast<PageIndex>(page))) {
        break;
      }
      // Lost the ownership race (or a transition is settling); retry.
      co_await Delay(engine, 100 * kMicrosecond);
    }
  }
  done.Set(Status::kOk);
}

void RangeLockService::Release(NodeId node, const MemObjectId& id, VmOffset addr, VmSize len,
                               size_t page_size) {
  AsvmAgent& agent = system_.agent(node);
  const VmOffset first = addr / page_size;
  const VmOffset last = len == 0 ? first : (addr + len - 1) / page_size;
  for (VmOffset page = first; page <= last; ++page) {
    agent.ReleasePage(id, static_cast<PageIndex>(page));
  }
}

}  // namespace asvm
