// ASVM protocol messages. On the wire each is a fixed 32-byte untyped control
// block, optionally followed by one page of contents (paper §3.1, "Specialized
// Communication Protocol"); here the bodies are typed structs carried through
// the STS transport.
#ifndef SRC_ASVM_MESSAGES_H_
#define SRC_ASVM_MESSAGES_H_

#include <cstdint>
#include <variant>
#include <vector>

#include "src/common/types.h"

namespace asvm {

enum class AsvmMsgType : uint32_t {
  kAccessRequest = 1,   // find the page owner and obtain access
  kAccessReply,         // grant (data / zero-fill / upgrade / retry)
  kPullDone,            // origin -> terminal node: first-touch grant landed
  kInvalidate,          // owner -> reader
  kInvalidateAck,
  kOwnershipOffer,      // eviction step 2: pass ownership to a reader (no data)
  kOwnershipOfferReply,
  kPageoutOffer,        // eviction step 3: move the page to another sharer
  kPageoutOfferReply,
  kWriteback,           // eviction step 4: return the page to the pager (home)
  kWritebackAck,
  kPushRequest,         // push initiator -> sharing node (lock_request w/ mode)
  kPushReply,
  kPushData,            // initiator -> copy peer: contents for the copy chain
  kPushDataAck,
  kMarkReadOnly,        // copy creation: downgrade resident source pages
  kMarkReadOnlyAck,
  kStaticHint,          // maintain a static ownership-manager cache entry
  kShadowUpdate,        // failover: home -> backup, newest written-back page
  kShadowManifest,      // failover: home -> witness, "this page was committed"
};

// What a static ownership manager may know about a page (paper §3.4).
enum class StaticHintKind : uint8_t {
  kOwner,  // a node is believed to own the page
  kFresh,  // the page has never been initialized
  kPaged,  // the page has been written back to the pager
};

struct AccessRequest {
  MemObjectId target;       // object the origin faulted on (supply goes here)
  MemObjectId search;       // object space currently being searched
  PageIndex page = kInvalidPage;
  PageAccess access = PageAccess::kRead;
  NodeId origin = kInvalidNode;
  bool is_push_scan = false;  // query only: does the page exist in this space?
  // The node serializing a first-touch grant for this request's target space;
  // the eventual reply carries it back so the origin can report completion.
  NodeId terminal = kInvalidNode;
  // Set when the request was explicitly routed to the forwarding terminal
  // (pager/peer); the terminal then serves instead of re-routing.
  bool to_terminal = false;
  int hops = 0;
  // Global-forwarding (ring) state.
  bool ring = false;
  int ring_pos = 0;    // index into sharing list of `search`
  int ring_left = 0;   // nodes still to visit
  uint64_t req_id = 0;  // for tracing/stats
};

struct AccessReply {
  MemObjectId target;
  PageIndex page = kInvalidPage;
  PageAccess granted = PageAccess::kNone;
  bool ownership = false;
  bool zero_fill = false;   // no payload; zero-fill with `granted` lock
  bool upgrade = false;     // no payload; raise existing lock
  bool retry = false;       // push/pull race: re-issue the request
  bool is_scan = false;     // reply to a push-scan (routed via req_id)
  bool scan_found = false;  // push-scan outcome
  // Failover: the page was committed (written back) but its home and every
  // replica died before promotion could fold it in — the fault must fail
  // Status::kDataLost instead of silently zero-filling (DESIGN.md §14).
  bool lost = false;
  uint64_t req_id = 0;
  uint64_t page_version = 0;
  NodeId terminal = kInvalidNode;  // node that serialized a first-touch grant
  std::vector<NodeId> readers;     // reader list handed over with ownership
};

struct InvalidateMsg {
  MemObjectId object;
  PageIndex page;
  uint64_t op_id;
};

struct OwnershipOffer {
  MemObjectId object;
  PageIndex page;
  uint64_t page_version;
  std::vector<NodeId> readers;  // remaining readers if the offer is accepted
  uint64_t op_id;
};

struct OfferReply {
  MemObjectId object;
  PageIndex page;
  bool accepted;
  uint64_t op_id;
};

struct PageoutOffer {
  MemObjectId object;
  PageIndex page;
  uint64_t page_version;
  bool dirty;
  uint64_t op_id;
};

struct WritebackMsg {
  MemObjectId object;
  PageIndex page;
  uint64_t page_version;
  bool dirty;
  uint64_t op_id;
};

struct PushRequest {
  MemObjectId object;  // source object
  PageIndex page;
  bool push_into_copy;  // true only at the newest copy's peer node
  uint64_t op_id;
};

// Reply to PushRequest.
struct PushReply {
  MemObjectId object;
  PageIndex page;
  bool was_resident;   // source page was cached (pushed/flushed as asked)
  bool needs_data;     // copy chain present but page absent: send contents
  uint64_t op_id;
};

struct PushData {
  MemObjectId object;  // source object (supply uses push mode)
  PageIndex page;
  uint64_t op_id;
};

struct MarkReadOnly {
  MemObjectId object;
  uint64_t op_id;
};

struct StaticHintMsg {
  MemObjectId object;
  PageIndex page;
  StaticHintKind kind;
  NodeId owner;  // kOwner only
};

struct PullDone {
  MemObjectId target;
  PageIndex page;
  NodeId new_owner;
};

// Failover (DESIGN.md §14): the home streams each written-back dirty page to
// its backup (first alive ring successor). The backup keeps the newest buffer
// per page; at promotion the store seeds the new home's recovered-page
// overlay, standing in for the paging space that died with the old home.
// The same body (without the page payload) rides kShadowManifest to the
// *second* alive successor — a witness record that the page was committed, so
// a promotion that finds neither a surviving owner nor shadow data can tell
// "never written" (zero-fill) apart from "written and lost" (kDataLost).
struct AsvmShadowUpdate {
  MemObjectId object;
  PageIndex page = kInvalidPage;
  uint64_t version = 0;  // the writeback's page version
};

// The typed envelope body for the ASVM protocol: exactly one alternative per
// distinct wire format. Several message types share a format (the six ack
// types all carry an OfferReply; the receiver disambiguates on the type tag).
// Dispatch is an exhaustive std::visit — adding an alternative without a
// handler fails to compile.
using AsvmBody =
    std::variant<AccessRequest, AccessReply, InvalidateMsg, OwnershipOffer, OfferReply,
                 PageoutOffer, WritebackMsg, PushRequest, PushReply, PushData, MarkReadOnly,
                 StaticHintMsg, PullDone, AsvmShadowUpdate>;

// Stats/debug label for each message type. The switch is exhaustive and the
// build carries -Werror=switch: adding an AsvmMsgType value without extending
// this table fails to compile.
constexpr const char* MsgTypeName(AsvmMsgType type) {
  switch (type) {
    case AsvmMsgType::kAccessRequest:
      return "access_request";
    case AsvmMsgType::kAccessReply:
      return "access_reply";
    case AsvmMsgType::kPullDone:
      return "pull_done";
    case AsvmMsgType::kInvalidate:
      return "invalidate";
    case AsvmMsgType::kInvalidateAck:
      return "invalidate_ack";
    case AsvmMsgType::kOwnershipOffer:
      return "ownership_offer";
    case AsvmMsgType::kOwnershipOfferReply:
      return "ownership_offer_reply";
    case AsvmMsgType::kPageoutOffer:
      return "pageout_offer";
    case AsvmMsgType::kPageoutOfferReply:
      return "pageout_offer_reply";
    case AsvmMsgType::kWriteback:
      return "writeback";
    case AsvmMsgType::kWritebackAck:
      return "writeback_ack";
    case AsvmMsgType::kPushRequest:
      return "push_request";
    case AsvmMsgType::kPushReply:
      return "push_reply";
    case AsvmMsgType::kPushData:
      return "push_data";
    case AsvmMsgType::kPushDataAck:
      return "push_data_ack";
    case AsvmMsgType::kMarkReadOnly:
      return "mark_read_only";
    case AsvmMsgType::kMarkReadOnlyAck:
      return "mark_read_only_ack";
    case AsvmMsgType::kStaticHint:
      return "static_hint";
    case AsvmMsgType::kShadowUpdate:
      return "shadow_update";
    case AsvmMsgType::kShadowManifest:
      return "shadow_manifest";
  }
  return "unknown";
}

}  // namespace asvm

#endif  // SRC_ASVM_MESSAGES_H_
