// The Advanced Shared Virtual Memory system (the paper's contribution):
// distributed dynamic page ownership with layered forwarding (dynamic hints →
// static ownership managers → global scan), internode paging, and delayed-copy
// management over the STS transport.
//
// AsvmSystem owns one AsvmAgent per node plus the object directory. The
// directory holds configuration-level facts about each object (home, peer,
// sharing set, copy-chain shape, version counter) that the real system kept
// replicated via its setup protocol; holding them centrally is a simulation
// convenience and is never consulted for page-level state, which lives
// strictly per node in the agents.
#ifndef SRC_ASVM_ASVM_SYSTEM_H_
#define SRC_ASVM_ASVM_SYSTEM_H_

#include <memory>
#include <set>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/asvm/messages.h"
#include "src/common/trace.h"
#include "src/common/types.h"
#include "src/dsm/backing.h"
#include "src/dsm/cluster.h"
#include "src/dsm/dsm_system.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace asvm {

class AsvmAgent;
class ClusterWaitGroup;

struct AsvmConfig {
  bool dynamic_forwarding = true;
  bool static_forwarding = true;
  size_t dyn_cache_capacity = 1024;     // owner hints per object per node
  size_t static_cache_capacity = 4096;  // static-manager cache per object
  size_t pageout_min_free_frames = 4;   // accept threshold for pageout offers
  // Step 2/3 of the eviction algorithm (§3.6). Disabling falls straight
  // through to the pager — the ablation showing why internode paging matters.
  bool internode_paging = true;
  // Run the ASVM protocol over NORMA-IPC instead of the dedicated STS — the
  // §3.1 "Dedicated Transport Service" ablation.
  bool use_norma_transport = false;
  SimDuration agent_process_ns = 60 * kMicrosecond;  // per-message handling
};

// Directory record for one distributed memory object.
struct AsvmObjectInfo {
  MemObjectId id;
  VmSize pages = 0;
  NodeId home = kInvalidNode;       // where the backing pager runs
  NodeId peer = kInvalidNode;       // copy objects: node holding the VM links
  MemObjectId shadow;               // copy objects: the source object
  MemObjectId newest_copy;          // source side: current copy-epoch head
  uint64_t object_version = 0;      // bumped on each copy creation
  std::vector<NodeId> sharing;      // nodes with a local representation
  std::unique_ptr<ObjectBacking> backing;  // null for copy objects
  // File/striped regions survive a home's death in external storage — failover
  // re-homes them without shadow replication. Anonymous regions do not; their
  // homes stream written-back pages to a backup (DESIGN.md §14).
  bool file_backed = false;
  // Failover epoch: bumped on every promotion of this object's home role(s).
  // The directory (terminal assignments stamped by this epoch) is the fence
  // against stale ex-managers after a cascade: a request that reaches a node
  // the current epoch no longer names re-routes instead of being served with
  // stale authority.
  uint64_t epoch = 0;

  // §6 striped regions: one forwarding terminal per stripe (page p belongs
  // to stripe_homes[p % k]); empty for ordinary objects.
  std::vector<NodeId> stripe_homes;

  bool IsCopy() const { return shadow.valid(); }
  // The terminal of request forwarding when no owner exists: the pager (home)
  // for backed objects — per stripe for striped ones — and the peer node
  // (shadow-chain walk) for copies.
  NodeId Terminal(PageIndex page) const {
    if (IsCopy()) {
      return peer;
    }
    if (!stripe_homes.empty()) {
      return stripe_homes[static_cast<size_t>(page) % stripe_homes.size()];
    }
    return home;
  }
};

class AsvmSystem : public DsmSystem {
 public:
  AsvmSystem(Cluster& cluster, AsvmConfig config = {});
  ~AsvmSystem() override;

  std::string_view name() const override { return "asvm"; }

  MemObjectId CreateSharedRegion(NodeId home, VmSize pages) override;
  MemObjectId CreateFileRegion(int32_t file_id, VmSize pages) override;
  MemObjectId CreateStripedRegion(const std::vector<StripedBacking::Stripe>& stripes,
                                  VmSize pages) override;
  std::shared_ptr<VmObject> Attach(NodeId node, const MemObjectId& id) override;
  Future<VmMap*> RemoteFork(NodeId src, VmMap& parent, NodeId dst) override;
  size_t MetadataBytes(NodeId node) const override;

  Cluster& cluster() override { return cluster_; }
  const AsvmConfig& config() const { return config_; }
  AsvmAgent& agent(NodeId node) { return *agents_.at(node); }

  // System-level monitoring, now machine-wide: the monitor attaches to the
  // cluster's shared sink, so transport/mesh/disk events arrive alongside the
  // ASVM protocol events (nullptr detaches).
  void AttachMonitor(ProtocolMonitor* monitor) { cluster_.AttachMonitor(monitor); }
  ProtocolMonitor* monitor() const { return cluster_.monitor(); }

  // --- Directory -------------------------------------------------------------

  AsvmObjectInfo& info(const MemObjectId& id);
  const AsvmObjectInfo* FindInfo(const MemObjectId& id) const;

  // The static ownership manager of (object, page): a fixed function over the
  // nodes sharing the object (paper §3.4, "static forwarding").
  NodeId StaticManagerOf(const AsvmObjectInfo& info, PageIndex page) const;

  // Registers `node` as a sharer (idempotent).
  void AddSharer(AsvmObjectInfo& info, NodeId node);

  // Exports a node-local anonymous object as a distributed object: assigns an
  // identity, registers the local agent as its manager, and marks existing
  // resident pages as owned by `node`.
  MemObjectId ExportObject(NodeId node, const std::shared_ptr<VmObject>& object);

  // Creates a copy-object identity for a delayed copy of `source` whose VM
  // links live on `peer`; bumps the source's version and maintains the copy
  // chain (older epoch re-linked through the new one).
  MemObjectId RegisterCopy(const MemObjectId& source, NodeId peer, VmSize pages);

  MemObjectId NewObjectId(NodeId origin) {
    return MemObjectId{origin, next_seq_++};
  }

  // --- Failover (DESIGN.md §14) ---------------------------------------------

  // Re-homes `id` if its forwarding terminal(s) are confirmed dead: each dead
  // home (or dead stripe home) moves to its first alive ring successor, the
  // home-role directory is rebuilt from surviving owners' page state, and the
  // backup's shadow store seeds the recovered-page overlay for pages whose
  // only copy died with the old home. Idempotent; must run as a cluster
  // mutation (all shards at a barrier). Copy objects are out of scope — their
  // peer holds unreplicated VM links.
  void PromoteIfHomeDead(const MemObjectId& id);

  // Gossip death notification (DESIGN.md §14): the first agent to classify a
  // silent peer kNodeDown reports it here; a barrier-ordered mutation then
  // fans the death out to every surviving agent, which fails its own pending
  // ops against the victim immediately (no second retry horizon) and
  // re-targets any shadow stream aimed at it. One notice per death.
  void ReportDeath(NodeId reporter, NodeId dead) override;

  // Owner-death reconstruction: reclaims (object, page) from its confirmed-
  // dead, lease-expired owner and seeds the home's recovered overlay with the
  // newest surviving read copy (survivors' now-untracked copies are dropped
  // so a future writer cannot leave them stale). Idempotent; must run as a
  // cluster mutation — it reads and edits other kernels' page tables.
  void ReclaimDeadOwnerPage(const MemObjectId& id, PageIndex page);

  // Rejoin support: `node` restarts with empty caches. Clears its page/hint/
  // terminal/shadow state in place (reference-stable: suspended coroutines may
  // hold entry references), purges its resident pages, and drops home records
  // attributed to it at surviving terminals. Must run as a cluster mutation.
  void ColdRestart(NodeId node) override;

 private:
  Task RemoteForkTask(NodeId src, VmMap& parent, NodeId dst, Promise<VmMap*> done);
  // The structural half of a fork — directory inserts, child map build, copy
  // registration, read-only broadcast launch. Runs as ONE cluster mutation at
  // a deterministic sequencing point (src/dsm/cluster_mutator.h), so sharded
  // runs fork byte-identically to single-threaded ones.
  VmMap* ApplyRemoteFork(NodeId src, VmMap& parent, NodeId dst, ClusterWaitGroup& ro_done);

  // Applies one gossiped death at a barrier: dedup, then survivor fan-out.
  void ApplyDeathNotice(NodeId dead);

  // Keys for anonymous backing in the home's paging space; the high bit keeps
  // them disjoint from local VM object serials.
  uint64_t NextBackingKey() { return (1ULL << 63) | next_backing_key_++; }

  Cluster& cluster_;
  AsvmConfig config_;
  std::vector<std::unique_ptr<AsvmAgent>> agents_;
  std::unordered_map<MemObjectId, std::unique_ptr<AsvmObjectInfo>> directory_;
  uint32_t next_seq_ = 1;
  // Per-system (not process-global) so that identical machines allocate
  // identical paging-space positions — traces must be byte-stable run to run.
  uint64_t next_backing_key_ = 0;
  // Nodes whose death has already been gossiped (first notice wins).
  // ColdRestart removes rejoined nodes so a second death is noticed afresh.
  std::set<NodeId> death_noticed_;
};

}  // namespace asvm

#endif  // SRC_ASVM_ASVM_SYSTEM_H_
