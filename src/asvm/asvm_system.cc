#include "src/asvm/asvm_system.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "src/asvm/agent.h"
#include "src/common/log.h"
#include "src/dsm/cluster_sync.h"
#include "src/dsm/failover.h"

namespace asvm {

AsvmSystem::AsvmSystem(Cluster& cluster, AsvmConfig config)
    : cluster_(cluster), config_(config) {
  InitOpIds(cluster.node_count());
  agents_.reserve(cluster.node_count());
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    agents_.push_back(std::make_unique<AsvmAgent>(*this, n));
  }
}

AsvmSystem::~AsvmSystem() = default;

AsvmObjectInfo& AsvmSystem::info(const MemObjectId& id) {
  auto it = directory_.find(id);
  ASVM_CHECK_MSG(it != directory_.end(), "unknown ASVM object");
  return *it->second;
}

const AsvmObjectInfo* AsvmSystem::FindInfo(const MemObjectId& id) const {
  auto it = directory_.find(id);
  return it == directory_.end() ? nullptr : it->second.get();
}

NodeId AsvmSystem::StaticManagerOf(const AsvmObjectInfo& info, PageIndex page) const {
  if (info.sharing.empty()) {
    return info.Terminal(page);
  }
  return info.sharing[static_cast<size_t>(page) % info.sharing.size()];
}

void AsvmSystem::AddSharer(AsvmObjectInfo& info, NodeId node) {
  if (std::find(info.sharing.begin(), info.sharing.end(), node) == info.sharing.end()) {
    info.sharing.push_back(node);
  }
}

MemObjectId AsvmSystem::CreateSharedRegion(NodeId home, VmSize pages) {
  cluster_.AssertDriverQuiescent("ASVM CreateSharedRegion from inside a shard window");
  MemObjectId id = NewObjectId(home);
  auto info = std::make_unique<AsvmObjectInfo>();
  info->id = id;
  info->pages = pages;
  info->home = home;
  info->backing = std::make_unique<AnonBacking>(cluster_.engine_for(home),
                                                cluster_.default_pager(home), NextBackingKey());
  directory_[id] = std::move(info);
  return id;
}

MemObjectId AsvmSystem::CreateFileRegion(int32_t file_id, VmSize pages) {
  cluster_.AssertDriverQuiescent("ASVM CreateFileRegion from inside a shard window");
  FilePager& pager = cluster_.file_pager();
  MemObjectId id = NewObjectId(pager.node());
  auto info = std::make_unique<AsvmObjectInfo>();
  info->id = id;
  info->pages = pages;
  info->home = pager.node();
  info->file_backed = true;
  info->backing = std::make_unique<FileBacking>(pager, file_id);
  directory_[id] = std::move(info);
  return id;
}

MemObjectId AsvmSystem::CreateStripedRegion(const std::vector<StripedBacking::Stripe>& stripes,
                                            VmSize pages) {
  cluster_.AssertDriverQuiescent("ASVM CreateStripedRegion from inside a shard window");
  ASVM_CHECK(!stripes.empty());
  MemObjectId id = NewObjectId(stripes[0].pager->node());
  auto info = std::make_unique<AsvmObjectInfo>();
  info->id = id;
  info->pages = pages;
  info->home = stripes[0].pager->node();
  for (const auto& stripe : stripes) {
    info->stripe_homes.push_back(stripe.pager->node());
  }
  info->file_backed = true;
  info->backing = std::make_unique<StripedBacking>(stripes);
  directory_[id] = std::move(info);
  return id;
}

std::shared_ptr<VmObject> AsvmSystem::Attach(NodeId node, const MemObjectId& id) {
  return agent(node).Attach(id);
}

MemObjectId AsvmSystem::ExportObject(NodeId node, const std::shared_ptr<VmObject>& object) {
  cluster_.AssertDriverQuiescent("ASVM ExportObject from inside a shard window");
  if (object->managed()) {
    return object->id();
  }
  MemObjectId id = NewObjectId(node);
  auto info = std::make_unique<AsvmObjectInfo>();
  info->id = id;
  info->pages = object->page_count();
  info->home = node;
  info->backing = std::make_unique<AnonBacking>(cluster_.engine_for(node),
                                                cluster_.default_pager(node), NextBackingKey());
  directory_[id] = std::move(info);

  AsvmAgent& a = agent(node);
  a.AdoptRepr(id, object);
  // Existing resident pages are now owned by the exporting node.
  AsvmAgent::ObjectState& os = a.obj_state(id);
  for (const auto& [page, vp] : object->resident_pages()) {
    AsvmAgent::PageState& ps = a.page_state(os, page);
    ps.owner = true;
    ps.access = AccessAllows(vp.lock, PageAccess::kWrite) ? PageAccess::kWrite
                                                          : PageAccess::kRead;
    ps.version = 0;
    auto& hp = os.home_pages.GetOrCreate(page);
    hp.owner_exists = true;
    hp.last_owner = node;
  }
  cluster_.stats().Add("asvm.exports");
  return id;
}

MemObjectId AsvmSystem::RegisterCopy(const MemObjectId& source, NodeId peer, VmSize pages) {
  cluster_.AssertDriverQuiescent("ASVM RegisterCopy from inside a shard window");
  AsvmObjectInfo& src_info = info(source);
  MemObjectId copy_id = NewObjectId(peer);
  auto copy_info = std::make_unique<AsvmObjectInfo>();
  copy_info->id = copy_id;
  copy_info->pages = pages;
  copy_info->home = peer;  // unused for copies; Terminal() uses peer
  copy_info->peer = peer;
  copy_info->shadow = source;
  directory_[copy_id] = std::move(copy_info);

  // New copies enter the chain immediately after the source; the previous
  // newest copy now reads through the fresh one (§2.2 / §3.7).
  const MemObjectId old_copy = src_info.newest_copy;
  if (old_copy.valid()) {
    AsvmObjectInfo& old_info = info(old_copy);
    old_info.shadow = copy_id;
    // Re-link the old copy's VM shadow on its peer node through a local
    // representation of the new copy.
    AsvmAgent& old_peer_agent = agent(old_info.peer);
    AsvmAgent::ObjectState* old_os = old_peer_agent.FindObjState(old_copy);
    if (old_os != nullptr && old_os->repr != nullptr) {
      old_os->repr->set_shadow(old_peer_agent.Attach(copy_id));
    }
  }
  src_info.newest_copy = copy_id;
  ++src_info.object_version;
  cluster_.stats().Add("asvm.copies_created");
  return copy_id;
}

Future<VmMap*> AsvmSystem::RemoteFork(NodeId src, VmMap& parent, NodeId dst) {
  // Forks mutate the directory mid-run; arm the mutation API before the first
  // drain so the cluster runs on the windowed, mutation-aware schedule.
  cluster_.mutator().Arm();
  Promise<VmMap*> done(cluster_.engine_for(src));
  (void)RemoteForkTask(src, parent, dst, done);
  return done.GetFuture();
}

Task AsvmSystem::RemoteForkTask(NodeId src, VmMap& parent, NodeId dst, Promise<VmMap*> done) {
  Engine& engine = cluster_.engine_for(src);
  // Task-creation control traffic (map description shipped to the child).
  co_await Delay(engine, 300 * kMicrosecond);
  // All structural work — directory inserts, child map construction, copy
  // registration — touches cluster-wide state, so it runs as one mutation at
  // the next deterministic sequencing point (every engine quiescent), one
  // lookahead after this instant.
  auto ro_done = std::make_shared<ClusterWaitGroup>(cluster_);
  Promise<VmMap*> built(engine);
  VmMap* parent_ptr = &parent;
  cluster_.mutator().Enqueue(src, [this, src, parent_ptr, dst, ro_done, built]() {
    built.Set(ApplyRemoteFork(src, *parent_ptr, dst, *ro_done));
  });
  VmMap* child = co_await built.GetFuture();
  // The read-only broadcast acks complete on their own nodes' engines; join
  // them before reporting the fork done.
  co_await ro_done->Wait(src);
  done.Set(child);
}

VmMap* AsvmSystem::ApplyRemoteFork(NodeId src, VmMap& parent, NodeId dst,
                                   ClusterWaitGroup& ro_done) {
  cluster_.stats().Add("asvm.remote_forks");
  NodeVm& dst_vm = cluster_.vm(dst);
  VmMap* child = dst_vm.CreateMap();

  for (auto& [start, entry] : parent.entries()) {
    if (entry.inheritance == Inheritance::kNone) {
      continue;
    }
    if (entry.inheritance == Inheritance::kShare) {
      MemObjectId id = ExportObject(src, entry.object);
      auto repr = Attach(dst, id);
      Status s = child->Map(entry.start_page, entry.page_count, repr, entry.object_offset,
                            entry.inheritance);
      ASVM_CHECK(IsOk(s));
      continue;
    }
    // Delayed copy across nodes (§3.7, Figure 8): share the source on the
    // destination, create the copy through the standard VM mechanisms there,
    // then mark resident source pages read-only everywhere.
    MemObjectId source_id = ExportObject(src, entry.object);
    AsvmObjectInfo& src_info = info(source_id);
    std::shared_ptr<VmObject> src_repr = Attach(dst, source_id);
    MemObjectId copy_id = RegisterCopy(source_id, dst, entry.object->page_count());
    std::shared_ptr<VmObject> copy_obj = dst_vm.CreateAsymmetricCopy(src_repr);
    // The copy object is the peer-side representation; registering it as
    // managed keeps its identity stable across further forks.
    agent(dst).AdoptRepr(copy_id, copy_obj);

    Status s = child->Map(entry.start_page, entry.page_count, copy_obj, entry.object_offset,
                          Inheritance::kCopy);
    ASVM_CHECK(IsOk(s));

    // Broadcast: downgrade all resident pages of the source to read-only.
    // The downgrades run synchronously here (the machine is quiescent); their
    // completion acks arrive on each sharer's engine and join through the
    // fork-wide cluster wait group.
    for (NodeId sharer : src_info.sharing) {
      if (sharer == dst) {
        // The new sharer has nothing resident yet.
        continue;
      }
      ro_done.Add();
      Future<Status> f = agent(sharer).MarkObjectReadOnly(source_id);
      (void)[](Future<Status> f, ClusterWaitGroup* wg, NodeId sharer) -> Task {
        co_await f;
        wg->Done(sharer);
      }(f, &ro_done, sharer);
      // Wire cost of the broadcast message.
      if (sharer != src) {
        cluster_.stats().Add("asvm.mark_readonly_msgs");
      }
    }
  }
  return child;
}

size_t AsvmSystem::MetadataBytes(NodeId node) const {
  return agents_.at(node)->MetadataBytes();
}

// --- Failover ----------------------------------------------------------------

void AsvmSystem::PromoteIfHomeDead(const MemObjectId& id) {
  cluster_.AssertDriverQuiescent("ASVM promotion from inside a shard window");
  FaultPlan* plan = cluster_.fault_plan();
  const SimTime now = cluster_.Now();
  AsvmObjectInfo& obj = info(id);
  if (plan == nullptr || obj.IsCopy()) {
    // Copy objects are out of failover scope: their peer holds unreplicated
    // VM shadow links that cannot be reconstructed from surviving state.
    return;
  }

  // Snapshot every page's forwarding terminal before touching the directory —
  // the rebuild below needs to know which pages actually moved.
  std::vector<NodeId> old_term(obj.pages);
  for (PageIndex p = 0; p < static_cast<PageIndex>(obj.pages); ++p) {
    old_term[static_cast<size_t>(p)] = obj.Terminal(p);
  }

  // Replace each dead home with its first alive ring successor. For striped
  // regions every dead stripe home moves independently; the stripes' external
  // storage survives, so only the forwarding role transfers.
  std::vector<std::pair<NodeId, NodeId>> moves;  // old home -> new home
  auto move_home = [&](NodeId& home) {
    if (plan->NodeAlive(home, now)) {
      return;  // an earlier mutation this barrier already promoted (idempotent)
    }
    const NodeId next = RingSuccessor(home, cluster_.node_count(), plan, now);
    ASVM_CHECK_MSG(next != kInvalidNode, "no surviving node to promote");
    bool seen = false;
    for (const auto& mv : moves) {
      seen = seen || mv.first == home;
    }
    if (!seen) {
      moves.emplace_back(home, next);
    }
    home = next;
  };
  if (obj.stripe_homes.empty()) {
    move_home(obj.home);
    if (!moves.empty() && !obj.file_backed) {
      // The old paging space died with the home. Fresh anonymous backing on
      // the promoted node; the shadow store stands in for every dirty page
      // the old home had written back into it.
      obj.backing = std::make_unique<AnonBacking>(cluster_.engine_for(obj.home),
                                                  cluster_.default_pager(obj.home),
                                                  NextBackingKey());
    }
  } else {
    for (NodeId& sh : obj.stripe_homes) {
      move_home(sh);
    }
  }
  if (moves.empty()) {
    return;
  }
  // Epoch fencing: the directory's terminal assignments now carry a newer
  // epoch; anything still in flight toward an ex-manager re-routes through
  // the directory (see HandleAtTerminal) instead of being served stale.
  ++obj.epoch;

  // Rebuild the home-role directory for the pages that moved: reset the new
  // terminal's records, then let every surviving owner re-assert itself.
  // Nodes and pages are visited in ascending order and per-page assignments
  // are independent, so shard count cannot leak into the result.
  auto moved = [&](PageIndex p) {
    return old_term[static_cast<size_t>(p)] != obj.Terminal(p);
  };
  for (PageIndex p = 0; p < static_cast<PageIndex>(obj.pages); ++p) {
    if (!moved(p)) {
      continue;
    }
    AsvmAgent::ObjectState& hs = agent(obj.Terminal(p)).obj_state(id);
    hs.home_pages.Erase(p);
    hs.terminal.Erase(p);
    hs.recovered.Erase(p);
    hs.lost.erase(p);
  }
  for (NodeId n = 0; n < cluster_.node_count(); ++n) {
    if (!plan->NodeAlive(n, now)) {
      continue;
    }
    AsvmAgent::ObjectState* os = agent(n).FindObjState(id);
    if (os == nullptr) {
      continue;
    }
    os->pages.ForEach([&](PageIndex p, const AsvmAgent::PageState& ps) {
      if (!ps.owner || !moved(p)) {
        return;
      }
      auto& hp = agent(obj.Terminal(p)).obj_state(id).home_pages.GetOrCreate(p);
      hp.owner_exists = true;
      hp.last_owner = n;
      hp.version = ps.version;
    });
  }

  // Owner-death reconstruction: a moved page with no surviving owner may
  // still live on as untracked read copies (its owner died holding the reader
  // list). Harvest the newest surviving copy into the new terminal's
  // recovered overlay, then drop the survivors' copies — no owner tracks them
  // anymore, so a future writer could never invalidate them. A harvested copy
  // postdates any shadowed writeback, so this pass runs before the fold.
  if (!obj.file_backed) {
    for (PageIndex p = 0; p < static_cast<PageIndex>(obj.pages); ++p) {
      if (!moved(p)) {
        continue;
      }
      AsvmAgent::ObjectState& hs = agent(obj.Terminal(p)).obj_state(id);
      if (const auto* hp = hs.home_pages.Find(p); hp != nullptr && hp->owner_exists) {
        continue;
      }
      PageBuffer best;
      uint64_t best_version = 0;
      for (NodeId n = 0; n < cluster_.node_count(); ++n) {
        if (!plan->NodeAlive(n, now)) {
          continue;
        }
        AsvmAgent::ObjectState* ros = agent(n).FindObjState(id);
        if (ros == nullptr || ros->repr == nullptr) {
          continue;
        }
        AsvmAgent::PageState* ps = ros->pages.Find(p);
        if (ps == nullptr || ps->owner || ps->busy || ps->held() ||
            ps->access == PageAccess::kNone) {
          continue;
        }
        VmPage* vp = ros->repr->FindResident(p);
        if (vp == nullptr) {
          continue;
        }
        if (best == nullptr || ps->version > best_version) {
          best_version = ps->version;
          best = ClonePage(vp->data);
        }
        cluster_.vm(n).RemovePage(*ros->repr, p);
        ps->access = PageAccess::kNone;
        agent(n).PruneState(*ros, p);
      }
      if (best != nullptr) {
        auto& rp = hs.recovered.GetOrCreate(p);
        rp.data = std::move(best);
        rp.version = best_version;
        hs.home_pages.GetOrCreate(p).version = best_version;
        cluster_.stats().Add(kStatReconstructedPages);
      }
    }
  }

  // Pages whose only copy died with the old home (written back, no surviving
  // owner or read copy): a survivor's shadow store seeds the recovered-page
  // overlay. Every alive store is consulted — a re-targeted stream may have
  // left the newest entry somewhere other than the promoted node — and the
  // consumed entries are erased everywhere.
  if (!obj.file_backed) {
    for (PageIndex p = 0; p < static_cast<PageIndex>(obj.pages); ++p) {
      if (!moved(p)) {
        continue;
      }
      AsvmAgent::ObjectState& hs = agent(obj.Terminal(p)).obj_state(id);
      const auto* hp0 = hs.home_pages.Find(p);
      const auto* rp0 = hs.recovered.Find(p);
      const bool have_source = (hp0 != nullptr && hp0->owner_exists) ||
                               (rp0 != nullptr && rp0->data != nullptr);
      AsvmAgent::ShadowPage* best = nullptr;
      for (NodeId n = 0; n < cluster_.node_count(); ++n) {
        if (have_source || !plan->NodeAlive(n, now)) {
          continue;
        }
        auto sit = agent(n).shadow_.find(id);
        if (sit == agent(n).shadow_.end()) {
          continue;
        }
        auto pit = sit->second.find(p);
        if (pit == sit->second.end() || pit->second.data == nullptr) {
          continue;
        }
        if (best == nullptr || pit->second.version > best->version) {
          best = &pit->second;
        }
      }
      if (best != nullptr) {
        auto& rp = hs.recovered.GetOrCreate(p);
        rp.data = std::move(best->data);
        rp.version = best->version;
        hs.home_pages.GetOrCreate(p).version = best->version;
        cluster_.stats().Add(kStatReconstructedPages);
      }
      for (NodeId n = 0; n < cluster_.node_count(); ++n) {
        if (!plan->NodeAlive(n, now)) {
          continue;
        }
        if (auto sit = agent(n).shadow_.find(id); sit != agent(n).shadow_.end()) {
          sit->second.erase(p);
          if (sit->second.empty()) {
            agent(n).shadow_.erase(sit);
          }
        }
      }
    }
  }

  // Provable loss: a page some survivor witnessed as committed (a shadow
  // manifest or a home's own ledger), with no surviving owner, no harvested
  // copy, and no shadow fold — every durable copy died with the victims.
  // Faults on these pages answer Status::kDataLost instead of inventing
  // zeros; pages with no witness are genuinely never-written and zero-fill.
  if (!obj.file_backed) {
    for (PageIndex p = 0; p < static_cast<PageIndex>(obj.pages); ++p) {
      if (!moved(p)) {
        continue;
      }
      AsvmAgent::ObjectState& hs = agent(obj.Terminal(p)).obj_state(id);
      if (const auto* hp = hs.home_pages.Find(p); hp != nullptr && hp->owner_exists) {
        continue;
      }
      if (const auto* rp = hs.recovered.Find(p); rp != nullptr && rp->data != nullptr) {
        continue;
      }
      bool committed = false;
      for (NodeId n = 0; n < cluster_.node_count() && !committed; ++n) {
        if (!plan->NodeAlive(n, now)) {
          continue;
        }
        AsvmAgent& a = agent(n);
        if (auto mit = a.shadow_manifest_.find(id); mit != a.shadow_manifest_.end()) {
          committed = mit->second.count(p) != 0;
        }
        if (!committed) {
          if (auto lit = a.sent_shadow_.find(id); lit != a.sent_shadow_.end()) {
            committed = lit->second.count(p) != 0;
          }
        }
      }
      if (committed && hs.lost.insert(p).second) {
        cluster_.stats().Add(kStatLostPages);
      }
    }
  }

  for (const auto& [old_home, new_home] : moves) {
    cluster_.stats().Add(kStatPromotions);
    AsvmAgent& backup = agent(new_home);
    backup.Trace(TraceKind::kPromote, id, kInvalidPage, old_home,
                 static_cast<int64_t>(obj.epoch));
    // Re-arm durability: the recovered overlay is the only copy of the folded
    // pages until the next writeback, so mirror it onward to the new home's
    // own backup. The sends are ordinary engine work — post them.
    AsvmAgent* nh = &backup;
    cluster_.engine_for(new_home).Post([nh, id]() {
      AsvmAgent::ObjectState* os = nh->FindObjState(id);
      if (os == nullptr) {
        return;
      }
      os->recovered.ForEach([&](PageIndex p, AsvmAgent::ObjectState::RecoveredPage& rp) {
        if (rp.data != nullptr) {
          nh->MirrorToBackup(id, p, rp.version, rp.data);
        }
      });
    });
  }
}

void AsvmSystem::ColdRestart(NodeId node) {
  cluster_.AssertDriverQuiescent("ASVM cold restart from inside a shard window");
  cluster_.stats().Add(kStatRestarts);
  FaultPlan* plan = cluster_.fault_plan();
  const SimTime now = cluster_.Now();
  AsvmAgent& a = agent(node);
  NodeVm& vm = cluster_.vm(node);

  std::vector<MemObjectId> ids;
  ids.reserve(a.objects_.size());
  for (const auto& [id, os] : a.objects_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const MemObjectId& id : ids) {
    AsvmAgent::ObjectState& os = *a.objects_.at(id);
    AsvmObjectInfo& obj = info(id);

    // Reconcile first: ownership this node held died with it. Drop the
    // attribution at each surviving terminal so the next request re-grants
    // from backing instead of chasing a node with empty memory.
    os.pages.ForEach([&](PageIndex p, const AsvmAgent::PageState& ps) {
      if (!ps.owner) {
        return;
      }
      const NodeId term = obj.Terminal(p);
      if (term == node || (plan != nullptr && !plan->NodeAlive(term, now))) {
        return;
      }
      AsvmAgent::ObjectState* tos = agent(term).FindObjState(id);
      if (tos == nullptr) {
        return;
      }
      if (auto* hp = tos->home_pages.Find(p); hp != nullptr && hp->last_owner == node) {
        hp->owner_exists = false;
        hp->last_owner = kInvalidNode;
      }
    });
    // Same rule for records this node keeps as a terminal about itself. Other
    // nodes' entries stay: like XMM's manager table, the surviving records are
    // still conservative — any grant during the outage promoted the role away.
    os.home_pages.ForEach([&](PageIndex, AsvmAgent::ObjectState::HomePage& hp) {
      if (hp.last_owner == node) {
        hp.owner_exists = false;
        hp.last_owner = kInvalidNode;
      }
    });

    // Volatile per-page state resets in place: suspended coroutines may hold
    // references into these tables, so entries are cleared, never erased.
    os.pages.ForEach([](PageIndex, AsvmAgent::PageState& ps) { ps = {}; });
    os.terminal.ForEach([](PageIndex, AsvmAgent::TerminalCtl& tc) {
      tc.busy = false;
      tc.queue.clear();
    });
    os.recovered.ForEach(
        [](PageIndex, AsvmAgent::ObjectState::RecoveredPage& rp) { rp = {}; });
    os.lost.clear();
    os.dyn_hints->Clear();
    os.static_cache->Clear();
    os.pageout_cursor = 0;
    os.last_pageout_accept = kInvalidNode;

    if (os.repr != nullptr) {
      std::vector<PageIndex> pages;
      pages.reserve(os.repr->resident_pages().size());
      for (const auto& [page, vp] : os.repr->resident_pages()) {
        pages.push_back(page);
      }
      std::sort(pages.begin(), pages.end());
      for (PageIndex page : pages) {
        vm.RemovePage(*os.repr, page);
      }
    }
  }
  // Any shadow state this node held as a backup — and any ledger/manifest it
  // kept as a primary or witness — is equally volatile.
  a.shadow_.clear();
  a.sent_shadow_.clear();
  a.shadow_manifest_.clear();
  a.shadow_target_ = kInvalidNode;
  // A rejoined node can die again later; its next death must gossip afresh.
  death_noticed_.erase(node);
}

void AsvmSystem::ReportDeath(NodeId reporter, NodeId dead) {
  const FailoverConfig& fo = cluster_.params().failover;
  if (!fo.enabled || !fo.death_notices) {
    return;  // A/B baseline: every agent pays its own detection horizon
  }
  // The notice applies at the next barrier, stamped at the reporter's clock —
  // ordered against every other cluster mutation, so all shard counts see the
  // same interleaving. Dedup happens at apply time (two agents may confirm the
  // same death in one window).
  cluster_.mutator().Enqueue(reporter, [this, dead]() { ApplyDeathNotice(dead); });
}

void AsvmSystem::ApplyDeathNotice(NodeId dead) {
  cluster_.AssertDriverQuiescent("ASVM death notice from inside a shard window");
  FaultPlan* plan = cluster_.fault_plan();
  const SimTime now = cluster_.Now();
  if (plan == nullptr || plan->NodeAlive(dead, now)) {
    return;  // stale notice: the victim already rejoined
  }
  if (!death_noticed_.insert(dead).second) {
    return;  // first notice wins
  }
  cluster_.stats().Add(kStatDeathNotices);
  ASVM_LOG_WARN << "asvm: death notice for node " << dead;
  for (NodeId n = 0; n < cluster_.node_count(); ++n) {
    if (n == dead || !plan->NodeAlive(n, now)) {
      continue;
    }
    AsvmAgent& a = agent(n);
    // Order matters: re-target the shadow stream first so the replay target
    // computed below never points at the node being buried, then fail every
    // pending op against the victim (cancels remaining backoff immediately —
    // no second detection horizon).
    a.RetargetShadowStream(dead);
    a.FailOpsOnDeadTargets();
  }
}

void AsvmSystem::ReclaimDeadOwnerPage(const MemObjectId& id, PageIndex page) {
  cluster_.AssertDriverQuiescent("ASVM lease reclaim from inside a shard window");
  FaultPlan* plan = cluster_.fault_plan();
  const SimTime now = cluster_.Now();
  if (plan == nullptr) {
    return;
  }
  AsvmObjectInfo& obj = info(id);
  const NodeId term = obj.Terminal(page);
  if (!plan->NodeAlive(term, now)) {
    return;  // the terminal itself is dead; promotion owns this recovery
  }
  AsvmAgent& home = agent(term);
  AsvmAgent::ObjectState* os = home.FindObjState(id);
  if (os == nullptr) {
    return;
  }
  auto* hp = os->home_pages.Find(page);
  if (hp == nullptr || !hp->owner_exists) {
    return;  // already reclaimed (idempotent): the serve path takes over
  }
  const NodeId owner = hp->last_owner;
  if (owner == kInvalidNode || plan->NodeAlive(owner, now)) {
    return;  // owner rejoined between enqueue and apply — not reclaimable
  }
  const SimTime since = plan->RemovedSince(owner, now);
  if (since < 0 || now < since + cluster_.params().failover.lease_ns) {
    return;  // lease still running; the caller re-handles and waits again
  }
  cluster_.stats().Add(kStatLeaseReclaims);
  home.Trace(TraceKind::kLeaseReclaim, id, page, owner);
  hp->owner_exists = false;
  hp->last_owner = kInvalidNode;
  if (obj.file_backed) {
    return;  // external storage already holds the last writeback
  }
  // Owner-death reconstruction: harvest the newest surviving read copy into
  // the recovered overlay, then drop the survivors' copies — untracked by any
  // owner, a future writer could never invalidate them.
  PageBuffer best;
  uint64_t best_version = 0;
  for (NodeId n = 0; n < cluster_.node_count(); ++n) {
    if (!plan->NodeAlive(n, now)) {
      continue;
    }
    AsvmAgent::ObjectState* ros = agent(n).FindObjState(id);
    if (ros == nullptr || ros->repr == nullptr) {
      continue;
    }
    AsvmAgent::PageState* ps = ros->pages.Find(page);
    if (ps == nullptr || ps->owner || ps->busy || ps->held() ||
        ps->access == PageAccess::kNone) {
      continue;
    }
    VmPage* vp = ros->repr->FindResident(page);
    if (vp == nullptr) {
      continue;
    }
    if (best == nullptr || ps->version > best_version) {
      best_version = ps->version;
      best = ClonePage(vp->data);
    }
    cluster_.vm(n).RemovePage(*ros->repr, page);
    ps->access = PageAccess::kNone;
    agent(n).PruneState(*ros, page);
  }
  if (best != nullptr) {
    auto& rp = os->recovered.GetOrCreate(page);
    rp.data = std::move(best);
    rp.version = best_version;
    hp->version = best_version;
    cluster_.stats().Add(kStatReconstructedPages);
  }
}

}  // namespace asvm
