#include "src/asvm/asvm_system.h"

#include <algorithm>
#include <memory>

#include "src/asvm/agent.h"
#include "src/common/log.h"
#include "src/dsm/cluster_sync.h"

namespace asvm {

AsvmSystem::AsvmSystem(Cluster& cluster, AsvmConfig config)
    : cluster_(cluster), config_(config) {
  InitOpIds(cluster.node_count());
  agents_.reserve(cluster.node_count());
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    agents_.push_back(std::make_unique<AsvmAgent>(*this, n));
  }
}

AsvmSystem::~AsvmSystem() = default;

AsvmObjectInfo& AsvmSystem::info(const MemObjectId& id) {
  auto it = directory_.find(id);
  ASVM_CHECK_MSG(it != directory_.end(), "unknown ASVM object");
  return *it->second;
}

const AsvmObjectInfo* AsvmSystem::FindInfo(const MemObjectId& id) const {
  auto it = directory_.find(id);
  return it == directory_.end() ? nullptr : it->second.get();
}

NodeId AsvmSystem::StaticManagerOf(const AsvmObjectInfo& info, PageIndex page) const {
  if (info.sharing.empty()) {
    return info.Terminal(page);
  }
  return info.sharing[static_cast<size_t>(page) % info.sharing.size()];
}

void AsvmSystem::AddSharer(AsvmObjectInfo& info, NodeId node) {
  if (std::find(info.sharing.begin(), info.sharing.end(), node) == info.sharing.end()) {
    info.sharing.push_back(node);
  }
}

MemObjectId AsvmSystem::CreateSharedRegion(NodeId home, VmSize pages) {
  cluster_.AssertDriverQuiescent("ASVM CreateSharedRegion from inside a shard window");
  MemObjectId id = NewObjectId(home);
  auto info = std::make_unique<AsvmObjectInfo>();
  info->id = id;
  info->pages = pages;
  info->home = home;
  info->backing = std::make_unique<AnonBacking>(cluster_.engine_for(home),
                                                cluster_.default_pager(home), NextBackingKey());
  directory_[id] = std::move(info);
  return id;
}

MemObjectId AsvmSystem::CreateFileRegion(int32_t file_id, VmSize pages) {
  cluster_.AssertDriverQuiescent("ASVM CreateFileRegion from inside a shard window");
  FilePager& pager = cluster_.file_pager();
  MemObjectId id = NewObjectId(pager.node());
  auto info = std::make_unique<AsvmObjectInfo>();
  info->id = id;
  info->pages = pages;
  info->home = pager.node();
  info->backing = std::make_unique<FileBacking>(pager, file_id);
  directory_[id] = std::move(info);
  return id;
}

MemObjectId AsvmSystem::CreateStripedRegion(const std::vector<StripedBacking::Stripe>& stripes,
                                            VmSize pages) {
  cluster_.AssertDriverQuiescent("ASVM CreateStripedRegion from inside a shard window");
  ASVM_CHECK(!stripes.empty());
  MemObjectId id = NewObjectId(stripes[0].pager->node());
  auto info = std::make_unique<AsvmObjectInfo>();
  info->id = id;
  info->pages = pages;
  info->home = stripes[0].pager->node();
  for (const auto& stripe : stripes) {
    info->stripe_homes.push_back(stripe.pager->node());
  }
  info->backing = std::make_unique<StripedBacking>(stripes);
  directory_[id] = std::move(info);
  return id;
}

std::shared_ptr<VmObject> AsvmSystem::Attach(NodeId node, const MemObjectId& id) {
  return agent(node).Attach(id);
}

MemObjectId AsvmSystem::ExportObject(NodeId node, const std::shared_ptr<VmObject>& object) {
  cluster_.AssertDriverQuiescent("ASVM ExportObject from inside a shard window");
  if (object->managed()) {
    return object->id();
  }
  MemObjectId id = NewObjectId(node);
  auto info = std::make_unique<AsvmObjectInfo>();
  info->id = id;
  info->pages = object->page_count();
  info->home = node;
  info->backing = std::make_unique<AnonBacking>(cluster_.engine_for(node),
                                                cluster_.default_pager(node), NextBackingKey());
  directory_[id] = std::move(info);

  AsvmAgent& a = agent(node);
  a.AdoptRepr(id, object);
  // Existing resident pages are now owned by the exporting node.
  AsvmAgent::ObjectState& os = a.obj_state(id);
  for (const auto& [page, vp] : object->resident_pages()) {
    AsvmAgent::PageState& ps = a.page_state(os, page);
    ps.owner = true;
    ps.access = AccessAllows(vp.lock, PageAccess::kWrite) ? PageAccess::kWrite
                                                          : PageAccess::kRead;
    ps.version = 0;
    os.home_pages.GetOrCreate(page).owner_exists = true;
  }
  cluster_.stats().Add("asvm.exports");
  return id;
}

MemObjectId AsvmSystem::RegisterCopy(const MemObjectId& source, NodeId peer, VmSize pages) {
  cluster_.AssertDriverQuiescent("ASVM RegisterCopy from inside a shard window");
  AsvmObjectInfo& src_info = info(source);
  MemObjectId copy_id = NewObjectId(peer);
  auto copy_info = std::make_unique<AsvmObjectInfo>();
  copy_info->id = copy_id;
  copy_info->pages = pages;
  copy_info->home = peer;  // unused for copies; Terminal() uses peer
  copy_info->peer = peer;
  copy_info->shadow = source;
  directory_[copy_id] = std::move(copy_info);

  // New copies enter the chain immediately after the source; the previous
  // newest copy now reads through the fresh one (§2.2 / §3.7).
  const MemObjectId old_copy = src_info.newest_copy;
  if (old_copy.valid()) {
    AsvmObjectInfo& old_info = info(old_copy);
    old_info.shadow = copy_id;
    // Re-link the old copy's VM shadow on its peer node through a local
    // representation of the new copy.
    AsvmAgent& old_peer_agent = agent(old_info.peer);
    AsvmAgent::ObjectState* old_os = old_peer_agent.FindObjState(old_copy);
    if (old_os != nullptr && old_os->repr != nullptr) {
      old_os->repr->set_shadow(old_peer_agent.Attach(copy_id));
    }
  }
  src_info.newest_copy = copy_id;
  ++src_info.object_version;
  cluster_.stats().Add("asvm.copies_created");
  return copy_id;
}

Future<VmMap*> AsvmSystem::RemoteFork(NodeId src, VmMap& parent, NodeId dst) {
  // Forks mutate the directory mid-run; arm the mutation API before the first
  // drain so the cluster runs on the windowed, mutation-aware schedule.
  cluster_.mutator().Arm();
  Promise<VmMap*> done(cluster_.engine_for(src));
  (void)RemoteForkTask(src, parent, dst, done);
  return done.GetFuture();
}

Task AsvmSystem::RemoteForkTask(NodeId src, VmMap& parent, NodeId dst, Promise<VmMap*> done) {
  Engine& engine = cluster_.engine_for(src);
  // Task-creation control traffic (map description shipped to the child).
  co_await Delay(engine, 300 * kMicrosecond);
  // All structural work — directory inserts, child map construction, copy
  // registration — touches cluster-wide state, so it runs as one mutation at
  // the next deterministic sequencing point (every engine quiescent), one
  // lookahead after this instant.
  auto ro_done = std::make_shared<ClusterWaitGroup>(cluster_);
  Promise<VmMap*> built(engine);
  VmMap* parent_ptr = &parent;
  cluster_.mutator().Enqueue(src, [this, src, parent_ptr, dst, ro_done, built]() {
    built.Set(ApplyRemoteFork(src, *parent_ptr, dst, *ro_done));
  });
  VmMap* child = co_await built.GetFuture();
  // The read-only broadcast acks complete on their own nodes' engines; join
  // them before reporting the fork done.
  co_await ro_done->Wait(src);
  done.Set(child);
}

VmMap* AsvmSystem::ApplyRemoteFork(NodeId src, VmMap& parent, NodeId dst,
                                   ClusterWaitGroup& ro_done) {
  cluster_.stats().Add("asvm.remote_forks");
  NodeVm& dst_vm = cluster_.vm(dst);
  VmMap* child = dst_vm.CreateMap();

  for (auto& [start, entry] : parent.entries()) {
    if (entry.inheritance == Inheritance::kNone) {
      continue;
    }
    if (entry.inheritance == Inheritance::kShare) {
      MemObjectId id = ExportObject(src, entry.object);
      auto repr = Attach(dst, id);
      Status s = child->Map(entry.start_page, entry.page_count, repr, entry.object_offset,
                            entry.inheritance);
      ASVM_CHECK(IsOk(s));
      continue;
    }
    // Delayed copy across nodes (§3.7, Figure 8): share the source on the
    // destination, create the copy through the standard VM mechanisms there,
    // then mark resident source pages read-only everywhere.
    MemObjectId source_id = ExportObject(src, entry.object);
    AsvmObjectInfo& src_info = info(source_id);
    std::shared_ptr<VmObject> src_repr = Attach(dst, source_id);
    MemObjectId copy_id = RegisterCopy(source_id, dst, entry.object->page_count());
    std::shared_ptr<VmObject> copy_obj = dst_vm.CreateAsymmetricCopy(src_repr);
    // The copy object is the peer-side representation; registering it as
    // managed keeps its identity stable across further forks.
    agent(dst).AdoptRepr(copy_id, copy_obj);

    Status s = child->Map(entry.start_page, entry.page_count, copy_obj, entry.object_offset,
                          Inheritance::kCopy);
    ASVM_CHECK(IsOk(s));

    // Broadcast: downgrade all resident pages of the source to read-only.
    // The downgrades run synchronously here (the machine is quiescent); their
    // completion acks arrive on each sharer's engine and join through the
    // fork-wide cluster wait group.
    for (NodeId sharer : src_info.sharing) {
      if (sharer == dst) {
        // The new sharer has nothing resident yet.
        continue;
      }
      ro_done.Add();
      Future<Status> f = agent(sharer).MarkObjectReadOnly(source_id);
      (void)[](Future<Status> f, ClusterWaitGroup* wg, NodeId sharer) -> Task {
        co_await f;
        wg->Done(sharer);
      }(f, &ro_done, sharer);
      // Wire cost of the broadcast message.
      if (sharer != src) {
        cluster_.stats().Add("asvm.mark_readonly_msgs");
      }
    }
  }
  return child;
}

size_t AsvmSystem::MetadataBytes(NodeId node) const {
  return agents_.at(node)->MetadataBytes();
}

}  // namespace asvm
