// The protocol monitor began life ASVM-only; it is now the machine-wide
// observability layer shared by both DSMs and the layers beneath them. This
// header remains as a forwarding shim for existing includes.
#ifndef SRC_ASVM_MONITOR_H_
#define SRC_ASVM_MONITOR_H_

#include "src/common/trace.h"

#endif  // SRC_ASVM_MONITOR_H_
