// System- and application-level monitoring interfaces (the paper's authors
// built such interfaces for ASVM on the Paragon). A ProtocolMonitor attached
// to an AsvmSystem receives every significant protocol event with its
// simulated timestamp; the bundled implementations keep a bounded in-memory
// trace and per-kind counters, and can render a human-readable timeline.
#ifndef SRC_ASVM_MONITOR_H_
#define SRC_ASVM_MONITOR_H_

#include <array>
#include <cstdint>
#include <deque>
#include <string>

#include "src/common/types.h"
#include "src/sim/time.h"

namespace asvm {

enum class TraceKind : uint8_t {
  kFaultRequest = 0,   // node asked its agent for access (page, access in aux)
  kForwardDynamic,     // request forwarded via a dynamic hint (peer = target)
  kForwardStatic,      // request forwarded to/via the static manager
  kForwardGlobal,      // request on the global ring
  kServeOwner,         // owner answered (peer = requester)
  kServeTerminal,      // pager/peer answered a first touch
  kGrantApplied,       // origin integrated a grant
  kInvalidate,         // owner -> reader invalidation
  kOwnershipMoved,     // ownership changed hands (peer = new owner)
  kEvictStep,          // internode paging step (aux = 1..4)
  kPush,               // push operation initiated
  kPushScan,           // push scan issued
  kPull,               // pull walk executed at a peer
  kWriteback,          // page returned to the pager
  kKindCount,
};

const char* ToString(TraceKind kind);

struct TraceEvent {
  SimTime time = 0;
  NodeId node = kInvalidNode;   // where the event happened
  TraceKind kind = TraceKind::kFaultRequest;
  MemObjectId object;
  PageIndex page = kInvalidPage;
  NodeId peer = kInvalidNode;   // counterpart node, if any
  int64_t aux = 0;              // kind-specific detail
};

class ProtocolMonitor {
 public:
  virtual ~ProtocolMonitor() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;
};

// Bounded ring-buffer trace + per-kind counters.
class TraceBuffer : public ProtocolMonitor {
 public:
  explicit TraceBuffer(size_t capacity = 4096) : capacity_(capacity) {}

  void OnEvent(const TraceEvent& event) override {
    ++counts_[static_cast<size_t>(event.kind)];
    ++total_;
    events_.push_back(event);
    if (events_.size() > capacity_) {
      events_.pop_front();
    }
  }

  const std::deque<TraceEvent>& events() const { return events_; }
  int64_t count(TraceKind kind) const { return counts_[static_cast<size_t>(kind)]; }
  int64_t total() const { return total_; }
  void Clear() {
    events_.clear();
    counts_.fill(0);
    total_ = 0;
  }

  // Renders the trace (optionally only events touching `page`) as a
  // timeline, one line per event.
  std::string Render(PageIndex page = kInvalidPage) const;

 private:
  size_t capacity_;
  std::deque<TraceEvent> events_;
  std::array<int64_t, static_cast<size_t>(TraceKind::kKindCount)> counts_{};
  int64_t total_ = 0;
};

}  // namespace asvm

#endif  // SRC_ASVM_MONITOR_H_
