// AsvmAgent part 1: construction, attach/state management, the request
// redirector (forwarding tiers), and the EMMI upcalls from the local kernel.
#include "src/asvm/agent.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/common/log.h"
#include "src/dsm/failover.h"

namespace asvm {

AsvmAgent::AsvmAgent(AsvmSystem& system, NodeId node)
    : ProtocolAgent(system, node, TraceProtocol::kAsvm),
      system_(system),
      vm_(system.cluster().vm(node)),
      failover_(system.cluster().params().failover) {
  Transport& main_transport = system.config().use_norma_transport
                                  ? static_cast<Transport&>(system_.cluster().norma())
                                  : static_cast<Transport&>(system_.cluster().sts());
  Listen(main_transport, ProtocolId::kAsvm);
  if (!system.config().use_norma_transport) {
    Listen(system_.cluster().sts_ctl(), ProtocolId::kAsvm);
  }
}

AsvmAgent::~AsvmAgent() = default;

AsvmAgent::ObjectState& AsvmAgent::obj_state(const MemObjectId& id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    auto os = std::make_unique<ObjectState>();
    os->dyn_hints = std::make_unique<LruCache<PageIndex, NodeId>>(
        system_.config().dyn_cache_capacity);
    os->static_cache =
        std::make_unique<LruCache<PageIndex, std::pair<StaticHintKind, NodeId>>>(
            system_.config().static_cache_capacity);
    // The directory knows the object's page count; size the per-page tables
    // so fault-path lookups are dense vector indexes.
    if (const AsvmObjectInfo* info = system_.FindInfo(id); info != nullptr) {
      os->pages.SetPageCount(info->pages);
      os->terminal.SetPageCount(info->pages);
      os->home_pages.SetPageCount(info->pages);
      os->recovered.SetPageCount(info->pages);
    }
    it = objects_.emplace(id, std::move(os)).first;
  }
  return *it->second;
}

AsvmAgent::ObjectState* AsvmAgent::FindObjState(const MemObjectId& id) {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : it->second.get();
}

std::shared_ptr<VmObject> AsvmAgent::Attach(const MemObjectId& id) {
  ObjectState& os = obj_state(id);
  if (os.repr == nullptr) {
    AsvmObjectInfo& info = system_.info(id);
    os.repr = vm_.CreateObject(info.pages, CopyStrategy::kAsymmetric);
    vm_.RegisterManaged(os.repr, id, this);
    system_.AddSharer(info, node_);
  }
  return os.repr;
}

void AsvmAgent::AdoptRepr(const MemObjectId& id, const std::shared_ptr<VmObject>& object) {
  ObjectState& os = obj_state(id);
  ASVM_CHECK_MSG(os.repr == nullptr || os.repr == object, "conflicting repr adoption");
  os.repr = object;
  if (!object->managed()) {
    vm_.RegisterManaged(object, id, this);
  }
  system_.AddSharer(system_.info(id), node_);
}

void AsvmAgent::PruneState(ObjectState& os, PageIndex page) {
  const PageState* ps = os.pages.Find(page);
  if (ps == nullptr) {
    return;
  }
  if (ps->access == PageAccess::kNone && !ps->owner && !ps->busy && !ps->held() &&
      !ps->pending && ps->queue.empty()) {
    os.pages.Erase(page);
  }
}

std::string AsvmAgent::DumpObjectState(const MemObjectId& id) const {
  std::ostringstream out;
  out << "node " << node_ << " view of " << id.ToString() << ":\n";
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    out << "  (no state)\n";
    return out.str();
  }
  const ObjectState& os = *it->second;
  os.pages.ForEach([&out](PageIndex page, const PageState& ps) {
    out << "  page " << page << ": access=" << ToString(ps.access)
        << (ps.owner ? " OWNER" : "") << (ps.busy ? " busy" : "") << (ps.held() ? " held" : "")
        << (ps.pending ? " pending" : "") << " v" << ps.version;
    if (!ps.readers.empty()) {
      out << " readers=[";
      for (size_t i = 0; i < ps.readers.size(); ++i) {
        out << (i ? "," : "") << ps.readers[i];
      }
      out << "]";
    }
    if (!ps.queue.empty()) {
      out << " queued=" << ps.queue.size();
    }
    out << "\n";
  });
  out << "  dynamic hints: " << os.dyn_hints->size()
      << ", static cache: " << os.static_cache->size()
      << ", home records: " << os.home_pages.size() << "\n";
  return out.str();
}

size_t AsvmAgent::MetadataBytes() const {
  // Rough but honest accounting of non-pageable protocol state.
  size_t bytes = 0;
  for (const auto& [id, os] : objects_) {
    bytes += sizeof(ObjectState);
    bytes += os->pages.MetadataBytes();
    os->pages.ForEach([&bytes](PageIndex, const PageState& ps) {
      bytes += ps.readers.size() * sizeof(NodeId);
    });
    bytes += os->dyn_hints->size() * (sizeof(PageIndex) + sizeof(NodeId) + 16);
    bytes += os->static_cache->size() * (sizeof(PageIndex) + sizeof(NodeId) + 17);
    bytes += os->home_pages.MetadataBytes();
  }
  return bytes;
}

bool AsvmAgent::DescribeStall(std::string& out) const {
  bool blocked = ProtocolAgent::DescribeStall(out);
  // Coherency state of pages stuck mid-transition (busy or pending) and the
  // requests parked behind them. Objects are sorted for determinism.
  std::vector<MemObjectId> ids;
  ids.reserve(objects_.size());
  for (const auto& [id, os] : objects_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const MemObjectId& id : ids) {
    const ObjectState& os = *objects_.at(id);
    os.pages.ForEach([&](PageIndex page, const PageState& ps) {
      if (!ps.busy && !ps.pending && ps.queue.empty()) {
        return;
      }
      blocked = true;
      out += "  asvm node " + std::to_string(node_) + ": object " + id.ToString() + " page " +
             std::to_string(page) + " access=" + std::string(ToString(ps.access)) +
             (ps.owner ? " OWNER" : "") + (ps.busy ? " busy" : "") +
             (ps.pending ? " pending" : "") + ", " + std::to_string(ps.queue.size()) +
             " requests queued\n";
    });
    os.terminal.ForEach([&](PageIndex page, const TerminalCtl& ctl) {
      if (!ctl.busy && ctl.queue.empty()) {
        return;
      }
      blocked = true;
      out += "  asvm node " + std::to_string(node_) + ": terminal for object " + id.ToString() +
             " page " + std::to_string(page) + (ctl.busy ? " busy" : " idle") + ", " +
             std::to_string(ctl.queue.size()) + " requests queued\n";
    });
  }
  return blocked;
}

// --- EMMI upcalls (local kernel -> ASVM) --------------------------------------

void AsvmAgent::DataRequest(VmObject& object, PageIndex page, PageAccess desired) {
  const MemObjectId id = object.id();
  ObjectState& os = obj_state(id);
  PageState& ps = page_state(os, page);
  if (ps.pending) {
    return;  // a request for this page is already in flight
  }
  ps.pending = true;
  if (stats_ != nullptr) {
    stats_->Add("asvm.data_requests");
  }
  AccessRequest req;
  req.target = id;
  req.search = id;
  req.page = page;
  req.access = desired;
  req.origin = node_;
  req.req_id = system_.NextOpId(node_);
  Trace(TraceKind::kFaultRequest, id, page, kInvalidNode, static_cast<int64_t>(desired),
        req.req_id);
  ArmRequest(req);
  HandleRequest(std::move(req));
}

void AsvmAgent::DataUnlock(VmObject& object, PageIndex page, PageAccess desired) {
  const MemObjectId id = object.id();
  ObjectState& os = obj_state(id);
  PageState& ps = page_state(os, page);
  if (stats_ != nullptr) {
    stats_->Add("asvm.data_unlocks");
  }
  if (ps.owner) {
    // Transition 7: the owner upgrades its own access.
    if (!ps.busy) {
      (void)SelfUpgrade(id, page);
    } else {
      // A transition is in flight; retry through the normal request path once
      // it settles by queueing a self-request.
      AccessRequest req;
      req.target = id;
      req.search = id;
      req.page = page;
      req.access = desired;
      req.origin = node_;
      ps.queue.push_back(std::move(req));
    }
    return;
  }
  if (ps.pending) {
    return;
  }
  ps.pending = true;
  AccessRequest req;
  req.target = id;
  req.search = id;
  req.page = page;
  req.access = desired;
  req.origin = node_;
  req.req_id = system_.NextOpId(node_);
  ArmRequest(req);
  HandleRequest(std::move(req));
}

void AsvmAgent::LockCompleted(VmObject&, PageIndex, LockResult) {
  // Local lock requests complete through inline callbacks; nothing to do.
}

void AsvmAgent::PullCompleted(VmObject&, PageIndex, PullResult) {
  // Pull requests complete through inline callbacks; nothing to do.
}

// --- Request redirector --------------------------------------------------------

void AsvmAgent::HandleRequest(AccessRequest req) {
  ObjectState& os = obj_state(req.search);
  PageState* ps = os.pages.Find(req.page);

  if (req.is_push_scan) {
    // A push-scan asks whether the page exists in this (copy-object) space.
    if (ps != nullptr && ps->owner) {
      AccessReply reply;
      reply.target = req.target;
      reply.page = req.page;
      reply.is_scan = true;
      reply.scan_found = true;
      reply.req_id = req.req_id;
      Send(req.origin, AsvmMsgType::kAccessReply, reply);
      return;
    }
    const AsvmObjectInfo& info = system_.info(req.search);
    if (info.Terminal(req.page) == node_) {
      // End of the line: check the local representation (resident or paged).
      bool found = false;
      if (os.repr != nullptr) {
        found = os.repr->FindResident(req.page) != nullptr ||
                vm_.default_pager()->HasPage(os.repr->serial(), req.page);
      }
      if (!found && os.home_pages.GetOrCreate(req.page).owner_exists &&
          !(req.ring && req.ring_left == 0)) {
        // An owner exists somewhere but the caches missed: scan the ring so
        // the owner itself can answer.
        req.ring = true;
        req.ring_pos = 0;
        req.ring_left = static_cast<int>(info.sharing.size());
        RingForward(std::move(req));
        return;
      }
      AccessReply reply;
      reply.target = req.target;
      reply.page = req.page;
      reply.is_scan = true;
      reply.scan_found = found;
      reply.req_id = req.req_id;
      Send(req.origin, AsvmMsgType::kAccessReply, reply);
      return;
    }
    RouteRequest(std::move(req));
    return;
  }

  if (ps != nullptr && ps->owner) {
    if (req.origin == node_) {
      // Our own request came back to us while we already own the page: a
      // straggler duplicate whose live copy was served (dedup retired its
      // op). Serving it would hand ownership away and the self-grant would
      // then be dropped as a duplicate, evaporating the page — drop the
      // request instead.
      if (stats_ != nullptr) {
        stats_->Add("asvm.self_stragglers_dropped");
      }
      return;
    }
    if (ps->busy || ps->held()) {
      // A transition (write grant, push, eviction handoff) is in flight, or
      // the page is range-locked for exclusive local access; park until it
      // settles. Busy/held states always complete, so parking here cannot
      // deadlock — unlike parking at merely-pending nodes, where two nodes
      // waiting on the same page could park each other's requests.
      ps->queue.push_back(std::move(req));
      return;
    }
    ServeAsOwner(std::move(req));
    return;
  }
  const AsvmObjectInfo& info = system_.info(req.search);
  if (req.to_terminal && info.Terminal(req.page) == node_) {
    HandleAtTerminal(std::move(req));
    return;
  }
  RouteRequest(std::move(req));
}

void AsvmAgent::RouteRequest(AccessRequest req) {
  AsvmObjectInfo& info = system_.info(req.search);
  ObjectState& os = obj_state(req.search);
  ++req.hops;
  ASVM_CHECK_MSG(req.hops < 8 * system_.cluster().node_count() + 64,
                 "request forwarding failed to terminate");


  if (req.ring) {
    RingForward(std::move(req));
    return;
  }

  // Stale hints can form transient cycles (A's hint says B, B's says A).
  // After a generous number of hops, stop trusting caches and escalate to
  // the terminal, whose authoritative owner record falls back to the global
  // ring — which always terminates.
  if (req.hops > system_.cluster().node_count() + 2) {
    if (stats_ != nullptr) {
      stats_->Add("asvm.fwd_escalations");
    }
    SendToTerminal(std::move(req));
    return;
  }

  const bool dyn = system_.config().dynamic_forwarding;
  const bool stat = system_.config().static_forwarding;

  if (dyn) {
    NodeId* hint = os.dyn_hints->Get(req.page);
    if (hint != nullptr && NodeDead(*hint)) {
      // The hinted owner is confirmed removed: the hint can only mislead.
      os.dyn_hints->Erase(req.page);
      hint = nullptr;
    }
    if (hint != nullptr && *hint != node_) {
      NodeId target = *hint;
      if (req.access == PageAccess::kWrite && req.target == req.search &&
          req.origin != node_) {
        // Path compression toward the future owner (Li's optimization).
        os.dyn_hints->Put(req.page, req.origin);
      }
      if (stats_ != nullptr) {
        stats_->Add("asvm.fwd_dynamic");
      }
      Trace(TraceKind::kForwardDynamic, req.search, req.page, target, 0, req.req_id);
      SendRequest(target, req);
      return;
    }
  }

  if (stat) {
    const NodeId mgr = system_.StaticManagerOf(info, req.page);
    if (mgr != node_ && NodeDead(mgr)) {
      // The static ownership manager is removed: its cache is unreachable;
      // escalate straight to the terminal's authoritative record.
      SendToTerminal(std::move(req));
      return;
    }
    if (mgr != node_) {
      if (stats_ != nullptr) {
        stats_->Add("asvm.fwd_static");
      }
      Trace(TraceKind::kForwardStatic, req.search, req.page, mgr, 0, req.req_id);
      SendRequest(mgr, req);
      return;
    }
    // We are the static ownership manager: consult the static cache.
    auto* entry = os.static_cache->Get(req.page);
    if (entry != nullptr) {
      if (entry->first == StaticHintKind::kOwner && entry->second != node_ &&
          !NodeDead(entry->second)) {
        if (stats_ != nullptr) {
          stats_->Add("asvm.fwd_static_hit");
        }
        SendRequest(entry->second, req);
        return;
      }
      if (entry->first == StaticHintKind::kFresh || entry->first == StaticHintKind::kPaged) {
        if (stats_ != nullptr) {
          stats_->Add("asvm.fwd_static_terminal");
        }
        SendToTerminal(std::move(req));
        return;
      }
    }
    if (stats_ != nullptr) {
      stats_->Add("asvm.fwd_static_miss");
    }
    SendToTerminal(std::move(req));
    return;
  }

  if (dyn) {
    // Dynamic enabled but no hint, and static disabled: fall back to global.
    req.ring = true;
    req.ring_left = static_cast<int>(info.sharing.size());
    req.ring_pos = 0;
    RingForward(std::move(req));
    return;
  }

  // Global-only forwarding: visit every sharer in turn (paper §3.4).
  req.ring = true;
  req.ring_left = static_cast<int>(info.sharing.size());
  req.ring_pos = 0;
  if (stats_ != nullptr) {
    stats_->Add("asvm.fwd_global_started");
  }
  RingForward(std::move(req));
}

void AsvmAgent::RingForward(AccessRequest req) {
  AsvmObjectInfo& info = system_.info(req.search);
  while (req.ring_left > 0) {
    const size_t idx = static_cast<size_t>(req.ring_pos) % info.sharing.size();
    NodeId next = info.sharing[idx];
    ++req.ring_pos;
    --req.ring_left;
    if (next == node_ || next == req.origin) {
      continue;  // we already know neither holds the page as owner
    }
    if (NodeDead(next)) {
      continue;  // removed sharer: a message there is a black hole
    }
    if (stats_ != nullptr) {
      stats_->Add("asvm.fwd_global_hop");
    }
    Trace(TraceKind::kForwardGlobal, req.search, req.page, next, 0, req.req_id);
    SendRequest(next, req);
    return;
  }
  // Ring exhausted: deliver to the terminal (pager / peer).
  SendToTerminal(std::move(req));
}

void AsvmAgent::SendRequest(NodeId to, const AccessRequest& req) {
  ASVM_CHECK_MSG(to != node_, "routing to self");
  Send(to, AsvmMsgType::kAccessRequest, req);
}

void AsvmAgent::SendReply(NodeId to, const AccessReply& reply, PageBuffer data) {
  if (to == node_) {
    // Local grant: apply directly (with the local handoff charged by Send).
    Send(to, AsvmMsgType::kAccessReply, reply, std::move(data));
    return;
  }
  Send(to, AsvmMsgType::kAccessReply, reply, std::move(data));
}

void AsvmAgent::Send(NodeId to, AsvmMsgType type, AsvmBody body, PageBuffer page) {
  Message msg;
  msg.protocol = ProtocolId::kAsvm;
  msg.type = static_cast<uint32_t>(type);
  msg.control_bytes = 32;  // fixed-size untyped ASVM control block (§3.1)
  msg.body = std::move(body);
  msg.page = std::move(page);
  if (system_.config().use_norma_transport) {
    // Transport ablation: everything over NORMA-IPC, as pre-ASVM XMM did.
    msg.control_bytes = 64;
    system_.cluster().norma().Send(node_, to, std::move(msg));
    return;
  }
  // Invalidation rounds ride the trivial-control channel; everything else
  // uses the regular STS path.
  if (type == AsvmMsgType::kInvalidate || type == AsvmMsgType::kInvalidateAck) {
    system_.cluster().sts_ctl().Send(node_, to, std::move(msg));
  } else {
    system_.cluster().sts().Send(node_, to, std::move(msg));
  }
}

// --- Failover (DESIGN.md §14) ---------------------------------------------------

bool AsvmAgent::NodeDead(NodeId node) {
  if (!failover_.enabled || node == kInvalidNode) {
    return false;
  }
  const FaultPlan* plan = system_.cluster().fault_plan();
  return plan != nullptr && !plan->NodeAlive(node, engine().Now());
}

bool AsvmAgent::LeaseExpired(NodeId owner) {
  if (!failover_.enabled || owner == kInvalidNode) {
    return false;
  }
  const FaultPlan* plan = system_.cluster().fault_plan();
  if (plan == nullptr) {
    return false;
  }
  const SimTime since = plan->RemovedSince(owner, engine().Now());
  return since >= 0 && engine().Now() >= since + failover_.lease_ns;
}

void AsvmAgent::SendToTerminal(AccessRequest req) {
  AsvmObjectInfo& info = system_.info(req.search);
  req.to_terminal = true;
  const NodeId term = info.Terminal(req.page);
  if (term == node_) {
    HandleAtTerminal(std::move(req));
    return;
  }
  if (info.IsCopy() || !NodeDead(term)) {
    // Copy objects have no backup (the peer's chain is unrecoverable); a dead
    // peer black-holes the request and the origin's deadline reports it.
    SendRequest(term, req);
    return;
  }
  // The forwarding terminal is confirmed removed: promote its backup at the
  // next sequencing point, then resume toward the (now alive) new terminal.
  system_.cluster().mutator().Enqueue(node_, [this, req]() {
    system_.PromoteIfHomeDead(req.search);
    engine().Post([this, req]() mutable { SendToTerminal(std::move(req)); });
  });
}

void AsvmAgent::ArmRequest(const AccessRequest& req) {
  if (!ArmsRequests()) {
    return;
  }
  RegisterOp(req.req_id, 1, "asvm-request", req.target, req.page);
  if (PendingOp* op = FindOp(req.req_id); op != nullptr) {
    const AsvmObjectInfo& info = system_.info(req.target);
    op->targets = {info.Terminal(req.page)};
    op->on_fail = [this, req](Status) { ReissueAfterPromotion(req); };
  }
  ArmOp(req.req_id, [this, req]() {
    // The terminal is the authority of last resort; re-point the op's
    // classification at wherever that role lives now, then re-route from
    // scratch (hints may have healed, the home may have been promoted).
    if (PendingOp* op = FindOp(req.req_id); op != nullptr) {
      const AsvmObjectInfo& info = system_.info(req.target);
      op->targets = {info.Terminal(req.page)};
    }
    AccessRequest fresh = req;
    fresh.hops = 0;
    fresh.ring = false;
    fresh.ring_pos = 0;
    fresh.ring_left = 0;
    fresh.to_terminal = false;
    HandleRequest(std::move(fresh));
  });
}

void AsvmAgent::ReissueAfterPromotion(const AccessRequest& req) {
  system_.cluster().mutator().Enqueue(node_, [this, req]() {
    system_.PromoteIfHomeDead(req.target);
    engine().Post([this, req]() {
      if (stats_ != nullptr) {
        stats_->Add(kStatReissues);
      }
      AccessRequest fresh = req;
      fresh.hops = 0;
      fresh.ring = false;
      fresh.ring_pos = 0;
      fresh.ring_left = 0;
      fresh.to_terminal = false;
      ArmRequest(fresh);
      HandleRequest(std::move(fresh));
    });
  });
}

void AsvmAgent::MirrorToBackup(const MemObjectId& id, PageIndex page, uint64_t version,
                               const PageBuffer& data) {
  if (!failover_.enabled) {
    return;
  }
  const NodeId backup = RingSuccessor(node_, system_.cluster().node_count(),
                                      system_.cluster().fault_plan(), engine().Now());
  if (backup == kInvalidNode) {
    return;  // no other node alive to shadow into
  }
  // Stranded-shadow repair: if the ring rule now names a different backup than
  // the one this stream has been feeding (the old one died, or rejoined with
  // cold caches), replay the whole ledger there before the new update. In a
  // healthy run the target never changes, so this costs nothing.
  if (backup != shadow_target_ && shadow_target_ != kInvalidNode) {
    ReplayShadowLedger(backup);
  }
  shadow_target_ = backup;
  auto& sent = sent_shadow_[id][page];
  sent.version = version;
  sent.data = ClonePage(data);
  if (stats_ != nullptr) {
    stats_->Add(kStatShadowUpdates);
  }
  Send(backup, AsvmMsgType::kShadowUpdate, AsvmShadowUpdate{id, page, version},
       ClonePage(data));
  SendShadowManifest(id, page, version, backup);
}

void AsvmAgent::SendShadowManifest(const MemObjectId& id, PageIndex page, uint64_t version,
                                   NodeId backup) {
  // The witness is the backup's own successor: a control-only record that the
  // page was committed, surviving the simultaneous loss of primary + backup so
  // promotion can answer kDataLost instead of zero-filling (DESIGN.md §14).
  const NodeId witness = RingSuccessor(backup, system_.cluster().node_count(),
                                       system_.cluster().fault_plan(), engine().Now());
  if (witness == kInvalidNode || witness == node_) {
    return;  // two-node cluster: the primary itself is the only other survivor
  }
  Send(witness, AsvmMsgType::kShadowManifest, AsvmShadowUpdate{id, page, version});
}

void AsvmAgent::ReplayShadowLedger(NodeId backup) {
  for (auto& [id, pages] : sent_shadow_) {
    for (auto& [page, sp] : pages) {
      if (stats_ != nullptr) {
        stats_->Add(kStatShadowRestreams);
      }
      Send(backup, AsvmMsgType::kShadowUpdate, AsvmShadowUpdate{id, page, sp.version},
           ClonePage(sp.data));
      SendShadowManifest(id, page, sp.version, backup);
    }
  }
}

void AsvmAgent::RetargetShadowStream(NodeId dead) {
  if (!failover_.enabled || shadow_target_ != dead || sent_shadow_.empty()) {
    return;
  }
  const NodeId backup = RingSuccessor(node_, system_.cluster().node_count(),
                                      system_.cluster().fault_plan(), engine().Now());
  if (backup == kInvalidNode) {
    shadow_target_ = kInvalidNode;
    return;
  }
  shadow_target_ = backup;
  // Called from a death-notice mutation (all engines quiescent): the replay
  // sends are ordinary engine work, so post them onto this node's timeline.
  engine().Post([this, backup]() { ReplayShadowLedger(backup); });
}

void AsvmAgent::NotifyHomeOwner(const MemObjectId& id, PageIndex page, NodeId new_owner) {
  if (!failover_.enabled) {
    return;
  }
  const AsvmObjectInfo& info = system_.info(id);
  if (info.IsCopy()) {
    return;
  }
  const NodeId home = info.Terminal(page);
  StaticHintMsg hint{id, page, StaticHintKind::kOwner, new_owner};
  if (home == node_) {
    OnStaticHint(hint);
  } else if (!NodeDead(home)) {
    Send(home, AsvmMsgType::kStaticHint, hint);
  }
}

}  // namespace asvm
