// Per-node ASVM agent: the kernel-resident half of ASVM on one node. It is
// the memory manager (Pager) of every distributed object's local
// representation, the request redirector (Figure 5), the page-state machine
// (Figure 7), the internode paging engine (§3.6), and the push/pull machinery
// (§3.7).
#ifndef SRC_ASVM_AGENT_H_
#define SRC_ASVM_AGENT_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/asvm/asvm_system.h"
#include "src/asvm/messages.h"
#include "src/common/lru_cache.h"
#include "src/common/page_table.h"
#include "src/common/types.h"
#include "src/dsm/protocol_agent.h"
#include "src/machvm/node_vm.h"
#include "src/machvm/pager.h"
#include "src/sim/task.h"

namespace asvm {

class AsvmAgent : public Pager, public ProtocolAgent {
 public:
  AsvmAgent(AsvmSystem& system, NodeId node);
  ~AsvmAgent() override;

  // Per-page protocol state. An entry exists only while the node caches the
  // page or a transition involving this node is in flight — the "limited
  // memory requirements" design rule (§3.1).
  struct PageState {
    PageAccess access = PageAccess::kNone;
    bool owner = false;
    bool busy = false;      // multi-step transition in progress; queue requests
    int hold_count = 0;     // range-lock holds (§6); >0 parks remote requests
    bool pending = false;   // our own access request is outstanding
    bool held() const { return hold_count > 0; }
    uint64_t version = 0;  // page version counter (owner only, §3.7.2)
    std::vector<NodeId> readers;          // owner only: nodes with read copies
    std::deque<AccessRequest> queue;      // requests parked on busy/pending
  };

  // Terminal-role per-page state (home of a backed object / peer of a copy
  // object): serializes first-touch grants when no owner exists.
  struct TerminalCtl {
    bool busy = false;
    std::deque<AccessRequest> queue;
  };

  struct ObjectState {
    std::shared_ptr<VmObject> repr;
    PageTable<PageState> pages;
    std::unique_ptr<LruCache<PageIndex, NodeId>> dyn_hints;
    std::unique_ptr<LruCache<PageIndex, std::pair<StaticHintKind, NodeId>>> static_cache;
    PageTable<TerminalCtl> terminal;
    // Home-role authoritative record: does an owner exist, and what version
    // did the last writeback carry. last_owner is the node the home most
    // recently attributed ownership to — the lease state machine (DESIGN.md
    // §14) reclaims a page only when that node is confirmed removed and its
    // lease has expired, so a transfer racing a removal cannot be reclaimed
    // out from under a live owner.
    struct HomePage {
      bool owner_exists = false;
      uint64_t version = 0;
      NodeId last_owner = kInvalidNode;
    };
    PageTable<HomePage> home_pages;
    // Failover overlay: page contents recovered from the backup's shadow
    // store at promotion. ServeFromBacking consults it before the (fresh,
    // empty) paging space of a promoted home; a later writeback supersedes
    // and erases the entry. Empty on every healthy run.
    struct RecoveredPage {
      PageBuffer data;
      uint64_t version = 0;
    };
    PageTable<RecoveredPage> recovered;
    // Home-role pages promotion proved unrecoverable: a surviving manifest
    // witnesses the page was committed (written back dirty), but the home,
    // its shadow, and every resident copy died. Faults on these pages answer
    // Status::kDataLost instead of silently zero-filling; a later writeback
    // (which cannot happen without new data) would clear the mark.
    std::set<PageIndex> lost;
    // Internode pageout target selection (§3.6): cycling cursor + the node
    // that most recently accepted a transfer.
    size_t pageout_cursor = 0;
    NodeId last_pageout_accept = kInvalidNode;
  };

  // Creates (or returns) the local representation of the object and registers
  // this agent as its memory manager.
  std::shared_ptr<VmObject> Attach(const MemObjectId& id);

  // Adopts an existing local object as the representation (export path).
  void AdoptRepr(const MemObjectId& id, const std::shared_ptr<VmObject>& object);

  ObjectState& obj_state(const MemObjectId& id);
  ObjectState* FindObjState(const MemObjectId& id);
  PageState& page_state(ObjectState& os, PageIndex page) { return os.pages.GetOrCreate(page); }

  // Drops a page-state entry if it carries no information.
  void PruneState(ObjectState& os, PageIndex page);

  size_t MetadataBytes() const;

  // --- Pager (EMMI upcalls from the local kernel) ---------------------------

  void DataRequest(VmObject& object, PageIndex page, PageAccess desired) override;
  void DataUnlock(VmObject& object, PageIndex page, PageAccess desired) override;
  EvictAction OnEvict(VmObject& object, PageIndex page, PageBuffer data, bool dirty) override;
  void LockCompleted(VmObject& object, PageIndex page, LockResult result) override;
  void PullCompleted(VmObject& object, PageIndex page, PullResult result) override;

  // --- Delayed-copy support (called by AsvmSystem) ---------------------------

  // Broadcast handler target: downgrade all resident pages of the source
  // object to read-only (copy creation, §3.7 / Figure 8).
  Future<Status> MarkObjectReadOnly(const MemObjectId& id);

  // --- Range locking (§6 future-work primitive) ------------------------------

  // Pins a page this node owns with write access for exclusive local use;
  // remote requests queue until ReleasePage. Returns false if the node is not
  // currently the write-owner (caller re-faults and retries).
  bool TryHoldPage(const MemObjectId& id, PageIndex page);
  void ReleasePage(const MemObjectId& id, PageIndex page);

  // Application-level monitoring: renders this node's view of an object
  // (per-page access/ownership/version, hint caches) for inspection.
  std::string DumpObjectState(const MemObjectId& id) const;

 private:
  friend class AsvmSystem;

  // --- Request redirector (§3.3/§3.4) ----------------------------------------

  // Entry point for a locally-generated or received access request.
  void HandleRequest(AccessRequest req);

  // Forwards a request we cannot serve: dynamic hint → static manager →
  // terminal/global.
  void RouteRequest(AccessRequest req);

  // Advances a ring-mode request to the next sharer or the terminal.
  void RingForward(AccessRequest req);

  void SendRequest(NodeId to, const AccessRequest& req);
  void SendReply(NodeId to, const AccessReply& reply, PageBuffer data);
  void Send(NodeId to, AsvmMsgType type, AsvmBody body, PageBuffer page = nullptr);

  // --- Failover (DESIGN.md §14) ---------------------------------------------

  // Origin requests carry a pending-op entry when failover + retries are on,
  // so home silence is classified kNodeDown and triggers promotion.
  bool ArmsRequests() const { return failover_.enabled && retry_policy().timeout_ns > 0; }

  // True when the fault plan confirms `node` removed right now (failover on).
  // Routing tiers skip dead hints/ring stops and escalate dead terminals.
  bool NodeDead(NodeId node);

  // True when `owner` is confirmed removed and has been for at least the
  // configured lease — the terminal may then reclaim its pages.
  bool LeaseExpired(NodeId owner);

  // Routes `req` to its forwarding terminal. If the terminal is confirmed
  // dead, promotes its backup at the next sequencing point and resumes the
  // request toward the new terminal.
  void SendToTerminal(AccessRequest req);

  // Registers the request in the pending-op table (targets = the current
  // terminal) and arms its deadline; kNodeDown runs ReissueAfterPromotion.
  void ArmRequest(const AccessRequest& req);

  // kNodeDown recovery: promote the dead home's backup as a cluster mutation,
  // then replay the request from scratch against the new terminal.
  void ReissueAfterPromotion(const AccessRequest& req);

  // Streams a written-back dirty page to this home's backup (first alive ring
  // successor) so the contents survive a later promotion. No-op with failover
  // disabled or no other node alive. Also records the page in the primary-side
  // ledger and sends a control-only commit witness to the second successor.
  void MirrorToBackup(const MemObjectId& id, PageIndex page, uint64_t version,
                      const PageBuffer& data);

  // Replays the whole sent-shadow ledger to `backup`. Runs when the shadow
  // target changed under us (the old backup died, or died and rejoined with
  // cold caches) — without the replay everything streamed so far would be
  // stranded on the dead backup and the next promotion would lose it.
  void ReplayShadowLedger(NodeId backup);

  // Death-notice hook: if `dead` was this home's shadow target, re-target the
  // stream at the new ring successor and replay the ledger there. Called from
  // the death-notice mutation (engines quiescent); the sends are posted.
  void RetargetShadowStream(NodeId dead);

  // Commit witness (no page payload) to the second alive successor, so a
  // promotion that finds nothing can still tell "never written" apart from
  // "written and lost".
  void SendShadowManifest(const MemObjectId& id, PageIndex page, uint64_t version,
                          NodeId backup);

  // Terminal answer for a page promotion marked lost: the origin fails the
  // fault Status::kDataLost.
  void SendLostReply(const AccessRequest& req);

  // Keeps the home's last-owner attribution fresh after an ownership handoff
  // (write grant, eviction offer, pageout transfer) — the lease state machine
  // is only as good as this record. No-op with failover disabled.
  void NotifyHomeOwner(const MemObjectId& id, PageIndex page, NodeId new_owner);

  // --- Owner-side state machine (Figure 7) -----------------------------------

  // Serves a request for a page this node owns.
  void ServeAsOwner(AccessRequest req);
  Task OwnerGrantWrite(AccessRequest req);
  Task SelfUpgrade(MemObjectId id, PageIndex page);

  // Sends invalidations to every reader except `except`; completes when all
  // acks arrived. Readers are consumed from the state.
  Task InvalidateReaders(MemObjectId id, PageIndex page, NodeId except, Promise<Status> done);

  // Runs the push operation for (object, page) if the version counters demand
  // one; `pre_write` is the pre-write contents (§3.7.2). Resolves with the
  // page's new version (== the object version once pushed).
  Task PushIfNeeded(MemObjectId id, PageIndex page, PageBuffer pre_write,
                    uint64_t current_version, Promise<uint64_t> new_version);

  // --- Terminal-side (pager / peer) -------------------------------------------

  // A request arrived at the forwarding terminal: no owner is known. Serialize
  // first-touch grants; serve from backing (home) or the shadow chain (peer).
  void HandleAtTerminal(AccessRequest req);
  Task ServeFromBacking(AccessRequest req);
  Task ServeByPull(AccessRequest req);
  void FinishTerminal(const MemObjectId& id, PageIndex page);

  // --- Internode paging (§3.6) -------------------------------------------------

  Task EvictionTask(MemObjectId id, PageIndex page, PageBuffer data, bool dirty,
                    uint64_t version, std::vector<NodeId> readers);
  // Re-routes requests parked on this node: same-space requests are forwarded
  // toward `next` (new owner or terminal); cross-space (pull) requests get a
  // retry indicator (§3.7.3).
  void ForwardQueue(const MemObjectId& id, PageIndex page, NodeId next);

  // --- Message handlers ---------------------------------------------------------

  void OnMessage(NodeId src, Message msg) override;

  // Stall-watchdog probe: base pending ops plus the coherency state of pages
  // stuck busy/pending and the depth of their parked request queues.
  bool DescribeStall(std::string& out) const override;

  void OnAccessReply(NodeId src, const AccessReply& reply, PageBuffer data);
  void OnInvalidate(NodeId src, const InvalidateMsg& m);
  void OnOwnershipOffer(NodeId src, const OwnershipOffer& m);
  void OnPageoutOffer(NodeId src, const PageoutOffer& m, PageBuffer data);
  void OnWriteback(NodeId src, const WritebackMsg& m, PageBuffer data);
  void OnPushRequest(NodeId src, const PushRequest& m);
  void OnPushData(NodeId src, const PushData& m, PageBuffer data);
  void OnMarkReadOnly(NodeId src, const MarkReadOnly& m);
  void OnStaticHint(const StaticHintMsg& m);
  void OnPullDone(const PullDone& m);

  // Pending multi-message exchanges (invalidation rounds, push rounds, ...)
  // live in the ProtocolAgent pending-op table.

  AsvmSystem& system_;
  NodeVm& vm_;
  FailoverConfig failover_;
  // Backup role: newest shadowed writeback per page, streamed from homes whose
  // ring successor this node is. Ordered maps so promotion seeds the recovered
  // overlay in a shard-count-invariant order.
  struct ShadowPage {
    uint64_t version = 0;
    PageBuffer data;
  };
  std::map<MemObjectId, std::map<PageIndex, ShadowPage>> shadow_;
  // Primary-side ledger of everything this node mirrored as a home, plus the
  // node the last mirror went to. When that backup dies the ledger replays to
  // the new ring successor (see RetargetShadowStream / ReplayShadowLedger).
  std::map<MemObjectId, std::map<PageIndex, ShadowPage>> sent_shadow_;
  NodeId shadow_target_ = kInvalidNode;
  // Witness role: pages some home committed, recorded without contents.
  // Promotion consults every survivor's manifest before declaring kDataLost.
  std::map<MemObjectId, std::set<PageIndex>> shadow_manifest_;
  std::unordered_map<MemObjectId, std::unique_ptr<ObjectState>> objects_;
  std::unordered_map<uint64_t, Promise<bool>> scan_waiters_;  // push-scan replies
};

}  // namespace asvm

#endif  // SRC_ASVM_AGENT_H_
