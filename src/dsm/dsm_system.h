// Common interface of the two distributed memory managers (XMM and ASVM), so
// workloads and benchmarks run unchanged against either system.
#ifndef SRC_DSM_DSM_SYSTEM_H_
#define SRC_DSM_DSM_SYSTEM_H_

#include <memory>
#include <string_view>
#include <vector>

#include "src/common/types.h"
#include "src/dsm/backing.h"
#include "src/dsm/cluster.h"
#include "src/machvm/vm_map.h"
#include "src/machvm/vm_object.h"
#include "src/sim/future.h"

namespace asvm {

class DsmSystem {
 public:
  virtual ~DsmSystem() = default;

  virtual std::string_view name() const = 0;

  // The simulated multicomputer the system is built on.
  virtual Cluster& cluster() = 0;

  // Allocates an id for a multi-message protocol exchange (invalidation
  // rounds, flush rounds, push rounds). One monotonic sequence per system so
  // the agents' shared pending-op tables (ProtocolAgent) key off it.
  uint64_t NextOpId() { return next_op_id_++; }

  // Creates an anonymous distributed shared memory region homed at `home`
  // (zero-filled; paging space on the home's I/O group as backing).
  virtual MemObjectId CreateSharedRegion(NodeId home, VmSize pages) = 0;

  // Creates a distributed region backed by `file_id` of the cluster's file
  // pager.
  virtual MemObjectId CreateFileRegion(int32_t file_id, VmSize pages) = 0;

  // §6 extension: a region over a striped file — page p is served by stripe
  // p % k, each stripe its own (pager, file) pair on its own I/O node.
  // ASVM forwards per stripe; XMM still funnels through one manager (the
  // UFS/PFS contrast the paper's future-work section draws).
  virtual MemObjectId CreateStripedRegion(const std::vector<StripedBacking::Stripe>& stripes,
                                          VmSize pages) = 0;

  // Returns the node-local VM representation of the object, creating and
  // registering it on first use (the node becomes a sharer of the object).
  virtual std::shared_ptr<VmObject> Attach(NodeId node, const MemObjectId& id) = 0;

  // Remote task creation: builds a map on `dst` that delayed-copies every
  // kCopy entry of `parent` (on `src`) and shares kShare entries. Completes
  // when the child map is usable.
  virtual Future<VmMap*> RemoteFork(NodeId src, VmMap& parent, NodeId dst) = 0;

  // Non-pageable DSM metadata held on `node`, in bytes (invariant 7: ASVM is
  // O(resident); the XMM manager is Θ(pages × sharers)).
  virtual size_t MetadataBytes(NodeId node) const = 0;

 private:
  uint64_t next_op_id_ = 1;
};

}  // namespace asvm

#endif  // SRC_DSM_DSM_SYSTEM_H_
