// Common interface of the two distributed memory managers (XMM and ASVM), so
// workloads and benchmarks run unchanged against either system.
#ifndef SRC_DSM_DSM_SYSTEM_H_
#define SRC_DSM_DSM_SYSTEM_H_

#include <memory>
#include <string_view>
#include <vector>

#include "src/common/types.h"
#include "src/dsm/backing.h"
#include "src/dsm/cluster.h"
#include "src/machvm/vm_map.h"
#include "src/machvm/vm_object.h"
#include "src/sim/future.h"

namespace asvm {

class DsmSystem {
 public:
  virtual ~DsmSystem() = default;

  virtual std::string_view name() const = 0;

  // The simulated multicomputer the system is built on.
  virtual Cluster& cluster() = 0;

  // Allocates an id for a multi-message protocol exchange (invalidation
  // rounds, flush rounds, push rounds) originated by `origin`. Ids embed the
  // originating node and count per node, so allocation is deterministic and
  // race-free under sharding (a global counter would hand out ids in thread
  // interleaving order); the agents' pending-op tables only need uniqueness.
  uint64_t NextOpId(NodeId origin) {
    return (static_cast<uint64_t>(origin) + 1) << 40 | ++next_op_id_[origin];
  }

  // Creates an anonymous distributed shared memory region homed at `home`
  // (zero-filled; paging space on the home's I/O group as backing).
  virtual MemObjectId CreateSharedRegion(NodeId home, VmSize pages) = 0;

  // Creates a distributed region backed by `file_id` of the cluster's file
  // pager.
  virtual MemObjectId CreateFileRegion(int32_t file_id, VmSize pages) = 0;

  // §6 extension: a region over a striped file — page p is served by stripe
  // p % k, each stripe its own (pager, file) pair on its own I/O node.
  // ASVM forwards per stripe; XMM still funnels through one manager (the
  // UFS/PFS contrast the paper's future-work section draws).
  virtual MemObjectId CreateStripedRegion(const std::vector<StripedBacking::Stripe>& stripes,
                                          VmSize pages) = 0;

  // Returns the node-local VM representation of the object, creating and
  // registering it on first use (the node becomes a sharer of the object).
  virtual std::shared_ptr<VmObject> Attach(NodeId node, const MemObjectId& id) = 0;

  // Remote task creation: builds a map on `dst` that delayed-copies every
  // kCopy entry of `parent` (on `src`) and shares kShare entries. Completes
  // when the child map is usable.
  virtual Future<VmMap*> RemoteFork(NodeId src, VmMap& parent, NodeId dst) = 0;

  // Non-pageable DSM metadata held on `node`, in bytes (invariant 7: ASVM is
  // O(resident); the XMM manager is Θ(pages × sharers)).
  virtual size_t MetadataBytes(NodeId node) const = 0;

  // Failover (DESIGN.md §14): a removed node with FaultPlan restore_at set
  // rejoins at that instant with cold caches. Called from a cluster mutation
  // (every engine quiescent); the system purges the node's cached page state
  // and hints, and reconstructs any manager/home records the node still
  // legitimately holds from the surviving agents. Default: nothing to do.
  virtual void ColdRestart(NodeId node) { (void)node; }

  // Gossip death notification (DESIGN.md §14): the first agent whose pending
  // op resolves kNodeDown reports each confirmed-dead target here, from its
  // own engine context. Backends enqueue a barrier-ordered death-notice
  // mutation so every bystander fails over at the next sequencing point
  // instead of independently burning its full retry horizon. Default: no
  // gossip (each requester detects silence on its own).
  virtual void ReportDeath(NodeId reporter, NodeId dead) {
    (void)reporter;
    (void)dead;
  }

 protected:
  // Concrete systems size the per-node id space during construction.
  void InitOpIds(int node_count) { next_op_id_.assign(static_cast<size_t>(node_count), 0); }

 private:
  // Indexed by originating node; each slot is only touched from its node's
  // shard thread, so no synchronization is needed.
  std::vector<uint64_t> next_op_id_;
};

}  // namespace asvm

#endif  // SRC_DSM_DSM_SYSTEM_H_
