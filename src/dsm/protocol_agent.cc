#include "src/dsm/protocol_agent.h"

#include <algorithm>
#include <utility>

#include "src/common/log.h"

namespace asvm {

namespace {

// Delivered-op-id window: large enough that a duplicate arriving while its
// original is still anywhere in the pipeline is caught, small enough that the
// host-side set stays O(1)-ish per agent.
constexpr size_t kDeliveredWindow = 512;

}  // namespace

ProtocolAgent::ProtocolAgent(DsmSystem& dsm, NodeId node)
    : node_(node),
      stats_(&dsm.cluster().stats()),
      dsm_(dsm),
      engine_(dsm.cluster().engine()),
      system_name_(dsm.name()),
      retry_(dsm.cluster().params().retry) {
  stall_probe_id_ = engine_.AddStallProbe(
      [this](std::string& report) { return DescribeStall(report); });
}

ProtocolAgent::~ProtocolAgent() { engine_.RemoveStallProbe(stall_probe_id_); }

void ProtocolAgent::Listen(Transport& transport, ProtocolId protocol) {
  transport.RegisterHandler(
      protocol, node_, [this](NodeId src, Message msg) { OnMessage(src, std::move(msg)); });
}

Future<Status> ProtocolAgent::Process(SimDuration cost) {
  Promise<Status> done(engine_);
  const SimTime now = engine_.Now();
  const SimTime ready = std::max(now, process_busy_until_) + cost;
  process_busy_until_ = ready;
  engine_.Schedule(ready - now, [done]() { done.Set(Status::kOk); });
  return done.GetFuture();
}

uint64_t ProtocolAgent::OpenOp(int outstanding, const char* what, MemObjectId object,
                               PageIndex page) {
  const uint64_t op = dsm_.NextOpId();
  auto pending = std::make_unique<PendingOp>(engine_);
  pending->outstanding = outstanding;
  pending->what = what;
  pending->object = object;
  pending->page = page;
  pending->opened_at = engine_.Now();
  pending_ops_[op] = std::move(pending);
  return op;
}

Future<Status> ProtocolAgent::OpFuture(uint64_t op_id) {
  return pending_ops_.at(op_id)->done.GetFuture();
}

ProtocolAgent::PendingOp* ProtocolAgent::FindOp(uint64_t op_id) {
  auto it = pending_ops_.find(op_id);
  return it == pending_ops_.end() ? nullptr : it->second.get();
}

void ProtocolAgent::EraseOp(uint64_t op_id) { pending_ops_.erase(op_id); }

void ProtocolAgent::ResolveOp(uint64_t op_id, Status status) {
  auto it = pending_ops_.find(op_id);
  if (it == pending_ops_.end()) {
    // A reply for an op that already resolved (e.g. a retry's duplicate
    // decline, or an answer landing after the deadline gave up).
    CountDuplicate();
    return;
  }
  it->second->done.Set(status);
  pending_ops_.erase(it);
}

void ProtocolAgent::AckOp(uint64_t op_id, NodeId from, bool keep_entry) {
  auto it = pending_ops_.find(op_id);
  if (it == pending_ops_.end()) {
    CountDuplicate();
    return;
  }
  PendingOp& op = *it->second;
  if (from != kInvalidNode &&
      std::find(op.acked.begin(), op.acked.end(), from) != op.acked.end()) {
    // This responder already answered; a retry produced a second copy.
    CountDuplicate();
    return;
  }
  if (from != kInvalidNode) {
    op.acked.push_back(from);
  }
  if (op.done.is_set()) {
    // Entry kept for payload harvest after resolving; nothing left to count.
    return;
  }
  if (--op.outstanding == 0) {
    op.done.Set(Status::kOk);
    if (!keep_entry) {
      pending_ops_.erase(it);
    }
  }
}

void ProtocolAgent::ArmOp(uint64_t op_id, std::function<void()> resend) {
  if (retry_.timeout_ns <= 0) {
    return;
  }
  auto it = pending_ops_.find(op_id);
  if (it == pending_ops_.end()) {
    return;
  }
  it->second->resend = std::move(resend);
  engine_.Schedule(retry_.timeout_ns, [this, op_id]() { OpDeadline(op_id); });
}

SimDuration ProtocolAgent::RetryDelay(int attempts_done) const {
  double delay = static_cast<double>(retry_.timeout_ns);
  for (int i = 0; i < attempts_done; ++i) {
    delay *= retry_.backoff;
  }
  return static_cast<SimDuration>(delay);
}

void ProtocolAgent::OpDeadline(uint64_t op_id) {
  auto it = pending_ops_.find(op_id);
  if (it == pending_ops_.end() || it->second->done.is_set()) {
    return;  // resolved before the deadline — the common case
  }
  PendingOp& op = *it->second;
  if (op.attempts < retry_.max_retries && op.resend) {
    ++op.attempts;
    if (stats_ != nullptr) {
      stats_->Add("dsm.op_retries");
    }
    op.resend();
    engine_.Schedule(RetryDelay(op.attempts), [this, op_id]() { OpDeadline(op_id); });
    return;
  }
  if (stats_ != nullptr) {
    stats_->Add("dsm.op_timeouts");
  }
  ASVM_LOG_WARN << system_name_ << " node " << node_ << ": pending op " << op_id << " ("
                << op.what << ") exhausted " << op.attempts
                << " retries; resolving kTimeout";
  it->second->done.Set(Status::kTimeout);
  pending_ops_.erase(it);
}

bool ProtocolAgent::DuplicateDelivery(uint64_t op_id) {
  if (retry_.timeout_ns <= 0 || op_id == 0) {
    return false;  // retries disarmed (no duplicates possible) or unsolicited
  }
  if (delivered_ops_.count(op_id) != 0) {
    CountDuplicate();
    return true;
  }
  delivered_ops_.insert(op_id);
  delivered_fifo_.push_back(op_id);
  if (delivered_fifo_.size() > kDeliveredWindow) {
    delivered_ops_.erase(delivered_fifo_.front());
    delivered_fifo_.pop_front();
  }
  return false;
}

void ProtocolAgent::CountDuplicate() {
  if (stats_ != nullptr) {
    stats_->Add("dsm.duplicates_suppressed");
  }
}

bool ProtocolAgent::DescribeStall(std::string& out) const {
  if (pending_ops_.empty()) {
    return false;
  }
  // Sort op ids so reports are deterministic despite the unordered table.
  std::vector<uint64_t> ids;
  ids.reserve(pending_ops_.size());
  for (const auto& [id, op] : pending_ops_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (uint64_t id : ids) {
    const PendingOp& op = *pending_ops_.at(id);
    out += "  " + system_name_ + " node " + std::to_string(node_) + ": pending op " +
           std::to_string(id) + " (" + op.what + ")";
    if (op.object.valid()) {
      out += " object " + op.object.ToString();
    }
    if (op.page != kInvalidPage) {
      out += " page " + std::to_string(op.page);
    }
    out += ", " + std::to_string(op.outstanding) + " replies outstanding (" +
           std::to_string(op.acked.size()) + " received), opened t=" +
           std::to_string(op.opened_at) + " ns, " + std::to_string(op.attempts) +
           " retries\n";
  }
  return true;
}

}  // namespace asvm
