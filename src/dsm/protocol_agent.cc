#include "src/dsm/protocol_agent.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "src/common/log.h"

namespace asvm {

ProtocolAgent::ProtocolAgent(DsmSystem& dsm, NodeId node, TraceProtocol trace_protocol)
    : node_(node),
      stats_(&dsm.cluster().stats()),
      dsm_(dsm),
      engine_(dsm.cluster().engine_for(node)),
      system_name_(dsm.name()),
      retry_(dsm.cluster().params().retry),
      trace_(&dsm.cluster().trace_sink()),
      trace_protocol_(trace_protocol) {
  // The probe registers on the root engine (not this node's shard engine):
  // under sharding only the root runs stall checks, once, at the final global
  // drain — when every shard is quiescent and pending-op state is safe to read.
  stall_probe_id_ = dsm_.cluster().engine().AddStallProbe(
      [this](std::string& report) { return DescribeStall(report); });
  // A delivered request id must be remembered for as long as its initiator
  // may still resend it. The last retry fires after the sum of every armed
  // deadline; doubling that span covers transit and service slack, after
  // which the id can be forgotten without readmitting a duplicate.
  if (retry_.timeout_ns > 0) {
    constexpr SimDuration kHorizonCap = INT64_MAX / 4;
    SimDuration horizon = 0;
    for (int k = 0; k <= retry_.max_retries && horizon < kHorizonCap; ++k) {
      horizon += RetryDelay(k);
    }
    delivered_retention_ns_ = 2 * std::min(horizon, kHorizonCap);
  }
}

ProtocolAgent::~ProtocolAgent() { dsm_.cluster().engine().RemoveStallProbe(stall_probe_id_); }

void ProtocolAgent::Listen(Transport& transport, ProtocolId protocol) {
  transport.RegisterHandler(
      protocol, node_, [this](NodeId src, Message msg) { OnMessage(src, std::move(msg)); });
}

Future<Status> ProtocolAgent::Process(SimDuration cost) {
  Promise<Status> done(engine_);
  const SimTime now = engine_.Now();
  const SimTime ready = std::max(now, process_busy_until_) + cost;
  process_busy_until_ = ready;
  engine_.Schedule(ready - now, [done]() { done.Set(Status::kOk); });
  return done.GetFuture();
}

uint64_t ProtocolAgent::OpenOp(int outstanding, const char* what, MemObjectId object,
                               PageIndex page) {
  const uint64_t op = dsm_.NextOpId(node_);
  RegisterOp(op, outstanding, what, object, page);
  return op;
}

void ProtocolAgent::RegisterOp(uint64_t op_id, int outstanding, const char* what,
                               MemObjectId object, PageIndex page) {
  auto pending = std::make_unique<PendingOp>(engine_);
  pending->outstanding = outstanding;
  pending->what = what;
  pending->object = object;
  pending->page = page;
  pending->opened_at = engine_.Now();
  pending_ops_[op_id] = std::move(pending);
}

Future<Status> ProtocolAgent::OpFuture(uint64_t op_id) {
  return pending_ops_.at(op_id)->done.GetFuture();
}

ProtocolAgent::PendingOp* ProtocolAgent::FindOp(uint64_t op_id) {
  auto it = pending_ops_.find(op_id);
  return it == pending_ops_.end() ? nullptr : it->second.get();
}

void ProtocolAgent::EraseOp(uint64_t op_id) { pending_ops_.erase(op_id); }

void ProtocolAgent::ResolveOp(uint64_t op_id, Status status) {
  auto it = pending_ops_.find(op_id);
  if (it == pending_ops_.end()) {
    // A reply for an op that already resolved (e.g. a retry's duplicate
    // decline, or an answer landing after the deadline gave up).
    CountDuplicate();
    return;
  }
  it->second->done.Set(status);
  pending_ops_.erase(it);
}

void ProtocolAgent::AckOp(uint64_t op_id, NodeId from, bool keep_entry) {
  auto it = pending_ops_.find(op_id);
  if (it == pending_ops_.end()) {
    CountDuplicate();
    return;
  }
  PendingOp& op = *it->second;
  if (from != kInvalidNode &&
      std::find(op.acked.begin(), op.acked.end(), from) != op.acked.end()) {
    // This responder already answered; a retry produced a second copy.
    CountDuplicate();
    return;
  }
  if (from != kInvalidNode) {
    op.acked.push_back(from);
  }
  if (op.done.is_set()) {
    // Entry kept for payload harvest after resolving; nothing left to count.
    return;
  }
  if (--op.outstanding == 0) {
    op.done.Set(Status::kOk);
    if (!keep_entry) {
      pending_ops_.erase(it);
    }
  }
}

void ProtocolAgent::ArmOp(uint64_t op_id, std::function<void()> resend) {
  if (retry_.timeout_ns <= 0) {
    return;
  }
  auto it = pending_ops_.find(op_id);
  if (it == pending_ops_.end()) {
    return;
  }
  it->second->resend = std::move(resend);
  engine_.Schedule(retry_.timeout_ns, [this, op_id]() { OpDeadline(op_id); });
}

SimDuration ProtocolAgent::RetryDelay(int attempts_done) const {
  // The backoff grows geometrically, so an aggressive policy (large backoff,
  // many retries) exceeds int64 range after a handful of doublings; a raw
  // cast of such a double is UB and in practice lands negative, tripping the
  // scheduler's delay >= 0 check. Grow in double but saturate at the policy
  // cap before ever casting back.
  const SimDuration cap_ns = std::max(retry_.max_delay_ns, retry_.timeout_ns);
  const double cap = static_cast<double>(cap_ns);
  double delay = static_cast<double>(retry_.timeout_ns);
  for (int i = 0; i < attempts_done && delay < cap; ++i) {
    delay *= retry_.backoff;
  }
  if (!(delay < cap)) {
    return cap_ns;
  }
  return static_cast<SimDuration>(delay);
}

void ProtocolAgent::OpDeadline(uint64_t op_id) {
  auto it = pending_ops_.find(op_id);
  if (it == pending_ops_.end() || it->second->done.is_set()) {
    return;  // resolved before the deadline — the common case
  }
  PendingOp& op = *it->second;
  if (op.attempts < retry_.max_retries && op.resend) {
    ++op.attempts;
    if (stats_ != nullptr) {
      stats_->Add("dsm.op_retries");
    }
    const SimDuration next_deadline = RetryDelay(op.attempts);
    Trace(TraceKind::kRetry, op.object, op.page, kInvalidNode, next_deadline, op_id);
    op.resend();
    engine_.Schedule(next_deadline, [this, op_id]() { OpDeadline(op_id); });
    return;
  }
  // Retries exhausted. Classify the failure: when the fault plan confirms
  // every still-unanswered target node is removed, this is not a transient
  // loss — resolve kNodeDown so failover-aware callers can promote a backup
  // rather than blindly retrying. Without a fault plan (or when any silent
  // target is still alive) the op resolves kTimeout exactly as before.
  Status status = Status::kTimeout;
  std::vector<NodeId> dead_targets;
  const FaultPlan* plan = dsm_.cluster().fault_plan();
  if (plan != nullptr && !op.targets.empty()) {
    const SimTime now = engine_.Now();
    bool all_unanswered_dead = true;
    for (NodeId t : op.targets) {
      if (std::find(op.acked.begin(), op.acked.end(), t) != op.acked.end()) {
        continue;
      }
      if (plan->NodeAlive(t, now)) {
        all_unanswered_dead = false;
        break;
      }
      dead_targets.push_back(t);
    }
    if (!dead_targets.empty() && all_unanswered_dead) {
      status = Status::kNodeDown;
    } else {
      dead_targets.clear();
    }
  }
  if (stats_ != nullptr) {
    stats_->Add(status == Status::kNodeDown ? "dsm.op_node_down" : "dsm.op_timeouts");
  }
  Trace(status == Status::kNodeDown ? TraceKind::kFailover : TraceKind::kTimeout, op.object,
        op.page, kInvalidNode, op.attempts, op_id);
  ASVM_LOG_WARN << system_name_ << " node " << node_ << ": pending op " << op_id << " ("
                << op.what << ") exhausted " << op.attempts << " retries; resolving "
                << ToString(status);
  auto on_fail = std::move(op.on_fail);
  it->second->done.Set(status);
  pending_ops_.erase(it);
  // Gossip the confirmed deaths before the local failover hook runs: the
  // backend enqueues a barrier-ordered death notice so every bystander fails
  // over at the next sequencing point instead of burning its own horizon.
  for (NodeId t : dead_targets) {
    dsm_.ReportDeath(node_, t);
  }
  if (on_fail) {
    on_fail(status);
  }
}

int ProtocolAgent::FailOpsOnDeadTargets() {
  const FaultPlan* plan = dsm_.cluster().fault_plan();
  if (plan == nullptr || pending_ops_.empty()) {
    return 0;
  }
  const SimTime now = engine_.Now();
  // Snapshot + sort: the unordered table must not decide failure order, and
  // `on_fail` hooks may insert fresh ops while we walk.
  std::vector<uint64_t> ids;
  ids.reserve(pending_ops_.size());
  for (const auto& [id, op] : pending_ops_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  int failed = 0;
  for (uint64_t id : ids) {
    auto it = pending_ops_.find(id);
    if (it == pending_ops_.end() || it->second->done.is_set()) {
      continue;
    }
    PendingOp& op = *it->second;
    if (op.targets.empty()) {
      continue;
    }
    bool any_unanswered = false;
    bool all_unanswered_dead = true;
    for (NodeId t : op.targets) {
      if (std::find(op.acked.begin(), op.acked.end(), t) != op.acked.end()) {
        continue;
      }
      any_unanswered = true;
      if (plan->NodeAlive(t, now)) {
        all_unanswered_dead = false;
        break;
      }
    }
    if (!any_unanswered || !all_unanswered_dead) {
      continue;
    }
    if (stats_ != nullptr) {
      stats_->Add("dsm.op_node_down");
    }
    Trace(TraceKind::kFailover, op.object, op.page, kInvalidNode, op.attempts, id);
    auto on_fail = std::move(op.on_fail);
    it->second->done.Set(Status::kNodeDown);
    pending_ops_.erase(it);
    ++failed;
    if (on_fail) {
      on_fail(Status::kNodeDown);
    }
  }
  return failed;
}

bool ProtocolAgent::DuplicateDelivery(uint64_t op_id) {
  if (retry_.timeout_ns <= 0 || op_id == 0) {
    return false;  // retries disarmed (no duplicates possible) or unsolicited
  }
  // Forget only ids old enough that no retry of their op can still be in
  // flight. Eviction is driven by simulated time, never by table size: under
  // a wide fan-out a count-bounded window would evict live ids and readmit
  // their late duplicates.
  const SimTime now = engine_.Now();
  while (!delivered_fifo_.empty() &&
         now - delivered_fifo_.front().second > delivered_retention_ns_) {
    delivered_ops_.erase(delivered_fifo_.front().first);
    delivered_fifo_.pop_front();
  }
  if (delivered_ops_.count(op_id) != 0) {
    CountDuplicate();
    return true;
  }
  delivered_ops_.insert(op_id);
  delivered_fifo_.emplace_back(op_id, now);
  return false;
}

void ProtocolAgent::CountDuplicate() {
  if (stats_ != nullptr) {
    stats_->Add("dsm.duplicates_suppressed");
  }
}

void ProtocolAgent::Trace(TraceKind kind, const MemObjectId& object, PageIndex page,
                          NodeId peer, int64_t aux, uint64_t op) {
  if (!trace_->armed()) {
    return;
  }
  TraceEvent e;
  e.time = engine_.Now();
  e.node = node_;
  e.protocol = trace_protocol_;
  e.kind = kind;
  e.object = object;
  e.page = page;
  e.peer = peer;
  e.aux = aux;
  e.op = op;
  trace_->Emit(e);
}

bool ProtocolAgent::DescribeStall(std::string& out) const {
  if (pending_ops_.empty()) {
    return false;
  }
  // Sort op ids so reports are deterministic despite the unordered table.
  std::vector<uint64_t> ids;
  ids.reserve(pending_ops_.size());
  for (const auto& [id, op] : pending_ops_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (uint64_t id : ids) {
    const PendingOp& op = *pending_ops_.at(id);
    out += "  " + system_name_ + " node " + std::to_string(node_) + ": pending op " +
           std::to_string(id) + " (" + op.what + ")";
    if (op.object.valid()) {
      out += " object " + op.object.ToString();
    }
    if (op.page != kInvalidPage) {
      out += " page " + std::to_string(op.page);
    }
    out += ", " + std::to_string(op.outstanding) + " replies outstanding (" +
           std::to_string(op.acked.size()) + " received), opened t=" +
           std::to_string(op.opened_at) + " ns, " + std::to_string(op.attempts) +
           " retries\n";
  }
  return true;
}

}  // namespace asvm
