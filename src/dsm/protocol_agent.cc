#include "src/dsm/protocol_agent.h"

#include <algorithm>
#include <utility>

namespace asvm {

ProtocolAgent::ProtocolAgent(DsmSystem& dsm, NodeId node)
    : node_(node),
      stats_(&dsm.cluster().stats()),
      dsm_(dsm),
      engine_(dsm.cluster().engine()) {}

ProtocolAgent::~ProtocolAgent() = default;

void ProtocolAgent::Listen(Transport& transport, ProtocolId protocol) {
  transport.RegisterHandler(
      protocol, node_, [this](NodeId src, Message msg) { OnMessage(src, std::move(msg)); });
}

Future<Status> ProtocolAgent::Process(SimDuration cost) {
  Promise<Status> done(engine_);
  const SimTime now = engine_.Now();
  const SimTime ready = std::max(now, process_busy_until_) + cost;
  process_busy_until_ = ready;
  engine_.Schedule(ready - now, [done]() { done.Set(Status::kOk); });
  return done.GetFuture();
}

uint64_t ProtocolAgent::OpenOp(int outstanding) {
  const uint64_t op = dsm_.NextOpId();
  auto pending = std::make_unique<PendingOp>(engine_);
  pending->outstanding = outstanding;
  pending_ops_[op] = std::move(pending);
  return op;
}

Future<Status> ProtocolAgent::OpFuture(uint64_t op_id) {
  return pending_ops_.at(op_id)->done.GetFuture();
}

ProtocolAgent::PendingOp* ProtocolAgent::FindOp(uint64_t op_id) {
  auto it = pending_ops_.find(op_id);
  return it == pending_ops_.end() ? nullptr : it->second.get();
}

void ProtocolAgent::EraseOp(uint64_t op_id) { pending_ops_.erase(op_id); }

void ProtocolAgent::ResolveOp(uint64_t op_id, Status status) {
  auto it = pending_ops_.find(op_id);
  if (it == pending_ops_.end()) {
    return;
  }
  it->second->done.Set(status);
  pending_ops_.erase(it);
}

void ProtocolAgent::AckOp(uint64_t op_id, bool keep_entry) {
  auto it = pending_ops_.find(op_id);
  if (it == pending_ops_.end()) {
    return;
  }
  if (--it->second->outstanding == 0) {
    it->second->done.Set(Status::kOk);
    if (!keep_entry) {
      pending_ops_.erase(it);
    }
  }
}

}  // namespace asvm
