#include "src/dsm/cluster_mutator.h"

#include <utility>

#include "src/common/log.h"

namespace asvm {

ClusterMutator::ClusterMutator(ShardRouter* router, int shard_count, int node_count,
                               SimDuration latency, StatsRegistry* stats)
    : router_(router), latency_(latency), stats_(stats) {
  ASVM_CHECK_MSG(latency_ >= 1, "mutation latency collapsed to zero");
  outboxes_.resize(static_cast<size_t>(shard_count));
  seq_.assign(static_cast<size_t>(node_count), 0);
}

void ClusterMutator::Enqueue(NodeId origin, EventFn fn) {
  armed_ = true;
  Pending p;
  p.send_time = router_->engine_for(origin).Now();
  p.origin = origin;
  p.seq = ++seq_[static_cast<size_t>(origin)];
  p.fn = std::move(fn);
  outboxes_[static_cast<size_t>(router_->shard_of(origin))].push_back(std::move(p));
}

void ClusterMutator::Collect() {
  for (auto& outbox : outboxes_) {
    for (Pending& p : outbox) {
      heap_.push(std::move(p));
    }
    outbox.clear();
  }
}

bool ClusterMutator::Idle() const {
  if (!heap_.empty()) {
    return false;
  }
  for (const auto& outbox : outboxes_) {
    if (!outbox.empty()) {
      return false;
    }
  }
  return true;
}

SimTime ClusterMutator::NextApplyTime() const {
  if (heap_.empty()) {
    return kNever;
  }
  const SimTime t = heap_.top().send_time;
  return latency_ > kNever - t ? kNever : t + latency_;
}

void ClusterMutator::ApplyAt(SimTime when) {
  while (!heap_.empty()) {
    const SimTime t = heap_.top().send_time;
    const SimTime apply = latency_ > kNever - t ? kNever : t + latency_;
    if (apply != when) {
      ASVM_CHECK_MSG(apply > when, "mutation missed its apply time");
      break;
    }
    Pending p = std::move(const_cast<Pending&>(heap_.top()));
    heap_.pop();
    stats_->Add("sim.mutations_applied");
    p.fn();
  }
}

}  // namespace asvm
