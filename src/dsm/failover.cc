#include "src/dsm/failover.h"

namespace asvm {

NodeId RingSuccessor(NodeId node, int node_count, const FaultPlan* plan, SimTime now) {
  for (int step = 1; step < node_count; ++step) {
    const NodeId candidate = static_cast<NodeId>((node + step) % node_count);
    if (plan == nullptr || plan->NodeAlive(candidate, now)) {
      return candidate;
    }
  }
  return kInvalidNode;
}

}  // namespace asvm
