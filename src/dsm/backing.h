// Backing stores for distributed memory objects, used by the DSM layer on an
// object's home node when no cached copy exists anywhere: anonymous regions
// fall back to paging space, file regions to the file pager.
#ifndef SRC_DSM_BACKING_H_
#define SRC_DSM_BACKING_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/machvm/default_pager.h"
#include "src/machvm/file_pager.h"
#include "src/machvm/page.h"

namespace asvm {

class ObjectBacking {
 public:
  virtual ~ObjectBacking() = default;

  // True when the backing holds real contents for the page; false means the
  // page is fresh (reads as zeros, no I/O needed).
  virtual bool HasData(PageIndex page) const = 0;

  virtual void Read(PageIndex page, size_t page_size,
                    std::function<void(PageBuffer)> done) = 0;

  virtual void Write(PageIndex page, PageBuffer data, std::function<void()> done) = 0;

  // Cost the pager charges for granting a fresh page (zero-fill permission).
  virtual void GrantFresh(PageIndex page, std::function<void()> done) = 0;
};

// Anonymous shared region: fresh until written; evictions that reach the
// pager land in the home node's paging space.
class AnonBacking : public ObjectBacking {
 public:
  AnonBacking(Engine& engine, DefaultPager& pager, uint64_t key)
      : engine_(engine), pager_(pager), key_(key) {}

  bool HasData(PageIndex page) const override { return pager_.HasPage(key_, page); }

  void Read(PageIndex page, size_t page_size, std::function<void(PageBuffer)> done) override {
    if (!HasData(page)) {
      engine_.Post([page_size, done = std::move(done)]() { done(AllocPage(page_size)); });
      return;
    }
    pager_.ReadPage(key_, page, std::move(done));
  }

  void Write(PageIndex page, PageBuffer data, std::function<void()> done) override {
    pager_.WritePage(key_, page, std::move(data), std::move(done));
  }

  void GrantFresh(PageIndex, std::function<void()> done) override {
    engine_.Post(std::move(done));
  }

 private:
  Engine& engine_;
  DefaultPager& pager_;
  uint64_t key_;
};

// Mapped file region served by the user-level file pager on an I/O node.
class FileBacking : public ObjectBacking {
 public:
  FileBacking(FilePager& pager, int32_t file_id) : pager_(pager), file_id_(file_id) {}

  bool HasData(PageIndex page) const override { return pager_.HasData(file_id_, page); }

  void Read(PageIndex page, size_t page_size, std::function<void(PageBuffer)> done) override {
    pager_.ReadPage(file_id_, page, page_size, std::move(done));
  }

  void Write(PageIndex page, PageBuffer data, std::function<void()> done) override {
    pager_.WritePage(file_id_, page, std::move(data), std::move(done));
  }

  void GrantFresh(PageIndex page, std::function<void()> done) override {
    pager_.GrantFresh(file_id_, page, std::move(done));
  }

 private:
  FilePager& pager_;
  int32_t file_id_;
};

// §6 future-work: a striped file — page p lives on stripe p % k, each stripe
// served by its own file pager (and disk) on its own I/O node. This is the
// PFS side of the UFS/PFS hybrid the paper sketches; combined with the DSM's
// caching it gives striping + local caching + full Unix semantics.
class StripedBacking : public ObjectBacking {
 public:
  struct Stripe {
    FilePager* pager = nullptr;
    int32_t file_id = -1;
  };

  explicit StripedBacking(std::vector<Stripe> stripes) : stripes_(std::move(stripes)) {}

  size_t stripe_count() const { return stripes_.size(); }
  const Stripe& stripe_of(PageIndex page) const {
    return stripes_[static_cast<size_t>(page) % stripes_.size()];
  }
  NodeId stripe_node(PageIndex page) const { return stripe_of(page).pager->node(); }

  bool HasData(PageIndex page) const override {
    const Stripe& s = stripe_of(page);
    return s.pager->HasData(s.file_id, StripePage(page));
  }

  void Read(PageIndex page, size_t page_size, std::function<void(PageBuffer)> done) override {
    const Stripe& s = stripe_of(page);
    s.pager->ReadPage(s.file_id, StripePage(page), page_size, std::move(done));
  }

  void Write(PageIndex page, PageBuffer data, std::function<void()> done) override {
    const Stripe& s = stripe_of(page);
    s.pager->WritePage(s.file_id, StripePage(page), std::move(data), std::move(done));
  }

  void GrantFresh(PageIndex page, std::function<void()> done) override {
    const Stripe& s = stripe_of(page);
    s.pager->GrantFresh(s.file_id, StripePage(page), std::move(done));
  }

 private:
  PageIndex StripePage(PageIndex page) const {
    return page / static_cast<PageIndex>(stripes_.size());
  }

  std::vector<Stripe> stripes_;
};

}  // namespace asvm

#endif  // SRC_DSM_BACKING_H_
