// Cluster-wide coroutine synchronization for workload drivers whose
// participants live on different nodes — and so, in a sharded run, on
// different engines. The single-engine primitives in src/sim/sync.h mutate a
// plain counter from whatever thread resumes the coroutine, which is exactly
// the cross-thread driver mutation the sharded contract forbids; these route
// every signal through the ClusterMutator instead, so arrival counts and
// wake-ups are sequenced at deterministic inter-window points and cost one
// lookahead uniformly at every shard count (--shards=1 included: arming the
// mutator switches the cluster onto the same windowed drain).
//
// Wake order is normalized to ascending node id. Because the node→shard map
// is monotone, that makes the single-engine execution order of the released
// coroutines (one queue, posted node-major) equal to the sharded replay
// order of anything they send (shard-major mailbox keys) — ties at the
// release timestamp stay byte-identical across shard counts.
#ifndef SRC_DSM_CLUSTER_SYNC_H_
#define SRC_DSM_CLUSTER_SYNC_H_

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <vector>

#include "src/common/log.h"
#include "src/common/types.h"
#include "src/dsm/cluster.h"

namespace asvm {

namespace internal {

struct ClusterWaiter {
  NodeId node;
  uint64_t order;  // registration order, tie-break among same-node waiters
  std::coroutine_handle<> handle;
};

// Resumes every registered waiter on its own node's engine, ascending node
// id (registration order within a node).
inline void ResumeClusterWaiters(Cluster& cluster, std::vector<ClusterWaiter>& waiters) {
  std::sort(waiters.begin(), waiters.end(),
            [](const ClusterWaiter& a, const ClusterWaiter& b) {
              return a.node != b.node ? a.node < b.node : a.order < b.order;
            });
  for (ClusterWaiter& w : waiters) {
    cluster.engine_for(w.node).Post([h = w.handle]() { h.resume(); });
  }
  waiters.clear();
}

}  // namespace internal

// Counted join: Add() from the driver (machine quiescent), Done(from) from
// any node's execution context; Wait(node) suspends until the count reaches
// zero. All internal state is touched only at mutation-apply time (every
// engine quiescent), so participants may live on any mix of shards.
class ClusterWaitGroup {
 public:
  explicit ClusterWaitGroup(Cluster& cluster) : cluster_(cluster) {
    cluster_.mutator().Arm();
  }
  ClusterWaitGroup(const ClusterWaitGroup&) = delete;
  ClusterWaitGroup& operator=(const ClusterWaitGroup&) = delete;

  // Driver-side only (machine quiescent): signals to expect.
  void Add(int n = 1) { count_ += n; }
  int count() const { return count_; }

  // Signals completion from node `from`'s execution context; takes effect at
  // the next mutation sequencing point, one lookahead later.
  void Done(NodeId from) {
    cluster_.mutator().Enqueue(from, [this]() {
      ASVM_CHECK_MSG(count_ > 0, "ClusterWaitGroup::Done below zero");
      if (--count_ == 0) {
        internal::ResumeClusterWaiters(cluster_, waiters_);
      }
    });
  }

  struct Awaiter {
    ClusterWaitGroup* wg;
    NodeId node;
    // Reading count_ here is safe: it only changes while every engine is
    // quiescent, and window boundaries order those writes against this read.
    bool await_ready() const { return wg->count_ == 0; }
    void await_suspend(std::coroutine_handle<> handle) {
      // Registration itself is a mutation: waiters_ must not grow from a
      // shard thread while another waiter registers elsewhere.
      wg->cluster_.mutator().Enqueue(node, [wg = wg, node = node, handle]() {
        if (wg->count_ == 0) {
          wg->cluster_.engine_for(node).Post([handle]() { handle.resume(); });
        } else {
          wg->waiters_.push_back({node, wg->next_order_++, handle});
        }
      });
    }
    void await_resume() const {}
  };

  // Awaitable from node `node`'s execution context.
  Awaiter Wait(NodeId node) { return Awaiter{this, node}; }

 private:
  friend struct Awaiter;
  Cluster& cluster_;
  int count_ = 0;
  uint64_t next_order_ = 0;
  std::vector<internal::ClusterWaiter> waiters_;
};

// Cyclic barrier across nodes: the round releases when all `parties` have
// arrived; reusable for the next round immediately (a party cannot re-arrive
// before its resume, so rounds cannot overlap).
class ClusterBarrier {
 public:
  ClusterBarrier(Cluster& cluster, int parties) : cluster_(cluster), parties_(parties) {
    ASVM_CHECK_MSG(parties >= 1, "barrier needs at least one party");
    cluster_.mutator().Arm();
  }
  ClusterBarrier(const ClusterBarrier&) = delete;
  ClusterBarrier& operator=(const ClusterBarrier&) = delete;

  struct Awaiter {
    ClusterBarrier* barrier;
    NodeId node;
    bool await_ready() const { return barrier->parties_ <= 1; }
    void await_suspend(std::coroutine_handle<> handle) {
      barrier->cluster_.mutator().Enqueue(node, [b = barrier, node = node, handle]() {
        b->waiters_.push_back({node, b->next_order_++, handle});
        if (static_cast<int>(b->waiters_.size()) == b->parties_) {
          internal::ResumeClusterWaiters(b->cluster_, b->waiters_);
        }
      });
    }
    void await_resume() const {}
  };

  // Awaitable arrival from node `node`'s execution context.
  Awaiter Arrive(NodeId node) { return Awaiter{this, node}; }

 private:
  friend struct Awaiter;
  Cluster& cluster_;
  int parties_;
  uint64_t next_order_ = 0;
  std::vector<internal::ClusterWaiter> waiters_;
};

}  // namespace asvm

#endif  // SRC_DSM_CLUSTER_SYNC_H_
