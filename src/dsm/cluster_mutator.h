// Shard-safe, deterministically ordered cluster mutations (DESIGN.md §13).
//
// Driver-originated structural changes — fork directory inserts, region
// creation mid-run, cross-node completion signals — mutate state that many
// nodes (and so, in a sharded run, many engines) observe. Executing them
// directly from whatever thread happens to hold the driver breaks both the
// memory model (a shard thread may be reading the directory concurrently) and
// the lookahead argument (a mutation at time t visible to another shard
// before t + lookahead would invalidate the causally-closed window).
//
// The mutator fixes both with the discipline the mesh mailbox already uses
// for messages: a mutation enqueued from node `origin`'s execution context is
// stamped with that engine's current time and applied exactly one lookahead
// later, at an inter-window sequencing point where every engine is quiescent
// and all clocks equal the apply time. Ties are resolved by
// (origin node, per-origin seq) — node order refines the mailbox's shard
// order because the node→shard map is monotone, and unlike a per-shard
// counter it is independent of the shard count, so the replay order at equal
// timestamps is byte-identical at --shards=1 and --shards=N. Shard count
// stays a pure performance knob.
#ifndef SRC_DSM_CLUSTER_MUTATOR_H_
#define SRC_DSM_CLUSTER_MUTATOR_H_

#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/sim/event_fn.h"
#include "src/sim/shard_router.h"

namespace asvm {

class ClusterMutator {
 public:
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  ClusterMutator(ShardRouter* router, int shard_count, int node_count,
                 SimDuration latency, StatsRegistry* stats);

  ClusterMutator(const ClusterMutator&) = delete;
  ClusterMutator& operator=(const ClusterMutator&) = delete;

  // Enqueues `fn` from node `origin`'s execution context: an event running on
  // origin's engine, or the driver while the machine is quiescent. The
  // mutation is stamped with origin's current engine time and applied at
  // stamp + latency(), on the coordinator thread, with every engine quiescent
  // and synchronized to the apply time. Arms the mutator as a side effect
  // (Cluster::Run CHECKs that the first arm did not happen mid-drain).
  void Enqueue(NodeId origin, EventFn fn);

  // Switches Cluster::Run/RunFor from the exact legacy drain onto the
  // windowed, mutation-aware drain. Sticky; call before the first Run that
  // may observe an Enqueue. Constructing a ClusterWaitGroup/ClusterBarrier or
  // starting a RemoteFork arms automatically.
  void Arm() { armed_ = true; }
  bool armed() const { return armed_; }

  // Uniform enqueue→apply latency: the cluster's conservative lookahead.
  SimDuration latency() const { return latency_; }

  // --- Coordinator-side drain interface (Cluster only) -----------------------
  // All four are called with every engine quiescent (between windows, or with
  // the single engine stopped).

  // Moves freshly-enqueued mutations from the per-shard outboxes into the
  // apply heap.
  void Collect();
  // No mutation pending anywhere (heap and outboxes).
  bool Idle() const;
  // Apply time of the earliest pending mutation, kNever when the heap is
  // empty. Only meaningful after Collect().
  SimTime NextApplyTime() const;
  // Pops and runs every mutation whose apply time is `when`, in
  // (send_time, origin, seq) order. Mutations enqueued by a running mutation
  // land in the outboxes for the next Collect().
  void ApplyAt(SimTime when);

 private:
  struct Pending {
    SimTime send_time;
    NodeId origin;
    uint64_t seq;
    EventFn fn;
  };
  struct ApplyLater {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.send_time != b.send_time) return a.send_time > b.send_time;
      if (a.origin != b.origin) return a.origin > b.origin;
      return a.seq > b.seq;
    }
  };

  ShardRouter* router_;
  SimDuration latency_;
  StatsRegistry* stats_;
  bool armed_ = false;
  // Only shard i's thread (or the quiescent driver) appends to outboxes_[i];
  // the coordinator drains them between windows — the same single-writer
  // discipline as the mesh mailbox. seq_ is per origin node: one origin's
  // enqueues all come from one execution context, and the counter's value
  // does not depend on how nodes are packed into shards.
  std::vector<std::vector<Pending>> outboxes_;
  std::vector<uint64_t> seq_;  // per-origin-node enqueue counter
  std::priority_queue<Pending, std::vector<Pending>, ApplyLater> heap_;
};

}  // namespace asvm

#endif  // SRC_DSM_CLUSTER_MUTATOR_H_
