#include "src/dsm/cluster.h"

namespace asvm {

Cluster::Cluster(ClusterParams params) : params_(params), engine_(params_.scheduler) {
  network_ = std::make_unique<Network>(engine_, Topology::ForNodeCount(params_.node_count),
                                       params_.mesh, &stats_);
  sts_ = std::make_unique<StsTransport>(engine_, *network_, &stats_);
  sts_ctl_ = std::make_unique<StsCtlTransport>(engine_, *network_, &stats_);
  norma_ = std::make_unique<NormaIpc>(engine_, *network_, &stats_);
  network_->set_trace(&trace_sink_);
  sts_->set_trace(&trace_sink_);
  sts_ctl_->set_trace(&trace_sink_);
  norma_->set_trace(&trace_sink_);
  if (!params_.fault.Empty()) {
    fault_plan_ = std::make_unique<FaultPlan>(engine_, params_.fault, params_.node_count,
                                              &stats_);
    network_->set_fault_plan(fault_plan_.get());
    sts_->set_fault_plan(fault_plan_.get());
    sts_ctl_->set_fault_plan(fault_plan_.get());
    norma_->set_fault_plan(fault_plan_.get());
  }

  const int groups = (params_.node_count + params_.nodes_per_io_group - 1) /
                     params_.nodes_per_io_group;
  for (int g = 0; g < groups; ++g) {
    disks_.push_back(std::make_unique<Disk>(engine_, params_.disk, &stats_));
    disks_.back()->set_trace(&trace_sink_, g * params_.nodes_per_io_group);
  }
  // Dedicated spindles for the mapped file system, so file traffic and paging
  // traffic do not artificially serialize in single-group configurations.
  // Pager i runs on node i (striped configurations spread I/O nodes).
  const int pagers = std::max(1, std::min(params_.file_pager_count, params_.node_count));
  for (int i = 0; i < pagers; ++i) {
    file_disks_.push_back(std::make_unique<Disk>(engine_, params_.disk, &stats_));
    file_disks_.back()->set_trace(&trace_sink_, i);
    file_pagers_.push_back(std::make_unique<FilePager>(
        engine_, /*io_node=*/i, file_disks_.back().get(), params_.file_pager, &stats_));
  }

  nodes_.resize(params_.node_count);
  for (NodeId n = 0; n < params_.node_count; ++n) {
    nodes_[n].vm = std::make_unique<NodeVm>(engine_, n, params_.vm, &stats_);
    nodes_[n].default_pager = std::make_unique<DefaultPager>(
        engine_, &paging_disk(n), &stats_);
    nodes_[n].vm->SetDefaultPager(nodes_[n].default_pager.get());
  }

  // Stall-watchdog probe: page faults whose coroutine is still alive when the
  // event queue drains are blocked forever (nothing outside the queue can
  // resume them). Inert unless a stall handler is installed on the engine.
  engine_.AddStallProbe([this](std::string& report) {
    bool blocked = false;
    for (const auto& node : nodes_) {
      const auto& faults = node.vm->faults_in_flight();
      if (faults.empty()) {
        continue;
      }
      blocked = true;
      for (const auto& [serial, fault] : faults) {
        report += "  node " + std::to_string(node.vm->node()) + ": page fault on addr " +
                  std::to_string(fault.addr) + " (" + ToString(fault.desired) +
                  ") in flight since t=" + std::to_string(fault.started) + " ns\n";
      }
    }
    return blocked;
  });
}

Cluster::~Cluster() = default;

void Cluster::EnablePerTypeMessageStats() {
  sts_->set_per_type_stats(true);
  sts_ctl_->set_per_type_stats(true);
  norma_->set_per_type_stats(true);
}

}  // namespace asvm
