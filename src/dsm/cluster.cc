#include "src/dsm/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/log.h"

namespace asvm {

namespace {

SimTime SatAdd(SimTime t, SimDuration d) {
  const SimTime limit = std::numeric_limits<SimTime>::max();
  return d > limit - t ? limit : t + d;
}

}  // namespace

Cluster::Cluster(ClusterParams params) : params_(params) {
  ASVM_CHECK_MSG(params_.shards >= 1, "cluster shards must be >= 1");
  if (params_.shards > 1) {
    // Shards partition the node space along I/O-group boundaries so a paging
    // disk and every node it serves live on one engine (ShardedEngine CHECKs
    // shards <= block count).
    sharded_ = std::make_unique<ShardedEngine>(params_.shards, params_.node_count,
                                               params_.nodes_per_io_group, params_.scheduler);
    router_.sharded = sharded_.get();
    outboxes_.resize(static_cast<size_t>(params_.shards));
    outbox_seq_.assign(static_cast<size_t>(params_.shards), 0);
    for (int s = 0; s < params_.shards; ++s) {
      // Shard queues drain many times per window while work legitimately
      // waits on mailboxed cross-shard messages; the real stall check runs
      // once at the end of Cluster::Run.
      sharded_->shard(s).set_defer_stall_checks(true);
    }
  } else {
    engine_ = std::make_unique<Engine>(params_.scheduler);
  }
  Engine& root = engine();
  router_.root = &root;

  network_ = std::make_unique<Network>(root, Topology::ForNodeCount(params_.node_count),
                                       params_.mesh, &stats_);
  sts_ = std::make_unique<StsTransport>(root, *network_, &stats_);
  sts_ctl_ = std::make_unique<StsCtlTransport>(root, *network_, &stats_);
  norma_ = std::make_unique<NormaIpc>(root, *network_, &stats_);
  network_->set_trace(&trace_sink_);
  sts_->set_trace(&trace_sink_);
  sts_ctl_->set_trace(&trace_sink_);
  norma_->set_trace(&trace_sink_);
  if (sharded_ != nullptr) {
    sts_->set_sharding(&router_, &outboxes_);
    sts_ctl_->set_sharding(&router_, &outboxes_);
    norma_->set_sharding(&router_, &outboxes_);
  }
  if (!params_.fault.Empty()) {
    fault_plan_ = std::make_unique<FaultPlan>(root, params_.fault, params_.node_count,
                                              &stats_);
    network_->set_fault_plan(fault_plan_.get());
    sts_->set_fault_plan(fault_plan_.get());
    sts_ctl_->set_fault_plan(fault_plan_.get());
    norma_->set_fault_plan(fault_plan_.get());
  }

  // Conservative lookahead: the cheapest causal chain from an event on one
  // node to an event on any other node is a software send on the cheapest
  // transport, route setup, and one mesh hop. Slow-node factors below 1 can
  // only shrink the software leg, so fold the smallest per-node factor in
  // (floor: never round the bound up).
  min_send_sw_ = std::min({sts_->costs().send_sw_ns, sts_ctl_->costs().send_sw_ns,
                           norma_->costs().send_sw_ns});
  if (!params_.fault.slow_nodes.empty()) {
    double min_factor = 1.0;
    for (NodeId n = 0; n < params_.node_count; ++n) {
      double f = 1.0;
      for (const NodeSlowdown& s : params_.fault.slow_nodes) {
        if (s.node == n) {
          f *= s.cost_factor;
        }
      }
      min_factor = std::min(min_factor, f);
    }
    if (min_factor < 1.0) {
      min_send_sw_ = static_cast<SimDuration>(
          std::floor(static_cast<double>(min_send_sw_) * min_factor));
    }
  }
  lookahead_ = min_send_sw_ + params_.mesh.route_setup_ns + params_.mesh.per_hop_ns;
  ASVM_CHECK_MSG(lookahead_ >= 1, "sharded lookahead collapsed to zero");

  const int groups = (params_.node_count + params_.nodes_per_io_group - 1) /
                     params_.nodes_per_io_group;
  for (int g = 0; g < groups; ++g) {
    Engine& group_engine = engine_for(g * params_.nodes_per_io_group);
    disks_.push_back(std::make_unique<Disk>(group_engine, params_.disk, &stats_));
    disks_.back()->set_trace(&trace_sink_, g * params_.nodes_per_io_group);
  }
  // Dedicated spindles for the mapped file system, so file traffic and paging
  // traffic do not artificially serialize in single-group configurations.
  // Pager i runs on node i (striped configurations spread I/O nodes).
  const int pagers = std::max(1, std::min(params_.file_pager_count, params_.node_count));
  for (int i = 0; i < pagers; ++i) {
    Engine& pager_engine = engine_for(i);
    file_disks_.push_back(std::make_unique<Disk>(pager_engine, params_.disk, &stats_));
    file_disks_.back()->set_trace(&trace_sink_, i);
    file_pagers_.push_back(std::make_unique<FilePager>(
        pager_engine, /*io_node=*/i, file_disks_.back().get(), params_.file_pager, &stats_));
  }

  nodes_.resize(params_.node_count);
  for (NodeId n = 0; n < params_.node_count; ++n) {
    Engine& node_engine = engine_for(n);
    nodes_[n].vm = std::make_unique<NodeVm>(node_engine, n, params_.vm, &stats_);
    nodes_[n].default_pager = std::make_unique<DefaultPager>(
        node_engine, &paging_disk(n), &stats_);
    nodes_[n].vm->SetDefaultPager(nodes_[n].default_pager.get());
  }

  // Stall-watchdog probe: page faults whose coroutine is still alive when the
  // event queue drains are blocked forever (nothing outside the queue can
  // resume them). Inert unless a stall handler is installed on the engine.
  // Registered on the root engine; in sharded runs it only fires from
  // ForceStallCheck at the final global drain, when every shard is quiescent.
  root.AddStallProbe([this](std::string& report) {
    bool blocked = false;
    for (const auto& node : nodes_) {
      const auto& faults = node.vm->faults_in_flight();
      if (faults.empty()) {
        continue;
      }
      blocked = true;
      for (const auto& [serial, fault] : faults) {
        report += "  node " + std::to_string(node.vm->node()) + ": page fault on addr " +
                  std::to_string(fault.addr) + " (" + ToString(fault.desired) +
                  ") in flight since t=" + std::to_string(fault.started) + " ns\n";
      }
    }
    return blocked;
  });
}

Cluster::~Cluster() = default;

void Cluster::EnablePerTypeMessageStats() {
  sts_->set_per_type_stats(true);
  sts_ctl_->set_per_type_stats(true);
  norma_->set_per_type_stats(true);
}

bool Cluster::Empty() const {
  if (sharded_ == nullptr) {
    return engine_->empty();
  }
  if (!sharded_->AllEmpty() || !pending_.empty()) {
    return false;
  }
  for (const auto& outbox : outboxes_) {
    if (!outbox.empty()) {
      return false;
    }
  }
  return true;
}

void Cluster::CollectOutboxes() {
  for (int s = 0; s < params_.shards; ++s) {
    for (MeshRecord& r : outboxes_[s]) {
      PendingRecord pr;
      pr.send_time = r.send_time;
      pr.shard = s;
      pr.seq = ++outbox_seq_[s];
      pr.record = std::move(r);
      pending_.push(std::move(pr));
    }
    outboxes_[s].clear();
  }
}

void Cluster::SyncClocks(SimTime time) {
  for (int s = 0; s < params_.shards; ++s) {
    sharded_->shard(s).AdvanceTo(time);
  }
}

SimTime Cluster::ProcessPending() {
  // Replays every record whose send time is safely below the conservative
  // horizon N0 + min_send_sw_: any event still pending on any shard fires at
  // or after N0, so any record it might yet emit stamps send_time >= that
  // horizon — nothing can slot in front of the records replayed here, and the
  // fabric's endpoint busy channels update in exactly the single-engine
  // order. Injected deliveries can become the new earliest event, so the
  // horizon is re-tightened as records land.
  SimTime n0 = sharded_->MinNextTime();
  while (!pending_.empty()) {
    if (n0 != ShardedEngine::kNoEvent &&
        pending_.top().send_time >= SatAdd(n0, min_send_sw_)) {
      break;
    }
    PendingRecord rec = std::move(const_cast<PendingRecord&>(pending_.top()));
    pending_.pop();
    stats_.Add("sim.sharded.records_replayed");
    const SimTime rx_done = network_->ProcessRecord(rec.record);
    if (rx_done >= 0) {
      engine_for(rec.record.dst).ScheduleAt(rx_done, std::move(rec.record.deliver));
      n0 = std::min(n0, rx_done);
    }
  }
  return n0;
}

bool Cluster::DrainSharded(SimTime until) {
  for (;;) {
    CollectOutboxes();
    const SimTime n0 = ProcessPending();
    if (n0 == ShardedEngine::kNoEvent) {
      // ProcessPending replays everything once all queues are empty.
      ASVM_CHECK_MSG(pending_.empty(), "drained with records still pending");
      // A drained engine's clock stops at its own last event, so the shard
      // clocks have diverged. The single-threaded timeline this run must
      // reproduce has ONE clock: re-synchronize every shard to the global
      // last-event time, so work the driver issues next starts from the same
      // instant on every node (otherwise a lagging shard could send a message
      // whose arrival lands in a faster shard's past).
      SyncClocks(sharded_->MaxNow());
      sharded_->shard(0).ForceStallCheck();
      return true;
    }
    if (n0 > until) {
      // Deadline exit: the single engine would sit exactly at the deadline
      // (RunUntil with events left), so park every shard clock there too.
      SyncClocks(until);
      return false;
    }
    // Events strictly below n0 + lookahead cannot be affected by any message
    // another shard has yet to send (those arrive at or after n0 + lookahead),
    // and everything already sent has been replayed — so the window up to and
    // including n0 + lookahead - 1 is causally closed.
    stats_.Add("sim.sharded.windows");
    sharded_->RunWindow(std::min(until, SatAdd(n0, lookahead_) - 1));
  }
}

uint64_t Cluster::Run() {
  if (sharded_ == nullptr) {
    return engine_->Run();
  }
  const uint64_t start = sharded_->TotalExecuted();
  DrainSharded(std::numeric_limits<SimTime>::max());
  return sharded_->TotalExecuted() - start;
}

bool Cluster::RunFor(SimDuration d) {
  if (sharded_ == nullptr) {
    return engine_->RunFor(d);
  }
  ASVM_CHECK_MSG(d >= 0, "negative RunFor duration");
  return DrainSharded(SatAdd(sharded_->MaxNow(), d));
}

void Cluster::set_event_limit(uint64_t per_engine_limit) {
  if (sharded_ != nullptr) {
    sharded_->set_event_limit(per_engine_limit);
  } else {
    engine_->set_event_limit(per_engine_limit);
  }
}

}  // namespace asvm
