#include "src/dsm/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/log.h"

namespace asvm {

namespace {

SimTime SatAdd(SimTime t, SimDuration d) {
  const SimTime limit = std::numeric_limits<SimTime>::max();
  return d > limit - t ? limit : t + d;
}

}  // namespace

Cluster::Cluster(ClusterParams params) : params_(params) {
  ASVM_CHECK_MSG(params_.shards >= 1, "cluster shards must be >= 1");
  // Shards partition the node space along I/O-group boundaries so a paging
  // disk and every node it serves live on one engine; more shards than blocks
  // cannot be used, so clamp rather than reject — the timeline is identical
  // at every shard count, making the request a pure performance preference.
  const int blocks = (params_.node_count + params_.nodes_per_io_group - 1) /
                     params_.nodes_per_io_group;
  params_.shards = std::min(params_.shards, blocks);
  outboxes_.resize(static_cast<size_t>(params_.shards));
  record_seq_.assign(static_cast<size_t>(params_.node_count), 0);
  if (params_.shards > 1) {
    sharded_ = std::make_unique<ShardedEngine>(params_.shards, params_.node_count,
                                               params_.nodes_per_io_group, params_.scheduler);
    router_.sharded = sharded_.get();
    for (int s = 0; s < params_.shards; ++s) {
      // Shard queues drain many times per window while work legitimately
      // waits on mailboxed cross-shard messages; the real stall check runs
      // once at the end of Cluster::Run.
      sharded_->shard(s).set_defer_stall_checks(true);
    }
  } else {
    engine_ = std::make_unique<Engine>(params_.scheduler);
  }
  Engine& root = engine();
  router_.root = &root;

  network_ = std::make_unique<Network>(root, Topology::ForNodeCount(params_.node_count),
                                       params_.mesh, &stats_);
  sts_ = std::make_unique<StsTransport>(root, *network_, &stats_);
  sts_ctl_ = std::make_unique<StsCtlTransport>(root, *network_, &stats_);
  norma_ = std::make_unique<NormaIpc>(root, *network_, &stats_);
  network_->set_trace(&trace_sink_);
  sts_->set_trace(&trace_sink_);
  sts_ctl_->set_trace(&trace_sink_);
  norma_->set_trace(&trace_sink_);
  if (sharded_ != nullptr) {
    EnableOutboxRouting();
  }
  if (!params_.fault.Empty()) {
    fault_plan_ = std::make_unique<FaultPlan>(root, params_.fault, params_.node_count,
                                              &stats_);
    network_->set_fault_plan(fault_plan_.get());
    sts_->set_fault_plan(fault_plan_.get());
    sts_ctl_->set_fault_plan(fault_plan_.get());
    norma_->set_fault_plan(fault_plan_.get());
  }

  // Conservative lookahead: the cheapest causal chain from an event on one
  // node to an event on any other node is a software send on the cheapest
  // transport, route setup, and one mesh hop. Slow-node factors below 1 can
  // only shrink the software leg, so fold the smallest per-node factor in
  // (floor: never round the bound up).
  min_send_sw_ = std::min({sts_->costs().send_sw_ns, sts_ctl_->costs().send_sw_ns,
                           norma_->costs().send_sw_ns});
  if (!params_.fault.slow_nodes.empty()) {
    double min_factor = 1.0;
    for (NodeId n = 0; n < params_.node_count; ++n) {
      double f = 1.0;
      for (const NodeSlowdown& s : params_.fault.slow_nodes) {
        if (s.node == n) {
          f *= s.cost_factor;
        }
      }
      min_factor = std::min(min_factor, f);
    }
    if (min_factor < 1.0) {
      min_send_sw_ = static_cast<SimDuration>(
          std::floor(static_cast<double>(min_send_sw_) * min_factor));
    }
  }
  lookahead_ = min_send_sw_ + params_.mesh.route_setup_ns + params_.mesh.per_hop_ns;
  ASVM_CHECK_MSG(lookahead_ >= 1, "sharded lookahead collapsed to zero");
  // Cluster mutations ride the same conservative bound as cross-shard
  // messages: enqueued at t, applied at t + lookahead, when every engine is
  // provably quiescent at the apply time.
  mutator_ = std::make_unique<ClusterMutator>(&router_, params_.shards,
                                              params_.node_count, lookahead_, &stats_);
  if (params_.failover.enabled) {
    // Failover promotions and cold restarts apply as cluster mutations; arm
    // the windowed drain up front so the apply schedule is fixed before the
    // first Run(), whichever layer (Machine or a raw Cluster test) drives it.
    mutator_->Arm();
  }

  const int groups = (params_.node_count + params_.nodes_per_io_group - 1) /
                     params_.nodes_per_io_group;
  for (int g = 0; g < groups; ++g) {
    Engine& group_engine = engine_for(g * params_.nodes_per_io_group);
    disks_.push_back(std::make_unique<Disk>(group_engine, params_.disk, &stats_));
    disks_.back()->set_trace(&trace_sink_, g * params_.nodes_per_io_group);
  }
  // Dedicated spindles for the mapped file system, so file traffic and paging
  // traffic do not artificially serialize in single-group configurations.
  // Pager i runs on node i (striped configurations spread I/O nodes).
  const int pagers = std::max(1, std::min(params_.file_pager_count, params_.node_count));
  for (int i = 0; i < pagers; ++i) {
    Engine& pager_engine = engine_for(i);
    file_disks_.push_back(std::make_unique<Disk>(pager_engine, params_.disk, &stats_));
    file_disks_.back()->set_trace(&trace_sink_, i);
    file_pagers_.push_back(std::make_unique<FilePager>(
        pager_engine, /*io_node=*/i, file_disks_.back().get(), params_.file_pager, &stats_));
  }

  nodes_.resize(params_.node_count);
  for (NodeId n = 0; n < params_.node_count; ++n) {
    Engine& node_engine = engine_for(n);
    nodes_[n].vm = std::make_unique<NodeVm>(node_engine, n, params_.vm, &stats_);
    nodes_[n].default_pager = std::make_unique<DefaultPager>(
        node_engine, &paging_disk(n), &stats_);
    nodes_[n].vm->SetDefaultPager(nodes_[n].default_pager.get());
  }

  // Stall-watchdog probe: page faults whose coroutine is still alive when the
  // event queue drains are blocked forever (nothing outside the queue can
  // resume them). Inert unless a stall handler is installed on the engine.
  // Registered on the root engine; in sharded runs it only fires from
  // ForceStallCheck at the final global drain, when every shard is quiescent.
  root.AddStallProbe([this](std::string& report) {
    bool blocked = false;
    for (const auto& node : nodes_) {
      const auto& faults = node.vm->faults_in_flight();
      if (faults.empty()) {
        continue;
      }
      blocked = true;
      for (const auto& [serial, fault] : faults) {
        report += "  node " + std::to_string(node.vm->node()) + ": page fault on addr " +
                  std::to_string(fault.addr) + " (" + ToString(fault.desired) +
                  ") in flight since t=" + std::to_string(fault.started) + " ns\n";
      }
    }
    return blocked;
  });
}

Cluster::~Cluster() = default;

void Cluster::EnablePerTypeMessageStats() {
  sts_->set_per_type_stats(true);
  sts_ctl_->set_per_type_stats(true);
  norma_->set_per_type_stats(true);
}

void Cluster::EnableOutboxRouting() {
  if (outbox_routing_) {
    return;
  }
  outbox_routing_ = true;
  sts_->set_sharding(&router_, &outboxes_);
  sts_ctl_->set_sharding(&router_, &outboxes_);
  norma_->set_sharding(&router_, &outboxes_);
}

bool Cluster::Empty() const {
  if (!mutator_->Idle() || !pending_.empty()) {
    return false;
  }
  for (const auto& outbox : outboxes_) {
    if (!outbox.empty()) {
      return false;
    }
  }
  return sharded_ == nullptr ? engine_->empty() : sharded_->AllEmpty();
}

void Cluster::CollectOutboxes() {
  for (int s = 0; s < params_.shards; ++s) {
    for (MeshRecord& r : outboxes_[s]) {
      PendingRecord pr;
      pr.send_time = r.send_time;
      // One shard thread emits a node's records in that node's causal order,
      // so a per-node counter assigned in drain order reproduces it.
      pr.seq = ++record_seq_[r.src];
      pr.record = std::move(r);
      pending_.push(std::move(pr));
    }
    outboxes_[s].clear();
  }
}

SimTime Cluster::MinNextTime() const {
  if (sharded_ != nullptr) {
    return sharded_->MinNextTime();
  }
  return engine_->empty() ? ShardedEngine::kNoEvent : engine_->NextEventTime();
}

void Cluster::SyncClocks(SimTime time) {
  for (int s = 0; s < params_.shards; ++s) {
    sharded_->shard(s).AdvanceTo(time);
  }
}

SimTime Cluster::ProcessPending() {
  // Replays every record whose send time is safely below the conservative
  // horizon N0 + min_send_sw_: any event still pending on any shard fires at
  // or after N0, so any record it might yet emit stamps send_time >= that
  // horizon — nothing can slot in front of the records replayed here, and the
  // fabric's endpoint busy channels update in exactly the single-engine
  // order. Injected deliveries can become the new earliest event, so the
  // horizon is re-tightened as records land.
  SimTime n0 = MinNextTime();
  while (!pending_.empty()) {
    if (n0 != ShardedEngine::kNoEvent &&
        pending_.top().send_time >= SatAdd(n0, min_send_sw_)) {
      break;
    }
    PendingRecord rec = std::move(const_cast<PendingRecord&>(pending_.top()));
    pending_.pop();
    stats_.Add("sim.sharded.records_replayed");
    const SimTime rx_done = network_->ProcessRecord(rec.record);
    if (rx_done >= 0) {
      engine_for(rec.record.dst).ScheduleAt(rx_done, std::move(rec.record.deliver));
      n0 = std::min(n0, rx_done);
    }
  }
  return n0;
}

bool Cluster::DrainSharded(SimTime until) {
  for (;;) {
    CollectOutboxes();
    mutator_->Collect();
    const SimTime n0 = ProcessPending();
    const SimTime m = mutator_->NextApplyTime();
    if (n0 == ShardedEngine::kNoEvent && m == ClusterMutator::kNever) {
      // ProcessPending replays everything once all queues are empty.
      ASVM_CHECK_MSG(pending_.empty(), "drained with records still pending");
      // A drained engine's clock stops at its own last event, so the shard
      // clocks have diverged. The single-threaded timeline this run must
      // reproduce has ONE clock: re-synchronize every shard to the global
      // last-event time, so work the driver issues next starts from the same
      // instant on every node (otherwise a lagging shard could send a message
      // whose arrival lands in a faster shard's past).
      SyncClocks(sharded_->MaxNow());
      sharded_->shard(0).ForceStallCheck();
      return true;
    }
    if (std::min(n0, m) > until) {
      // Deadline exit: the single engine would sit exactly at the deadline
      // (RunUntil with events left), so park every shard clock there too.
      SyncClocks(until);
      return false;
    }
    if (m <= n0) {
      // Mutation sequencing point: every engine is quiescent strictly before
      // m (windows are capped at m - 1 below) and no un-replayed record can
      // deliver before n0 + min_send_sw > m, so advancing all clocks to m is
      // safe. Mutations at m apply before any engine event at m — the same
      // precedence DrainSingle reproduces at shards == 1.
      SyncClocks(m);
      mutator_->ApplyAt(m);
      continue;
    }
    // Events strictly below n0 + lookahead cannot be affected by any message
    // another shard has yet to send (those arrive at or after n0 + lookahead),
    // and everything already sent has been replayed — so the window up to and
    // including n0 + lookahead - 1 is causally closed. Pending mutations cap
    // the window at m - 1 so they apply on time.
    stats_.Add("sim.sharded.windows");
    in_window_ = true;
    sharded_->RunWindow(std::min({until, SatAdd(n0, lookahead_) - 1, m - 1}));
    in_window_ = false;
  }
}

bool Cluster::DrainSingle(SimTime until) {
  // The armed single-engine drain: the same loop as DrainSharded on one
  // engine. Cross-node sends ride the outbox/replay path here too, so
  // equal-send-time fabric admissions happen in the canonical
  // (send_time, src, seq) order rather than the engine's incidental
  // intra-timestamp interleave — the property that makes a sharded run's
  // timeline reproducible byte for byte at shards == 1.
  for (;;) {
    CollectOutboxes();
    mutator_->Collect();
    const SimTime n0 = ProcessPending();
    const SimTime m = mutator_->NextApplyTime();
    if (n0 == ShardedEngine::kNoEvent && m == ClusterMutator::kNever) {
      ASVM_CHECK_MSG(pending_.empty(), "drained with records still pending");
      engine_->ForceStallCheck();
      return true;
    }
    if (std::min(n0, m) > until) {
      engine_->AdvanceTo(until);  // RunUntil parks at the deadline; match it
      return false;
    }
    if (m <= n0) {
      engine_->AdvanceTo(m);
      mutator_->ApplyAt(m);
      continue;
    }
    in_window_ = true;
    engine_->RunUntil(std::min({until, SatAdd(n0, lookahead_) - 1, m - 1}));
    in_window_ = false;
  }
}

uint64_t Cluster::Run() {
  if (sharded_ == nullptr) {
    if (!mutator_->armed()) {
      // Exact legacy drain (bit-identical timelines, no slicing overhead) for
      // workloads that never touch the mutation API.
      const uint64_t n = engine_->Run();
      mutator_->Collect();
      ASVM_CHECK_MSG(mutator_->Idle(),
                     "cluster mutation enqueued mid-run before the mutator was armed; "
                     "arm it from driver context (ClusterWaitGroup/ClusterBarrier/"
                     "RemoteFork do) before Run()");
      return n;
    }
    // Slices drain the queue many times while work legitimately waits on a
    // pending mutation or mailboxed record; the real stall check runs once at
    // the final drain.
    engine_->set_defer_stall_checks(true);
    EnableOutboxRouting();
    const uint64_t start = engine_->executed_events();
    DrainSingle(std::numeric_limits<SimTime>::max());
    return engine_->executed_events() - start;
  }
  const uint64_t start = sharded_->TotalExecuted();
  DrainSharded(std::numeric_limits<SimTime>::max());
  return sharded_->TotalExecuted() - start;
}

bool Cluster::RunFor(SimDuration d) {
  ASVM_CHECK_MSG(d >= 0, "negative RunFor duration");
  if (sharded_ == nullptr) {
    if (!mutator_->armed()) {
      const bool drained = engine_->RunFor(d);
      mutator_->Collect();
      ASVM_CHECK_MSG(mutator_->Idle(),
                     "cluster mutation enqueued mid-run before the mutator was armed");
      return drained;
    }
    engine_->set_defer_stall_checks(true);
    EnableOutboxRouting();
    return DrainSingle(SatAdd(engine_->Now(), d));
  }
  return DrainSharded(SatAdd(sharded_->MaxNow(), d));
}

void Cluster::set_event_limit(uint64_t per_engine_limit) {
  if (sharded_ != nullptr) {
    sharded_->set_event_limit(per_engine_limit);
  } else {
    engine_->set_event_limit(per_engine_limit);
  }
}

}  // namespace asvm
