// The simulated multicomputer: engine, mesh, transports, and one kernel VM
// (plus paging machinery) per node — everything below the DSM layer. XMM and
// ASVM are constructed on top of a Cluster.
#ifndef SRC_DSM_CLUSTER_H_
#define SRC_DSM_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/common/types.h"
#include "src/machvm/default_pager.h"
#include "src/machvm/disk.h"
#include "src/machvm/file_pager.h"
#include "src/dsm/cluster_mutator.h"
#include "src/machvm/node_vm.h"
#include "src/mesh/fault_plan.h"
#include "src/mesh/network.h"
#include "src/sim/engine.h"
#include "src/sim/shard_router.h"
#include "src/sim/sharded_engine.h"
#include "src/transport/transport.h"

namespace asvm {

// Timeout/retry hardening for the protocol agents' pending-op table
// (ProtocolAgent). timeout_ns == 0 leaves the machinery disarmed: no deadline
// events are scheduled and timelines stay bit-identical to the unhardened
// simulator. Attempt k's deadline is timeout_ns * backoff^k, saturating at
// max_delay_ns so aggressive policies cannot overflow the scheduler's clock.
struct RetryPolicy {
  SimDuration timeout_ns = 0;
  int max_retries = 3;
  double backoff = 2.0;
  SimDuration max_delay_ns = kSecond;
};

// Manager-failover configuration (DESIGN.md §14). Disabled, none of the
// shadowing / lease / promotion machinery runs and timelines keep their
// healthy goldens. lease_ns must comfortably exceed the worst in-flight
// message latency (fault jitter included) so an ownership transfer racing a
// removal has settled before the terminal reclaims the dead owner's page.
struct FailoverConfig {
  bool enabled = false;
  SimDuration lease_ns = 50 * kMillisecond;
  // Gossip death notification: the first node whose pending op resolves
  // kNodeDown broadcasts a barrier-ordered death notice, so bystanders fail
  // over immediately instead of each burning its own retry horizon. Off, every
  // requester pays full silence detection (the PR 8 behaviour — kept as the
  // bench_failover A/B baseline).
  bool death_notices = true;
};

struct ClusterParams {
  int node_count = 4;
  // Event core behind the engine; kReference selects the heap-based oracle
  // (identical timelines, slower — see src/sim/scheduler.h).
  SchedulerKind scheduler = SchedulerKind::kTimerWheel;
  VmParams vm;                       // per-node VM configuration
  MeshParams mesh;
  DiskParams disk;
  FilePagerParams file_pager;
  int nodes_per_io_group = 32;       // one disk per 32 compute nodes (Paragon)
  // File pagers (each with its own disk) on nodes 0..count-1; >1 enables the
  // §6 striped-file extension.
  int file_pager_count = 1;
  FaultPlanParams fault;  // empty = perfectly reliable fabric
  RetryPolicy retry;      // timeout_ns = 0: no pending-op deadlines
  FailoverConfig failover;  // primary-backup manager replication (off = legacy)
  // Parallel simulation: partition the node space into this many shards, each
  // with its own engine, synchronized by conservative-lookahead windows
  // (DESIGN.md §13). shards == 1 keeps the exact single-engine code path.
  // Shards divide along nodes_per_io_group boundaries; a request above
  // ceil(node_count / nodes_per_io_group) is clamped to that block count
  // (the timeline is byte-identical at every shard count, so clamping is a
  // performance decision, not a behavioural one).
  int shards = 1;
};

class Cluster {
 public:
  explicit Cluster(ClusterParams params);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterParams& params() const { return params_; }
  int node_count() const { return params_.node_count; }
  size_t page_size() const { return params_.vm.page_size; }

  // The root engine: the single engine at shards == 1, shard 0 otherwise.
  // Workload driver code (promise completion, measurement probes) runs here.
  Engine& engine() { return sharded_ != nullptr ? sharded_->shard(0) : *engine_; }
  // The engine that simulates `node` (the root engine at shards == 1).
  Engine& engine_for(NodeId node) { return router_.engine_for(node); }
  int shards() const { return params_.shards; }
  ShardedEngine* sharded_engine() { return sharded_.get(); }  // null at shards == 1

  // Machine-visible simulated time: the root engine's clock, or the furthest
  // shard clock in a sharded run (between windows every cross-shard effect
  // with a timestamp at or before any shard clock has been applied).
  SimTime Now() const {
    return sharded_ != nullptr ? sharded_->MaxNow() : engine_->Now();
  }

  // No runnable event on any engine and no cross-shard message still in a
  // mailbox. Valid between runs / windows.
  bool Empty() const;

  // Drains the machine: every engine empty and every cross-shard mailbox
  // replayed. Returns the number of events executed. At shards == 1 this is
  // exactly Engine::Run(); otherwise the conservative-lookahead barrier loop
  // (DESIGN.md §13).
  uint64_t Run();

  // Runs until the machine drains or simulated time would pass Now() + d.
  // Returns true if it drained (Engine::RunFor semantics).
  bool RunFor(SimDuration d);

  // Event-count safety valve, applied per engine.
  void set_event_limit(uint64_t per_engine_limit);

  // Deterministically ordered cluster mutations (fork directory writes,
  // cross-node driver signals) — see src/dsm/cluster_mutator.h. Arming it
  // switches Run/RunFor onto the windowed mutation-aware drain at every
  // shard count; unarmed runs keep the exact legacy drain (and timelines).
  ClusterMutator& mutator() { return *mutator_; }

  // DSM directory state may only be mutated while every engine is quiescent:
  // from the driver between runs, or from a mutation applied at a sequencing
  // point. Call from directory-mutating entry points to catch stray mid-window
  // access (`what` names the operation in the failure message).
  void AssertDriverQuiescent(const char* what) const {
    ASVM_CHECK_MSG(!in_window_, what);
  }

  StatsRegistry& stats() { return stats_; }

  // Opt-in per-message-type transport counters ("transport.<name>.msg.<type>")
  // on all three transports. Off by default: the per-send lookup is host-side
  // cost every message pays.
  void EnablePerTypeMessageStats();

  // Machine-wide observability: every layer (both DSM agents, the transports,
  // the mesh fabric, the disks) emits TraceEvents into this one sink. With no
  // monitor attached emission is a single null check, so timelines are
  // bit-identical to an unmonitored run.
  void AttachMonitor(ProtocolMonitor* monitor) { trace_sink_.monitor = monitor; }
  ProtocolMonitor* monitor() const { return trace_sink_.monitor; }
  TraceSink& trace_sink() { return trace_sink_; }

  Network& network() { return *network_; }
  StsTransport& sts() { return *sts_; }
  StsCtlTransport& sts_ctl() { return *sts_ctl_; }
  NormaIpc& norma() { return *norma_; }
  FaultPlan* fault_plan() { return fault_plan_.get(); }  // null when faults are off

  NodeVm& vm(NodeId node) { return *nodes_.at(node).vm; }
  DefaultPager& default_pager(NodeId node) { return *nodes_.at(node).default_pager; }
  Disk& paging_disk(NodeId node) { return *disks_.at(node / params_.nodes_per_io_group); }

  // The file pager lives on node 0's I/O group (node 0 stands in for the I/O
  // node; the pager CPU and disk are the bottleneck either way).
  FilePager& file_pager(int index = 0) { return *file_pagers_.at(index); }
  int file_pager_count() const { return static_cast<int>(file_pagers_.size()); }

 private:
  struct Node {
    std::unique_ptr<NodeVm> vm;
    std::unique_ptr<DefaultPager> default_pager;
  };

  // A MeshRecord waiting at the barrier, keyed for deterministic replay:
  // global send-time order, ties broken by (source node, per-source emission
  // seq). A node's emissions happen in its own causal order at every shard
  // count, so this key is shard-count-invariant — unlike per-shard emission
  // order, which depends on how nodes group into shards. The armed
  // single-engine drain routes through the same heap, so equal-send-time
  // fabric admissions happen in one canonical order everywhere.
  struct PendingRecord {
    SimTime send_time;
    uint64_t seq;  // per-source-node emission sequence
    MeshRecord record;
  };
  struct PendingLater {
    bool operator()(const PendingRecord& a, const PendingRecord& b) const {
      if (a.send_time != b.send_time) return a.send_time > b.send_time;
      if (a.record.src != b.record.src) return a.record.src > b.record.src;
      return a.seq > b.seq;
    }
  };

  // Moves freshly-emitted outbox records into the pending heap.
  void CollectOutboxes();
  // Earliest pending event time across all engines (kNoEvent when drained).
  SimTime MinNextTime() const;
  // Switches the transports onto the outbox/replay path (sticky). Always on
  // in sharded runs; at shards == 1 it engages at the first armed drain so
  // equal-send-time admissions follow the same canonical order as sharded
  // replay (unarmed runs keep the direct legacy send path and its timelines).
  void EnableOutboxRouting();
  // Re-synchronizes every shard clock to `time` (see DrainSharded).
  void SyncClocks(SimTime time);
  // Replays every pending record safely below the conservative horizon.
  // Returns the earliest pending event time across all shards afterwards.
  SimTime ProcessPending();
  // The barrier loop (shards > 1). Runs windows until every engine is empty
  // and no record or mutation is pending, or simulated time would pass
  // `until`. Returns true if the machine drained.
  bool DrainSharded(SimTime until);
  // The shards == 1 equivalent once the mutator is armed: the single engine
  // runs in lookahead-bounded slices so a mutation enqueued mid-slice is
  // always collected before its apply time arrives, reproducing the sharded
  // apply schedule exactly.
  bool DrainSingle(SimTime until);
  // Minimum cross-shard latency: no event at time t can cause an event on
  // another shard before t + lookahead.
  SimDuration Lookahead() const { return lookahead_; }

  ClusterParams params_;
  std::unique_ptr<Engine> engine_;          // shards == 1
  std::unique_ptr<ShardedEngine> sharded_;  // shards > 1
  ShardRouter router_;
  // One outbox per shard; only shard i's thread appends to outboxes_[i], and
  // the coordinator drains them between windows.
  std::vector<std::vector<MeshRecord>> outboxes_;
  std::vector<uint64_t> record_seq_;  // per-source-node emission counter
  bool outbox_routing_ = false;
  std::priority_queue<PendingRecord, std::vector<PendingRecord>, PendingLater> pending_;
  // Conservative bounds, fixed at construction: the cheapest software send
  // cost any message can pay (fault slowdown factors below 1 included) and
  // the full cross-shard lookahead min_send_sw_ + route_setup + one hop.
  SimDuration min_send_sw_ = 0;
  SimDuration lookahead_ = 0;
  std::unique_ptr<ClusterMutator> mutator_;
  // True while shard engines are executing a window (or the single engine an
  // armed slice); written by the coordinator only, before and after the
  // window barrier, so AssertDriverQuiescent reads it race-free.
  bool in_window_ = false;
  StatsRegistry stats_;
  TraceSink trace_sink_;  // must outlive everything that emits into it
  std::unique_ptr<FaultPlan> fault_plan_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<StsTransport> sts_;
  std::unique_ptr<StsCtlTransport> sts_ctl_;
  std::unique_ptr<NormaIpc> norma_;
  std::vector<std::unique_ptr<Disk>> disks_;  // one per I/O group
  std::vector<std::unique_ptr<Disk>> file_disks_;
  std::vector<std::unique_ptr<FilePager>> file_pagers_;
  std::vector<Node> nodes_;
};

}  // namespace asvm

#endif  // SRC_DSM_CLUSTER_H_
