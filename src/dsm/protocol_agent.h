// Shared core of the per-node protocol agents (AsvmAgent, XmmAgent): handler
// registration on a transport, per-message process-cost charging serialized on
// the node's protocol CPU, and the pending-operation table that pairs
// multi-message exchanges (invalidation rounds, flush rounds, push rounds)
// with the coroutine awaiting their completion.
#ifndef SRC_DSM_PROTOCOL_AGENT_H_
#define SRC_DSM_PROTOCOL_AGENT_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/common/types.h"
#include "src/dsm/dsm_system.h"
#include "src/sim/engine.h"
#include "src/sim/future.h"
#include "src/transport/message.h"
#include "src/transport/transport.h"

namespace asvm {

class ProtocolAgent {
 public:
  NodeId node() const { return node_; }

  ProtocolAgent(const ProtocolAgent&) = delete;
  ProtocolAgent& operator=(const ProtocolAgent&) = delete;

  // Death-notice fan-in (DESIGN.md §14): resolves every pending op whose
  // still-unanswered targets are all confirmed removed, exactly as OpDeadline
  // would after exhausting its retries — kNodeDown, `on_fail` hook and all —
  // but immediately. Called from the backends' death-notice mutation (every
  // engine quiescent) on each surviving agent, so a bystander mid-backoff
  // fails over now instead of sleeping out its remaining exponential delay
  // (the erased entry turns the already-scheduled deadline event into a
  // no-op). Ops are failed in ascending id order; returns how many failed.
  int FailOpsOnDeadTargets();

 protected:
  ProtocolAgent(DsmSystem& dsm, NodeId node, TraceProtocol trace_protocol);
  ~ProtocolAgent();

  // Subclass dispatcher for messages addressed to (protocol, node()).
  virtual void OnMessage(NodeId src, Message msg) = 0;

  // Registers OnMessage as the (protocol, node) handler on `transport`.
  void Listen(Transport& transport, ProtocolId protocol);

  // Charges `cost` of protocol-stack work serialized on this node's protocol
  // CPU: concurrent charges queue behind one another (the XMM manager
  // saturation of Table 2 comes from this serialization).
  Future<Status> Process(SimDuration cost);

  // --- Pending-operation table ----------------------------------------------

  // One entry per in-flight multi-message exchange, keyed by an op id the
  // initiator allocates and every reply echoes.
  struct PendingOp {
    int outstanding = 0;
    Promise<Status> done;
    // Exchange-specific reply payloads, unioned across the protocols: push
    // rounds collect the nodes that asked for contents; XMM write flushes
    // return the page and its state.
    std::vector<NodeId> need_data;
    PageBuffer data;
    bool dirty = false;
    bool was_resident = false;
    // Hardening + diagnostics (host-side; nothing here schedules events).
    const char* what = "op";         // exchange label for stall reports
    MemObjectId object;
    PageIndex page = kInvalidPage;
    SimTime opened_at = 0;
    std::vector<NodeId> acked;       // responders already counted (dup shield)
    int attempts = 0;                // retries fired so far
    std::function<void()> resend;    // re-issues the unanswered requests
    // Failover classification: the nodes this exchange is waiting on. When
    // the deadline exhausts its retries and every unanswered target is
    // confirmed removed by the fault plan, the op resolves kNodeDown instead
    // of kTimeout (and `on_fail`, if set, runs after the entry is dropped —
    // the hook that triggers backup promotion and request re-issue).
    std::vector<NodeId> targets;
    std::function<void(Status)> on_fail;
    explicit PendingOp(Engine& engine) : done(engine) {}
  };

  // Allocates an op id from the owning system's sequence and inserts an entry
  // expecting `outstanding` replies. The label/object/page feed stall reports.
  uint64_t OpenOp(int outstanding, const char* what = "op",
                  MemObjectId object = kInvalidObject, PageIndex page = kInvalidPage);
  // Inserts an entry under an id the caller already allocated (protocols whose
  // request ids double as op ids: ASVM AccessRequest::req_id, XMM requests).
  void RegisterOp(uint64_t op_id, int outstanding, const char* what = "op",
                  MemObjectId object = kInvalidObject, PageIndex page = kInvalidPage);
  Future<Status> OpFuture(uint64_t op_id);
  PendingOp* FindOp(uint64_t op_id);
  void EraseOp(uint64_t op_id);
  // Resolves the op with `status` and drops the entry, regardless of how many
  // replies are still outstanding (declined offers, local short-circuits).
  void ResolveOp(uint64_t op_id, Status status);
  // Records one reply from `from`; when the last arrives the op resolves kOk.
  // The entry is dropped then, unless `keep_entry` — set when the awaiting
  // coroutine still harvests payload fields out of the entry before erasing
  // it. A second reply from the same responder (a retry racing the original
  // answer) is suppressed, as is any reply to an op no longer pending.
  void AckOp(uint64_t op_id, NodeId from, bool keep_entry = false);

  // --- Timeout + retry (armed only when RetryPolicy::timeout_ns > 0) --------

  // Arms the op's deadline: if it has not resolved when the deadline fires,
  // `resend` re-issues the unanswered requests and the deadline backs off
  // exponentially; after max_retries the op resolves Status::kTimeout and is
  // dropped. No-op with retries disabled (nothing scheduled, timelines keep
  // their healthy-run digests).
  void ArmOp(uint64_t op_id, std::function<void()> resend);

  // Receiver-side idempotence: true if this op id's request was already
  // delivered here (a retry duplicate) and must be ignored. op id 0 marks
  // unsolicited messages (XMM eviction data returns) and is never filtered.
  // Tracking only runs when retries are armed; otherwise always false.
  bool DuplicateDelivery(uint64_t op_id);

  // Counts a suppressed duplicate/late reply (dsm.duplicates_suppressed).
  void CountDuplicate();

  // Emits a protocol event into the machine-wide trace sink, stamped with this
  // agent's node and protocol tag. One null check when no monitor is attached;
  // never schedules events, so timelines are identical traced or not.
  void Trace(TraceKind kind, const MemObjectId& object, PageIndex page,
             NodeId peer = kInvalidNode, int64_t aux = 0, uint64_t op = 0);
  bool trace_armed() const { return trace_->armed(); }

  // Stall-watchdog probe body: appends a description of every open pending op
  // (and, in subclasses, the coherency state of the implicated pages).
  // Returns true if this agent holds blocked work.
  virtual bool DescribeStall(std::string& out) const;

  const RetryPolicy& retry_policy() const { return retry_; }

  Engine& engine() { return engine_; }

  NodeId node_;
  StatsRegistry* stats_;

 private:
  void OpDeadline(uint64_t op_id);
  SimDuration RetryDelay(int attempts_done) const;

  DsmSystem& dsm_;
  Engine& engine_;
  std::string system_name_;  // for stall reports ("asvm node 3: ...")
  RetryPolicy retry_;
  TraceSink* trace_;  // the cluster's machine-wide sink (never null)
  TraceProtocol trace_protocol_;
  int stall_probe_id_ = -1;
  std::unordered_map<uint64_t, std::unique_ptr<PendingOp>> pending_ops_;
  // Delivered request op ids, remembered until no retry of the op can still be
  // in flight (time-based retention, not a fixed-size window: a count-bounded
  // FIFO could evict an id whose exchange was still live under wide fan-out,
  // letting a late retry duplicate re-execute a non-idempotent request).
  std::unordered_set<uint64_t> delivered_ops_;
  std::deque<std::pair<uint64_t, SimTime>> delivered_fifo_;
  SimDuration delivered_retention_ns_ = 0;
  SimTime process_busy_until_ = 0;
};

}  // namespace asvm

#endif  // SRC_DSM_PROTOCOL_AGENT_H_
