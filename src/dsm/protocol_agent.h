// Shared core of the per-node protocol agents (AsvmAgent, XmmAgent): handler
// registration on a transport, per-message process-cost charging serialized on
// the node's protocol CPU, and the pending-operation table that pairs
// multi-message exchanges (invalidation rounds, flush rounds, push rounds)
// with the coroutine awaiting their completion.
#ifndef SRC_DSM_PROTOCOL_AGENT_H_
#define SRC_DSM_PROTOCOL_AGENT_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/dsm/dsm_system.h"
#include "src/sim/engine.h"
#include "src/sim/future.h"
#include "src/transport/message.h"
#include "src/transport/transport.h"

namespace asvm {

class ProtocolAgent {
 public:
  NodeId node() const { return node_; }

  ProtocolAgent(const ProtocolAgent&) = delete;
  ProtocolAgent& operator=(const ProtocolAgent&) = delete;

 protected:
  ProtocolAgent(DsmSystem& dsm, NodeId node);
  ~ProtocolAgent();

  // Subclass dispatcher for messages addressed to (protocol, node()).
  virtual void OnMessage(NodeId src, Message msg) = 0;

  // Registers OnMessage as the (protocol, node) handler on `transport`.
  void Listen(Transport& transport, ProtocolId protocol);

  // Charges `cost` of protocol-stack work serialized on this node's protocol
  // CPU: concurrent charges queue behind one another (the XMM manager
  // saturation of Table 2 comes from this serialization).
  Future<Status> Process(SimDuration cost);

  // --- Pending-operation table ----------------------------------------------

  // One entry per in-flight multi-message exchange, keyed by an op id the
  // initiator allocates and every reply echoes.
  struct PendingOp {
    int outstanding = 0;
    Promise<Status> done;
    // Exchange-specific reply payloads, unioned across the protocols: push
    // rounds collect the nodes that asked for contents; XMM write flushes
    // return the page and its state.
    std::vector<NodeId> need_data;
    PageBuffer data;
    bool dirty = false;
    bool was_resident = false;
    explicit PendingOp(Engine& engine) : done(engine) {}
  };

  // Allocates an op id from the owning system's sequence and inserts an entry
  // expecting `outstanding` replies.
  uint64_t OpenOp(int outstanding);
  Future<Status> OpFuture(uint64_t op_id);
  PendingOp* FindOp(uint64_t op_id);
  void EraseOp(uint64_t op_id);
  // Resolves the op with `status` and drops the entry, regardless of how many
  // replies are still outstanding (declined offers, local short-circuits).
  void ResolveOp(uint64_t op_id, Status status);
  // Records one reply; when the last arrives the op resolves kOk. The entry
  // is dropped then, unless `keep_entry` — set when the awaiting coroutine
  // still harvests payload fields out of the entry before erasing it.
  void AckOp(uint64_t op_id, bool keep_entry = false);

  Engine& engine() { return engine_; }

  NodeId node_;
  StatsRegistry* stats_;

 private:
  DsmSystem& dsm_;
  Engine& engine_;
  std::unordered_map<uint64_t, std::unique_ptr<PendingOp>> pending_ops_;
  SimTime process_busy_until_ = 0;
};

}  // namespace asvm

#endif  // SRC_DSM_PROTOCOL_AGENT_H_
