// Primary-backup placement shared by both DSM backends (DESIGN.md §14).
//
// The backup of a manager/home node is its first *alive* ring successor
// (node + 1 mod N, skipping nodes the fault plan has removed). Shadow
// directory updates stream to that node while the primary is healthy, and
// promotion — run as a cluster mutation with every engine quiescent — picks
// the successor by the same rule, so the promoted manager already holds the
// shadowed state. Keeping the rule in one place is what makes the two sides
// agree without any extra coordination protocol.
#ifndef SRC_DSM_FAILOVER_H_
#define SRC_DSM_FAILOVER_H_

#include "src/common/types.h"
#include "src/mesh/fault_plan.h"

namespace asvm {

// First alive ring successor of `node` at `now`. A null plan means every node
// is alive; kInvalidNode only when every other node is dead.
NodeId RingSuccessor(NodeId node, int node_count, const FaultPlan* plan, SimTime now);

// dsm.failover.* stat names, kept in one place so the emitting sites and the
// --fault-report counter list stay in sync.
inline constexpr const char* kStatPromotions = "dsm.failover.promotions";
inline constexpr const char* kStatShadowUpdates = "dsm.failover.shadow_updates";
inline constexpr const char* kStatLeaseReclaims = "dsm.failover.lease_reclaims";
inline constexpr const char* kStatReconstructedPages = "dsm.failover.reconstructed_pages";
inline constexpr const char* kStatRestarts = "dsm.failover.restarts";
inline constexpr const char* kStatReissues = "dsm.failover.reissued_requests";
inline constexpr const char* kStatDeathNotices = "dsm.failover.death_notices";
inline constexpr const char* kStatLostPages = "dsm.failover.lost_pages";
inline constexpr const char* kStatShadowRestreams = "dsm.failover.shadow_restreams";

// IVY-specific failover counters: a death notice re-aims probable-owner hints
// off the corpse (chain cuts) and a requester reclaims a dead owner's page
// after its lease expires (owner reclaims, with harvested-copy count).
inline constexpr const char* kStatIvyChainCuts = "dsm.ivy.chain_cuts";
inline constexpr const char* kStatIvyOwnerReclaims = "dsm.ivy.owner_reclaims";
inline constexpr const char* kStatIvyHarvestedPages = "dsm.ivy.harvested_pages";

// Every failover counter, in report order. `asvmsim --fault-report` iterates
// this array, so a counter added above (and here) shows up in the report
// without touching the CLI — the lists cannot drift apart.
inline constexpr const char* kFailoverStatNames[] = {
    kStatPromotions,     kStatShadowUpdates,   kStatLeaseReclaims,    kStatReconstructedPages,
    kStatRestarts,       kStatReissues,        kStatDeathNotices,     kStatLostPages,
    kStatShadowRestreams, kStatIvyChainCuts,   kStatIvyOwnerReclaims, kStatIvyHarvestedPages,
};

}  // namespace asvm

#endif  // SRC_DSM_FAILOVER_H_
