// Red-black successive over-relaxation (SOR) on shared virtual memory — the
// canonical SVM benchmark from Kai Li's thesis (the paper's reference [1]).
// A 2-D grid is row-partitioned across nodes; each half-iteration updates one
// colour from its four neighbours, so the only cross-node traffic is the
// boundary rows between adjacent partitions: the friendliest possible SVM
// pattern, and a useful contrast to EM3D's irregular graph.
//
// Like EM3D, two modes: Verified (all data through the DSM, checksum equals
// the sequential reference bit-for-bit) and Timed (exact page-fault traffic,
// modeled compute).
#ifndef SRC_APPS_SOR_H_
#define SRC_APPS_SOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/core/machine.h"

namespace asvm {

struct SorParams {
  int64_t rows = 256;
  int64_t cols = 256;
  int iterations = 10;  // full iterations (red + black half-sweeps each)
  // Compute cost per cell update (4 adds, 1 multiply on a ~50 MHz i860).
  SimDuration compute_per_cell_ns = 400;
};

// Grid layout: each node's row block starts on a page boundary.
class SorGrid {
 public:
  SorGrid(const SorParams& params, int nodes, size_t page_size = 8192);

  int nodes() const { return nodes_; }
  VmSize region_pages() const { return region_pages_; }
  size_t page_size() const { return page_size_; }

  std::pair<int64_t, int64_t> RowRange(NodeId node) const;
  NodeId RowOwner(int64_t row) const { return static_cast<NodeId>(row / rows_per_node_); }

  // Address of grid cell (row, col), 8 bytes each.
  VmOffset CellAddr(int64_t row, int64_t col) const;

  // Pages containing this node's rows (written every half-sweep).
  const std::vector<VmOffset>& OwnPages(NodeId node) const { return own_pages_[node]; }
  // Pages of the neighbouring partitions' boundary rows (read every sweep).
  const std::vector<VmOffset>& HaloPages(NodeId node) const { return halo_pages_[node]; }

 private:
  SorParams params_;
  int nodes_;
  size_t page_size_;
  int64_t rows_per_node_;
  VmSize pages_per_block_;
  VmSize region_pages_;
  std::vector<std::vector<VmOffset>> own_pages_;
  std::vector<std::vector<VmOffset>> halo_pages_;
};

struct SorResult {
  double seconds = 0;
  int64_t faults = 0;
};

// Timed run: warmup + measured iterations, projected to params.iterations.
SorResult RunSorTimed(Machine& machine, const SorParams& params, int nodes_used,
                      int measure_iters = 3);

// Full-data run through the DSM; XOR checksum of the final grid.
uint64_t RunSorVerified(Machine& machine, const SorParams& params, int nodes_used);

// Sequential reference (identical update order and layout).
uint64_t SorSequentialChecksum(const SorParams& params, int nodes_layout);

double SorSequentialSeconds(const SorParams& params);

}  // namespace asvm

#endif  // SRC_APPS_SOR_H_
