#include "src/apps/sor.h"

#include <algorithm>
#include <bit>
#include <set>

#include "src/common/log.h"
#include "src/dsm/cluster_sync.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace asvm {

namespace {

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

double InitialValue(int64_t row, int64_t col, int64_t cols) {
  return static_cast<double>((row * cols + col) % 101) - 50.0;
}

uint64_t DoubleBits(double v) { return std::bit_cast<uint64_t>(v); }

}  // namespace

SorGrid::SorGrid(const SorParams& params, int nodes, size_t page_size)
    : params_(params), nodes_(nodes), page_size_(page_size) {
  ASVM_CHECK(nodes >= 1 && params.rows >= nodes);
  rows_per_node_ = CeilDiv(params.rows, nodes);
  const int64_t bytes_per_row = params.cols * 8;
  pages_per_block_ = static_cast<VmSize>(
      CeilDiv(rows_per_node_ * bytes_per_row, static_cast<int64_t>(page_size_)));
  region_pages_ = pages_per_block_ * nodes;

  own_pages_.resize(nodes);
  halo_pages_.resize(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    auto [lo, hi] = RowRange(n);
    std::set<VmOffset> own;
    for (int64_t r = lo; r < hi; ++r) {
      own.insert(CellAddr(r, 0) / page_size_);
      own.insert(CellAddr(r, params.cols - 1) / page_size_);
    }
    own_pages_[n].assign(own.begin(), own.end());

    std::set<VmOffset> halo;
    if (lo > 0) {
      halo.insert(CellAddr(lo - 1, 0) / page_size_);
      halo.insert(CellAddr(lo - 1, params.cols - 1) / page_size_);
    }
    if (hi < params.rows) {
      halo.insert(CellAddr(hi, 0) / page_size_);
      halo.insert(CellAddr(hi, params.cols - 1) / page_size_);
    }
    halo_pages_[n].assign(halo.begin(), halo.end());
  }
}

std::pair<int64_t, int64_t> SorGrid::RowRange(NodeId node) const {
  const int64_t lo = node * rows_per_node_;
  return {std::min(lo, params_.rows), std::min(lo + rows_per_node_, params_.rows)};
}

VmOffset SorGrid::CellAddr(int64_t row, int64_t col) const {
  const NodeId node = RowOwner(row);
  const int64_t local_row = row - node * rows_per_node_;
  return static_cast<VmOffset>(node) * pages_per_block_ * page_size_ +
         static_cast<VmOffset>((local_row * params_.cols + col) * 8);
}

// --- Timed mode ------------------------------------------------------------------

namespace {

Task SorTouchAll(TaskMemory& mem, const std::vector<VmOffset>& pages, size_t ps,
                 PageAccess access, WaitGroup& wg) {
  std::vector<Future<Status>> futures;
  futures.reserve(pages.size());
  for (VmOffset page : pages) {
    futures.push_back(mem.Touch(page * ps, 8, access));
  }
  for (auto& f : futures) {
    Status s = co_await f;
    ASVM_CHECK_MSG(IsOk(s), "SOR touch failed");
  }
  wg.Done();
}

Task SorNodeWorker(Machine& machine, const SorGrid& grid, const SorParams& params,
                   TaskMemory& mem, NodeId node, int total_iters, ClusterBarrier& barrier,
                   ClusterWaitGroup& done) {
  Engine& engine = machine.cluster().engine_for(node);
  const size_t ps = grid.page_size();
  auto [lo, hi] = grid.RowRange(node);
  const int64_t own_cells = (hi - lo) * params.cols;
  const SimDuration compute_per_half = params.compute_per_cell_ns * own_cells / 2;

  for (int iter = 0; iter < total_iters; ++iter) {
    for (int half = 0; half < 2; ++half) {
      WaitGroup wg(engine);
      wg.Add(2);
      (void)SorTouchAll(mem, grid.HaloPages(node), ps, PageAccess::kRead, wg);
      (void)SorTouchAll(mem, grid.OwnPages(node), ps, PageAccess::kWrite, wg);
      co_await wg.Wait();
      co_await Delay(engine, compute_per_half);
      co_await barrier.Arrive(node);
    }
  }
  done.Done(node);
}

}  // namespace

SorResult RunSorTimed(Machine& machine, const SorParams& params, int nodes_used,
                      int measure_iters) {
  ASVM_CHECK(nodes_used >= 1 && nodes_used <= machine.nodes());
  SorGrid grid(params, nodes_used, machine.page_size());
  MemObjectId region = machine.CreateSharedRegion(0, grid.region_pages());
  std::vector<TaskMemory*> mems;
  for (NodeId n = 0; n < nodes_used; ++n) {
    mems.push_back(&machine.MapRegion(n, region));
  }
  auto run_iters = [&](int iters, ClusterBarrier& barrier) {
    ClusterWaitGroup done(machine.cluster());
    done.Add(nodes_used);
    for (NodeId n = 0; n < nodes_used; ++n) {
      (void)SorNodeWorker(machine, grid, params, *mems[n], n, iters, barrier, done);
    }
    machine.Run();
    ASVM_CHECK(done.count() == 0);
  };

  ClusterBarrier warm_barrier(machine.cluster(), nodes_used);
  run_iters(1, warm_barrier);

  const SimTime start = machine.Now();
  const int64_t faults_before = machine.stats().Get("vm.faults");
  ClusterBarrier barrier(machine.cluster(), nodes_used);
  run_iters(measure_iters, barrier);

  SorResult result;
  result.seconds = ToSeconds(machine.Now() - start) *
                   static_cast<double>(params.iterations) / measure_iters;
  result.faults = machine.stats().Get("vm.faults") - faults_before;
  return result;
}

// --- Verified mode -----------------------------------------------------------------

namespace {

Task SorVerifiedWorker(Machine& machine, const SorGrid& grid, const SorParams& params,
                       TaskMemory& mem, NodeId node, ClusterBarrier& barrier,
                       ClusterWaitGroup& done) {
  (void)machine;
  auto [lo, hi] = grid.RowRange(node);
  for (int iter = 0; iter < params.iterations; ++iter) {
    for (int color = 0; color < 2; ++color) {
      for (int64_t r = lo; r < hi; ++r) {
        for (int64_t c = (r + color) % 2; c < params.cols; c += 2) {
          double sum = 0;
          if (r > 0) {
            sum += std::bit_cast<double>(co_await mem.ReadU64(grid.CellAddr(r - 1, c)));
          }
          if (r + 1 < params.rows) {
            sum += std::bit_cast<double>(co_await mem.ReadU64(grid.CellAddr(r + 1, c)));
          }
          if (c > 0) {
            sum += std::bit_cast<double>(co_await mem.ReadU64(grid.CellAddr(r, c - 1)));
          }
          if (c + 1 < params.cols) {
            sum += std::bit_cast<double>(co_await mem.ReadU64(grid.CellAddr(r, c + 1)));
          }
          Status s = co_await mem.WriteU64(grid.CellAddr(r, c), DoubleBits(sum * 0.25));
          ASVM_CHECK(IsOk(s));
        }
      }
      co_await barrier.Arrive(node);
    }
  }
  done.Done(node);
}

}  // namespace

uint64_t RunSorVerified(Machine& machine, const SorParams& params, int nodes_used) {
  ASVM_CHECK(nodes_used >= 1 && nodes_used <= machine.nodes());
  SorGrid grid(params, nodes_used, machine.page_size());
  MemObjectId region = machine.CreateSharedRegion(0, grid.region_pages());
  std::vector<TaskMemory*> mems;
  for (NodeId n = 0; n < nodes_used; ++n) {
    mems.push_back(&machine.MapRegion(n, region));
  }
  // Owners initialize their rows.
  for (int64_t r = 0; r < params.rows; ++r) {
    TaskMemory& mem = *mems[grid.RowOwner(r)];
    for (int64_t c = 0; c < params.cols; ++c) {
      auto w = mem.WriteU64(grid.CellAddr(r, c), DoubleBits(InitialValue(r, c, params.cols)));
      machine.Run();
      ASVM_CHECK(w.ready() && IsOk(w.value()));
    }
  }

  ClusterBarrier barrier(machine.cluster(), nodes_used);
  ClusterWaitGroup done(machine.cluster());
  done.Add(nodes_used);
  for (NodeId n = 0; n < nodes_used; ++n) {
    (void)SorVerifiedWorker(machine, grid, params, *mems[n], n, barrier, done);
  }
  machine.Run();
  ASVM_CHECK(done.count() == 0);

  uint64_t checksum = 0;
  for (int64_t r = 0; r < params.rows; ++r) {
    for (int64_t c = 0; c < params.cols; ++c) {
      auto f = mems[grid.RowOwner(r)]->ReadU64(grid.CellAddr(r, c));
      machine.Run();
      ASVM_CHECK(f.ready());
      checksum ^= f.value() + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(r * params.cols + c);
    }
  }
  return checksum;
}

uint64_t SorSequentialChecksum(const SorParams& params, int nodes_layout) {
  SorGrid grid(params, nodes_layout);
  std::vector<double> cells(static_cast<size_t>(params.rows * params.cols));
  auto at = [&](int64_t r, int64_t c) -> double& {
    return cells[static_cast<size_t>(r * params.cols + c)];
  };
  for (int64_t r = 0; r < params.rows; ++r) {
    for (int64_t c = 0; c < params.cols; ++c) {
      at(r, c) = InitialValue(r, c, params.cols);
    }
  }
  for (int iter = 0; iter < params.iterations; ++iter) {
    for (int color = 0; color < 2; ++color) {
      for (int64_t r = 0; r < params.rows; ++r) {
        for (int64_t c = (r + color) % 2; c < params.cols; c += 2) {
          double sum = 0;
          if (r > 0) {
            sum += at(r - 1, c);
          }
          if (r + 1 < params.rows) {
            sum += at(r + 1, c);
          }
          if (c > 0) {
            sum += at(r, c - 1);
          }
          if (c + 1 < params.cols) {
            sum += at(r, c + 1);
          }
          at(r, c) = sum * 0.25;
        }
      }
    }
  }
  uint64_t checksum = 0;
  for (int64_t r = 0; r < params.rows; ++r) {
    for (int64_t c = 0; c < params.cols; ++c) {
      checksum ^= DoubleBits(at(r, c)) +
                  0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(r * params.cols + c);
    }
  }
  return checksum;
}

double SorSequentialSeconds(const SorParams& params) {
  return ToSeconds(params.compute_per_cell_ns * params.rows * params.cols) *
         static_cast<double>(params.iterations);
}

}  // namespace asvm
