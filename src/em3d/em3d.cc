#include "src/em3d/em3d.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <unordered_set>

#include "src/common/log.h"
#include "src/common/rng.h"
#include "src/dsm/cluster_sync.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace asvm {

namespace {

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

Em3dGraph::Em3dGraph(const Em3dParams& params, int nodes) : params_(params), nodes_(nodes) {
  ASVM_CHECK(nodes >= 1);
  e_cells_ = params.cells / 2;
  h_cells_ = params.cells - e_cells_;
  e_per_node_ = CeilDiv(e_cells_, nodes);
  h_per_node_ = CeilDiv(h_cells_, nodes);
  pages_per_e_slice_ = static_cast<VmSize>(
      CeilDiv(e_per_node_ * params.bytes_per_cell, static_cast<int64_t>(page_size_)));
  pages_per_h_slice_ = static_cast<VmSize>(
      CeilDiv(h_per_node_ * params.bytes_per_cell, static_cast<int64_t>(page_size_)));
  h_base_page_ = pages_per_e_slice_ * nodes;
  region_pages_ = h_base_page_ + pages_per_h_slice_ * nodes;

  // Deterministic random bipartite graph with the spatial locality of a 3-D
  // field decomposition: a remote edge leads to a ring-neighbouring node and
  // lands in the boundary region of that node's slice.
  Rng rng(params.seed);
  const int k = params.edges_per_cell;
  e_neighbors_.resize(static_cast<size_t>(e_cells_) * k);
  h_neighbors_.resize(static_cast<size_t>(h_cells_) * k);
  auto pick_neighbor = [&](NodeId my_node, int64_t per_node, int64_t total) -> int64_t {
    if (nodes_ == 1 || !rng.NextBool(params.remote_fraction)) {
      const int64_t lo = my_node * per_node;
      const int64_t hi = std::min(total, (my_node + 1) * per_node);
      ASVM_CHECK(hi > lo);
      return lo + static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(hi - lo)));
    }
    const int dir = rng.NextBool(0.5) ? 1 : -1;
    const NodeId target = static_cast<NodeId>((my_node + dir + nodes_) % nodes_);
    const int64_t lo = target * per_node;
    const int64_t hi = std::min(total, (target + 1) * per_node);
    ASVM_CHECK(hi > lo);
    const int64_t window = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(hi - lo) * params.boundary_fraction));
    // Moving "up" the ring reaches the target's low boundary; "down" its high
    // boundary.
    const int64_t base = dir > 0 ? lo : hi - window;
    return base + static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(window)));
  };
  for (int64_t i = 0; i < e_cells_; ++i) {
    const NodeId owner = EOwner(i);
    for (int j = 0; j < k; ++j) {
      e_neighbors_[static_cast<size_t>(i) * k + j] =
          pick_neighbor(owner, h_per_node_, h_cells_);
    }
  }
  for (int64_t i = 0; i < h_cells_; ++i) {
    const NodeId owner = HOwner(i);
    for (int j = 0; j < k; ++j) {
      h_neighbors_[static_cast<size_t>(i) * k + j] =
          pick_neighbor(owner, e_per_node_, e_cells_);
    }
  }

  // Page access sets per node per phase.
  e_write_pages_.resize(nodes_);
  e_read_pages_.resize(nodes_);
  h_write_pages_.resize(nodes_);
  h_read_pages_.resize(nodes_);
  for (NodeId n = 0; n < nodes_; ++n) {
    std::unordered_set<VmOffset> e_writes;
    std::unordered_set<VmOffset> e_reads;
    auto [e_lo, e_hi] = ERange(n);
    for (int64_t i = e_lo; i < e_hi; ++i) {
      e_writes.insert(EAddr(i) / page_size_);
      for (int j = 0; j < k; ++j) {
        e_reads.insert(HAddr(e_neighbors_[static_cast<size_t>(i) * k + j]) / page_size_);
      }
    }
    e_write_pages_[n].assign(e_writes.begin(), e_writes.end());
    e_read_pages_[n].assign(e_reads.begin(), e_reads.end());
    std::sort(e_write_pages_[n].begin(), e_write_pages_[n].end());
    std::sort(e_read_pages_[n].begin(), e_read_pages_[n].end());

    std::unordered_set<VmOffset> h_writes;
    std::unordered_set<VmOffset> h_reads;
    auto [h_lo, h_hi] = HRange(n);
    for (int64_t i = h_lo; i < h_hi; ++i) {
      h_writes.insert(HAddr(i) / page_size_);
      for (int j = 0; j < k; ++j) {
        h_reads.insert(EAddr(h_neighbors_[static_cast<size_t>(i) * k + j]) / page_size_);
      }
    }
    h_write_pages_[n].assign(h_writes.begin(), h_writes.end());
    h_read_pages_[n].assign(h_reads.begin(), h_reads.end());
    std::sort(h_write_pages_[n].begin(), h_write_pages_[n].end());
    std::sort(h_read_pages_[n].begin(), h_read_pages_[n].end());
  }
}

VmOffset Em3dGraph::EAddr(int64_t e_index) const {
  const NodeId node = EOwner(e_index);
  const int64_t local = e_index - node * e_per_node_;
  return (static_cast<VmOffset>(node) * pages_per_e_slice_) * page_size_ +
         static_cast<VmOffset>(local * params_.bytes_per_cell);
}

VmOffset Em3dGraph::HAddr(int64_t h_index) const {
  const NodeId node = HOwner(h_index);
  const int64_t local = h_index - node * h_per_node_;
  return (h_base_page_ + static_cast<VmOffset>(node) * pages_per_h_slice_) * page_size_ +
         static_cast<VmOffset>(local * params_.bytes_per_cell);
}

std::pair<int64_t, int64_t> Em3dGraph::ERange(NodeId node) const {
  const int64_t lo = node * e_per_node_;
  return {std::min(lo, e_cells_), std::min(lo + e_per_node_, e_cells_)};
}

std::pair<int64_t, int64_t> Em3dGraph::HRange(NodeId node) const {
  const int64_t lo = node * h_per_node_;
  return {std::min(lo, h_cells_), std::min(lo + h_per_node_, h_cells_)};
}

// --- Timed mode ------------------------------------------------------------------

namespace {

Task TouchAll(TaskMemory& mem, const std::vector<VmOffset>& pages, size_t page_size,
              PageAccess access, WaitGroup& wg) {
  // Issue every touch, then await; faults proceed concurrently (the node's
  // message coprocessor overlaps protocol work with the compute processor).
  // Joined per node, on that node's own engine.
  std::vector<Future<Status>> futures;
  futures.reserve(pages.size());
  for (VmOffset page : pages) {
    futures.push_back(mem.Touch(page * page_size, 8, access));
  }
  for (auto& f : futures) {
    Status s = co_await f;
    ASVM_CHECK_MSG(IsOk(s), "EM3D touch failed");
  }
  wg.Done();
}

// Driver-side variant: the joiner is the main thread waiting on nodes spread
// across shards, so completion signals route through the cluster mutator.
Task TouchAllCluster(TaskMemory& mem, const std::vector<VmOffset>& pages, size_t page_size,
                     PageAccess access, NodeId node, ClusterWaitGroup& wg) {
  std::vector<Future<Status>> futures;
  futures.reserve(pages.size());
  for (VmOffset page : pages) {
    futures.push_back(mem.Touch(page * page_size, 8, access));
  }
  for (auto& f : futures) {
    Status s = co_await f;
    ASVM_CHECK_MSG(IsOk(s), "EM3D touch failed");
  }
  wg.Done(node);
}

Task Em3dNodeWorker(Machine& machine, const Em3dGraph& graph, const Em3dParams& params,
                    TaskMemory& mem, NodeId node, int total_iters, ClusterBarrier& barrier,
                    ClusterWaitGroup& done) {
  // The worker lives on its own node's engine; only barrier arrivals and the
  // final completion signal cross shard boundaries (via the cluster mutator).
  Engine& engine = machine.cluster().engine_for(node);
  const size_t ps = graph.page_size();
  auto [e_lo, e_hi] = graph.ERange(node);
  auto [h_lo, h_hi] = graph.HRange(node);
  const int64_t own_cells = (e_hi - e_lo) + (h_hi - h_lo);
  const SimDuration compute_per_phase = params.compute_per_cell_ns * own_cells / 2;

  const SimDuration barrier_cost =
      graph.nodes() > 1 ? params.barrier_per_node_ns * graph.nodes() : 0;
  for (int iter = 0; iter < total_iters; ++iter) {
    // Phase E: read H neighbours, update own E cells.
    {
      WaitGroup wg(engine);
      wg.Add(2);
      (void)TouchAll(mem, graph.EPhaseReadPages(node), ps, PageAccess::kRead, wg);
      (void)TouchAll(mem, graph.EPhaseWritePages(node), ps, PageAccess::kWrite, wg);
      co_await wg.Wait();
      co_await Delay(engine, compute_per_phase);
    }
    co_await barrier.Arrive(node);
    co_await Delay(engine, barrier_cost);
    // Phase H: read E neighbours, update own H cells.
    {
      WaitGroup wg(engine);
      wg.Add(2);
      (void)TouchAll(mem, graph.HPhaseReadPages(node), ps, PageAccess::kRead, wg);
      (void)TouchAll(mem, graph.HPhaseWritePages(node), ps, PageAccess::kWrite, wg);
      co_await wg.Wait();
      co_await Delay(engine, compute_per_phase);
    }
    co_await barrier.Arrive(node);
    co_await Delay(engine, barrier_cost);
  }
  done.Done(node);
}

}  // namespace

Em3dResult RunEm3dTimed(Machine& machine, const Em3dParams& params, int nodes_used,
                        int measure_iters) {
  ASVM_CHECK(nodes_used >= 1 && nodes_used <= machine.nodes());
  Em3dGraph graph(params, nodes_used);
  MemObjectId region = machine.CreateSharedRegion(/*home=*/0, graph.region_pages());

  std::vector<TaskMemory*> mems;
  for (NodeId n = 0; n < nodes_used; ++n) {
    mems.push_back(&machine.MapRegion(n, region));
  }

  // Initialization (not measured, like the paper): owners populate their
  // slices.
  {
    ClusterWaitGroup init(machine.cluster());
    for (NodeId n = 0; n < nodes_used; ++n) {
      init.Add(2);
      (void)TouchAllCluster(*mems[n], graph.EPhaseWritePages(n), graph.page_size(),
                            PageAccess::kWrite, n, init);
      (void)TouchAllCluster(*mems[n], graph.HPhaseWritePages(n), graph.page_size(),
                            PageAccess::kWrite, n, init);
    }
    machine.Run();
    ASVM_CHECK(init.count() == 0);
  }

  // Warmup (1 iteration) + measured iterations.
  const int warmup = 1;
  ClusterBarrier barrier(machine.cluster(), nodes_used);

  // Run the warmup by running workers for `warmup` iterations first: simplest
  // is to run all iterations and sample the clock after warmup completes.
  // Workers signal through a dedicated warmup barrier observer: we instead
  // time the whole run and subtract a separately-measured warmup-only run.
  // Cheaper and exact: run warmup-only workers, then measured workers.
  const int64_t faults_before_all = machine.stats().Get("vm.faults");
  {
    ClusterWaitGroup done(machine.cluster());
    done.Add(nodes_used);
    ClusterBarrier warm_barrier(machine.cluster(), nodes_used);
    for (NodeId n = 0; n < nodes_used; ++n) {
      (void)Em3dNodeWorker(machine, graph, params, *mems[n], n, warmup, warm_barrier, done);
    }
    machine.Run();
    ASVM_CHECK(done.count() == 0);
  }

  const SimTime start = machine.Now();
  const int64_t faults_before = machine.stats().Get("vm.faults");
  const int64_t bytes_before = machine.stats().Get("mesh.bytes");
  {
    ClusterWaitGroup done(machine.cluster());
    done.Add(nodes_used);
    for (NodeId n = 0; n < nodes_used; ++n) {
      (void)Em3dNodeWorker(machine, graph, params, *mems[n], n, measure_iters, barrier, done);
    }
    machine.Run();
    ASVM_CHECK(done.count() == 0);
  }
  const SimDuration measured = machine.Now() - start;

  Em3dResult result;
  result.seconds = ToSeconds(measured) * static_cast<double>(params.iterations) /
                   static_cast<double>(measure_iters);
  result.faults = machine.stats().Get("vm.faults") - faults_before;
  result.bytes_on_wire =
      static_cast<double>(machine.stats().Get("mesh.bytes") - bytes_before);
  (void)faults_before_all;
  return result;
}

// --- Verified mode -----------------------------------------------------------------

namespace {

uint64_t DoubleBits(double v) { return std::bit_cast<uint64_t>(v); }
double BitsDouble(uint64_t b) { return std::bit_cast<double>(b); }

Task Em3dVerifiedWorker(Machine& machine, const Em3dGraph& graph, const Em3dParams& params,
                        TaskMemory& mem, NodeId node, ClusterBarrier& barrier,
                        ClusterWaitGroup& done) {
  const int k = params.edges_per_cell;
  for (int iter = 0; iter < params.iterations; ++iter) {
    auto [e_lo, e_hi] = graph.ERange(node);
    for (int64_t i = e_lo; i < e_hi; ++i) {
      double sum = 0;
      for (int j = 0; j < k; ++j) {
        const int64_t nb = graph.e_neighbors()[static_cast<size_t>(i) * k + j];
        const uint64_t bits = co_await mem.ReadU64(graph.HAddr(nb));
        sum += Em3dGraph::Weight(j) * BitsDouble(bits);
      }
      Status s = co_await mem.WriteU64(graph.EAddr(i), DoubleBits(sum));
      ASVM_CHECK(IsOk(s));
    }
    co_await barrier.Arrive(node);
    auto [h_lo, h_hi] = graph.HRange(node);
    for (int64_t i = h_lo; i < h_hi; ++i) {
      double sum = 0;
      for (int j = 0; j < k; ++j) {
        const int64_t nb = graph.h_neighbors()[static_cast<size_t>(i) * k + j];
        const uint64_t bits = co_await mem.ReadU64(graph.EAddr(nb));
        sum += Em3dGraph::Weight(j) * BitsDouble(bits);
      }
      Status s = co_await mem.WriteU64(graph.HAddr(i), DoubleBits(sum));
      ASVM_CHECK(IsOk(s));
    }
    co_await barrier.Arrive(node);
  }
  (void)machine;
  done.Done(node);
}

}  // namespace

uint64_t RunEm3dVerified(Machine& machine, const Em3dParams& params, int nodes_used) {
  ASVM_CHECK(nodes_used >= 1 && nodes_used <= machine.nodes());
  Em3dGraph graph(params, nodes_used);
  MemObjectId region = machine.CreateSharedRegion(/*home=*/0, graph.region_pages());
  std::vector<TaskMemory*> mems;
  for (NodeId n = 0; n < nodes_used; ++n) {
    mems.push_back(&machine.MapRegion(n, region));
  }

  // Initial values: cell index + 1 (E cells), -(index + 1) (H cells).
  for (int64_t i = 0; i < graph.e_cells(); ++i) {
    auto f = mems[graph.EOwner(i)]->WriteU64(graph.EAddr(i),
                                             DoubleBits(static_cast<double>(i + 1)));
    machine.Run();
    ASVM_CHECK(f.ready() && IsOk(f.value()));
  }
  for (int64_t i = 0; i < graph.h_cells(); ++i) {
    auto f = mems[graph.HOwner(i)]->WriteU64(graph.HAddr(i),
                                             DoubleBits(-static_cast<double>(i + 1)));
    machine.Run();
    ASVM_CHECK(f.ready() && IsOk(f.value()));
  }

  ClusterBarrier barrier(machine.cluster(), nodes_used);
  ClusterWaitGroup done(machine.cluster());
  done.Add(nodes_used);
  for (NodeId n = 0; n < nodes_used; ++n) {
    (void)Em3dVerifiedWorker(machine, graph, params, *mems[n], n, barrier, done);
  }
  machine.Run();
  ASVM_CHECK(done.count() == 0);

  uint64_t checksum = 0;
  for (int64_t i = 0; i < graph.e_cells(); ++i) {
    auto f = mems[graph.EOwner(i)]->ReadU64(graph.EAddr(i));
    machine.Run();
    ASVM_CHECK(f.ready());
    checksum ^= f.value() + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(i);
  }
  for (int64_t i = 0; i < graph.h_cells(); ++i) {
    auto f = mems[graph.HOwner(i)]->ReadU64(graph.HAddr(i));
    machine.Run();
    ASVM_CHECK(f.ready());
    checksum ^= f.value() + 0x517cc1b727220a95ULL * static_cast<uint64_t>(i);
  }
  return checksum;
}

uint64_t Em3dSequentialChecksum(const Em3dParams& params, int nodes_layout) {
  Em3dGraph graph(params, nodes_layout);
  const int k = params.edges_per_cell;
  std::vector<double> e(graph.e_cells());
  std::vector<double> h(graph.h_cells());
  for (int64_t i = 0; i < graph.e_cells(); ++i) {
    e[i] = static_cast<double>(i + 1);
  }
  for (int64_t i = 0; i < graph.h_cells(); ++i) {
    h[i] = -static_cast<double>(i + 1);
  }
  for (int iter = 0; iter < params.iterations; ++iter) {
    for (int64_t i = 0; i < graph.e_cells(); ++i) {
      double sum = 0;
      for (int j = 0; j < k; ++j) {
        sum += Em3dGraph::Weight(j) *
               h[graph.e_neighbors()[static_cast<size_t>(i) * k + j]];
      }
      e[i] = sum;
    }
    for (int64_t i = 0; i < graph.h_cells(); ++i) {
      double sum = 0;
      for (int j = 0; j < k; ++j) {
        sum += Em3dGraph::Weight(j) *
               e[graph.h_neighbors()[static_cast<size_t>(i) * k + j]];
      }
      h[i] = sum;
    }
  }
  uint64_t checksum = 0;
  for (int64_t i = 0; i < graph.e_cells(); ++i) {
    checksum ^= DoubleBits(e[i]) + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(i);
  }
  for (int64_t i = 0; i < graph.h_cells(); ++i) {
    checksum ^= DoubleBits(h[i]) + 0x517cc1b727220a95ULL * static_cast<uint64_t>(i);
  }
  return checksum;
}

double Em3dSequentialSeconds(const Em3dParams& params) {
  return ToSeconds(params.compute_per_cell_ns * params.cells) *
         static_cast<double>(params.iterations);
}

}  // namespace asvm
