// EM3D — the SVM application of the paper's §4.3: a bipartite graph of E and
// H cells; each iteration updates every E cell from its H neighbours, then
// every H cell from its E neighbours. Cells are partitioned contiguously
// across nodes (page-aligned slices, as each processor's cells live in its
// own memory); a configurable fraction of edges crosses node boundaries.
//
// Two execution modes:
//  * Verified — every neighbour value flows through the DSM; the final
//    checksum must match a sequential reference bit-for-bit. For small
//    graphs in tests.
//  * Timed — the page-fault traffic of each phase is simulated exactly
//    (write upgrades on own cells, read faults on remote neighbours) while
//    the floating-point work is charged as modeled compute time. This is
//    what regenerates Table 3 at full problem sizes.
#ifndef SRC_EM3D_EM3D_H_
#define SRC_EM3D_EM3D_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/machine.h"

namespace asvm {

struct Em3dParams {
  int64_t cells = 64000;        // total cells; half E, half H
  int edges_per_cell = 6;       // paper: 6
  double remote_fraction = 0.2; // paper: 20%
  int iterations = 100;         // reported iteration count
  uint64_t seed = 1;
  int64_t bytes_per_cell = 224;  // paper: 224 bytes of memory per cell
  // Spatial locality of the electromagnetic grid: remote edges lead to a
  // neighbouring node (ring) and land in that node's boundary region — the
  // fraction of its slice adjacent to the cut. Without this locality an
  // SVM EM3D shares every page and cannot speed up at all.
  double boundary_fraction = 0.075;
  // Cost of each phase barrier at the coordinating node (arrive + release
  // message handling per participant); dominates ASVM's per-iteration time at
  // high node counts, flattening its speedup curve as in Table 3.
  SimDuration barrier_per_node_ns = 500 * kMicrosecond;
  // Compute cost per cell per iteration, calibrated so the sequential 64000-
  // cell run matches the paper's 43.6 s for 100 iterations.
  SimDuration compute_per_cell_ns = 6812;
};

// Deterministic bipartite graph + the page-level access sets each node needs
// per phase. Identical for a given (params, node count) regardless of DSM.
class Em3dGraph {
 public:
  Em3dGraph(const Em3dParams& params, int nodes);

  int nodes() const { return nodes_; }
  int64_t e_cells() const { return e_cells_; }
  int64_t h_cells() const { return h_cells_; }
  VmSize region_pages() const { return region_pages_; }
  size_t page_size() const { return page_size_; }

  int64_t EPerNode() const { return e_per_node_; }

  // Address of a cell's value (8 bytes) in the shared region.
  VmOffset EAddr(int64_t e_index) const;
  VmOffset HAddr(int64_t h_index) const;

  NodeId EOwner(int64_t e_index) const { return static_cast<NodeId>(e_index / e_per_node_); }
  NodeId HOwner(int64_t h_index) const { return static_cast<NodeId>(h_index / h_per_node_); }

  // Owned index ranges per node.
  std::pair<int64_t, int64_t> ERange(NodeId node) const;
  std::pair<int64_t, int64_t> HRange(NodeId node) const;

  // Neighbour lists (indices into the other cell class).
  const std::vector<int64_t>& e_neighbors() const { return e_neighbors_; }
  const std::vector<int64_t>& h_neighbors() const { return h_neighbors_; }

  // Edge weight of the j-th edge (same for both phases; deterministic).
  static double Weight(int j) { return 1.0 / (3.0 + j); }

  // Per-node page sets for the timed mode.
  const std::vector<VmOffset>& EPhaseWritePages(NodeId node) const {
    return e_write_pages_[node];
  }
  const std::vector<VmOffset>& EPhaseReadPages(NodeId node) const {
    return e_read_pages_[node];
  }
  const std::vector<VmOffset>& HPhaseWritePages(NodeId node) const {
    return h_write_pages_[node];
  }
  const std::vector<VmOffset>& HPhaseReadPages(NodeId node) const {
    return h_read_pages_[node];
  }

 private:
  Em3dParams params_;
  int nodes_;
  size_t page_size_ = 8192;
  int64_t e_cells_;
  int64_t h_cells_;
  int64_t e_per_node_;
  int64_t h_per_node_;
  VmSize pages_per_e_slice_;
  VmSize pages_per_h_slice_;
  VmSize h_base_page_;
  VmSize region_pages_;
  std::vector<int64_t> e_neighbors_;  // e_cells * edges_per_cell H-indices
  std::vector<int64_t> h_neighbors_;  // h_cells * edges_per_cell E-indices
  std::vector<std::vector<VmOffset>> e_write_pages_;
  std::vector<std::vector<VmOffset>> e_read_pages_;
  std::vector<std::vector<VmOffset>> h_write_pages_;
  std::vector<std::vector<VmOffset>> h_read_pages_;
};

struct Em3dResult {
  double seconds = 0;       // projected time for params.iterations iterations
  int64_t faults = 0;       // VM faults during the measured window
  double bytes_on_wire = 0; // transport traffic during the measured window
};

// Timed run on `machine` using `nodes_used` nodes. Runs one warmup iteration
// plus `measure_iters` measured ones, then projects to params.iterations.
Em3dResult RunEm3dTimed(Machine& machine, const Em3dParams& params, int nodes_used,
                        int measure_iters = 10);

// Full-data run through the DSM; returns the XOR checksum of all final cell
// values. Must equal Em3dSequentialChecksum for the same (params, nodes).
uint64_t RunEm3dVerified(Machine& machine, const Em3dParams& params, int nodes_used);

// Sequential reference (host-side arrays, same graph and update order).
uint64_t Em3dSequentialChecksum(const Em3dParams& params, int nodes_layout);

// Modeled single-node execution time (pure compute; no DSM traffic).
double Em3dSequentialSeconds(const Em3dParams& params);

}  // namespace asvm

#endif  // SRC_EM3D_EM3D_H_
