// Pager-side EMMI interface: the upcalls the kernel (NodeVm) makes to the
// memory manager of a managed VM object. DSM systems (XMM, ASVM) implement
// this per node to interpose between each node's VM and the real backing
// pager, exactly as Figure 4/5 of the paper describes.
#ifndef SRC_MACHVM_PAGER_H_
#define SRC_MACHVM_PAGER_H_

#include "src/common/types.h"
#include "src/machvm/emmi.h"

namespace asvm {

class NodeVm;
class VmObject;

class Pager {
 public:
  virtual ~Pager() = default;

  // memory_object_data_request: the kernel needs the page with at least
  // `desired` access. The pager answers asynchronously with
  // NodeVm::DataSupply or NodeVm::DataUnavailable.
  virtual void DataRequest(VmObject& object, PageIndex page, PageAccess desired) = 0;

  // memory_object_data_unlock: the page is resident but its lock is below the
  // desired access (a write on a read-locked page). The pager answers with
  // NodeVm::LockGranted (possibly after coherency work).
  virtual void DataUnlock(VmObject& object, PageIndex page, PageAccess desired) = 0;

  // Pageout hook: the kernel is evicting this page. `dirty` reflects
  // modifications since the last supply/clean. If the pager returns kTaken it
  // has (asynchronously) taken care of preserving the contents; kDiscard
  // means the contents are recoverable without further work.
  virtual EvictAction OnEvict(VmObject& object, PageIndex page, PageBuffer data,
                              bool dirty) = 0;

  // memory_object_lock_completed (with the ASVM "result" extension). Reply to
  // a NodeVm::LockRequest issued by this pager.
  virtual void LockCompleted(VmObject& object, PageIndex page, LockResult result) = 0;

  // memory_object_pull_completed (ASVM extension). Reply to a
  // NodeVm::PullRequest issued by this pager.
  virtual void PullCompleted(VmObject& object, PageIndex page, PullResult result) = 0;
};

}  // namespace asvm

#endif  // SRC_MACHVM_PAGER_H_
