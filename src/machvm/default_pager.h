// The default pager: backing store for anonymous (temporary) memory. Pages
// evicted dirty are written to paging space on the node's paging disk and can
// be read back on a later fault.
#ifndef SRC_MACHVM_DEFAULT_PAGER_H_
#define SRC_MACHVM_DEFAULT_PAGER_H_

#include <functional>
#include <unordered_map>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/machvm/disk.h"
#include "src/machvm/page.h"
#include "src/sim/engine.h"

namespace asvm {

class DefaultPager {
 public:
  // `disk` is the paging disk (on the node's I/O node; shared between the
  // nodes of an I/O group). May be null in configurations that must never
  // page, in which case writes abort.
  DefaultPager(Engine& engine, Disk* disk, StatsRegistry* stats)
      : engine_(engine), disk_(disk), stats_(stats) {}

  // True when paging space holds contents for (object serial, page).
  bool HasPage(uint64_t object_serial, PageIndex page) const;

  // Reads the page back from paging space (disk latency applies).
  void ReadPage(uint64_t object_serial, PageIndex page, std::function<void(PageBuffer)> done);

  // Writes the page to paging space. `done` (optional) runs at I/O completion;
  // the contents are logically in paging space immediately (buffered write).
  void WritePage(uint64_t object_serial, PageIndex page, PageBuffer data,
                 std::function<void()> done = {});

  // Discards a paged-out page (object destroyed or page superseded).
  void Drop(uint64_t object_serial, PageIndex page);

  size_t stored_pages() const { return count_; }

 private:
  static int64_t PositionKey(uint64_t object_serial, PageIndex page) {
    return static_cast<int64_t>((object_serial << 24) ^ static_cast<uint64_t>(page));
  }

  Engine& engine_;
  Disk* disk_;
  StatsRegistry* stats_;
  std::unordered_map<uint64_t, std::unordered_map<PageIndex, PageBuffer>> store_;
  size_t count_ = 0;
};

}  // namespace asvm

#endif  // SRC_MACHVM_DEFAULT_PAGER_H_
