// VM objects: the kernel-side representation of memory objects, including the
// shadow/copy relationships that implement Mach's delayed-copy semantics
// (paper §2.2, Figures 2 and 3).
//
// An object is either *temporary* (anonymous zero-fill memory, implicitly
// backed by the node's default pager once pages are evicted) or *managed*
// (it has a MemObjectId and a Pager — a DSM agent or a local pager adapter).
//
// Links:
//   shadow_  — where to look for pages this object does not have (reads walk
//              down the shadow chain; asymmetric "pull" path).
//   copy_    — the most recent asymmetric copy of this object; pages must be
//              pushed there before they are modified here (the "push" path).
#ifndef SRC_MACHVM_VM_OBJECT_H_
#define SRC_MACHVM_VM_OBJECT_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/machvm/page.h"
#include "src/sim/future.h"

namespace asvm {

class NodeVm;
class Pager;

// How delayed copies of this object are made (paper §2.2).
enum class CopyStrategy {
  kSymmetric,   // fork-style: both sides shadow the frozen original
  kAsymmetric,  // pager-visible: explicit copy object with push/pull links
};

class VmObject : public std::enable_shared_from_this<VmObject> {
 public:
  VmObject(NodeVm& vm, uint64_t serial, VmSize page_count, CopyStrategy strategy)
      : vm_(vm), serial_(serial), page_count_(page_count), copy_strategy_(strategy) {}
  ~VmObject();

  VmObject(const VmObject&) = delete;
  VmObject& operator=(const VmObject&) = delete;

  NodeVm& vm() const { return vm_; }
  uint64_t serial() const { return serial_; }
  VmSize page_count() const { return page_count_; }
  CopyStrategy copy_strategy() const { return copy_strategy_; }

  // Managed-object identity. Valid only when a DSM layer or pager adapter
  // manages this object.
  const MemObjectId& id() const { return id_; }
  bool managed() const { return pager_ != nullptr; }
  Pager* pager() const { return pager_; }
  void SetManager(const MemObjectId& id, Pager* pager) {
    id_ = id;
    pager_ = pager;
  }

  const std::shared_ptr<VmObject>& shadow() const { return shadow_; }
  void set_shadow(std::shared_ptr<VmObject> shadow) { shadow_ = std::move(shadow); }
  const std::shared_ptr<VmObject>& copy() const { return copy_; }
  void set_copy(std::shared_ptr<VmObject> copy) { copy_ = std::move(copy); }

  // --- Residency -----------------------------------------------------------

  VmPage* FindResident(PageIndex page);
  const VmPage* FindResident(PageIndex page) const;
  size_t resident_count() const { return resident_.size(); }
  const std::unordered_map<PageIndex, VmPage>& resident_pages() const { return resident_; }

  // Inserts a resident page (the caller must have reserved a frame through
  // NodeVm). Replaces any existing page.
  VmPage& InsertPage(PageIndex page, PageBuffer data, PageAccess lock, bool dirty);

  // Removes residency; the caller is responsible for frame release (NodeVm
  // wraps this correctly).
  void DropPage(PageIndex page);

  // --- Fault coordination --------------------------------------------------
  // At most one pager request is outstanding per page; concurrent faulters
  // park on the waiter list and re-resolve when the page state changes.

  // Returns the access level of the outstanding pager request, or kNone.
  PageAccess OutstandingRequest(PageIndex page) const;
  void SetOutstandingRequest(PageIndex page, PageAccess access);
  void ClearOutstandingRequest(PageIndex page);

  void AddWaiter(PageIndex page, Promise<Status> waiter);
  // Wakes every fault waiting on this page (they retry resolution).
  void WakeWaiters(PageIndex page, Status status);

 private:
  NodeVm& vm_;
  uint64_t serial_;
  VmSize page_count_;
  CopyStrategy copy_strategy_;
  MemObjectId id_;
  Pager* pager_ = nullptr;
  std::shared_ptr<VmObject> shadow_;
  std::shared_ptr<VmObject> copy_;
  std::unordered_map<PageIndex, VmPage> resident_;
  std::unordered_map<PageIndex, PageAccess> outstanding_;
  std::unordered_map<PageIndex, std::vector<Promise<Status>>> waiters_;
};

}  // namespace asvm

#endif  // SRC_MACHVM_VM_OBJECT_H_
