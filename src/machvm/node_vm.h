// The per-node Mach VM system: fault handling over shadow/copy chains,
// physical memory as a cache with pageout, and the kernel side of EMMI
// (including the paper's ASVM extensions).
#ifndef SRC_MACHVM_NODE_VM_H_
#define SRC_MACHVM_NODE_VM_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/machvm/emmi.h"
#include "src/machvm/pager.h"
#include "src/machvm/vm_map.h"
#include "src/machvm/vm_object.h"
#include "src/sim/engine.h"
#include "src/sim/future.h"
#include "src/sim/task.h"

namespace asvm {

class DefaultPager;

// Software costs of VM operations (calibrated to a ~50 MHz i860 kernel).
struct VmCosts {
  SimDuration fault_base_ns = 300 * kMicrosecond;  // fault entry/exit + map lookup
  SimDuration page_copy_ns = 40 * kMicrosecond;    // 8 KB copy (COW, push)
  SimDuration zero_fill_ns = 30 * kMicrosecond;
  SimDuration pager_call_ns = 150 * kMicrosecond;  // EMMI call into/out of a pager
  SimDuration map_op_ns = 10 * kMicrosecond;       // entry manipulation, shadow creation
};

struct VmParams {
  size_t page_size = 8192;
  size_t frame_capacity = 2048;  // physical frames available to the VM cache
  VmCosts costs;
};

class NodeVm {
 public:
  NodeVm(Engine& engine, NodeId node, VmParams params, StatsRegistry* stats);
  ~NodeVm();

  NodeVm(const NodeVm&) = delete;
  NodeVm& operator=(const NodeVm&) = delete;

  Engine& engine() { return engine_; }
  NodeId node() const { return node_; }
  size_t page_size() const { return params_.page_size; }
  const VmCosts& costs() const { return params_.costs; }
  StatsRegistry* stats() { return stats_; }

  // The default pager backs anonymous memory once it is paged out. Must be
  // set before any eviction of dirty anonymous pages can occur.
  void SetDefaultPager(DefaultPager* pager) { default_pager_ = pager; }
  DefaultPager* default_pager() const { return default_pager_; }

  // --- Objects and maps ----------------------------------------------------

  std::shared_ptr<VmObject> CreateObject(VmSize page_count,
                                         CopyStrategy strategy = CopyStrategy::kSymmetric);

  // Marks an object as managed by `pager` under the given global identity and
  // indexes it for FindManaged.
  void RegisterManaged(const std::shared_ptr<VmObject>& object, const MemObjectId& id,
                       Pager* pager);
  std::shared_ptr<VmObject> FindManaged(const MemObjectId& id) const;

  VmMap* CreateMap();

  // Local fork: builds a child map honoring per-entry inheritance, using the
  // symmetric strategy for temporary objects and the asymmetric strategy for
  // managed ones (paper §2.2).
  VmMap* ForkMap(VmMap& parent);

  // Creates an asymmetric delayed copy of `source` and inserts it into the
  // copy chain immediately after the source (re-linking any older copy's
  // shadow through the new copy).
  std::shared_ptr<VmObject> CreateAsymmetricCopy(const std::shared_ptr<VmObject>& source);

  // --- Faults and data access ----------------------------------------------

  // Resolves a page fault at `addr` for the desired access. The future
  // completes when the access may proceed (or with an error status).
  Future<Status> Fault(VmMap& map, VmOffset addr, PageAccess desired);

  // Fast path: returns a pointer to the byte at addr if the access can
  // proceed right now without any fault activity, nullptr otherwise. A write
  // access marks the page dirty.
  std::byte* TryAccess(VmMap& map, VmOffset addr, PageAccess desired);

  // --- EMMI: kernel-side entry points for pagers ----------------------------

  // memory_object_data_supply (with ASVM "mode" extension). `dirty` seeds the
  // page's dirty flag (pushed pages exist nowhere else and must be dirty).
  void DataSupply(VmObject& object, PageIndex page, PageBuffer data, PageAccess lock,
                  SupplyMode mode = SupplyMode::kNormal, bool dirty = false);

  // memory_object_data_unavailable: zero-fill the page with the given lock.
  void DataUnavailable(VmObject& object, PageIndex page, PageAccess lock);

  // Reply to a Pager::DataUnlock upcall: raises the kernel's lock on a
  // resident page (typically read -> write after coherency work).
  void LockGranted(VmObject& object, PageIndex page, PageAccess new_lock);

  // Completes a fault with an error (e.g. XMM copy-pager deadlock).
  void FaultFailed(VmObject& object, PageIndex page, Status status);

  // memory_object_lock_request (with ASVM "mode" extension). Asynchronous;
  // `completed` receives kDone or kNotResident (paper §3.7.1).
  void LockRequest(VmObject& object, PageIndex page, PageAccess new_lock, LockMode mode,
                   std::function<void(LockResult)> completed);

  // memory_object_pull_request (ASVM extension): traverses the local shadow
  // chain starting at `object`; see PullResult.
  void PullRequest(VmObject& object, PageIndex page, std::function<void(PullResult)> completed);

  // Removes a resident page and returns its contents + dirty state (used by
  // DSM layers that need the data while invalidating, e.g. XMM data_return).
  struct Extracted {
    bool was_resident = false;
    PageBuffer data;
    bool dirty = false;
  };
  Extracted ExtractPage(VmObject& object, PageIndex page);

  // --- Physical memory ------------------------------------------------------

  size_t frames_capacity() const { return params_.frame_capacity; }
  size_t frames_used() const { return frames_used_; }
  size_t free_frames() const { return params_.frame_capacity - frames_used_; }

  // Evicts one page (FIFO over resident pages, skipping wired ones).
  // Returns kNotFound when nothing is evictable.
  Status EvictOnePage();

  // Wire/unwire a resident page against pageout during protocol transitions.
  void WirePage(VmObject& object, PageIndex page);
  void UnwirePage(VmObject& object, PageIndex page);

  // Inserts a page, reserving a frame (evicting if necessary). Aborts if no
  // frame can be freed — callers gate on free_frames() where refusal is a
  // legal outcome (internode pageout).
  VmPage& InstallPage(VmObject& object, PageIndex page, PageBuffer data, PageAccess lock,
                      bool dirty);

  // Drops residency and releases the frame.
  void RemovePage(VmObject& object, PageIndex page);

  // --- Diagnostics ----------------------------------------------------------

  // Faults whose coroutine has not completed yet, keyed by a per-node serial
  // (std::map so stall reports list them in start order). Host-side
  // bookkeeping only: maintaining it schedules nothing.
  struct InFlightFault {
    VmOffset addr = 0;
    PageAccess desired = PageAccess::kNone;
    SimTime started = 0;
  };
  const std::map<uint64_t, InFlightFault>& faults_in_flight() const {
    return faults_in_flight_;
  }

 private:
  friend class VmObject;

  struct Classified {
    enum class Kind {
      kResolved,
      kUnmapped,
      kCreateShadow,
      kWaitPager,
      kNeedRequest,
      kNeedUnlock,
      kNeedPagingSpace,
      kZeroFill,
      kCowCopy,
      kNeedLocalPush,
    };
    Kind kind = Kind::kUnmapped;
    VmMapEntry* entry = nullptr;
    VmObject* top = nullptr;
    VmObject* target = nullptr;  // object the action applies to
    PageIndex page = kInvalidPage;
    VmPage* found = nullptr;     // resident page backing a kResolved/kCowCopy
    VmObject* found_in = nullptr;
    PageAccess request_access = PageAccess::kNone;
  };

  Classified Classify(VmMap& map, VmOffset addr, PageAccess desired);
  Task FaultTask(VmMap& map, VmOffset addr, PageAccess desired, Promise<Status> done);

  // True when the copy object already holds the page (resident or paged out),
  // i.e. no push is needed before modifying the source.
  bool CopyHasPage(VmObject& copy, PageIndex page) const;

  // Pushes pre-write contents into the object's copy (if needed). Returns
  // true if a push happened.
  bool PushToLocalCopy(VmObject& source, PageIndex page, const PageBuffer& pre_write);

  bool ReserveFrame();
  void ReleaseFrame();
  void OnObjectDestroyed(size_t resident_pages);

  struct EvictRef {
    std::weak_ptr<VmObject> object;
    PageIndex page;
    uint64_t tick;
  };

  Engine& engine_;
  NodeId node_;
  VmParams params_;
  StatsRegistry* stats_;
  DefaultPager* default_pager_ = nullptr;
  uint64_t next_serial_ = 1;
  uint64_t tick_ = 1;
  size_t frames_used_ = 0;
  std::deque<EvictRef> evict_queue_;
  std::unordered_map<MemObjectId, std::weak_ptr<VmObject>> managed_;
  std::vector<std::unique_ptr<VmMap>> maps_;
  std::vector<std::shared_ptr<VmObject>> owned_objects_;  // keep-alive registry
  std::map<uint64_t, InFlightFault> faults_in_flight_;
  uint64_t next_fault_serial_ = 1;
};

}  // namespace asvm

#endif  // SRC_MACHVM_NODE_VM_H_
