#include "src/machvm/node_vm.h"

#include <utility>

#include "src/common/log.h"
#include "src/machvm/default_pager.h"

namespace asvm {

NodeVm::NodeVm(Engine& engine, NodeId node, VmParams params, StatsRegistry* stats)
    : engine_(engine), node_(node), params_(params), stats_(stats) {}

NodeVm::~NodeVm() {
  // Shadow/copy links form intentional shared_ptr cycles (source.copy_ and
  // copy.shadow_ reference each other); break them so teardown reclaims all
  // objects.
  for (auto& object : owned_objects_) {
    object->set_shadow(nullptr);
    object->set_copy(nullptr);
  }
}

std::shared_ptr<VmObject> NodeVm::CreateObject(VmSize page_count, CopyStrategy strategy) {
  auto object = std::make_shared<VmObject>(*this, next_serial_++, page_count, strategy);
  owned_objects_.push_back(object);
  return object;
}

void NodeVm::RegisterManaged(const std::shared_ptr<VmObject>& object, const MemObjectId& id,
                             Pager* pager) {
  ASVM_CHECK(object != nullptr && pager != nullptr && id.valid());
  object->SetManager(id, pager);
  managed_[id] = object;
}

std::shared_ptr<VmObject> NodeVm::FindManaged(const MemObjectId& id) const {
  auto it = managed_.find(id);
  if (it == managed_.end()) {
    return nullptr;
  }
  return it->second.lock();
}

VmMap* NodeVm::CreateMap() {
  maps_.push_back(std::make_unique<VmMap>(params_.page_size));
  return maps_.back().get();
}

VmMap* NodeVm::ForkMap(VmMap& parent) {
  VmMap* child = CreateMap();
  for (auto& [start, entry] : parent.entries()) {
    switch (entry.inheritance) {
      case Inheritance::kNone:
        break;
      case Inheritance::kShare: {
        Status s = child->Map(entry.start_page, entry.page_count, entry.object,
                              entry.object_offset, entry.inheritance);
        ASVM_CHECK(IsOk(s));
        break;
      }
      case Inheritance::kCopy: {
        if (entry.object->copy_strategy() == CopyStrategy::kSymmetric &&
            !entry.object->managed()) {
          // Symmetric: both sides keep the (now frozen) object and shadow it
          // lazily on first write.
          Status s = child->Map(entry.start_page, entry.page_count, entry.object,
                                entry.object_offset, entry.inheritance);
          ASVM_CHECK(IsOk(s));
          entry.needs_copy = true;
          child->LookupPage(entry.start_page)->needs_copy = true;
        } else {
          // Asymmetric: explicit copy object with push/pull links — required
          // whenever source modifications must keep reaching the pager.
          auto copy = CreateAsymmetricCopy(entry.object);
          Status s = child->Map(entry.start_page, entry.page_count, std::move(copy),
                                entry.object_offset, entry.inheritance);
          ASVM_CHECK(IsOk(s));
        }
        break;
      }
    }
  }
  if (stats_ != nullptr) {
    stats_->Add("vm.forks");
  }
  return child;
}

std::shared_ptr<VmObject> NodeVm::CreateAsymmetricCopy(const std::shared_ptr<VmObject>& source) {
  auto copy = CreateObject(source->page_count(), CopyStrategy::kSymmetric);
  copy->set_shadow(source);
  // New copies enter the copy chain immediately after their source (§2.2):
  // the older copy now reads through the fresh one, whose contents at this
  // instant are identical.
  std::shared_ptr<VmObject> older = source->copy();
  if (older != nullptr) {
    older->set_shadow(copy);
  }
  source->set_copy(copy);
  if (stats_ != nullptr) {
    stats_->Add("vm.asymmetric_copies");
  }
  return copy;
}

// --- Fault path --------------------------------------------------------------

NodeVm::Classified NodeVm::Classify(VmMap& map, VmOffset addr, PageAccess desired) {
  Classified c;
  VmMap::Resolution res = map.Resolve(addr);
  if (res.entry == nullptr) {
    c.kind = Classified::Kind::kUnmapped;
    return c;
  }
  c.entry = res.entry;
  c.page = res.object_page;
  c.top = res.entry->object.get();
  if (c.page < 0 || static_cast<VmSize>(c.page) >= c.top->page_count()) {
    c.kind = Classified::Kind::kUnmapped;
    return c;
  }

  // Symmetric copy-on-write: the first write through a needs_copy entry
  // interposes a fresh shadow object (paper Figure 2).
  if (desired == PageAccess::kWrite && res.entry->needs_copy) {
    c.kind = Classified::Kind::kCreateShadow;
    return c;
  }

  // Walk the shadow chain looking for the page. The walk stops at the first
  // managed object that lacks the page: its memory manager is the authority
  // beyond this point (paper §3.7.3).
  VmObject* obj = c.top;
  while (true) {
    VmPage* vp = obj->FindResident(c.page);
    if (vp != nullptr) {
      c.found = vp;
      c.found_in = obj;
      break;
    }
    if (obj->managed()) {
      c.target = obj;
      if (obj->OutstandingRequest(c.page) != PageAccess::kNone) {
        c.kind = Classified::Kind::kWaitPager;
      } else {
        c.kind = Classified::Kind::kNeedRequest;
        c.request_access = obj == c.top ? desired : PageAccess::kRead;
      }
      return c;
    }
    if (default_pager_ != nullptr && default_pager_->HasPage(obj->serial(), c.page)) {
      c.target = obj;
      // A concurrent faulter may already have the page-in under way.
      c.kind = obj->OutstandingRequest(c.page) != PageAccess::kNone
                   ? Classified::Kind::kWaitPager
                   : Classified::Kind::kNeedPagingSpace;
      return c;
    }
    if (obj->shadow() != nullptr) {
      obj = obj->shadow().get();
      continue;
    }
    c.target = c.top;
    c.kind = Classified::Kind::kZeroFill;
    return c;
  }

  if (desired == PageAccess::kRead) {
    // Reads are satisfied directly from wherever the page was found; pages
    // found through a shadow link are NOT copied (delayed-copy property).
    c.kind = Classified::Kind::kResolved;
    return c;
  }

  // Write access.
  if (c.found_in != c.top) {
    c.target = c.top;
    c.kind = Classified::Kind::kCowCopy;
    return c;
  }
  if (!AccessAllows(c.found->lock, PageAccess::kWrite)) {
    ASVM_CHECK_MSG(c.top->managed(), "write-locked page in unmanaged object");
    c.target = c.top;
    if (c.top->OutstandingRequest(c.page) != PageAccess::kNone) {
      c.kind = Classified::Kind::kWaitPager;
    } else {
      c.kind = Classified::Kind::kNeedUnlock;
    }
    return c;
  }
  if (c.top->copy() != nullptr && !CopyHasPage(*c.top->copy(), c.page)) {
    ASVM_CHECK_MSG(!c.top->copy()->managed() || c.top->managed(),
                   "unmanaged source with managed copy");
    if (!c.top->managed()) {
      c.target = c.top;
      c.kind = Classified::Kind::kNeedLocalPush;
      return c;
    }
    // Managed sources coordinate pushes through their manager: after any copy
    // creation the manager read-locks resident pages, so a write fault always
    // funnels through kNeedUnlock above. Reaching here means the manager has
    // already granted write for this epoch.
  }
  c.kind = Classified::Kind::kResolved;
  return c;
}

bool NodeVm::CopyHasPage(VmObject& copy, PageIndex page) const {
  if (copy.FindResident(page) != nullptr) {
    return true;
  }
  return default_pager_ != nullptr && default_pager_->HasPage(copy.serial(), page);
}

bool NodeVm::PushToLocalCopy(VmObject& source, PageIndex page, const PageBuffer& pre_write) {
  VmObject* copy = source.copy().get();
  if (copy == nullptr || CopyHasPage(*copy, page)) {
    return false;
  }
  // Pushed pages exist nowhere else from the copy's point of view: dirty.
  InstallPage(*copy, page, ClonePage(pre_write), PageAccess::kWrite, /*dirty=*/true);
  if (stats_ != nullptr) {
    stats_->Add("vm.local_pushes");
  }
  return true;
}

Future<Status> NodeVm::Fault(VmMap& map, VmOffset addr, PageAccess desired) {
  Promise<Status> done(engine_);
  (void)FaultTask(map, addr, desired, done);
  return done.GetFuture();
}

Task NodeVm::FaultTask(VmMap& map, VmOffset addr, PageAccess desired, Promise<Status> done) {
  if (stats_ != nullptr) {
    stats_->Add("vm.faults");
    stats_->Add(desired == PageAccess::kWrite ? "vm.faults_write" : "vm.faults_read");
  }
  const uint64_t fault_serial = next_fault_serial_++;
  faults_in_flight_.emplace(fault_serial, InFlightFault{addr, desired, engine_.Now()});
  // Coroutine frames are destroyed at final suspend, so this guard's
  // destructor deregisters the fault on every exit path — including a frame
  // that never completes only if the whole NodeVm dies with it.
  struct Tracker {
    NodeVm* vm;
    uint64_t serial;
    ~Tracker() { vm->faults_in_flight_.erase(serial); }
  } tracker{this, fault_serial};
  co_await Delay(engine_, params_.costs.fault_base_ns);

  for (int iteration = 0;; ++iteration) {
    ASVM_CHECK_MSG(iteration < 1000, "fault failed to converge");
    Classified c = Classify(map, addr, desired);
    switch (c.kind) {
      case Classified::Kind::kResolved: {
        if (desired == PageAccess::kWrite) {
          c.found->dirty = true;
        }
        done.Set(Status::kOk);
        co_return;
      }
      case Classified::Kind::kUnmapped: {
        done.Set(Status::kInvalidArgument);
        co_return;
      }
      case Classified::Kind::kCreateShadow: {
        auto shadow_holder = c.entry->object;
        auto fresh = CreateObject(shadow_holder->page_count(), CopyStrategy::kSymmetric);
        fresh->set_shadow(shadow_holder);
        c.entry->object = std::move(fresh);
        c.entry->needs_copy = false;
        if (stats_ != nullptr) {
          stats_->Add("vm.shadow_objects");
        }
        co_await Delay(engine_, params_.costs.map_op_ns);
        continue;
      }
      case Classified::Kind::kWaitPager: {
        Promise<Status> wake(engine_);
        c.target->AddWaiter(c.page, wake);
        Status s = co_await wake.GetFuture();
        if (!IsOk(s)) {
          done.Set(s);
          co_return;
        }
        continue;
      }
      case Classified::Kind::kNeedRequest: {
        c.target->SetOutstandingRequest(c.page, c.request_access);
        Promise<Status> wake(engine_);
        c.target->AddWaiter(c.page, wake);
        co_await Delay(engine_, params_.costs.pager_call_ns);
        c.target->pager()->DataRequest(*c.target, c.page, c.request_access);
        Status s = co_await wake.GetFuture();
        if (!IsOk(s)) {
          done.Set(s);
          co_return;
        }
        continue;
      }
      case Classified::Kind::kNeedUnlock: {
        c.target->SetOutstandingRequest(c.page, PageAccess::kWrite);
        Promise<Status> wake(engine_);
        c.target->AddWaiter(c.page, wake);
        co_await Delay(engine_, params_.costs.pager_call_ns);
        c.target->pager()->DataUnlock(*c.target, c.page, PageAccess::kWrite);
        Status s = co_await wake.GetFuture();
        if (!IsOk(s)) {
          done.Set(s);
          co_return;
        }
        continue;
      }
      case Classified::Kind::kNeedPagingSpace: {
        // Mark the request outstanding so concurrent faulters park instead of
        // issuing duplicate disk reads.
        c.target->SetOutstandingRequest(c.page, PageAccess::kRead);
        Promise<PageBuffer> read_done(engine_);
        default_pager_->ReadPage(c.target->serial(), c.page,
                                 [read_done](PageBuffer data) { read_done.Set(std::move(data)); });
        PageBuffer data = co_await read_done.GetFuture();
        c.target->ClearOutstandingRequest(c.page);
        // Clean: paging space still holds a copy until the page is redirtied.
        InstallPage(*c.target, c.page, std::move(data), PageAccess::kWrite, /*dirty=*/false);
        c.target->WakeWaiters(c.page, Status::kOk);
        continue;
      }
      case Classified::Kind::kZeroFill: {
        co_await Delay(engine_, params_.costs.zero_fill_ns);
        InstallPage(*c.target, c.page, AllocPage(params_.page_size), PageAccess::kWrite,
                    /*dirty=*/desired == PageAccess::kWrite);
        if (stats_ != nullptr) {
          stats_->Add("vm.zero_fills");
        }
        continue;
      }
      case Classified::Kind::kCowCopy: {
        // Pre-write contents must reach the copy chain before the write is
        // visible in the source (delayed-copy push rule).
        PageBuffer pre_write = c.found->data;
        bool pushed = PushToLocalCopy(*c.target, c.page, pre_write);
        InstallPage(*c.target, c.page, ClonePage(pre_write), PageAccess::kWrite,
                    /*dirty=*/true);
        if (stats_ != nullptr) {
          stats_->Add("vm.cow_copies");
        }
        co_await Delay(engine_, params_.costs.page_copy_ns * (pushed ? 2 : 1));
        continue;
      }
      case Classified::Kind::kNeedLocalPush: {
        VmPage* vp = c.target->FindResident(c.page);
        ASVM_CHECK(vp != nullptr);
        PushToLocalCopy(*c.target, c.page, vp->data);
        co_await Delay(engine_, params_.costs.page_copy_ns);
        continue;
      }
    }
  }
}

std::byte* NodeVm::TryAccess(VmMap& map, VmOffset addr, PageAccess desired) {
  Classified c = Classify(map, addr, desired);
  if (c.kind != Classified::Kind::kResolved) {
    return nullptr;
  }
  if (desired == PageAccess::kWrite) {
    c.found->dirty = true;
  }
  return c.found->data->data() + (addr % params_.page_size);
}

// --- EMMI kernel side --------------------------------------------------------

void NodeVm::DataSupply(VmObject& object, PageIndex page, PageBuffer data, PageAccess lock,
                        SupplyMode mode, bool dirty) {
  ASVM_CHECK(data != nullptr);
  if (mode == SupplyMode::kPushToCopy) {
    // ASVM extension: deliver the page down the copy chain instead of into
    // the object itself (remote side of a push operation, §3.7.2).
    VmObject* copy = object.copy().get();
    ASVM_CHECK_MSG(copy != nullptr, "push supply on object without a copy");
    if (!CopyHasPage(*copy, page)) {
      InstallPage(*copy, page, std::move(data), PageAccess::kWrite, /*dirty=*/true);
      if (stats_ != nullptr) {
        stats_->Add("vm.push_supplies");
      }
    }
    copy->WakeWaiters(page, Status::kOk);
    return;
  }
  InstallPage(object, page, std::move(data), lock, dirty);
  object.ClearOutstandingRequest(page);
  object.WakeWaiters(page, Status::kOk);
  if (stats_ != nullptr) {
    stats_->Add("vm.data_supplies");
  }
}

void NodeVm::DataUnavailable(VmObject& object, PageIndex page, PageAccess lock) {
  InstallPage(object, page, AllocPage(params_.page_size), lock, /*dirty=*/false);
  object.ClearOutstandingRequest(page);
  object.WakeWaiters(page, Status::kOk);
  if (stats_ != nullptr) {
    stats_->Add("vm.data_unavailable");
  }
}

void NodeVm::LockGranted(VmObject& object, PageIndex page, PageAccess new_lock) {
  VmPage* vp = object.FindResident(page);
  ASVM_CHECK_MSG(vp != nullptr, "lock granted on non-resident page");
  vp->lock = new_lock;
  object.ClearOutstandingRequest(page);
  object.WakeWaiters(page, Status::kOk);
}

void NodeVm::FaultFailed(VmObject& object, PageIndex page, Status status) {
  object.ClearOutstandingRequest(page);
  object.WakeWaiters(page, status);
}

void NodeVm::LockRequest(VmObject& object, PageIndex page, PageAccess new_lock, LockMode mode,
                         std::function<void(LockResult)> completed) {
  VmPage* vp = object.FindResident(page);
  if (vp == nullptr) {
    engine_.Schedule(params_.costs.pager_call_ns,
                     [completed = std::move(completed)]() { completed(LockResult::kNotResident); });
    return;
  }
  SimDuration cost = params_.costs.pager_call_ns;
  if (mode == LockMode::kPushAndLock || mode == LockMode::kPushAndFlush) {
    if (PushToLocalCopy(object, page, vp->data)) {
      cost += params_.costs.page_copy_ns;
    }
  }
  if (mode == LockMode::kFlush || mode == LockMode::kPushAndFlush) {
    RemovePage(object, page);
  } else {
    vp->lock = new_lock;
  }
  if (stats_ != nullptr) {
    stats_->Add("vm.lock_requests");
  }
  engine_.Schedule(cost, [completed = std::move(completed)]() { completed(LockResult::kDone); });
}

void NodeVm::PullRequest(VmObject& object, PageIndex page,
                         std::function<void(PullResult)> completed) {
  if (stats_ != nullptr) {
    stats_->Add("vm.pull_requests");
  }
  VmObject* cur = &object;
  while (cur != nullptr) {
    VmPage* vp = cur->FindResident(page);
    if (vp != nullptr) {
      PullResult r;
      r.kind = PullResult::Kind::kData;
      r.data = ClonePage(vp->data);
      engine_.Schedule(params_.costs.pager_call_ns,
                       [completed = std::move(completed), r]() { completed(r); });
      return;
    }
    if (cur->managed() && cur != &object) {
      // The chain continues behind another memory manager: the caller must
      // forward the request to it (paper §3.7.3, result 3).
      PullResult r;
      r.kind = PullResult::Kind::kAskShadow;
      r.shadow_object = cur->id();
      engine_.Schedule(params_.costs.pager_call_ns,
                       [completed = std::move(completed), r]() { completed(r); });
      return;
    }
    if (default_pager_ != nullptr && default_pager_->HasPage(cur->serial(), page)) {
      default_pager_->ReadPage(cur->serial(), page,
                               [completed = std::move(completed)](PageBuffer data) {
                                 PullResult r;
                                 r.kind = PullResult::Kind::kData;
                                 r.data = std::move(data);
                                 completed(r);
                               });
      return;
    }
    cur = cur->shadow().get();
  }
  PullResult r;
  r.kind = PullResult::Kind::kZeroFill;
  engine_.Schedule(params_.costs.pager_call_ns,
                   [completed = std::move(completed), r]() { completed(r); });
}

NodeVm::Extracted NodeVm::ExtractPage(VmObject& object, PageIndex page) {
  Extracted result;
  VmPage* vp = object.FindResident(page);
  if (vp == nullptr) {
    return result;
  }
  result.was_resident = true;
  result.data = vp->data;
  result.dirty = vp->dirty;
  RemovePage(object, page);
  return result;
}

// --- Physical memory ---------------------------------------------------------

VmPage& NodeVm::InstallPage(VmObject& object, PageIndex page, PageBuffer data, PageAccess lock,
                            bool dirty) {
  VmPage* existing = object.FindResident(page);
  if (existing == nullptr) {
    ASVM_CHECK_MSG(ReserveFrame(), "out of page frames and nothing evictable");
  }
  VmPage& vp = object.InsertPage(page, std::move(data), lock, dirty);
  vp.last_use = tick_++;
  evict_queue_.push_back(EvictRef{object.weak_from_this(), page, vp.last_use});
  return vp;
}

void NodeVm::RemovePage(VmObject& object, PageIndex page) {
  if (object.FindResident(page) == nullptr) {
    return;
  }
  object.DropPage(page);
  ReleaseFrame();
}

bool NodeVm::ReserveFrame() {
  while (frames_used_ >= params_.frame_capacity) {
    if (!IsOk(EvictOnePage())) {
      return false;
    }
  }
  ++frames_used_;
  return true;
}

void NodeVm::ReleaseFrame() {
  ASVM_CHECK(frames_used_ > 0);
  --frames_used_;
}

Status NodeVm::EvictOnePage() {
  // Bounded scan: wired pages rotate to the back; if everything resident is
  // wired (or stale) we report failure rather than spin.
  size_t budget = evict_queue_.size();
  while (budget-- > 0 && !evict_queue_.empty()) {
    EvictRef ref = std::move(evict_queue_.front());
    evict_queue_.pop_front();
    std::shared_ptr<VmObject> object = ref.object.lock();
    if (object == nullptr) {
      continue;
    }
    VmPage* vp = object->FindResident(ref.page);
    if (vp == nullptr || vp->last_use != ref.tick) {
      continue;  // stale entry: page already evicted or re-installed
    }
    if (vp->wire_count > 0) {
      evict_queue_.push_back(std::move(ref));
      continue;
    }

    PageBuffer data = vp->data;
    const bool dirty = vp->dirty;
    if (stats_ != nullptr) {
      stats_->Add("vm.pageouts");
    }
    if (object->managed()) {
      EvictAction action = object->pager()->OnEvict(*object, ref.page, data, dirty);
      (void)action;  // the pager has taken care of the contents either way
      RemovePage(*object, ref.page);
      return Status::kOk;
    }
    if (dirty) {
      ASVM_CHECK_MSG(default_pager_ != nullptr, "dirty anonymous page with no default pager");
      default_pager_->WritePage(object->serial(), ref.page, data);
    }
    RemovePage(*object, ref.page);
    return Status::kOk;
  }
  return Status::kNotFound;
}

void NodeVm::WirePage(VmObject& object, PageIndex page) {
  VmPage* vp = object.FindResident(page);
  ASVM_CHECK_MSG(vp != nullptr, "wiring non-resident page");
  ++vp->wire_count;
}

void NodeVm::UnwirePage(VmObject& object, PageIndex page) {
  VmPage* vp = object.FindResident(page);
  ASVM_CHECK_MSG(vp != nullptr && vp->wire_count > 0, "unwiring page that is not wired");
  --vp->wire_count;
}

void NodeVm::OnObjectDestroyed(size_t resident_pages) {
  ASVM_CHECK(frames_used_ >= resident_pages);
  frames_used_ -= resident_pages;
}

}  // namespace asvm
