#include "src/machvm/vm_object.h"

#include "src/common/log.h"
#include "src/machvm/node_vm.h"

namespace asvm {

VmObject::~VmObject() { vm_.OnObjectDestroyed(resident_.size()); }

VmPage* VmObject::FindResident(PageIndex page) {
  auto it = resident_.find(page);
  return it == resident_.end() ? nullptr : &it->second;
}

const VmPage* VmObject::FindResident(PageIndex page) const {
  auto it = resident_.find(page);
  return it == resident_.end() ? nullptr : &it->second;
}

VmPage& VmObject::InsertPage(PageIndex page, PageBuffer data, PageAccess lock, bool dirty) {
  ASVM_CHECK_MSG(page >= 0 && static_cast<VmSize>(page) < page_count_,
                 "page index out of object bounds");
  VmPage& vp = resident_[page];
  vp.data = std::move(data);
  vp.lock = lock;
  vp.dirty = dirty;
  vp.wire_count = 0;
  return vp;
}

void VmObject::DropPage(PageIndex page) { resident_.erase(page); }

PageAccess VmObject::OutstandingRequest(PageIndex page) const {
  auto it = outstanding_.find(page);
  return it == outstanding_.end() ? PageAccess::kNone : it->second;
}

void VmObject::SetOutstandingRequest(PageIndex page, PageAccess access) {
  outstanding_[page] = access;
}

void VmObject::ClearOutstandingRequest(PageIndex page) { outstanding_.erase(page); }

void VmObject::AddWaiter(PageIndex page, Promise<Status> waiter) {
  waiters_[page].push_back(std::move(waiter));
}

void VmObject::WakeWaiters(PageIndex page, Status status) {
  auto it = waiters_.find(page);
  if (it == waiters_.end()) {
    return;
  }
  std::vector<Promise<Status>> to_wake = std::move(it->second);
  waiters_.erase(it);
  for (auto& promise : to_wake) {
    promise.Set(status);
  }
}

}  // namespace asvm
