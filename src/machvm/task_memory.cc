#include "src/machvm/task_memory.h"

#include <cstring>

namespace asvm {

namespace {

// u64 accesses must not straddle a page boundary; workloads align data.
bool StraddlesPage(VmOffset addr, size_t width, size_t page_size) {
  return addr / page_size != (addr + width - 1) / page_size;
}

}  // namespace

Future<Status> TaskMemory::Touch(VmOffset addr, VmSize len, PageAccess desired) {
  Promise<Status> done(vm_.engine());
  // Fast path: every page already accessible.
  const size_t ps = map_.page_size();
  bool all_ok = true;
  for (VmOffset a = addr & ~(ps - 1); a < addr + len; a += ps) {
    if (vm_.TryAccess(map_, a, desired) == nullptr) {
      all_ok = false;
      break;
    }
  }
  if (all_ok || len == 0) {
    done.Set(Status::kOk);
  } else {
    (void)TouchTask(addr, len, desired, done);
  }
  return done.GetFuture();
}

Task TaskMemory::TouchTask(VmOffset addr, VmSize len, PageAccess desired,
                           Promise<Status> done) {
  const size_t ps = map_.page_size();
  for (VmOffset a = addr & ~(ps - 1); a < addr + len; a += ps) {
    if (vm_.TryAccess(map_, a, desired) != nullptr) {
      continue;
    }
    Status s = co_await vm_.Fault(map_, a, desired);
    if (!IsOk(s)) {
      done.Set(s);
      co_return;
    }
  }
  done.Set(Status::kOk);
}

Future<uint64_t> TaskMemory::ReadU64(VmOffset addr) {
  ASVM_CHECK(!StraddlesPage(addr, 8, map_.page_size()));
  Promise<uint64_t> done(vm_.engine());
  uint64_t value = 0;
  if (TryReadU64(addr, &value)) {
    done.Set(value);
  } else {
    (void)ReadU64Task(addr, done);
  }
  return done.GetFuture();
}

Task TaskMemory::ReadU64Task(VmOffset addr, Promise<uint64_t> done) {
  for (;;) {
    uint64_t value = 0;
    if (TryReadU64(addr, &value)) {
      done.Set(value);
      co_return;
    }
    Status s = co_await vm_.Fault(map_, addr, PageAccess::kRead);
    ASVM_CHECK_MSG(IsOk(s), "read fault failed");
  }
}

Future<Status> TaskMemory::WriteU64(VmOffset addr, uint64_t value) {
  ASVM_CHECK(!StraddlesPage(addr, 8, map_.page_size()));
  Promise<Status> done(vm_.engine());
  if (TryWriteU64(addr, value)) {
    done.Set(Status::kOk);
  } else {
    (void)WriteU64Task(addr, value, done);
  }
  return done.GetFuture();
}

Task TaskMemory::WriteU64Task(VmOffset addr, uint64_t value, Promise<Status> done) {
  for (;;) {
    if (TryWriteU64(addr, value)) {
      done.Set(Status::kOk);
      co_return;
    }
    Status s = co_await vm_.Fault(map_, addr, PageAccess::kWrite);
    if (!IsOk(s)) {
      done.Set(s);
      co_return;
    }
  }
}

bool TaskMemory::TryReadU64(VmOffset addr, uint64_t* out) {
  std::byte* p = vm_.TryAccess(map_, addr, PageAccess::kRead);
  if (p == nullptr) {
    return false;
  }
  std::memcpy(out, p, sizeof(*out));
  return true;
}

bool TaskMemory::TryWriteU64(VmOffset addr, uint64_t value) {
  std::byte* p = vm_.TryAccess(map_, addr, PageAccess::kWrite);
  if (p == nullptr) {
    return false;
  }
  std::memcpy(p, &value, sizeof(value));
  return true;
}

Future<Status> TaskMemory::ReadBytes(VmOffset addr, std::span<std::byte> out) {
  Promise<Status> done(vm_.engine());
  (void)ReadBytesTask(addr, out, done);
  return done.GetFuture();
}

Task TaskMemory::ReadBytesTask(VmOffset addr, std::span<std::byte> out, Promise<Status> done) {
  const size_t ps = map_.page_size();
  size_t copied = 0;
  while (copied < out.size()) {
    const VmOffset a = addr + copied;
    const size_t in_page = std::min(out.size() - copied, ps - (a % ps));
    std::byte* p = vm_.TryAccess(map_, a, PageAccess::kRead);
    if (p == nullptr) {
      Status s = co_await vm_.Fault(map_, a, PageAccess::kRead);
      if (!IsOk(s)) {
        done.Set(s);
        co_return;
      }
      continue;
    }
    std::memcpy(out.data() + copied, p, in_page);
    copied += in_page;
  }
  done.Set(Status::kOk);
}

Future<Status> TaskMemory::WriteBytes(VmOffset addr, std::span<const std::byte> in) {
  Promise<Status> done(vm_.engine());
  (void)WriteBytesTask(addr, in, done);
  return done.GetFuture();
}

Task TaskMemory::WriteBytesTask(VmOffset addr, std::span<const std::byte> in,
                                Promise<Status> done) {
  const size_t ps = map_.page_size();
  size_t copied = 0;
  while (copied < in.size()) {
    const VmOffset a = addr + copied;
    const size_t in_page = std::min(in.size() - copied, ps - (a % ps));
    std::byte* p = vm_.TryAccess(map_, a, PageAccess::kWrite);
    if (p == nullptr) {
      Status s = co_await vm_.Fault(map_, a, PageAccess::kWrite);
      if (!IsOk(s)) {
        done.Set(s);
        co_return;
      }
      continue;
    }
    std::memcpy(p, in.data() + copied, in_page);
    copied += in_page;
  }
  done.Set(Status::kOk);
}

}  // namespace asvm
