#include "src/machvm/vm_map.h"

namespace asvm {

Status VmMap::Map(VmOffset start_page, VmSize page_count, std::shared_ptr<VmObject> object,
                  VmOffset object_offset, Inheritance inheritance) {
  if (!object || page_count == 0) {
    return Status::kInvalidArgument;
  }
  // Overlap check against the entry at or after start_page and the one before.
  auto next = entries_.lower_bound(start_page);
  if (next != entries_.end() && next->first < start_page + page_count) {
    return Status::kAlreadyExists;
  }
  if (next != entries_.begin()) {
    auto prev = std::prev(next);
    if (prev->second.start_page + prev->second.page_count > start_page) {
      return Status::kAlreadyExists;
    }
  }
  VmMapEntry entry;
  entry.start_page = start_page;
  entry.page_count = page_count;
  entry.object = std::move(object);
  entry.object_offset = object_offset;
  entry.inheritance = inheritance;
  entries_[start_page] = std::move(entry);
  return Status::kOk;
}

Status VmMap::Unmap(VmOffset start_page) {
  return entries_.erase(start_page) > 0 ? Status::kOk : Status::kNotFound;
}

VmMapEntry* VmMap::LookupPage(VmOffset vpage) {
  auto it = entries_.upper_bound(vpage);
  if (it == entries_.begin()) {
    return nullptr;
  }
  --it;
  VmMapEntry& entry = it->second;
  if (vpage >= entry.start_page && vpage < entry.start_page + entry.page_count) {
    return &entry;
  }
  return nullptr;
}

const VmMapEntry* VmMap::LookupPage(VmOffset vpage) const {
  return const_cast<VmMap*>(this)->LookupPage(vpage);
}

VmMap::Resolution VmMap::Resolve(VmOffset addr) {
  Resolution r;
  const VmOffset vpage = addr / page_size_;
  r.entry = LookupPage(vpage);
  if (r.entry != nullptr) {
    r.object_page =
        static_cast<PageIndex>(vpage - r.entry->start_page + r.entry->object_offset);
  }
  return r;
}

}  // namespace asvm
