// Simulated disk drive: operations serialize on the spindle; an operation
// that continues sequentially from the previous one skips the positioning
// cost (modeling track buffers / read-ahead on UFS-style sequential access).
#ifndef SRC_MACHVM_DISK_H_
#define SRC_MACHVM_DISK_H_

#include <cstdint>
#include <functional>

#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/sim/engine.h"

namespace asvm {

struct DiskParams {
  SimDuration seek_ns = 22 * kMillisecond;  // average positioning (seek + rotation)
  double bandwidth_bytes_per_ns = 0.003;    // 3 MB/s media rate (early-90s SCSI)
};

class Disk {
 public:
  Disk(Engine& engine, DiskParams params, StatsRegistry* stats)
      : engine_(engine), params_(params), stats_(stats) {}

  // `position` identifies the block being accessed (file id << 32 | page);
  // an access at last_position+1 is sequential. `done` runs when the
  // operation completes.
  void Read(int64_t position, size_t bytes, EventFn done);
  void Write(int64_t position, size_t bytes, EventFn done);

  int64_t reads() const { return reads_; }
  int64_t writes() const { return writes_; }

  // Attaches the machine-wide trace sink (not owned); `node` labels which node
  // this spindle serves in the trace (the I/O group leader or pager node).
  void set_trace(TraceSink* sink, NodeId node) {
    trace_ = sink;
    trace_node_ = node;
  }

 private:
  void Access(int64_t position, size_t bytes, EventFn done);
  void TraceOp(TraceKind kind, int64_t position, size_t bytes);

  Engine& engine_;
  DiskParams params_;
  StatsRegistry* stats_;
  TraceSink* trace_ = nullptr;
  NodeId trace_node_ = kInvalidNode;
  SimTime busy_until_ = 0;
  int64_t last_position_ = -100;  // far from any first access
  int64_t reads_ = 0;
  int64_t writes_ = 0;
};

}  // namespace asvm

#endif  // SRC_MACHVM_DISK_H_
