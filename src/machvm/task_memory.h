// Task-facing memory access API: loads and stores against a VmMap, faulting
// transparently. Non-faulting accesses take a synchronous fast path with no
// simulated cost, so compute-heavy workloads only pay for real VM activity.
#ifndef SRC_MACHVM_TASK_MEMORY_H_
#define SRC_MACHVM_TASK_MEMORY_H_

#include <cstdint>
#include <span>

#include "src/common/status.h"
#include "src/machvm/node_vm.h"
#include "src/sim/future.h"
#include "src/sim/task.h"

namespace asvm {

class TaskMemory {
 public:
  TaskMemory(NodeVm& vm, VmMap& map) : vm_(vm), map_(map) {}

  NodeVm& vm() { return vm_; }
  VmMap& map() { return map_; }

  // Ensures the byte range [addr, addr+len) is accessible with the desired
  // access, faulting page by page as needed.
  Future<Status> Touch(VmOffset addr, VmSize len, PageAccess desired);

  // Typed accessors. Each faults if needed and then performs the access; the
  // future is immediately ready when no fault was necessary.
  Future<uint64_t> ReadU64(VmOffset addr);
  Future<Status> WriteU64(VmOffset addr, uint64_t value);

  // Bulk transfers (may span pages).
  Future<Status> ReadBytes(VmOffset addr, std::span<std::byte> out);
  Future<Status> WriteBytes(VmOffset addr, std::span<const std::byte> in);

  // Synchronous variants: succeed only when no fault is needed.
  bool TryReadU64(VmOffset addr, uint64_t* out);
  bool TryWriteU64(VmOffset addr, uint64_t value);

 private:
  Task TouchTask(VmOffset addr, VmSize len, PageAccess desired, Promise<Status> done);
  Task ReadU64Task(VmOffset addr, Promise<uint64_t> done);
  Task WriteU64Task(VmOffset addr, uint64_t value, Promise<Status> done);
  Task ReadBytesTask(VmOffset addr, std::span<std::byte> out, Promise<Status> done);
  Task WriteBytesTask(VmOffset addr, std::span<const std::byte> in, Promise<Status> done);

  NodeVm& vm_;
  VmMap& map_;
};

}  // namespace asvm

#endif  // SRC_MACHVM_TASK_MEMORY_H_
