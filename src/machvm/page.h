// Page frames and page buffers. A PageBuffer owns the actual bytes of a
// simulated physical page; VmPage is the kernel's bookkeeping for one resident
// page of a VM object.
#ifndef SRC_MACHVM_PAGE_H_
#define SRC_MACHVM_PAGE_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/transport/message.h"  // PageBuffer

namespace asvm {

inline PageBuffer AllocPage(size_t page_size) {
  return std::make_shared<std::vector<std::byte>>(page_size);
}

// Deep copy used when page contents leave the node (message payloads, disk),
// so later local writes cannot alias data already "on the wire".
inline PageBuffer ClonePage(const PageBuffer& src) {
  return src ? std::make_shared<std::vector<std::byte>>(*src) : nullptr;
}

inline bool PageIsZero(const PageBuffer& page) {
  if (!page) {
    return true;
  }
  for (std::byte b : *page) {
    if (b != std::byte{0}) {
      return false;
    }
  }
  return true;
}

// One resident page of a VM object on one node.
struct VmPage {
  PageBuffer data;

  // Highest access the object's memory manager has granted the kernel for
  // this page (kRead or kWrite). Unmanaged objects always hold kWrite.
  PageAccess lock = PageAccess::kWrite;

  // Set when the page has been modified since it was supplied/cleaned.
  bool dirty = false;

  // Pages wired by an in-progress protocol operation are skipped by pageout.
  int wire_count = 0;

  // Monotonic per-node tick of the last fault/supply touching this page;
  // pageout evicts in ascending order (approximate LRU).
  uint64_t last_use = 0;
};

}  // namespace asvm

#endif  // SRC_MACHVM_PAGE_H_
