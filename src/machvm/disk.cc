#include "src/machvm/disk.h"

#include <algorithm>
#include <cmath>

namespace asvm {

void Disk::Read(int64_t position, size_t bytes, EventFn done) {
  ++reads_;
  if (stats_ != nullptr) {
    stats_->Add("disk.reads");
    stats_->Add("disk.bytes_read", static_cast<int64_t>(bytes));
  }
  TraceOp(TraceKind::kDiskRead, position, bytes);
  Access(position, bytes, std::move(done));
}

void Disk::Write(int64_t position, size_t bytes, EventFn done) {
  ++writes_;
  if (stats_ != nullptr) {
    stats_->Add("disk.writes");
    stats_->Add("disk.bytes_written", static_cast<int64_t>(bytes));
  }
  TraceOp(TraceKind::kDiskWrite, position, bytes);
  Access(position, bytes, std::move(done));
}

void Disk::TraceOp(TraceKind kind, int64_t position, size_t bytes) {
  if (trace_ == nullptr || !trace_->armed()) {
    return;
  }
  TraceEvent e;
  e.time = engine_.Now();
  e.node = trace_node_;
  e.protocol = TraceProtocol::kDisk;
  e.kind = kind;
  // position packs (file id << 32 | page); the low half is the page index.
  e.page = position & 0xffffffff;
  e.aux = static_cast<int64_t>(bytes);
  trace_->Emit(e);
}

void Disk::Access(int64_t position, size_t bytes, EventFn done) {
  const bool sequential = position == last_position_ + 1;
  last_position_ = position;
  const SimDuration transfer = static_cast<SimDuration>(
      std::llround(static_cast<double>(bytes) / params_.bandwidth_bytes_per_ns));
  const SimDuration op = (sequential ? 0 : params_.seek_ns) + transfer;
  const SimTime now = engine_.Now();
  const SimTime complete = std::max(now, busy_until_) + op;
  busy_until_ = complete;
  engine_.Schedule(complete - now, std::move(done));
}

}  // namespace asvm
