// EMMI — the External Memory Management Interface between the kernel's VM
// system and memory managers (pagers), including the five extensions the
// paper adds for ASVM's delayed-copy management (§3.7.1):
//
//   * memory_object_lock_request gains a "mode" argument to push the page
//     down the VM-internal copy chain before the lock executes;
//   * memory_object_lock_completed gains a "result" indicating the page was
//     not present so no push could run;
//   * memory_object_data_supply gains a "mode" to push a page down the copy
//     chain instead of supplying the source object;
//   * memory_object_pull_request / _completed retrieve a page through the
//     VM-internal shadow chain, reporting zero-fill / data / ask-shadow.
//
// The kernel side of EMMI is implemented by NodeVm; the pager side by the
// Pager interface in pager.h.
#ifndef SRC_MACHVM_EMMI_H_
#define SRC_MACHVM_EMMI_H_

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/transport/message.h"

namespace asvm {

// data_supply mode.
enum class SupplyMode {
  kNormal,      // supply the page to the object itself
  kPushToCopy,  // push the page down the object's copy chain (ASVM extension)
};

// lock_request mode.
enum class LockMode {
  kDowngrade,     // reduce the kernel's lock to the given access (no push)
  kFlush,         // remove the page from the cache entirely
  kPushAndLock,   // push down the copy chain first, then apply the lock
  kPushAndFlush,  // push down the copy chain, then invalidate in the source
};

// lock_completed result (ASVM extension).
enum class LockResult {
  kDone,         // lock (and push, if requested) executed
  kNotResident,  // page was not in the VM cache; push could not run
};

// pull_completed result (ASVM extension, §3.7.1): outcome of traversing the
// local shadow chain.
struct PullResult {
  enum class Kind {
    kZeroFill,   // page does not exist anywhere in the chain
    kData,       // found; contents attached
    kAskShadow,  // chain ends at a managed object; ask its memory manager
  };
  Kind kind = Kind::kZeroFill;
  PageBuffer data;           // kData
  MemObjectId shadow_object;  // kAskShadow: the managed shadow's identity
};

// Outcome of the pageout hook a managed object's pager receives when the VM
// evicts one of the object's pages.
enum class EvictAction {
  kDiscard,  // drop the page; it is recoverable elsewhere
  kTaken,    // the pager took responsibility for the contents
};

}  // namespace asvm

#endif  // SRC_MACHVM_EMMI_H_
