// The file pager: a user-level pager task on an I/O node that backs memory
// mapped files with a disk (paper §4.2 — the UFS mapped filesystem). The
// pager's CPU processes one request at a time, which bounds the combined
// transfer rate all nodes can extract from one file — exactly the limit
// Table 2 measures.
#ifndef SRC_MACHVM_FILE_PAGER_H_
#define SRC_MACHVM_FILE_PAGER_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/machvm/disk.h"
#include "src/machvm/page.h"
#include "src/sim/engine.h"

namespace asvm {

struct FilePagerParams {
  // CPU cost of handling one page request in the user-level pager.
  SimDuration request_cpu_ns = 600 * kMicrosecond;
  // Page-in clustering (the paper's §6: "a clustering of page-out and page-in
  // requests has to be implemented ... to achieve adequate bandwidths"): a
  // disk read also stages this many following pages, so a sequential scan
  // pays one positioning per cluster. 0 disables (the measured-paper default).
  int readahead_pages = 0;
};

class FilePager {
 public:
  FilePager(Engine& engine, NodeId io_node, Disk* disk, FilePagerParams params,
            StatsRegistry* stats)
      : engine_(engine), io_node_(io_node), disk_(disk), params_(params), stats_(stats) {}

  NodeId node() const { return io_node_; }

  // Creates a file of `pages` pages. If `prefilled`, the file already has
  // contents on disk (deterministic per (file,page), see FillPattern).
  int32_t CreateFile(const std::string& name, VmSize pages, bool prefilled);

  VmSize FilePages(int32_t file_id) const;

  // True when the page has real contents (prefilled or previously written);
  // false means it is fresh and reads as zeros without touching the disk.
  bool HasData(int32_t file_id, PageIndex page) const;

  // Serves a page: pager CPU + disk read when the data lives on disk.
  void ReadPage(int32_t file_id, PageIndex page, size_t page_size,
                std::function<void(PageBuffer)> done);

  // Accepts a written page (pager CPU; disk write proceeds asynchronously —
  // "asynchronous writes" per §4.2).
  void WritePage(int32_t file_id, PageIndex page, PageBuffer data,
                 std::function<void()> done);

  // Grants a fresh (zero-fill) page: pager CPU only, no disk.
  void GrantFresh(int32_t file_id, PageIndex page, std::function<void()> done);

  // Deterministic contents of a prefilled page, for integrity checks.
  static void FillPattern(int32_t file_id, PageIndex page, std::vector<std::byte>& out);

 private:
  struct File {
    std::string name;
    VmSize pages = 0;
    bool prefilled = false;
    std::unordered_map<PageIndex, PageBuffer> written;
    // Pages staged in the pager's buffer by read-ahead; served without disk.
    std::unordered_map<PageIndex, bool> staged;
  };

  // Serializes `fn` through the pager's single CPU with the per-request cost.
  void Process(std::function<void()> fn);

  int64_t DiskPosition(int32_t file_id, PageIndex page) const {
    return (static_cast<int64_t>(file_id) << 32) | page;
  }

  Engine& engine_;
  NodeId io_node_;
  Disk* disk_;
  FilePagerParams params_;
  StatsRegistry* stats_;
  SimTime cpu_busy_until_ = 0;
  std::vector<File> files_;
};

}  // namespace asvm

#endif  // SRC_MACHVM_FILE_PAGER_H_
