#include "src/machvm/default_pager.h"

#include "src/common/log.h"

namespace asvm {

bool DefaultPager::HasPage(uint64_t object_serial, PageIndex page) const {
  auto it = store_.find(object_serial);
  if (it == store_.end()) {
    return false;
  }
  return it->second.find(page) != it->second.end();
}

void DefaultPager::ReadPage(uint64_t object_serial, PageIndex page,
                            std::function<void(PageBuffer)> done) {
  auto it = store_.find(object_serial);
  ASVM_CHECK_MSG(it != store_.end() && it->second.count(page) != 0,
                 "default pager read of page not in paging space");
  PageBuffer data = ClonePage(it->second[page]);
  if (stats_ != nullptr) {
    stats_->Add("default_pager.pageins");
  }
  ASVM_CHECK_MSG(disk_ != nullptr, "paging without a paging disk");
  disk_->Read(PositionKey(object_serial, page), data->size(),
              [data, done = std::move(done)]() { done(data); });
}

void DefaultPager::WritePage(uint64_t object_serial, PageIndex page, PageBuffer data,
                             std::function<void()> done) {
  ASVM_CHECK_MSG(disk_ != nullptr, "paging without a paging disk");
  ASVM_CHECK(data != nullptr);
  auto& slot = store_[object_serial][page];
  if (!slot) {
    ++count_;
  }
  slot = ClonePage(data);
  if (stats_ != nullptr) {
    stats_->Add("default_pager.pageouts");
  }
  const size_t bytes = data->size();
  disk_->Write(PositionKey(object_serial, page), bytes, [done = std::move(done)]() {
    if (done) {
      done();
    }
  });
}

void DefaultPager::Drop(uint64_t object_serial, PageIndex page) {
  auto it = store_.find(object_serial);
  if (it == store_.end()) {
    return;
  }
  if (it->second.erase(page) > 0) {
    --count_;
  }
}

}  // namespace asvm
