// Task address maps: ranges of virtual pages mapped to VM objects, with
// per-entry inheritance and the symmetric-copy needs_copy flag.
#ifndef SRC_MACHVM_VM_MAP_H_
#define SRC_MACHVM_VM_MAP_H_

#include <map>
#include <memory>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/machvm/vm_object.h"

namespace asvm {

// What a child task receives for this range on fork (Mach VM_INHERIT_*).
enum class Inheritance {
  kShare,  // child shares the same object
  kCopy,   // child receives a delayed copy
  kNone,   // range absent in the child
};

struct VmMapEntry {
  VmOffset start_page = 0;  // first virtual page of the range
  VmSize page_count = 0;
  std::shared_ptr<VmObject> object;
  VmOffset object_offset = 0;  // object page corresponding to start_page
  Inheritance inheritance = Inheritance::kCopy;
  // Symmetric copy strategy: true when the entry references a frozen object
  // that must be shadowed before the first write through this entry.
  bool needs_copy = false;
};

class VmMap {
 public:
  explicit VmMap(size_t page_size) : page_size_(page_size) {}

  size_t page_size() const { return page_size_; }

  // Maps `page_count` pages of `object` (starting at object_offset) at
  // virtual page `start_page`. Fails on overlap.
  Status Map(VmOffset start_page, VmSize page_count, std::shared_ptr<VmObject> object,
             VmOffset object_offset, Inheritance inheritance);

  Status Unmap(VmOffset start_page);

  // Entry containing the virtual page, or nullptr.
  VmMapEntry* LookupPage(VmOffset vpage);
  const VmMapEntry* LookupPage(VmOffset vpage) const;

  VmMapEntry* LookupAddr(VmOffset addr) { return LookupPage(addr / page_size_); }

  // Translates a virtual address to (entry, object page index). Returns
  // nullptr entry when unmapped.
  struct Resolution {
    VmMapEntry* entry = nullptr;
    PageIndex object_page = kInvalidPage;
  };
  Resolution Resolve(VmOffset addr);

  std::map<VmOffset, VmMapEntry>& entries() { return entries_; }
  const std::map<VmOffset, VmMapEntry>& entries() const { return entries_; }

 private:
  size_t page_size_;
  std::map<VmOffset, VmMapEntry> entries_;  // keyed by start_page
};

}  // namespace asvm

#endif  // SRC_MACHVM_VM_MAP_H_
