#include "src/machvm/file_pager.h"

#include <algorithm>

#include "src/common/log.h"

namespace asvm {

int32_t FilePager::CreateFile(const std::string& name, VmSize pages, bool prefilled) {
  File file;
  file.name = name;
  file.pages = pages;
  file.prefilled = prefilled;
  files_.push_back(std::move(file));
  return static_cast<int32_t>(files_.size() - 1);
}

VmSize FilePager::FilePages(int32_t file_id) const {
  ASVM_CHECK(file_id >= 0 && static_cast<size_t>(file_id) < files_.size());
  return files_[file_id].pages;
}

bool FilePager::HasData(int32_t file_id, PageIndex page) const {
  ASVM_CHECK(file_id >= 0 && static_cast<size_t>(file_id) < files_.size());
  const File& file = files_[file_id];
  return file.prefilled || file.written.count(page) != 0;
}

void FilePager::Process(std::function<void()> fn) {
  const SimTime now = engine_.Now();
  const SimTime start = std::max(now, cpu_busy_until_) + params_.request_cpu_ns;
  cpu_busy_until_ = start;
  engine_.Schedule(start - now, std::move(fn));
}

void FilePager::ReadPage(int32_t file_id, PageIndex page, size_t page_size,
                         std::function<void(PageBuffer)> done) {
  ASVM_CHECK(file_id >= 0 && static_cast<size_t>(file_id) < files_.size());
  if (stats_ != nullptr) {
    stats_->Add("file_pager.reads");
  }
  Process([this, file_id, page, page_size, done = std::move(done)]() mutable {
    File& file = files_[file_id];
    auto it = file.written.find(page);
    if (it != file.written.end()) {
      // Recently written data still buffered in the pager.
      done(ClonePage(it->second));
      return;
    }
    if (!file.prefilled) {
      done(AllocPage(page_size));
      return;
    }
    if (file.staged.count(page) != 0) {
      // Read-ahead already brought this page into the pager's buffer.
      file.staged.erase(page);
      if (stats_ != nullptr) {
        stats_->Add("file_pager.readahead_hits");
      }
      auto data = AllocPage(page_size);
      FillPattern(file_id, page, *data);
      done(std::move(data));
      return;
    }
    ASVM_CHECK_MSG(disk_ != nullptr, "file pager without a disk");
    // §6 clustering: one disk operation covers this page plus the read-ahead
    // window — a sequential scan pays one positioning per cluster.
    const int ahead =
        std::min<int64_t>(params_.readahead_pages,
                          static_cast<int64_t>(file.pages) - static_cast<int64_t>(page) - 1);
    const size_t cluster_bytes = page_size * static_cast<size_t>(1 + std::max(0, ahead));
    for (int i = 1; i <= ahead; ++i) {
      file.staged[page + i] = true;
    }
    // Keyed by the cluster's last page so back-to-back clusters of a scan are
    // sequential on the spindle.
    disk_->Read(DiskPosition(file_id, page + std::max(0, ahead)), cluster_bytes,
                [file_id, page, page_size, done = std::move(done)]() {
                  auto data = AllocPage(page_size);
                  FillPattern(file_id, page, *data);
                  done(std::move(data));
                });
  });
}

void FilePager::WritePage(int32_t file_id, PageIndex page, PageBuffer data,
                          std::function<void()> done) {
  ASVM_CHECK(file_id >= 0 && static_cast<size_t>(file_id) < files_.size());
  ASVM_CHECK(data != nullptr);
  if (stats_ != nullptr) {
    stats_->Add("file_pager.writes");
  }
  const size_t bytes = data->size();
  Process([this, file_id, page, bytes, data = std::move(data), done = std::move(done)]() {
    files_[file_id].written[page] = ClonePage(data);
    if (disk_ != nullptr) {
      // Asynchronous write-behind: completion is not awaited by anyone.
      disk_->Write(DiskPosition(file_id, page), bytes, []() {});
    }
    if (done) {
      done();
    }
  });
}

void FilePager::GrantFresh(int32_t file_id, PageIndex page, std::function<void()> done) {
  (void)page;
  ASVM_CHECK(file_id >= 0 && static_cast<size_t>(file_id) < files_.size());
  if (stats_ != nullptr) {
    stats_->Add("file_pager.fresh_grants");
  }
  Process([done = std::move(done)]() {
    if (done) {
      done();
    }
  });
}

void FilePager::FillPattern(int32_t file_id, PageIndex page, std::vector<std::byte>& out) {
  uint64_t x = (static_cast<uint64_t>(static_cast<uint32_t>(file_id)) << 32) ^
               static_cast<uint64_t>(page) ^ 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < out.size(); ++i) {
    // splitmix64 step per 8 bytes keeps this cheap and deterministic.
    if (i % 8 == 0) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      x = z ^ (z >> 31);
    }
    out[i] = static_cast<std::byte>((x >> ((i % 8) * 8)) & 0xff);
  }
}

}  // namespace asvm
