// IVY-style dynamic distributed manager messages, carried over NORMA-IPC.
// There is no fixed manager: a fault chases per-node probable-owner hints
// hop by hop until it lands on the page's true owner (Li & Hudak's dynamic
// distributed manager). Ownership migrates on write grants, the owner keeps
// the page's copyset, and every hop/grant/invalidation compresses the hint
// chains it touches.
#ifndef SRC_IVY_IVY_MESSAGES_H_
#define SRC_IVY_IVY_MESSAGES_H_

#include <cstdint>
#include <variant>
#include <vector>

#include "src/common/types.h"

namespace asvm {

enum class IvyMsgType : uint32_t {
  kRequest = 1,     // requester -> probable owner (forwarded hop by hop)
  kReply,           // true owner -> requester: grant (+ ownership on writes)
  kInvalidate,      // owner -> copyset member: drop the read copy
  kInvalidateAck,   // copyset member -> owner
  kWriteback,       // owner -> home: dirty file-backed page contents
  kCopyFault,       // remote child -> internal copy pager on the fork source
  kCopyFaultReply,
  kShadowUpdate,    // owner -> backup: replicated page contents (failover)
  kShadowManifest,  // owner -> witness: "this page was committed" (no data)
};

struct IvyRequest {
  MemObjectId object;
  PageIndex page = kInvalidPage;
  PageAccess access = PageAccess::kRead;
  NodeId origin = kInvalidNode;
  bool has_copy = false;  // origin already holds a read copy (upgrade)
  // Pending-op id armed at the origin; also the dedup key at the owner, so a
  // retry that raced the original along a different hint chain is dropped
  // instead of served twice (0 = local fault, never on the wire).
  uint64_t op_id = 0;
  // Forwarding hops taken so far; the owner observes the final count into the
  // dsm.ivy.chain_length histogram and the breakdown's forward segment.
  int32_t hops = 0;
};

struct IvyReply {
  MemObjectId object;
  PageIndex page = kInvalidPage;
  PageAccess granted = PageAccess::kNone;
  bool zero_fill = false;
  bool upgrade = false;
  // Write grants carry ownership: the origin becomes the page's owner (and
  // the copyset is empty — the old owner invalidated it first).
  bool ownership = false;
  // The page's owner after this exchange; the origin aims its probable-owner
  // hint here (path compression on every grant).
  NodeId owner = kInvalidNode;
  uint64_t op_id = 0;  // echo of IvyRequest::op_id
  // The page was provably committed but every replica died with its owner
  // before a reclaim could harvest it: the fault fails Status::kDataLost.
  bool lost = false;
};

struct IvyInvalidate {
  MemObjectId object;
  PageIndex page = kInvalidPage;
  // Where ownership is about to land; invalidated readers re-aim their hints
  // here, so the old chain through the ex-owner collapses to one hop.
  NodeId new_owner = kInvalidNode;
  uint64_t op_id = 0;  // invalidation round id at the owner (ack echoes it)
};

// Owner -> home on dirty eviction of a file-backed page (the file pager's
// backing store lives at the home node); also the body for the two shadow
// message types — kShadowUpdate rides with the page contents attached,
// kShadowManifest is control-only, exactly as in the XMM backend.
struct IvyWriteback {
  MemObjectId object;
  PageIndex page = kInvalidPage;
  bool dirty = false;
};

// Fork support mirrors the Mach-style internal copy pager XMM uses (IVY
// itself never defined lazy-copy semantics, so both backends share the host
// kernel's): a remote child's copy fault blocks a pager thread on the source.
struct IvyCopyFault {
  MemObjectId object;  // the internal-pager object
  PageIndex page = kInvalidPage;
  NodeId origin = kInvalidNode;
  // Nodes whose copy-pager threads are blocked on this request chain (cycle
  // detection across nested forks).
  std::vector<NodeId> path;
};

struct IvyCopyFaultReply {
  MemObjectId object;
  PageIndex page = kInvalidPage;
  bool zero_fill = false;
  bool deadlock = false;
};

// Typed envelope body for the IVY protocol; IvyInvalidate serves both the
// invalidation and its ack, IvyWriteback both shadow directions — the type
// tag disambiguates, as on the real wire.
using IvyBody = std::variant<IvyRequest, IvyReply, IvyInvalidate, IvyWriteback, IvyCopyFault,
                             IvyCopyFaultReply>;

// Stats/debug label per message type; exhaustive under -Werror=switch.
constexpr const char* MsgTypeName(IvyMsgType type) {
  switch (type) {
    case IvyMsgType::kRequest:
      return "request";
    case IvyMsgType::kReply:
      return "reply";
    case IvyMsgType::kInvalidate:
      return "invalidate";
    case IvyMsgType::kInvalidateAck:
      return "invalidate_ack";
    case IvyMsgType::kWriteback:
      return "writeback";
    case IvyMsgType::kCopyFault:
      return "copy_fault";
    case IvyMsgType::kCopyFaultReply:
      return "copy_fault_reply";
    case IvyMsgType::kShadowUpdate:
      return "shadow_update";
    case IvyMsgType::kShadowManifest:
      return "shadow_manifest";
  }
  return "unknown";
}

}  // namespace asvm

#endif  // SRC_IVY_IVY_MESSAGES_H_
