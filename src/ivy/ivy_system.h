// IVY-style dynamic distributed manager (Li & Hudak), the third DSM backend:
// no fixed manager — each page has exactly one owner, found by chasing
// per-node probable-owner hints hop by hop. Ownership migrates to the
// requester on write grants, the owner keeps the page's copyset and
// invalidates it before granting write access, and every hop, grant, and
// invalidation compresses the hint chains it touches.
#ifndef SRC_IVY_IVY_SYSTEM_H_
#define SRC_IVY_IVY_SYSTEM_H_

#include <memory>
#include <set>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/dsm/backing.h"
#include "src/dsm/cluster.h"
#include "src/dsm/dsm_system.h"
#include "src/ivy/ivy_messages.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace asvm {

class IvyAgent;

struct IvyConfig {
  // Kernel threads available per node for internal copy pagers (forks share
  // the Mach-style internal pager with XMM — see ivy_messages.h).
  int copy_pager_threads = 16;
  // Owner-side per-request processing, serialized on the owner's CPU.
  SimDuration stack_process_ns = 1300 * kMicrosecond;
  // Per-hop cost of relaying a request along the probable-owner chain — the
  // price IVY pays instead of a fixed manager hop.
  SimDuration forward_process_ns = 400 * kMicrosecond;
  // Supplying page contents out of the owner's protocol-level copy.
  SimDuration pager_supply_ns = 5000 * kMicrosecond;
  // Zero-fill grant for a never-written page: no contents move.
  SimDuration pager_fresh_ns = 1200 * kMicrosecond;
};

// Directory record. Unlike XMM there is no manager field to consult on the
// fault path — ownership is found by chasing hints — but the record anchors
// the hint chains (home = initial owner of every page) and holds the backing
// store that lives at the home node.
struct IvyObjectInfo {
  MemObjectId id;
  VmSize pages = 0;
  NodeId home = kInvalidNode;  // initial owner; fallback when a hint is cut
  std::unique_ptr<ObjectBacking> backing;  // null for copy-pager objects
  bool file_backed = false;
  // Copy-pager objects: where the internal pager (and the frozen local copy
  // of the source address space) lives.
  NodeId copy_pager_node = kInvalidNode;
  // Bumped on every reclaim of a dead owner's page (audit trail for traces).
  uint64_t epoch = 0;
  bool IsCopyObject() const { return copy_pager_node != kInvalidNode; }
};

class IvySystem : public DsmSystem {
 public:
  IvySystem(Cluster& cluster, IvyConfig config = {});
  ~IvySystem() override;

  std::string_view name() const override { return "ivy"; }

  MemObjectId CreateSharedRegion(NodeId home, VmSize pages) override;
  MemObjectId CreateFileRegion(int32_t file_id, VmSize pages) override;
  MemObjectId CreateStripedRegion(const std::vector<StripedBacking::Stripe>& stripes,
                                  VmSize pages) override;
  std::shared_ptr<VmObject> Attach(NodeId node, const MemObjectId& id) override;
  Future<VmMap*> RemoteFork(NodeId src, VmMap& parent, NodeId dst) override;
  size_t MetadataBytes(NodeId node) const override;

  // --- Failover (DESIGN.md §15) ---------------------------------------------

  // Reclaims (id, page) for `requester` if its owner is confirmed removed and
  // the ownership lease has expired: harvests the newest surviving copy
  // (shadow store first, then any alive read copy), rebuilds the copyset from
  // surviving kernels, and marks witnessed-but-unrecoverable pages lost.
  // When an alive owner exists the requester's hint is aimed straight at it
  // instead (the chain walk found a corpse, not a dead owner). Idempotent;
  // must run as a cluster mutation (every engine quiescent).
  void ReclaimIfOwnerDead(const MemObjectId& id, PageIndex page, NodeId requester);

  // Gossip death notification: fans the death out to every surviving agent,
  // which cuts every probable-owner hint aimed at the corpse, re-targets any
  // shadow stream feeding it, and fails its pending ops against it.
  void ReportDeath(NodeId reporter, NodeId dead) override;

  // Rejoin after FaultPlan::NodeRemoval::restore_at: resident pages, shadow
  // state, and hints are gone; pages the node still owns are re-seeded from
  // surviving replicas (or marked lost) exactly like a reclaim.
  void ColdRestart(NodeId node) override;

  Cluster& cluster() override { return cluster_; }
  const IvyConfig& config() const { return config_; }
  IvyAgent& agent(NodeId node) { return *agents_.at(node); }

  IvyObjectInfo& info(const MemObjectId& id);
  MemObjectId NewObjectId(NodeId origin) { return MemObjectId{origin, next_seq_++}; }

 private:
  Task RemoteForkTask(NodeId src, VmMap& parent, NodeId dst, Promise<VmMap*> done);
  VmMap* ApplyRemoteFork(NodeId src, VmMap& parent, NodeId dst);

  // Applies one gossiped death at a barrier: dedup, then survivor fan-out.
  void ApplyDeathNotice(NodeId dead);

  // Seeds (or repairs, after a cold restart) an owner's protocol-level copy
  // of `page` from the newest surviving replica; returns false when the page
  // was provably committed but no replica survived (caller marks it lost).
  bool HarvestNewestCopy(const MemObjectId& id, PageIndex page, NodeId new_owner);

  // Keys for anonymous backing in the home's paging space; a distinct high
  // bit keeps them disjoint from local VM serials and ASVM/XMM keys.
  uint64_t NextIvyBackingKey() { return (1ULL << 61) | next_backing_key_++; }

  Cluster& cluster_;
  IvyConfig config_;
  std::vector<std::unique_ptr<IvyAgent>> agents_;
  std::unordered_map<MemObjectId, std::unique_ptr<IvyObjectInfo>> directory_;
  uint32_t next_seq_ = 1;
  // Per-system so identical machines allocate identical paging-space
  // positions — traces must be byte-stable run to run.
  uint64_t next_backing_key_ = 0;
  // Nodes whose death has already been gossiped (first notice wins).
  std::set<NodeId> death_noticed_;
};

}  // namespace asvm

#endif  // SRC_IVY_IVY_SYSTEM_H_
