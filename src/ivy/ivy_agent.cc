#include "src/ivy/ivy_agent.h"

#include <algorithm>
#include <utility>

#include "src/common/log.h"
#include "src/dsm/failover.h"
#include "src/machvm/page.h"

namespace asvm {

namespace {

// Forwarding-hop ceiling: a healthy chain never exceeds one hop per node
// (each hop lands on a strictly newer hint), so anything longer is a cycle
// opened by a mid-walk death. The request is dropped and the origin's retry
// machinery chases the repaired chain instead of orbiting forever.
int MaxHops(int node_count) { return node_count * 4; }

}  // namespace

IvyAgent::IvyAgent(IvySystem& system, NodeId node)
    : ProtocolAgent(system, node, TraceProtocol::kIvy),
      system_(system),
      vm_(system.cluster().vm(node)),
      failover_(system.cluster().params().failover),
      copy_threads_(system.cluster().engine_for(node), system.config().copy_pager_threads) {
  Listen(system_.cluster().norma(), ProtocolId::kIvy);
}

IvyAgent::~IvyAgent() = default;

std::shared_ptr<VmObject> IvyAgent::Attach(const MemObjectId& id) {
  auto it = reprs_.find(id);
  if (it != reprs_.end()) {
    return it->second;
  }
  IvyObjectInfo& info = system_.info(id);
  auto repr = vm_.CreateObject(info.pages, CopyStrategy::kAsymmetric);
  vm_.RegisterManaged(repr, id, this);
  reprs_[id] = repr;
  return repr;
}

IvyAgent::ObjState& IvyAgent::obj_state(const MemObjectId& id) {
  auto it = objs_.find(id);
  if (it == objs_.end()) {
    auto os = std::make_unique<ObjState>();
    os->hints.SetPageCount(system_.info(id).pages);
    it = objs_.emplace(id, std::move(os)).first;
  }
  return *it->second;
}

void IvyAgent::AdoptHomePages(const MemObjectId& id, VmSize pages) {
  ObjState& os = obj_state(id);
  for (PageIndex p = 0; p < static_cast<PageIndex>(pages); ++p) {
    os.owned.try_emplace(p);
  }
}

bool IvyAgent::Owns(const MemObjectId& id, PageIndex page) const {
  auto it = objs_.find(id);
  return it != objs_.end() && it->second->owned.count(page) != 0;
}

NodeId IvyAgent::ProbableOwner(const MemObjectId& id, PageIndex page) const {
  auto it = objs_.find(id);
  if (it != objs_.end()) {
    if (const ObjState::Hint* h = it->second->hints.Find(page);
        h != nullptr && h->owner != kInvalidNode) {
      return h->owner;
    }
  }
  return system_.info(id).home;
}

NodeId IvyAgent::HintFor(const MemObjectId& id, PageIndex page) {
  ObjState& os = obj_state(id);
  if (ObjState::Hint* h = os.hints.Find(page); h != nullptr && h->owner != kInvalidNode) {
    return h->owner;
  }
  return system_.info(id).home;
}

void IvyAgent::SetHint(const MemObjectId& id, PageIndex page, NodeId owner) {
  obj_state(id).hints.GetOrCreate(page).owner = owner;
}

size_t IvyAgent::MetadataBytes() const {
  // IVY's pitch against the centralized manager: per-node state is one hint
  // per locally touched page plus owner records for pages owned here — no
  // Θ(pages × nodes) table anywhere.
  size_t bytes = 0;
  for (const auto& [id, os] : objs_) {
    bytes += os->hints.size() * sizeof(ObjState::Hint);
    for (const auto& [page, st] : os->owned) {
      bytes += sizeof(OwnerState) + st.copyset.size() * sizeof(NodeId);
    }
  }
  bytes += reprs_.size() * 64;  // per-object kernel records
  return bytes;
}

bool IvyAgent::DescribeStall(std::string& out) const {
  bool blocked = ProtocolAgent::DescribeStall(out);
  std::vector<MemObjectId> ids;
  ids.reserve(objs_.size());
  for (const auto& [id, os] : objs_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const MemObjectId& id : ids) {
    for (const auto& [page, st] : objs_.at(id)->owned) {
      if (!st.busy && st.queue.empty()) {
        continue;
      }
      blocked = true;
      out += "  ivy owner node " + std::to_string(node_) + ": object " + id.ToString() +
             " page " + std::to_string(page) + (st.busy ? " busy" : " idle") + ", " +
             std::to_string(st.queue.size()) + " requests queued\n";
    }
    for (const auto& [page, parked] : objs_.at(id)->parked) {
      if (parked.empty()) {
        continue;
      }
      blocked = true;
      out += "  ivy faulter node " + std::to_string(node_) + ": object " + id.ToString() +
             " page " + std::to_string(page) + ", " + std::to_string(parked.size()) +
             " requests parked behind local fault\n";
    }
  }
  return blocked;
}

// --- Pager upcalls ----------------------------------------------------------

void IvyAgent::DataRequest(VmObject& object, PageIndex page, PageAccess desired) {
  if (stats_ != nullptr) {
    stats_->Add("ivy.data_requests");
  }
  SendRequest(object.id(), page, desired, /*has_copy=*/false);
}

void IvyAgent::DataUnlock(VmObject& object, PageIndex page, PageAccess desired) {
  if (stats_ != nullptr) {
    stats_->Add("ivy.data_unlocks");
  }
  SendRequest(object.id(), page, desired, /*has_copy=*/true);
}

void IvyAgent::SendRequest(const MemObjectId& id, PageIndex page, PageAccess access,
                           bool has_copy, uint64_t reuse_op) {
  const IvyObjectInfo& info = system_.info(id);
  if (info.IsCopyObject()) {
    // A child's own modified pages paged out locally take priority over the
    // frozen parent copy at the internal pager.
    auto repr_it = reprs_.find(id);
    if (repr_it != reprs_.end() &&
        vm_.default_pager()->HasPage(repr_it->second->serial(), page)) {
      auto repr = repr_it->second;
      vm_.default_pager()->ReadPage(repr->serial(), page, [this, repr, page](PageBuffer data) {
        vm_.DataSupply(*repr, page, std::move(data), PageAccess::kWrite);
      });
      return;
    }
    IvyCopyFault fault{id, page, node_, {node_}};
    if (copy_fault_path_ != nullptr) {
      fault.path = *copy_fault_path_;
      fault.path.push_back(node_);
    }
    Trace(TraceKind::kIvyRequest, id, page, info.copy_pager_node,
          static_cast<int64_t>(access));
    Send(info.copy_pager_node, IvyMsgType::kCopyFault, fault);
    return;
  }
  IvyRequest req{id, page, access, node_, has_copy, /*op_id=*/0, /*hops=*/0};
  if (Owns(id, page)) {
    // The faulting node is the owner: no wire traffic at all — the property
    // the paper credits dynamic ownership for on write-heavy sharing.
    if (stats_ != nullptr) {
      stats_->Add("dsm.ivy.local_serves");
    }
    Trace(TraceKind::kIvyRequest, id, page, node_, static_cast<int64_t>(access));
    OwnerHandle(std::move(req));
    return;
  }
  // Lock the page-table entry for the whole fault (Li & Hudak): until the
  // grant comes back, this node's hint for the page is exactly the stale
  // pointer the walk is chasing, so requests forwarded here meanwhile park
  // behind the fault instead of being routed by it (see ForwardTask).
  obj_state(id).faulting.insert(page);
  const NodeId target = HintFor(id, page);
  // A reissue keeps the original id (ASVM's ArmRequest discipline): if the
  // true owner already started serving the first attempt, the resend dedups
  // there and the eventual reply resolves the live op instead of being
  // dropped as a straggler — which would lose a granted transfer and loop.
  req.op_id = reuse_op != 0 ? reuse_op : system_.NextOpId(node_);
  if (stats_ != nullptr) {
    stats_->Add("dsm.ivy.requests");
  }
  Trace(TraceKind::kIvyRequest, id, page, target, static_cast<int64_t>(access), req.op_id);
  if (failover_.enabled && retry_policy().timeout_ns > 0) {
    // Arm a pending op on the request itself so owner silence is detected.
    // The resend re-reads the hint: a death notice or a bystander's reclaim
    // may have re-aimed the chain since the last attempt.
    RegisterOp(req.op_id, 1, "ivy-request", id, page);
    if (PendingOp* op = FindOp(req.op_id); op != nullptr) {
      op->targets = {target};
      op->on_fail = [this, id, page, access, has_copy, op_id = req.op_id](Status) {
        ReissueAfterOwnerDeath(id, page, access, has_copy, op_id);
      };
    }
    ArmOp(req.op_id, [this, req]() {
      if (Owns(req.object, req.page)) {
        // Ownership landed here while the op was in flight (a straggler
        // write grant): serve the fault locally through the owner path.
        OwnerHandle(req);
        return;
      }
      const NodeId t = HintFor(req.object, req.page);
      if (PendingOp* op = FindOp(req.op_id); op != nullptr) {
        op->targets = {t};
      }
      Send(t, IvyMsgType::kRequest, req);
    });
  }
  Send(target, IvyMsgType::kRequest, req);
}

// --- Forwarding -------------------------------------------------------------

Task IvyAgent::ForwardTask(IvyRequest req) {
  // Relaying costs CPU on every hop — the price IVY pays instead of the
  // centralized manager's single (congested) hop.
  co_await Delay(vm_.engine(), system_.config().forward_process_ns);
  if (Owns(req.object, req.page)) {
    // Ownership arrived here while the relay was in flight.
    OwnerHandle(std::move(req));
    co_return;
  }
  if (req.hops >= MaxHops(system_.cluster().node_count())) {
    if (stats_ != nullptr) {
      stats_->Add("dsm.ivy.dropped_forwards");
    }
    co_return;
  }
  ObjState& os = obj_state(req.object);
  if (req.origin != node_ && os.faulting.count(req.page) != 0) {
    // This node's own fault on the page is unresolved, so its hint is the
    // stale pointer that walk is busy replacing — routing someone else's
    // request by it can orbit (two in-flight write compressions aiming hints
    // at each other). Park the request behind our fault; the grant names the
    // true owner (or makes us the owner) and DrainParked re-routes it.
    os.parked[req.page].push_back(std::move(req));
    if (stats_ != nullptr) {
      stats_->Add("dsm.ivy.parked_requests");
    }
    co_return;
  }
  NodeId next = HintFor(req.object, req.page);
  if (next == node_) {
    // Stale self-hint (a cut chain landed here): fall back to the home.
    next = system_.info(req.object).home;
  }
  ++req.hops;
  if (stats_ != nullptr) {
    stats_->Add("dsm.ivy.forwards");
  }
  Trace(TraceKind::kIvyForward, req.object, req.page, next, req.hops, req.op_id);
  if (req.access == PageAccess::kWrite) {
    // The requester is about to become the owner: compress this node's chain
    // toward it now instead of after another full walk (Li & Hudak's path
    // compression on forwards).
    SetHint(req.object, req.page, req.origin);
  }
  if (next == node_) {
    co_return;  // nowhere live to aim; the origin's retries chase the repair
  }
  Send(next, IvyMsgType::kRequest, std::move(req));
}

// --- Owner role -------------------------------------------------------------

IvyAgent::OwnerState* IvyAgent::OwnedState(const MemObjectId& id, PageIndex page) {
  auto it = objs_.find(id);
  if (it == objs_.end()) {
    return nullptr;
  }
  auto pit = it->second->owned.find(page);
  return pit == it->second->owned.end() ? nullptr : &pit->second;
}

void IvyAgent::OwnerHandle(IvyRequest req) {
  OwnerState* st = OwnedState(req.object, req.page);
  if (st == nullptr) {
    // Raced with an ownership transfer: relay along the (fresh) hint.
    (void)ForwardTask(std::move(req));
    return;
  }
  if (st->busy) {
    st->queue.push_back(std::move(req));
    return;
  }
  st->busy = true;
  (void)OwnerServe(std::move(req));
}

Future<Status> IvyAgent::StackProcess() {
  return Process(system_.config().stack_process_ns);
}

void IvyAgent::DeliverReply(const IvyRequest& req, const IvyReply& reply, PageBuffer data) {
  Trace(TraceKind::kIvyGrant, req.object, req.page, req.origin,
        reply.lost ? -1 : static_cast<int64_t>(reply.granted), req.op_id);
  if (req.origin == node_) {
    if (req.op_id != 0 && FindOp(req.op_id) != nullptr) {
      ResolveOp(req.op_id, reply.lost ? Status::kDataLost : Status::kOk);
    }
    ApplyGrant(req.object, req.page, reply, std::move(data));
    return;
  }
  Send(req.origin, IvyMsgType::kReply, reply, std::move(data));
}

Task IvyAgent::OwnerServe(IvyRequest req) {
  Engine& engine = vm_.engine();
  const MemObjectId id = req.object;
  IvyObjectInfo& info = system_.info(id);
  const bool self = req.origin == node_;

  co_await StackProcess();
  OwnerState* st = OwnedState(id, req.page);
  if (st == nullptr) {
    co_return;  // reclaimed away (buried or cold-restarted) while parked
  }
  if (stats_ != nullptr) {
    stats_->Add("dsm.ivy.owner_requests");
    stats_->Observe("dsm.ivy.chain_length", static_cast<double>(req.hops));
  }
  Trace(TraceKind::kIvyServe, id, req.page, req.origin, req.hops, req.op_id);

  if (st->lost) {
    // A reclaim proved this page was committed and then lost with its owner
    // and every replica: the fault must fail, not zero-fill.
    IvyReply reply{id,    req.page,           req.access, /*zero_fill=*/false,
                   false, /*ownership=*/false, node_,      req.op_id,
                   /*lost=*/true};
    if (stats_ != nullptr) {
      stats_->Add("dsm.ivy.lost_page_replies");
    }
    DeliverReply(req, reply, nullptr);
    FinishServe(id, req.page);
    co_return;
  }

  auto rit = reprs_.find(id);
  VmObject* repr = rit == reprs_.end() ? nullptr : rit->second.get();
  const SimDuration supply_cost =
      info.file_backed ? vm_.costs().pager_call_ns : system_.config().pager_supply_ns;
  const bool is_home = info.home == node_ && info.backing != nullptr;

  if (req.access == PageAccess::kWrite) {
    // Invalidate every read copy except the requester's, re-aiming each
    // reader's hint at the new owner (chain compression on invalidation).
    const bool upgrade =
        req.has_copy &&
        (self ? (repr != nullptr && repr->FindResident(req.page) != nullptr)
              : st->copyset.count(req.origin) != 0);
    std::vector<NodeId> targets(st->copyset.begin(), st->copyset.end());
    targets.erase(std::remove(targets.begin(), targets.end(), req.origin), targets.end());
    const NodeId new_owner = self ? node_ : req.origin;
    if (failover_.enabled && !targets.empty()) {
      // Removed readers' copies died with them: drop them from the round and
      // gossip the first confirmation of each death.
      if (const FaultPlan* plan = system_.cluster().fault_plan(); plan != nullptr) {
        const SimTime now = engine.Now();
        std::vector<NodeId> alive;
        alive.reserve(targets.size());
        for (NodeId r : targets) {
          if (plan->NodeAlive(r, now)) {
            alive.push_back(r);
          } else {
            st->copyset.erase(r);
            system_.ReportDeath(node_, r);
          }
        }
        targets = std::move(alive);
      }
    }
    if (!targets.empty()) {
      const uint64_t op = OpenOp(static_cast<int>(targets.size()), "ivy-invalidate-round",
                                 id, req.page);
      if (PendingOp* pending = FindOp(op); pending != nullptr) {
        pending->targets = targets;
      }
      Future<Status> acked = OpFuture(op);
      for (NodeId r : targets) {
        Trace(TraceKind::kIvyInvalidate, id, req.page, r, 0, op);
        if (stats_ != nullptr) {
          stats_->Add("dsm.ivy.invalidations");
        }
        Send(r, IvyMsgType::kInvalidate, IvyInvalidate{id, req.page, new_owner, op});
      }
      ArmOp(op, [this, id, page = req.page, new_owner, op, targets]() {
        const PendingOp* pending = FindOp(op);
        for (NodeId r : targets) {
          if (pending != nullptr &&
              std::find(pending->acked.begin(), pending->acked.end(), r) !=
                  pending->acked.end()) {
            continue;
          }
          Send(r, IvyMsgType::kInvalidate, IvyInvalidate{id, page, new_owner, op});
        }
      });
      co_await acked;
      EraseOp(op);
      st = OwnedState(id, req.page);
      if (st == nullptr) {
        co_return;
      }
    }
    st->copyset.clear();

    if (self) {
      // Already the owner: upgrade or first-touch supply in place.
      if (upgrade) {
        vm_.LockGranted(*repr, req.page, PageAccess::kWrite);
        if (stats_ != nullptr) {
          stats_->Add("dsm.ivy.self_upgrades");
        }
        Trace(TraceKind::kIvyGrant, id, req.page, node_,
              static_cast<int64_t>(PageAccess::kWrite), req.op_id);
        if (req.op_id != 0 && FindOp(req.op_id) != nullptr) {
          ResolveOp(req.op_id, Status::kOk);
        }
        // This is the one fault resolution that bypasses ApplyGrant — unlock
        // the page-table entry here too, or requests parked behind the fault
        // (see ForwardTask) stay parked forever.
        DrainParked(id, req.page);
        FinishServe(id, req.page);
        co_return;
      }
      PageBuffer data = st->pager_copy != nullptr ? ClonePage(st->pager_copy) : nullptr;
      bool zero_fill = false;
      if (data != nullptr) {
        co_await Delay(engine, supply_cost);
      } else if (is_home && info.backing->HasData(req.page)) {
        Promise<PageBuffer> read_done(engine);
        info.backing->Read(req.page, vm_.page_size(),
                           [read_done](PageBuffer d) { read_done.Set(std::move(d)); });
        data = co_await read_done.GetFuture();
        co_await Delay(engine, info.file_backed ? 0 : system_.config().pager_supply_ns);
      } else {
        if (is_home) {
          Promise<Status> grant(engine);
          info.backing->GrantFresh(req.page, [grant]() { grant.Set(Status::kOk); });
          co_await grant.GetFuture();
        }
        co_await Delay(engine, system_.config().pager_fresh_ns);
        zero_fill = true;
      }
      st = OwnedState(id, req.page);
      if (st == nullptr) {
        co_return;
      }
      // The kernel's writable copy supersedes the protocol-level one.
      st->pager_copy = nullptr;
      IvyReply reply{id,    req.page, PageAccess::kWrite, zero_fill,
                     false, /*ownership=*/false, node_, req.op_id, false};
      if (stats_ != nullptr) {
        stats_->Add("dsm.ivy.write_grants");
      }
      DeliverReply(req, reply, zero_fill ? nullptr : std::move(data));
      FinishServe(id, req.page);
      co_return;
    }

    // Remote writer: extract our own copy (single-writer), gather the newest
    // contents, and hand the page plus ownership over. Contents travel even
    // on upgrades when we hold them — insurance against the requester's read
    // copy having been evicted while the upgrade was in flight.
    PageBuffer data;
    bool zero_fill = false;
    if (repr != nullptr) {
      NodeVm::Extracted ex = vm_.ExtractPage(*repr, req.page);
      if (ex.was_resident) {
        data = std::move(ex.data);
      }
    }
    if (data == nullptr && st->pager_copy != nullptr) {
      data = std::move(st->pager_copy);
    }
    if (data != nullptr) {
      if (!upgrade) {
        co_await Delay(engine, supply_cost);
      }
    } else if (is_home && info.backing->HasData(req.page)) {
      Promise<PageBuffer> read_done(engine);
      info.backing->Read(req.page, vm_.page_size(),
                         [read_done](PageBuffer d) { read_done.Set(std::move(d)); });
      data = co_await read_done.GetFuture();
      co_await Delay(engine, info.file_backed ? 0 : system_.config().pager_supply_ns);
    } else if (!upgrade) {
      if (is_home) {
        Promise<Status> grant(engine);
        info.backing->GrantFresh(req.page, [grant]() { grant.Set(Status::kOk); });
        co_await grant.GetFuture();
      }
      co_await Delay(engine, system_.config().pager_fresh_ns);
      zero_fill = true;
    }
    st = OwnedState(id, req.page);
    if (st == nullptr) {
      co_return;
    }
    // Transfer: drain the parked queue first, then erase the owner record and
    // aim our own chain at the new owner.
    std::deque<IvyRequest> parked = std::move(st->queue);
    objs_.at(id)->owned.erase(req.page);
    SetHint(id, req.page, req.origin);
    IvyReply reply{id,
                   req.page,
                   PageAccess::kWrite,
                   zero_fill && !upgrade,
                   upgrade,
                   /*ownership=*/true,
                   req.origin,
                   req.op_id,
                   false};
    if (stats_ != nullptr) {
      stats_->Add(upgrade ? "dsm.ivy.write_upgrade_grants" : "dsm.ivy.write_grants");
      stats_->Add("dsm.ivy.ownership_moves");
    }
    Trace(TraceKind::kOwnershipMoved, id, req.page, req.origin, 0, req.op_id);
    DeliverReply(req, reply, zero_fill ? nullptr : std::move(data));
    for (auto& q : parked) {
      if (q.origin == node_) {
        // Our own parked fault: re-enter the request path so it gets a fresh
        // op id and failover arming toward the new owner.
        SendRequest(id, q.page, q.access, q.has_copy);
      } else {
        (void)ForwardTask(std::move(q));
      }
    }
    co_return;
  }

  // Read request: serve a copy, record the reader, keep ownership.
  if (!self) {
    st->copyset.insert(req.origin);
  }
  PageBuffer data;
  bool zero_fill = false;
  VmPage* vp = repr == nullptr ? nullptr : repr->FindResident(req.page);
  if (vp != nullptr) {
    if (AccessAllows(vp->lock, PageAccess::kWrite)) {
      vp->lock = PageAccess::kRead;  // single-writer: downgrade our own copy
    }
    data = ClonePage(vp->data);
    co_await Delay(engine, supply_cost);
  } else if (st->pager_copy != nullptr) {
    data = ClonePage(st->pager_copy);
    co_await Delay(engine, supply_cost);
  } else if (is_home && info.backing->HasData(req.page)) {
    Promise<PageBuffer> read_done(engine);
    info.backing->Read(req.page, vm_.page_size(),
                       [read_done](PageBuffer d) { read_done.Set(std::move(d)); });
    data = co_await read_done.GetFuture();
    co_await Delay(engine, info.file_backed ? 0 : system_.config().pager_supply_ns);
  } else {
    if (is_home) {
      Promise<Status> grant(engine);
      info.backing->GrantFresh(req.page, [grant]() { grant.Set(Status::kOk); });
      co_await grant.GetFuture();
    }
    co_await Delay(engine, system_.config().pager_fresh_ns);
    zero_fill = true;
  }
  st = OwnedState(id, req.page);
  if (st == nullptr) {
    co_return;
  }
  IvyReply reply{id,    req.page, PageAccess::kRead, zero_fill,
                 false, /*ownership=*/false, node_, req.op_id, false};
  if (stats_ != nullptr) {
    stats_->Add("dsm.ivy.read_grants");
  }
  DeliverReply(req, reply, zero_fill ? nullptr : std::move(data));
  FinishServe(id, req.page);
}

void IvyAgent::FinishServe(const MemObjectId& id, PageIndex page) {
  OwnerState* st = OwnedState(id, page);
  if (st == nullptr) {
    return;
  }
  st->busy = false;
  if (!st->queue.empty()) {
    IvyRequest next = std::move(st->queue.front());
    st->queue.pop_front();
    OwnerHandle(std::move(next));
  }
}

// --- Grant application at the origin ----------------------------------------

void IvyAgent::ApplyGrant(const MemObjectId& id, PageIndex page, const IvyReply& reply,
                          PageBuffer data) {
  auto repr = reprs_.at(id);
  if (reply.lost) {
    if (stats_ != nullptr) {
      stats_->Add("dsm.ivy.lost_page_faults");
    }
    Trace(TraceKind::kGrantApplied, id, page, reply.owner, /*aux=*/-1, reply.op_id);
    vm_.FaultFailed(*repr, page, Status::kDataLost);
    DrainParked(id, page);
    return;
  }
  if (reply.ownership) {
    // The write grant carries ownership: install the owner record (empty
    // copyset — the granter invalidated every reader first).
    ObjState& os = obj_state(id);
    os.owned.try_emplace(page);
  } else {
    // Path compression: aim the hint straight at whoever answered.
    SetHint(id, page, reply.owner);
  }
  Trace(TraceKind::kGrantApplied, id, page, reply.owner,
        static_cast<int64_t>(reply.granted), reply.op_id);
  if (reply.upgrade) {
    if (repr->FindResident(page) != nullptr) {
      vm_.LockGranted(*repr, page, reply.granted);
    } else if (data != nullptr) {
      // Our read copy was evicted while the upgrade was in flight; the owner
      // attached the contents as insurance.
      vm_.DataSupply(*repr, page, std::move(data), reply.granted);
    } else {
      // No copy anywhere on this path: re-fault through the owner machinery
      // (we own the page now, so this resolves locally).
      SendRequest(id, page, reply.granted, false);
    }
  } else if (reply.zero_fill) {
    vm_.DataUnavailable(*repr, page, reply.granted);
  } else {
    vm_.DataSupply(*repr, page, std::move(data), reply.granted);
  }
  DrainParked(id, page);
}

void IvyAgent::DrainParked(const MemObjectId& id, PageIndex page) {
  ObjState& os = obj_state(id);
  os.faulting.erase(page);
  auto pit = os.parked.find(page);
  if (pit == os.parked.end()) {
    return;
  }
  std::deque<IvyRequest> parked = std::move(pit->second);
  os.parked.erase(pit);
  for (auto& q : parked) {
    // ForwardTask re-decides with post-grant state: ownership landed here →
    // owner path; read grant → the hint now names the node that answered.
    (void)ForwardTask(std::move(q));
  }
}

// --- Eviction ----------------------------------------------------------------

EvictAction IvyAgent::OnEvict(VmObject& object, PageIndex page, PageBuffer data, bool dirty) {
  const MemObjectId id = object.id();
  const IvyObjectInfo& info = system_.info(id);
  if (info.IsCopyObject()) {
    if (!dirty) {
      if (stats_ != nullptr) {
        stats_->Add("ivy.evict_discards");
      }
      return EvictAction::kDiscard;
    }
    // The child's private modifications page out to the local default pager;
    // the internal pager only serves the frozen parent snapshot.
    vm_.default_pager()->WritePage(object.serial(), page, std::move(data));
    return EvictAction::kTaken;
  }
  if (OwnerState* st = OwnedState(id, page); st != nullptr) {
    // The owner's kernel copy is the page's authoritative contents — capture
    // it (clean or dirty) as the protocol-level copy future grants serve.
    if (stats_ != nullptr) {
      stats_->Add("ivy.evict_captures");
    }
    st->pager_copy = std::move(data);
    if (dirty) {
      if (info.file_backed) {
        // The file backing lives at the home node; ship the contents there so
        // the write lands on the home's own timeline (shard safety).
        if (info.home == node_) {
          if (info.backing != nullptr) {
            info.backing->Write(page, ClonePage(st->pager_copy), []() {});
          }
        } else {
          Send(info.home, IvyMsgType::kWriteback, IvyWriteback{id, page, true},
               ClonePage(st->pager_copy));
        }
      } else {
        // Anonymous page: the captured copy is the only replica — mirror it
        // to this node's backup so the contents survive our death.
        MirrorToBackup(node_, id, page, st->pager_copy);
      }
    }
    return EvictAction::kTaken;
  }
  // Non-owner read copy: discard. The owner still lists us in its copyset —
  // conservative; a re-touch simply re-requests.
  if (stats_ != nullptr) {
    stats_->Add("ivy.evict_discards");
  }
  return EvictAction::kDiscard;
}

void IvyAgent::LockCompleted(VmObject&, PageIndex, LockResult) {}
void IvyAgent::PullCompleted(VmObject&, PageIndex, PullResult) {}

// --- Failover (DESIGN.md §15) ------------------------------------------------

void IvyAgent::MirrorToBackup(NodeId primary, const MemObjectId& id, PageIndex page,
                              const PageBuffer& data) {
  if (!failover_.enabled) {
    return;
  }
  const NodeId backup = RingSuccessor(primary, system_.cluster().node_count(),
                                      system_.cluster().fault_plan(), engine().Now());
  if (backup == kInvalidNode) {
    return;
  }
  if (primary == node_) {
    if (backup != shadow_target_ && shadow_target_ != kInvalidNode) {
      ReplayShadowLedger(backup);
    }
    shadow_target_ = backup;
    sent_shadow_[id][page] = ClonePage(data);
  }
  if (stats_ != nullptr) {
    stats_->Add(kStatShadowUpdates);
  }
  if (backup == node_) {
    shadow_[id][page] = ClonePage(data);
    SendShadowManifest(id, page, backup);
    return;
  }
  Send(backup, IvyMsgType::kShadowUpdate, IvyWriteback{id, page, true}, ClonePage(data));
  SendShadowManifest(id, page, backup);
}

void IvyAgent::SendShadowManifest(const MemObjectId& id, PageIndex page, NodeId backup) {
  const NodeId witness = RingSuccessor(backup, system_.cluster().node_count(),
                                       system_.cluster().fault_plan(), engine().Now());
  if (witness == kInvalidNode || witness == node_) {
    return;
  }
  Send(witness, IvyMsgType::kShadowManifest, IvyWriteback{id, page, false});
}

void IvyAgent::ReplayShadowLedger(NodeId backup) {
  for (auto& [id, pages] : sent_shadow_) {
    for (auto& [page, buf] : pages) {
      if (stats_ != nullptr) {
        stats_->Add(kStatShadowRestreams);
      }
      Send(backup, IvyMsgType::kShadowUpdate, IvyWriteback{id, page, true}, ClonePage(buf));
      SendShadowManifest(id, page, backup);
    }
  }
}

void IvyAgent::RetargetShadowStream(NodeId dead) {
  if (!failover_.enabled || shadow_target_ != dead || sent_shadow_.empty()) {
    return;
  }
  const NodeId backup = RingSuccessor(node_, system_.cluster().node_count(),
                                      system_.cluster().fault_plan(), engine().Now());
  if (backup == kInvalidNode) {
    shadow_target_ = kInvalidNode;
    return;
  }
  shadow_target_ = backup;
  engine().Post([this, backup]() { ReplayShadowLedger(backup); });
}

void IvyAgent::CutChains(NodeId dead) {
  const FaultPlan* plan = system_.cluster().fault_plan();
  const NodeId succ =
      RingSuccessor(dead, system_.cluster().node_count(), plan, engine().Now());
  std::vector<MemObjectId> ids;
  ids.reserve(objs_.size());
  for (const auto& [id, os] : objs_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const MemObjectId& id : ids) {
    ObjState& os = *objs_.at(id);
    std::vector<PageIndex> cut;
    os.hints.ForEach([&](PageIndex p, const ObjState::Hint& h) {
      if (h.owner == dead) {
        cut.push_back(p);
      }
    });
    std::sort(cut.begin(), cut.end());
    for (PageIndex p : cut) {
      // Aim at the corpse's ring successor — not provably the owner, but a
      // live node whose own (also-cut) chain converges on one. Pointing at
      // ourselves would orbit; fall back to the home instead.
      os.hints.GetOrCreate(p).owner = succ == node_ ? kInvalidNode : succ;
      if (stats_ != nullptr) {
        stats_->Add(kStatIvyChainCuts);
      }
      Trace(TraceKind::kIvyChainCut, id, p, dead);
    }
  }
}

void IvyAgent::ReissueAfterOwnerDeath(const MemObjectId& id, PageIndex page, PageAccess access,
                                      bool has_copy, uint64_t reuse_op) {
  // The probable owner is confirmed silent. Repair ownership at the next
  // sequencing point — a cluster mutation, so every node observes the reclaim
  // in the same global order at every shard count — then replay the request
  // along the repaired chain from this node's own engine.
  system_.cluster().mutator().Enqueue(node_, [this, id, page, access, has_copy, reuse_op]() {
    system_.ReclaimIfOwnerDead(id, page, node_);
    engine().Post([this, id, page, access, has_copy, reuse_op]() {
      if (stats_ != nullptr) {
        stats_->Add(kStatReissues);
      }
      SendRequest(id, page, access, has_copy, reuse_op);
    });
  });
}

// --- Copy pager role ---------------------------------------------------------

Task IvyAgent::CopyFaultTask(NodeId src, IvyCopyFault m) {
  auto it = copy_pagers_.find(m.object);
  ASVM_CHECK_MSG(it != copy_pagers_.end(), "copy fault for unknown internal pager");
  CopyPagerEntry entry = it->second;

  if (copy_threads_.available() == 0 &&
      std::find(m.path.begin(), m.path.end(), node_) != m.path.end()) {
    if (stats_ != nullptr) {
      stats_->Add("ivy.copy_deadlocks");
    }
    Send(src, IvyMsgType::kCopyFaultReply,
         IvyCopyFaultReply{m.object, m.page, false, /*deadlock=*/true});
    co_return;
  }
  co_await copy_threads_.Acquire();
  co_await StackProcess();
  if (stats_ != nullptr) {
    stats_->Add("ivy.copy_faults");
  }

  const VmOffset addr = (entry.base_page + static_cast<VmOffset>(m.page)) * vm_.page_size();
  copy_fault_path_ = &m.path;
  Status s = co_await vm_.Fault(*entry.copy_map, addr, PageAccess::kRead);
  copy_fault_path_ = nullptr;
  if (!IsOk(s)) {
    copy_threads_.Release();
    Send(src, IvyMsgType::kCopyFaultReply,
         IvyCopyFaultReply{m.object, m.page, false, /*deadlock=*/s == Status::kDeadlock});
    co_return;
  }
  std::byte* p = vm_.TryAccess(*entry.copy_map, addr, PageAccess::kRead);
  PageBuffer data;
  bool zero = true;
  if (p != nullptr) {
    data = AllocPage(vm_.page_size());
    std::memcpy(data->data(), p - (addr % vm_.page_size()), vm_.page_size());
    zero = PageIsZero(data);
  }
  copy_threads_.Release();
  Send(src, IvyMsgType::kCopyFaultReply, IvyCopyFaultReply{m.object, m.page, zero, false},
       zero ? nullptr : std::move(data));
}

// --- Dispatcher --------------------------------------------------------------

void IvyAgent::OnMessage(NodeId src, Message msg) {
  IvyBody body = std::get<IvyBody>(std::move(msg.body));
  // -Werror=switch keeps this dispatcher exhaustive over IvyMsgType.
  switch (static_cast<IvyMsgType>(msg.type)) {
    case IvyMsgType::kRequest: {
      auto req = std::get<IvyRequest>(std::move(body));
      if (req.origin == node_) {
        if (Owns(req.object, req.page)) {
          // Our own request orbited back after ownership already landed here
          // (a reclaim or a straggler grant): the fault was served locally.
          CountDuplicate();
          return;
        }
        (void)ForwardTask(std::move(req));
        return;
      }
      if (Owns(req.object, req.page)) {
        if (DuplicateDelivery(req.op_id)) {
          return;  // a retry of a request already parked or being served here
        }
        OwnerHandle(std::move(req));
      } else {
        // No dedup at forwarders: a retry must be free to chase the *current*
        // chain, which may differ from the one the original took.
        (void)ForwardTask(std::move(req));
      }
      return;
    }
    case IvyMsgType::kReply: {
      const auto& reply = std::get<IvyReply>(body);
      // Requests carry op ids even with retries disarmed (they key the
      // --breakdown fault matching), but pending ops are only registered when
      // failover is armed — a missing op means "straggler" only in that mode.
      const bool ops_armed = failover_.enabled && retry_policy().timeout_ns > 0;
      if (reply.op_id != 0 && ops_armed && FindOp(reply.op_id) == nullptr) {
        CountDuplicate();
        if (reply.ownership && !reply.lost && !Owns(reply.object, reply.page)) {
          // A straggler write grant carries ownership; dropping it would
          // evaporate the page's only owner record (the PR 9 livelock shape).
          // Accept the role: empty copyset, payload as the protocol copy.
          ObjState& os = obj_state(reply.object);
          auto [it, inserted] = os.owned.try_emplace(reply.page);
          if (inserted && msg.page != nullptr) {
            it->second.pager_copy = std::move(msg.page);
          }
          if (stats_ != nullptr) {
            stats_->Add("dsm.ivy.straggler_ownership_grants");
          }
        }
        return;
      }
      if (reply.op_id != 0 && ops_armed) {
        ResolveOp(reply.op_id, reply.lost ? Status::kDataLost : Status::kOk);
      }
      ApplyGrant(reply.object, reply.page, reply, std::move(msg.page));
      return;
    }
    case IvyMsgType::kInvalidate: {
      const auto& m = std::get<IvyInvalidate>(body);
      if (DuplicateDelivery(m.op_id)) {
        return;  // already flushed and acked; the owner dedupes acks
      }
      auto rit = reprs_.find(m.object);
      if (!Owns(m.object, m.page) && rit != reprs_.end() &&
          rit->second->FindResident(m.page) != nullptr) {
        vm_.LockRequest(*rit->second, m.page, PageAccess::kNone, LockMode::kFlush,
                        [](LockResult) {});
      }
      // Chain compression: ownership is about to land at new_owner.
      SetHint(m.object, m.page, m.new_owner);
      if (stats_ != nullptr) {
        stats_->Add("dsm.ivy.invalidated_copies");
      }
      Send(src, IvyMsgType::kInvalidateAck,
           IvyInvalidate{m.object, m.page, m.new_owner, m.op_id});
      return;
    }
    case IvyMsgType::kInvalidateAck: {
      const auto& m = std::get<IvyInvalidate>(body);
      // The owner coroutine erases the op after the round completes.
      AckOp(m.op_id, src, /*keep_entry=*/true);
      return;
    }
    case IvyMsgType::kWriteback: {
      const auto& m = std::get<IvyWriteback>(body);
      // Dirty file-backed eviction shipped home: commit it to the backing
      // store on this (the home's) timeline.
      IvyObjectInfo& info = system_.info(m.object);
      if (info.backing != nullptr && m.dirty && msg.page != nullptr) {
        info.backing->Write(m.page, std::move(msg.page), []() {});
      }
      return;
    }
    case IvyMsgType::kCopyFault:
      (void)CopyFaultTask(src, std::get<IvyCopyFault>(std::move(body)));
      return;
    case IvyMsgType::kCopyFaultReply: {
      const auto& m = std::get<IvyCopyFaultReply>(body);
      auto repr = reprs_.at(m.object);
      if (m.deadlock) {
        vm_.FaultFailed(*repr, m.page, Status::kDeadlock);
      } else if (m.zero_fill) {
        vm_.DataUnavailable(*repr, m.page, PageAccess::kWrite);
      } else {
        vm_.DataSupply(*repr, m.page, std::move(msg.page), PageAccess::kWrite);
      }
      return;
    }
    case IvyMsgType::kShadowUpdate: {
      const auto& m = std::get<IvyWriteback>(body);
      shadow_[m.object][m.page] = std::move(msg.page);
      return;
    }
    case IvyMsgType::kShadowManifest: {
      const auto& m = std::get<IvyWriteback>(body);
      shadow_manifest_[m.object].insert(m.page);
      return;
    }
  }
  ASVM_CHECK_MSG(false, "unknown IVY message type");
}

void IvyAgent::Send(NodeId to, IvyMsgType type, IvyBody body, PageBuffer page) {
  Message msg;
  msg.protocol = ProtocolId::kIvy;
  msg.type = static_cast<uint32_t>(type);
  msg.control_bytes = 128;  // typed NORMA message with port rights
  msg.body = std::move(body);
  msg.page = std::move(page);
  system_.cluster().norma().Send(node_, to, std::move(msg));
}

}  // namespace asvm
