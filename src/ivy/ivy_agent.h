// Per-node IVY component (Li & Hudak's dynamic distributed manager). Every
// node is the Pager of its local representations; there is no fixed manager.
// A fault is sent at the node's probable-owner hint and chases hints hop by
// hop until it lands on the true owner, which serves it directly. Ownership
// migrates to the requester on write grants; every hop, grant, and
// invalidation compresses the hint chains it touched. Fork-source nodes host
// the same Mach-style internal copy pagers as XMM.
#ifndef SRC_IVY_IVY_AGENT_H_
#define SRC_IVY_IVY_AGENT_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/page_table.h"
#include "src/common/types.h"
#include "src/dsm/protocol_agent.h"
#include "src/ivy/ivy_system.h"
#include "src/machvm/node_vm.h"
#include "src/machvm/pager.h"
#include "src/machvm/task_memory.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace asvm {

class IvyAgent : public Pager, public ProtocolAgent {
 public:
  IvyAgent(IvySystem& system, NodeId node);
  ~IvyAgent() override;

  std::shared_ptr<VmObject> Attach(const MemObjectId& id);

  // Owner-side state for one page. Exactly one node holds an OwnerState per
  // (object, page) — that node is the page's current owner. The home node is
  // seeded with one for every page at region creation, so ownership is always
  // locally decidable: a node owns a page iff it holds the OwnerState.
  struct OwnerState {
    // Nodes holding read copies (never includes the owner itself).
    std::set<NodeId> copyset;
    bool busy = false;
    std::deque<IvyRequest> queue;
    // Owner's protocol-level copy when the page is not resident in its
    // kernel (evicted, or harvested during a reclaim). Null means the page
    // has never left the backing store / zero-fill state.
    PageBuffer pager_copy;
    // Failover: provably committed but no replica survived the owner's
    // death. Faults answer Status::kDataLost, never silent zeros.
    bool lost = false;
  };

  // Per-object node state: the probable-owner hints plus the pages owned
  // here. `owned` is an ordered map so failover scans and cold restarts walk
  // pages in a shard-count-invariant order.
  struct ObjState {
    struct Hint {
      // kInvalidNode = no hint yet; resolve to the object's home.
      NodeId owner = kInvalidNode;
    };
    PageTable<Hint> hints;
    std::map<PageIndex, OwnerState> owned;
    // Li & Hudak keep the page-table entry locked for the whole fault. Pages
    // this node is currently faulting on live in `faulting`; requests that
    // arrive for one of them park in `parked` instead of bouncing off our
    // hint — which is exactly the stale pointer our unresolved walk is about
    // to replace (a mid-flight write compression can otherwise aim two hints
    // at each other and orbit a request until the hop ceiling drops it). The
    // grant that resolves the fault re-routes the queue (see DrainParked).
    std::set<PageIndex> faulting;
    std::map<PageIndex, std::deque<IvyRequest>> parked;
  };

  // Copy-pager state on a fork-source node (same shape as XMM's).
  struct CopyPagerEntry {
    VmMap* copy_map = nullptr;
    VmOffset base_page = 0;
  };

  // Seeds the home node's OwnerState for every page of a fresh region.
  void AdoptHomePages(const MemObjectId& id, VmSize pages);

  size_t MetadataBytes() const;
  SimSemaphore& copy_threads() { return copy_threads_; }

  // True iff this node currently owns (id, page).
  bool Owns(const MemObjectId& id, PageIndex page) const;

  // Observability probe (tests, monitors): where a fault from this node would
  // be aimed right now — the recorded probable-owner hint, or the object's
  // home when none has been learned. Never mutates the hint table.
  NodeId ProbableOwner(const MemObjectId& id, PageIndex page) const;

  // Owner-side request processing occupies this node's CPU, one request at a
  // time — IVY distributes this cost across whichever nodes own pages instead
  // of piling it on one manager.
  Future<Status> StackProcess();

  // --- Pager (EMMI upcalls from the local kernel) ---------------------------

  void DataRequest(VmObject& object, PageIndex page, PageAccess desired) override;
  void DataUnlock(VmObject& object, PageIndex page, PageAccess desired) override;
  EvictAction OnEvict(VmObject& object, PageIndex page, PageBuffer data, bool dirty) override;
  void LockCompleted(VmObject& object, PageIndex page, LockResult result) override;
  void PullCompleted(VmObject& object, PageIndex page, PullResult result) override;

 private:
  friend class IvySystem;

  // The node this node believes owns (id, page): the recorded hint, or the
  // object's home when no hint has been learned yet.
  NodeId HintFor(const MemObjectId& id, PageIndex page);
  void SetHint(const MemObjectId& id, PageIndex page, NodeId owner);

  // reuse_op keeps a reissued request part of the same transaction as the
  // original (see ReissueAfterOwnerDeath): the owner's dedup table already
  // knows the id, so an in-flight serve is not started twice and its reply
  // resolves the live op instead of being dropped as a straggler.
  void SendRequest(const MemObjectId& id, PageIndex page, PageAccess access, bool has_copy,
                   uint64_t reuse_op = 0);

  // Non-owner request handling: charge the per-hop relay cost, compress the
  // local hint toward the eventual owner (write requests will own the page),
  // and pass the request along this node's own hint.
  Task ForwardTask(IvyRequest req);

  // Owner role: queue-or-serve, then the serve coroutine (invalidation round
  // on write, copy supply, ownership transfer).
  OwnerState* OwnedState(const MemObjectId& id, PageIndex page);
  void OwnerHandle(IvyRequest req);
  Task OwnerServe(IvyRequest req);
  // Sends the reply to a remote origin, or resolves the op and applies the
  // grant directly when the owner served its own fault.
  void DeliverReply(const IvyRequest& req, const IvyReply& reply, PageBuffer data);
  // Clears the busy bit and serves the next parked request, if any.
  void FinishServe(const MemObjectId& id, PageIndex page);

  // Applies a grant at the requesting node (shared by the remote reply path
  // and the owner's local-fault shortcut).
  void ApplyGrant(const MemObjectId& id, PageIndex page, const IvyReply& reply, PageBuffer data);

  // Unlocks the page-table entry once the local fault resolved and re-routes
  // every request parked behind it: we now either own the page (write grant)
  // or hold a hint naming the node that answered, so the parked walks make
  // real progress instead of re-entering the stale-hint window.
  void DrainParked(const MemObjectId& id, PageIndex page);

  // --- Failover (DESIGN.md §15) ---------------------------------------------

  // Streams page contents to `primary`'s backup (first alive ring successor);
  // identical discipline to XMM's shadow stream, but the primary is whichever
  // node owns the page rather than a fixed manager.
  void MirrorToBackup(NodeId primary, const MemObjectId& id, PageIndex page,
                      const PageBuffer& data);
  void ReplayShadowLedger(NodeId backup);
  void RetargetShadowStream(NodeId dead);
  void SendShadowManifest(const MemObjectId& id, PageIndex page, NodeId backup);

  // Death-notice hook: re-aims every probable-owner hint pointing at `dead`
  // to its first alive ring successor, so post-death faults walk toward a
  // survivor instead of a black hole. Counts dsm.ivy.chain_cuts.
  void CutChains(NodeId dead);

  // kNodeDown/kTimeout recovery: enqueue a barrier-ordered reclaim of the
  // page (IvySystem::ReclaimIfOwnerDead), then replay the request along the
  // repaired chain under the original op id (see SendRequest's reuse_op).
  void ReissueAfterOwnerDeath(const MemObjectId& id, PageIndex page, PageAccess access,
                              bool has_copy, uint64_t reuse_op);

  // Copy-pager role (fork sources).
  Task CopyFaultTask(NodeId src, IvyCopyFault m);

  void OnMessage(NodeId src, Message msg) override;
  void Send(NodeId to, IvyMsgType type, IvyBody body, PageBuffer page = nullptr);

  // Stall-watchdog probe: base pending ops plus owned pages that are busy or
  // holding parked requests.
  bool DescribeStall(std::string& out) const override;

  ObjState& obj_state(const MemObjectId& id);

  IvySystem& system_;
  NodeVm& vm_;
  FailoverConfig failover_;
  SimSemaphore copy_threads_;
  // Backup role: newest shadowed contents per object, streamed from primaries
  // whose ring successor this node is (ordered: reclaim harvests scan these).
  std::map<MemObjectId, std::map<PageIndex, PageBuffer>> shadow_;
  // Primary role: ledger of everything this node has mirrored, plus the node
  // the stream currently feeds (see RetargetShadowStream).
  std::map<MemObjectId, std::map<PageIndex, PageBuffer>> sent_shadow_;
  NodeId shadow_target_ = kInvalidNode;
  // Witness role: pages some primary committed (control-only manifest).
  std::map<MemObjectId, std::set<PageIndex>> shadow_manifest_;
  std::unordered_map<MemObjectId, std::shared_ptr<VmObject>> reprs_;
  std::unordered_map<MemObjectId, std::unique_ptr<ObjState>> objs_;
  std::unordered_map<MemObjectId, CopyPagerEntry> copy_pagers_;
  // Path of the copy fault currently being served by a local pager thread
  // (cycle detection for fork chains; best-effort under concurrency).
  const std::vector<NodeId>* copy_fault_path_ = nullptr;
};

}  // namespace asvm

#endif  // SRC_IVY_IVY_AGENT_H_
