#include "src/ivy/ivy_system.h"

#include <algorithm>
#include <vector>

#include "src/common/log.h"
#include "src/dsm/failover.h"
#include "src/ivy/ivy_agent.h"
#include "src/machvm/page.h"

namespace asvm {

IvySystem::IvySystem(Cluster& cluster, IvyConfig config)
    : cluster_(cluster), config_(config) {
  InitOpIds(cluster.node_count());
  agents_.reserve(cluster.node_count());
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    agents_.push_back(std::make_unique<IvyAgent>(*this, n));
  }
}

IvySystem::~IvySystem() = default;

IvyObjectInfo& IvySystem::info(const MemObjectId& id) {
  auto it = directory_.find(id);
  ASVM_CHECK_MSG(it != directory_.end(), "unknown IVY object");
  return *it->second;
}

MemObjectId IvySystem::CreateSharedRegion(NodeId home, VmSize pages) {
  cluster_.AssertDriverQuiescent("IVY CreateSharedRegion from inside a shard window");
  MemObjectId id = NewObjectId(home);
  auto info = std::make_unique<IvyObjectInfo>();
  info->id = id;
  info->pages = pages;
  info->home = home;
  info->backing = std::make_unique<AnonBacking>(cluster_.engine_for(home),
                                                cluster_.default_pager(home),
                                                NextIvyBackingKey());
  directory_[id] = std::move(info);
  // The home is every page's initial owner — ownership is always locally
  // decidable, and the hint chains all terminate here until writes migrate
  // pages away.
  agent(home).AdoptHomePages(id, pages);
  return id;
}

MemObjectId IvySystem::CreateFileRegion(int32_t file_id, VmSize pages) {
  cluster_.AssertDriverQuiescent("IVY CreateFileRegion from inside a shard window");
  FilePager& pager = cluster_.file_pager();
  MemObjectId id = NewObjectId(pager.node());
  auto info = std::make_unique<IvyObjectInfo>();
  info->id = id;
  info->pages = pages;
  info->home = pager.node();
  info->backing = std::make_unique<FileBacking>(pager, file_id);
  info->file_backed = true;
  directory_[id] = std::move(info);
  agent(pager.node()).AdoptHomePages(id, pages);
  return id;
}

MemObjectId IvySystem::CreateStripedRegion(const std::vector<StripedBacking::Stripe>& stripes,
                                           VmSize pages) {
  cluster_.AssertDriverQuiescent("IVY CreateStripedRegion from inside a shard window");
  ASVM_CHECK(!stripes.empty());
  // The stripes scale the disks; the first stripe's pager node anchors the
  // hint chains, but ownership still migrates per page like any region.
  const NodeId home = stripes[0].pager->node();
  MemObjectId id = NewObjectId(home);
  auto info = std::make_unique<IvyObjectInfo>();
  info->id = id;
  info->pages = pages;
  info->home = home;
  info->backing = std::make_unique<StripedBacking>(stripes);
  info->file_backed = true;
  directory_[id] = std::move(info);
  agent(home).AdoptHomePages(id, pages);
  return id;
}

std::shared_ptr<VmObject> IvySystem::Attach(NodeId node, const MemObjectId& id) {
  return agent(node).Attach(id);
}

Future<VmMap*> IvySystem::RemoteFork(NodeId src, VmMap& parent, NodeId dst) {
  cluster_.mutator().Arm();
  Promise<VmMap*> done(cluster_.engine_for(src));
  (void)RemoteForkTask(src, parent, dst, done);
  return done.GetFuture();
}

Task IvySystem::RemoteForkTask(NodeId src, VmMap& parent, NodeId dst, Promise<VmMap*> done) {
  Engine& engine = cluster_.engine_for(src);
  // Task creation ships the map description over NORMA.
  co_await Delay(engine, 800 * kMicrosecond);
  Promise<VmMap*> built(engine);
  VmMap* parent_ptr = &parent;
  cluster_.mutator().Enqueue(src, [this, src, parent_ptr, dst, built]() {
    built.Set(ApplyRemoteFork(src, *parent_ptr, dst));
  });
  done.Set(co_await built.GetFuture());
}

VmMap* IvySystem::ApplyRemoteFork(NodeId src, VmMap& parent, NodeId dst) {
  cluster_.stats().Add("ivy.remote_forks");

  // IVY never defined lazy-copy semantics; forks use the host kernel's
  // Mach-style internal copy pagers, exactly like the XMM backend.
  NodeVm& src_vm = cluster_.vm(src);
  VmMap* copy_map = src_vm.ForkMap(parent);

  NodeVm& dst_vm = cluster_.vm(dst);
  VmMap* child = dst_vm.CreateMap();

  for (auto& [start, copy_entry] : copy_map->entries()) {
    if (copy_entry.inheritance == Inheritance::kNone) {
      continue;
    }
    if (copy_entry.inheritance == Inheritance::kShare) {
      ASVM_CHECK_MSG(copy_entry.object->managed(),
                     "IVY cannot share anonymous memory across nodes");
      auto repr = Attach(dst, copy_entry.object->id());
      Status s = child->Map(copy_entry.start_page, copy_entry.page_count, repr,
                            copy_entry.object_offset, copy_entry.inheritance);
      ASVM_CHECK(IsOk(s));
      continue;
    }
    MemObjectId id = NewObjectId(src);
    auto info = std::make_unique<IvyObjectInfo>();
    info->id = id;
    info->pages = copy_entry.object->page_count();
    info->home = src;
    info->copy_pager_node = src;
    directory_[id] = std::move(info);

    IvyAgent::CopyPagerEntry pager_entry;
    pager_entry.copy_map = copy_map;
    pager_entry.base_page = copy_entry.start_page - copy_entry.object_offset;
    agent(src).copy_pagers_[id] = pager_entry;
    cluster_.stats().Add("ivy.internal_pagers");

    auto repr = Attach(dst, id);
    Status s = child->Map(copy_entry.start_page, copy_entry.page_count, repr,
                          copy_entry.object_offset, Inheritance::kCopy);
    ASVM_CHECK(IsOk(s));
  }
  return child;
}

size_t IvySystem::MetadataBytes(NodeId node) const {
  return agents_.at(node)->MetadataBytes();
}

// --- Failover (DESIGN.md §15) ------------------------------------------------

bool IvySystem::HarvestNewestCopy(const MemObjectId& id, PageIndex page, NodeId new_owner) {
  FaultPlan* plan = cluster_.fault_plan();
  const SimTime now = cluster_.Now();
  IvyAgent::OwnerState* st = agent(new_owner).OwnedState(id, page);
  ASVM_CHECK_MSG(st != nullptr, "harvest without an owner record");
  // Shadow stores first — the dead owner mirrored its dirty contents there.
  // Prefer the new owner's own store; after a cascade or a re-targeted stream
  // the newest entry may sit elsewhere, so every alive store is consulted and
  // consumed entries are erased everywhere.
  PageBuffer* src = nullptr;
  if (auto sit = agent(new_owner).shadow_.find(id); sit != agent(new_owner).shadow_.end()) {
    if (auto pit = sit->second.find(page); pit != sit->second.end()) {
      src = &pit->second;
    }
  }
  for (NodeId n = 0; src == nullptr && n < cluster_.node_count(); ++n) {
    if (plan != nullptr && !plan->NodeAlive(n, now)) {
      continue;
    }
    auto sit = agent(n).shadow_.find(id);
    if (sit == agent(n).shadow_.end()) {
      continue;
    }
    if (auto pit = sit->second.find(page); pit != sit->second.end()) {
      src = &pit->second;
    }
  }
  bool harvested = false;
  if (src != nullptr) {
    st->pager_copy = std::move(*src);
    harvested = true;
  }
  for (NodeId n = 0; n < cluster_.node_count(); ++n) {
    if (plan != nullptr && !plan->NodeAlive(n, now)) {
      continue;
    }
    if (auto sit = agent(n).shadow_.find(id); sit != agent(n).shadow_.end()) {
      sit->second.erase(page);
      if (sit->second.empty()) {
        agent(n).shadow_.erase(sit);
      }
    }
  }
  if (!harvested) {
    // Any surviving read copy is coherent with the last committed write
    // (writes invalidate readers first): the lowest alive holder seeds the
    // new owner's copy.
    for (NodeId n = 0; n < cluster_.node_count() && !harvested; ++n) {
      if (n == new_owner || (plan != nullptr && !plan->NodeAlive(n, now))) {
        continue;
      }
      auto rit = agent(n).reprs_.find(id);
      if (rit == agent(n).reprs_.end()) {
        continue;
      }
      if (VmPage* vp = rit->second->FindResident(page); vp != nullptr) {
        st->pager_copy = ClonePage(vp->data);
        harvested = true;
      }
    }
  }
  if (harvested) {
    cluster_.stats().Add(kStatReconstructedPages);
    cluster_.stats().Add(kStatIvyHarvestedPages);
  }
  return harvested;
}

void IvySystem::ReclaimIfOwnerDead(const MemObjectId& id, PageIndex page, NodeId requester) {
  cluster_.AssertDriverQuiescent("IVY reclaim from inside a shard window");
  IvyObjectInfo& obj = info(id);
  FaultPlan* plan = cluster_.fault_plan();
  const SimTime now = cluster_.Now();
  if (plan == nullptr || !plan->NodeAlive(requester, now)) {
    return;
  }
  // The owner is whichever node holds the page's owner record (exactly one
  // does, except when a transfer died in flight). Ascending scan: every shard
  // count resolves the same owner.
  NodeId owner = kInvalidNode;
  for (NodeId n = 0; n < cluster_.node_count(); ++n) {
    if (agent(n).Owns(id, page)) {
      owner = n;
      break;
    }
  }
  if (owner != kInvalidNode && plan->NodeAlive(owner, now)) {
    // The chain walk found a corpse along the way, not a dead owner: aim the
    // requester straight at the live owner (includes owner == requester, when
    // a straggler grant landed ownership here already).
    agent(requester).SetHint(id, page, owner);
    return;
  }
  if (owner != kInvalidNode) {
    // Owner confirmed dead: its ownership lease must expire before the page
    // can be stolen — the corpse may still think it owns the page.
    const SimTime since = plan->RemovedSince(owner, now);
    if (since < 0 || now < since + cluster_.params().failover.lease_ns) {
      return;  // lease still live; the reissued request re-walks and re-tries
    }
    cluster_.stats().Add(kStatLeaseReclaims);
    agent(requester).Trace(TraceKind::kLeaseReclaim, id, page, owner);
  }
  // Steal: the requester becomes the owner. (owner == kInvalidNode means the
  // record died in flight with a transfer — reclaim immediately; the lease
  // was the granter's to hold and the granter is gone.)
  IvyAgent& ra = agent(requester);
  IvyAgent::ObjState& ros = ra.obj_state(id);
  IvyAgent::OwnerState& st = ros.owned[page];
  st.busy = false;
  st.queue.clear();
  st.lost = false;
  st.copyset.clear();
  // Copyset rebuild: every alive kernel still holding the page is a reader.
  for (NodeId n = 0; n < cluster_.node_count(); ++n) {
    if (n == requester || !plan->NodeAlive(n, now)) {
      continue;
    }
    auto rit = agent(n).reprs_.find(id);
    if (rit != agent(n).reprs_.end() && rit->second->FindResident(page) != nullptr) {
      st.copyset.insert(n);
    }
  }
  if (!HarvestNewestCopy(id, page, requester) && st.copyset.empty() &&
      !(obj.home == requester && obj.backing != nullptr)) {
    // No replica anywhere. If some survivor witnessed the page as committed
    // (a manifest, or a primary's own ledger), the contents are provably
    // lost; otherwise the page was never written and zero-fills.
    bool committed = false;
    for (NodeId n = 0; n < cluster_.node_count() && !committed; ++n) {
      if (!plan->NodeAlive(n, now)) {
        continue;
      }
      IvyAgent& a = agent(n);
      if (auto mit = a.shadow_manifest_.find(id); mit != a.shadow_manifest_.end()) {
        committed = mit->second.count(page) != 0;
      }
      if (!committed) {
        if (auto lit = a.sent_shadow_.find(id); lit != a.sent_shadow_.end()) {
          committed = lit->second.count(page) != 0;
        }
      }
    }
    if (committed) {
      st.lost = true;
      cluster_.stats().Add(kStatLostPages);
    }
  }
  // Bury the corpse's record and chains: erase its owner record (it must not
  // resurrect ownership on a cold restart) and re-aim every survivor's hint
  // at the new owner, collapsing the dead chains in one stroke.
  if (owner != kInvalidNode) {
    if (auto oit = agent(owner).objs_.find(id); oit != agent(owner).objs_.end()) {
      oit->second->owned.erase(page);
    }
  }
  for (NodeId n = 0; n < cluster_.node_count(); ++n) {
    if (n == requester || !plan->NodeAlive(n, now)) {
      continue;
    }
    agent(n).SetHint(id, page, requester);
  }
  if (owner != kInvalidNode && owner != requester) {
    agent(owner).SetHint(id, page, requester);
  }
  // Re-home anonymous objects whose home died: the home anchors hint
  // fallbacks and the backing store, both of which are gone. The new owner
  // takes the role with fresh (empty) backing; harvested/shadowed contents
  // stand in for everything committed.
  if (!obj.file_backed && obj.home != requester && !plan->NodeAlive(obj.home, now)) {
    obj.home = requester;
    obj.backing = std::make_unique<AnonBacking>(cluster_.engine_for(requester),
                                                cluster_.default_pager(requester),
                                                NextIvyBackingKey());
  }
  ++obj.epoch;
  cluster_.stats().Add(kStatIvyOwnerReclaims);
  ra.Trace(TraceKind::kPromote, id, page, owner, static_cast<int64_t>(obj.epoch));
}

void IvySystem::ReportDeath(NodeId reporter, NodeId dead) {
  const FailoverConfig& fo = cluster_.params().failover;
  if (!fo.enabled || !fo.death_notices) {
    return;  // A/B baseline: every agent pays its own detection horizon
  }
  cluster_.mutator().Enqueue(reporter, [this, dead]() { ApplyDeathNotice(dead); });
}

void IvySystem::ApplyDeathNotice(NodeId dead) {
  cluster_.AssertDriverQuiescent("IVY death notice from inside a shard window");
  FaultPlan* plan = cluster_.fault_plan();
  const SimTime now = cluster_.Now();
  if (plan == nullptr || plan->NodeAlive(dead, now)) {
    return;  // stale notice: the victim already rejoined
  }
  if (!death_noticed_.insert(dead).second) {
    return;  // first notice wins
  }
  cluster_.stats().Add(kStatDeathNotices);
  ASVM_LOG_WARN << "ivy: death notice for node " << dead;
  for (NodeId n = 0; n < cluster_.node_count(); ++n) {
    if (n == dead || !plan->NodeAlive(n, now)) {
      continue;
    }
    IvyAgent& a = agent(n);
    // Order matters: cut the probable-owner chains through the corpse and
    // re-target any shadow stream feeding it first, so nothing computed below
    // aims at the node being buried; then fail every pending op against it
    // (cancels remaining backoff immediately — no second detection horizon).
    a.CutChains(dead);
    a.RetargetShadowStream(dead);
    a.FailOpsOnDeadTargets();
  }
}

void IvySystem::ColdRestart(NodeId node) {
  cluster_.AssertDriverQuiescent("IVY cold restart from inside a shard window");
  cluster_.stats().Add(kStatRestarts);
  IvyAgent& a = agent(node);
  NodeVm& vm = cluster_.vm(node);
  FaultPlan* plan = cluster_.fault_plan();
  const SimTime now = cluster_.Now();
  // Volatile state died with the node: every resident page of every local
  // representation (objects and pages in sorted order — shard invariance).
  std::vector<MemObjectId> ids;
  ids.reserve(a.reprs_.size());
  for (const auto& [id, repr] : a.reprs_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const MemObjectId& id : ids) {
    VmObject& repr = *a.reprs_.at(id);
    std::vector<PageIndex> pages;
    pages.reserve(repr.resident_pages().size());
    for (const auto& [page, vp] : repr.resident_pages()) {
      pages.push_back(page);
    }
    std::sort(pages.begin(), pages.end());
    for (PageIndex page : pages) {
      vm.RemovePage(repr, page);
    }
  }
  a.shadow_.clear();
  a.sent_shadow_.clear();
  a.shadow_manifest_.clear();
  a.shadow_target_ = kInvalidNode;
  death_noticed_.erase(node);
  // Hints are volatile: reset every one to the home fallback.
  ids.clear();
  ids.reserve(a.objs_.size());
  for (const auto& [id, os] : a.objs_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const MemObjectId& id : ids) {
    IvyAgent::ObjState& os = *a.objs_.at(id);
    os.hints.ForEach([](PageIndex, IvyAgent::ObjState::Hint& h) { h.owner = kInvalidNode; });
    // Pages this node still owns were untouched during the outage (any fault
    // on them would have reclaimed ownership away). The records survive but
    // their contents are volatile: re-seed from the newest surviving replica,
    // the local backing (which outlives a restart), or mark them lost.
    const IvyObjectInfo& obj = info(id);
    for (auto& [page, st] : os.owned) {
      st.busy = false;
      st.queue.clear();
      st.pager_copy = nullptr;
      st.lost = false;
      st.copyset.clear();
      for (NodeId n = 0; n < cluster_.node_count(); ++n) {
        if (n == node || (plan != nullptr && !plan->NodeAlive(n, now))) {
          continue;
        }
        auto rit = agent(n).reprs_.find(id);
        if (rit != agent(n).reprs_.end() && rit->second->FindResident(page) != nullptr) {
          st.copyset.insert(n);
        }
      }
      if (HarvestNewestCopy(id, page, node) || !st.copyset.empty() ||
          (obj.home == node && obj.backing != nullptr && obj.backing->HasData(page))) {
        continue;
      }
      bool committed = false;
      for (NodeId n = 0; n < cluster_.node_count() && !committed; ++n) {
        if (n == node || (plan != nullptr && !plan->NodeAlive(n, now))) {
          continue;
        }
        IvyAgent& peer = agent(n);
        if (auto mit = peer.shadow_manifest_.find(id); mit != peer.shadow_manifest_.end()) {
          committed = mit->second.count(page) != 0;
        }
        if (!committed) {
          if (auto lit = peer.sent_shadow_.find(id); lit != peer.sent_shadow_.end()) {
            committed = lit->second.count(page) != 0;
          }
        }
      }
      if (committed) {
        st.lost = true;
        cluster_.stats().Add(kStatLostPages);
      }
    }
  }
}

}  // namespace asvm
