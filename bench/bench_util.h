// Shared helpers for the reproduction benchmarks: canonical fault scenarios
// from the paper's §4.1 and table-formatting utilities that print measured
// values next to the paper's.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "src/core/machine.h"
#include "src/core/measure.h"

namespace asvm {

inline MachineConfig BenchConfig(DsmKind kind, int nodes) {
  MachineConfig config;
  config.nodes = nodes;
  config.dsm = kind;
  return config;
}

inline const char* DsmTag(DsmKind kind) {
  switch (kind) {
    case DsmKind::kAsvm:
      return "asvm";
    case DsmKind::kXmm:
      return "xmm";
    case DsmKind::kIvy:
      return "ivy";
  }
  return "?";
}

// Node roles in the §4.1 microbenchmarks: the pager/manager (the "XMM stack")
// lives on node 0, remote from both the faulting node and the read-copy
// holders — the paper's "general case".
inline constexpr NodeId kHomeNode = 0;
inline constexpr NodeId kCreatorNode = 1;
inline constexpr NodeId kFaultNode = 2;
inline constexpr NodeId kFirstReaderNode = 3;

// Latency of a write fault on a page with `readers` read copies.
// The creator dirties the page; `readers` distinct nodes (starting at
// kFirstReaderNode, or the faulting node itself when `faulter_has_copy`)
// acquire read copies; then the faulting node writes.
inline double WriteFaultMs(DsmKind kind, int readers, bool faulter_has_copy) {
  const int nodes = kFirstReaderNode + readers + 1;
  Machine machine(BenchConfig(kind, nodes));
  MemObjectId region = machine.CreateSharedRegion(kHomeNode, 8);

  TaskMemory& creator = machine.MapRegion(kCreatorNode, region);
  auto w = creator.WriteU64(0, 1);
  machine.Run();

  TaskMemory& faulter = machine.MapRegion(kFaultNode, region);
  int remaining = readers;
  if (faulter_has_copy && remaining > 0) {
    MeasureReadMs(machine, faulter, 0);
    --remaining;
  }
  for (int i = 0; i < remaining; ++i) {
    TaskMemory& reader = machine.MapRegion(kFirstReaderNode + i, region);
    MeasureReadMs(machine, reader, 0);
  }
  return MeasureWriteMs(machine, faulter, 0, 2);
}

// Latency of a read fault after the creator dirtied the page and
// `prior_readers` other nodes already read it.
inline double ReadFaultMs(DsmKind kind, int prior_readers) {
  const int nodes = kFirstReaderNode + prior_readers + 1;
  Machine machine(BenchConfig(kind, nodes));
  MemObjectId region = machine.CreateSharedRegion(kHomeNode, 8);

  TaskMemory& creator = machine.MapRegion(kCreatorNode, region);
  auto w = creator.WriteU64(0, 1);
  machine.Run();

  for (int i = 0; i < prior_readers; ++i) {
    TaskMemory& reader = machine.MapRegion(kFirstReaderNode + i, region);
    MeasureReadMs(machine, reader, 0);
  }
  TaskMemory& faulter = machine.MapRegion(kFaultNode, region);
  return MeasureReadMs(machine, faulter, 0);
}

// --- Output formatting ---------------------------------------------------------

inline void PrintHeader(const std::string& title) {
  std::printf("\n%s\n", title.c_str());
  for (size_t i = 0; i < title.size(); ++i) {
    std::printf("=");
  }
  std::printf("\n");
}

struct PaperRow {
  std::string label;
  double paper_asvm;
  double paper_xmm;
  double measured_asvm;
  double measured_xmm;
  // The paper only benchmarks its own two protocols, so the IVY column is
  // measured-only — no paper reference to print or diff against.
  double measured_ivy;
};

inline void PrintComparison(const std::vector<PaperRow>& rows, const char* unit) {
  std::printf("%-58s %10s %10s %10s %12s %12s\n", "", "ASVM", "XMM", "IVY", "ASVM(paper)",
              "XMM(paper)");
  for (const auto& row : rows) {
    std::printf("%-58s %9.2f%s %9.2f%s %9.2f%s %11.2f%s %11.2f%s\n", row.label.c_str(),
                row.measured_asvm, unit, row.measured_xmm, unit, row.measured_ivy, unit,
                row.paper_asvm, unit, row.paper_xmm, unit);
  }
}

// --- Machine-readable output (--json=FILE) -------------------------------------
//
// Every bench binary accepts --json=FILE and writes its measurements as one
// flat metric map, deterministic across runs (insertion order, fixed float
// formatting), so scripts/bench_report.sh can merge the files and diff them
// against a checked-in baseline. Metrics carry the paper's reference value
// where the paper states one.
class BenchJson {
 public:
  BenchJson(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--json=", 7) == 0) {
        path_ = argv[i] + 7;
      }
    }
  }

  static constexpr double kNoPaperRef = std::numeric_limits<double>::quiet_NaN();

  void Metric(const std::string& name, double value, double paper_ref = kNoPaperRef) {
    metrics_.push_back({name, value, paper_ref});
  }

  // All the PaperRow fields of a comparison table in one call.
  void Row(const std::string& key, const PaperRow& row) {
    Metric(key + ".asvm", row.measured_asvm, row.paper_asvm);
    Metric(key + ".xmm", row.measured_xmm, row.paper_xmm);
    Metric(key + ".ivy", row.measured_ivy);
  }

  // Writes the file when --json=FILE was given; returns false on I/O failure.
  bool Write(const char* bench_name) const {
    if (path_.empty()) {
      return true;
    }
    std::string out = "{\n  \"bench\": \"";
    out += bench_name;
    out += "\",\n  \"metrics\": {";
    for (size_t i = 0; i < metrics_.size(); ++i) {
      const Entry& e = metrics_[i];
      char buf[160];
      std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": {\"value\": %.6g",
                    i == 0 ? "" : ",", e.name.c_str(), e.value);
      out += buf;
      if (!std::isnan(e.paper)) {
        std::snprintf(buf, sizeof(buf), ", \"paper\": %.6g", e.paper);
        out += buf;
      }
      out += "}";
    }
    out += "\n  }\n}\n";
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot write %s\n", path_.c_str());
      return false;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    return true;
  }

 private:
  struct Entry {
    std::string name;
    double value;
    double paper;
  };
  std::string path_;
  std::vector<Entry> metrics_;
};

}  // namespace asvm

#endif  // BENCH_BENCH_UTIL_H_
