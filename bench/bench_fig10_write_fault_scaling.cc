// Reproduces Figure 10: write page-fault latency as a function of the number
// of nodes holding read copies, for the plain write fault and the write
// upgrade fault (faulting node already has a copy), under ASVM and XMM.
#include <cstdio>

#include "bench/bench_util.h"

namespace asvm {
namespace {

void RunFig10() {
  PrintHeader("Figure 10: Write fault latency vs. number of read copies (ms)");
  std::printf("%8s %14s %14s %14s %14s\n", "readers", "ASVM-write", "ASVM-upgrade",
              "XMM-write", "XMM-upgrade");
  for (int readers : {1, 2, 4, 8, 16, 32, 48, 64}) {
    const double asvm_write = WriteFaultMs(DsmKind::kAsvm, readers, false);
    const double asvm_up = WriteFaultMs(DsmKind::kAsvm, readers, true);
    const double xmm_write = WriteFaultMs(DsmKind::kXmm, readers, false);
    const double xmm_up = WriteFaultMs(DsmKind::kXmm, readers, true);
    std::printf("%8d %14.2f %14.2f %14.2f %14.2f\n", readers, asvm_write, asvm_up, xmm_write,
                xmm_up);
  }
  std::printf(
      "\nPaper anchors: ASVM write 2.24 ms @1 -> 8.96 ms @64 (slope ~0.09 ms/reader);\n"
      "               XMM  write 12.92 ms @2 -> 72.18 ms @64 (slope ~0.96 ms/reader).\n");
}

}  // namespace
}  // namespace asvm

int main() {
  asvm::RunFig10();
  return 0;
}
