// Reproduces Figure 10: write page-fault latency as a function of the number
// of nodes holding read copies, for the plain write fault and the write
// upgrade fault (faulting node already has a copy), under ASVM and XMM.
#include <cstdio>

#include "bench/bench_util.h"

namespace asvm {
namespace {

void RunFig10(BenchJson& json) {
  PrintHeader("Figure 10: Write fault latency vs. number of read copies (ms)");
  std::printf("%8s %14s %14s %14s %14s\n", "readers", "ASVM-write", "ASVM-upgrade",
              "XMM-write", "XMM-upgrade");
  // The paper states point values only at the curve ends (its Table 1 rows).
  auto paper_ref = [](int readers, double at1_or_2, double at64,
                      int low) -> double {
    if (readers == low) return at1_or_2;
    if (readers == 64) return at64;
    return BenchJson::kNoPaperRef;
  };
  for (int readers : {1, 2, 4, 8, 16, 32, 48, 64}) {
    const double asvm_write = WriteFaultMs(DsmKind::kAsvm, readers, false);
    const double asvm_up = WriteFaultMs(DsmKind::kAsvm, readers, true);
    const double xmm_write = WriteFaultMs(DsmKind::kXmm, readers, false);
    const double xmm_up = WriteFaultMs(DsmKind::kXmm, readers, true);
    std::printf("%8d %14.2f %14.2f %14.2f %14.2f\n", readers, asvm_write, asvm_up, xmm_write,
                xmm_up);
    const std::string suffix = ".r" + std::to_string(readers);
    json.Metric("write_ms.asvm" + suffix, asvm_write, paper_ref(readers, 2.24, 8.96, 1));
    json.Metric("upgrade_ms.asvm" + suffix, asvm_up, paper_ref(readers, 1.51, 7.75, 2));
    json.Metric("write_ms.xmm" + suffix, xmm_write, paper_ref(readers, 12.92, 72.18, 2));
    json.Metric("upgrade_ms.xmm" + suffix, xmm_up, paper_ref(readers, 3.83, 63.72, 2));
  }
  std::printf(
      "\nPaper anchors: ASVM write 2.24 ms @1 -> 8.96 ms @64 (slope ~0.09 ms/reader);\n"
      "               XMM  write 12.92 ms @2 -> 72.18 ms @64 (slope ~0.96 ms/reader).\n");
}

}  // namespace
}  // namespace asvm

int main(int argc, char** argv) {
  asvm::BenchJson json(argc, argv);
  asvm::RunFig10(json);
  return json.Write("fig10_write_fault_scaling") ? 0 : 1;
}
