// Reproduces Figure 10: write page-fault latency as a function of the number
// of nodes holding read copies, for the plain write fault and the write
// upgrade fault (faulting node already has a copy), under ASVM and XMM.
#include <cstdio>

#include "bench/bench_util.h"

namespace asvm {
namespace {

void RunFig10(BenchJson& json) {
  PrintHeader("Figure 10: Write fault latency vs. number of read copies (ms)");
  std::printf("%8s %14s %14s %14s %14s %14s %14s\n", "readers", "ASVM-write",
              "ASVM-upgrade", "XMM-write", "XMM-upgrade", "IVY-write", "IVY-upgrade");
  // The paper states point values only at the curve ends (its Table 1 rows).
  auto paper_ref = [](int readers, double at1_or_2, double at64,
                      int low) -> double {
    if (readers == low) return at1_or_2;
    if (readers == 64) return at64;
    return BenchJson::kNoPaperRef;
  };
  for (int readers : {1, 2, 4, 8, 16, 32, 48, 64}) {
    const double asvm_write = WriteFaultMs(DsmKind::kAsvm, readers, false);
    const double asvm_up = WriteFaultMs(DsmKind::kAsvm, readers, true);
    const double xmm_write = WriteFaultMs(DsmKind::kXmm, readers, false);
    const double xmm_up = WriteFaultMs(DsmKind::kXmm, readers, true);
    const double ivy_write = WriteFaultMs(DsmKind::kIvy, readers, false);
    const double ivy_up = WriteFaultMs(DsmKind::kIvy, readers, true);
    std::printf("%8d %14.2f %14.2f %14.2f %14.2f %14.2f %14.2f\n", readers, asvm_write,
                asvm_up, xmm_write, xmm_up, ivy_write, ivy_up);
    const std::string suffix = ".r" + std::to_string(readers);
    json.Metric("write_ms.asvm" + suffix, asvm_write, paper_ref(readers, 2.24, 8.96, 1));
    json.Metric("upgrade_ms.asvm" + suffix, asvm_up, paper_ref(readers, 1.51, 7.75, 2));
    json.Metric("write_ms.xmm" + suffix, xmm_write, paper_ref(readers, 12.92, 72.18, 2));
    json.Metric("upgrade_ms.xmm" + suffix, xmm_up, paper_ref(readers, 3.83, 63.72, 2));
    // Measured-only: the paper has no IVY column to anchor against.
    json.Metric("write_ms.ivy" + suffix, ivy_write);
    json.Metric("upgrade_ms.ivy" + suffix, ivy_up);
  }
  std::printf(
      "\nPaper anchors: ASVM write 2.24 ms @1 -> 8.96 ms @64 (slope ~0.09 ms/reader);\n"
      "               XMM  write 12.92 ms @2 -> 72.18 ms @64 (slope ~0.96 ms/reader).\n");
}

// Write-fault latency at paper-size meshes: the same 64-reader invalidation,
// but with the readers strided across a 16x16 / 32x32 mesh (plus a 1792-node
// smoke — the largest Paragon installation) instead of packed into one
// corner. Longer mesh routes stretch each invalidation round-trip; the
// interesting output is how gently the latency grows with machine size.
double MeshWriteFaultMs(DsmKind kind, int nodes, int readers) {
  Machine machine(BenchConfig(kind, nodes));
  MemObjectId region = machine.CreateSharedRegion(kHomeNode, 8);

  TaskMemory& creator = machine.MapRegion(kCreatorNode, region);
  auto w = creator.WriteU64(0, 1);
  machine.Run();

  TaskMemory& faulter = machine.MapRegion(kFaultNode, region);
  // Readers strided over the whole mesh, skipping the reserved role nodes.
  const int stride = (nodes - kFirstReaderNode) / readers;
  for (int i = 0; i < readers; ++i) {
    TaskMemory& reader =
        machine.MapRegion(static_cast<NodeId>(kFirstReaderNode + i * stride), region);
    MeasureReadMs(machine, reader, 0);
  }
  return MeasureWriteMs(machine, faulter, 0, 2);
}

// Distance in isolation: one reader parked in the far corner of the mesh, so
// nothing serializes and the only size-dependent term is the wormhole route.
double FarReaderWriteFaultMs(DsmKind kind, int nodes) {
  Machine machine(BenchConfig(kind, nodes));
  MemObjectId region = machine.CreateSharedRegion(kHomeNode, 8);
  TaskMemory& creator = machine.MapRegion(kCreatorNode, region);
  auto w = creator.WriteU64(0, 1);
  machine.Run();
  TaskMemory& faulter = machine.MapRegion(kFaultNode, region);
  TaskMemory& reader = machine.MapRegion(static_cast<NodeId>(nodes - 1), region);
  MeasureReadMs(machine, reader, 0);
  return MeasureWriteMs(machine, faulter, 0, 2);
}

void RunMeshScaling(BenchJson& json) {
  PrintHeader("Mesh scaling: write fault latency vs. machine size (ms)");
  std::printf("%8s %8s %14s %14s %14s %16s\n", "mesh", "nodes", "ASVM-48rdr", "XMM-48rdr",
              "IVY-48rdr", "ASVM-far-reader");
  for (int nodes : {64, 256, 1024}) {
    const double asvm_ms = MeshWriteFaultMs(DsmKind::kAsvm, nodes, 48);
    const double xmm_ms = MeshWriteFaultMs(DsmKind::kXmm, nodes, 48);
    const double ivy_ms = MeshWriteFaultMs(DsmKind::kIvy, nodes, 48);
    const double far_ms = FarReaderWriteFaultMs(DsmKind::kAsvm, nodes);
    const int side = static_cast<int>(std::sqrt(static_cast<double>(nodes)));
    std::printf("%5dx%-2d %8d %14.4f %14.4f %14.4f %16.4f\n", side, side, nodes, asvm_ms,
                xmm_ms, ivy_ms, far_ms);
    const std::string suffix = ".n" + std::to_string(nodes);
    json.Metric("mesh_write_ms.asvm" + suffix, asvm_ms);
    json.Metric("mesh_write_ms.xmm" + suffix, xmm_ms);
    json.Metric("mesh_write_ms.ivy" + suffix, ivy_ms);
    json.Metric("mesh_far_write_ms.asvm" + suffix, far_ms);
  }
  // 1792 nodes: the full-size Paragon XP/S-140 at ORNL. A smoke, not a
  // sweep — the machine must construct and serve the fault in bounded time.
  const double smoke_ms = MeshWriteFaultMs(DsmKind::kAsvm, 1792, 48);
  std::printf("%8s %8d %14.4f %14s %14s %16.4f\n", "smoke", 1792, smoke_ms, "-", "-",
              FarReaderWriteFaultMs(DsmKind::kAsvm, 1792));
  json.Metric("mesh_write_ms.asvm.n1792", smoke_ms);
  std::printf(
      "\nThe 48-reader columns are flat: invalidation fan-out and ack fan-in\n"
      "serialize at the endpoints, so mesh distance vanishes from the critical\n"
      "path — fault latency is location-independent at paper scale. The\n"
      "far-reader column isolates pure wormhole distance (per-hop ns).\n");
}

}  // namespace
}  // namespace asvm

int main(int argc, char** argv) {
  asvm::BenchJson json(argc, argv);
  asvm::RunFig10(json);
  asvm::RunMeshScaling(json);
  return json.Write("fig10_write_fault_scaling") ? 0 : 1;
}
