// Reproduces Table 1 of the paper: characteristic SVM page-fault latencies
// under ASVM and NMK13 XMM, measured from user-task context (milliseconds).
#include "bench/bench_util.h"

namespace asvm {
namespace {

void RunTable1(BenchJson& json) {
  PrintHeader("Table 1: Page Fault Latencies (ms)");

  std::vector<PaperRow> rows;

  // "1 read copy" = only the creator's (still dirty) copy exists; XMM pays
  // the first-remote-request write to paging space here. The IVY column is
  // this repo's dynamic-distributed-manager backend — the paper has no
  // reference numbers for it, only our measured timeline.
  rows.push_back({"Write fault on a page with 1 read copy", 2.24, 38.42,
                  WriteFaultMs(DsmKind::kAsvm, 0, false),
                  WriteFaultMs(DsmKind::kXmm, 0, false),
                  WriteFaultMs(DsmKind::kIvy, 0, false)});
  rows.push_back({"Write fault on a page with 2 read copies", 3.10, 12.92,
                  WriteFaultMs(DsmKind::kAsvm, 2, false),
                  WriteFaultMs(DsmKind::kXmm, 2, false),
                  WriteFaultMs(DsmKind::kIvy, 2, false)});
  rows.push_back({"Write fault on a page with 64 read copies", 8.96, 72.18,
                  WriteFaultMs(DsmKind::kAsvm, 64, false),
                  WriteFaultMs(DsmKind::kXmm, 64, false),
                  WriteFaultMs(DsmKind::kIvy, 64, false)});
  rows.push_back({"Write fault, 2 read copies, faulting node has read copy", 1.51, 3.83,
                  WriteFaultMs(DsmKind::kAsvm, 2, true),
                  WriteFaultMs(DsmKind::kXmm, 2, true),
                  WriteFaultMs(DsmKind::kIvy, 2, true)});
  rows.push_back({"Write fault, 64 read copies, faulting node has read copy", 7.75, 63.72,
                  WriteFaultMs(DsmKind::kAsvm, 64, true),
                  WriteFaultMs(DsmKind::kXmm, 64, true),
                  WriteFaultMs(DsmKind::kIvy, 64, true)});
  rows.push_back({"Read fault, faulting node is first reader", 2.35, 38.59,
                  ReadFaultMs(DsmKind::kAsvm, 0), ReadFaultMs(DsmKind::kXmm, 0),
                  ReadFaultMs(DsmKind::kIvy, 0)});
  rows.push_back({"Read fault, faulting node is second reader", 2.35, 10.06,
                  ReadFaultMs(DsmKind::kAsvm, 1), ReadFaultMs(DsmKind::kXmm, 1),
                  ReadFaultMs(DsmKind::kIvy, 1)});

  PrintComparison(rows, "");

  const char* keys[] = {"write_1copy_ms",   "write_2copies_ms", "write_64copies_ms",
                        "upgrade_2copies_ms", "upgrade_64copies_ms",
                        "read_first_ms",    "read_second_ms"};
  for (size_t i = 0; i < rows.size(); ++i) {
    json.Row(keys[i], rows[i]);
  }
}

}  // namespace
}  // namespace asvm

int main(int argc, char** argv) {
  asvm::BenchJson json(argc, argv);
  asvm::RunTable1(json);
  return json.Write("table1_fault_latency") ? 0 : 1;
}
