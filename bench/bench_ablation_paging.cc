// Ablation A3 (§3.6): internode paging on/off. With it, an SVM region larger
// than one node's memory spills into the other nodes' memories and re-faults
// at interconnect speed; without it every eviction goes to the paging disk.
#include <cstdio>

#include "bench/bench_util.h"

namespace asvm {
namespace {

struct PagingResult {
  double fill_seconds;     // initialize a region 2x one node's memory
  double refault_ms;       // mean latency of re-reading evicted pages
  int64_t disk_ops;
  int64_t page_transfers;  // internode transfers + ownership handoffs
};

PagingResult RunConfig(bool internode_paging) {
  MachineConfig config = BenchConfig(DsmKind::kAsvm, 8);
  config.asvm.internode_paging = internode_paging;
  config.user_memory_bytes = 2 * 1024 * 1024;  // small nodes: 256 frames
  Machine machine(config);

  const VmSize pages = 512;  // 4 MB region vs 2 MB node memory
  MemObjectId region = machine.CreateSharedRegion(0, pages);
  // The region is an SVM segment mapped by tasks on every node; node 1 is
  // the one initializing it (the §3.6 load-balancing scenario).
  for (NodeId n = 2; n < machine.nodes(); ++n) {
    machine.MapRegion(n, region);
  }
  TaskMemory& writer = machine.MapRegion(1, region);

  const SimTime start = machine.Now();
  for (VmSize p = 0; p < pages; ++p) {
    auto w = writer.WriteU64(p * 8192, p + 1);
    machine.Run();
  }
  const double fill = ToSeconds(machine.Now() - start);

  // Re-read the early pages (long since evicted from node 1).
  double refault = 0;
  const int probes = 64;
  for (int p = 0; p < probes; ++p) {
    uint64_t v = 0;
    refault += MeasureReadMs(machine, writer, static_cast<VmOffset>(p) * 8192, &v);
    if (v != static_cast<uint64_t>(p) + 1) {
      std::printf("  !! data corruption at page %d\n", p);
    }
  }

  PagingResult result;
  result.fill_seconds = fill;
  result.refault_ms = refault / probes;
  result.disk_ops = machine.stats().Get("disk.reads") + machine.stats().Get("disk.writes");
  result.page_transfers = machine.stats().Get("asvm.evict_page_transfers") +
                          machine.stats().Get("asvm.evict_ownership_transfers");
  return result;
}

void RunAblation(BenchJson& json) {
  PrintHeader("Ablation A3: internode paging (8 nodes x 2 MB, 4 MB SVM region)");
  std::printf("%-24s %12s %12s %10s %12s\n", "configuration", "fill (s)", "refault(ms)",
              "disk ops", "transfers");
  PagingResult with = RunConfig(true);
  PagingResult without = RunConfig(false);
  for (const auto& [key, r] : {std::pair<const char*, const PagingResult&>{"on", with},
                               {"off", without}}) {
    json.Metric(std::string("fill_s.") + key, r.fill_seconds);
    json.Metric(std::string("refault_ms.") + key, r.refault_ms);
    json.Metric(std::string("disk_ops.") + key, static_cast<double>(r.disk_ops));
    json.Metric(std::string("transfers.") + key, static_cast<double>(r.page_transfers));
  }
  std::printf("%-24s %12.3f %12.2f %10lld %12lld\n", "internode paging ON", with.fill_seconds,
              with.refault_ms, static_cast<long long>(with.disk_ops),
              static_cast<long long>(with.page_transfers));
  std::printf("%-24s %12.3f %12.2f %10lld %12lld\n", "internode paging OFF",
              without.fill_seconds, without.refault_ms,
              static_cast<long long>(without.disk_ops),
              static_cast<long long>(without.page_transfers));
  std::printf(
      "\nWith internode paging the cluster's combined memory caches the\n"
      "region: evictions become cheap transfers and re-faults are served\n"
      "from a neighbour's memory instead of the paging disk (§3.6, §5).\n");
}

}  // namespace
}  // namespace asvm

int main(int argc, char** argv) {
  asvm::BenchJson json(argc, argv);
  asvm::RunAblation(json);
  return json.Write("ablation_paging") ? 0 : 1;
}
