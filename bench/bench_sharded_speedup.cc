// Parallel-simulation speedup: a concurrent write-fault storm on a 32x32 mesh
// (the Figure 10 sweep's large configuration), run at --shards = 1, 2, 4, 8.
//
// The Table 1 / Figure 10 microbenchmarks are deliberately sequential — one
// measured fault at a time — so they cannot exercise the sharded core. This
// storm is the opposite shape: half the mesh writes concurrently, each writer
// to its own region homed across the mesh, every operation in flight before
// the single drain. That is the workload class sharding exists for, and the
// one scripts/bench_report.sh gates (>= 1.5x wall clock at 4 shards).
//
// The storm also recomputes the timeline digest per shard count: the speedup
// only counts because the sharded timelines are byte-identical to shards=1
// (sharded.digest_match must be 1).
//
// A second sweep runs every CLI workload (em3d, sor, file-read, file-write,
// fork-chain) at bench scale on a 128-node machine, shards 1 vs 4. These
// shapes are not queue-bound the way the storm is — the report gates only
// their digest identity (wl_<name>.<dsm>.digest_match), while their
// shards4.speedup columns document where windowed parallelism pays off and
// where barrier overhead dominates.
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/sor.h"
#include "src/core/machine.h"
#include "src/core/measure.h"
#include "src/em3d/em3d.h"
#include "src/mappedfs/file_bench.h"

namespace asvm {
namespace {

constexpr size_t kPage = 8192;

// One sweep configuration: every node writes `pages` pages of its own region,
// homed at the diagonally-opposite node.
struct StormShape {
  const char* name;
  int nodes;
  int pages;
};
// 32x32 is the Figure 10 large mesh; 1792 is the paper's full-machine scale
// (its Paragon had 1792 usable nodes), run with fewer pages per writer so the
// sweep stays a smoke, not a soak.
constexpr StormShape kShapes[] = {{"storm", 1024, 16}, {"storm1792", 1792, 4}};

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

struct StormResult {
  uint64_t digest = 14695981039346656037ULL;
  double drain_seconds = 0;  // host wall clock of the single Run()
  int64_t windows = 0;       // barrier windows the drain took (0 when shards=1)
  int64_t replayed = 0;      // mailbox records replayed at barriers
  // IVY only: the longest probable-owner chain any request walked, and how
  // many requests hit the hop ceiling and were dropped. The report gates both
  // — a chain that grows with the mesh means path compression stopped
  // working, and a dropped forward means a request orbited a hint cycle.
  double ivy_chain_max = 0;
  int64_t ivy_dropped = 0;
};

StormResult RunStorm(const StormShape& shape, DsmKind kind, int shards) {
  MachineConfig config;
  config.nodes = shape.nodes;
  config.dsm = kind;
  config.shards = shards;
  Machine machine(config);
  machine.cluster().set_event_limit(50'000'000);

  // Every fault crosses the mesh, and with block-contiguous sharding most
  // cross shard boundaries. All faults are launched before the single drain,
  // so the whole storm is in flight at once: dense per-window work is what
  // the worker threads parallelize.
  const int writers = shape.nodes;
  std::vector<TaskMemory*> mems;
  mems.reserve(writers);
  for (int w = 0; w < writers; ++w) {
    const NodeId writer = static_cast<NodeId>(w);
    const NodeId home = static_cast<NodeId>((w + shape.nodes / 2) % shape.nodes);
    MemObjectId region = machine.CreateSharedRegion(home, shape.pages);
    mems.push_back(&machine.MapRegion(writer, region));
  }

  std::vector<Future<Status>> writes;
  writes.reserve(static_cast<size_t>(writers) * shape.pages);
  for (int w = 0; w < writers; ++w) {
    for (int p = 0; p < shape.pages; ++p) {
      writes.push_back(
          mems[w]->WriteU64(static_cast<VmOffset>(p) * kPage,
                            static_cast<uint64_t>(w) * 1000 + static_cast<uint64_t>(p)));
    }
  }
  const auto start = std::chrono::steady_clock::now();
  machine.Run();
  const auto end = std::chrono::steady_clock::now();

  StormResult result;
  result.drain_seconds = std::chrono::duration<double>(end - start).count();
  for (const auto& w : writes) {
    result.digest = Fnv1a(result.digest, w.ready() && IsOk(w.value()) ? 1 : 0);
  }
  result.digest = Fnv1a(result.digest, static_cast<uint64_t>(machine.Now()));
  result.digest = Fnv1a(result.digest, static_cast<uint64_t>(machine.stats().Get("mesh.messages")));
  result.digest = Fnv1a(result.digest, static_cast<uint64_t>(machine.stats().Get("mesh.bytes")));
  result.digest = Fnv1a(result.digest, static_cast<uint64_t>(machine.stats().Get("vm.faults")));
  result.windows = machine.stats().Get("sim.sharded.windows");
  result.replayed = machine.stats().Get("sim.sharded.records_replayed");
  if (kind == DsmKind::kIvy) {
    const Histogram* chains = machine.stats().FindHistogram("dsm.ivy.chain_length");
    result.ivy_chain_max = chains != nullptr && chains->count() > 0 ? chains->max() : 0;
    result.ivy_dropped = machine.stats().Get("dsm.ivy.dropped_forwards");
  }
  return result;
}

void RunSweep(BenchJson& json) {
  for (const StormShape& shape : kShapes) {
    char title[96];
    std::snprintf(title, sizeof(title),
                  "Sharded write-fault storm, %d nodes (%d writers x %d pages)", shape.nodes,
                  shape.nodes, shape.pages);
    PrintHeader(title);
    std::printf("%-8s %-8s %14s %10s %10s\n", "dsm", "shards", "drain (host s)", "speedup",
                "digest");
    for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm, DsmKind::kIvy}) {
      const char* tag = DsmTag(kind);
      double base_seconds = 0;
      uint64_t base_digest = 0;
      bool digests_match = true;
      for (int shards : {1, 2, 4, 8}) {
        const StormResult r = RunStorm(shape, kind, shards);
        if (shards == 1) {
          base_seconds = r.drain_seconds;
          base_digest = r.digest;
          if (kind == DsmKind::kIvy) {
            // Sharding cannot change these (the digest gate proves the
            // timeline is identical), so the shards=1 run speaks for all.
            char name[64];
            std::snprintf(name, sizeof(name), "%s.ivy.chain_length_max", shape.name);
            json.Metric(name, r.ivy_chain_max);
            std::snprintf(name, sizeof(name), "%s.ivy.dropped_forwards", shape.name);
            json.Metric(name, static_cast<double>(r.ivy_dropped));
            std::printf("%-8s chain_length_max=%.0f dropped_forwards=%lld\n", tag,
                        r.ivy_chain_max, static_cast<long long>(r.ivy_dropped));
          }
        }
        digests_match = digests_match && r.digest == base_digest;
        const double speedup = r.drain_seconds > 0 ? base_seconds / r.drain_seconds : 0;
        std::printf("%-8s %-8d %14.3f %9.2fx %10s  (%lld windows, %lld replayed)\n", tag,
                    shards, r.drain_seconds, speedup,
                    r.digest == base_digest ? "match" : "DIVERGED",
                    static_cast<long long>(r.windows), static_cast<long long>(r.replayed));
        char name[64];
        std::snprintf(name, sizeof(name), "%s.%s.shards%d.seconds", shape.name, tag, shards);
        json.Metric(name, r.drain_seconds);
        if (shards > 1) {
          std::snprintf(name, sizeof(name), "%s.%s.shards%d.speedup", shape.name, tag, shards);
          json.Metric(name, speedup);
        }
      }
      char name[64];
      std::snprintf(name, sizeof(name), "%s.%s.digest_match", shape.name, tag);
      json.Metric(name, digests_match ? 1 : 0);
    }
  }
}

// --- Per-workload sweep ----------------------------------------------------
//
// The whole-workload shapes from tests/sharded_determinism_test.cc, scaled to
// a 128-node machine (4 io-group blocks at the default group size, so 4 real
// shards). The digest folds the workload's own observable results plus the
// machine clock and traffic counters — equality with shards=1 means the
// sharded run is indistinguishable, not merely "close".

struct WorkloadResult {
  uint64_t digest = 14695981039346656037ULL;
  double drain_seconds = 0;  // host wall clock of the workload's drains
  // IVY only (see StormResult): the workloads here actually migrate ownership
  // around the mesh, so — unlike the storm, where every request lands on the
  // home in zero hops — these are the shapes whose chains the report's
  // bounded-chain gate has teeth on.
  double ivy_chain_max = 0;
  int64_t ivy_dropped = 0;
};

constexpr int kWlNodes = 128;  // default nodes_per_io_group=32 -> 4 blocks

WorkloadResult RunWorkload(const std::string& workload, DsmKind kind, int shards) {
  MachineConfig config;
  config.nodes = kWlNodes;
  config.dsm = kind;
  config.shards = shards;
  Machine machine(config);
  machine.cluster().set_event_limit(100'000'000);

  WorkloadResult result;
  uint64_t& digest = result.digest;
  const auto start = std::chrono::steady_clock::now();
  if (workload == "em3d") {
    Em3dParams params;
    params.cells = 16384;
    params.iterations = 3;
    Em3dResult r = RunEm3dTimed(machine, params, kWlNodes, /*measure_iters=*/3);
    digest = Fnv1a(digest, std::bit_cast<uint64_t>(r.seconds));
    digest = Fnv1a(digest, static_cast<uint64_t>(r.faults));
  } else if (workload == "sor") {
    SorParams params;
    params.rows = 256;
    params.cols = 256;
    params.iterations = 3;
    SorResult r = RunSorTimed(machine, params, kWlNodes, /*measure_iters=*/3);
    digest = Fnv1a(digest, std::bit_cast<uint64_t>(r.seconds));
    digest = Fnv1a(digest, static_cast<uint64_t>(r.faults));
  } else if (workload == "file-read" || workload == "file-write") {
    const bool write = workload == "file-write";
    const VmSize pages = 381;  // 3 pages per compute node (127 nodes, node 0 is I/O)
    MemObjectId region;
    if (write) {
      region = machine.CreateMappedFile("t", pages, /*prefilled=*/false);
    } else {
      int32_t file_id = machine.cluster().file_pager().CreateFile("t", pages, true);
      region = machine.dsm().CreateFileRegion(file_id, pages);
    }
    FileBenchResult r =
        write ? RunParallelFileWrite(machine, region, pages, kWlNodes - 1, /*first_node=*/1)
              : RunParallelFileRead(machine, region, pages, kWlNodes - 1, /*first_node=*/1);
    for (double secs : r.node_seconds) {
      digest = Fnv1a(digest, std::bit_cast<uint64_t>(secs));
    }
    digest = Fnv1a(digest, std::bit_cast<uint64_t>(r.makespan_seconds));
  } else if (workload == "fork-chain") {
    constexpr int kChain = 12;
    constexpr VmOffset kPages = 8;
    TaskMemory& origin = machine.CreatePrivateTask(0, kPages);
    for (VmOffset p = 0; p < kPages; ++p) {
      auto w = origin.WriteU64(p * machine.page_size(), 500 + p);
      machine.Run();
      digest = Fnv1a(digest, w.ready() && IsOk(w.value()) ? 1 : 0);
    }
    TaskMemory* current = &origin;
    for (int hop = 1; hop <= kChain; ++hop) {
      // Hop across io-group blocks so the fork directory writes cross shards.
      const NodeId src = static_cast<NodeId>(((hop - 1) * 11) % kWlNodes);
      const NodeId dst = static_cast<NodeId>((hop * 11) % kWlNodes);
      auto fork = machine.RemoteFork(src, *current, dst);
      machine.Run();
      current = &machine.WrapMap(dst, fork.value());
    }
    for (VmOffset p = 0; p < kPages; ++p) {
      uint64_t v = 0;
      const double ms = MeasureReadMs(machine, *current, p * machine.page_size(), &v);
      digest = Fnv1a(digest, v);
      digest = Fnv1a(digest, std::bit_cast<uint64_t>(ms));
    }
  }
  const auto end = std::chrono::steady_clock::now();
  result.drain_seconds = std::chrono::duration<double>(end - start).count();

  digest = Fnv1a(digest, static_cast<uint64_t>(machine.Now()));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("mesh.messages")));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("mesh.bytes")));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("vm.faults")));
  if (kind == DsmKind::kIvy) {
    const Histogram* chains = machine.stats().FindHistogram("dsm.ivy.chain_length");
    result.ivy_chain_max = chains != nullptr && chains->count() > 0 ? chains->max() : 0;
    result.ivy_dropped = machine.stats().Get("dsm.ivy.dropped_forwards");
  }
  return result;
}

void RunWorkloadSweep(BenchJson& json) {
  constexpr const char* kWorkloads[] = {"em3d", "sor", "file-read", "file-write",
                                        "fork-chain"};
  char title[96];
  std::snprintf(title, sizeof(title),
                "Per-workload sharded speedup, %d nodes (shards 1 vs 4)", kWlNodes);
  PrintHeader(title);
  std::printf("%-12s %-8s %-8s %14s %10s %10s\n", "workload", "dsm", "shards",
              "drain (host s)", "speedup", "digest");
  for (const char* workload : kWorkloads) {
    for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm, DsmKind::kIvy}) {
      const char* tag = DsmTag(kind);
      const WorkloadResult base = RunWorkload(workload, kind, 1);
      const WorkloadResult sharded = RunWorkload(workload, kind, 4);
      const bool match = sharded.digest == base.digest;
      const double speedup =
          sharded.drain_seconds > 0 ? base.drain_seconds / sharded.drain_seconds : 0;
      std::printf("%-12s %-8s %-8d %14.3f %10s %10s\n", workload, tag, 1,
                  base.drain_seconds, "", "");
      std::printf("%-12s %-8s %-8d %14.3f %9.2fx %10s\n", workload, tag, 4,
                  sharded.drain_seconds, speedup, match ? "match" : "DIVERGED");
      char name[64];
      std::snprintf(name, sizeof(name), "wl_%s.%s.shards1.seconds", workload, tag);
      json.Metric(name, base.drain_seconds);
      std::snprintf(name, sizeof(name), "wl_%s.%s.shards4.seconds", workload, tag);
      json.Metric(name, sharded.drain_seconds);
      std::snprintf(name, sizeof(name), "wl_%s.%s.shards4.speedup", workload, tag);
      json.Metric(name, speedup);
      std::snprintf(name, sizeof(name), "wl_%s.%s.digest_match", workload, tag);
      json.Metric(name, match ? 1 : 0);
      if (kind == DsmKind::kIvy) {
        std::snprintf(name, sizeof(name), "wl_%s.ivy.chain_length_max", workload);
        json.Metric(name, base.ivy_chain_max);
        std::snprintf(name, sizeof(name), "wl_%s.ivy.dropped_forwards", workload);
        json.Metric(name, static_cast<double>(base.ivy_dropped));
        std::printf("%-12s %-8s chain_length_max=%.0f dropped_forwards=%lld\n", workload,
                    tag, base.ivy_chain_max, static_cast<long long>(base.ivy_dropped));
      }
    }
  }
}

}  // namespace
}  // namespace asvm

int main(int argc, char** argv) {
  asvm::BenchJson json(argc, argv);
  asvm::RunSweep(json);
  asvm::RunWorkloadSweep(json);
  return json.Write("sharded_speedup") ? 0 : 1;
}
