// Ablation A4 (§3.1, "Limited Memory Requirements"): non-pageable DSM
// metadata. XMM's centralized manager allocates 1 byte per page per node the
// moment an object is used; ASVM's state is tied to resident pages. The paper
// notes the XMM approach "may even consume more memory than is actually
// available, leading to a system crash" on large sparse objects.
#include <cstdio>

#include "bench/bench_util.h"

namespace asvm {
namespace {

struct MetaResult {
  size_t manager_bytes;  // home/manager node
  size_t peak_other;     // max over the other nodes
};

MetaResult Measure(DsmKind kind, int nodes, VmSize pages, int touched) {
  Machine machine(BenchConfig(kind, nodes));
  MemObjectId region = machine.CreateSharedRegion(0, pages);
  TaskMemory& toucher = machine.MapRegion(1, region);
  // Attach everyone (mapping alone is what bloats the XMM table).
  for (NodeId n = 2; n < nodes; ++n) {
    machine.MapRegion(n, region);
  }
  for (int p = 0; p < touched; ++p) {
    auto w = toucher.WriteU64(static_cast<VmOffset>(p) * 8192, p);
    machine.Run();
  }
  MetaResult result;
  result.manager_bytes = machine.DsmMetadataBytes(0);
  result.peak_other = 0;
  for (NodeId n = 1; n < nodes; ++n) {
    result.peak_other = std::max(result.peak_other, machine.DsmMetadataBytes(n));
  }
  return result;
}

void RunBench(BenchJson& json) {
  PrintHeader("Ablation A4: non-pageable metadata, 64 MB object (8192 pages), 16 touched");
  std::printf("%8s %18s %18s %18s %18s\n", "nodes", "ASVM mgr (KB)", "ASVM peak (KB)",
              "XMM mgr (KB)", "XMM peak (KB)");
  for (int nodes : {4, 16, 64}) {
    MetaResult a = Measure(DsmKind::kAsvm, nodes, 8192, 16);
    MetaResult x = Measure(DsmKind::kXmm, nodes, 8192, 16);
    std::printf("%8d %18.1f %18.1f %18.1f %18.1f\n", nodes, a.manager_bytes / 1024.0,
                a.peak_other / 1024.0, x.manager_bytes / 1024.0, x.peak_other / 1024.0);
    const std::string n = ".n" + std::to_string(nodes);
    json.Metric("mgr_kb.asvm" + n, a.manager_bytes / 1024.0);
    json.Metric("peak_kb.asvm" + n, a.peak_other / 1024.0);
    json.Metric("mgr_kb.xmm" + n, x.manager_bytes / 1024.0);
    json.Metric("peak_kb.xmm" + n, x.peak_other / 1024.0);
  }
  std::printf(
      "\nXMM's manager table grows as pages x nodes regardless of use (the\n"
      "crash scenario §3.1 warns about at Paragon scale: a 1 GB sparse object\n"
      "on 1792 nodes would need ~230 MB of kernel memory on one node). ASVM\n"
      "metadata stays proportional to what is actually cached.\n");
}

}  // namespace
}  // namespace asvm

int main(int argc, char** argv) {
  asvm::BenchJson json(argc, argv);
  asvm::RunBench(json);
  return json.Write("ablation_metadata") ? 0 : 1;
}
