// Reproduces Table 3: EM3D execution times (seconds, 100 iterations) for
// various problem sizes and node counts under ASVM and XMM. Cells marked "-"
// are infeasible exactly as in the paper: the combined 16 MB-node memory
// cannot hold the data set (the paper's single-node runs used special
// large-memory nodes, marked *).
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/em3d/em3d.h"

namespace asvm {
namespace {

// The paper measures 100 iterations; we simulate a warmup plus this many and
// project (the per-iteration cost is stationary after warmup).
constexpr int kMeasureIters = 5;

bool Feasible(int64_t cells, int nodes) {
  // ~9 MB user memory per 16 MB node; data set is 224 B/cell plus slack.
  const double need = static_cast<double>(cells) * 224 * 1.15;
  return need < static_cast<double>(nodes) * 9 * 1024 * 1024;
}

double RunOne(DsmKind kind, int64_t cells, int nodes) {
  Em3dParams params;
  params.cells = cells;
  params.iterations = 100;
  MachineConfig config = BenchConfig(kind, nodes);
  if (nodes == 1) {
    // Sequential runs used a large-memory node (paper's "*" footnote).
    config.user_memory_bytes = 512ull * 1024 * 1024;
    Machine machine(config);
    (void)machine;
    return Em3dSequentialSeconds(params);
  }
  Machine machine(config);
  return RunEm3dTimed(machine, params, nodes, kMeasureIters).seconds;
}

void RunTable3(BenchJson& json) {
  PrintHeader("Table 3: EM3D timings (seconds, 100 iterations)");
  const int counts[] = {1, 2, 4, 8, 16, 32, 64};
  struct SizeRow {
    int64_t cells;
    double paper_asvm[7];
    double paper_xmm[7];
  };
  const SizeRow sizes[] = {
      {64000,
       {43.6, 32.0, 19.9, 13.9, 11.2, 9.86, 9.55},
       {43.6, 151, 213, 392, 755, 1405, 2735}},
      {256000,
       {174, -1, -1, 33.6, 21.5, 15.6, 12.8},
       {174, -1, -1, 520, 842, 1604, 2957}},
      {1024000,
       {698, -1, -1, -1, -1, 54.2, 24.4},
       {698, -1, -1, -1, -1, 1863, 3373}},
  };

  std::printf("%-22s", "cells / nodes:");
  for (int n : counts) {
    std::printf("%9d", n);
  }
  std::printf("\n");

  for (const SizeRow& size : sizes) {
    for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
      std::printf("%-5s %-16lld", ToString(kind), static_cast<long long>(size.cells));
      for (int i = 0; i < 7; ++i) {
        const int nodes = counts[i];
        if (nodes > 1 && !Feasible(size.cells, nodes)) {
          std::printf("%9s", "-");
          continue;
        }
        const double seconds = RunOne(kind, size.cells, nodes);
        std::printf("%9.1f", seconds);
        const double* paper = kind == DsmKind::kAsvm ? size.paper_asvm : size.paper_xmm;
        json.Metric("seconds." + std::string(ToString(kind)) + ".c" +
                        std::to_string(size.cells) + ".n" + std::to_string(nodes),
                    seconds, paper[i] < 0 ? BenchJson::kNoPaperRef : paper[i]);
      }
      std::printf("\n");
      const double* paper = kind == DsmKind::kAsvm ? size.paper_asvm : size.paper_xmm;
      std::printf("%-22s", "  (paper)");
      for (int i = 0; i < 7; ++i) {
        if (paper[i] < 0) {
          std::printf("%9s", "-");
        } else {
          std::printf("%9.1f", paper[i]);
        }
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nShape: ASVM times fall with node count (speedup); XMM times RISE\n"
      "(slowdown) because every fault serializes at the centralized manager.\n");
}

}  // namespace
}  // namespace asvm

int main(int argc, char** argv) {
  asvm::BenchJson json(argc, argv);
  asvm::RunTable3(json);
  return json.Write("table3_em3d") ? 0 : 1;
}
