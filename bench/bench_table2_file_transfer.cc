// Reproduces Table 2 (and its graphical forms, Figures 12 and 13): effective
// mapped-file transfer rates seen by each of N nodes accessing the same 4 MB
// file — parallel reads of the whole file and asynchronous writes of disjoint
// sections.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/mappedfs/file_bench.h"

namespace asvm {
namespace {

constexpr VmSize kFilePages = 4 * 1024 * 1024 / 8192;  // 4 MB

// Node 0 is the I/O node (file pager + disk); compute tasks run on 1..N, as
// on the real machine where I/O and compute nodes are distinct.
double ReadRate(DsmKind kind, int nodes) {
  Machine machine(BenchConfig(kind, nodes + 1));
  int32_t file_id =
      machine.cluster().file_pager().CreateFile("bench", kFilePages, /*prefilled=*/true);
  MemObjectId region = machine.dsm().CreateFileRegion(file_id, kFilePages);
  return RunParallelFileRead(machine, region, kFilePages, nodes, /*first_node=*/1)
      .per_node_mb_s;
}

double WriteRate(DsmKind kind, int nodes) {
  Machine machine(BenchConfig(kind, nodes + 1));
  MemObjectId region = machine.CreateMappedFile("bench", kFilePages, /*prefilled=*/false);
  return RunParallelFileWrite(machine, region, kFilePages, nodes, /*first_node=*/1)
      .per_node_mb_s;
}

void RunTable2(BenchJson& json) {
  PrintHeader("Table 2: File Transfer Rates (MB/s per node), 4 MB mapped file");
  const int counts[] = {1, 2, 4, 8, 16, 32, 64};
  const double paper_asvm_write[] = {2.80, 2.60, 2.05, 1.22, 0.62, 0.30, 0.15};
  const double paper_xmm_write[] = {2.15, 1.77, 0.90, 0.49, 0.24, 0.12, 0.06};
  const double paper_asvm_read[] = {1.57, 1.53, 1.14, 0.91, 0.70, 0.66, 0.66};
  const double paper_xmm_read[] = {1.18, 0.38, 0.25, 0.11, 0.05, 0.02, 0.01};

  std::printf("%-12s", "Nodes:");
  for (int n : counts) {
    std::printf("%8d", n);
  }
  std::printf("\n");

  // The IVY series passes paper=nullptr: the paper only measures its own two
  // protocols, so those rows are measured-only.
  auto series = [&](const char* label, const char* key, double (*fn)(DsmKind, int),
                    DsmKind kind, const double* paper) {
    std::printf("%-12s", label);
    double measured[7];
    for (int i = 0; i < 7; ++i) {
      measured[i] = fn(kind, counts[i]);
      std::printf("%8.2f", measured[i]);
      json.Metric(std::string(key) + ".n" + std::to_string(counts[i]), measured[i],
                  paper != nullptr ? paper[i] : BenchJson::kNoPaperRef);
    }
    if (paper != nullptr) {
      std::printf("\n%-12s", "  (paper)");
      for (int i = 0; i < 7; ++i) {
        std::printf("%8.2f", paper[i]);
      }
    }
    std::printf("\n");
  };

  series("ASVM write", "write_mb_s.asvm", WriteRate, DsmKind::kAsvm, paper_asvm_write);
  series("XMM  write", "write_mb_s.xmm", WriteRate, DsmKind::kXmm, paper_xmm_write);
  series("IVY  write", "write_mb_s.ivy", WriteRate, DsmKind::kIvy, nullptr);
  series("ASVM read", "read_mb_s.asvm", ReadRate, DsmKind::kAsvm, paper_asvm_read);
  series("XMM  read", "read_mb_s.xmm", ReadRate, DsmKind::kXmm, paper_xmm_read);
  series("IVY  read", "read_mb_s.ivy", ReadRate, DsmKind::kIvy, nullptr);

  std::printf(
      "\nFigures 12/13 plot these series. Key shapes: ASVM sustains a usable\n"
      "read rate at high node counts (distributed managers serve each other);\n"
      "XMM reads collapse through the centralized manager. Writes bottleneck\n"
      "on the file pager for both, with ASVM's cheaper protocol ~2x ahead.\n");
}

}  // namespace
}  // namespace asvm

int main(int argc, char** argv) {
  asvm::BenchJson json(argc, argv);
  asvm::RunTable2(json);
  return json.Write("table2_file_transfer") ? 0 : 1;
}
