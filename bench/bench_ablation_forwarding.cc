// Ablation A1 (§3.4): the three request-forwarding strategies. ASVM layers
// dynamic hints over static ownership managers over a global scan; disabling
// tiers reproduces Kai Li's fixed-distributed-manager (static+global) and a
// pure broadcast scheme (global only).
#include <cstdio>

#include "bench/bench_util.h"

namespace asvm {
namespace {

struct ForwardingResult {
  double hot_ms;    // re-access of a page this node served recently (hint hit)
  double cold_ms;   // first access to a page owned far away
  int64_t messages;
};

ForwardingResult RunConfig(bool dynamic, bool stat, int nodes) {
  MachineConfig config = BenchConfig(DsmKind::kAsvm, nodes);
  config.asvm.dynamic_forwarding = dynamic;
  config.asvm.static_forwarding = stat;
  Machine machine(config);
  MemObjectId region = machine.CreateSharedRegion(0, 64);

  // Populate: node 1 owns all pages.
  TaskMemory& owner = machine.MapRegion(1, region);
  for (int p = 0; p < 32; ++p) {
    auto w = owner.WriteU64(static_cast<VmOffset>(p) * 8192, p);
    machine.Run();
  }
  // Every node reads every page once (warms dynamic caches where enabled).
  for (NodeId n = 2; n < nodes; ++n) {
    TaskMemory& reader = machine.MapRegion(n, region);
    for (int p = 0; p < 32; ++p) {
      MeasureReadMs(machine, reader, static_cast<VmOffset>(p) * 8192);
    }
  }
  // Ownership moves to node 2 for all pages.
  TaskMemory& mover = machine.MapRegion(2, region);
  for (int p = 0; p < 32; ++p) {
    MeasureWriteMs(machine, mover, static_cast<VmOffset>(p) * 8192, p + 100);
  }

  // Producer/consumer ping-pong so the consumer's dynamic hints are fresh:
  // node 2 rewrites, node 3 re-reads, repeatedly.
  TaskMemory& probe = machine.MapRegion(3, region);
  double hot = 0;
  int64_t msgs_before = 0;
  for (int round = 0; round < 3; ++round) {
    for (int p = 0; p < 32; ++p) {
      MeasureWriteMs(machine, mover, static_cast<VmOffset>(p) * 8192, p + round);
    }
    if (round == 2) {
      msgs_before = machine.stats().Get("transport.sts.messages") +
                    machine.stats().Get("transport.sts_ctl.messages");
      for (int p = 0; p < 32; ++p) {
        hot += MeasureReadMs(machine, probe, static_cast<VmOffset>(p) * 8192);
      }
    } else {
      for (int p = 0; p < 32; ++p) {
        MeasureReadMs(machine, probe, static_cast<VmOffset>(p) * 8192);
      }
    }
  }
  // Cold: the last node never touched anything.
  TaskMemory& cold_probe = machine.MapRegion(nodes - 1, region);
  double cold = 0;
  for (int p = 32; p < 64; ++p) {
    // Fresh pages: request must reach the pager.
    cold += MeasureReadMs(machine, cold_probe, static_cast<VmOffset>(p) * 8192);
  }
  const int64_t msgs = machine.stats().Get("transport.sts.messages") +
                       machine.stats().Get("transport.sts_ctl.messages") - msgs_before;
  return {hot / 32.0, cold / 32.0, msgs};
}

void RunAblation(BenchJson& json) {
  PrintHeader("Ablation A1: forwarding strategies (16 nodes, ms per access)");
  std::printf("%-34s %10s %10s %10s\n", "configuration", "owned-pg", "fresh-pg", "messages");
  struct Row {
    const char* label;
    const char* key;
    bool dynamic;
    bool stat;
  };
  for (const Row& row : {Row{"dynamic+static+global (ASVM)", "full", true, true},
                         Row{"static+global (Li fixed-distr.)", "static_only", false, true},
                         Row{"dynamic+global", "dynamic_only", true, false},
                         Row{"global only (broadcast)", "global_only", false, false}}) {
    ForwardingResult r = RunConfig(row.dynamic, row.stat, 16);
    std::printf("%-34s %10.2f %10.2f %10lld\n", row.label, r.hot_ms, r.cold_ms,
                static_cast<long long>(r.messages));
    json.Metric(std::string("hot_ms.") + row.key, r.hot_ms);
    json.Metric(std::string("cold_ms.") + row.key, r.cold_ms);
    json.Metric(std::string("messages.") + row.key, static_cast<double>(r.messages));
  }
  std::printf(
      "\nThe layered scheme finds owners in the fewest hops; pure global\n"
      "forwarding pays a ring traversal per miss; losing the static tier\n"
      "costs fresh-page accesses their 'fresh' short-circuit (§3.4).\n");
}

}  // namespace
}  // namespace asvm

int main(int argc, char** argv) {
  asvm::BenchJson json(argc, argv);
  asvm::RunAblation(json);
  return json.Write("ablation_forwarding") ? 0 : 1;
}
