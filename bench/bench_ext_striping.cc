// Extension bench (§6 future work): the UFS/PFS hybrid. Striping a mapped
// file over k I/O nodes multiplies cold streaming bandwidth (PFS property)
// while ASVM's caching keeps warm re-reads at memory speed (UFS property) —
// and under XMM the centralized manager erases the striping gains for shared
// access.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/mappedfs/file_bench.h"

namespace asvm {
namespace {

struct StripeResult {
  double cold_mb_s;   // disjoint sections, cold (PFS streaming pattern)
  double warm_mb_s;   // whole file re-read after caching (UFS pattern)
};

StripeResult Run(DsmKind kind, int stripes, int readahead = 0) {
  MachineConfig config = BenchConfig(kind, 12);
  config.file_pager_count = stripes;
  config.file_pager.readahead_pages = readahead;
  Machine machine(config);
  const VmSize pages = 512;  // 4 MB
  MemObjectId region = machine.CreateStripedFile("data", pages, stripes,
                                                 /*prefilled=*/true);
  StripeResult result;
  result.cold_mb_s =
      RunParallelFileReadSections(machine, region, pages, 8, /*first_node=*/4).per_node_mb_s;
  // Second pass: every node reads the WHOLE file. Its own section is a local
  // cache hit; the rest is served from sibling caches (ASVM) or through the
  // manager (XMM) — no disk either way.
  result.warm_mb_s =
      RunParallelFileRead(machine, region, pages, 8, /*first_node=*/4).per_node_mb_s;
  return result;
}

void RunBench(BenchJson& json) {
  PrintHeader("Extension: striped mapped files (8 readers, 4 MB, MB/s per node)");
  std::printf("%-8s %14s %14s %14s %14s\n", "stripes", "ASVM cold", "ASVM warm", "XMM cold",
              "XMM warm");
  for (int stripes : {1, 2, 4, 8}) {
    StripeResult a = Run(DsmKind::kAsvm, stripes);
    StripeResult x = Run(DsmKind::kXmm, stripes);
    std::printf("%-8d %14.2f %14.2f %14.2f %14.2f\n", stripes, a.cold_mb_s, a.warm_mb_s,
                x.cold_mb_s, x.warm_mb_s);
    const std::string s = ".s" + std::to_string(stripes);
    json.Metric("cold_mb_s.asvm" + s, a.cold_mb_s);
    json.Metric("warm_mb_s.asvm" + s, a.warm_mb_s);
    json.Metric("cold_mb_s.xmm" + s, x.cold_mb_s);
    json.Metric("warm_mb_s.xmm" + s, x.warm_mb_s);
  }
  std::printf("\nWith §6 page-in clustering (8-page read-ahead at each stripe pager):\n");
  std::printf("%-8s %14s %14s\n", "stripes", "ASVM cold", "XMM cold");
  for (int stripes : {1, 4}) {
    StripeResult a = Run(DsmKind::kAsvm, stripes, /*readahead=*/8);
    StripeResult x = Run(DsmKind::kXmm, stripes, /*readahead=*/8);
    std::printf("%-8d %14.2f %14.2f\n", stripes, a.cold_mb_s, x.cold_mb_s);
    const std::string s = ".s" + std::to_string(stripes);
    json.Metric("cold_mb_s.asvm.ra8" + s, a.cold_mb_s);
    json.Metric("cold_mb_s.xmm.ra8" + s, x.cold_mb_s);
  }
  std::printf(
      "\nCold streaming scales with the stripe count (PFS) and clustering\n"
      "amortizes disk positioning; warm re-reads are memory-speed under ASVM\n"
      "because the DSM caches locally (UFS). This is the full §6 hybrid:\n"
      "striping + clustering + local caching + full Unix semantics.\n");
}

}  // namespace
}  // namespace asvm

int main(int argc, char** argv) {
  asvm::BenchJson json(argc, argv);
  asvm::RunBench(json);
  return json.Write("ext_striping") ? 0 : 1;
}
