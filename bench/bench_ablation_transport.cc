// Ablation A2 (§3.1, "Dedicated Transport Service"): the ASVM protocol over
// its dedicated STS versus the same protocol over NORMA-IPC. The paper
// attributes ~90% of XMM's remote-fault latency to NORMA-IPC; this isolates
// the transport's share of the win from the protocol's.
#include <cstdio>

#include "bench/bench_util.h"

namespace asvm {
namespace {

double WriteFaultOver(bool use_norma, int readers) {
  MachineConfig config = BenchConfig(DsmKind::kAsvm, kFirstReaderNode + readers + 1);
  config.asvm.use_norma_transport = use_norma;
  Machine machine(config);
  MemObjectId region = machine.CreateSharedRegion(kHomeNode, 8);
  TaskMemory& creator = machine.MapRegion(kCreatorNode, region);
  auto w = creator.WriteU64(0, 1);
  machine.Run();
  for (int i = 0; i < readers; ++i) {
    TaskMemory& reader = machine.MapRegion(kFirstReaderNode + i, region);
    MeasureReadMs(machine, reader, 0);
  }
  TaskMemory& faulter = machine.MapRegion(kFaultNode, region);
  return MeasureWriteMs(machine, faulter, 0, 2);
}

void RunAblation(BenchJson& json) {
  PrintHeader("Ablation A2: ASVM protocol over STS vs. over NORMA-IPC (ms)");
  std::printf("%10s %12s %14s %8s\n", "readers", "ASVM/STS", "ASVM/NORMA", "ratio");
  for (int readers : {0, 2, 8, 32, 64}) {
    const double sts = WriteFaultOver(false, readers);
    const double norma = WriteFaultOver(true, readers);
    std::printf("%10d %12.2f %14.2f %7.1fx\n", readers, sts, norma, norma / sts);
    json.Metric("sts_ms.r" + std::to_string(readers), sts);
    json.Metric("norma_ms.r" + std::to_string(readers), norma);
  }
  std::printf(
      "\nEven with ASVM's lean 3-message protocol, NORMA-IPC's per-message\n"
      "software cost multiplies latency — the reason ASVM defines its own\n"
      "transport with fixed 32-byte control blocks and preallocated page\n"
      "buffers (paper §3.1).\n");
}

}  // namespace
}  // namespace asvm

int main(int argc, char** argv) {
  asvm::BenchJson json(argc, argv);
  asvm::RunAblation(json);
  return json.Write("ablation_transport") ? 0 : 1;
}
