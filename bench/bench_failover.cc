// Failover recovery latency under the node-removal fault profiles
// (DESIGN.md §14): what a page access costs while the machine detects a dead
// manager, promotes the ring-successor backup, and — under rolling-restart —
// serves the rejoined node's cold caches. The paper has no reference numbers
// here (its managers never die); the baseline JSON pins our own timeline.
#include "bench/bench_util.h"

#include "src/dsm/failover.h"
#include "src/mesh/fault_plan.h"

namespace asvm {
namespace {

// Like asvmsim's fault sweep: resolve one access in bounded slices, then let
// background traffic (invalidations, shadow updates) settle without draining
// past the fault plan's parked removal/restore wakes.
template <typename T>
double SlicedAccessMs(Machine& machine, Future<T> f) {
  const SimDuration d = AwaitLatency(machine, f);
  machine.RunFor(5 * kMillisecond);
  return ToMilliseconds(d);
}

void AdvanceJustPast(Machine& machine, SimTime when) {
  if (machine.Now() > when) {
    return;
  }
  // RunFor only advances the clock while the queue holds events; park a wake
  // just past the target so an empty queue cannot spin forever.
  machine.engine().Schedule(when + kMillisecond - machine.Now(), []() {});
  while (machine.Now() <= when) {
    machine.RunFor(kMillisecond);
  }
}

struct FailoverLatencies {
  double healthy_read_ms = 0;
  double detect_promote_read_ms = 0;
  double degraded_read_ms = 0;
  double postkill_write_ms = 0;
  double rejoin_read_ms = 0;
  uint64_t promotions = 0;
  uint64_t restarts = 0;
  // IVY recovery evidence: there is no manager to promote, so the post-kill
  // first touch ends in an ownership reclaim instead of a backup promotion.
  uint64_t reclaims = 0;
};

// An 8-node machine with the region homed on the node the profile kills.
// Node 1 creates, node 2 reads, node 3 writes; pages 5-7 stay untouched so
// the post-kill first-touch must forward to the dead terminal and pay the
// full silence-detection + promotion path. Under IVY the home node is every
// untouched page's initial probable owner, so the same first touch pays
// detection + ownership reclaim instead of a backup promotion.
FailoverLatencies MeasureFailover(DsmKind kind, const char* profile) {
  MachineConfig config = BenchConfig(kind, 8);
  if (!FaultProfileFromName(profile, 1, config.nodes, &config.fault)) {
    std::printf("unknown fault profile '%s'\n", profile);
    return {};
  }
  // 10 ms keeps the full 15x retry horizon above XMM's worst healthy serve
  // (~33 ms with a flush + dirty cleaning), so the healthy-phase numbers are
  // free of spurious timeout reissues and only real silence pays the horizon.
  config.retry.timeout_ns = 10 * kMillisecond;
  config.failover.enabled = true;
  Machine machine(config);

  MemObjectId region = machine.CreateSharedRegion(kHomeNode, 8);
  TaskMemory& creator = machine.MapRegion(kCreatorNode, region);
  TaskMemory& reader = machine.MapRegion(kFaultNode, region);
  TaskMemory& writer = machine.MapRegion(kFirstReaderNode, region);

  FailoverLatencies out;
  SlicedAccessMs(machine, creator.WriteU64(0, 1));
  SlicedAccessMs(machine, writer.WriteU64(machine.page_size(), 2));
  out.healthy_read_ms = SlicedAccessMs(machine, reader.ReadU64(0));

  SimTime last_removal = 0;
  SimTime last_restore = 0;
  for (const auto& removal : machine.fault_plan()->params().removals) {
    last_removal = std::max(last_removal, removal.at);
    last_restore = std::max(last_restore, removal.restore_at);
  }
  AdvanceJustPast(machine, last_removal);

  out.detect_promote_read_ms =
      SlicedAccessMs(machine, reader.ReadU64(5 * machine.page_size()));
  out.degraded_read_ms =
      SlicedAccessMs(machine, reader.ReadU64(machine.page_size()));
  out.postkill_write_ms =
      SlicedAccessMs(machine, writer.WriteU64(6 * machine.page_size(), 3));

  if (last_restore > 0) {
    AdvanceJustPast(machine, last_restore);
    TaskMemory& rejoined = machine.MapRegion(kHomeNode, region);
    out.rejoin_read_ms = SlicedAccessMs(machine, rejoined.ReadU64(0));
  }

  out.promotions = machine.stats().Get(kStatPromotions);
  out.restarts = machine.stats().Get(kStatRestarts);
  out.reclaims = machine.stats().Get(kStatIvyOwnerReclaims);
  return out;
}

void PrintPhase(const char* label, double asvm_ms, double xmm_ms, double ivy_ms) {
  std::printf("%-58s %9.2f %9.2f %9.2f\n", label, asvm_ms, xmm_ms, ivy_ms);
}

// The gossip A/B: two survivors each hold a pending op against the dead node.
// The detector issues right after the kill and pays the full silence-detection
// horizon (10+20+40+80 = 150 ms at a 10 ms base timeout). The bystander issues
// 100 ms later — deep inside the detector's backoff. With death notices ON the
// detector's kNodeDown classification is gossiped at the next barrier, the
// bystander's pending op is cancelled mid-backoff, and it recovers
// immediately; with notices OFF the bystander serves out its own full retry
// horizon first.
//
// The op that wedges differs per DSM. XMM requesters forward every fault to
// the centralized manager, so killing the manager wedges any first touch.
// ASVM routing consults the removal oracle and never *sends* to a confirmed
// dead node — the ops that still burn a horizon are the ones already aimed at
// the victim, like a write upgrade invalidating a dead reader's copy. So the
// ASVM victim is a reader (kill-owner's node 3) holding copies of two pages
// owned by the detector and the bystander, and both survivors upgrade their
// own pages after the kill. The IVY victim instead *owns* two pages and sits
// at the end of both survivors' probable-owner hint chains, so their write
// upgrades chase a chain into a corpse until silence detection (or a gossiped
// death notice) triggers the ownership reclaim.
struct DeathNoticeLatency {
  double bystander_ms = 0;
  uint64_t notices = 0;
};

DeathNoticeLatency MeasureDeathNotice(DsmKind kind, bool notices_on) {
  MachineConfig config = BenchConfig(kind, 8);
  // XMM wedges on its centralized manager. ASVM and IVY routing never sends
  // to a confirmed-dead node, so their victim must hold protocol state the
  // survivors have to touch: a read copy to invalidate (ASVM) or page
  // ownership at the end of the survivors' hint chains (IVY). kill-owner's
  // victim is node 3 == kFirstReaderNode.
  const bool xmm = kind == DsmKind::kXmm;
  const char* profile = xmm ? "kill-manager" : "kill-owner";
  if (!FaultProfileFromName(profile, 1, config.nodes, &config.fault)) {
    std::printf("unknown fault profile '%s'\n", profile);
    return {};
  }
  config.retry.timeout_ns = 10 * kMillisecond;
  config.failover.enabled = true;
  config.failover.death_notices = notices_on;
  Machine machine(config);

  SimTime kill_at = 0;
  NodeId victim = kHomeNode;
  for (const auto& removal : machine.fault_plan()->params().removals) {
    if (removal.at >= kill_at) {
      kill_at = removal.at;
      victim = static_cast<NodeId>(removal.node);
    }
  }

  MemObjectId region = machine.CreateSharedRegion(kHomeNode, 8);
  TaskMemory& creator = machine.MapRegion(kCreatorNode, region);
  // kill-owner's victim is node 3 == kFirstReaderNode; the ASVM/IVY survivors
  // must dodge it.
  TaskMemory& detector = machine.MapRegion(kFaultNode, region);
  TaskMemory& bystander =
      machine.MapRegion(xmm ? kFirstReaderNode : kFirstReaderNode + 1, region);

  SlicedAccessMs(machine, creator.WriteU64(0, 1));
  if (kind == DsmKind::kAsvm) {
    // Seed the wedge: detector and bystander each own a page whose read copy
    // sits on the doomed reader, so their post-kill upgrades must invalidate
    // a dead node.
    TaskMemory& doomed = machine.MapRegion(victim, region);
    SlicedAccessMs(machine, detector.WriteU64(5 * machine.page_size(), 2));
    SlicedAccessMs(machine, doomed.ReadU64(5 * machine.page_size()));
    SlicedAccessMs(machine, bystander.WriteU64(6 * machine.page_size(), 3));
    SlicedAccessMs(machine, doomed.ReadU64(6 * machine.page_size()));
  } else if (kind == DsmKind::kIvy) {
    // Seed the wedge: the doomed node's write faults migrate ownership of
    // pages 5 and 6 to it, and the survivors' read faults leave their
    // probable-owner hints aimed straight at it — so each post-kill write
    // upgrade chases a hint chain that terminates in a corpse.
    TaskMemory& doomed = machine.MapRegion(victim, region);
    SlicedAccessMs(machine, doomed.WriteU64(5 * machine.page_size(), 2));
    SlicedAccessMs(machine, doomed.WriteU64(6 * machine.page_size(), 3));
    SlicedAccessMs(machine, detector.ReadU64(5 * machine.page_size()));
    SlicedAccessMs(machine, bystander.ReadU64(6 * machine.page_size()));
  } else {
    SlicedAccessMs(machine, detector.ReadU64(0));
    SlicedAccessMs(machine, bystander.ReadU64(machine.page_size()));
  }
  AdvanceJustPast(machine, kill_at);

  // Detector's op targets the dead node and starts the clock on silence
  // detection; 100 ms into its backoff, the bystander wedges its own op
  // against the same dead node.
  DeathNoticeLatency out;
  auto measure = [&](auto detect, auto probe_issue) {
    AdvanceJustPast(machine, kill_at + 100 * kMillisecond);
    const SimTime bystander_start = machine.Now();
    auto probe = probe_issue();
    for (int i = 0; i < 4000 && !probe.ready(); ++i) {
      machine.RunFor(kMillisecond);
    }
    out.bystander_ms = probe.ready()
                           ? ToMilliseconds(machine.Now() - bystander_start)
                           : -1.0;
    for (int i = 0; i < 4000 && !detect.ready(); ++i) {
      machine.RunFor(kMillisecond);
    }
  };
  if (xmm) {
    measure(detector.ReadU64(5 * machine.page_size()),
            [&] { return bystander.ReadU64(6 * machine.page_size()); });
  } else {
    measure(detector.WriteU64(5 * machine.page_size(), 4),
            [&] { return bystander.WriteU64(6 * machine.page_size(), 5); });
  }
  out.notices = machine.stats().Get(kStatDeathNotices);
  return out;
}

void RunFailoverBench(BenchJson& json) {
  PrintHeader("Failover: manager death and online recovery (ms)");

  const FailoverLatencies kill_asvm = MeasureFailover(DsmKind::kAsvm, "kill-manager");
  const FailoverLatencies kill_xmm = MeasureFailover(DsmKind::kXmm, "kill-manager");
  const FailoverLatencies kill_ivy = MeasureFailover(DsmKind::kIvy, "kill-manager");
  const FailoverLatencies roll_asvm =
      MeasureFailover(DsmKind::kAsvm, "rolling-restart");
  const FailoverLatencies roll_xmm = MeasureFailover(DsmKind::kXmm, "rolling-restart");
  const FailoverLatencies roll_ivy = MeasureFailover(DsmKind::kIvy, "rolling-restart");

  std::printf("%-58s %9s %9s %9s\n", "", "ASVM", "XMM", "IVY");
  PrintPhase("healthy remote read", kill_asvm.healthy_read_ms, kill_xmm.healthy_read_ms,
             kill_ivy.healthy_read_ms);
  PrintPhase("post-kill first touch (detect + promote/reclaim)",
             kill_asvm.detect_promote_read_ms, kill_xmm.detect_promote_read_ms,
             kill_ivy.detect_promote_read_ms);
  PrintPhase("post-kill read, surviving owner", kill_asvm.degraded_read_ms,
             kill_xmm.degraded_read_ms, kill_ivy.degraded_read_ms);
  PrintPhase("post-kill write via promoted manager / reclaimed owner",
             kill_asvm.postkill_write_ms, kill_xmm.postkill_write_ms,
             kill_ivy.postkill_write_ms);
  PrintPhase("rejoined cold read after rolling restart", roll_asvm.rejoin_read_ms,
             roll_xmm.rejoin_read_ms, roll_ivy.rejoin_read_ms);
  std::printf("promotions: asvm=%llu xmm=%llu; ivy owner reclaims=%llu; restarts "
              "after rolling restart: asvm=%llu xmm=%llu ivy=%llu\n",
              (unsigned long long)kill_asvm.promotions,
              (unsigned long long)kill_xmm.promotions,
              (unsigned long long)kill_ivy.reclaims,
              (unsigned long long)roll_asvm.restarts,
              (unsigned long long)roll_xmm.restarts,
              (unsigned long long)roll_ivy.restarts);

  json.Metric("healthy_read_ms.asvm", kill_asvm.healthy_read_ms);
  json.Metric("healthy_read_ms.xmm", kill_xmm.healthy_read_ms);
  json.Metric("healthy_read_ms.ivy", kill_ivy.healthy_read_ms);
  json.Metric("detect_promote_read_ms.asvm", kill_asvm.detect_promote_read_ms);
  json.Metric("detect_promote_read_ms.xmm", kill_xmm.detect_promote_read_ms);
  json.Metric("detect_promote_read_ms.ivy", kill_ivy.detect_promote_read_ms);
  json.Metric("degraded_read_ms.asvm", kill_asvm.degraded_read_ms);
  json.Metric("degraded_read_ms.xmm", kill_xmm.degraded_read_ms);
  json.Metric("degraded_read_ms.ivy", kill_ivy.degraded_read_ms);
  json.Metric("postkill_write_ms.asvm", kill_asvm.postkill_write_ms);
  json.Metric("postkill_write_ms.xmm", kill_xmm.postkill_write_ms);
  json.Metric("postkill_write_ms.ivy", kill_ivy.postkill_write_ms);
  json.Metric("rejoin_read_ms.asvm", roll_asvm.rejoin_read_ms);
  json.Metric("rejoin_read_ms.xmm", roll_xmm.rejoin_read_ms);
  json.Metric("rejoin_read_ms.ivy", roll_ivy.rejoin_read_ms);
  json.Metric("promotions.asvm", (double)kill_asvm.promotions);
  json.Metric("promotions.xmm", (double)kill_xmm.promotions);
  json.Metric("reclaims.ivy", (double)kill_ivy.reclaims);
  json.Metric("restarts.asvm", (double)roll_asvm.restarts);
  json.Metric("restarts.xmm", (double)roll_xmm.restarts);
  json.Metric("restarts.ivy", (double)roll_ivy.restarts);

  PrintHeader("Gossip death notices: bystander recovery mid-backoff (ms)");
  const DeathNoticeLatency dn_on_asvm = MeasureDeathNotice(DsmKind::kAsvm, true);
  const DeathNoticeLatency dn_off_asvm = MeasureDeathNotice(DsmKind::kAsvm, false);
  const DeathNoticeLatency dn_on_xmm = MeasureDeathNotice(DsmKind::kXmm, true);
  const DeathNoticeLatency dn_off_xmm = MeasureDeathNotice(DsmKind::kXmm, false);
  const DeathNoticeLatency dn_on_ivy = MeasureDeathNotice(DsmKind::kIvy, true);
  const DeathNoticeLatency dn_off_ivy = MeasureDeathNotice(DsmKind::kIvy, false);

  std::printf("%-58s %9s %9s %9s\n", "", "ASVM", "XMM", "IVY");
  PrintPhase("bystander access, death notices on", dn_on_asvm.bystander_ms,
             dn_on_xmm.bystander_ms, dn_on_ivy.bystander_ms);
  PrintPhase("bystander access, death notices off (own full horizon)",
             dn_off_asvm.bystander_ms, dn_off_xmm.bystander_ms, dn_off_ivy.bystander_ms);
  const double speedup_asvm =
      dn_on_asvm.bystander_ms > 0 ? dn_off_asvm.bystander_ms / dn_on_asvm.bystander_ms
                                  : 0;
  const double speedup_xmm =
      dn_on_xmm.bystander_ms > 0 ? dn_off_xmm.bystander_ms / dn_on_xmm.bystander_ms
                                 : 0;
  const double speedup_ivy =
      dn_on_ivy.bystander_ms > 0 ? dn_off_ivy.bystander_ms / dn_on_ivy.bystander_ms
                                 : 0;
  std::printf("speedup: asvm=%.2fx xmm=%.2fx ivy=%.2fx; notices: asvm on/off=%llu/%llu "
              "xmm on/off=%llu/%llu ivy on/off=%llu/%llu\n",
              speedup_asvm, speedup_xmm, speedup_ivy,
              (unsigned long long)dn_on_asvm.notices,
              (unsigned long long)dn_off_asvm.notices,
              (unsigned long long)dn_on_xmm.notices,
              (unsigned long long)dn_off_xmm.notices,
              (unsigned long long)dn_on_ivy.notices,
              (unsigned long long)dn_off_ivy.notices);

  json.Metric("death_notice_read_ms.on.asvm", dn_on_asvm.bystander_ms);
  json.Metric("death_notice_read_ms.off.asvm", dn_off_asvm.bystander_ms);
  json.Metric("death_notice_read_ms.on.xmm", dn_on_xmm.bystander_ms);
  json.Metric("death_notice_read_ms.off.xmm", dn_off_xmm.bystander_ms);
  json.Metric("death_notice_read_ms.on.ivy", dn_on_ivy.bystander_ms);
  json.Metric("death_notice_read_ms.off.ivy", dn_off_ivy.bystander_ms);
  json.Metric("death_notice_speedup.asvm", speedup_asvm);
  json.Metric("death_notice_speedup.xmm", speedup_xmm);
  json.Metric("death_notice_speedup.ivy", speedup_ivy);
  json.Metric("death_notices.on.asvm", (double)dn_on_asvm.notices);
  json.Metric("death_notices.off.asvm", (double)dn_off_asvm.notices);
  json.Metric("death_notices.on.xmm", (double)dn_on_xmm.notices);
  json.Metric("death_notices.off.xmm", (double)dn_off_xmm.notices);
  json.Metric("death_notices.on.ivy", (double)dn_on_ivy.notices);
  json.Metric("death_notices.off.ivy", (double)dn_off_ivy.notices);
}

}  // namespace
}  // namespace asvm

int main(int argc, char** argv) {
  asvm::BenchJson json(argc, argv);
  asvm::RunFailoverBench(json);
  return json.Write("failover") ? 0 : 1;
}
