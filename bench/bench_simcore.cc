// Host-side micro-benchmarks (google-benchmark) of the simulation substrate:
// event-queue throughput, coroutine wake costs, and end-to-end simulated
// fault throughput. These measure the simulator itself, not the modeled
// system.
#include <benchmark/benchmark.h>

#include "src/core/machine.h"
#include "src/sim/engine.h"
#include "src/sim/future.h"
#include "src/sim/task.h"

namespace asvm {
namespace {

void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Engine engine;
    for (int i = 0; i < 1000; ++i) {
      engine.Schedule(i, []() {});
    }
    benchmark::DoNotOptimize(engine.Run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleRun);

Task Chain(Engine& engine, int depth, int* count) {
  for (int i = 0; i < depth; ++i) {
    co_await Delay(engine, 1);
    ++*count;
  }
}

void BM_CoroutineDelayChain(benchmark::State& state) {
  for (auto _ : state) {
    Engine engine;
    int count = 0;
    Task t = Chain(engine, 1000, &count);
    engine.Run();
    benchmark::DoNotOptimize(count);
    benchmark::DoNotOptimize(t.done());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineDelayChain);

void BM_FuturePingPong(benchmark::State& state) {
  for (auto _ : state) {
    Engine engine;
    int received = 0;
    for (int i = 0; i < 100; ++i) {
      Promise<int> promise(engine);
      auto waiter = [](Future<int> f, int* out) -> Task {
        *out += co_await f;
      }(promise.GetFuture(), &received);
      promise.Set(1);
      engine.Run();
      benchmark::DoNotOptimize(waiter.done());
    }
    benchmark::DoNotOptimize(received);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FuturePingPong);

void BM_SimulatedRemoteFaults(benchmark::State& state) {
  // Wall-clock cost of simulating one coherent write fault end to end.
  for (auto _ : state) {
    state.PauseTiming();
    MachineConfig config;
    config.nodes = 4;
    config.dsm = DsmKind::kAsvm;
    Machine machine(config);
    MemObjectId region = machine.CreateSharedRegion(0, 64);
    TaskMemory& a = machine.MapRegion(1, region);
    TaskMemory& b = machine.MapRegion(2, region);
    state.ResumeTiming();
    for (int p = 0; p < 64; ++p) {
      auto w = a.WriteU64(static_cast<VmOffset>(p) * 8192, p);
      machine.Run();
      auto r = b.ReadU64(static_cast<VmOffset>(p) * 8192);
      machine.Run();
      benchmark::DoNotOptimize(r.ready());
    }
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_SimulatedRemoteFaults);

}  // namespace
}  // namespace asvm

BENCHMARK_MAIN();
