// Host-side micro-benchmarks (google-benchmark) of the simulation substrate:
// event-queue throughput, coroutine wake costs, and end-to-end simulated
// fault throughput. These measure the simulator itself, not the modeled
// system.
//
// In addition to the google-benchmark suite, a deterministic scheduler-shape
// comparison runs the same event workloads against both event cores — the
// pooled timer wheel and the reference heap — and reports events/sec plus
// the wheel/heap speedup. The shapes mirror the simulator's real producers:
// uniform schedule/run (transport hops), bursty equal-time wakes (fan-in at
// a manager), exponential inter-arrivals (coherency traffic), retry storms
// (protocol deadlines that fire as no-ops), and zero-delay Post chains
// (coroutine resumption). With --json=FILE the results feed
// scripts/bench_report.sh, which gates on the speedup floor.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/machine.h"
#include "src/sim/engine.h"
#include "src/sim/future.h"
#include "src/sim/task.h"

namespace asvm {
namespace {

// --- google-benchmark suite ----------------------------------------------------

template <SchedulerKind kKind>
void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Engine engine(kKind);
    for (int i = 0; i < 1000; ++i) {
      engine.Schedule(i, []() {});
    }
    benchmark::DoNotOptimize(engine.Run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleRun<SchedulerKind::kTimerWheel>)->Name("BM_EngineScheduleRun/wheel");
BENCHMARK(BM_EngineScheduleRun<SchedulerKind::kReference>)->Name("BM_EngineScheduleRun/heap");

Task Chain(Engine& engine, int depth, int* count) {
  for (int i = 0; i < depth; ++i) {
    co_await Delay(engine, 1);
    ++*count;
  }
}

void BM_CoroutineDelayChain(benchmark::State& state) {
  for (auto _ : state) {
    Engine engine;
    int count = 0;
    Task t = Chain(engine, 1000, &count);
    engine.Run();
    benchmark::DoNotOptimize(count);
    benchmark::DoNotOptimize(t.done());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineDelayChain);

void BM_FuturePingPong(benchmark::State& state) {
  for (auto _ : state) {
    Engine engine;
    int received = 0;
    for (int i = 0; i < 100; ++i) {
      Promise<int> promise(engine);
      auto waiter = [](Future<int> f, int* out) -> Task {
        *out += co_await f;
      }(promise.GetFuture(), &received);
      promise.Set(1);
      engine.Run();
      benchmark::DoNotOptimize(waiter.done());
    }
    benchmark::DoNotOptimize(received);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FuturePingPong);

void BM_SimulatedRemoteFaults(benchmark::State& state) {
  // Wall-clock cost of simulating one coherent write fault end to end.
  for (auto _ : state) {
    state.PauseTiming();
    MachineConfig config;
    config.nodes = 4;
    config.dsm = DsmKind::kAsvm;
    Machine machine(config);
    MemObjectId region = machine.CreateSharedRegion(0, 64);
    TaskMemory& a = machine.MapRegion(1, region);
    TaskMemory& b = machine.MapRegion(2, region);
    state.ResumeTiming();
    for (int p = 0; p < 64; ++p) {
      auto w = a.WriteU64(static_cast<VmOffset>(p) * 8192, p);
      machine.Run();
      auto r = b.ReadU64(static_cast<VmOffset>(p) * 8192);
      machine.Run();
      benchmark::DoNotOptimize(r.ready());
    }
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_SimulatedRemoteFaults);

// --- Scheduler-shape comparison ------------------------------------------------

// A transport-sized payload: EventFn keeps captures up to 144 bytes inline,
// and the real hot closures (a Message envelope plus routing fields) are
// right at that edge. Carrying it here makes the shapes measure the pooled
// inline path, not an unrealistically tiny lambda.
struct Payload {
  uint64_t words[16] = {0};
};

uint64_t g_sink = 0;

void Consume(const Payload& p) { g_sink += p.words[0]; }

// Each shape runs `events` events through an Engine of the given kind and
// returns the wall-clock seconds spent inside Schedule/Run.
using Shape = double (*)(SchedulerKind kind, int events);

// Uniform spread: the plain schedule-then-drain pattern (disk completions,
// transport hop timers) with delays across several wheel levels.
double ShapeScheduleRun(SchedulerKind kind, int events) {
  Engine engine(kind);
  Rng rng(42);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < events; ++i) {
    Payload p;
    p.words[0] = static_cast<uint64_t>(i);
    engine.Schedule(static_cast<SimDuration>(rng.NextBelow(1 << 20)),
                    [p]() { Consume(p); });
  }
  engine.Run();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Bursty equal-time: thousands of events collapse onto few distinct instants
// (barrier wakes, fan-in at a centralized manager). Stresses seq-ordered
// replay within one slot.
double ShapeBurstyEqualTime(SchedulerKind kind, int events) {
  Engine engine(kind);
  Rng rng(43);
  const auto start = std::chrono::steady_clock::now();
  const int bursts = events / 256;
  for (int b = 0; b < bursts; ++b) {
    const SimDuration at = static_cast<SimDuration>(1 + rng.NextBelow(1 << 16));
    for (int i = 0; i < 256; ++i) {
      Payload p;
      p.words[0] = static_cast<uint64_t>(i);
      engine.Schedule(at, [p]() { Consume(p); });
    }
  }
  engine.Run();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Exponential inter-arrival: every event schedules its successor a random
// (geometric-ish) delay ahead — the steady-state coherency-traffic shape
// where the queue stays small but churns constantly.
double ShapeExponentialArrivals(SchedulerKind kind, int events) {
  Engine engine(kind);
  Rng rng(44);
  int remaining = events;
  struct Arrival {
    Engine& engine;
    Rng& rng;
    int& remaining;
    void Fire() {
      if (--remaining <= 0) {
        return;
      }
      Payload p;
      p.words[0] = static_cast<uint64_t>(remaining);
      // 1 << NextBelow(16): exponentially distributed over wheel levels 0..2.
      const SimDuration d = static_cast<SimDuration>(1) << rng.NextBelow(16);
      Arrival* self = this;
      engine.Schedule(d, [self, p]() {
        Consume(p);
        self->Fire();
      });
    }
  };
  Arrival arrival{engine, rng, remaining};
  const auto start = std::chrono::steady_clock::now();
  // 64 independent arrival processes keep a realistic queue depth.
  for (int i = 0; i < 64; ++i) {
    arrival.Fire();
    ++remaining;  // Fire() consumed one; keep the budget at `events`
  }
  engine.Run();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Retry storm: every op arms a far-out deadline (the ProtocolAgent timeout
// pattern) and completes long before it; the deadline later fires as a no-op.
// Half the live queue is these dead timers — the cancel-heavy shape.
double ShapeRetryStorm(SchedulerKind kind, int events) {
  Engine engine(kind);
  Rng rng(45);
  const auto start = std::chrono::steady_clock::now();
  const int ops = events / 2;
  for (int i = 0; i < ops; ++i) {
    Payload p;
    p.words[0] = static_cast<uint64_t>(i);
    // Completion soon…
    engine.Schedule(static_cast<SimDuration>(1 + rng.NextBelow(1 << 12)),
                    [p]() { Consume(p); });
    // …deadline far out, firing as a cheap already-done check.
    engine.Schedule(static_cast<SimDuration>((1 << 24) + rng.NextBelow(1 << 20)),
                    [p]() { benchmark::DoNotOptimize(p.words[0]); });
  }
  engine.Run();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Zero-delay Post chain: coroutine resumption traffic through the ring lane.
double ShapePostChain(SchedulerKind kind, int events) {
  Engine engine(kind);
  int remaining = events;
  struct Link {
    Engine& engine;
    int& remaining;
    void Fire() {
      if (--remaining <= 0) {
        return;
      }
      Link* self = this;
      engine.Post([self]() { self->Fire(); });
    }
  };
  Link link{engine, remaining};
  const auto start = std::chrono::steady_clock::now();
  engine.Post([&link]() { link.Fire(); });
  engine.Run();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct ShapeSpec {
  const char* name;
  Shape fn;
  int events;
};

void RunSchedulerShapes(BenchJson& json) {
  const ShapeSpec shapes[] = {
      {"schedule_run", ShapeScheduleRun, 1 << 20},
      {"bursty_equal_time", ShapeBurstyEqualTime, 1 << 20},
      {"exponential_arrivals", ShapeExponentialArrivals, 1 << 20},
      {"retry_storm", ShapeRetryStorm, 1 << 20},
      {"post_chain", ShapePostChain, 1 << 20},
  };
  std::printf("\nScheduler shapes: pooled timer wheel vs. reference heap\n");
  std::printf("%-24s %14s %14s %10s\n", "shape", "wheel Mev/s", "heap Mev/s", "speedup");
  for (const ShapeSpec& s : shapes) {
    // Warm-up pass on each core (page in code, populate node pools), then the
    // measured pass; best-of-3 tames scheduler noise on shared CI runners.
    double wheel = 1e9;
    double heap = 1e9;
    for (int rep = 0; rep < 3; ++rep) {
      wheel = std::min(wheel, s.fn(SchedulerKind::kTimerWheel, s.events));
      heap = std::min(heap, s.fn(SchedulerKind::kReference, s.events));
    }
    const double wheel_meps = s.events / wheel / 1e6;
    const double heap_meps = s.events / heap / 1e6;
    const double speedup = heap / wheel;
    std::printf("%-24s %14.1f %14.1f %9.2fx\n", s.name, wheel_meps, heap_meps, speedup);
    const std::string key = std::string("shape.") + s.name;
    json.Metric(key + ".wheel_meps", wheel_meps);
    json.Metric(key + ".heap_meps", heap_meps);
    json.Metric(key + ".speedup", speedup);
  }
  benchmark::DoNotOptimize(g_sink);
}

}  // namespace
}  // namespace asvm

int main(int argc, char** argv) {
  // Peel off --json=FILE (ours) before handing argv to google-benchmark.
  asvm::BenchJson json(argc, argv);
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) != 0) {
      bench_argv.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  asvm::RunSchedulerShapes(json);
  return json.Write("simcore") ? 0 : 1;
}
