// Reproduces Figure 11: page-fault latency on inherited memory as a function
// of copy-chain length. A 128 KB region is initialized on node 0, a chain of
// remote forks crosses n nodes, and the last node faults every page; the
// per-page latency fits lb + n*la (paper: ASVM 2.7 + 0.48n ms, XMM 5.0 + 4.3n).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace asvm {
namespace {

double ChainFaultMs(DsmKind kind, int chain_length) {
  const VmSize pages = 128 * 1024 / 8192;  // 128 KB region
  Machine machine(BenchConfig(kind, chain_length + 1));

  TaskMemory& origin = machine.CreatePrivateTask(0, pages);
  for (VmSize p = 0; p < pages; ++p) {
    auto w = origin.WriteU64(p * 8192, p + 1);
    machine.Run();
    if (!w.ready() || !IsOk(w.value())) {
      return -1;
    }
  }

  TaskMemory* current = &origin;
  for (int hop = 1; hop <= chain_length; ++hop) {
    auto fork = machine.RemoteFork(hop - 1, *current, hop);
    machine.Run();
    if (!fork.ready()) {
      return -1;
    }
    current = &machine.WrapMap(hop, fork.value());
  }

  // Fault in all pages of the region on the last node in the chain; report
  // the mean per-page latency.
  double total_ms = 0;
  for (VmSize p = 0; p < pages; ++p) {
    uint64_t value = 0;
    total_ms += MeasureReadMs(machine, *current, p * 8192, &value);
    if (value != p + 1) {
      std::printf("  !! data mismatch at page %llu\n", static_cast<unsigned long long>(p));
    }
  }
  return total_ms / static_cast<double>(pages);
}

void RunFig11(BenchJson& json) {
  PrintHeader("Figure 11: Inherited-memory fault latency vs. copy chain length (ms/page)");
  std::printf("%6s %12s %12s\n", "chain", "ASVM", "XMM");
  std::vector<double> asvm;
  std::vector<double> xmm;
  std::vector<int> lengths = {1, 2, 3, 4, 5, 6, 7, 8};
  for (int n : lengths) {
    asvm.push_back(ChainFaultMs(DsmKind::kAsvm, n));
    xmm.push_back(ChainFaultMs(DsmKind::kXmm, n));
    std::printf("%6d %12.2f %12.2f\n", n, asvm.back(), xmm.back());
    json.Metric("chain_ms.asvm.n" + std::to_string(n), asvm.back());
    json.Metric("chain_ms.xmm.n" + std::to_string(n), xmm.back());
  }
  // Least-squares fit lb + n*la over the measured range.
  auto fit = [&](const std::vector<double>& y) {
    double sx = 0;
    double sy = 0;
    double sxx = 0;
    double sxy = 0;
    const double m = static_cast<double>(lengths.size());
    for (size_t i = 0; i < lengths.size(); ++i) {
      sx += lengths[i];
      sy += y[i];
      sxx += static_cast<double>(lengths[i]) * lengths[i];
      sxy += lengths[i] * y[i];
    }
    const double la = (m * sxy - sx * sy) / (m * sxx - sx * sx);
    const double lb = (sy - la * sx) / m;
    return std::make_pair(lb, la);
  };
  auto [asvm_lb, asvm_la] = fit(asvm);
  auto [xmm_lb, xmm_la] = fit(xmm);
  std::printf("\nFit lb + n*la:\n");
  std::printf("  ASVM: lb = %.2f ms, la = %.2f ms/hop   (paper: 2.7 + 0.48n)\n", asvm_lb,
              asvm_la);
  std::printf("  XMM:  lb = %.2f ms, la = %.2f ms/hop   (paper: 5.0 + 4.3n)\n", xmm_lb, xmm_la);
  std::printf("  Chain of 8 (256-node spawn tree): ASVM %.1f ms, XMM %.1f ms"
              "   (paper: 6.4 vs 35)\n",
              asvm_lb + 8 * asvm_la, xmm_lb + 8 * xmm_la);
  json.Metric("fit_lb_ms.asvm", asvm_lb, 2.7);
  json.Metric("fit_la_ms.asvm", asvm_la, 0.48);
  json.Metric("fit_lb_ms.xmm", xmm_lb, 5.0);
  json.Metric("fit_la_ms.xmm", xmm_la, 4.3);
  json.Metric("chain8_ms.asvm", asvm_lb + 8 * asvm_la, 6.4);
  json.Metric("chain8_ms.xmm", xmm_lb + 8 * xmm_la, 35.0);
}

}  // namespace
}  // namespace asvm

int main(int argc, char** argv) {
  asvm::BenchJson json(argc, argv);
  asvm::RunFig11(json);
  return json.Write("fig11_copy_chain") ? 0 : 1;
}
