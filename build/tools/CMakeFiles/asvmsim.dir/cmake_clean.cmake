file(REMOVE_RECURSE
  "CMakeFiles/asvmsim.dir/asvmsim.cpp.o"
  "CMakeFiles/asvmsim.dir/asvmsim.cpp.o.d"
  "asvmsim"
  "asvmsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvmsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
