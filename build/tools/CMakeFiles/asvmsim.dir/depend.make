# Empty dependencies file for asvmsim.
# This may be replaced when dependencies are built.
