# Empty dependencies file for asvm_machvm.
# This may be replaced when dependencies are built.
