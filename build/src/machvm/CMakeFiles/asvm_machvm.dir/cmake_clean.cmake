file(REMOVE_RECURSE
  "CMakeFiles/asvm_machvm.dir/default_pager.cc.o"
  "CMakeFiles/asvm_machvm.dir/default_pager.cc.o.d"
  "CMakeFiles/asvm_machvm.dir/disk.cc.o"
  "CMakeFiles/asvm_machvm.dir/disk.cc.o.d"
  "CMakeFiles/asvm_machvm.dir/file_pager.cc.o"
  "CMakeFiles/asvm_machvm.dir/file_pager.cc.o.d"
  "CMakeFiles/asvm_machvm.dir/node_vm.cc.o"
  "CMakeFiles/asvm_machvm.dir/node_vm.cc.o.d"
  "CMakeFiles/asvm_machvm.dir/task_memory.cc.o"
  "CMakeFiles/asvm_machvm.dir/task_memory.cc.o.d"
  "CMakeFiles/asvm_machvm.dir/vm_map.cc.o"
  "CMakeFiles/asvm_machvm.dir/vm_map.cc.o.d"
  "CMakeFiles/asvm_machvm.dir/vm_object.cc.o"
  "CMakeFiles/asvm_machvm.dir/vm_object.cc.o.d"
  "libasvm_machvm.a"
  "libasvm_machvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvm_machvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
