
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machvm/default_pager.cc" "src/machvm/CMakeFiles/asvm_machvm.dir/default_pager.cc.o" "gcc" "src/machvm/CMakeFiles/asvm_machvm.dir/default_pager.cc.o.d"
  "/root/repo/src/machvm/disk.cc" "src/machvm/CMakeFiles/asvm_machvm.dir/disk.cc.o" "gcc" "src/machvm/CMakeFiles/asvm_machvm.dir/disk.cc.o.d"
  "/root/repo/src/machvm/file_pager.cc" "src/machvm/CMakeFiles/asvm_machvm.dir/file_pager.cc.o" "gcc" "src/machvm/CMakeFiles/asvm_machvm.dir/file_pager.cc.o.d"
  "/root/repo/src/machvm/node_vm.cc" "src/machvm/CMakeFiles/asvm_machvm.dir/node_vm.cc.o" "gcc" "src/machvm/CMakeFiles/asvm_machvm.dir/node_vm.cc.o.d"
  "/root/repo/src/machvm/task_memory.cc" "src/machvm/CMakeFiles/asvm_machvm.dir/task_memory.cc.o" "gcc" "src/machvm/CMakeFiles/asvm_machvm.dir/task_memory.cc.o.d"
  "/root/repo/src/machvm/vm_map.cc" "src/machvm/CMakeFiles/asvm_machvm.dir/vm_map.cc.o" "gcc" "src/machvm/CMakeFiles/asvm_machvm.dir/vm_map.cc.o.d"
  "/root/repo/src/machvm/vm_object.cc" "src/machvm/CMakeFiles/asvm_machvm.dir/vm_object.cc.o" "gcc" "src/machvm/CMakeFiles/asvm_machvm.dir/vm_object.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asvm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/asvm_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/asvm_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
