file(REMOVE_RECURSE
  "libasvm_machvm.a"
)
