file(REMOVE_RECURSE
  "CMakeFiles/asvm_core.dir/machine.cc.o"
  "CMakeFiles/asvm_core.dir/machine.cc.o.d"
  "libasvm_core.a"
  "libasvm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
