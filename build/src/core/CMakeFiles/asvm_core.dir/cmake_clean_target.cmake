file(REMOVE_RECURSE
  "libasvm_core.a"
)
