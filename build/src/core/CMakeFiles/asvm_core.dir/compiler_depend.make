# Empty compiler generated dependencies file for asvm_core.
# This may be replaced when dependencies are built.
