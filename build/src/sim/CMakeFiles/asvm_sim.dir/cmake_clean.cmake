file(REMOVE_RECURSE
  "CMakeFiles/asvm_sim.dir/engine.cc.o"
  "CMakeFiles/asvm_sim.dir/engine.cc.o.d"
  "libasvm_sim.a"
  "libasvm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
