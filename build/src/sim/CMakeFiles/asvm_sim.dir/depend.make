# Empty dependencies file for asvm_sim.
# This may be replaced when dependencies are built.
