file(REMOVE_RECURSE
  "libasvm_sim.a"
)
