file(REMOVE_RECURSE
  "libasvm_apps.a"
)
