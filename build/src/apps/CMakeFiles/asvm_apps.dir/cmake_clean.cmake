file(REMOVE_RECURSE
  "CMakeFiles/asvm_apps.dir/sor.cc.o"
  "CMakeFiles/asvm_apps.dir/sor.cc.o.d"
  "libasvm_apps.a"
  "libasvm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
