# Empty dependencies file for asvm_apps.
# This may be replaced when dependencies are built.
