# Empty dependencies file for asvm_dsm.
# This may be replaced when dependencies are built.
