file(REMOVE_RECURSE
  "libasvm_dsm.a"
)
