file(REMOVE_RECURSE
  "CMakeFiles/asvm_dsm.dir/cluster.cc.o"
  "CMakeFiles/asvm_dsm.dir/cluster.cc.o.d"
  "libasvm_dsm.a"
  "libasvm_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvm_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
