file(REMOVE_RECURSE
  "CMakeFiles/asvm_mappedfs.dir/file_bench.cc.o"
  "CMakeFiles/asvm_mappedfs.dir/file_bench.cc.o.d"
  "libasvm_mappedfs.a"
  "libasvm_mappedfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvm_mappedfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
