# Empty dependencies file for asvm_mappedfs.
# This may be replaced when dependencies are built.
