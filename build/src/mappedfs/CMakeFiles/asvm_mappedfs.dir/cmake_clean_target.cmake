file(REMOVE_RECURSE
  "libasvm_mappedfs.a"
)
