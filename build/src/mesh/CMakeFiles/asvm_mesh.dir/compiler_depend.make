# Empty compiler generated dependencies file for asvm_mesh.
# This may be replaced when dependencies are built.
