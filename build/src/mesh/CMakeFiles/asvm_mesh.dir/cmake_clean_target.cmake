file(REMOVE_RECURSE
  "libasvm_mesh.a"
)
