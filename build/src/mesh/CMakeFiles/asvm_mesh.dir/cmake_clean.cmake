file(REMOVE_RECURSE
  "CMakeFiles/asvm_mesh.dir/network.cc.o"
  "CMakeFiles/asvm_mesh.dir/network.cc.o.d"
  "CMakeFiles/asvm_mesh.dir/topology.cc.o"
  "CMakeFiles/asvm_mesh.dir/topology.cc.o.d"
  "libasvm_mesh.a"
  "libasvm_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvm_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
