# Empty dependencies file for asvm_em3d.
# This may be replaced when dependencies are built.
