file(REMOVE_RECURSE
  "libasvm_em3d.a"
)
