file(REMOVE_RECURSE
  "CMakeFiles/asvm_em3d.dir/em3d.cc.o"
  "CMakeFiles/asvm_em3d.dir/em3d.cc.o.d"
  "libasvm_em3d.a"
  "libasvm_em3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvm_em3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
