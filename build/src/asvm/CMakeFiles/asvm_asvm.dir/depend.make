# Empty dependencies file for asvm_asvm.
# This may be replaced when dependencies are built.
