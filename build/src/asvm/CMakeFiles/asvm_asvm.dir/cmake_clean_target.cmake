file(REMOVE_RECURSE
  "libasvm_asvm.a"
)
