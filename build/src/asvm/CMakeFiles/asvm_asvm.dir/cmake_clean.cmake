file(REMOVE_RECURSE
  "CMakeFiles/asvm_asvm.dir/agent.cc.o"
  "CMakeFiles/asvm_asvm.dir/agent.cc.o.d"
  "CMakeFiles/asvm_asvm.dir/agent_coherency.cc.o"
  "CMakeFiles/asvm_asvm.dir/agent_coherency.cc.o.d"
  "CMakeFiles/asvm_asvm.dir/agent_paging.cc.o"
  "CMakeFiles/asvm_asvm.dir/agent_paging.cc.o.d"
  "CMakeFiles/asvm_asvm.dir/asvm_system.cc.o"
  "CMakeFiles/asvm_asvm.dir/asvm_system.cc.o.d"
  "CMakeFiles/asvm_asvm.dir/monitor.cc.o"
  "CMakeFiles/asvm_asvm.dir/monitor.cc.o.d"
  "CMakeFiles/asvm_asvm.dir/range_lock.cc.o"
  "CMakeFiles/asvm_asvm.dir/range_lock.cc.o.d"
  "libasvm_asvm.a"
  "libasvm_asvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvm_asvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
