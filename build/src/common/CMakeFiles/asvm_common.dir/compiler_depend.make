# Empty compiler generated dependencies file for asvm_common.
# This may be replaced when dependencies are built.
