file(REMOVE_RECURSE
  "CMakeFiles/asvm_common.dir/log.cc.o"
  "CMakeFiles/asvm_common.dir/log.cc.o.d"
  "CMakeFiles/asvm_common.dir/rng.cc.o"
  "CMakeFiles/asvm_common.dir/rng.cc.o.d"
  "CMakeFiles/asvm_common.dir/stats.cc.o"
  "CMakeFiles/asvm_common.dir/stats.cc.o.d"
  "CMakeFiles/asvm_common.dir/status.cc.o"
  "CMakeFiles/asvm_common.dir/status.cc.o.d"
  "CMakeFiles/asvm_common.dir/types.cc.o"
  "CMakeFiles/asvm_common.dir/types.cc.o.d"
  "libasvm_common.a"
  "libasvm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
