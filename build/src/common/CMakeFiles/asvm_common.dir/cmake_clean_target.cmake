file(REMOVE_RECURSE
  "libasvm_common.a"
)
