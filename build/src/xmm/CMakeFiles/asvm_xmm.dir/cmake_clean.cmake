file(REMOVE_RECURSE
  "CMakeFiles/asvm_xmm.dir/xmm_agent.cc.o"
  "CMakeFiles/asvm_xmm.dir/xmm_agent.cc.o.d"
  "CMakeFiles/asvm_xmm.dir/xmm_system.cc.o"
  "CMakeFiles/asvm_xmm.dir/xmm_system.cc.o.d"
  "libasvm_xmm.a"
  "libasvm_xmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvm_xmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
