# Empty dependencies file for asvm_xmm.
# This may be replaced when dependencies are built.
