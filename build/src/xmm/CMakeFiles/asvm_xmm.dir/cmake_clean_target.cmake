file(REMOVE_RECURSE
  "libasvm_xmm.a"
)
