
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xmm/xmm_agent.cc" "src/xmm/CMakeFiles/asvm_xmm.dir/xmm_agent.cc.o" "gcc" "src/xmm/CMakeFiles/asvm_xmm.dir/xmm_agent.cc.o.d"
  "/root/repo/src/xmm/xmm_system.cc" "src/xmm/CMakeFiles/asvm_xmm.dir/xmm_system.cc.o" "gcc" "src/xmm/CMakeFiles/asvm_xmm.dir/xmm_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asvm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/asvm_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/machvm/CMakeFiles/asvm_machvm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/asvm_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/asvm_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
