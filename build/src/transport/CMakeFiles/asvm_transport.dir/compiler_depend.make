# Empty compiler generated dependencies file for asvm_transport.
# This may be replaced when dependencies are built.
