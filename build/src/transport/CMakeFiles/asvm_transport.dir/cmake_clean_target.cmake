file(REMOVE_RECURSE
  "libasvm_transport.a"
)
