file(REMOVE_RECURSE
  "CMakeFiles/asvm_transport.dir/transport.cc.o"
  "CMakeFiles/asvm_transport.dir/transport.cc.o.d"
  "libasvm_transport.a"
  "libasvm_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvm_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
