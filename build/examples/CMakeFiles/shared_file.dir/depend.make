# Empty dependencies file for shared_file.
# This may be replaced when dependencies are built.
