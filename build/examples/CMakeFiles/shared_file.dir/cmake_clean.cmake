file(REMOVE_RECURSE
  "CMakeFiles/shared_file.dir/shared_file.cpp.o"
  "CMakeFiles/shared_file.dir/shared_file.cpp.o.d"
  "shared_file"
  "shared_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
