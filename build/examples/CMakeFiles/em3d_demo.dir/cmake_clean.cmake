file(REMOVE_RECURSE
  "CMakeFiles/em3d_demo.dir/em3d_demo.cpp.o"
  "CMakeFiles/em3d_demo.dir/em3d_demo.cpp.o.d"
  "em3d_demo"
  "em3d_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em3d_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
