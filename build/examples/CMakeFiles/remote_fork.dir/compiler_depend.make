# Empty compiler generated dependencies file for remote_fork.
# This may be replaced when dependencies are built.
