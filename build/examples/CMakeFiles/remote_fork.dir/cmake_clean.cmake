file(REMOVE_RECURSE
  "CMakeFiles/remote_fork.dir/remote_fork.cpp.o"
  "CMakeFiles/remote_fork.dir/remote_fork.cpp.o.d"
  "remote_fork"
  "remote_fork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_fork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
