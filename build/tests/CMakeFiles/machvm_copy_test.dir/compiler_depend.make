# Empty compiler generated dependencies file for machvm_copy_test.
# This may be replaced when dependencies are built.
