file(REMOVE_RECURSE
  "CMakeFiles/machvm_copy_test.dir/machvm_copy_test.cc.o"
  "CMakeFiles/machvm_copy_test.dir/machvm_copy_test.cc.o.d"
  "machvm_copy_test"
  "machvm_copy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machvm_copy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
