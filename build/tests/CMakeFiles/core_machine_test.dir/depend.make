# Empty dependencies file for core_machine_test.
# This may be replaced when dependencies are built.
