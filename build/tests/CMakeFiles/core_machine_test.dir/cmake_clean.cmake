file(REMOVE_RECURSE
  "CMakeFiles/core_machine_test.dir/core_machine_test.cc.o"
  "CMakeFiles/core_machine_test.dir/core_machine_test.cc.o.d"
  "core_machine_test"
  "core_machine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
