# Empty dependencies file for asvm_coherency_test.
# This may be replaced when dependencies are built.
