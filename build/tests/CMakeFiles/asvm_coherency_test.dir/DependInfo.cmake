
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/asvm_coherency_test.cc" "tests/CMakeFiles/asvm_coherency_test.dir/asvm_coherency_test.cc.o" "gcc" "tests/CMakeFiles/asvm_coherency_test.dir/asvm_coherency_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asvm/CMakeFiles/asvm_asvm.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/asvm_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/machvm/CMakeFiles/asvm_machvm.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/asvm_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/asvm_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/asvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
