file(REMOVE_RECURSE
  "CMakeFiles/asvm_coherency_test.dir/asvm_coherency_test.cc.o"
  "CMakeFiles/asvm_coherency_test.dir/asvm_coherency_test.cc.o.d"
  "asvm_coherency_test"
  "asvm_coherency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvm_coherency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
