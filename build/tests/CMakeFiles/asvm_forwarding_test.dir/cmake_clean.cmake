file(REMOVE_RECURSE
  "CMakeFiles/asvm_forwarding_test.dir/asvm_forwarding_test.cc.o"
  "CMakeFiles/asvm_forwarding_test.dir/asvm_forwarding_test.cc.o.d"
  "asvm_forwarding_test"
  "asvm_forwarding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvm_forwarding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
