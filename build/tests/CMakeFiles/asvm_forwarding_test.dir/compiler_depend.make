# Empty compiler generated dependencies file for asvm_forwarding_test.
# This may be replaced when dependencies are built.
