file(REMOVE_RECURSE
  "CMakeFiles/em3d_test.dir/em3d_test.cc.o"
  "CMakeFiles/em3d_test.dir/em3d_test.cc.o.d"
  "em3d_test"
  "em3d_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em3d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
