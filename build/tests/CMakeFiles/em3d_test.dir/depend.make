# Empty dependencies file for em3d_test.
# This may be replaced when dependencies are built.
