file(REMOVE_RECURSE
  "CMakeFiles/machvm_paging_test.dir/machvm_paging_test.cc.o"
  "CMakeFiles/machvm_paging_test.dir/machvm_paging_test.cc.o.d"
  "machvm_paging_test"
  "machvm_paging_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machvm_paging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
