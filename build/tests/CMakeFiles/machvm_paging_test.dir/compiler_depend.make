# Empty compiler generated dependencies file for machvm_paging_test.
# This may be replaced when dependencies are built.
