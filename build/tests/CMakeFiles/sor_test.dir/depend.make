# Empty dependencies file for sor_test.
# This may be replaced when dependencies are built.
