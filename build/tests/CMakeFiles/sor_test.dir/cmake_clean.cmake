file(REMOVE_RECURSE
  "CMakeFiles/sor_test.dir/sor_test.cc.o"
  "CMakeFiles/sor_test.dir/sor_test.cc.o.d"
  "sor_test"
  "sor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
