file(REMOVE_RECURSE
  "CMakeFiles/machvm_map_test.dir/machvm_map_test.cc.o"
  "CMakeFiles/machvm_map_test.dir/machvm_map_test.cc.o.d"
  "machvm_map_test"
  "machvm_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machvm_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
