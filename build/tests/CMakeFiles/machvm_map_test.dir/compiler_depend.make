# Empty compiler generated dependencies file for machvm_map_test.
# This may be replaced when dependencies are built.
