# Empty compiler generated dependencies file for atomic_file_io_test.
# This may be replaced when dependencies are built.
