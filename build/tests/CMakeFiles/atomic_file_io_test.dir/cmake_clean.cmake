file(REMOVE_RECURSE
  "CMakeFiles/atomic_file_io_test.dir/atomic_file_io_test.cc.o"
  "CMakeFiles/atomic_file_io_test.dir/atomic_file_io_test.cc.o.d"
  "atomic_file_io_test"
  "atomic_file_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomic_file_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
