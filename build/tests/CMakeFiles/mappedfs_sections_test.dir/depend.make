# Empty dependencies file for mappedfs_sections_test.
# This may be replaced when dependencies are built.
