file(REMOVE_RECURSE
  "CMakeFiles/mappedfs_sections_test.dir/mappedfs_sections_test.cc.o"
  "CMakeFiles/mappedfs_sections_test.dir/mappedfs_sections_test.cc.o.d"
  "mappedfs_sections_test"
  "mappedfs_sections_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mappedfs_sections_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
