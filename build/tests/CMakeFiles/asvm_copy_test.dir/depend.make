# Empty dependencies file for asvm_copy_test.
# This may be replaced when dependencies are built.
