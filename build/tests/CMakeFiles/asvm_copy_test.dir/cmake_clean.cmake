file(REMOVE_RECURSE
  "CMakeFiles/asvm_copy_test.dir/asvm_copy_test.cc.o"
  "CMakeFiles/asvm_copy_test.dir/asvm_copy_test.cc.o.d"
  "asvm_copy_test"
  "asvm_copy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvm_copy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
