file(REMOVE_RECURSE
  "CMakeFiles/xmm_internals_test.dir/xmm_internals_test.cc.o"
  "CMakeFiles/xmm_internals_test.dir/xmm_internals_test.cc.o.d"
  "xmm_internals_test"
  "xmm_internals_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmm_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
