# Empty dependencies file for xmm_internals_test.
# This may be replaced when dependencies are built.
