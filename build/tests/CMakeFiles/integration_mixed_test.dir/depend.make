# Empty dependencies file for integration_mixed_test.
# This may be replaced when dependencies are built.
