file(REMOVE_RECURSE
  "CMakeFiles/integration_mixed_test.dir/integration_mixed_test.cc.o"
  "CMakeFiles/integration_mixed_test.dir/integration_mixed_test.cc.o.d"
  "integration_mixed_test"
  "integration_mixed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_mixed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
