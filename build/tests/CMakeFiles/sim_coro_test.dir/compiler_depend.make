# Empty compiler generated dependencies file for sim_coro_test.
# This may be replaced when dependencies are built.
