file(REMOVE_RECURSE
  "CMakeFiles/sim_coro_test.dir/sim_coro_test.cc.o"
  "CMakeFiles/sim_coro_test.dir/sim_coro_test.cc.o.d"
  "sim_coro_test"
  "sim_coro_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_coro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
