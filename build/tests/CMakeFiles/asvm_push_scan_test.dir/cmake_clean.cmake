file(REMOVE_RECURSE
  "CMakeFiles/asvm_push_scan_test.dir/asvm_push_scan_test.cc.o"
  "CMakeFiles/asvm_push_scan_test.dir/asvm_push_scan_test.cc.o.d"
  "asvm_push_scan_test"
  "asvm_push_scan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvm_push_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
