# Empty dependencies file for asvm_push_scan_test.
# This may be replaced when dependencies are built.
