file(REMOVE_RECURSE
  "CMakeFiles/asvm_paging_test.dir/asvm_paging_test.cc.o"
  "CMakeFiles/asvm_paging_test.dir/asvm_paging_test.cc.o.d"
  "asvm_paging_test"
  "asvm_paging_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvm_paging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
