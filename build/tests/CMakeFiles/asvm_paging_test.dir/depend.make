# Empty dependencies file for asvm_paging_test.
# This may be replaced when dependencies are built.
