file(REMOVE_RECURSE
  "CMakeFiles/machvm_pager_test.dir/machvm_pager_test.cc.o"
  "CMakeFiles/machvm_pager_test.dir/machvm_pager_test.cc.o.d"
  "machvm_pager_test"
  "machvm_pager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machvm_pager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
