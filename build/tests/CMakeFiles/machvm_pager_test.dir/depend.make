# Empty dependencies file for machvm_pager_test.
# This may be replaced when dependencies are built.
