# Empty compiler generated dependencies file for asvm_extensions_test.
# This may be replaced when dependencies are built.
