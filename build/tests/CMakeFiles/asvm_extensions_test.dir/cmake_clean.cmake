file(REMOVE_RECURSE
  "CMakeFiles/asvm_extensions_test.dir/asvm_extensions_test.cc.o"
  "CMakeFiles/asvm_extensions_test.dir/asvm_extensions_test.cc.o.d"
  "asvm_extensions_test"
  "asvm_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvm_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
