file(REMOVE_RECURSE
  "CMakeFiles/xmm_test.dir/xmm_test.cc.o"
  "CMakeFiles/xmm_test.dir/xmm_test.cc.o.d"
  "xmm_test"
  "xmm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
