# Empty compiler generated dependencies file for xmm_test.
# This may be replaced when dependencies are built.
