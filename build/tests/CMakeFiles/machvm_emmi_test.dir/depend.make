# Empty dependencies file for machvm_emmi_test.
# This may be replaced when dependencies are built.
