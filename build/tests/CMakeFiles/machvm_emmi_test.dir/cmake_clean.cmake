file(REMOVE_RECURSE
  "CMakeFiles/machvm_emmi_test.dir/machvm_emmi_test.cc.o"
  "CMakeFiles/machvm_emmi_test.dir/machvm_emmi_test.cc.o.d"
  "machvm_emmi_test"
  "machvm_emmi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machvm_emmi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
