file(REMOVE_RECURSE
  "CMakeFiles/mappedfs_test.dir/mappedfs_test.cc.o"
  "CMakeFiles/mappedfs_test.dir/mappedfs_test.cc.o.d"
  "mappedfs_test"
  "mappedfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mappedfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
