# Empty dependencies file for mappedfs_test.
# This may be replaced when dependencies are built.
