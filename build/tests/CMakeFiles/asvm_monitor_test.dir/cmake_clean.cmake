file(REMOVE_RECURSE
  "CMakeFiles/asvm_monitor_test.dir/asvm_monitor_test.cc.o"
  "CMakeFiles/asvm_monitor_test.dir/asvm_monitor_test.cc.o.d"
  "asvm_monitor_test"
  "asvm_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asvm_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
