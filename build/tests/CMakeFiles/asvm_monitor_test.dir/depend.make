# Empty dependencies file for asvm_monitor_test.
# This may be replaced when dependencies are built.
