file(REMOVE_RECURSE
  "CMakeFiles/machvm_memory_test.dir/machvm_memory_test.cc.o"
  "CMakeFiles/machvm_memory_test.dir/machvm_memory_test.cc.o.d"
  "machvm_memory_test"
  "machvm_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machvm_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
