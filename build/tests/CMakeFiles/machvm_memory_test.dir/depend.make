# Empty dependencies file for machvm_memory_test.
# This may be replaced when dependencies are built.
