# Empty dependencies file for bench_ext_striping.
# This may be replaced when dependencies are built.
