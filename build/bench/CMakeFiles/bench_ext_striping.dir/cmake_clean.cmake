file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_striping.dir/bench_ext_striping.cc.o"
  "CMakeFiles/bench_ext_striping.dir/bench_ext_striping.cc.o.d"
  "bench_ext_striping"
  "bench_ext_striping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
