file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_paging.dir/bench_ablation_paging.cc.o"
  "CMakeFiles/bench_ablation_paging.dir/bench_ablation_paging.cc.o.d"
  "bench_ablation_paging"
  "bench_ablation_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
