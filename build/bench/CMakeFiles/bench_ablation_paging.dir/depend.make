# Empty dependencies file for bench_ablation_paging.
# This may be replaced when dependencies are built.
