# Empty dependencies file for bench_fig11_copy_chain.
# This may be replaced when dependencies are built.
