file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_copy_chain.dir/bench_fig11_copy_chain.cc.o"
  "CMakeFiles/bench_fig11_copy_chain.dir/bench_fig11_copy_chain.cc.o.d"
  "bench_fig11_copy_chain"
  "bench_fig11_copy_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_copy_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
