file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_file_transfer.dir/bench_table2_file_transfer.cc.o"
  "CMakeFiles/bench_table2_file_transfer.dir/bench_table2_file_transfer.cc.o.d"
  "bench_table2_file_transfer"
  "bench_table2_file_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_file_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
