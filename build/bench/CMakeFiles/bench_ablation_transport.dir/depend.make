# Empty dependencies file for bench_ablation_transport.
# This may be replaced when dependencies are built.
