file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_metadata.dir/bench_ablation_metadata.cc.o"
  "CMakeFiles/bench_ablation_metadata.dir/bench_ablation_metadata.cc.o.d"
  "bench_ablation_metadata"
  "bench_ablation_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
