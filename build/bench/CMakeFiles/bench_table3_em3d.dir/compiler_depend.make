# Empty compiler generated dependencies file for bench_table3_em3d.
# This may be replaced when dependencies are built.
