file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_em3d.dir/bench_table3_em3d.cc.o"
  "CMakeFiles/bench_table3_em3d.dir/bench_table3_em3d.cc.o.d"
  "bench_table3_em3d"
  "bench_table3_em3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_em3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
