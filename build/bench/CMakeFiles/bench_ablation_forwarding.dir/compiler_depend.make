# Empty compiler generated dependencies file for bench_ablation_forwarding.
# This may be replaced when dependencies are built.
