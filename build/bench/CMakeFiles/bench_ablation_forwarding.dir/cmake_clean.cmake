file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_forwarding.dir/bench_ablation_forwarding.cc.o"
  "CMakeFiles/bench_ablation_forwarding.dir/bench_ablation_forwarding.cc.o.d"
  "bench_ablation_forwarding"
  "bench_ablation_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
