# Empty dependencies file for bench_fig10_write_fault_scaling.
# This may be replaced when dependencies are built.
