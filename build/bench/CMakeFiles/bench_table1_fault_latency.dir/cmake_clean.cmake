file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_fault_latency.dir/bench_table1_fault_latency.cc.o"
  "CMakeFiles/bench_table1_fault_latency.dir/bench_table1_fault_latency.cc.o.d"
  "bench_table1_fault_latency"
  "bench_table1_fault_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_fault_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
