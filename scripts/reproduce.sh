#!/usr/bin/env bash
# Full reproduction pipeline: build, run every test, regenerate every table
# and figure, and leave the transcripts in test_output.txt / bench_output.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    "$b"
  done
} 2>&1 | tee bench_output.txt

echo
echo "Done. Compare bench_output.txt against EXPERIMENTS.md."
