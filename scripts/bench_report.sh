#!/usr/bin/env bash
# Machine-readable perf report: runs the paper's headline benchmarks
# (Table 1, Table 2, Figure 10) with --json output and merges them into one
# BENCH_*.json report. With --check, diffs every metric against the
# checked-in baseline (bench/baseline/BENCH_baseline.json) and fails when a
# metric drifts by more than the tolerance (default 15%).
#
#   scripts/bench_report.sh --out=BENCH_pr6.json
#   scripts/bench_report.sh --out=BENCH_pr6.json --check
#
# The simulation is deterministic, so any drift is a real modeling or
# performance change, not noise; the tolerance exists for intentional
# model-parameter tuning in later PRs.
#
# The report also folds in two host-wall-clock suites that --check gates by
# floor rather than diffing against the baseline:
#  * bench_simcore's scheduler shapes (pooled timer wheel vs. reference
#    heap): minimum wheel/heap speedup per shape (--speedup-floor,
#    default 1.5 on the queue-bound shapes).
#  * bench_sharded_speedup's 32x32 write-fault storm at --shards=1/2/4/8:
#    the 4-shard run must beat single-threaded by >= --shard-speedup-floor
#    (default 1.5x) on each DSM.
#  * bench_failover's recovery timeline (kill-manager + rolling-restart on
#    all three DSMs): latencies diff against the baseline like any other
#    metric, and --check additionally requires exactly one promotion per kill
#    (ASVM/XMM), at least one ownership reclaim per kill (IVY has no manager
#    to promote), one restart per rolling restart, and a >= 1.2x gossip
#    speedup on the death-notice A/B column (a bystander cancelled
#    mid-backoff must beat one that serves out its own retry horizon). Every
#    timeline digest the sharded bench emits — the storm shapes and the
#    per-workload sweep (em3d, sor, file-read, file-write, fork-chain at 128
#    nodes) — must match shards=1 exactly (every *.digest_match == 1). The
#    per-workload speedup columns are reported, not floor-gated: those shapes
#    are barrier-dominated, and only the queue-bound storm is required to
#    parallelize.
#  * IVY forwarding-chain health from the same sharded sweep: every
#    *.ivy.dropped_forwards must be 0 (a dropped forward means a request hit
#    the hop ceiling — a hint cycle) and every *.ivy.chain_length_max must
#    stay bounded (path compression keeps probable-owner walks short; the
#    ceiling it would otherwise drop at is 4x the node count).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=BENCH_pr6.json
BUILD=build
BASELINE=bench/baseline/BENCH_baseline.json
TOLERANCE=0.15
SPEEDUP_FLOOR=1.5
SHARD_SPEEDUP_FLOOR=1.5
CHECK=0
for arg in "$@"; do
  case "$arg" in
    --out=*) OUT="${arg#--out=}" ;;
    --build=*) BUILD="${arg#--build=}" ;;
    --baseline=*) BASELINE="${arg#--baseline=}" ;;
    --tolerance=*) TOLERANCE="${arg#--tolerance=}" ;;
    --speedup-floor=*) SPEEDUP_FLOOR="${arg#--speedup-floor=}" ;;
    --shard-speedup-floor=*) SHARD_SPEEDUP_FLOOR="${arg#--shard-speedup-floor=}" ;;
    --check) CHECK=1 ;;
    *)
      echo "unknown argument: $arg" >&2
      echo "usage: $0 [--out=FILE] [--build=DIR] [--baseline=FILE] [--tolerance=F] [--speedup-floor=F] [--shard-speedup-floor=F] [--check]" >&2
      exit 2
      ;;
  esac
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "running Table 1 (fault latencies)..."
"$BUILD/bench/bench_table1_fault_latency" --json="$tmp/table1.json" > "$tmp/table1.txt"
echo "running Table 2 (file transfer rates)..."
"$BUILD/bench/bench_table2_file_transfer" --json="$tmp/table2.json" > "$tmp/table2.txt"
echo "running Figure 10 (write-fault scaling + mesh sweep)..."
"$BUILD/bench/bench_fig10_write_fault_scaling" --json="$tmp/fig10.json" > "$tmp/fig10.txt"
echo "running simcore scheduler shapes (wheel vs. reference heap)..."
"$BUILD/bench/bench_simcore" --benchmark_filter=NONE --json="$tmp/simcore.json" > "$tmp/simcore.txt"
echo "running sharded sweep (storm shards=1/2/4/8 + per-workload shards=1/4)..."
"$BUILD/bench/bench_sharded_speedup" --json="$tmp/sharded.json" > "$tmp/sharded.txt"
echo "running failover recovery (kill-manager + rolling-restart)..."
"$BUILD/bench/bench_failover" --json="$tmp/failover.json" > "$tmp/failover.txt"

python3 - "$tmp" "$OUT" <<'PYEOF'
import json
import sys

tmp, out = sys.argv[1], sys.argv[2]
report = {"schema": "asvm-bench-report/v1", "benches": {}}
for part in ("table1", "table2", "fig10", "simcore", "sharded", "failover"):
    with open(f"{tmp}/{part}.json") as f:
        doc = json.load(f)
    report["benches"][doc["bench"]] = doc["metrics"]
with open(out, "w") as f:
    json.dump(report, f, indent=2, sort_keys=True)
    f.write("\n")
n = sum(len(m) for m in report["benches"].values())
print(f"wrote {out}: {len(report['benches'])} benches, {n} metrics")
PYEOF

if [ "$CHECK" = 1 ]; then
  python3 - "$OUT" "$BASELINE" "$TOLERANCE" "$SPEEDUP_FLOOR" "$SHARD_SPEEDUP_FLOOR" <<'PYEOF'
import json
import sys

out, baseline_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
speedup_floor = float(sys.argv[4])
shard_floor = float(sys.argv[5])
with open(out) as f:
    current = json.load(f)
with open(baseline_path) as f:
    baseline = json.load(f)

failures = []
checked = 0
for bench, metrics in baseline["benches"].items():
    cur_metrics = current["benches"].get(bench)
    if cur_metrics is None:
        failures.append(f"{bench}: missing from current report")
        continue
    for name, entry in metrics.items():
        cur = cur_metrics.get(name)
        if cur is None:
            failures.append(f"{bench}/{name}: metric disappeared")
            continue
        old, new = entry["value"], cur["value"]
        checked += 1
        if old == 0:
            if new != 0:
                failures.append(f"{bench}/{name}: {old} -> {new}")
            continue
        drift = abs(new - old) / abs(old)
        if drift > tol:
            failures.append(
                f"{bench}/{name}: {old:.4g} -> {new:.4g} ({drift * 100:.1f}% drift)")

# Scheduler speedup gate: the queue-bound shapes must keep the wheel ahead
# of the reference heap by at least the floor. The ring-lane post_chain shape
# and the small-queue exponential shape run near parity by design and only
# need to stay in the same league.
relaxed = {"shape.post_chain.speedup": 0.6, "shape.exponential_arrivals.speedup": 1.0}
simcore = current["benches"].get("simcore", {})
speedups = {k: v for k, v in simcore.items() if k.endswith(".speedup")}
if not speedups:
    failures.append("simcore: no scheduler speedup metrics in report")
for name, entry in speedups.items():
    floor = relaxed.get(name, speedup_floor)
    checked += 1
    if entry["value"] < floor:
        failures.append(
            f"simcore/{name}: wheel/heap speedup {entry['value']:.2f}x "
            f"below floor {floor:.2f}x")

# Sharded-core gate: at 4 shards the storm must beat single-threaded by the
# floor on both DSMs, and every sharded digest — the storm shapes AND the
# per-workload sweep — must be identical to shards=1 (a fast sharded run with
# a different timeline is a bug, not a win). The digest gate always applies;
# the wall-clock floor only makes sense when the host actually has cores to
# parallelize over (CI runners do — a 1-core dev container cannot show
# parallel speedup, only barrier overhead), and it only applies to the
# queue-bound storm — the per-workload speedup columns are informational.
import os
sharded = current["benches"].get("sharded_speedup", {})
if not sharded:
    failures.append("sharded_speedup: bench missing from report")
gate_speedup = (os.cpu_count() or 1) >= 4
if not gate_speedup:
    print(f"note: host has {os.cpu_count()} CPU(s) — sharded speedup floor skipped "
          "(digest identity still enforced)")
if gate_speedup:
    for dsm in ("asvm", "xmm", "ivy"):
        entry = sharded.get(f"storm.{dsm}.shards4.speedup")
        checked += 1
        if entry is None:
            failures.append(f"sharded_speedup/storm.{dsm}.shards4.speedup: missing")
        elif entry["value"] < shard_floor:
            failures.append(
                f"sharded_speedup/storm.{dsm}.shards4.speedup: "
                f"{entry['value']:.2f}x below floor {shard_floor:.2f}x")
digests = {k: v for k, v in sharded.items() if k.endswith(".digest_match")}
# 2 storm shapes + 5 workloads, each on all three DSMs.
if len(digests) < 21:
    failures.append(
        f"sharded_speedup: only {len(digests)} digest_match metrics (expected 21)")
for name, entry in digests.items():
    checked += 1
    if entry["value"] != 1:
        failures.append(
            f"sharded_speedup/{name}: sharded timeline diverged from shards=1")

# IVY chain gate: a dropped forward means a request orbited a probable-owner
# hint cycle until the hop ceiling killed it — always a protocol bug. And the
# longest observed chain must stay far under that ceiling (4x node count):
# path compression is supposed to keep walks to a handful of hops, so a chain
# past 8 on these shapes means compression stopped working.
dropped = {k: v for k, v in sharded.items() if k.endswith(".ivy.dropped_forwards")}
chains = {k: v for k, v in sharded.items() if k.endswith(".ivy.chain_length_max")}
# 2 storm shapes + 5 workloads.
if len(dropped) < 7 or len(chains) < 7:
    failures.append(
        f"sharded_speedup: only {len(dropped)} dropped_forwards / "
        f"{len(chains)} chain_length_max IVY metrics (expected 7 each)")
for name, entry in dropped.items():
    checked += 1
    if entry["value"] != 0:
        failures.append(
            f"sharded_speedup/{name}: {entry['value']:g} request(s) hit the hop "
            "ceiling (hint cycle)")
for name, entry in chains.items():
    checked += 1
    if entry["value"] > 8:
        failures.append(
            f"sharded_speedup/{name}: longest probable-owner chain "
            f"{entry['value']:g} hops exceeds bound 8 (path compression broken?)")

# Failover gate: the recovery bench must observe exactly one promotion per
# kill and one restart per rolling restart on each DSM — zero means the
# recovery path silently stopped firing, more means a split-brain double
# promotion. IVY has no manager to promote: its kill-manager recovery is an
# ownership reclaim (>= 1, the victim's untouched pages are reclaimed by
# whoever touches them first), gated alongside. Latency drift is handled by
# the baseline diff above.
failover = current["benches"].get("failover", {})
if not failover:
    failures.append("failover: bench missing from report")
for name in ("promotions.asvm", "promotions.xmm",
             "restarts.asvm", "restarts.xmm", "restarts.ivy"):
    entry = failover.get(name)
    checked += 1
    if entry is None:
        failures.append(f"failover/{name}: missing")
    elif entry["value"] != 1:
        failures.append(f"failover/{name}: expected exactly 1, got {entry['value']:g}")
reclaims = failover.get("reclaims.ivy")
checked += 1
if reclaims is None:
    failures.append("failover/reclaims.ivy: missing")
elif reclaims["value"] < 1:
    failures.append("failover/reclaims.ivy: expected >= 1, got "
                    f"{reclaims['value']:g} — owner reclaim never fired")

# Gossip gate: a bystander whose op is cancelled by the death notice must
# recover measurably faster than one that serves out its own retry horizon,
# on every DSM; and the notice counter must fire exactly when enabled.
for dsm in ("asvm", "xmm", "ivy"):
    entry = failover.get(f"death_notice_speedup.{dsm}")
    checked += 1
    if entry is None:
        failures.append(f"failover/death_notice_speedup.{dsm}: missing")
    elif entry["value"] < 1.2:
        failures.append(
            f"failover/death_notice_speedup.{dsm}: gossip speedup "
            f"{entry['value']:.2f}x below floor 1.20x")
    on = failover.get(f"death_notices.on.{dsm}")
    off = failover.get(f"death_notices.off.{dsm}")
    checked += 2
    if on is None or on["value"] < 1:
        failures.append(f"failover/death_notices.on.{dsm}: expected >= 1")
    if off is None or off["value"] != 0:
        failures.append(f"failover/death_notices.off.{dsm}: expected exactly 0")

print(f"checked {checked} metrics against {baseline_path} (tolerance {tol * 100:.0f}%)")
if failures:
    print(f"PERF REGRESSION: {len(failures)} metric(s) outside tolerance:")
    for f_ in failures:
        print(f"  {f_}")
    sys.exit(1)
print("all metrics within tolerance")
PYEOF
fi
