// asvmsim — command-line driver for the simulated multicomputer: pick a
// memory manager, a node count and a workload, get timings and protocol
// statistics. The quickest way to explore configurations beyond what the
// canned benchmarks sweep.
//
//   asvmsim --dsm=asvm --nodes=16 --workload=em3d --cells=64000 --iters=100
//   asvmsim --dsm=xmm  --nodes=8  --workload=file-read --mb=4
//   asvmsim --dsm=asvm --nodes=4  --workload=fault-sweep --trace
//   asvmsim --dsm=asvm --nodes=6  --workload=fork-chain --chain=5
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "src/asvm/agent.h"
#include "src/asvm/asvm_system.h"
#include "src/common/trace.h"
#include "src/core/machine.h"
#include "src/core/measure.h"
#include "src/dsm/failover.h"
#include "src/apps/sor.h"
#include "src/em3d/em3d.h"
#include "src/mappedfs/file_bench.h"

namespace asvm {
namespace {

struct Options {
  DsmKind dsm = DsmKind::kAsvm;
  SchedulerKind scheduler = SchedulerKind::kTimerWheel;
  int shards = 1;
  int nodes = 8;
  std::string workload = "fault-sweep";
  int64_t cells = 64000;
  int iters = 100;
  int measure_iters = 5;
  double mb = 4.0;
  int chain = 4;
  int stripes = 1;
  int io_group = 0;  // 0: keep the MachineConfig default (Paragon: 32)
  bool trace = false;
  std::string trace_json;  // --trace-json=FILE: Chrome trace_event output
  bool breakdown = false;  // per-fault causal breakdown table
  bool stats = false;
  bool msg_stats = false;
  bool dynamic_fwd = true;
  bool static_fwd = true;
  std::string fault_profile = "none";
  uint64_t fault_seed = 1;
  bool fault_report = false;
  // --fault-victim=N[,N...]: overrides the profile's removal nodes in order;
  // extra victims clone the last removal's schedule. Validated against
  // --nodes once the whole command line is parsed.
  std::vector<long long> fault_victims;
};

void Usage() {
  std::printf(
      "asvmsim — ASVM/XMM distributed memory simulator\n\n"
      "  --dsm=asvm|xmm|ivy       memory manager (default asvm)\n"
      "  --scheduler=wheel|heap   event scheduler: pooled timer wheel or the\n"
      "                           reference heap (identical timelines; default wheel)\n"
      "  --shards=N               parallel simulation shards (worker threads); every\n"
      "                           workload's timeline stays byte-identical to\n"
      "                           --shards=1 (default 1; clamped to the I/O-group\n"
      "                           block count, ceil(nodes / io-group))\n"
      "  --nodes=N                node count (default 8)\n"
      "  --io-group=N             compute nodes per paging disk (default 32, the\n"
      "                           Paragon ratio); shard boundaries align to these\n"
      "                           groups\n"
      "  --workload=W             em3d | sor | file-read | file-write | fault-sweep | fork-chain\n"
      "  --cells=N                EM3D cells (default 64000)\n"
      "  --iters=N                EM3D iterations to report (default 100)\n"
      "  --mb=F                   file size in MB (default 4)\n"
      "  --chain=N                fork-chain length (default 4)\n"
      "  --stripes=N              file stripes / I/O nodes (default 1)\n"
      "  --no-dynamic             disable dynamic forwarding (ASVM)\n"
      "  --no-static              disable static forwarding (ASVM)\n"
      "  --trace                  print the machine-wide event trace (ASVM and XMM)\n"
      "  --trace-json=FILE        write the trace as Chrome trace_event JSON\n"
      "                           (open in Perfetto / chrome://tracing)\n"
      "  --breakdown              per-fault causal breakdown (request/forward/\n"
      "                           manager-service/data-transfer/retry segments)\n"
      "  --stats                  dump the statistics registry\n"
      "  --msg-stats              count transport messages per protocol type\n"
      "  --fault-profile=P        none | jitter | slow-node | degraded-links |\n"
      "                           kill-manager | kill-owner | kill-many | cascade |\n"
      "                           rolling-restart (default none); node-removal\n"
      "                           profiles auto-enable manager failover (replicated\n"
      "                           directories, leases, online promotion)\n"
      "  --fault-victim=N[,N...]  override the profile's removal nodes in order\n"
      "                           (any node may be the victim — manager, page owner,\n"
      "                           or bystander); extra victims repeat the last\n"
      "                           removal's schedule\n"
      "  --fault-seed=N           seed for the fault plan's RNG (default 1)\n"
      "  --fault-report           print the fault plan and robustness counters\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

// Strict numeric parsing: the whole value must be a number in [lo, hi].
// "--shards=abc" and "--nodes=99999999999999" are errors, not silent zeros.
bool ParseInt64(const char* flag, const std::string& value, long long lo, long long hi,
                long long* out) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0' || errno == ERANGE || v < lo || v > hi) {
    std::printf("%s expects an integer in [%lld, %lld], got '%s'\n", flag, lo, hi,
                value.c_str());
    return false;
  }
  *out = v;
  return true;
}

bool ParseInt(const char* flag, const std::string& value, int lo, int hi, int* out) {
  long long v = 0;
  if (!ParseInt64(flag, value, lo, hi, &v)) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool ParseU64(const char* flag, const std::string& value, uint64_t* out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || value[0] == '-' || *end != '\0' || errno == ERANGE) {
    std::printf("%s expects a non-negative integer, got '%s'\n", flag, value.c_str());
    return false;
  }
  *out = v;
  return true;
}

// Strict victim-list parsing: comma-separated integers, no empty elements, no
// trailing junk, no duplicates. Range (< nodes) is checked after the whole
// command line is parsed, since --nodes may come later.
bool ParseVictimList(const std::string& value, std::vector<long long>* out) {
  out->clear();
  size_t pos = 0;
  while (pos <= value.size()) {
    const size_t comma = value.find(',', pos);
    const std::string elem =
        value.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    long long v = 0;
    if (!ParseInt64("--fault-victim", elem, 0, std::numeric_limits<long long>::max(), &v)) {
      return false;
    }
    for (long long seen : *out) {
      if (seen == v) {
        std::printf("--fault-victim lists node %lld twice\n", v);
        return false;
      }
    }
    out->push_back(v);
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return !out->empty();
}

bool ParseDouble(const char* flag, const std::string& value, double lo, double hi,
                 double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || *end != '\0' || errno == ERANGE || !(v >= lo && v <= hi)) {
    std::printf("%s expects a number in [%g, %g], got '%s'\n", flag, lo, hi, value.c_str());
    return false;
  }
  *out = v;
  return true;
}

bool Parse(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--dsm", &value)) {
      if (value == "asvm") {
        opts->dsm = DsmKind::kAsvm;
      } else if (value == "xmm") {
        opts->dsm = DsmKind::kXmm;
      } else if (value == "ivy") {
        opts->dsm = DsmKind::kIvy;
      } else {
        std::printf("unknown dsm '%s'\n", value.c_str());
        return false;
      }
    } else if (ParseFlag(argv[i], "--scheduler", &value)) {
      if (!SchedulerKindFromName(value, &opts->scheduler)) {
        std::printf("unknown scheduler '%s'\n", value.c_str());
        return false;
      }
    } else if (ParseFlag(argv[i], "--shards", &value)) {
      if (!ParseInt("--shards", value, 1, 4096, &opts->shards)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--nodes", &value)) {
      if (!ParseInt("--nodes", value, 1, 1 << 20, &opts->nodes)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--io-group", &value)) {
      if (!ParseInt("--io-group", value, 1, 1 << 20, &opts->io_group)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--workload", &value)) {
      opts->workload = value;
    } else if (ParseFlag(argv[i], "--cells", &value)) {
      long long cells = 0;
      if (!ParseInt64("--cells", value, 1, std::numeric_limits<long long>::max() / 1024,
                      &cells)) {
        return false;
      }
      opts->cells = cells;
    } else if (ParseFlag(argv[i], "--iters", &value)) {
      if (!ParseInt("--iters", value, 1, 1 << 30, &opts->iters)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--mb", &value)) {
      if (!ParseDouble("--mb", value, 1.0 / 1024.0, 1 << 20, &opts->mb)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--chain", &value)) {
      if (!ParseInt("--chain", value, 1, 1 << 20, &opts->chain)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--stripes", &value)) {
      if (!ParseInt("--stripes", value, 1, 1 << 20, &opts->stripes)) {
        return false;
      }
    } else if (std::strcmp(argv[i], "--no-dynamic") == 0) {
      opts->dynamic_fwd = false;
    } else if (std::strcmp(argv[i], "--no-static") == 0) {
      opts->static_fwd = false;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      opts->trace = true;
    } else if (ParseFlag(argv[i], "--trace-json", &value)) {
      opts->trace_json = value;
    } else if (std::strcmp(argv[i], "--breakdown") == 0) {
      opts->breakdown = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      opts->stats = true;
    } else if (std::strcmp(argv[i], "--msg-stats") == 0) {
      opts->msg_stats = true;
    } else if (ParseFlag(argv[i], "--fault-profile", &value)) {
      opts->fault_profile = value;
    } else if (ParseFlag(argv[i], "--fault-victim", &value)) {
      if (!ParseVictimList(value, &opts->fault_victims)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--fault-seed", &value)) {
      if (!ParseU64("--fault-seed", value, &opts->fault_seed)) {
        return false;
      }
    } else if (std::strcmp(argv[i], "--fault-report") == 0) {
      opts->fault_report = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return false;
    } else {
      std::printf("unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

int RunEm3d(Machine& machine, const Options& opts) {
  Em3dParams params;
  params.cells = opts.cells;
  params.iterations = opts.iters;
  if (opts.nodes == 1) {
    std::printf("em3d %lld cells sequential: %.1f s (%d iterations, modeled)\n",
                static_cast<long long>(opts.cells), Em3dSequentialSeconds(params),
                opts.iters);
    return 0;
  }
  Em3dResult r = RunEm3dTimed(machine, params, opts.nodes, opts.measure_iters);
  std::printf("em3d %lld cells on %d nodes under %s: %.1f s for %d iterations\n",
              static_cast<long long>(opts.cells), opts.nodes, ToString(opts.dsm), r.seconds,
              opts.iters);
  std::printf("  faults in measured window: %lld, wire traffic: %.1f MB\n",
              static_cast<long long>(r.faults), r.bytes_on_wire / (1024.0 * 1024.0));
  return 0;
}

int RunSor(Machine& machine, const Options& opts) {
  SorParams params;
  // Interpret --cells as total grid cells (square grid).
  int64_t side = 1;
  while ((side + 1) * (side + 1) <= opts.cells) {
    ++side;
  }
  params.rows = side;
  params.cols = side;
  params.iterations = opts.iters;
  if (opts.nodes == 1) {
    std::printf("sor %lldx%lld sequential: %.2f s (%d iterations, modeled)\n",
                static_cast<long long>(side), static_cast<long long>(side),
                SorSequentialSeconds(params), opts.iters);
    return 0;
  }
  SorResult r = RunSorTimed(machine, params, opts.nodes, opts.measure_iters);
  std::printf("sor %lldx%lld on %d nodes under %s: %.2f s for %d iterations\n",
              static_cast<long long>(side), static_cast<long long>(side), opts.nodes,
              ToString(opts.dsm), r.seconds, opts.iters);
  return 0;
}

int RunFile(Machine& machine, const Options& opts, bool write) {
  const VmSize pages =
      static_cast<VmSize>(opts.mb * 1024 * 1024) / machine.page_size();
  const int compute_nodes = opts.nodes - 1;
  if (compute_nodes < 1) {
    std::printf("file workloads need --nodes >= 2 (node 0 is the I/O node)\n");
    return 1;
  }
  MemObjectId region;
  if (opts.stripes > 1) {
    region = machine.CreateStripedFile("cli", pages, opts.stripes, /*prefilled=*/!write);
  } else if (write) {
    region = machine.CreateMappedFile("cli", pages, /*prefilled=*/false);
  } else {
    int32_t file_id = machine.cluster().file_pager().CreateFile("cli", pages, true);
    region = machine.dsm().CreateFileRegion(file_id, pages);
  }
  FileBenchResult r =
      write ? RunParallelFileWrite(machine, region, pages, compute_nodes, /*first_node=*/1)
            : RunParallelFileRead(machine, region, pages, compute_nodes, /*first_node=*/1);
  std::printf("%s of a %.1f MB file by %d nodes under %s: %.2f MB/s per node "
              "(makespan %.3f s)\n",
              write ? "parallel write" : "parallel read", opts.mb, compute_nodes,
              ToString(opts.dsm), r.per_node_mb_s, r.makespan_seconds);
  return 0;
}

// Advances simulated time just past `when` in bounded slices. A parked wake
// guarantees clock progress even when the queue is otherwise empty (RunFor
// only advances the clock while events remain).
void AdvanceJustPast(Machine& machine, SimTime when) {
  if (machine.Now() > when) {
    return;
  }
  machine.engine().Schedule(when + kMillisecond - machine.Now(), []() {});
  while (machine.Now() <= when) {
    machine.RunFor(kMillisecond);
  }
}

// Latency of one access without the full-drain quiescence of MeasureReadMs /
// MeasureWriteMs: a failover plan parks far-future removal/restore wakes in
// the queue, and a full drain would fast-forward the sweep past them.
template <typename T>
double SlicedAccessMs(Machine& machine, Future<T> f) {
  const SimDuration d = AwaitLatency(machine, f);
  machine.RunFor(5 * kMillisecond);  // bounded settle for background traffic
  return ToMilliseconds(d);
}

int RunFaultSweep(Machine& machine, const Options& opts, bool failover) {
  MemObjectId region = machine.CreateSharedRegion(0, 8);
  if (opts.nodes < 4) {
    std::printf("fault-sweep needs --nodes >= 4\n");
    return 1;
  }
  TaskMemory& creator = machine.MapRegion(1, region);
  TaskMemory& reader = machine.MapRegion(2, region);
  TaskMemory& writer = machine.MapRegion(3, region);
  double ms = failover ? SlicedAccessMs(machine, creator.WriteU64(0, 1))
                       : MeasureWriteMs(machine, creator, 0, 1);
  std::printf("first write (zero-fill grant):        %7.2f ms\n", ms);
  ms = failover ? SlicedAccessMs(machine, reader.ReadU64(0))
                : MeasureReadMs(machine, reader, 0);
  std::printf("remote read (owner serve):            %7.2f ms\n", ms);
  ms = failover ? SlicedAccessMs(machine, writer.WriteU64(0, 2))
                : MeasureWriteMs(machine, writer, 0, 2);
  std::printf("remote write (invalidate + transfer): %7.2f ms\n", ms);
  ms = failover ? SlicedAccessMs(machine, writer.WriteU64(0, 3))
                : MeasureWriteMs(machine, writer, 0, 3);
  std::printf("local re-write (cache hit):           %7.2f ms\n", ms);

  if (!failover) {
    return 0;
  }
  // Recovery phase: cross the plan's removals, then access through the
  // promotion — the read pays silence detection plus backup promotion, the
  // write runs against the already-promoted manager.
  const FaultPlan* plan = machine.fault_plan();
  SimTime last_removal = 0;
  SimTime last_restore = 0;
  for (const NodeRemoval& r : plan->params().removals) {
    last_removal = std::max(last_removal, r.at);
    last_restore = std::max(last_restore, r.restore_at);
  }
  AdvanceJustPast(machine, last_removal);
  // Any node may be the victim now (--fault-victim), so the recovery actors
  // must be picked from the survivors: the first two alive nodes at or above
  // node 2 (nodes 0/1 keep their early-phase roles when alive). With the
  // default profiles this reproduces the historical reader=2 / writer=3 pair.
  NodeId survivor_reader = kInvalidNode;
  NodeId survivor_writer = kInvalidNode;
  for (NodeId n = 2; n < static_cast<NodeId>(opts.nodes); ++n) {
    if (!plan->NodeAlive(n, machine.Now())) {
      continue;
    }
    if (survivor_reader == kInvalidNode) {
      survivor_reader = n;
    } else {
      survivor_writer = n;
      break;
    }
  }
  if (survivor_reader == kInvalidNode || survivor_writer == kInvalidNode) {
    std::printf("fault-sweep needs two surviving nodes >= 2\n");
    return 1;
  }
  // Reuse the early-phase mappings where the survivor kept its role, so the
  // historical profiles replay the exact same timeline as before.
  TaskMemory& post_reader =
      survivor_reader == 2 ? reader : machine.MapRegion(survivor_reader, region);
  TaskMemory& post_writer =
      survivor_writer == 3 ? writer : machine.MapRegion(survivor_writer, region);
  // An untouched page: first-touch forwarding terminates at the dead home, so
  // the access pays silence detection plus backup promotion. (Previously
  // touched pages may be served by their surviving owners without ever
  // noticing the kill — that is the point of distributed ownership.)
  const VmOffset fresh = 4 * machine.page_size();
  ms = SlicedAccessMs(machine, post_reader.ReadU64(fresh));
  std::printf("post-kill read (detect + promote):    %7.2f ms\n", ms);
  ms = SlicedAccessMs(machine, post_writer.WriteU64(fresh, 4));
  std::printf("post-kill write (promoted manager):   %7.2f ms\n", ms);
  if (last_restore > 0) {
    // Rejoin phase: the removed node is back with cold caches and must be
    // able to fault the region in again.
    AdvanceJustPast(machine, last_restore);
    NodeId rejoined_node = 0;
    for (const NodeRemoval& r : plan->params().removals) {
      if (r.restore_at == last_restore) {
        rejoined_node = r.node;
        break;
      }
    }
    TaskMemory& rejoined = machine.MapRegion(rejoined_node, region);
    ms = SlicedAccessMs(machine, rejoined.ReadU64(0));
    std::printf("rejoined read (cold cache):           %7.2f ms\n", ms);
  }
  return 0;
}

int RunForkChain(Machine& machine, const Options& opts) {
  if (opts.chain + 1 > opts.nodes) {
    std::printf("fork-chain needs --nodes >= chain+1\n");
    return 1;
  }
  TaskMemory& origin = machine.CreatePrivateTask(0, 8);
  for (VmOffset p = 0; p < 8; ++p) {
    auto w = origin.WriteU64(p * machine.page_size(), 500 + p);
    machine.Run();
  }
  TaskMemory* current = &origin;
  for (int hop = 1; hop <= opts.chain; ++hop) {
    auto fork = machine.RemoteFork(hop - 1, *current, hop);
    machine.Run();
    if (!fork.ready()) {
      std::printf("fork to node %d failed\n", hop);
      return 1;
    }
    current = &machine.WrapMap(hop, fork.value());
  }
  double total = 0;
  for (VmOffset p = 0; p < 8; ++p) {
    uint64_t v = 0;
    total += MeasureReadMs(machine, *current, p * machine.page_size(), &v);
    if (v != 500 + p) {
      std::printf("DATA MISMATCH at page %llu\n", static_cast<unsigned long long>(p));
      return 1;
    }
  }
  std::printf("fault across a %d-stage copy chain under %s: %.2f ms/page (8 pages)\n",
              opts.chain, ToString(opts.dsm), total / 8.0);
  return 0;
}

int Run(const Options& opts) {
  // Every workload is in the sharded contract: driver-side directory
  // mutations (forks, region setup) are serialized through the cluster
  // mutation API at deterministic barriers (DESIGN.md §13), so --shards=N
  // reproduces the --shards=1 timeline byte for byte.
  MachineConfig config;
  config.nodes = opts.nodes;
  config.dsm = opts.dsm;
  config.scheduler = opts.scheduler;
  config.shards = opts.shards;
  if (opts.io_group > 0) {
    config.nodes_per_io_group = opts.io_group;
  }
  config.file_pager_count = opts.stripes;
  config.asvm.dynamic_forwarding = opts.dynamic_fwd;
  config.asvm.static_forwarding = opts.static_fwd;
  config.per_type_message_stats = opts.msg_stats;
  bool failover = false;
  if (opts.fault_profile != "none") {
    if (!FaultProfileFromName(opts.fault_profile, opts.fault_seed, opts.nodes,
                              &config.fault)) {
      std::printf("unknown fault profile '%s'\n", opts.fault_profile.c_str());
      return 2;
    }
    // Faulty links need the protocol hardening on: deadline + bounded retry.
    config.retry.timeout_ns = 20 * kMillisecond;
    config.stall_watchdog = true;
    // Node-removal profiles additionally need the failover machinery, or the
    // run would wedge the moment the dead manager is asked for a page.
    failover = !config.fault.removals.empty();
    config.failover.enabled = failover;
  }
  if (!opts.fault_victims.empty()) {
    if (config.fault.removals.empty()) {
      std::printf("--fault-victim requires a node-removal profile "
                  "(profile '%s' removes no nodes)\n",
                  opts.fault_profile.c_str());
      return 2;
    }
    for (long long v : opts.fault_victims) {
      if (v >= opts.nodes) {
        std::printf("--fault-victim node %lld is out of range (--nodes=%d)\n", v,
                    opts.nodes);
        return 2;
      }
    }
    // Override the profile's victims in order; extra victims repeat the last
    // removal's schedule, so "--fault-profile=kill-manager
    // --fault-victim=1,2,5" kills three nodes at the same instant.
    auto& removals = config.fault.removals;
    for (size_t i = 0; i < opts.fault_victims.size(); ++i) {
      if (i < removals.size()) {
        removals[i].node = static_cast<NodeId>(opts.fault_victims[i]);
      } else {
        NodeRemoval extra = removals.back();
        extra.node = static_cast<NodeId>(opts.fault_victims[i]);
        removals.push_back(extra);
      }
    }
  }
  Machine machine(config);

  // One machine-wide trace stream, independent of the DSM choice. The JSON
  // and breakdown modes want the full timeline, so give them a deep buffer.
  const bool tracing = opts.trace || !opts.trace_json.empty() || opts.breakdown;
  TraceBuffer trace(1 << 18);
  if (tracing) {
    machine.AttachMonitor(&trace);
  }

  int rc = 1;
  if (opts.workload == "em3d") {
    rc = RunEm3d(machine, opts);
  } else if (opts.workload == "sor") {
    rc = RunSor(machine, opts);
  } else if (opts.workload == "file-read") {
    rc = RunFile(machine, opts, /*write=*/false);
  } else if (opts.workload == "file-write") {
    rc = RunFile(machine, opts, /*write=*/true);
  } else if (opts.workload == "fault-sweep") {
    rc = RunFaultSweep(machine, opts, failover);
  } else if (opts.workload == "fork-chain") {
    rc = RunForkChain(machine, opts);
  } else {
    std::printf("unknown workload '%s'\n", opts.workload.c_str());
  }

  std::printf("\nsimulated time: %.3f s, mesh traffic: %.2f MB in %lld messages\n",
              ToSeconds(machine.Now()),
              static_cast<double>(machine.stats().Get("mesh.bytes")) / (1024.0 * 1024.0),
              static_cast<long long>(machine.stats().Get("mesh.messages")));
  if (opts.trace) {
    std::printf("\nprotocol trace (last %zu events):\n%s", trace.events().size(),
                trace.Render().c_str());
  }
  if (!opts.trace_json.empty()) {
    const std::string json = ChromeTraceJson(trace);
    std::FILE* f = std::fopen(opts.trace_json.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot write %s\n", opts.trace_json.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %zu trace events to %s (load in Perfetto or chrome://tracing)\n",
                trace.events().size(), opts.trace_json.c_str());
  }
  if (opts.breakdown) {
    const std::vector<FaultBreakdown> faults = AnalyzeFaultBreakdowns(trace.events());
    RecordFaultBreakdowns(faults, machine.stats());
    std::printf("\n%s", RenderFaultBreakdowns(faults).c_str());
  }
  if (opts.msg_stats && !opts.stats) {
    // Print just the per-type transport counters without the full registry.
    std::printf("\nper-type message counts:\n");
    for (const auto& [name, value] : machine.stats().counters()) {
      if (name.find(".msg.") != std::string::npos) {
        std::printf("  %-48s %lld\n", name.c_str(), static_cast<long long>(value));
      }
    }
  }
  if (opts.fault_report) {
    std::printf("\nfault report:\n");
    if (machine.fault_plan() != nullptr) {
      std::printf("%s", machine.fault_plan()->Describe().c_str());
    } else {
      std::printf("  faults disabled\n");
    }
    const char* counters[] = {"fault.messages_dropped", "fault.jitter_messages",
                              "fault.jitter_ns",        "fault.degraded_messages",
                              "fault.slowed_messages",  "dsm.op_retries",
                              "dsm.op_timeouts",        "dsm.op_node_down",
                              "dsm.duplicates_suppressed", "sim.stalls_detected"};
    for (const char* name : counters) {
      std::printf("  %-28s %lld\n", name,
                  static_cast<long long>(machine.stats().Get(name)));
    }
    // The failover block is derived from the canonical list in failover.h so
    // a new counter can never silently drift out of the report.
    for (const char* name : kFailoverStatNames) {
      std::printf("  %-28s %lld\n", name,
                  static_cast<long long>(machine.stats().Get(name)));
    }
    if (!machine.last_stall_report().empty()) {
      std::printf("\nlast stall report:\n%s", machine.last_stall_report().c_str());
    }
  }
  if (opts.stats) {
    std::printf("\nstatistics registry:\n%s", machine.stats().Report().c_str());
  }
  return rc;
}

}  // namespace
}  // namespace asvm

int main(int argc, char** argv) {
  asvm::Options opts;
  if (!asvm::Parse(argc, argv, &opts)) {
    asvm::Usage();
    return 2;
  }
  return asvm::Run(opts);
}
