// EM3D: graph determinism, layout, and the key integration property — the
// parallel DSM execution produces bit-identical results to the sequential
// reference, under both ASVM and XMM.
#include <gtest/gtest.h>

#include "src/em3d/em3d.h"

namespace asvm {
namespace {

Em3dParams SmallParams() {
  Em3dParams params;
  params.cells = 240;
  params.iterations = 4;
  params.seed = 7;
  return params;
}

TEST(Em3dGraphTest, DeterministicForEqualSeeds) {
  Em3dParams params = SmallParams();
  Em3dGraph a(params, 3);
  Em3dGraph b(params, 3);
  EXPECT_EQ(a.e_neighbors(), b.e_neighbors());
  EXPECT_EQ(a.h_neighbors(), b.h_neighbors());
}

TEST(Em3dGraphTest, NeighborsAreInBounds) {
  Em3dGraph graph(SmallParams(), 3);
  for (int64_t nb : graph.e_neighbors()) {
    EXPECT_GE(nb, 0);
    EXPECT_LT(nb, graph.h_cells());
  }
  for (int64_t nb : graph.h_neighbors()) {
    EXPECT_GE(nb, 0);
    EXPECT_LT(nb, graph.e_cells());
  }
}

TEST(Em3dGraphTest, RemoteFractionRoughlyHolds) {
  Em3dParams params;
  params.cells = 20000;
  params.remote_fraction = 0.2;
  Em3dGraph graph(params, 4);
  int64_t remote = 0;
  const int k = params.edges_per_cell;
  for (int64_t i = 0; i < graph.e_cells(); ++i) {
    for (int j = 0; j < k; ++j) {
      if (graph.HOwner(graph.e_neighbors()[i * k + j]) != graph.EOwner(i)) {
        ++remote;
      }
    }
  }
  const double fraction =
      static_cast<double>(remote) / static_cast<double>(graph.e_cells() * k);
  EXPECT_NEAR(fraction, 0.2, 0.02);
}

TEST(Em3dGraphTest, RemoteEdgesGoToRingNeighbours) {
  Em3dParams params;
  params.cells = 20000;
  Em3dGraph graph(params, 8);
  const int k = params.edges_per_cell;
  for (int64_t i = 0; i < graph.e_cells(); ++i) {
    const NodeId mine = graph.EOwner(i);
    for (int j = 0; j < k; ++j) {
      const NodeId owner = graph.HOwner(graph.e_neighbors()[i * k + j]);
      if (owner != mine) {
        const int d = std::abs(owner - mine);
        EXPECT_TRUE(d == 1 || d == 7) << "remote edges stay on ring neighbours";
      }
    }
  }
}

TEST(Em3dGraphTest, SlicesArePageAligned) {
  Em3dGraph graph(SmallParams(), 3);
  for (NodeId n = 0; n < 3; ++n) {
    auto [lo, hi] = graph.ERange(n);
    if (lo < hi) {
      EXPECT_EQ(graph.EAddr(lo) % graph.page_size(), 0u)
          << "each node's slice starts on a page boundary (no false sharing)";
    }
  }
}

TEST(Em3dGraphTest, CellValuesNeverStraddlePages) {
  Em3dParams params = SmallParams();
  Em3dGraph graph(params, 3);
  for (int64_t i = 0; i < graph.e_cells(); ++i) {
    VmOffset a = graph.EAddr(i);
    EXPECT_EQ(a / graph.page_size(), (a + 7) / graph.page_size());
  }
}

TEST(Em3dGraphTest, PageSetsCoverOwnSlices) {
  Em3dGraph graph(SmallParams(), 3);
  for (NodeId n = 0; n < 3; ++n) {
    auto [lo, hi] = graph.ERange(n);
    for (int64_t i = lo; i < hi; ++i) {
      VmOffset page = graph.EAddr(i) / graph.page_size();
      const auto& writes = graph.EPhaseWritePages(n);
      EXPECT_TRUE(std::binary_search(writes.begin(), writes.end(), page));
    }
  }
}

TEST(Em3dTest, SequentialChecksumIsStable) {
  Em3dParams params = SmallParams();
  EXPECT_EQ(Em3dSequentialChecksum(params, 3), Em3dSequentialChecksum(params, 3));
  // Different node layouts give different graphs (remote edges differ).
  EXPECT_NE(Em3dSequentialChecksum(params, 3), Em3dSequentialChecksum(params, 2));
}

TEST(Em3dTest, SequentialSecondsMatchPaperCalibration) {
  Em3dParams params;
  params.cells = 64000;
  params.iterations = 100;
  EXPECT_NEAR(Em3dSequentialSeconds(params), 43.6, 0.5);
}

class Em3dVerifiedTest : public ::testing::TestWithParam<DsmKind> {};

TEST_P(Em3dVerifiedTest, ParallelMatchesSequentialBitForBit) {
  Em3dParams params = SmallParams();
  const int nodes = 3;
  MachineConfig config;
  config.nodes = nodes;
  config.dsm = GetParam();
  Machine machine(config);
  const uint64_t parallel = RunEm3dVerified(machine, params, nodes);
  const uint64_t sequential = Em3dSequentialChecksum(params, nodes);
  EXPECT_EQ(parallel, sequential);
}

TEST_P(Em3dVerifiedTest, TwoNodeRun) {
  Em3dParams params = SmallParams();
  params.cells = 160;
  params.iterations = 3;
  MachineConfig config;
  config.nodes = 2;
  config.dsm = GetParam();
  Machine machine(config);
  EXPECT_EQ(RunEm3dVerified(machine, params, 2), Em3dSequentialChecksum(params, 2));
}

INSTANTIATE_TEST_SUITE_P(BothSystems, Em3dVerifiedTest,
                         ::testing::Values(DsmKind::kAsvm, DsmKind::kXmm),
                         [](const ::testing::TestParamInfo<DsmKind>& info) {
                           return std::string(ToString(info.param));
                         });

TEST(Em3dTimedTest, AsvmScalesXmmDoesNot) {
  Em3dParams params;
  params.cells = 16000;
  params.iterations = 10;
  double asvm_1 = 0;
  double asvm_4 = 0;
  double xmm_4 = 0;
  {
    MachineConfig config;
    config.nodes = 1;
    config.dsm = DsmKind::kAsvm;
    config.user_memory_bytes = 32 * 1024 * 1024;
    Machine machine(config);
    asvm_1 = RunEm3dTimed(machine, params, 1, /*measure_iters=*/3).seconds;
  }
  {
    MachineConfig config;
    config.nodes = 4;
    config.dsm = DsmKind::kAsvm;
    Machine machine(config);
    asvm_4 = RunEm3dTimed(machine, params, 4, /*measure_iters=*/3).seconds;
  }
  {
    MachineConfig config;
    config.nodes = 4;
    config.dsm = DsmKind::kXmm;
    Machine machine(config);
    xmm_4 = RunEm3dTimed(machine, params, 4, /*measure_iters=*/3).seconds;
  }
  EXPECT_LT(asvm_4, asvm_1) << "ASVM should speed up with nodes";
  EXPECT_GT(xmm_4, asvm_4 * 3) << "XMM should be far slower than ASVM";
}

}  // namespace
}  // namespace asvm
