#include <gtest/gtest.h>

#include "src/machvm/node_vm.h"
#include "src/machvm/vm_map.h"
#include "src/sim/engine.h"

namespace asvm {
namespace {

class VmMapTest : public ::testing::Test {
 protected:
  VmMapTest() : vm_(engine_, 0, VmParams{.page_size = 4096, .frame_capacity = 64, .costs = {}}, nullptr) {}

  Engine engine_;
  NodeVm vm_;
};

TEST_F(VmMapTest, MapAndResolve) {
  VmMap* map = vm_.CreateMap();
  auto obj = vm_.CreateObject(16);
  ASSERT_EQ(map->Map(10, 16, obj, 0, Inheritance::kCopy), Status::kOk);

  auto r = map->Resolve(10 * 4096);
  ASSERT_NE(r.entry, nullptr);
  EXPECT_EQ(r.entry->object, obj);
  EXPECT_EQ(r.object_page, 0);

  r = map->Resolve(25 * 4096 + 123);
  ASSERT_NE(r.entry, nullptr);
  EXPECT_EQ(r.object_page, 15);

  r = map->Resolve(26 * 4096);
  EXPECT_EQ(r.entry, nullptr);
  r = map->Resolve(9 * 4096);
  EXPECT_EQ(r.entry, nullptr);
}

TEST_F(VmMapTest, ObjectOffsetShiftsPages) {
  VmMap* map = vm_.CreateMap();
  auto obj = vm_.CreateObject(32);
  ASSERT_EQ(map->Map(0, 8, obj, 16, Inheritance::kShare), Status::kOk);
  auto r = map->Resolve(3 * 4096);
  EXPECT_EQ(r.object_page, 19);
}

TEST_F(VmMapTest, OverlapRejected) {
  VmMap* map = vm_.CreateMap();
  auto a = vm_.CreateObject(8);
  auto b = vm_.CreateObject(8);
  ASSERT_EQ(map->Map(0, 8, a, 0, Inheritance::kCopy), Status::kOk);
  EXPECT_EQ(map->Map(4, 8, b, 0, Inheritance::kCopy), Status::kAlreadyExists);
  EXPECT_EQ(map->Map(7, 1, b, 0, Inheritance::kCopy), Status::kAlreadyExists);
  EXPECT_EQ(map->Map(8, 8, b, 0, Inheritance::kCopy), Status::kOk);
}

TEST_F(VmMapTest, AdjacentEntriesResolveIndependently) {
  VmMap* map = vm_.CreateMap();
  auto a = vm_.CreateObject(4);
  auto b = vm_.CreateObject(4);
  ASSERT_EQ(map->Map(0, 4, a, 0, Inheritance::kCopy), Status::kOk);
  ASSERT_EQ(map->Map(4, 4, b, 0, Inheritance::kCopy), Status::kOk);
  EXPECT_EQ(map->Resolve(3 * 4096).entry->object, a);
  EXPECT_EQ(map->Resolve(4 * 4096).entry->object, b);
}

TEST_F(VmMapTest, UnmapRemovesEntry) {
  VmMap* map = vm_.CreateMap();
  auto obj = vm_.CreateObject(8);
  ASSERT_EQ(map->Map(0, 8, obj, 0, Inheritance::kCopy), Status::kOk);
  EXPECT_EQ(map->Unmap(0), Status::kOk);
  EXPECT_EQ(map->Resolve(0).entry, nullptr);
  EXPECT_EQ(map->Unmap(0), Status::kNotFound);
}

TEST_F(VmMapTest, InvalidMapArguments) {
  VmMap* map = vm_.CreateMap();
  auto obj = vm_.CreateObject(8);
  EXPECT_EQ(map->Map(0, 0, obj, 0, Inheritance::kCopy), Status::kInvalidArgument);
  EXPECT_EQ(map->Map(0, 4, nullptr, 0, Inheritance::kCopy), Status::kInvalidArgument);
}

TEST_F(VmMapTest, ZeroFillReadThenWrite) {
  VmMap* map = vm_.CreateMap();
  auto obj = vm_.CreateObject(4);
  ASSERT_EQ(map->Map(0, 4, obj, 0, Inheritance::kCopy), Status::kOk);

  auto f = vm_.Fault(*map, 0, PageAccess::kRead);
  engine_.Run();
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.value(), Status::kOk);
  EXPECT_NE(obj->FindResident(0), nullptr);
  EXPECT_FALSE(obj->FindResident(0)->dirty);

  auto w = vm_.Fault(*map, 8, PageAccess::kWrite);
  engine_.Run();
  EXPECT_EQ(w.value(), Status::kOk);
  EXPECT_TRUE(obj->FindResident(0)->dirty);
}

TEST_F(VmMapTest, UnmappedFaultFails) {
  VmMap* map = vm_.CreateMap();
  auto f = vm_.Fault(*map, 0, PageAccess::kRead);
  engine_.Run();
  EXPECT_EQ(f.value(), Status::kInvalidArgument);
}

TEST_F(VmMapTest, TryAccessFastPathAfterFault) {
  VmMap* map = vm_.CreateMap();
  auto obj = vm_.CreateObject(4);
  ASSERT_EQ(map->Map(0, 4, obj, 0, Inheritance::kCopy), Status::kOk);
  EXPECT_EQ(vm_.TryAccess(*map, 100, PageAccess::kRead), nullptr);
  auto f = vm_.Fault(*map, 100, PageAccess::kRead);
  engine_.Run();
  ASSERT_EQ(f.value(), Status::kOk);
  EXPECT_NE(vm_.TryAccess(*map, 100, PageAccess::kRead), nullptr);
  EXPECT_NE(vm_.TryAccess(*map, 100, PageAccess::kWrite), nullptr);  // anonymous: write ok
}

TEST_F(VmMapTest, FaultChargesSimulatedTime) {
  VmMap* map = vm_.CreateMap();
  auto obj = vm_.CreateObject(4);
  ASSERT_EQ(map->Map(0, 4, obj, 0, Inheritance::kCopy), Status::kOk);
  auto f = vm_.Fault(*map, 0, PageAccess::kRead);
  engine_.Run();
  ASSERT_TRUE(f.ready());
  EXPECT_GE(engine_.Now(), vm_.costs().fault_base_ns);
}

}  // namespace
}  // namespace asvm
