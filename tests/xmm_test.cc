// NMK13 XMM baseline: centralized-manager coherency, the dirty-page
// write-to-paging-space behaviour, delayed copy via internal pagers, and the
// thread-pool deadlock ASVM's asynchronous design removes.
#include <gtest/gtest.h>

#include "src/machvm/task_memory.h"
#include "src/xmm/xmm_agent.h"
#include "src/xmm/xmm_system.h"
#include "tests/dsm_test_util.h"

namespace asvm {
namespace {

class XmmTest : public ::testing::Test {
 protected:
  void Build(int nodes, XmmConfig config = {}, size_t frames = 512) {
    cluster_ = std::make_unique<Cluster>(SmallClusterParams(nodes, frames));
    system_ = std::make_unique<XmmSystem>(*cluster_, config);
  }

  void BuildRegion(int nodes, VmSize pages = 16) {
    Build(nodes);
    region_ = system_->CreateSharedRegion(/*home=*/0, pages);
    harness_ = std::make_unique<DsmRegionHarness>(*cluster_, *system_, region_, pages);
  }

  TaskMemory MakeParent(NodeId node, VmSize pages) {
    NodeVm& vm = cluster_->vm(node);
    VmMap* map = vm.CreateMap();
    auto obj = vm.CreateObject(pages, CopyStrategy::kSymmetric);
    EXPECT_EQ(map->Map(0, pages, obj, 0, Inheritance::kCopy), Status::kOk);
    return TaskMemory(vm, *map);
  }

  TaskMemory Fork(NodeId src, TaskMemory& parent, NodeId dst) {
    auto f = system_->RemoteFork(src, parent.map(), dst);
    cluster_->Run();
    EXPECT_TRUE(f.ready());
    return TaskMemory(cluster_->vm(dst), *f.value());
  }

  uint64_t Read(TaskMemory& mem, VmOffset addr) {
    auto f = mem.ReadU64(addr);
    cluster_->Run();
    EXPECT_TRUE(f.ready());
    return f.ready() ? f.value() : ~0ULL;
  }

  void Write(TaskMemory& mem, VmOffset addr, uint64_t value) {
    auto f = mem.WriteU64(addr, value);
    cluster_->Run();
    ASSERT_TRUE(f.ready());
    ASSERT_EQ(f.value(), Status::kOk);
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<XmmSystem> system_;
  MemObjectId region_;
  std::unique_ptr<DsmRegionHarness> harness_;
};

TEST_F(XmmTest, SharedRegionCoherence) {
  BuildRegion(4);
  harness_->Write(0, 0, 42);
  EXPECT_EQ(harness_->Read(1, 0), 42u);
  EXPECT_EQ(harness_->Read(2, 0), 42u);
  harness_->Write(3, 0, 43);
  EXPECT_EQ(harness_->Read(0, 0), 43u);
  EXPECT_EQ(harness_->Read(1, 0), 43u);
}

TEST_F(XmmTest, SingleWriterEnforcedViaManager) {
  BuildRegion(4);
  harness_->Write(1, 0, 1);
  harness_->Write(2, 0, 2);
  harness_->Write(1, 0, 3);
  EXPECT_EQ(harness_->Read(3, 0), 3u);
  EXPECT_GT(cluster_->stats().Get("xmm.write_flushes"), 0);
}

TEST_F(XmmTest, DirtyPageWrittenToPagingSpaceOnFirstRemoteRequest) {
  BuildRegion(4);
  harness_->Write(1, 0, 7);  // node 1 holds the page dirty
  const int64_t cleanings = cluster_->stats().Get("xmm.dirty_cleanings");
  SimDuration first = harness_->TimedRead(2, 0);
  EXPECT_EQ(cluster_->stats().Get("xmm.dirty_cleanings"), cleanings + 1);
  // Second remote read: the page is clean at the pager — far cheaper.
  SimDuration second = harness_->TimedRead(3, 0);
  EXPECT_GT(first, 2 * second) << "first remote request pays the paging-space write";
  EXPECT_GT(first, 15 * kMillisecond);
}

TEST_F(XmmTest, AllRequestsSerializeAtManager) {
  BuildRegion(4);
  harness_->Write(0, 0, 1);
  // Reads from three nodes of the same page: all must flow through node 0's
  // manager over NORMA.
  harness_->Read(1, 0);
  harness_->Read(2, 0);
  harness_->Read(3, 0);
  EXPECT_GE(cluster_->stats().Get("xmm.manager_requests"), 4);
  EXPECT_GT(cluster_->stats().Get("transport.norma.messages"), 0);
  EXPECT_EQ(cluster_->stats().Get("transport.sts.messages"), 0);
}

TEST_F(XmmTest, UpgradeGrantCarriesNoData) {
  BuildRegion(4);
  harness_->Write(0, 0, 5);
  EXPECT_EQ(harness_->Read(1, 0), 5u);
  const int64_t pages_before = cluster_->stats().Get("transport.norma.page_messages");
  harness_->Write(1, 8, 6);  // node 1 already has a read copy
  // The flush of node 0's... node 0 holds no copy (write moved); only reader
  // flushes and the upgrade reply travel — no page payload to node 1.
  EXPECT_EQ(cluster_->stats().Get("transport.norma.page_messages"), pages_before);
  EXPECT_EQ(harness_->Read(2, 0), 5u);
  EXPECT_EQ(harness_->Read(2, 8), 6u);
}

TEST_F(XmmTest, ManagerStateTableIsPagesTimesNodes) {
  BuildRegion(8, /*pages=*/64);
  harness_->Write(1, 0, 1);
  // Manager (node 0) pays 64 pages x 8 nodes = 512 bytes minimum.
  EXPECT_GE(system_->MetadataBytes(0), 512u);
  // Non-manager nodes hold only proxy records.
  EXPECT_LT(system_->MetadataBytes(3), 512u);
}

TEST_F(XmmTest, RemoteForkChildSeesSnapshot) {
  Build(2);
  TaskMemory parent = MakeParent(0, 8);
  Write(parent, 0, 100);
  Write(parent, 4096, 200);
  TaskMemory child = Fork(0, parent, 1);
  EXPECT_EQ(Read(child, 0), 100u);
  EXPECT_EQ(Read(child, 4096), 200u);
  EXPECT_EQ(Read(child, 2 * 4096), 0u);
}

TEST_F(XmmTest, ForkSnapshotSurvivesParentWrites) {
  Build(2);
  TaskMemory parent = MakeParent(0, 8);
  Write(parent, 0, 100);
  TaskMemory child = Fork(0, parent, 1);
  Write(parent, 0, 999);  // local symmetric COW on the source node
  EXPECT_EQ(Read(child, 0), 100u);
  EXPECT_EQ(Read(parent, 0), 999u);
}

TEST_F(XmmTest, ChildWritesStayPrivate) {
  Build(2);
  TaskMemory parent = MakeParent(0, 8);
  Write(parent, 0, 1);
  TaskMemory child = Fork(0, parent, 1);
  Write(child, 0, 2);
  EXPECT_EQ(Read(parent, 0), 1u);
  EXPECT_EQ(Read(child, 0), 2u);
}

TEST_F(XmmTest, ForkChainTraversesPerNodePagers) {
  Build(3);
  TaskMemory gen0 = MakeParent(0, 4);
  Write(gen0, 0, 11);
  TaskMemory gen1 = Fork(0, gen0, 1);
  TaskMemory gen2 = Fork(1, gen1, 2);
  EXPECT_EQ(Read(gen2, 0), 11u);
  EXPECT_GE(cluster_->stats().Get("xmm.copy_faults"), 2)
      << "each chain stage runs an internal pager fault";
}

TEST_F(XmmTest, ChainLatencyGrowsSteeply) {
  Build(6);
  TaskMemory gen0 = MakeParent(0, 4);
  Write(gen0, 0, 42);
  std::vector<TaskMemory> gens;
  gens.push_back(gen0);
  for (NodeId n = 1; n < 6; ++n) {
    gens.push_back(Fork(n - 1, gens.back(), n));
  }
  SimTime start = cluster_->engine().Now();
  EXPECT_EQ(Read(gens.back(), 0), 42u);
  SimDuration latency = cluster_->engine().Now() - start;
  // Five chained NORMA round trips through blocking pagers: >> 10 ms.
  EXPECT_GT(latency, 10 * kMillisecond);
}

TEST_F(XmmTest, ChildDirtyPagesSurviveEviction) {
  XmmConfig config;
  Build(2, config, /*frames=*/12);
  TaskMemory parent = MakeParent(0, 32);
  Write(parent, 0, 1);
  TaskMemory child = Fork(0, parent, 1);
  for (VmSize p = 0; p < 32; ++p) {
    Write(child, p * 4096, 5000 + p);
  }
  for (VmSize p = 0; p < 32; ++p) {
    EXPECT_EQ(Read(child, p * 4096), 5000 + p) << "page " << p;
  }
}

TEST_F(XmmTest, CopyChainDeadlocksWithExhaustedThreadPool) {
  // The §3.1 scenario: a copy chain that crosses the same node twice, with a
  // single pager thread per node. ASVM's asynchronous transitions make this
  // impossible; NMK13 XMM deadlocks (we detect and fail the fault).
  XmmConfig config;
  config.copy_pager_threads = 1;
  Build(2, config);
  TaskMemory gen0 = MakeParent(0, 4);
  Write(gen0, 0, 1);
  TaskMemory gen1 = Fork(0, gen0, 1);   // pager on 0
  TaskMemory gen2 = Fork(1, gen1, 0);   // pager on 1, chain crosses 0 again
  TaskMemory gen3 = Fork(0, gen2, 1);   // pager on 0, chain 1 -> 0 -> 1 -> 0

  // Two concurrent deep faults from both ends exhaust the single-thread
  // pools; at least one must be refused as a deadlock.
  auto f1 = gen3.Touch(0, 8, PageAccess::kRead);
  auto f2 = gen2.Touch(8, 8, PageAccess::kRead);
  cluster_->Run();
  ASSERT_TRUE(f1.ready());
  ASSERT_TRUE(f2.ready());
  const bool any_deadlock =
      f1.value() == Status::kDeadlock || f2.value() == Status::kDeadlock;
  EXPECT_TRUE(any_deadlock) << "chain crossing a node twice with 1 thread must deadlock";
  EXPECT_GT(cluster_->stats().Get("xmm.copy_deadlocks"), 0);
}

}  // namespace
}  // namespace asvm
