// Focused suite for RangeLockService (§6 future-work primitive): overlap
// serialization, ascending-page-order deadlock freedom under many concurrent
// lockers, release waking queued waiters in bounded rounds, and behaviour
// under the jitter fault profile with the retry machinery armed. The fault
// runs execute on both event schedulers — the lock protocol leans on
// equal-time event ordering (queued requests replayed on release), so it is a
// natural consumer of the (time, seq) contract.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/asvm/range_lock.h"
#include "src/core/machine.h"

namespace asvm {
namespace {

constexpr size_t kPage = 8192;

struct Locker {
  NodeId node;
  VmOffset addr;
  VmSize len;
  TaskMemory* mem = nullptr;
  Future<Status> acquired;
  bool released = false;
};

// Issues every acquisition up front, then repeatedly releases whichever
// lockers have completed until all have held and released their range.
// Ascending page order guarantees each round makes progress; a round with no
// progress would be a deadlock, which the test bounds and reports.
void DriveToCompletion(Machine& machine, RangeLockService& locks, const MemObjectId& region,
                       std::vector<Locker>& lockers) {
  for (Locker& l : lockers) {
    l.acquired = locks.Acquire(l.node, *l.mem, region, l.addr, l.len);
  }
  machine.Run();
  for (int round = 0;; ++round) {
    ASSERT_LT(round, 64) << "no progress: overlapping acquisitions deadlocked";
    bool all_done = true;
    bool progress = false;
    for (Locker& l : lockers) {
      if (l.released) {
        continue;
      }
      if (l.acquired.ready()) {
        ASSERT_EQ(l.acquired.value(), Status::kOk) << "node " << l.node;
        locks.Release(l.node, region, l.addr, l.len, kPage);
        l.released = true;
        progress = true;
      } else {
        all_done = false;
      }
    }
    machine.Run();
    if (all_done) {
      return;
    }
    ASSERT_TRUE(progress) << "round " << round << ": waiters exist but none acquired";
  }
}

class RangeLockTest : public ::testing::Test {
 protected:
  void Build(MachineConfig config) {
    machine_ = std::make_unique<Machine>(config);
    system_ = static_cast<AsvmSystem*>(&machine_->dsm());
    locks_ = std::make_unique<RangeLockService>(*system_);
    region_ = machine_->CreateSharedRegion(0, 16);
  }

  void BuildDefault(int nodes = 4) {
    MachineConfig config;
    config.nodes = nodes;
    config.dsm = DsmKind::kAsvm;
    Build(config);
  }

  Locker MakeLocker(NodeId node, VmOffset first_page, VmSize pages) {
    Locker l;
    l.node = node;
    l.addr = first_page * kPage;
    l.len = pages * kPage;
    l.mem = &machine_->MapRegion(node, region_);
    return l;
  }

  std::unique_ptr<Machine> machine_;
  AsvmSystem* system_ = nullptr;
  std::unique_ptr<RangeLockService> locks_;
  MemObjectId region_;
};

TEST_F(RangeLockTest, OverlappingRangesSerialize) {
  BuildDefault();
  TaskMemory& a = machine_->MapRegion(1, region_);
  TaskMemory& b = machine_->MapRegion(2, region_);

  auto lock_a = locks_->Acquire(1, a, region_, 0, 3 * kPage);
  machine_->Run();
  ASSERT_TRUE(lock_a.ready());
  ASSERT_EQ(lock_a.value(), Status::kOk);

  // B overlaps pages 1..2: it must park, not fail and not complete.
  auto lock_b = locks_->Acquire(2, b, region_, kPage, 3 * kPage);
  machine_->Run();
  EXPECT_FALSE(lock_b.ready()) << "overlapping acquire completed while range held";

  // The holder's updates are invisible to B until release (B can't even map).
  ASSERT_TRUE(a.TryWriteU64(kPage, 7));

  locks_->Release(1, region_, 0, 3 * kPage, kPage);
  machine_->Run();
  ASSERT_TRUE(lock_b.ready());
  EXPECT_EQ(lock_b.value(), Status::kOk);
  uint64_t observed = 0;
  EXPECT_TRUE(b.TryReadU64(kPage, &observed));
  EXPECT_EQ(observed, 7u);
  locks_->Release(2, region_, kPage, 3 * kPage, kPage);
  machine_->Run();
}

TEST_F(RangeLockTest, ChainedOverlapsAcrossFourNodesAreDeadlockFree) {
  BuildDefault();
  // Each locker overlaps its neighbours: [0..5], [4..9], [8..13], [12..15].
  // Issued simultaneously; ascending page order means everyone blocks on the
  // lowest contested page and the chain unwinds left to right.
  std::vector<Locker> lockers;
  lockers.push_back(MakeLocker(0, 0, 6));
  lockers.push_back(MakeLocker(1, 4, 6));
  lockers.push_back(MakeLocker(2, 8, 6));
  lockers.push_back(MakeLocker(3, 12, 4));
  DriveToCompletion(*machine_, *locks_, region_, lockers);
  EXPECT_GT(machine_->stats().Get("asvm.range_lock_holds"), 0);
}

TEST_F(RangeLockTest, OpposedIssueOrdersCannotDeadlock) {
  // The classic AB/BA deadlock shape: A wants [0..7] then B wants [4..11] in
  // one run; the reverse issue order in another. Ascending-page acquisition
  // makes both orders safe.
  for (bool reversed : {false, true}) {
    BuildDefault();
    std::vector<Locker> lockers;
    if (!reversed) {
      lockers.push_back(MakeLocker(1, 0, 8));
      lockers.push_back(MakeLocker(2, 4, 8));
    } else {
      lockers.push_back(MakeLocker(2, 4, 8));
      lockers.push_back(MakeLocker(1, 0, 8));
    }
    DriveToCompletion(*machine_, *locks_, region_, lockers);
  }
}

TEST_F(RangeLockTest, ReleaseWakesQueuedWaitersUntilAllAcquire) {
  BuildDefault();
  TaskMemory& holder = machine_->MapRegion(0, region_);
  auto held = locks_->Acquire(0, holder, region_, 2 * kPage, kPage);
  machine_->Run();
  ASSERT_TRUE(held.ready());

  // Three waiters pile up on the same page.
  std::vector<Locker> waiters;
  for (NodeId n = 1; n <= 3; ++n) {
    waiters.push_back(MakeLocker(n, 2, 1));
    waiters.back().acquired =
        locks_->Acquire(n, *waiters.back().mem, region_, 2 * kPage, kPage);
  }
  machine_->Run();
  for (const Locker& w : waiters) {
    EXPECT_FALSE(w.acquired.ready()) << "waiter " << w.node << " jumped the lock";
  }

  // Each release admits the next holder; within 3 release rounds every waiter
  // must have acquired exactly once.
  locks_->Release(0, region_, 2 * kPage, kPage, kPage);
  machine_->Run();
  for (int round = 0; round < 3; ++round) {
    int ready = 0;
    for (Locker& w : waiters) {
      if (w.released || !w.acquired.ready()) {
        continue;
      }
      ++ready;
      ASSERT_EQ(w.acquired.value(), Status::kOk);
      locks_->Release(w.node, region_, 2 * kPage, kPage, kPage);
      w.released = true;
    }
    EXPECT_EQ(ready, 1) << "exactly one waiter should win each round";
    machine_->Run();
  }
  for (const Locker& w : waiters) {
    EXPECT_TRUE(w.released) << "waiter " << w.node << " never acquired";
  }
}

// Under the jitter fault profile with timeouts/retries armed, the lock
// protocol must still serialize correctly and terminate — and do so
// identically on both event schedulers (jittered delivery reshuffles event
// times, a fresh stress of the (time, seq) ordering contract).
TEST_F(RangeLockTest, JitterFaultProfileStillSerializesOnBothSchedulers) {
  SimTime final_time[2] = {0, 0};
  int idx = 0;
  for (SchedulerKind scheduler : {SchedulerKind::kTimerWheel, SchedulerKind::kReference}) {
    MachineConfig config;
    config.nodes = 4;
    config.dsm = DsmKind::kAsvm;
    config.scheduler = scheduler;
    ASSERT_TRUE(FaultProfileFromName("jitter", /*seed=*/7, config.nodes, &config.fault));
    config.retry.timeout_ns = 20 * kMillisecond;
    config.stall_watchdog = true;
    Build(config);

    std::vector<Locker> lockers;
    lockers.push_back(MakeLocker(0, 0, 6));
    lockers.push_back(MakeLocker(1, 4, 6));
    lockers.push_back(MakeLocker(2, 8, 6));
    lockers.push_back(MakeLocker(3, 2, 10));
    DriveToCompletion(*machine_, *locks_, region_, lockers);
    // Note: the stall watchdog fires between release rounds here — waiters
    // parked behind a held range with no pending event is exactly the state
    // this driver creates on purpose, so we assert completion, not quiet.
    EXPECT_GT(machine_->stats().Get("fault.jitter_messages"), 0) << "jitter plan inactive";
    final_time[idx++] = machine_->Now();
  }
  // Same fault seed, same workload: both schedulers end at the same instant.
  EXPECT_EQ(final_time[0], final_time[1]);
}

}  // namespace
}  // namespace asvm
