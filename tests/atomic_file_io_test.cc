// The §6 use case end to end: Unix read()/write() atomicity on a shared
// mapped file, implemented with the ASVM range-lock primitive instead of a
// NORMA-IPC token server. A multi-page record is written under a lock;
// concurrent readers either see the whole old record or the whole new one —
// never a torn mix.
#include <gtest/gtest.h>

#include "src/asvm/range_lock.h"
#include "src/core/machine.h"
#include "src/sim/task.h"

namespace asvm {
namespace {

constexpr VmSize kRecordPages = 3;  // a write() spanning three pages
constexpr size_t kPageSize = 8192;

class AtomicFileIoTest : public ::testing::Test {
 protected:
  AtomicFileIoTest() {
    MachineConfig config;
    config.nodes = 5;
    config.dsm = DsmKind::kAsvm;
    machine_ = std::make_unique<Machine>(config);
    system_ = static_cast<AsvmSystem*>(&machine_->dsm());
    locks_ = std::make_unique<RangeLockService>(*system_);
    file_ = machine_->CreateMappedFile("records", 8, /*prefilled=*/false);
  }

  // Writes `value` into every slot of the record, under the range lock.
  Task WriteRecord(TaskMemory& mem, NodeId node, uint64_t value, bool* done) {
    Status s = co_await locks_->Acquire(node, mem, file_, 0, kRecordPages * kPageSize);
    ASVM_CHECK(IsOk(s));
    for (VmSize p = 0; p < kRecordPages; ++p) {
      // The pages are held: writes are plain local stores.
      ASVM_CHECK(mem.TryWriteU64(p * kPageSize, value));
    }
    locks_->Release(node, file_, 0, kRecordPages * kPageSize, kPageSize);
    *done = true;
  }

  // Reads the whole record under the lock; all slots must agree.
  Task ReadRecord(TaskMemory& mem, NodeId node, std::vector<uint64_t>* out, bool* done) {
    Status s = co_await locks_->Acquire(node, mem, file_, 0, kRecordPages * kPageSize);
    ASVM_CHECK(IsOk(s));
    for (VmSize p = 0; p < kRecordPages; ++p) {
      uint64_t v = 0;
      ASVM_CHECK(mem.TryReadU64(p * kPageSize, &v));
      out->push_back(v);
    }
    locks_->Release(node, file_, 0, kRecordPages * kPageSize, kPageSize);
    *done = true;
  }

  std::unique_ptr<Machine> machine_;
  AsvmSystem* system_ = nullptr;
  std::unique_ptr<RangeLockService> locks_;
  MemObjectId file_;
};

TEST_F(AtomicFileIoTest, LockedWritesAreAtomicToLockedReaders) {
  TaskMemory& writer_a = machine_->MapRegion(1, file_);
  TaskMemory& writer_b = machine_->MapRegion(2, file_);
  TaskMemory& reader_c = machine_->MapRegion(3, file_);
  TaskMemory& reader_d = machine_->MapRegion(4, file_);

  // Two writers and two readers race over the same record.
  bool wa = false;
  bool wb = false;
  bool rc = false;
  bool rd = false;
  std::vector<uint64_t> c_view;
  std::vector<uint64_t> d_view;
  (void)WriteRecord(writer_a, 1, 0xAAAA, &wa);
  (void)ReadRecord(reader_c, 3, &c_view, &rc);
  (void)WriteRecord(writer_b, 2, 0xBBBB, &wb);
  (void)ReadRecord(reader_d, 4, &d_view, &rd);
  machine_->Run();
  ASSERT_TRUE(wa && wb && rc && rd);

  // Atomicity: each reader saw one uniform record (all zeros before any
  // write completed, or all-A, or all-B) — never a mix.
  for (const auto* view : {&c_view, &d_view}) {
    ASSERT_EQ(view->size(), kRecordPages);
    for (VmSize p = 1; p < kRecordPages; ++p) {
      EXPECT_EQ((*view)[p], (*view)[0]) << "torn record observed";
    }
    EXPECT_TRUE((*view)[0] == 0 || (*view)[0] == 0xAAAA || (*view)[0] == 0xBBBB);
  }

  // Final state: one of the writers' records, uniformly.
  std::vector<uint64_t> final_view;
  bool fin = false;
  (void)ReadRecord(reader_c, 3, &final_view, &fin);
  machine_->Run();
  ASSERT_TRUE(fin);
  EXPECT_TRUE(final_view[0] == 0xAAAA || final_view[0] == 0xBBBB);
  for (VmSize p = 1; p < kRecordPages; ++p) {
    EXPECT_EQ(final_view[p], final_view[0]);
  }
}

TEST_F(AtomicFileIoTest, ManySerializedWritersNeverTear) {
  // Three rounds of four concurrent writers (one task per node; the lock is
  // a per-node primitive — intra-node exclusion is the local kernel's job).
  std::vector<TaskMemory*> writers;
  for (NodeId n = 1; n <= 4; ++n) {
    writers.push_back(&machine_->MapRegion(n, file_));
  }
  for (int round = 0; round < 3; ++round) {
    bool done[4] = {};
    for (int w = 0; w < 4; ++w) {
      (void)WriteRecord(*writers[w], static_cast<NodeId>(1 + w),
                        1000 + static_cast<uint64_t>(round * 4 + w), &done[w]);
    }
    machine_->Run();
    for (int w = 0; w < 4; ++w) {
      ASSERT_TRUE(done[w]) << "round " << round << " writer " << w << " never completed";
    }
  }
  std::vector<uint64_t> view;
  bool fin = false;
  (void)ReadRecord(*writers[0], 1, &view, &fin);
  machine_->Run();
  ASSERT_TRUE(fin);
  for (VmSize p = 1; p < kRecordPages; ++p) {
    EXPECT_EQ(view[p], view[0]);
  }
  EXPECT_GE(view[0], 1008u);  // last round's writers
  EXPECT_LE(view[0], 1011u);
}

TEST_F(AtomicFileIoTest, UnlockedReaderCanObserveTearing) {
  // Control experiment: WITHOUT the lock, a reader interleaved with a
  // multi-page write can see a torn record — the §6 problem statement.
  TaskMemory& writer = machine_->MapRegion(1, file_);
  TaskMemory& reader = machine_->MapRegion(2, file_);

  // Seed the record with zeros.
  bool seeded = false;
  (void)WriteRecord(writer, 1, 0, &seeded);
  machine_->Run();
  ASSERT_TRUE(seeded);

  // Unlocked writer: page-by-page stores with protocol latency in between.
  std::vector<Future<Status>> writes;
  for (VmSize p = 0; p < kRecordPages; ++p) {
    writes.push_back(writer.WriteU64(p * kPageSize, 0x77));
  }
  // Unlocked reader races the writes, back to front.
  std::vector<Future<uint64_t>> reads;
  for (VmSize p = 0; p < kRecordPages; ++p) {
    reads.push_back(reader.ReadU64((kRecordPages - 1 - p) * kPageSize));
  }
  machine_->Run();
  // No assertion that tearing ALWAYS happens (timing-dependent), but the
  // values must each individually be valid (0 or 0x77) — coherence holds
  // even when atomicity doesn't.
  for (auto& r : reads) {
    ASSERT_TRUE(r.ready());
    EXPECT_TRUE(r.value() == 0 || r.value() == 0x77);
  }
}

}  // namespace
}  // namespace asvm
