// System/application-level monitoring: the protocol trace buffer and the
// per-node object state dump.
#include <gtest/gtest.h>

#include "src/asvm/agent.h"
#include "src/asvm/asvm_system.h"
#include "src/common/trace.h"
#include "tests/dsm_test_util.h"

namespace asvm {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() {
    cluster_ = std::make_unique<Cluster>(SmallClusterParams(4));
    system_ = std::make_unique<AsvmSystem>(*cluster_);
    system_->AttachMonitor(&trace_);
    region_ = system_->CreateSharedRegion(0, 16);
    harness_ = std::make_unique<DsmRegionHarness>(*cluster_, *system_, region_, 16);
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<AsvmSystem> system_;
  TraceBuffer trace_;
  MemObjectId region_;
  std::unique_ptr<DsmRegionHarness> harness_;
};

TEST_F(MonitorTest, FaultsProduceTraceEvents) {
  harness_->Write(1, 0, 42);
  EXPECT_GT(trace_.count(TraceKind::kFaultRequest), 0);
  EXPECT_GT(trace_.count(TraceKind::kServeTerminal), 0);
  EXPECT_GT(trace_.count(TraceKind::kGrantApplied), 0);
  EXPECT_GT(trace_.count(TraceKind::kOwnershipMoved), 0);
}

TEST_F(MonitorTest, InvalidationsAreTraced) {
  harness_->Write(1, 0, 1);
  harness_->Read(2, 0);
  harness_->Read(3, 0);
  const int64_t invals_before = trace_.count(TraceKind::kInvalidate);
  harness_->Write(1, 0, 2);  // self-upgrade: invalidate both readers
  EXPECT_EQ(trace_.count(TraceKind::kInvalidate), invals_before + 2);
}

TEST_F(MonitorTest, OwnerServeTraced) {
  harness_->Write(1, 0, 1);
  trace_.Clear();
  harness_->Read(2, 0);
  EXPECT_GT(trace_.count(TraceKind::kServeOwner), 0);
}

TEST_F(MonitorTest, EventsCarryTimeAndIdentity) {
  harness_->Write(1, 0, 1);
  ASSERT_GT(trace_.total(), 0);
  int64_t asvm_events = 0;
  for (const TraceEvent& e : trace_.events()) {
    EXPECT_GE(e.time, 0);
    EXPECT_NE(e.node, kInvalidNode);
    // Protocol events are all about the one region this test touches;
    // transport/mesh events in the shared stream carry no object identity.
    if (e.protocol == TraceProtocol::kAsvm) {
      EXPECT_EQ(e.object, region_);
      ++asvm_events;
    }
  }
  EXPECT_GT(asvm_events, 0);
}

TEST_F(MonitorTest, TransportEventsShareTheStream) {
  harness_->Write(1, 0, 1);
  EXPECT_GT(trace_.count(TraceKind::kMsgSend), 0);
  EXPECT_GT(trace_.count(TraceKind::kMsgRecv), 0);
  for (const TraceEvent& e : trace_.events()) {
    if (e.kind == TraceKind::kMsgSend) {
      EXPECT_EQ(e.protocol, TraceProtocol::kTransport);
      EXPECT_NE(e.peer, kInvalidNode);
      EXPECT_GT(e.aux, 0);  // wire bytes
    }
  }
}

TEST_F(MonitorTest, RenderFiltersAndFormats) {
  harness_->Write(1, 0, 1);
  harness_->Write(2, 4096, 2);
  std::string all = trace_.Render();
  EXPECT_NE(all.find("fault-request"), std::string::npos);
  std::string page1_only = trace_.Render(/*page=*/1);
  EXPECT_NE(page1_only.find("page 1"), std::string::npos);
  EXPECT_EQ(page1_only.find("page 0"), std::string::npos);
}

TEST_F(MonitorTest, BufferIsBounded) {
  TraceBuffer small(8);
  system_->AttachMonitor(&small);
  for (int i = 0; i < 10; ++i) {
    harness_->Write(1 + (i % 3), 0, static_cast<uint64_t>(i));
  }
  EXPECT_LE(small.events().size(), 8u);
  EXPECT_GT(small.total(), 8);
  system_->AttachMonitor(&trace_);
}

TEST_F(MonitorTest, DetachStopsEvents) {
  system_->AttachMonitor(nullptr);
  trace_.Clear();
  harness_->Write(1, 0, 1);
  EXPECT_EQ(trace_.total(), 0);
}

TEST_F(MonitorTest, DumpObjectStateShowsOwnership) {
  harness_->Write(1, 0, 1);
  harness_->Read(2, 0);
  std::string dump = system_->agent(1).DumpObjectState(region_);
  EXPECT_NE(dump.find("OWNER"), std::string::npos);
  EXPECT_NE(dump.find("readers=[2]"), std::string::npos);
  std::string reader_dump = system_->agent(2).DumpObjectState(region_);
  EXPECT_NE(reader_dump.find("access=read"), std::string::npos);
  std::string empty_dump = system_->agent(3).DumpObjectState(MemObjectId{9, 9});
  EXPECT_NE(empty_dump.find("no state"), std::string::npos);
}

TEST_F(MonitorTest, EvictionStepsTraced) {
  // Shrink memory to force internode paging, then look for evict-step events.
  Cluster small_cluster(SmallClusterParams(4, /*frames=*/16));
  AsvmSystem system(small_cluster);
  TraceBuffer trace;
  system.AttachMonitor(&trace);
  MemObjectId region = system.CreateSharedRegion(0, 64);
  DsmRegionHarness harness(small_cluster, system, region, 64);
  for (int p = 0; p < 48; ++p) {
    harness.Write(1, static_cast<VmOffset>(p) * 4096, static_cast<uint64_t>(p));
  }
  EXPECT_GT(trace.count(TraceKind::kEvictStep), 0);
}

}  // namespace
}  // namespace asvm
