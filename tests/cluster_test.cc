// Cluster assembly: node/VM wiring, I/O groups, file pagers, and parameter
// plumbing from MachineConfig down to the per-node components.
#include <gtest/gtest.h>

#include "src/core/machine.h"
#include "src/dsm/cluster.h"

namespace asvm {
namespace {

TEST(ClusterTest, BuildsRequestedNodeCount) {
  ClusterParams params;
  params.node_count = 7;
  Cluster cluster(params);
  EXPECT_EQ(cluster.node_count(), 7);
  for (NodeId n = 0; n < 7; ++n) {
    EXPECT_EQ(cluster.vm(n).node(), n);
    EXPECT_EQ(cluster.vm(n).default_pager(), &cluster.default_pager(n));
  }
}

TEST(ClusterTest, OneDiskPerIoGroup) {
  ClusterParams params;
  params.node_count = 70;
  params.nodes_per_io_group = 32;
  Cluster cluster(params);
  // Nodes 0..31 share one paging disk, 32..63 the next, 64..69 the third.
  EXPECT_EQ(&cluster.paging_disk(0), &cluster.paging_disk(31));
  EXPECT_NE(&cluster.paging_disk(31), &cluster.paging_disk(32));
  EXPECT_NE(&cluster.paging_disk(63), &cluster.paging_disk(64));
}

TEST(ClusterTest, FilePagerCountClampsToNodes) {
  ClusterParams params;
  params.node_count = 2;
  params.file_pager_count = 8;
  Cluster cluster(params);
  EXPECT_EQ(cluster.file_pager_count(), 2);
  EXPECT_EQ(cluster.file_pager(0).node(), 0);
  EXPECT_EQ(cluster.file_pager(1).node(), 1);
}

TEST(ClusterTest, VmParamsReachNodes) {
  ClusterParams params;
  params.node_count = 2;
  params.vm.page_size = 4096;
  params.vm.frame_capacity = 99;
  Cluster cluster(params);
  EXPECT_EQ(cluster.vm(0).page_size(), 4096u);
  EXPECT_EQ(cluster.vm(1).frames_capacity(), 99u);
}

TEST(ClusterTest, TransportsShareOneEngineAndStats) {
  ClusterParams params;
  params.node_count = 3;
  Cluster cluster(params);
  bool delivered = false;
  cluster.sts().RegisterHandler(ProtocolId::kPagerControl, 2,
                                [&](NodeId, Message) { delivered = true; });
  Message msg;
  msg.protocol = ProtocolId::kPagerControl;
  cluster.sts().Send(0, 2, std::move(msg));
  cluster.engine().Run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(cluster.stats().Get("transport.sts.messages"), 1);
  EXPECT_EQ(cluster.stats().Get("mesh.messages"), 1);
}

TEST(MachineConfigPlumbingTest, UserMemoryTranslatesToFrames) {
  MachineConfig config;
  config.nodes = 2;
  config.page_size = 4096;
  config.user_memory_bytes = 1024 * 1024;
  Machine machine(config);
  EXPECT_EQ(machine.cluster().vm(0).frames_capacity(), 256u);
}

TEST(MachineConfigPlumbingTest, FilePagerCountReachesCluster) {
  MachineConfig config;
  config.nodes = 6;
  config.file_pager_count = 3;
  Machine machine(config);
  EXPECT_EQ(machine.cluster().file_pager_count(), 3);
}

TEST(MachineConfigPlumbingTest, AsvmConfigReachesSystem) {
  MachineConfig config;
  config.nodes = 3;
  config.dsm = DsmKind::kAsvm;
  config.asvm.dynamic_forwarding = false;
  Machine machine(config);
  auto& system = static_cast<AsvmSystem&>(machine.dsm());
  EXPECT_FALSE(system.config().dynamic_forwarding);
}

}  // namespace
}  // namespace asvm
