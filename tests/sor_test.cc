// SOR (red-black successive over-relaxation): layout, parallel-vs-sequential
// bit equality under both DSM systems, and scaling behaviour.
#include <gtest/gtest.h>

#include "src/apps/sor.h"

namespace asvm {
namespace {

SorParams SmallParams() {
  SorParams params;
  params.rows = 24;
  params.cols = 16;
  params.iterations = 3;
  return params;
}

TEST(SorGridTest, RowBlocksArePageAligned) {
  SorGrid grid(SmallParams(), 3, 8192);
  for (NodeId n = 0; n < 3; ++n) {
    auto [lo, hi] = grid.RowRange(n);
    if (lo < hi) {
      EXPECT_EQ(grid.CellAddr(lo, 0) % 8192, 0u);
    }
  }
}

TEST(SorGridTest, RowOwnersPartitionTheGrid) {
  SorParams params = SmallParams();
  SorGrid grid(params, 3, 8192);
  for (int64_t r = 0; r < params.rows; ++r) {
    const NodeId owner = grid.RowOwner(r);
    auto [lo, hi] = grid.RowRange(owner);
    EXPECT_GE(r, lo);
    EXPECT_LT(r, hi);
  }
}

TEST(SorGridTest, HaloPagesBelongToNeighbours) {
  SorParams params = SmallParams();
  SorGrid grid(params, 3, 8192);
  // Middle node's halo pages must not be its own pages.
  const auto& own = grid.OwnPages(1);
  for (VmOffset page : grid.HaloPages(1)) {
    EXPECT_FALSE(std::binary_search(own.begin(), own.end(), page));
  }
  EXPECT_FALSE(grid.HaloPages(1).empty());
  // Edge nodes have one neighbour each.
  EXPECT_LE(grid.HaloPages(0).size(), grid.HaloPages(1).size());
}

TEST(SorGridTest, CellAddressesNeverStraddlePages) {
  SorParams params = SmallParams();
  SorGrid grid(params, 3, 8192);
  for (int64_t r = 0; r < params.rows; ++r) {
    for (int64_t c = 0; c < params.cols; ++c) {
      const VmOffset a = grid.CellAddr(r, c);
      EXPECT_EQ(a / 8192, (a + 7) / 8192);
    }
  }
}

TEST(SorTest, SequentialChecksumIsStable) {
  SorParams params = SmallParams();
  EXPECT_EQ(SorSequentialChecksum(params, 3), SorSequentialChecksum(params, 3));
}

class SorVerifiedTest : public ::testing::TestWithParam<DsmKind> {};

TEST_P(SorVerifiedTest, ParallelMatchesSequentialBitForBit) {
  SorParams params = SmallParams();
  MachineConfig config;
  config.nodes = 3;
  config.dsm = GetParam();
  Machine machine(config);
  EXPECT_EQ(RunSorVerified(machine, params, 3), SorSequentialChecksum(params, 3));
}

TEST_P(SorVerifiedTest, TwoNodeGrid) {
  SorParams params;
  params.rows = 16;
  params.cols = 8;
  params.iterations = 2;
  MachineConfig config;
  config.nodes = 2;
  config.dsm = GetParam();
  Machine machine(config);
  EXPECT_EQ(RunSorVerified(machine, params, 2), SorSequentialChecksum(params, 2));
}

INSTANTIATE_TEST_SUITE_P(BothSystems, SorVerifiedTest,
                         ::testing::Values(DsmKind::kAsvm, DsmKind::kXmm),
                         [](const ::testing::TestParamInfo<DsmKind>& info) {
                           return std::string(ToString(info.param));
                         });

TEST(SorTimedTest, NearestNeighbourPatternScalesWell) {
  // SOR's halo-only traffic should scale far better than EM3D's irregular
  // graph: ASVM at 8 nodes well under half the 2-node time.
  SorParams params;
  params.rows = 1024;
  params.cols = 1024;
  params.iterations = 10;
  auto run = [&](int nodes) {
    MachineConfig config;
    config.nodes = nodes;
    config.dsm = DsmKind::kAsvm;
    config.user_memory_bytes = 32 * 1024 * 1024;
    Machine machine(config);
    return RunSorTimed(machine, params, nodes).seconds;
  };
  const double two = run(2);
  const double eight = run(8);
  EXPECT_LT(eight, two / 2.0);
}

TEST(SorTimedTest, XmmStillSlowerThanAsvm) {
  SorParams params;
  params.rows = 512;
  params.cols = 512;
  params.iterations = 10;
  double results[2];
  int i = 0;
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
    MachineConfig config;
    config.nodes = 4;
    config.dsm = kind;
    Machine machine(config);
    results[i++] = RunSorTimed(machine, params, 4).seconds;
  }
  EXPECT_LT(results[0], results[1]);
}

TEST(SorTimedTest, DeterministicAcrossRuns) {
  SorParams params;
  params.rows = 256;
  params.cols = 256;
  params.iterations = 5;
  auto run = [&]() {
    MachineConfig config;
    config.nodes = 4;
    config.dsm = DsmKind::kAsvm;
    Machine machine(config);
    return RunSorTimed(machine, params, 4).seconds;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace asvm
