// PageTable<T>: dense vs sparse representation, entry lifecycle, deterministic
// iteration order, reference stability, and the paper's metadata-byte
// accounting (identical in both representations).
#include <gtest/gtest.h>

#include <vector>

#include "src/common/page_table.h"

namespace asvm {
namespace {

struct Payload {
  int value = 0;
  bool flag = false;
};

TEST(PageTableTest, StartsEmpty) {
  PageTable<Payload> table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.MetadataBytes(), 0u);
  EXPECT_EQ(table.Find(0), nullptr);
}

TEST(PageTableTest, SmallObjectsGoDense) {
  PageTable<Payload> table;
  table.SetPageCount(64);
  EXPECT_TRUE(table.dense());
}

TEST(PageTableTest, HugeObjectsStaySparse) {
  PageTable<Payload> table;
  table.SetPageCount(PageTable<Payload>::kDenseLimit + 1);
  EXPECT_FALSE(table.dense());
}

TEST(PageTableTest, NoDeclaredCountStaysSparse) {
  PageTable<Payload> table;
  table.GetOrCreate(3).value = 1;
  EXPECT_FALSE(table.dense());
  EXPECT_EQ(table.Find(3)->value, 1);
}

TEST(PageTableTest, SetPageCountFirstCallWins) {
  PageTable<Payload> table;
  table.SetPageCount(16);
  table.SetPageCount(PageTable<Payload>::kDenseLimit + 1);  // ignored
  EXPECT_TRUE(table.dense());
}

template <typename MakeTable>
void ExerciseLifecycle(MakeTable make) {
  PageTable<Payload> table = make();
  EXPECT_EQ(table.Find(7), nullptr);
  table.GetOrCreate(7).value = 70;
  table.GetOrCreate(2).value = 20;
  ASSERT_NE(table.Find(7), nullptr);
  EXPECT_EQ(table.Find(7)->value, 70);
  EXPECT_EQ(table.size(), 2u);

  // GetOrCreate on an existing page returns the same entry.
  table.GetOrCreate(7).flag = true;
  EXPECT_EQ(table.size(), 2u);
  EXPECT_TRUE(table.Find(7)->flag);

  table.Erase(7);
  EXPECT_EQ(table.Find(7), nullptr);
  EXPECT_EQ(table.size(), 1u);
  table.Erase(7);  // double erase is a no-op
  EXPECT_EQ(table.size(), 1u);

  table.Clear();
  EXPECT_TRUE(table.empty());
}

TEST(PageTableTest, LifecycleDense) {
  ExerciseLifecycle([]() {
    PageTable<Payload> t;
    t.SetPageCount(32);
    return t;
  });
}

TEST(PageTableTest, LifecycleSparse) {
  ExerciseLifecycle([]() { return PageTable<Payload>(); });
}

template <typename MakeTable>
void ExerciseIterationOrder(MakeTable make) {
  PageTable<Payload> table = make();
  for (PageIndex page : {9, 1, 30, 4}) {
    table.GetOrCreate(page).value = static_cast<int>(page) * 10;
  }
  table.Erase(30);
  std::vector<PageIndex> order;
  table.ForEach([&order](PageIndex page, const Payload& p) {
    EXPECT_EQ(p.value, static_cast<int>(page) * 10);
    order.push_back(page);
  });
  EXPECT_EQ(order, (std::vector<PageIndex>{1, 4, 9}));
}

TEST(PageTableTest, IterationIsAscendingDense) {
  ExerciseIterationOrder([]() {
    PageTable<Payload> t;
    t.SetPageCount(32);
    return t;
  });
}

TEST(PageTableTest, IterationIsAscendingSparse) {
  ExerciseIterationOrder([]() { return PageTable<Payload>(); });
}

TEST(PageTableTest, MutableForEachCanModifyEntries) {
  PageTable<Payload> table;
  table.SetPageCount(8);
  table.GetOrCreate(1).value = 1;
  table.GetOrCreate(5).value = 5;
  table.ForEach([](PageIndex, Payload& p) { p.value *= 2; });
  EXPECT_EQ(table.Find(1)->value, 2);
  EXPECT_EQ(table.Find(5)->value, 10);
}

TEST(PageTableTest, MetadataBytesCountPresentEntriesOnly) {
  // The accounting is per present record regardless of representation: a
  // dense table with 3 of 1000 pages touched reports the same bytes as a
  // sparse one.
  const size_t per_entry = sizeof(PageIndex) + sizeof(Payload);
  PageTable<Payload> dense;
  dense.SetPageCount(1000);
  PageTable<Payload> sparse;
  for (PageIndex page : {0, 500, 999}) {
    dense.GetOrCreate(page);
    sparse.GetOrCreate(page);
  }
  EXPECT_EQ(dense.MetadataBytes(), 3 * per_entry);
  EXPECT_EQ(dense.MetadataBytes(), sparse.MetadataBytes());
  dense.Erase(500);
  EXPECT_EQ(dense.MetadataBytes(), 2 * per_entry);
}

TEST(PageTableTest, DenseReferencesAreStableAcrossInserts) {
  // Coroutines hold T& across suspension points; the dense vector must not
  // reallocate when other in-range pages are created.
  PageTable<Payload> table;
  table.SetPageCount(256);
  Payload& first = table.GetOrCreate(0);
  first.value = 42;
  for (PageIndex page = 1; page < 256; ++page) {
    table.GetOrCreate(page);
  }
  EXPECT_EQ(&first, table.Find(0));
  EXPECT_EQ(first.value, 42);
}

TEST(PageTableTest, FindOutOfRangeIsNull) {
  PageTable<Payload> table;
  table.SetPageCount(8);
  table.GetOrCreate(0);
  EXPECT_EQ(table.Find(-1), nullptr);
  EXPECT_EQ(table.Find(100), nullptr);
}

}  // namespace
}  // namespace asvm
