// The typed message envelope: every protocol message type round-trips through
// a Message with its body intact, the stats label tables cover every type, and
// the wire-size accounting is unchanged from the untyped-body era (32-byte
// control block + optional page).
#include <gtest/gtest.h>

#include <utility>
#include <variant>

#include "src/machvm/page.h"
#include "src/transport/message.h"

namespace asvm {
namespace {

const MemObjectId kObj{2, 7};

Message Envelope(AsvmMsgType type, AsvmBody body, PageBuffer page = nullptr) {
  Message msg;
  msg.protocol = ProtocolId::kAsvm;
  msg.type = static_cast<uint32_t>(type);
  msg.body = std::move(body);
  msg.page = std::move(page);
  return msg;
}

Message Envelope(XmmMsgType type, XmmBody body, PageBuffer page = nullptr) {
  Message msg;
  msg.protocol = ProtocolId::kXmm;
  msg.type = static_cast<uint32_t>(type);
  msg.body = std::move(body);
  msg.page = std::move(page);
  return msg;
}

template <typename T, typename BodyVariant>
const T& Unwrap(const Message& msg) {
  return std::get<T>(std::get<BodyVariant>(msg.body));
}

TEST(MessageEnvelopeTest, DefaultMessageIsEmpty) {
  Message msg;
  EXPECT_TRUE(std::holds_alternative<std::monostate>(msg.body));
  EXPECT_EQ(msg.WireBytes(), 32u);
}

TEST(MessageEnvelopeTest, AsvmBodiesRoundTrip) {
  {
    AccessRequest req;
    req.target = kObj;
    req.search = kObj;
    req.page = 5;
    req.access = PageAccess::kWrite;
    req.origin = 3;
    req.hops = 2;
    req.req_id = 77;
    Message msg = Envelope(AsvmMsgType::kAccessRequest, req);
    const auto& out = Unwrap<AccessRequest, AsvmBody>(msg);
    EXPECT_EQ(out.target, kObj);
    EXPECT_EQ(out.page, 5);
    EXPECT_EQ(out.access, PageAccess::kWrite);
    EXPECT_EQ(out.origin, 3);
    EXPECT_EQ(out.hops, 2);
    EXPECT_EQ(out.req_id, 77u);
  }
  {
    AccessReply reply;
    reply.target = kObj;
    reply.page = 5;
    reply.granted = PageAccess::kWrite;
    reply.ownership = true;
    reply.page_version = 9;
    reply.readers = {1, 4};
    Message msg = Envelope(AsvmMsgType::kAccessReply, reply);
    const auto& out = Unwrap<AccessReply, AsvmBody>(msg);
    EXPECT_TRUE(out.ownership);
    EXPECT_EQ(out.page_version, 9u);
    EXPECT_EQ(out.readers, (std::vector<NodeId>{1, 4}));
  }
  {
    Message msg = Envelope(AsvmMsgType::kPullDone, PullDone{kObj, 3, 2});
    const auto& out = Unwrap<PullDone, AsvmBody>(msg);
    EXPECT_EQ(out.page, 3);
    EXPECT_EQ(out.new_owner, 2);
  }
  {
    Message msg = Envelope(AsvmMsgType::kInvalidate, InvalidateMsg{kObj, 4, 11});
    EXPECT_EQ((Unwrap<InvalidateMsg, AsvmBody>(msg).op_id), 11u);
  }
  {
    Message msg = Envelope(AsvmMsgType::kOwnershipOffer,
                           OwnershipOffer{kObj, 4, 6, {0, 5}, 12});
    const auto& out = Unwrap<OwnershipOffer, AsvmBody>(msg);
    EXPECT_EQ(out.page_version, 6u);
    EXPECT_EQ(out.readers, (std::vector<NodeId>{0, 5}));
  }
  {
    // OfferReply is the shared ack format: the type tag disambiguates the six
    // ack message types carrying it.
    for (AsvmMsgType ack : {AsvmMsgType::kInvalidateAck, AsvmMsgType::kOwnershipOfferReply,
                            AsvmMsgType::kPageoutOfferReply, AsvmMsgType::kWritebackAck,
                            AsvmMsgType::kPushDataAck, AsvmMsgType::kMarkReadOnlyAck}) {
      Message msg = Envelope(ack, OfferReply{kObj, 4, true, 13});
      const auto& out = Unwrap<OfferReply, AsvmBody>(msg);
      EXPECT_TRUE(out.accepted);
      EXPECT_EQ(out.op_id, 13u);
    }
  }
  {
    Message msg = Envelope(AsvmMsgType::kPageoutOffer, PageoutOffer{kObj, 4, 6, true, 14});
    EXPECT_TRUE((Unwrap<PageoutOffer, AsvmBody>(msg).dirty));
  }
  {
    Message msg = Envelope(AsvmMsgType::kWriteback, WritebackMsg{kObj, 4, 6, false, 15});
    EXPECT_FALSE((Unwrap<WritebackMsg, AsvmBody>(msg).dirty));
  }
  {
    Message msg = Envelope(AsvmMsgType::kPushRequest, PushRequest{kObj, 4, true, 16});
    EXPECT_TRUE((Unwrap<PushRequest, AsvmBody>(msg).push_into_copy));
  }
  {
    Message msg = Envelope(AsvmMsgType::kPushReply, PushReply{kObj, 4, true, true, 17});
    const auto& out = Unwrap<PushReply, AsvmBody>(msg);
    EXPECT_TRUE(out.was_resident);
    EXPECT_TRUE(out.needs_data);
  }
  {
    Message msg = Envelope(AsvmMsgType::kPushData, PushData{kObj, 4, 18});
    EXPECT_EQ((Unwrap<PushData, AsvmBody>(msg).op_id), 18u);
  }
  {
    Message msg = Envelope(AsvmMsgType::kMarkReadOnly, MarkReadOnly{kObj, 19});
    EXPECT_EQ((Unwrap<MarkReadOnly, AsvmBody>(msg).op_id), 19u);
  }
  {
    Message msg = Envelope(AsvmMsgType::kStaticHint,
                           StaticHintMsg{kObj, 4, StaticHintKind::kOwner, 3});
    const auto& out = Unwrap<StaticHintMsg, AsvmBody>(msg);
    EXPECT_EQ(out.kind, StaticHintKind::kOwner);
    EXPECT_EQ(out.owner, 3);
  }
}

TEST(MessageEnvelopeTest, XmmBodiesRoundTrip) {
  {
    Message msg = Envelope(XmmMsgType::kRequest,
                           XmmRequest{kObj, 6, PageAccess::kWrite, 1, true});
    const auto& out = Unwrap<XmmRequest, XmmBody>(msg);
    EXPECT_EQ(out.access, PageAccess::kWrite);
    EXPECT_TRUE(out.has_copy);
  }
  {
    Message msg = Envelope(XmmMsgType::kReply,
                           XmmReply{kObj, 6, PageAccess::kRead, true, false});
    EXPECT_TRUE((Unwrap<XmmReply, XmmBody>(msg).zero_fill));
  }
  {
    // XmmFlush serves both flush directions; the tag says which.
    for (XmmMsgType t : {XmmMsgType::kFlushWrite, XmmMsgType::kFlushRead}) {
      Message msg = Envelope(t, XmmFlush{kObj, 6, 21});
      EXPECT_EQ((Unwrap<XmmFlush, XmmBody>(msg).op_id), 21u);
    }
  }
  {
    for (XmmMsgType t : {XmmMsgType::kFlushWriteReply, XmmMsgType::kFlushReadAck}) {
      Message msg = Envelope(t, XmmFlushWriteReply{kObj, 6, true, true, 22});
      const auto& out = Unwrap<XmmFlushWriteReply, XmmBody>(msg);
      EXPECT_TRUE(out.dirty);
      EXPECT_TRUE(out.was_resident);
    }
  }
  {
    Message msg = Envelope(XmmMsgType::kCopyFault, XmmCopyFault{kObj, 6, 2, {2, 4}});
    EXPECT_EQ((Unwrap<XmmCopyFault, XmmBody>(msg).path), (std::vector<NodeId>{2, 4}));
  }
  {
    Message msg = Envelope(XmmMsgType::kCopyFaultReply,
                           XmmCopyFaultReply{kObj, 6, false, true});
    EXPECT_TRUE((Unwrap<XmmCopyFaultReply, XmmBody>(msg).deadlock));
  }
}

TEST(MessageEnvelopeTest, PagerControlRoundTrips) {
  Message msg;
  msg.protocol = ProtocolId::kPagerControl;
  msg.type = static_cast<uint32_t>(PagerMsgType::kControl);
  msg.body = PagerBody{PagerControlMsg{99}};
  EXPECT_EQ((Unwrap<PagerControlMsg, PagerBody>(msg).token), 99u);
}

TEST(MessageEnvelopeTest, WireBytesUnchangedByTypedBody) {
  // The body is simulator-side metadata; the wire carries the fixed control
  // block plus the optional page, exactly as before the typed envelope.
  Message small = Envelope(AsvmMsgType::kInvalidate, InvalidateMsg{kObj, 4, 1});
  EXPECT_EQ(small.WireBytes(), 32u);

  Message paged = Envelope(AsvmMsgType::kAccessReply, AccessReply{}, AllocPage(8192));
  EXPECT_EQ(paged.WireBytes(), 32u + 8192u);

  Message norma = Envelope(XmmMsgType::kRequest, XmmRequest{});
  norma.control_bytes = 128;  // typed NORMA message with port rights
  EXPECT_EQ(norma.WireBytes(), 128u);
}

TEST(MessageEnvelopeTest, MsgTypeNameCoversEveryType) {
  Message msg = Envelope(AsvmMsgType::kAccessRequest, AccessRequest{});
  EXPECT_STREQ(MsgTypeName(msg), "access_request");
  msg = Envelope(AsvmMsgType::kMarkReadOnlyAck, OfferReply{kObj, 0, true, 1});
  EXPECT_STREQ(MsgTypeName(msg), "mark_read_only_ack");
  msg = Envelope(XmmMsgType::kCopyFaultReply, XmmCopyFaultReply{});
  EXPECT_STREQ(MsgTypeName(msg), "copy_fault_reply");

  EXPECT_STREQ(ProtocolName(ProtocolId::kAsvm), "asvm");
  EXPECT_STREQ(ProtocolName(ProtocolId::kXmm), "xmm");
  EXPECT_STREQ(ProtocolName(ProtocolId::kPagerControl), "pager");
}

TEST(MessageEnvelopeTest, VisitDispatchesByAlternative) {
  Message msg = Envelope(AsvmMsgType::kAccessRequest, AccessRequest{});
  bool saw_asvm = false;
  std::visit(Overloaded{
                 [&](const AsvmBody&) { saw_asvm = true; },
                 [](const auto&) {},
             },
             msg.body);
  EXPECT_TRUE(saw_asvm);
}

}  // namespace
}  // namespace asvm
