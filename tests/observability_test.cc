// The shared observability layer: histogram percentile edge cases, stats
// report determinism, the Chrome trace_event emitter (valid JSON, byte-stable
// across identical runs), XMM participation in the machine-wide trace, and
// the per-fault causal breakdown.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/core/machine.h"
#include "src/core/measure.h"

namespace asvm {
namespace {

// --- Histogram percentile edges ----------------------------------------------

TEST(HistogramTest, PercentileOfEmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 0.0);
}

TEST(HistogramTest, PercentileOfSingleSampleIsThatSample) {
  Histogram h;
  h.Record(42.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 42.5);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 42.5);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 42.5);
}

TEST(HistogramTest, PercentileEndpointsAreMinAndMax) {
  Histogram h;
  for (double v : {5.0, 1.0, 9.0, 3.0, 7.0}) {
    h.Record(v);
  }
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 9.0);
  // Out-of-range p clamps instead of indexing out of bounds.
  EXPECT_DOUBLE_EQ(h.Percentile(-10), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(250), 9.0);
  // Recording after a percentile query re-sorts correctly.
  h.Record(0.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.5);
}

TEST(StatsRegistryTest, ReportIsIndependentOfInsertionOrder) {
  StatsRegistry a;
  a.Add("z.counter", 3);
  a.Add("a.counter", 1);
  a.Observe("m.hist", 10.0);
  a.Observe("m.hist", 20.0);

  StatsRegistry b;
  b.Observe("m.hist", 10.0);
  b.Add("a.counter", 1);
  b.Observe("m.hist", 20.0);
  b.Add("z.counter", 3);

  EXPECT_EQ(a.Report(), b.Report());
}

// --- Chrome trace_event output -------------------------------------------------

// Minimal recursive-descent JSON validator: enough to prove the emitter
// produces structurally valid JSON (balanced containers, quoted keys, legal
// literals) without a JSON library dependency.
class TinyJsonParser {
 public:
  explicit TinyJsonParser(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;  // accept any escaped character
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) {
      return false;
    }
    ++pos_;
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const size_t len = std::char_traits<char>::length(word);
    if (s_.compare(pos_, len, word) != 0) {
      return false;
    }
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// A small contended workload with the monitor attached; returns the Chrome
// trace JSON for it.
std::string TraceJsonForRun(DsmKind kind) {
  MachineConfig config;
  config.nodes = 4;
  config.dsm = kind;
  Machine machine(config);
  TraceBuffer trace;
  machine.AttachMonitor(&trace);
  MemObjectId region = machine.CreateSharedRegion(0, 4);
  TaskMemory& writer = machine.MapRegion(1, region);
  TaskMemory& reader = machine.MapRegion(2, region);
  auto w = writer.WriteU64(0, 1);
  machine.Run();
  MeasureReadMs(machine, reader, 0);
  MeasureWriteMs(machine, reader, 0, 2);
  EXPECT_GT(trace.total(), 0);
  return ChromeTraceJson(trace);
}

TEST(ChromeTraceTest, EmitterProducesValidJson) {
  const std::string json = TraceJsonForRun(DsmKind::kAsvm);
  TinyJsonParser parser(json);
  EXPECT_TRUE(parser.Valid()) << json.substr(0, 400);
  // One metadata row per participating node, instant events with timestamps.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(ChromeTraceTest, IdenticalRunsEmitByteIdenticalJson) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
    const std::string first = TraceJsonForRun(kind);
    const std::string second = TraceJsonForRun(kind);
    EXPECT_EQ(first, second) << "trace JSON not deterministic under "
                             << ToString(kind);
  }
}

// Regression (PR 4): --dsm=xmm --trace used to silently produce nothing; the
// XMM agent now emits into the same machine-wide stream.
TEST(XmmTraceTest, XmmRunsProduceTraceEvents) {
  MachineConfig config;
  config.nodes = 4;
  config.dsm = DsmKind::kXmm;
  Machine machine(config);
  TraceBuffer trace;
  machine.AttachMonitor(&trace);
  MemObjectId region = machine.CreateSharedRegion(0, 4);
  TaskMemory& writer = machine.MapRegion(1, region);
  TaskMemory& reader = machine.MapRegion(2, region);
  auto w = writer.WriteU64(0, 1);
  machine.Run();
  MeasureReadMs(machine, reader, 0);

  EXPECT_GT(trace.total(), 0);
  EXPECT_GT(trace.count(TraceKind::kXmmRequest), 0);
  EXPECT_GT(trace.count(TraceKind::kXmmManagerServe), 0);
  EXPECT_GT(trace.count(TraceKind::kXmmGrant), 0);
  EXPECT_GT(trace.count(TraceKind::kGrantApplied), 0);
  EXPECT_GT(trace.count(TraceKind::kMsgSend), 0);
  const std::string rendered = trace.Render();
  EXPECT_NE(rendered.find("xmm-request"), std::string::npos);
  EXPECT_NE(rendered.find("xmm-manager-serve"), std::string::npos);
}

// --- Per-fault causal breakdown ------------------------------------------------

TEST(FaultBreakdownTest, SegmentsArePresentAndSumToTotal) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
    MachineConfig config;
    config.nodes = 4;
    config.dsm = kind;
    Machine machine(config);
    TraceBuffer trace(1 << 16);
    machine.AttachMonitor(&trace);
    MemObjectId region = machine.CreateSharedRegion(0, 4);
    TaskMemory& writer = machine.MapRegion(1, region);
    TaskMemory& reader = machine.MapRegion(2, region);
    auto w = writer.WriteU64(0, 1);
    machine.Run();
    MeasureReadMs(machine, reader, 0);
    MeasureWriteMs(machine, reader, 0, 2);

    const std::vector<FaultBreakdown> faults = AnalyzeFaultBreakdowns(trace.events());
    ASSERT_GT(faults.size(), 0u) << ToString(kind);
    for (const FaultBreakdown& f : faults) {
      EXPECT_GE(f.request_ns, 0) << ToString(kind);
      EXPECT_GE(f.forward_ns, 0) << ToString(kind);
      EXPECT_GE(f.manager_service_ns, 0) << ToString(kind);
      EXPECT_GE(f.data_transfer_ns, 0) << ToString(kind);
      EXPECT_GT(f.total_ns, 0) << ToString(kind);
      EXPECT_EQ(f.total_ns,
                f.request_ns + f.forward_ns + f.manager_service_ns + f.data_transfer_ns)
          << ToString(kind) << ": path segments must partition the fault";
    }

    StatsRegistry stats;
    RecordFaultBreakdowns(faults, stats);
    const std::string prefix = kind == DsmKind::kAsvm ? "asvm" : "xmm";
    const Histogram* total = stats.FindHistogram(prefix + ".fault.breakdown.total_ns");
    ASSERT_NE(total, nullptr) << ToString(kind);
    EXPECT_EQ(total->count(), faults.size());
    EXPECT_NE(stats.FindHistogram(prefix + ".fault.breakdown.data_transfer_ns"), nullptr);

    const std::string table = RenderFaultBreakdowns(faults);
    EXPECT_NE(table.find("fault breakdowns"), std::string::npos);
  }
}

}  // namespace
}  // namespace asvm
