#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "src/common/stats.h"
#include "src/mesh/network.h"
#include "src/sim/engine.h"
#include "src/transport/transport.h"

namespace asvm {
namespace {

class TransportTest : public ::testing::Test {
 protected:
  TransportTest()
      : network_(engine_, Topology(4, 4), MeshParams{}, &stats_),
        sts_(engine_, network_, &stats_),
        norma_(engine_, network_, &stats_) {}

  // A minimal typed message: the ping value rides in PullDone::page.
  Message MakeMsg(int value, PageBuffer page = nullptr) {
    Message msg;
    msg.protocol = ProtocolId::kAsvm;
    msg.type = static_cast<uint32_t>(AsvmMsgType::kPullDone);
    msg.body = AsvmBody{PullDone{MemObjectId{}, value}};
    msg.page = std::move(page);
    return msg;
  }

  static int PingValue(const Message& msg) {
    return static_cast<int>(std::get<PullDone>(std::get<AsvmBody>(msg.body)).page);
  }

  Engine engine_;
  StatsRegistry stats_;
  Network network_;
  StsTransport sts_;
  NormaIpc norma_;
};

TEST_F(TransportTest, DeliversBodyToRegisteredHandler) {
  int received = 0;
  NodeId from = kInvalidNode;
  sts_.RegisterHandler(ProtocolId::kAsvm, 3, [&](NodeId src, Message msg) {
    from = src;
    received = PingValue(msg);
  });
  sts_.Send(0, 3, MakeMsg(42));
  engine_.Run();
  EXPECT_EQ(received, 42);
  EXPECT_EQ(from, 0);
}

TEST_F(TransportTest, HandlersAreKeyedByProtocolAndNode) {
  int asvm_count = 0;
  int pager_count = 0;
  sts_.RegisterHandler(ProtocolId::kAsvm, 1, [&](NodeId, Message) { ++asvm_count; });
  sts_.RegisterHandler(ProtocolId::kPagerControl, 1, [&](NodeId, Message) { ++pager_count; });
  Message msg;
  msg.protocol = ProtocolId::kPagerControl;
  msg.type = static_cast<uint32_t>(PagerMsgType::kControl);
  msg.body = PagerBody{PagerControlMsg{7}};
  sts_.Send(0, 1, std::move(msg));
  sts_.Send(0, 1, MakeMsg(2));
  engine_.Run();
  EXPECT_EQ(asvm_count, 1);
  EXPECT_EQ(pager_count, 1);
}

TEST_F(TransportTest, StsIsMuchFasterThanNorma) {
  SimTime sts_done = 0;
  SimTime norma_done = 0;
  sts_.RegisterHandler(ProtocolId::kAsvm, 1, [&](NodeId, Message) { sts_done = engine_.Now(); });
  norma_.RegisterHandler(ProtocolId::kAsvm, 2,
                         [&](NodeId, Message) { norma_done = engine_.Now(); });
  sts_.Send(0, 1, MakeMsg(1));
  norma_.Send(0, 2, MakeMsg(1));
  engine_.Run();
  EXPECT_GT(norma_done, (18 * sts_done) / 10);
  // Calibration sanity: one STS control message ~0.5 ms, NORMA ~1 ms.
  EXPECT_LT(sts_done, 1 * kMillisecond);
  EXPECT_GT(norma_done, 9 * kMillisecond / 10);
}

TEST_F(TransportTest, PagePayloadAddsWireTime) {
  SimTime small_done = 0;
  SimTime page_done = 0;
  sts_.RegisterHandler(ProtocolId::kAsvm, 1, [&](NodeId, Message msg) {
    if (msg.page) {
      page_done = engine_.Now();
    } else {
      small_done = engine_.Now();
    }
  });
  auto page = std::make_shared<std::vector<std::byte>>(8192);
  // Send from distinct sources so the sends do not serialize on one sender.
  sts_.Send(2, 1, MakeMsg(1));
  sts_.Send(3, 1, MakeMsg(2, page));
  engine_.Run();
  EXPECT_GT(page_done, small_done);
}

TEST_F(TransportTest, LocalDeliveryBypassesMesh) {
  int received = 0;
  sts_.RegisterHandler(ProtocolId::kAsvm, 5, [&](NodeId src, Message) {
    EXPECT_EQ(src, 5);
    ++received;
  });
  sts_.Send(5, 5, MakeMsg(9));
  engine_.Run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(stats_.Get("mesh.messages"), 0);
  EXPECT_LE(engine_.Now(), 50 * kMicrosecond);
}

TEST_F(TransportTest, ReceiverSerializesManyToOne) {
  // A burst of requests to one node is processed sequentially — the effect
  // that throttles a centralized manager.
  std::vector<SimTime> handled;
  sts_.RegisterHandler(ProtocolId::kAsvm, 0,
                       [&](NodeId, Message) { handled.push_back(engine_.Now()); });
  for (NodeId src = 1; src <= 6; ++src) {
    sts_.Send(src, 0, MakeMsg(src));
  }
  engine_.Run();
  ASSERT_EQ(handled.size(), 6u);
  for (size_t i = 1; i < handled.size(); ++i) {
    EXPECT_GE(handled[i] - handled[i - 1], StsCosts().recv_sw_ns);
  }
}

TEST_F(TransportTest, SenderSerializesFanOut) {
  std::vector<SimTime> handled;
  for (NodeId dst = 1; dst <= 6; ++dst) {
    sts_.RegisterHandler(ProtocolId::kAsvm, dst,
                         [&](NodeId, Message) { handled.push_back(engine_.Now()); });
  }
  for (NodeId dst = 1; dst <= 6; ++dst) {
    sts_.Send(0, dst, MakeMsg(dst));
  }
  engine_.Run();
  ASSERT_EQ(handled.size(), 6u);
  // Arrival spacing reflects the sender's software send cost (with a little
  // slack for differing hop distances to each destination).
  for (size_t i = 1; i < handled.size(); ++i) {
    EXPECT_GE(handled[i] - handled[i - 1], StsCosts().send_sw_ns - kMicrosecond);
  }
}

TEST_F(TransportTest, StatsTrackPerTransportTraffic) {
  sts_.RegisterHandler(ProtocolId::kAsvm, 1, [](NodeId, Message) {});
  norma_.RegisterHandler(ProtocolId::kAsvm, 1, [](NodeId, Message) {});
  auto page = std::make_shared<std::vector<std::byte>>(8192);
  sts_.Send(0, 1, MakeMsg(1, page));
  norma_.Send(0, 1, MakeMsg(1));
  engine_.Run();
  EXPECT_EQ(stats_.Get("transport.sts.messages"), 1);
  EXPECT_EQ(stats_.Get("transport.sts.page_messages"), 1);
  EXPECT_EQ(stats_.Get("transport.sts.bytes"), 32 + 8192);
  EXPECT_EQ(stats_.Get("transport.norma.messages"), 1);
  // NORMA charges port/typing overhead on the wire.
  EXPECT_EQ(stats_.Get("transport.norma.bytes"),
            static_cast<int64_t>(32 + NormaIpcCosts().control_overhead_bytes));
}

TEST_F(TransportTest, PerTypeCountersAreOptIn) {
  sts_.RegisterHandler(ProtocolId::kAsvm, 1, [](NodeId, Message) {});
  sts_.Send(0, 1, MakeMsg(1));
  engine_.Run();
  EXPECT_EQ(stats_.Get("transport.sts.msg.pull_done"), 0);
  sts_.set_per_type_stats(true);
  sts_.Send(0, 1, MakeMsg(2));
  sts_.Send(0, 1, MakeMsg(3));
  engine_.Run();
  EXPECT_EQ(stats_.Get("transport.sts.msg.pull_done"), 2);
}

TEST_F(TransportTest, DuplicateHandlerRegistrationAborts) {
  sts_.RegisterHandler(ProtocolId::kAsvm, 1, [](NodeId, Message) {});
  EXPECT_DEATH(sts_.RegisterHandler(ProtocolId::kAsvm, 1, [](NodeId, Message) {}),
               "duplicate");
}

TEST_F(TransportTest, UnregisteredHandlerAborts) {
  sts_.Send(0, 1, MakeMsg(1));
  EXPECT_DEATH(engine_.Run(), "no transport handler");
}

}  // namespace
}  // namespace asvm
