// Mapped-filesystem workloads: correctness (contents survive) and the
// qualitative Table 2 behaviour (ASVM read rate sustained vs XMM collapse).
#include <gtest/gtest.h>

#include "src/mappedfs/file_bench.h"

namespace asvm {
namespace {

MachineConfig FsConfig(DsmKind kind, int nodes) {
  MachineConfig config;
  config.nodes = nodes;
  config.dsm = kind;
  return config;
}

class FileBenchBothSystems : public ::testing::TestWithParam<DsmKind> {};

TEST_P(FileBenchBothSystems, ParallelReadDeliversCorrectData) {
  Machine machine(FsConfig(GetParam(), 4));
  int32_t file_id = machine.cluster().file_pager().CreateFile("data", 16, /*prefilled=*/true);
  MemObjectId region = machine.dsm().CreateFileRegion(file_id, 16);
  FileBenchResult r = RunParallelFileRead(machine, region, 16, 4);
  EXPECT_GT(r.per_node_mb_s, 0);
  EXPECT_EQ(r.node_seconds.size(), 4u);

  TaskMemory& checker = machine.MapRegion(2, region);
  EXPECT_EQ(VerifyFileContents(machine, checker, file_id, 16), 0);
}

TEST_P(FileBenchBothSystems, ParallelWriteSectionsLandInFile) {
  Machine machine(FsConfig(GetParam(), 4));
  MemObjectId region = machine.CreateMappedFile("out", 16, /*prefilled=*/false);
  FileBenchResult r = RunParallelFileWrite(machine, region, 16, 4);
  EXPECT_GT(r.per_node_mb_s, 0);

  // Every page is now writable data; read it back from another node.
  TaskMemory& reader = machine.MapRegion(1, region);
  for (VmOffset p = 0; p < 16; ++p) {
    auto f = reader.ReadU64(p * 8192);
    machine.Run();
    ASSERT_TRUE(f.ready());
  }
}

INSTANTIATE_TEST_SUITE_P(BothSystems, FileBenchBothSystems,
                         ::testing::Values(DsmKind::kAsvm, DsmKind::kXmm),
                         [](const ::testing::TestParamInfo<DsmKind>& info) {
                           return std::string(ToString(info.param));
                         });

TEST(FileBenchTest, AsvmReadRateSurvivesScaleXmmCollapses) {
  // The Table 2 shape at miniature scale: per-node read rate at 8 nodes vs 1.
  auto read_rate = [](DsmKind kind, int nodes) {
    Machine machine(FsConfig(kind, nodes));
    int32_t file_id =
        machine.cluster().file_pager().CreateFile("f", 64, /*prefilled=*/true);
    MemObjectId region = machine.dsm().CreateFileRegion(file_id, 64);
    return RunParallelFileRead(machine, region, 64, nodes).per_node_mb_s;
  };
  const double asvm_1 = read_rate(DsmKind::kAsvm, 1);
  const double asvm_8 = read_rate(DsmKind::kAsvm, 8);
  const double xmm_1 = read_rate(DsmKind::kXmm, 1);
  const double xmm_8 = read_rate(DsmKind::kXmm, 8);
  // ASVM sustains a reasonable fraction of its single-node rate.
  EXPECT_GT(asvm_8, asvm_1 * 0.25);
  // XMM's centralized manager collapses much harder.
  EXPECT_LT(xmm_8, xmm_1 * 0.3);
  EXPECT_GT(asvm_8, xmm_8 * 3);
}

TEST(FileBenchTest, WriteRateLimitedByFilePager) {
  // Writes of fresh pages bottleneck on the pager for both systems, but the
  // combined rate should not crater with nodes (async zero-fill grants).
  auto combined_write = [](DsmKind kind, int nodes) {
    Machine machine(FsConfig(kind, nodes));
    MemObjectId region = machine.CreateMappedFile("w", 64, /*prefilled=*/false);
    FileBenchResult r = RunParallelFileWrite(machine, region, 64, nodes);
    const double total_mb = 64.0 * 8192 / (1024 * 1024);
    return total_mb / r.makespan_seconds;
  };
  const double asvm_total_8 = combined_write(DsmKind::kAsvm, 8);
  const double xmm_total_8 = combined_write(DsmKind::kXmm, 8);
  EXPECT_GT(asvm_total_8, xmm_total_8) << "ASVM's cheaper protocol wins on writes too";
}

TEST(FileBenchTest, NodeTimesAreMonotoneWithLoad) {
  Machine machine(FsConfig(DsmKind::kAsvm, 2));
  int32_t file_id = machine.cluster().file_pager().CreateFile("m", 32, /*prefilled=*/true);
  MemObjectId region = machine.dsm().CreateFileRegion(file_id, 32);
  FileBenchResult two = RunParallelFileRead(machine, region, 32, 2);
  EXPECT_GT(two.makespan_seconds, 0);
  EXPECT_GE(two.makespan_seconds + 1e-12,
            *std::max_element(two.node_seconds.begin(), two.node_seconds.end()));
}

}  // namespace
}  // namespace asvm
