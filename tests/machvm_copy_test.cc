// Delayed-copy semantics: symmetric and asymmetric strategies, local push and
// pull through shadow/copy chains, fork inheritance, and the EMMI extensions
// (lock_request modes, data_supply push mode, pull_request).
#include <gtest/gtest.h>

#include "src/machvm/node_vm.h"
#include "src/machvm/task_memory.h"
#include "src/sim/engine.h"

namespace asvm {
namespace {

class CopyTest : public ::testing::Test {
 protected:
  CopyTest() : vm_(engine_, 0, VmParams{.page_size = 4096, .frame_capacity = 256, .costs = {}}, &stats_) {}

  uint64_t ReadAt(VmMap& map, VmOffset addr) {
    TaskMemory mem(vm_, map);
    auto f = mem.ReadU64(addr);
    engine_.Run();
    EXPECT_TRUE(f.ready());
    return f.value();
  }

  void WriteAt(VmMap& map, VmOffset addr, uint64_t value) {
    TaskMemory mem(vm_, map);
    auto f = mem.WriteU64(addr, value);
    engine_.Run();
    EXPECT_TRUE(f.ready());
    EXPECT_EQ(f.value(), Status::kOk);
  }

  Engine engine_;
  StatsRegistry stats_;
  NodeVm vm_;
};

TEST_F(CopyTest, SymmetricForkChildSeesSnapshot) {
  VmMap* parent = vm_.CreateMap();
  auto obj = vm_.CreateObject(4, CopyStrategy::kSymmetric);
  ASSERT_EQ(parent->Map(0, 4, obj, 0, Inheritance::kCopy), Status::kOk);
  WriteAt(*parent, 0, 111);
  WriteAt(*parent, 4096, 222);

  VmMap* child = vm_.ForkMap(*parent);
  // Child observes the snapshot.
  EXPECT_EQ(ReadAt(*child, 0), 111u);
  EXPECT_EQ(ReadAt(*child, 4096), 222u);
}

TEST_F(CopyTest, SymmetricForkIsolatesWritesBothWays) {
  VmMap* parent = vm_.CreateMap();
  auto obj = vm_.CreateObject(4, CopyStrategy::kSymmetric);
  ASSERT_EQ(parent->Map(0, 4, obj, 0, Inheritance::kCopy), Status::kOk);
  WriteAt(*parent, 0, 111);

  VmMap* child = vm_.ForkMap(*parent);
  // Parent writes after the fork are invisible to the child...
  WriteAt(*parent, 0, 999);
  EXPECT_EQ(ReadAt(*child, 0), 111u);
  // ...and vice versa.
  WriteAt(*child, 8, 555);
  EXPECT_EQ(ReadAt(*parent, 8), 0u);  // offset 8 was never written in the parent
  EXPECT_EQ(ReadAt(*child, 8), 555u);
  EXPECT_EQ(ReadAt(*parent, 0), 999u);
  // Untouched pages still shared/zero.
  EXPECT_EQ(ReadAt(*child, 2 * 4096), 0u);
  EXPECT_EQ(ReadAt(*parent, 2 * 4096), 0u);
}

TEST_F(CopyTest, SymmetricForkCreatesShadowObjectsLazily) {
  VmMap* parent = vm_.CreateMap();
  auto obj = vm_.CreateObject(4, CopyStrategy::kSymmetric);
  ASSERT_EQ(parent->Map(0, 4, obj, 0, Inheritance::kCopy), Status::kOk);
  WriteAt(*parent, 0, 1);
  vm_.ForkMap(*parent);
  EXPECT_EQ(stats_.Get("vm.shadow_objects"), 0);
  WriteAt(*parent, 0, 2);  // first write after fork shadows
  EXPECT_EQ(stats_.Get("vm.shadow_objects"), 1);
  WriteAt(*parent, 8, 3);  // same entry, no new shadow
  EXPECT_EQ(stats_.Get("vm.shadow_objects"), 1);
}

TEST_F(CopyTest, GrandchildForkChains) {
  VmMap* gen0 = vm_.CreateMap();
  auto obj = vm_.CreateObject(2, CopyStrategy::kSymmetric);
  ASSERT_EQ(gen0->Map(0, 2, obj, 0, Inheritance::kCopy), Status::kOk);
  WriteAt(*gen0, 0, 10);
  VmMap* gen1 = vm_.ForkMap(*gen0);
  WriteAt(*gen1, 0, 20);
  VmMap* gen2 = vm_.ForkMap(*gen1);
  WriteAt(*gen2, 0, 30);
  EXPECT_EQ(ReadAt(*gen0, 0), 10u);
  EXPECT_EQ(ReadAt(*gen1, 0), 20u);
  EXPECT_EQ(ReadAt(*gen2, 0), 30u);
}

TEST_F(CopyTest, ShareInheritanceSharesWrites) {
  VmMap* parent = vm_.CreateMap();
  auto obj = vm_.CreateObject(2, CopyStrategy::kSymmetric);
  ASSERT_EQ(parent->Map(0, 2, obj, 0, Inheritance::kShare), Status::kOk);
  WriteAt(*parent, 0, 7);
  VmMap* child = vm_.ForkMap(*parent);
  WriteAt(*child, 0, 8);
  EXPECT_EQ(ReadAt(*parent, 0), 8u);
}

TEST_F(CopyTest, NoneInheritanceOmitsRange) {
  VmMap* parent = vm_.CreateMap();
  auto obj = vm_.CreateObject(2, CopyStrategy::kSymmetric);
  ASSERT_EQ(parent->Map(0, 2, obj, 0, Inheritance::kNone), Status::kOk);
  VmMap* child = vm_.ForkMap(*parent);
  EXPECT_EQ(child->Resolve(0).entry, nullptr);
}

// --- Asymmetric copies -------------------------------------------------------

TEST_F(CopyTest, AsymmetricCopySeesSnapshotViaPull) {
  VmMap* src_map = vm_.CreateMap();
  auto source = vm_.CreateObject(4, CopyStrategy::kAsymmetric);
  ASSERT_EQ(src_map->Map(0, 4, source, 0, Inheritance::kCopy), Status::kOk);
  WriteAt(*src_map, 0, 42);

  auto copy = vm_.CreateAsymmetricCopy(source);
  VmMap* copy_map = vm_.CreateMap();
  ASSERT_EQ(copy_map->Map(0, 4, copy, 0, Inheritance::kCopy), Status::kOk);

  // Read pulls through the shadow link without copying the page.
  EXPECT_EQ(ReadAt(*copy_map, 0), 42u);
  EXPECT_EQ(copy->resident_count(), 0u);  // delayed-copy: no page copied on read
}

TEST_F(CopyTest, AsymmetricSourceWritePushesPreWriteData) {
  VmMap* src_map = vm_.CreateMap();
  auto source = vm_.CreateObject(4, CopyStrategy::kAsymmetric);
  ASSERT_EQ(src_map->Map(0, 4, source, 0, Inheritance::kCopy), Status::kOk);
  WriteAt(*src_map, 0, 42);

  auto copy = vm_.CreateAsymmetricCopy(source);
  VmMap* copy_map = vm_.CreateMap();
  ASSERT_EQ(copy_map->Map(0, 4, copy, 0, Inheritance::kCopy), Status::kOk);

  // Source modifies the page: pre-write contents must land in the copy.
  WriteAt(*src_map, 0, 100);
  EXPECT_EQ(ReadAt(*copy_map, 0), 42u);
  EXPECT_EQ(ReadAt(*src_map, 0), 100u);
  EXPECT_GE(stats_.Get("vm.local_pushes"), 1);
}

TEST_F(CopyTest, AsymmetricCopyWriteDoesNotDisturbSource) {
  VmMap* src_map = vm_.CreateMap();
  auto source = vm_.CreateObject(4, CopyStrategy::kAsymmetric);
  ASSERT_EQ(src_map->Map(0, 4, source, 0, Inheritance::kCopy), Status::kOk);
  WriteAt(*src_map, 0, 42);

  auto copy = vm_.CreateAsymmetricCopy(source);
  VmMap* copy_map = vm_.CreateMap();
  ASSERT_EQ(copy_map->Map(0, 4, copy, 0, Inheritance::kCopy), Status::kOk);

  WriteAt(*copy_map, 0, 7);  // COW into the copy object
  EXPECT_EQ(ReadAt(*src_map, 0), 42u);
  EXPECT_EQ(ReadAt(*copy_map, 0), 7u);
  // And a source write afterwards must NOT push (copy already has the page).
  WriteAt(*src_map, 0, 43);
  EXPECT_EQ(ReadAt(*copy_map, 0), 7u);
}

TEST_F(CopyTest, CopyChainInsertionOrder) {
  // Two copies: the newer is inserted immediately after the source; the older
  // copy reads through the newer one.
  VmMap* src_map = vm_.CreateMap();
  auto source = vm_.CreateObject(2, CopyStrategy::kAsymmetric);
  ASSERT_EQ(src_map->Map(0, 2, source, 0, Inheritance::kCopy), Status::kOk);
  WriteAt(*src_map, 0, 1);

  auto copy1 = vm_.CreateAsymmetricCopy(source);
  VmMap* map1 = vm_.CreateMap();
  ASSERT_EQ(map1->Map(0, 2, copy1, 0, Inheritance::kCopy), Status::kOk);

  WriteAt(*src_map, 0, 2);  // pushes "1" into copy1

  auto copy2 = vm_.CreateAsymmetricCopy(source);
  VmMap* map2 = vm_.CreateMap();
  ASSERT_EQ(map2->Map(0, 2, copy2, 0, Inheritance::kCopy), Status::kOk);
  EXPECT_EQ(source->copy(), copy2);
  EXPECT_EQ(copy1->shadow(), copy2);  // re-linked through the new copy

  WriteAt(*src_map, 0, 3);  // pushes "2" into copy2

  EXPECT_EQ(ReadAt(*src_map, 0), 3u);
  EXPECT_EQ(ReadAt(*map2, 0), 2u);
  EXPECT_EQ(ReadAt(*map1, 0), 1u);
}

TEST_F(CopyTest, ZeroFillPagePushedBeforeFirstWrite) {
  VmMap* src_map = vm_.CreateMap();
  auto source = vm_.CreateObject(2, CopyStrategy::kAsymmetric);
  ASSERT_EQ(src_map->Map(0, 2, source, 0, Inheritance::kCopy), Status::kOk);

  auto copy = vm_.CreateAsymmetricCopy(source);
  VmMap* copy_map = vm_.CreateMap();
  ASSERT_EQ(copy_map->Map(0, 2, copy, 0, Inheritance::kCopy), Status::kOk);

  // Page never existed; source writes after the copy.
  WriteAt(*src_map, 0, 77);
  EXPECT_EQ(ReadAt(*copy_map, 0), 0u);  // copy sees the zero snapshot
}

// --- EMMI extensions ---------------------------------------------------------

TEST_F(CopyTest, PullRequestFindsResidentData) {
  VmMap* map = vm_.CreateMap();
  auto obj = vm_.CreateObject(2);
  ASSERT_EQ(map->Map(0, 2, obj, 0, Inheritance::kCopy), Status::kOk);
  WriteAt(*map, 0, 1234);

  PullResult got;
  vm_.PullRequest(*obj, 0, [&](PullResult r) { got = r; });
  engine_.Run();
  ASSERT_EQ(got.kind, PullResult::Kind::kData);
  uint64_t v = 0;
  memcpy(&v, got.data->data(), 8);
  EXPECT_EQ(v, 1234u);
}

TEST_F(CopyTest, PullRequestWalksShadowChain) {
  VmMap* src_map = vm_.CreateMap();
  auto source = vm_.CreateObject(2, CopyStrategy::kAsymmetric);
  ASSERT_EQ(src_map->Map(0, 2, source, 0, Inheritance::kCopy), Status::kOk);
  WriteAt(*src_map, 0, 9);
  auto copy = vm_.CreateAsymmetricCopy(source);

  PullResult got;
  vm_.PullRequest(*copy, 0, [&](PullResult r) { got = r; });
  engine_.Run();
  ASSERT_EQ(got.kind, PullResult::Kind::kData);
  uint64_t v = 0;
  memcpy(&v, got.data->data(), 8);
  EXPECT_EQ(v, 9u);
}

TEST_F(CopyTest, PullRequestZeroFillWhenChainEmpty) {
  auto source = vm_.CreateObject(2);
  auto copy = vm_.CreateAsymmetricCopy(source);
  PullResult got;
  vm_.PullRequest(*copy, 1, [&](PullResult r) { got = r; });
  engine_.Run();
  EXPECT_EQ(got.kind, PullResult::Kind::kZeroFill);
}

TEST_F(CopyTest, LockRequestFlushRemovesPage) {
  VmMap* map = vm_.CreateMap();
  auto obj = vm_.CreateObject(2);
  ASSERT_EQ(map->Map(0, 2, obj, 0, Inheritance::kCopy), Status::kOk);
  WriteAt(*map, 0, 5);
  ASSERT_NE(obj->FindResident(0), nullptr);

  LockResult result{};
  vm_.LockRequest(*obj, 0, PageAccess::kNone, LockMode::kFlush,
                  [&](LockResult r) { result = r; });
  engine_.Run();
  EXPECT_EQ(result, LockResult::kDone);
  EXPECT_EQ(obj->FindResident(0), nullptr);
}

TEST_F(CopyTest, LockRequestOnAbsentPageReportsNotResident) {
  auto obj = vm_.CreateObject(2);
  LockResult result{};
  vm_.LockRequest(*obj, 0, PageAccess::kRead, LockMode::kPushAndLock,
                  [&](LockResult r) { result = r; });
  engine_.Run();
  EXPECT_EQ(result, LockResult::kNotResident);
}

TEST_F(CopyTest, LockRequestPushAndLockPushesThenDowngrades) {
  VmMap* src_map = vm_.CreateMap();
  auto source = vm_.CreateObject(2, CopyStrategy::kAsymmetric);
  ASSERT_EQ(src_map->Map(0, 2, source, 0, Inheritance::kCopy), Status::kOk);
  WriteAt(*src_map, 0, 31);
  auto copy = vm_.CreateAsymmetricCopy(source);

  LockResult result{};
  vm_.LockRequest(*source, 0, PageAccess::kRead, LockMode::kPushAndLock,
                  [&](LockResult r) { result = r; });
  engine_.Run();
  EXPECT_EQ(result, LockResult::kDone);
  ASSERT_NE(copy->FindResident(0), nullptr);
  EXPECT_EQ(source->FindResident(0)->lock, PageAccess::kRead);
  uint64_t v = 0;
  memcpy(&v, copy->FindResident(0)->data->data(), 8);
  EXPECT_EQ(v, 31u);
}

TEST_F(CopyTest, DataSupplyPushModeInsertsIntoCopy) {
  auto source = vm_.CreateObject(2);
  auto copy = vm_.CreateAsymmetricCopy(source);
  auto data = AllocPage(4096);
  uint64_t v = 88;
  memcpy(data->data(), &v, 8);

  vm_.DataSupply(*source, 0, std::move(data), PageAccess::kRead, SupplyMode::kPushToCopy);
  ASSERT_NE(copy->FindResident(0), nullptr);
  EXPECT_EQ(source->FindResident(0), nullptr);  // supply went down the chain
  EXPECT_TRUE(copy->FindResident(0)->dirty);
}

TEST_F(CopyTest, DataSupplyPushModeSkipsWhenCopyHasPage) {
  auto source = vm_.CreateObject(2);
  auto copy = vm_.CreateAsymmetricCopy(source);
  auto first = AllocPage(4096);
  uint64_t v1 = 1;
  memcpy(first->data(), &v1, 8);
  vm_.DataSupply(*source, 0, std::move(first), PageAccess::kRead, SupplyMode::kPushToCopy);

  auto second = AllocPage(4096);
  uint64_t v2 = 2;
  memcpy(second->data(), &v2, 8);
  vm_.DataSupply(*source, 0, std::move(second), PageAccess::kRead, SupplyMode::kPushToCopy);

  uint64_t got = 0;
  memcpy(&got, copy->FindResident(0)->data->data(), 8);
  EXPECT_EQ(got, 1u);  // first push wins; no overwrite
}

}  // namespace
}  // namespace asvm
