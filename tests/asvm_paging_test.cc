// ASVM internode paging (§3.6): the 4-step eviction algorithm, ownership
// balancing across sharers, and writeback to the pager as the last resort.
#include <gtest/gtest.h>

#include "src/asvm/agent.h"
#include "src/asvm/asvm_system.h"
#include "tests/dsm_test_util.h"

namespace asvm {
namespace {

class AsvmPagingTest : public ::testing::Test {
 protected:
  void Build(int nodes, size_t frames, VmSize pages = 64) {
    cluster_ = std::make_unique<Cluster>(SmallClusterParams(nodes, frames));
    system_ = std::make_unique<AsvmSystem>(*cluster_);
    pages_ = pages;
    region_ = system_->CreateSharedRegion(/*home=*/0, pages);
    harness_ = std::make_unique<DsmRegionHarness>(*cluster_, *system_, region_, pages);
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<AsvmSystem> system_;
  VmSize pages_ = 0;
  MemObjectId region_;
  std::unique_ptr<DsmRegionHarness> harness_;
};

TEST_F(AsvmPagingTest, RegionLargerThanOneNodeSpillsToOtherNodes) {
  // One node initializes a region bigger than its memory: pages must be
  // distributed to the other nodes (the load-balancing behaviour §3.6 calls
  // out), not all dumped to disk.
  Build(4, /*frames=*/24, /*pages=*/48);
  for (VmSize p = 0; p < 48; ++p) {
    harness_->Write(0, p * 4096, 7000 + p);
  }
  EXPECT_GT(cluster_->stats().Get("asvm.evict_page_transfers"), 0)
      << "pages should move to other nodes, not only to disk";
  // Everything is still readable with the right contents.
  for (VmSize p = 0; p < 48; ++p) {
    EXPECT_EQ(harness_->Read(0, p * 4096), 7000 + p) << "page " << p;
  }
}

TEST_F(AsvmPagingTest, EvictionPrefersOwnershipTransferToReaders) {
  Build(4, /*frames=*/32, /*pages=*/64);
  // Node 0 writes pages, node 1 reads them all (becomes reader of each).
  for (VmSize p = 0; p < 24; ++p) {
    harness_->Write(0, p * 4096, p + 1);
  }
  for (VmSize p = 0; p < 24; ++p) {
    EXPECT_EQ(harness_->Read(1, p * 4096), p + 1);
  }
  // Now node 0 floods its memory with other pages, forcing eviction of the
  // shared ones. Ownership should pass to the reader without page traffic.
  const int64_t transfers_before = cluster_->stats().Get("asvm.evict_ownership_transfers");
  for (VmSize p = 24; p < 64; ++p) {
    harness_->Write(0, p * 4096, p + 1);
  }
  EXPECT_GT(cluster_->stats().Get("asvm.evict_ownership_transfers"), transfers_before);
  // Contents intact.
  for (VmSize p = 0; p < 24; ++p) {
    EXPECT_EQ(harness_->Read(2, p * 4096), p + 1);
  }
}

TEST_F(AsvmPagingTest, WritebackToPagerWhenNoNodeHasRoom) {
  // Two tiny nodes: everything spills; eventually the pager (paging space on
  // the home's disk) must hold the data.
  Build(2, /*frames=*/12, /*pages=*/64);
  for (VmSize p = 0; p < 64; ++p) {
    harness_->Write(0, p * 4096, 90000 + p);
  }
  EXPECT_GT(cluster_->stats().Get("asvm.evict_writebacks"), 0);
  for (VmSize p = 0; p < 64; ++p) {
    EXPECT_EQ(harness_->Read(1, p * 4096), 90000 + p) << "page " << p;
  }
}

TEST_F(AsvmPagingTest, NonOwnerCopiesAreDiscardedSilently) {
  Build(4, /*frames=*/16, /*pages=*/64);
  harness_->Write(0, 0, 42);
  EXPECT_EQ(harness_->Read(1, 0), 42u);
  // Node 1 (a reader, not owner) floods its cache: the shared page must be
  // discarded, not transferred.
  for (VmSize p = 1; p < 40; ++p) {
    harness_->Write(1, p * 4096, p);
  }
  EXPECT_GT(cluster_->stats().Get("asvm.evict_discards"), 0);
  EXPECT_EQ(harness_->Read(1, 0), 42u);  // re-fetchable from the owner
}

TEST_F(AsvmPagingTest, PageoutSticksToAcceptingNode) {
  Build(8, /*frames=*/16, /*pages=*/64);
  for (VmSize p = 0; p < 48; ++p) {
    harness_->Write(0, p * 4096, p);
  }
  // The cycling/sticky selection should have spread pages around; at least
  // one remote node must now own several pages.
  int nodes_with_pages = 0;
  for (NodeId n = 1; n < 8; ++n) {
    auto* os = system_->agent(n).FindObjState(region_);
    if (os == nullptr) {
      continue;
    }
    int owned = 0;
    os->pages.ForEach([&owned](PageIndex, const AsvmAgent::PageState& ps) {
      if (ps.owner) {
        ++owned;
      }
    });
    if (owned > 0) {
      ++nodes_with_pages;
    }
  }
  EXPECT_GE(nodes_with_pages, 2) << "pageout should distribute across nodes";
}

TEST_F(AsvmPagingTest, ReFaultAfterDistributedPageoutIsMemorySpeed) {
  Build(4, /*frames=*/24, /*pages=*/48);
  for (VmSize p = 0; p < 48; ++p) {
    harness_->Write(0, p * 4096, p);
  }
  // Page 0 was evicted long ago. If it went to another node's memory, the
  // re-fault is a couple of messages, not a disk access.
  uint64_t value = 0;
  SimDuration latency = harness_->TimedRead(0, 0, &value);
  EXPECT_EQ(value, 0u);
  // Either memory-speed (< 5 ms) or disk (> 15 ms); assert we at least got
  // the cheap path for *some* evicted page by checking stats.
  (void)latency;
  EXPECT_GT(cluster_->stats().Get("asvm.evict_page_transfers") +
                cluster_->stats().Get("asvm.evict_ownership_transfers"),
            0);
}

TEST_F(AsvmPagingTest, ColdRegionSurvivesTotalEvictionEverywhere) {
  Build(2, /*frames=*/10, /*pages=*/40);
  for (VmSize p = 0; p < 40; ++p) {
    harness_->Write(0, p * 4096, 1234500 + p);
  }
  // Thrash both nodes with the tail pages, then verify the head pages.
  for (int round = 0; round < 2; ++round) {
    for (VmSize p = 20; p < 40; ++p) {
      harness_->Write(1, p * 4096, 99000 + p);
    }
  }
  for (VmSize p = 0; p < 20; ++p) {
    EXPECT_EQ(harness_->Read(1, p * 4096), 1234500 + p) << "page " << p;
  }
}

}  // namespace
}  // namespace asvm
