// Cross-subsystem integration: several workloads running on one machine at
// the same time — shared regions, a mapped file, remote forks — with memory
// pressure, under both DSM systems. The end state must be exactly right.
#include <gtest/gtest.h>

#include "src/core/machine.h"
#include "src/mappedfs/file_bench.h"

namespace asvm {
namespace {

class MixedWorkloadTest : public ::testing::TestWithParam<DsmKind> {};

TEST_P(MixedWorkloadTest, SharedRegionAndFileAndForkConcurrently) {
  MachineConfig config;
  config.nodes = 6;
  config.dsm = GetParam();
  Machine machine(config);

  // Workload A: a shared counter region hammered by three nodes.
  MemObjectId counters = machine.CreateSharedRegion(0, 8);
  TaskMemory& c1 = machine.MapRegion(1, counters);
  TaskMemory& c2 = machine.MapRegion(2, counters);
  TaskMemory& c3 = machine.MapRegion(3, counters);

  // Workload B: a mapped file written by node 4.
  MemObjectId file = machine.CreateMappedFile("mix", 16, /*prefilled=*/false);
  TaskMemory& fwriter = machine.MapRegion(4, file);

  // Workload C: a private task on node 5 forked to node 1.
  TaskMemory& parent = machine.CreatePrivateTask(5, 8);

  // Interleave everything without draining the engine in between.
  std::vector<Future<Status>> ops;
  for (int round = 0; round < 10; ++round) {
    ops.push_back(c1.WriteU64(0, 100 + round));
    ops.push_back(c2.WriteU64(4096, 200 + round));
    ops.push_back(c3.WriteU64(2 * 4096, 300 + round));
    ops.push_back(fwriter.WriteU64(static_cast<VmOffset>(round) * 8192, 400 + round));
    ops.push_back(parent.WriteU64(static_cast<VmOffset>(round % 8) * 8192, 500 + round));
  }
  machine.Run();
  for (auto& op : ops) {
    ASSERT_TRUE(op.ready());
    ASSERT_EQ(op.value(), Status::kOk);
  }

  auto fork = machine.RemoteFork(5, parent, 1);
  machine.Run();
  ASSERT_TRUE(fork.ready());
  TaskMemory& child = machine.WrapMap(1, fork.value());

  // Post-fork: the parent keeps writing; snapshots must hold.
  auto pw = parent.WriteU64(0, 999);
  machine.Run();
  ASSERT_TRUE(pw.ready());

  // Verify all three workloads from fresh vantage points.
  TaskMemory& checker = machine.MapRegion(5, counters);
  auto r1 = checker.ReadU64(0);
  machine.Run();
  EXPECT_EQ(r1.value(), 109u);
  auto r2 = checker.ReadU64(4096);
  machine.Run();
  EXPECT_EQ(r2.value(), 209u);

  TaskMemory& freader = machine.MapRegion(2, file);
  for (int round = 0; round < 10; ++round) {
    auto rf = freader.ReadU64(static_cast<VmOffset>(round) * 8192);
    machine.Run();
    ASSERT_TRUE(rf.ready());
    EXPECT_EQ(rf.value(), 400u + round);
  }

  auto rc = child.ReadU64(0);
  machine.Run();
  // Page 0 last received round 8 (rounds cycle over 8 pages); the parent's
  // post-fork 999 must be invisible.
  EXPECT_EQ(rc.value(), 508u) << "child sees the last pre-fork value, not 999";
}

TEST_P(MixedWorkloadTest, MemoryPressureAcrossWorkloads) {
  MachineConfig config;
  config.nodes = 4;
  config.dsm = GetParam();
  config.user_memory_bytes = 24 * 8192;  // 24 frames per node
  Machine machine(config);

  MemObjectId region_a = machine.CreateSharedRegion(0, 32);
  MemObjectId region_b = machine.CreateSharedRegion(1, 32);
  TaskMemory& a1 = machine.MapRegion(2, region_a);
  TaskMemory& b1 = machine.MapRegion(2, region_b);  // same node, two regions

  // Node 2 alternates between regions, exceeding its frames.
  for (int p = 0; p < 32; ++p) {
    auto wa = a1.WriteU64(static_cast<VmOffset>(p) * 8192, 1000 + p);
    machine.Run();
    ASSERT_TRUE(wa.ready());
    auto wb = b1.WriteU64(static_cast<VmOffset>(p) * 8192, 2000 + p);
    machine.Run();
    ASSERT_TRUE(wb.ready());
  }
  // Everything must still be readable, from other nodes, intact.
  TaskMemory& a2 = machine.MapRegion(3, region_a);
  TaskMemory& b2 = machine.MapRegion(3, region_b);
  for (int p = 0; p < 32; ++p) {
    auto ra = a2.ReadU64(static_cast<VmOffset>(p) * 8192);
    machine.Run();
    ASSERT_TRUE(ra.ready());
    EXPECT_EQ(ra.value(), 1000u + p) << "region A page " << p;
    auto rb = b2.ReadU64(static_cast<VmOffset>(p) * 8192);
    machine.Run();
    ASSERT_TRUE(rb.ready());
    EXPECT_EQ(rb.value(), 2000u + p) << "region B page " << p;
  }
}

TEST_P(MixedWorkloadTest, FileIntegrityUnderConcurrentRegionTraffic) {
  MachineConfig config;
  config.nodes = 5;
  config.dsm = GetParam();
  Machine machine(config);
  int32_t file_id = machine.cluster().file_pager().CreateFile("mix2", 24, true);
  MemObjectId file = machine.dsm().CreateFileRegion(file_id, 24);
  MemObjectId region = machine.CreateSharedRegion(0, 16);

  // Region churn on nodes 1-2 while nodes 3-4 read the file.
  TaskMemory& r1 = machine.MapRegion(1, region);
  TaskMemory& r2 = machine.MapRegion(2, region);
  TaskMemory& f1 = machine.MapRegion(3, file);
  TaskMemory& f2 = machine.MapRegion(4, file);
  std::vector<Future<Status>> ops;
  for (int i = 0; i < 16; ++i) {
    ops.push_back(r1.WriteU64(static_cast<VmOffset>(i) * 8192, i));
    ops.push_back(r2.WriteU64(static_cast<VmOffset>(i) * 8192, 100 + i));
    ops.push_back(f1.Touch(static_cast<VmOffset>(i) * 8192, 8, PageAccess::kRead));
    ops.push_back(f2.Touch(static_cast<VmOffset>((23 - i)) * 8192, 8, PageAccess::kRead));
  }
  machine.Run();
  for (auto& op : ops) {
    ASSERT_TRUE(op.ready());
  }
  TaskMemory& checker = machine.MapRegion(1, file);
  EXPECT_EQ(VerifyFileContents(machine, checker, file_id, 24), 0);
}

INSTANTIATE_TEST_SUITE_P(BothSystems, MixedWorkloadTest,
                         ::testing::Values(DsmKind::kAsvm, DsmKind::kXmm),
                         [](const ::testing::TestParamInfo<DsmKind>& info) {
                           return std::string(ToString(info.param));
                         });

}  // namespace
}  // namespace asvm
