// IVY protocol properties (DESIGN.md §15): the invariants the dynamic
// distributed manager stands on, asserted directly against the agents' state
// rather than through workload behavior.
//
//   1. Forwarding-chain convergence: probable-owner chains always terminate at
//      the (unique) owner within the protocol's hop bound, and one compression
//      round collapses them to direct pointers.
//   2. No ownership evaporation: under armed retries, duplicate requests and
//      straggler ownership grants (the PR 9 livelock shape) never leave a page
//      with zero owners or two — exactly one node holds the owner record after
//      every committed access.
//   3. Chain cut on death: hints aimed at a corpse are re-aimed by the death
//      notice, the corpse's pages are reclaimed by lease + newest-copy
//      harvest, and witnessed contents survive bit-exact.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/core/machine.h"
#include "src/ivy/ivy_agent.h"
#include "src/ivy/ivy_system.h"
#include "src/mesh/fault_plan.h"

#include "dsm_test_util.h"

namespace asvm {
namespace {

class IvyPropertyTest : public ::testing::Test {
 protected:
  static constexpr VmSize kPages = 4;

  void Build(MachineConfig config) {
    config.dsm = DsmKind::kIvy;
    machine_ = std::make_unique<Machine>(config);
    region_ = machine_->CreateSharedRegion(0, kPages);
    for (NodeId n = 0; n < machine_->nodes(); ++n) {
      mems_.push_back(&machine_->MapRegion(n, region_));
    }
  }

  IvySystem& ivy() { return static_cast<IvySystem&>(machine_->dsm()); }

  VmOffset PageAddr(VmSize page) const { return page * machine_->page_size(); }

  uint64_t SyncRead(NodeId n, VmOffset addr) {
    auto f = mems_[n]->ReadU64(addr);
    machine_->Run();
    EXPECT_TRUE(f.ready()) << "read wedged (node " << n << ", addr " << addr << ")";
    return f.ready() ? f.value() : ~0ULL;
  }

  void SyncWrite(NodeId n, VmOffset addr, uint64_t value) {
    auto f = mems_[n]->WriteU64(addr, value);
    machine_->Run();
    ASSERT_TRUE(f.ready()) << "write wedged (node " << n << ", addr " << addr << ")";
    ASSERT_EQ(f.value(), Status::kOk);
  }

  // Every node currently holding the owner record for (region, page). The
  // exactly-one-owner invariant says this always has size 1 at quiescence.
  std::vector<NodeId> Owners(PageIndex page) {
    std::vector<NodeId> owners;
    for (NodeId n = 0; n < machine_->nodes(); ++n) {
      if (ivy().agent(n).Owns(region_, page)) {
        owners.push_back(n);
      }
    }
    return owners;
  }

  void ExpectExactlyOneOwner(const char* when) {
    for (PageIndex p = 0; p < static_cast<PageIndex>(kPages); ++p) {
      const std::vector<NodeId> owners = Owners(p);
      EXPECT_EQ(owners.size(), 1u)
          << when << ": page " << p << " has " << owners.size()
          << " owners (ownership " << (owners.empty() ? "evaporated" : "duplicated") << ")";
    }
  }

  // Walks the probable-owner chain from `from` until it lands on the owner.
  // Returns the hop count, or -1 if the walk cycles past the protocol bound.
  int ChainLength(PageIndex page, NodeId from) {
    const int limit = machine_->nodes() * 4;
    NodeId at = from;
    int hops = 0;
    while (!ivy().agent(at).Owns(region_, page)) {
      if (++hops > limit) {
        return -1;
      }
      at = ivy().agent(at).ProbableOwner(region_, page);
    }
    return hops;
  }

  void AdvancePast(SimTime when) {
    if (machine_->Now() <= when) {
      machine_->engine().Schedule(when - machine_->Now() + kMillisecond, []() {});
      machine_->Run();
    }
    ASSERT_GT(machine_->Now(), when);
  }

  std::unique_ptr<Machine> machine_;
  MemObjectId region_;
  std::vector<TaskMemory*> mems_;
};

// Property 1: after ownership migrates along a line of writers, the stale
// hints form a chain that (a) still terminates at the owner within the hop
// bound, and (b) collapses to direct pointers after every node faults once —
// Li & Hudak's path-compression guarantee.
TEST_F(IvyPropertyTest, ForwardingChainsConvergeAfterCompression) {
  MachineConfig config;
  config.nodes = 8;
  Build(config);
  const VmOffset addr = PageAddr(0);

  // Migrate ownership 1 -> 2 -> ... -> 7. Each transfer leaves the previous
  // owner's hint aimed at its successor, building the longest chain the
  // protocol can produce organically.
  for (NodeId w = 1; w < machine_->nodes(); ++w) {
    SyncWrite(w, addr, 100 + w);
    const std::vector<NodeId> owners = Owners(0);
    ASSERT_EQ(owners.size(), 1u);
    EXPECT_EQ(owners[0], w) << "write grant did not migrate ownership";
  }

  // Pre-compression: node 1's chain threads through every former owner, but
  // must still terminate within the bound from every starting node.
  const int last = machine_->nodes() - 1;
  const int before = ChainLength(0, 1);
  ASSERT_GE(before, 0) << "chain from node 1 does not terminate";
  EXPECT_LE(before, machine_->nodes());
  EXPECT_GT(before, 1) << "migration should have left a multi-hop chain";
  for (NodeId n = 0; n < machine_->nodes(); ++n) {
    const int len = ChainLength(0, n);
    ASSERT_GE(len, 0) << "chain from node " << n << " does not terminate";
    EXPECT_LE(len, machine_->nodes());
  }

  // Compression round: one fault per node. Each grant aims the requester's
  // hint straight at the owner, so every chain collapses to <= 1 hop.
  for (NodeId n = 0; n < machine_->nodes(); ++n) {
    EXPECT_EQ(SyncRead(n, addr), 100u + static_cast<uint64_t>(last));
  }
  for (NodeId n = 0; n < machine_->nodes(); ++n) {
    EXPECT_LE(ChainLength(0, n), 1)
        << "node " << n << "'s chain did not compress to a direct pointer";
  }

  // Write-side compression: forwarding a write re-aims every relay at the
  // requester, so after one more migration the chains stay collapsed.
  SyncWrite(2, addr, 500);
  for (NodeId n = 0; n < machine_->nodes(); ++n) {
    EXPECT_LE(ChainLength(0, n), 1) << "write forwarding left node " << n << " stale";
  }

  ExpectExactlyOneOwner("after compression rounds");
  EXPECT_EQ(machine_->stats().Get("dsm.ivy.dropped_forwards"), 0);
  EXPECT_GT(machine_->stats().Get("dsm.ivy.forwards"), 0);
  EXPECT_GT(machine_->stats().Get("dsm.ivy.ownership_moves"), 0);
}

// Property 2: exactly one owner per page, always. Retries are armed with a
// timeout short enough that degraded links force resends — the duplicate
// requests and straggler ownership grants that livelocked XMM's promotion
// logic in its day (the PR 9 regression shape). Duplicates must be absorbed:
// no page may end an access with zero owner records or two, no access may
// wedge, and reads must stay coherent throughout.
TEST_F(IvyPropertyTest, OwnershipNeverEvaporatesUnderDuplicateGrants) {
  MachineConfig config;
  config.nodes = 6;
  ASSERT_TRUE(FaultProfileFromName("degraded-links", 11, config.nodes, &config.fault));
  // Short timeout + armed failover = pending ops on every request, resends on
  // every delay spike. The dedup path (op ids + straggler grant acceptance)
  // is what this test exists to regress.
  config.retry.timeout_ns = 2 * kMillisecond;
  config.failover.enabled = true;
  config.stall_watchdog = true;
  Build(config);

  CoherenceOracle oracle;
  Rng rng(0x1FF7);
  for (int i = 0; i < 150; ++i) {
    const NodeId node = static_cast<NodeId>(rng.NextBelow(mems_.size()));
    const PageIndex page = static_cast<PageIndex>(rng.NextBelow(kPages));
    const VmOffset addr = PageAddr(page);
    if (rng.NextBool(0.5)) {
      const uint64_t value = static_cast<uint64_t>(i) + 1;
      SyncWrite(node, addr, value);
      oracle.RecordWrite(addr, value);
    } else {
      oracle.CheckRead(addr, SyncRead(node, addr));
    }
    const std::vector<NodeId> owners = Owners(page);
    ASSERT_EQ(owners.size(), 1u)
        << "op " << i << " left page " << page << " with " << owners.size() << " owners";
  }

  // Contended rounds: concurrent blind writes from several nodes maximize
  // in-flight transfer overlap (the straggler-grant window).
  for (int round = 0; round < 20; ++round) {
    const VmOffset addr = PageAddr(rng.NextBelow(kPages));
    std::vector<Future<Status>> writes;
    uint64_t last_value = 0;
    for (int w = 0; w < 3; ++w) {
      const NodeId node = static_cast<NodeId>(rng.NextBelow(mems_.size()));
      last_value = 1000 + static_cast<uint64_t>(round) * 10 + static_cast<uint64_t>(w);
      writes.push_back(mems_[node]->WriteU64(addr, last_value));
    }
    machine_->Run();
    for (auto& w : writes) {
      ASSERT_TRUE(w.ready()) << "contended write wedged in round " << round;
      ASSERT_EQ(w.value(), Status::kOk);
    }
    ExpectExactlyOneOwner("after contended round");
  }

  EXPECT_EQ(oracle.violations(), 0);
  EXPECT_EQ(machine_->stats().Get("sim.stalls_detected"), 0)
      << machine_->last_stall_report();
  EXPECT_EQ(machine_->stats().Get("dsm.ivy.dropped_forwards"), 0);
  EXPECT_GT(machine_->stats().Get("dsm.ivy.requests"), 0);
}

// Shared setup for the death properties: the doomed node owns page 0, nodes
// 0 and 1 hold read copies (their hints aim at the corpse-to-be), and the
// write has been witnessed so its contents are reconstructible.
class IvyDeathPropertyTest : public IvyPropertyTest {
 protected:
  static constexpr NodeId kVictim = 3;
  static constexpr SimTime kKillAt = 200 * kMillisecond;

  void BuildDoomedOwner() {
    MachineConfig config;
    config.nodes = 4;
    config.fault.removals.push_back({kVictim, kKillAt});
    config.retry.timeout_ns = 2 * kMillisecond;
    config.failover.enabled = true;
    config.stall_watchdog = true;
    Build(config);
    const VmOffset addr = PageAddr(0);
    SyncWrite(kVictim, addr, 7);
    ASSERT_EQ(Owners(0), std::vector<NodeId>{kVictim});
    EXPECT_EQ(SyncRead(0, addr), 7u);
    EXPECT_EQ(SyncRead(1, addr), 7u);
    EXPECT_EQ(ivy().agent(0).ProbableOwner(region_, 0), kVictim);
    EXPECT_EQ(ivy().agent(1).ProbableOwner(region_, 0), kVictim);
    AdvancePast(kKillAt);
  }

  void ExpectSurvivorsRecovered() {
    // The reclaim must have moved the owner record to a survivor and buried
    // the corpse's copy of it.
    const std::vector<NodeId> owners = Owners(0);
    ASSERT_EQ(owners.size(), 1u) << "reclaim left " << owners.size() << " owner records";
    EXPECT_NE(owners[0], kVictim) << "the corpse still owns the page";
    // Survivors' chains are re-aimed: every walk must still terminate.
    for (NodeId n = 0; n < machine_->nodes(); ++n) {
      if (n == kVictim) {
        continue;
      }
      const int len = ChainLength(0, n);
      ASSERT_GE(len, 0) << "node " << n << "'s chain does not terminate post-death";
      EXPECT_LE(len, machine_->nodes());
    }
    EXPECT_GE(machine_->stats().Get("dsm.ivy.owner_reclaims"), 1);
    EXPECT_EQ(machine_->stats().Get("sim.stalls_detected"), 0)
        << machine_->last_stall_report();
  }
};

// Property 3a: a fault whose chain merely threads through the corpse (the
// requester's own hint aims at a live relay) recovers via lease reclaim +
// newest-copy harvest, and the witnessed contents come back bit-exact —
// never zero-filled.
TEST_F(IvyDeathPropertyTest, ReclaimHarvestsWitnessedContents) {
  BuildDoomedOwner();
  const VmOffset addr = PageAddr(0);

  // Node 2 never touched the page: its fault walks home -> corpse, times
  // out, reclaims, and must recover the witnessed 7.
  EXPECT_EQ(SyncRead(2, addr), 7u) << "witnessed contents lost with the owner";
  ExpectSurvivorsRecovered();

  // The page stays fully writable and coherent across the survivors.
  SyncWrite(0, addr, 9);
  EXPECT_EQ(SyncRead(1, addr), 9u);
  EXPECT_EQ(SyncRead(2, addr), 9u);
  ExpectExactlyOneOwner("after post-death write");
}

// Property 3b: when the corpse is a request's direct target, the confirmed
// death is gossiped and every survivor's hint aimed at the corpse is cut to
// a live node — the chain-cut path, counted under dsm.ivy.chain_cuts.
TEST_F(IvyDeathPropertyTest, DeathNoticeCutsChainsThroughCorpse) {
  BuildDoomedOwner();
  const VmOffset addr = PageAddr(0);

  // Node 1 holds a read copy, so a write faults as an upgrade aimed straight
  // at the dead owner. The exhausted op confirms the death (kNodeDown),
  // gossips it, and the notice cuts node 0's and node 1's hints.
  SyncWrite(1, addr, 9);
  EXPECT_GE(machine_->stats().Get("dsm.ivy.chain_cuts"), 1)
      << "no hint through the corpse was cut";
  EXPECT_GE(machine_->stats().Get("dsm.op_node_down"), 1)
      << "the corpse was never confirmed dead";
  ASSERT_EQ(Owners(0), std::vector<NodeId>{NodeId{1}});

  // No surviving hint may aim at the corpse any more.
  for (NodeId n = 0; n < machine_->nodes(); ++n) {
    if (n == kVictim) {
      continue;
    }
    EXPECT_NE(ivy().agent(n).ProbableOwner(region_, 0), kVictim)
        << "node " << n << "'s hint still aims at the corpse";
  }

  EXPECT_EQ(SyncRead(0, addr), 9u);
  EXPECT_EQ(SyncRead(2, addr), 9u);
  ExpectSurvivorsRecovered();
  ExpectExactlyOneOwner("after chain-cut recovery");
}

}  // namespace
}  // namespace asvm
