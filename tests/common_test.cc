#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace asvm {
namespace {

TEST(MemObjectIdTest, ValidityAndEquality) {
  MemObjectId a{2, 7};
  MemObjectId b{2, 7};
  MemObjectId c{3, 7};
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(kInvalidObject.valid());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.ToString(), "obj(2:7)");
}

TEST(MemObjectIdTest, HashDistinguishesOriginAndSeq) {
  std::unordered_set<MemObjectId> set;
  for (NodeId n = 0; n < 16; ++n) {
    for (uint32_t s = 0; s < 16; ++s) {
      set.insert(MemObjectId{n, s});
    }
  }
  EXPECT_EQ(set.size(), 256u);
}

TEST(PageAccessTest, OrderingAllowsWriteToServeRead) {
  EXPECT_TRUE(AccessAllows(PageAccess::kWrite, PageAccess::kRead));
  EXPECT_TRUE(AccessAllows(PageAccess::kWrite, PageAccess::kWrite));
  EXPECT_TRUE(AccessAllows(PageAccess::kRead, PageAccess::kRead));
  EXPECT_FALSE(AccessAllows(PageAccess::kRead, PageAccess::kWrite));
  EXPECT_FALSE(AccessAllows(PageAccess::kNone, PageAccess::kRead));
  EXPECT_TRUE(AccessAllows(PageAccess::kNone, PageAccess::kNone));
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(ToString(Status::kOk), "ok");
  EXPECT_STREQ(ToString(Status::kUnavailable), "unavailable");
  EXPECT_STREQ(ToString(Status::kDeadlock), "deadlock");
  EXPECT_TRUE(IsOk(Status::kOk));
  EXPECT_FALSE(IsOk(Status::kNotFound));
}

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
}

TEST(RngTest, NextRangeInclusiveBounds) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit over 1000 draws
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

TEST(RngTest, BoolProbabilityEdges) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(HistogramTest, BasicMoments) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.total(), 10.0);
}

TEST(HistogramTest, PercentileNearestRank) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Record(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(h.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, RecordAfterPercentileStillCorrect) {
  Histogram h;
  h.Record(10);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 10.0);
  h.Record(1);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 10.0);
}

TEST(StatsRegistryTest, CountersAccumulate) {
  StatsRegistry stats;
  stats.Add("a");
  stats.Add("a", 4);
  stats.Add("b", -1);
  EXPECT_EQ(stats.Get("a"), 5);
  EXPECT_EQ(stats.Get("b"), -1);
  EXPECT_EQ(stats.Get("missing"), 0);
}

TEST(StatsRegistryTest, HistogramsAndReport) {
  StatsRegistry stats;
  stats.Observe("lat", 5.0);
  stats.Observe("lat", 15.0);
  ASSERT_NE(stats.FindHistogram("lat"), nullptr);
  EXPECT_EQ(stats.FindHistogram("lat")->count(), 2u);
  EXPECT_EQ(stats.FindHistogram("none"), nullptr);
  std::string report = stats.Report();
  EXPECT_NE(report.find("lat"), std::string::npos);
}

TEST(StatsRegistryTest, ClearResets) {
  StatsRegistry stats;
  stats.Add("x", 3);
  stats.Observe("y", 1.0);
  stats.Clear();
  EXPECT_EQ(stats.Get("x"), 0);
  EXPECT_EQ(stats.FindHistogram("y"), nullptr);
}

}  // namespace
}  // namespace asvm
