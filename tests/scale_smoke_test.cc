// Paper-scale smoke: a 16x16 mesh (256 nodes — the Paragon sizes Fig 10
// sweeps) must construct, run a cross-machine coherency workload on both DSM
// backends, and drain cleanly. The point is not performance (bench_fig10
// measures that) but that nothing in the stack — topology, per-node VM
// construction, the pooled scheduler's node recycling — breaks or livelocks
// at two orders of magnitude more nodes than the unit tests use. Runs are
// bounded by an event limit so a regression aborts loudly instead of hanging
// CI.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/machine.h"

namespace asvm {
namespace {

constexpr int kMeshNodes = 256;  // 16x16
constexpr size_t kPage = 8192;

void RunScaleSmoke(DsmKind kind) {
  MachineConfig config;
  config.nodes = kMeshNodes;
  config.dsm = kind;
  Machine machine(config);
  machine.engine().set_event_limit(5'000'000);  // livelock valve, not a budget

  // One shared region homed at node 0, touched from 32 nodes strided across
  // the whole mesh so traffic crosses long mesh routes, not one neighbourhood.
  MemObjectId region = machine.CreateSharedRegion(0, 64);
  std::vector<TaskMemory*> mems;
  for (int i = 0; i < 32; ++i) {
    const NodeId node = static_cast<NodeId>(i * (kMeshNodes / 32));
    mems.push_back(&machine.MapRegion(node, region));
  }

  // Writers establish ownership spread over the mesh; readers then pull every
  // page back across it.
  for (size_t i = 0; i < mems.size(); ++i) {
    auto w = mems[i]->WriteU64((i * 2) * kPage, 1000 + i);
    machine.Run();
    ASSERT_TRUE(w.ready()) << ToString(kind) << " writer " << i << " stalled";
  }
  for (size_t i = 0; i < mems.size(); ++i) {
    auto r = mems[(i + 7) % mems.size()]->ReadU64((i * 2) * kPage);
    machine.Run();
    ASSERT_TRUE(r.ready()) << ToString(kind) << " reader " << i << " stalled";
    EXPECT_EQ(r.value(), 1000 + i);
  }

  EXPECT_GT(machine.stats().Get("mesh.messages"), 0);
  EXPECT_GT(machine.Now(), 0);
}

TEST(ScaleSmokeTest, Asvm16x16MeshCompletes) { RunScaleSmoke(DsmKind::kAsvm); }

TEST(ScaleSmokeTest, Xmm16x16MeshCompletes) { RunScaleSmoke(DsmKind::kXmm); }

// The same mesh on the reference scheduler: construction cost and timeline
// must match the wheel (a cheap large-N determinism check).
TEST(ScaleSmokeTest, SchedulersAgreeAt256Nodes) {
  SimTime times[2];
  int64_t messages[2];
  int idx = 0;
  for (SchedulerKind scheduler : {SchedulerKind::kTimerWheel, SchedulerKind::kReference}) {
    MachineConfig config;
    config.nodes = kMeshNodes;
    config.dsm = DsmKind::kAsvm;
    config.scheduler = scheduler;
    Machine machine(config);
    machine.engine().set_event_limit(5'000'000);
    MemObjectId region = machine.CreateSharedRegion(0, 16);
    std::vector<TaskMemory*> mems;
    for (int i = 0; i < 8; ++i) {
      mems.push_back(&machine.MapRegion(static_cast<NodeId>(i * 31), region));
    }
    for (int i = 0; i < 64; ++i) {
      auto w = mems[i % mems.size()]->WriteU64((i % 16) * kPage, i);
      machine.Run();
      ASSERT_TRUE(w.ready());
    }
    times[idx] = machine.Now();
    messages[idx] = machine.stats().Get("mesh.messages");
    ++idx;
  }
  EXPECT_EQ(times[0], times[1]);
  EXPECT_EQ(messages[0], messages[1]);
}

}  // namespace
}  // namespace asvm
