// Property-based coherency testing: thousands of randomized reads and writes
// against an oracle, swept over both DSM systems, every ASVM forwarding
// configuration, node counts, and memory pressure (eviction racing the
// protocol). Invariants checked:
//   1. Strong coherence: a read returns the most recent completed write.
//   2. Write atomicity under contention: concurrent writers to one page
//      leave a single agreed value that one of them wrote.
//   3. No data loss under memory pressure (pages migrate/spill but survive).
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "src/common/rng.h"
#include "src/core/machine.h"
#include "tests/dsm_test_util.h"

namespace asvm {
namespace {

struct PropertyConfig {
  DsmKind dsm;
  bool dynamic_fwd;
  bool static_fwd;
  int nodes;
  size_t frames;  // per-node; small => eviction pressure
  const char* label;
  // Fault-injection regime (appended so positional inits above stay valid):
  // when set, the profile is applied with timeouts/retries armed, and the
  // oracle must still hold — faults may slow the protocol, never corrupt it.
  const char* fault_profile = nullptr;
  uint64_t fault_seed = 0;
};

std::string ConfigName(const ::testing::TestParamInfo<PropertyConfig>& info) {
  return info.param.label;
}

class DsmPropertyTest : public ::testing::TestWithParam<PropertyConfig> {
 protected:
  void Build() {
    const PropertyConfig& p = GetParam();
    MachineConfig config;
    config.nodes = p.nodes;
    config.dsm = p.dsm;
    config.page_size = 4096;
    config.user_memory_bytes = p.frames * 4096;
    config.asvm.dynamic_forwarding = p.dynamic_fwd;
    config.asvm.static_forwarding = p.static_fwd;
    if (p.fault_profile != nullptr) {
      ASSERT_TRUE(FaultProfileFromName(p.fault_profile, p.fault_seed, p.nodes, &config.fault));
      config.retry.timeout_ns = 20 * kMillisecond;
      config.stall_watchdog = true;
    }
    machine_ = std::make_unique<Machine>(config);
    region_ = machine_->CreateSharedRegion(0, kPages);
    for (NodeId n = 0; n < p.nodes; ++n) {
      mems_.push_back(&machine_->MapRegion(n, region_));
    }
  }

  static constexpr VmSize kPages = 24;
  static constexpr int kSlotsPerPage = 4;

  VmOffset SlotAddr(int page, int slot) const {
    return static_cast<VmOffset>(page) * 4096 + static_cast<VmOffset>(slot) * 8;
  }

  std::unique_ptr<Machine> machine_;
  MemObjectId region_;
  std::vector<TaskMemory*> mems_;
};

TEST_P(DsmPropertyTest, SequentialRandomOpsMatchOracle) {
  Build();
  Rng rng(0xC0FFEE);
  CoherenceOracle oracle;
  uint64_t next_value = 1;
  const int ops = 1500;
  for (int i = 0; i < ops; ++i) {
    const NodeId node = static_cast<NodeId>(rng.NextBelow(mems_.size()));
    const int page = static_cast<int>(rng.NextBelow(kPages));
    const int slot = static_cast<int>(rng.NextBelow(kSlotsPerPage));
    const VmOffset addr = SlotAddr(page, slot);
    if (rng.NextBool(0.4)) {
      const uint64_t value = next_value++;
      auto w = mems_[node]->WriteU64(addr, value);
      machine_->Run();
      ASSERT_TRUE(w.ready()) << "write stuck at op " << i;
      ASSERT_EQ(w.value(), Status::kOk);
      oracle.RecordWrite(addr, value);
    } else {
      auto r = mems_[node]->ReadU64(addr);
      machine_->Run();
      ASSERT_TRUE(r.ready()) << "read stuck at op " << i;
      oracle.CheckRead(addr, r.value());
      ASSERT_EQ(oracle.violations(), 0)
          << "coherence violation at op " << i << " node " << node << " page " << page;
    }
  }
  // A stall under the one-op-at-a-time driver means the protocol wedged.
  EXPECT_EQ(machine_->stats().Get("sim.stalls_detected"), 0)
      << machine_->last_stall_report();
}

TEST_P(DsmPropertyTest, ConcurrentWritersConverge) {
  Build();
  Rng rng(0xBEEF);
  const int rounds = 60;
  for (int round = 0; round < rounds; ++round) {
    const int page = static_cast<int>(rng.NextBelow(kPages));
    const VmOffset addr = SlotAddr(page, 0);
    // Several nodes write distinct values concurrently.
    std::vector<uint64_t> values;
    std::vector<Future<Status>> writes;
    const int writers = 2 + static_cast<int>(rng.NextBelow(3));
    for (int w = 0; w < writers; ++w) {
      const NodeId node = static_cast<NodeId>(rng.NextBelow(mems_.size()));
      const uint64_t value = static_cast<uint64_t>(round) * 100 + 1 + static_cast<uint64_t>(w);
      values.push_back(value);
      writes.push_back(mems_[node]->WriteU64(addr, value));
    }
    machine_->Run();
    for (auto& w : writes) {
      ASSERT_TRUE(w.ready());
      ASSERT_EQ(w.value(), Status::kOk);
    }
    // All nodes must agree on one of the written values.
    uint64_t agreed = 0;
    for (size_t n = 0; n < mems_.size(); ++n) {
      auto r = mems_[n]->ReadU64(addr);
      machine_->Run();
      ASSERT_TRUE(r.ready());
      if (n == 0) {
        agreed = r.value();
        ASSERT_TRUE(std::find(values.begin(), values.end(), agreed) != values.end())
            << "value " << agreed << " was never written (round " << round << ")";
      } else {
        ASSERT_EQ(r.value(), agreed) << "nodes disagree in round " << round;
      }
    }
  }
}

TEST_P(DsmPropertyTest, ConcurrentDisjointPagesAllLand) {
  Build();
  Rng rng(0x5EED);
  const int rounds = 20;
  for (int round = 0; round < rounds; ++round) {
    // Each node writes its own page concurrently; no conflicts.
    std::vector<Future<Status>> writes;
    for (size_t n = 0; n < mems_.size(); ++n) {
      const int page = static_cast<int>((n + round) % kPages);
      writes.push_back(mems_[n]->WriteU64(SlotAddr(page, 1),
                                          static_cast<uint64_t>(round) * 1000 + n));
    }
    machine_->Run();
    for (auto& w : writes) {
      ASSERT_TRUE(w.ready());
    }
    // Cross-check from a rotating verifier node.
    const NodeId verifier = static_cast<NodeId>(round % mems_.size());
    for (size_t n = 0; n < mems_.size(); ++n) {
      const int page = static_cast<int>((n + round) % kPages);
      auto r = mems_[verifier]->ReadU64(SlotAddr(page, 1));
      machine_->Run();
      ASSERT_TRUE(r.ready());
      ASSERT_EQ(r.value(), static_cast<uint64_t>(round) * 1000 + n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DsmPropertyTest,
    ::testing::Values(
        PropertyConfig{DsmKind::kAsvm, true, true, 6, 512, "AsvmFull6"},
        PropertyConfig{DsmKind::kAsvm, false, true, 6, 512, "AsvmStatic6"},
        PropertyConfig{DsmKind::kAsvm, true, false, 6, 512, "AsvmDynamic6"},
        PropertyConfig{DsmKind::kAsvm, false, false, 6, 512, "AsvmGlobal6"},
        PropertyConfig{DsmKind::kAsvm, true, true, 3, 512, "AsvmFull3"},
        PropertyConfig{DsmKind::kAsvm, true, true, 12, 512, "AsvmFull12"},
        PropertyConfig{DsmKind::kAsvm, true, true, 6, 16, "AsvmPressure6"},
        PropertyConfig{DsmKind::kAsvm, false, false, 6, 16, "AsvmGlobalPressure6"},
        PropertyConfig{DsmKind::kXmm, true, true, 6, 512, "Xmm6"},
        PropertyConfig{DsmKind::kXmm, true, true, 12, 512, "Xmm12"},
        PropertyConfig{DsmKind::kXmm, true, true, 6, 16, "XmmPressure6"},
        // Fault-injection regimes: delay-only profiles with timeouts/retries
        // armed. The oracle must hold exactly as in the healthy runs.
        PropertyConfig{DsmKind::kAsvm, true, true, 6, 512, "AsvmJitter6", "jitter", 7},
        PropertyConfig{DsmKind::kXmm, true, true, 6, 512, "XmmJitter6", "jitter", 7},
        PropertyConfig{DsmKind::kAsvm, true, true, 6, 512, "AsvmDegraded6",
                       "degraded-links", 11},
        PropertyConfig{DsmKind::kXmm, true, true, 6, 512, "XmmSlowNode6", "slow-node", 13}),
    ConfigName);

}  // namespace
}  // namespace asvm
