// XMM internals: the manager's per-(page x node) state table transitions,
// request serialization at a busy page, pager-copy caching, and eviction
// returns — the NMK13 behaviours the ASVM paper measures against.
#include <gtest/gtest.h>

#include "src/machvm/task_memory.h"
#include "src/xmm/xmm_agent.h"
#include "src/xmm/xmm_system.h"
#include "tests/dsm_test_util.h"

namespace asvm {
namespace {

class XmmInternalsTest : public ::testing::Test {
 protected:
  void Build(int nodes, size_t frames = 512) {
    cluster_ = std::make_unique<Cluster>(SmallClusterParams(nodes, frames));
    system_ = std::make_unique<XmmSystem>(*cluster_);
    region_ = system_->CreateSharedRegion(/*home=*/0, 16);
    harness_ = std::make_unique<DsmRegionHarness>(*cluster_, *system_, region_, 16);
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<XmmSystem> system_;
  MemObjectId region_;
  std::unique_ptr<DsmRegionHarness> harness_;
};

TEST_F(XmmInternalsTest, ManagerRequestsSerializePerPage) {
  Build(6);
  // Concurrent writers to one page: the manager must grant one at a time and
  // the final state must be one of the written values everywhere.
  std::vector<Future<Status>> writes;
  for (NodeId n = 1; n < 6; ++n) {
    writes.push_back(harness_->mem(n).WriteU64(0, 100 + static_cast<uint64_t>(n)));
  }
  cluster_->engine().Run();
  for (auto& w : writes) {
    ASSERT_TRUE(w.ready());
  }
  const uint64_t agreed = harness_->Read(0, 0);
  EXPECT_GE(agreed, 101u);
  EXPECT_LE(agreed, 105u);
  for (NodeId n = 1; n < 6; ++n) {
    EXPECT_EQ(harness_->Read(n, 0), agreed);
  }
}

TEST_F(XmmInternalsTest, DirtyCleaningHappensExactlyOnce) {
  Build(4);
  harness_->Write(1, 0, 5);
  EXPECT_EQ(cluster_->stats().Get("xmm.dirty_cleanings"), 0);
  harness_->Read(2, 0);  // first remote request: paging-space write
  EXPECT_EQ(cluster_->stats().Get("xmm.dirty_cleanings"), 1);
  harness_->Read(3, 0);  // clean at pager now
  harness_->Write(2, 0, 6);
  harness_->Read(3, 0);
  // A fresh write re-dirties; the NEXT remote request cleans again (NMK13
  // cleans whenever the coherent version must be created from a dirty page,
  // but only the first ever write pays the full disk penalty in Table 1's
  // scenario because later ones find the page already clean at the pager).
  EXPECT_GE(cluster_->stats().Get("xmm.dirty_cleanings"), 1);
}

TEST_F(XmmInternalsTest, ReadAfterWriteFlushesTheWriter) {
  Build(4);
  harness_->Write(1, 0, 9);
  const int64_t flushes = cluster_->stats().Get("xmm.write_flushes");
  harness_->Read(2, 0);
  EXPECT_EQ(cluster_->stats().Get("xmm.write_flushes"), flushes + 1);
  // The writer lost its copy (NMK13 flushes the writer to clean the page).
  EXPECT_EQ(harness_->Read(1, 0), 9u);
}

TEST_F(XmmInternalsTest, ManagerTableSizeTracksAttachments) {
  Build(8);
  // The table is pages x node_count bytes as soon as the manager state is
  // instantiated (first request).
  harness_->Write(1, 0, 1);
  EXPECT_GE(system_->MetadataBytes(0), static_cast<size_t>(16 * 8));
}

TEST_F(XmmInternalsTest, EvictionReturnsDirtyPageToManager) {
  Build(2, /*frames=*/8);
  // Region is 16 pages; 8 frames on node 1 force evictions of dirty pages,
  // which NMK13 returns to the manager/pager rather than transferring.
  for (int p = 0; p < 16; ++p) {
    harness_->Write(1, static_cast<VmOffset>(p) * 4096, 300 + static_cast<uint64_t>(p));
  }
  EXPECT_GT(cluster_->stats().Get("xmm.evict_returns"), 0);
  for (int p = 0; p < 16; ++p) {
    EXPECT_EQ(harness_->Read(0, static_cast<VmOffset>(p) * 4096),
              300 + static_cast<uint64_t>(p));
  }
}

TEST_F(XmmInternalsTest, NoStsTrafficEver) {
  Build(4);
  harness_->Write(1, 0, 1);
  harness_->Read(2, 0);
  harness_->Write(3, 0, 2);
  EXPECT_EQ(cluster_->stats().Get("transport.sts.messages"), 0);
  EXPECT_EQ(cluster_->stats().Get("transport.sts_ctl.messages"), 0);
  EXPECT_GT(cluster_->stats().Get("transport.norma.messages"), 4);
}

TEST_F(XmmInternalsTest, UpgradeRaceWithEvictionReissuesRequest) {
  // A node's read copy may be evicted while its upgrade request is in
  // flight; the manager's upgrade grant then has no page to unlock and the
  // proxy must re-request with data.
  Build(2, /*frames=*/8);
  harness_->Write(1, 0, 1);
  harness_->Read(0, 0);
  // Fill node 0 so page 0's copy is likely evicted, then write from node 0.
  for (int p = 1; p < 12; ++p) {
    harness_->Write(0, static_cast<VmOffset>(p) * 4096, static_cast<uint64_t>(p));
  }
  harness_->Write(0, 0, 2);
  EXPECT_EQ(harness_->Read(1, 0), 2u);
}

TEST_F(XmmInternalsTest, SequentialConsistencyAcrossManyPages) {
  Build(4);
  for (int round = 0; round < 3; ++round) {
    for (int p = 0; p < 16; ++p) {
      harness_->Write((round + p) % 4, static_cast<VmOffset>(p) * 4096,
                      static_cast<uint64_t>(round * 100 + p));
    }
  }
  for (int p = 0; p < 16; ++p) {
    EXPECT_EQ(harness_->Read(3, static_cast<VmOffset>(p) * 4096),
              static_cast<uint64_t>(200 + p));
  }
}

}  // namespace
}  // namespace asvm
