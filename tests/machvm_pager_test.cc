// Managed objects: data_request/data_unlock upcalls, supplies, lock grants,
// eviction hooks — the kernel/pager contract the DSM layers build on.
#include <gtest/gtest.h>

#include <vector>

#include "src/machvm/node_vm.h"
#include "src/machvm/task_memory.h"
#include "src/sim/engine.h"

namespace asvm {
namespace {

// Scripted pager: records upcalls; the test drives the replies.
class FakePager : public Pager {
 public:
  struct Request {
    PageIndex page;
    PageAccess access;
    bool unlock;
  };
  struct Eviction {
    PageIndex page;
    bool dirty;
    PageBuffer data;
  };

  void DataRequest(VmObject& object, PageIndex page, PageAccess desired) override {
    requests.push_back({page, desired, false});
    last_object = &object;
  }
  void DataUnlock(VmObject& object, PageIndex page, PageAccess desired) override {
    requests.push_back({page, desired, true});
    last_object = &object;
  }
  EvictAction OnEvict(VmObject&, PageIndex page, PageBuffer data, bool dirty) override {
    evictions.push_back({page, dirty, std::move(data)});
    return EvictAction::kTaken;
  }
  void LockCompleted(VmObject&, PageIndex page, LockResult result) override {
    lock_completions.emplace_back(page, result);
  }
  void PullCompleted(VmObject&, PageIndex page, PullResult result) override {
    pull_completions.emplace_back(page, std::move(result));
  }

  std::vector<Request> requests;
  std::vector<Eviction> evictions;
  std::vector<std::pair<PageIndex, LockResult>> lock_completions;
  std::vector<std::pair<PageIndex, PullResult>> pull_completions;
  VmObject* last_object = nullptr;
};

class ManagedObjectTest : public ::testing::Test {
 protected:
  ManagedObjectTest()
      : vm_(engine_, 0, VmParams{.page_size = 4096, .frame_capacity = 16, .costs = {}}, &stats_) {
    object_ = vm_.CreateObject(8, CopyStrategy::kAsymmetric);
    vm_.RegisterManaged(object_, MemObjectId{0, 1}, &pager_);
    map_ = vm_.CreateMap();
    EXPECT_EQ(map_->Map(0, 8, object_, 0, Inheritance::kCopy), Status::kOk);
  }

  PageBuffer MakePage(uint64_t value) {
    auto page = AllocPage(4096);
    memcpy(page->data(), &value, 8);
    return page;
  }

  Engine engine_;
  StatsRegistry stats_;
  NodeVm vm_;
  FakePager pager_;
  std::shared_ptr<VmObject> object_;
  VmMap* map_ = nullptr;
};

TEST_F(ManagedObjectTest, ReadFaultIssuesDataRequest) {
  auto f = vm_.Fault(*map_, 0, PageAccess::kRead);
  engine_.Run();
  EXPECT_FALSE(f.ready());  // pager has not answered yet
  ASSERT_EQ(pager_.requests.size(), 1u);
  EXPECT_EQ(pager_.requests[0].page, 0);
  EXPECT_EQ(pager_.requests[0].access, PageAccess::kRead);
  EXPECT_FALSE(pager_.requests[0].unlock);

  vm_.DataSupply(*object_, 0, MakePage(55), PageAccess::kRead);
  engine_.Run();
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.value(), Status::kOk);
  TaskMemory mem(vm_, *map_);
  uint64_t v = 0;
  EXPECT_TRUE(mem.TryReadU64(0, &v));
  EXPECT_EQ(v, 55u);
}

TEST_F(ManagedObjectTest, WriteFaultRequestsWriteAccess) {
  auto f = vm_.Fault(*map_, 0, PageAccess::kWrite);
  engine_.Run();
  ASSERT_EQ(pager_.requests.size(), 1u);
  EXPECT_EQ(pager_.requests[0].access, PageAccess::kWrite);
  vm_.DataSupply(*object_, 0, MakePage(1), PageAccess::kWrite);
  engine_.Run();
  EXPECT_EQ(f.value(), Status::kOk);
  EXPECT_TRUE(object_->FindResident(0)->dirty);
}

TEST_F(ManagedObjectTest, WriteOnReadLockedPageIssuesUnlock) {
  auto rf = vm_.Fault(*map_, 0, PageAccess::kRead);
  engine_.Run();
  vm_.DataSupply(*object_, 0, MakePage(9), PageAccess::kRead);
  engine_.Run();
  ASSERT_TRUE(rf.ready());

  auto wf = vm_.Fault(*map_, 0, PageAccess::kWrite);
  engine_.Run();
  EXPECT_FALSE(wf.ready());
  ASSERT_EQ(pager_.requests.size(), 2u);
  EXPECT_TRUE(pager_.requests[1].unlock);
  EXPECT_EQ(pager_.requests[1].access, PageAccess::kWrite);

  vm_.LockGranted(*object_, 0, PageAccess::kWrite);
  engine_.Run();
  EXPECT_EQ(wf.value(), Status::kOk);
}

TEST_F(ManagedObjectTest, ConcurrentFaultersShareOneRequest) {
  auto f1 = vm_.Fault(*map_, 0, PageAccess::kRead);
  auto f2 = vm_.Fault(*map_, 8, PageAccess::kRead);  // same page
  engine_.Run();
  EXPECT_EQ(pager_.requests.size(), 1u) << "second faulter must park, not re-request";
  vm_.DataSupply(*object_, 0, MakePage(3), PageAccess::kRead);
  engine_.Run();
  EXPECT_TRUE(f1.ready());
  EXPECT_TRUE(f2.ready());
}

TEST_F(ManagedObjectTest, DataUnavailableZeroFills) {
  auto f = vm_.Fault(*map_, 0, PageAccess::kRead);
  engine_.Run();
  vm_.DataUnavailable(*object_, 0, PageAccess::kRead);
  engine_.Run();
  ASSERT_TRUE(f.ready());
  TaskMemory mem(vm_, *map_);
  uint64_t v = 99;
  EXPECT_TRUE(mem.TryReadU64(0, &v));
  EXPECT_EQ(v, 0u);
}

TEST_F(ManagedObjectTest, ReadLockedPageDeniesSyncWrite) {
  auto f = vm_.Fault(*map_, 0, PageAccess::kRead);
  engine_.Run();
  vm_.DataSupply(*object_, 0, MakePage(9), PageAccess::kRead);
  engine_.Run();
  ASSERT_TRUE(f.ready());
  TaskMemory mem(vm_, *map_);
  uint64_t v = 0;
  EXPECT_TRUE(mem.TryReadU64(0, &v));
  EXPECT_FALSE(mem.TryWriteU64(0, 1)) << "write through read lock must fault";
}

TEST_F(ManagedObjectTest, EvictionCallsPagerHook) {
  auto f = vm_.Fault(*map_, 0, PageAccess::kWrite);
  engine_.Run();
  vm_.DataSupply(*object_, 0, MakePage(42), PageAccess::kWrite);
  engine_.Run();
  ASSERT_TRUE(f.ready());

  ASSERT_EQ(vm_.EvictOnePage(), Status::kOk);
  ASSERT_EQ(pager_.evictions.size(), 1u);
  EXPECT_EQ(pager_.evictions[0].page, 0);
  EXPECT_TRUE(pager_.evictions[0].dirty);
  uint64_t v = 0;
  memcpy(&v, pager_.evictions[0].data->data(), 8);
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(object_->FindResident(0), nullptr);
}

TEST_F(ManagedObjectTest, FaultFailedPropagatesError) {
  auto f = vm_.Fault(*map_, 0, PageAccess::kRead);
  engine_.Run();
  vm_.FaultFailed(*object_, 0, Status::kDeadlock);
  engine_.Run();
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.value(), Status::kDeadlock);
}

TEST_F(ManagedObjectTest, FindManagedLocatesObject) {
  EXPECT_EQ(vm_.FindManaged(MemObjectId{0, 1}), object_);
  EXPECT_EQ(vm_.FindManaged(MemObjectId{0, 2}), nullptr);
}

TEST_F(ManagedObjectTest, SupplyWithWriteLockAllowsSyncWrite) {
  auto f = vm_.Fault(*map_, 0, PageAccess::kWrite);
  engine_.Run();
  vm_.DataSupply(*object_, 0, MakePage(7), PageAccess::kWrite);
  engine_.Run();
  ASSERT_TRUE(f.ready());
  TaskMemory mem(vm_, *map_);
  EXPECT_TRUE(mem.TryWriteU64(0, 100));
  uint64_t v = 0;
  EXPECT_TRUE(mem.TryReadU64(0, &v));
  EXPECT_EQ(v, 100u);
}

}  // namespace
}  // namespace asvm
